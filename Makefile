.PHONY: all check test bench bench-smoke clean

all:
	dune build @all

# The tier-1 gate: build everything (libs, CLI, bench, examples) and run
# the full test suite, including the CLI smoke test (test/smoke.sh).
check:
	dune build @all
	dune runtest

test: check

bench:
	dune exec bench/main.exe -- --quick

# Quick E17 run with a span trace; exits nonzero if the indexed or
# parallel engines ever disagree with the seed baseline, if the JSONL
# rows carry no counters, or if the trace is empty or malformed.  Also
# wired into `dune runtest` via test/dune.
bench-smoke:
	dune build bench/main.exe
	bash test/bench_smoke.sh _build/default/bench/main.exe

clean:
	dune clean
