.PHONY: all check test bench clean

all:
	dune build @all

# The tier-1 gate: build everything (libs, CLI, bench, examples) and run
# the full test suite, including the CLI smoke test (test/smoke.sh).
check:
	dune build @all
	dune runtest

test: check

bench:
	dune exec bench/main.exe -- --quick

clean:
	dune clean
