.PHONY: all check check-faults check-plan check-serve check-bitset check-kernel check-updates check-recovery test bench bench-smoke clean

all:
	dune build @all

# The tier-1 gate: build everything (libs, CLI, bench, examples) and run
# the full test suite, including the CLI smoke test (test/smoke.sh),
# then re-run it under a canned fault schedule and with the plan layer
# toggled off and on.
check:
	dune build @all
	dune runtest
	$(MAKE) check-faults
	$(MAKE) check-plan
	$(MAKE) check-serve
	$(MAKE) check-bitset
	$(MAKE) check-kernel
	$(MAKE) check-updates
	$(MAKE) check-recovery

# The whole suite again with every library failpoint site armed — a
# delay-only schedule, so checks take the armed slow path (registry
# lookup, counters, sleeps) without changing any answer; the serve-mode
# transcripts pin their own GQ_FAILPOINTS on top.  Run at pool widths 1
# and 4 so the armed sites are also crossed from parallel domains.
FAULT_SCHEDULE = graph.load=delay:1,graph.delta=delay:0,graph.save=delay:0,rpq.product.build=delay:0,rpq.bfs.step=delay:0,crpq.join.atom=delay:0,pool.fork=delay:0,serve.eval=delay:0,wal.append=delay:0,wal.fsync=delay:0,wal.checkpoint=delay:0,wal.rotate=delay:0
check-faults:
	dune build @all
	GQ_FAILPOINTS="$(FAULT_SCHEDULE)" GQ_DOMAINS=1 dune runtest --force
	GQ_FAILPOINTS="$(FAULT_SCHEDULE)" GQ_DOMAINS=4 dune runtest --force

# The whole suite twice more: once with the plan layer fully disabled
# (no compilation cache, left-to-right atom order, no backward
# evaluation) and once pinned on.  The golden files and the differential
# properties pin the answers, so both runs passing means caching and
# planning never change results.
check-plan:
	dune build @all
	GQ_PLAN_CACHE=off GQ_PLAN=off dune runtest --force
	GQ_PLAN_CACHE=on GQ_PLAN=on dune runtest --force

# Concurrent-load smoke for `gqd --listen` (test/serve_smoke.sh): six
# synchronous clients and one hostile flooder against one server, fatal
# on any dropped, garbled, shed or failed well-behaved reply, ending in
# a SIGTERM drain that must exit 0.  Run single- and multi-worker.
check-serve:
	dune build bin/gqd.exe
	GQ_DOMAINS=1 bash test/serve_smoke.sh _build/default/bin/gqd.exe
	GQ_DOMAINS=4 bash test/serve_smoke.sh _build/default/bin/gqd.exe

# The whole suite with the bit-parallel multi-source kernel forced off
# (scalar stamped-array engine) and forced on, each at pool widths 1 and
# 4.  The differential properties and the golden files pin the answers,
# so all four runs passing means the packed kernel is answer-equivalent
# to the scalar one under every width; kernel-sensitive goldens pin
# GQ_BITSET themselves.
check-bitset:
	dune build @all
	GQ_BITSET=off GQ_DOMAINS=1 dune runtest --force
	GQ_BITSET=off GQ_DOMAINS=4 dune runtest --force
	GQ_BITSET=on GQ_DOMAINS=1 dune runtest --force
	GQ_BITSET=on GQ_DOMAINS=4 dune runtest --force

# The whole suite with the packed kernel on and the sweep direction
# pinned to push-only, pull-only, and the adaptive heuristic, each at
# pool widths 1 and 4.  The differential properties and goldens pin the
# answers, so all six runs passing means the pull direction and the
# per-sweep switching never change results under any width; goldens
# whose counters are direction-sensitive pin GQ_PULL_THRESHOLD
# themselves (empty = adaptive default).
check-kernel:
	dune build @all
	GQ_BITSET=on GQ_PULL_THRESHOLD=push GQ_DOMAINS=1 dune runtest --force
	GQ_BITSET=on GQ_PULL_THRESHOLD=push GQ_DOMAINS=4 dune runtest --force
	GQ_BITSET=on GQ_PULL_THRESHOLD=pull GQ_DOMAINS=1 dune runtest --force
	GQ_BITSET=on GQ_PULL_THRESHOLD=pull GQ_DOMAINS=4 dune runtest --force
	GQ_BITSET=on GQ_PULL_THRESHOLD= GQ_DOMAINS=1 dune runtest --force
	GQ_BITSET=on GQ_PULL_THRESHOLD= GQ_DOMAINS=4 dune runtest --force

# The update/persistence suite (test/test_updates.ml) under the armed
# delta/save failpoint sites, at pool widths 1 and 4: the model-based
# properties must hold when incremental application is crossed from
# parallel domains and every update-path failpoint takes the armed
# slow path.
UPDATE_SCHEDULE = graph.delta=delay:0,graph.save=delay:0,graph.load=delay:0
check-updates:
	dune build test/test_updates.exe
	GQ_FAILPOINTS="$(UPDATE_SCHEDULE)" GQ_DOMAINS=1 dune exec test/test_updates.exe
	GQ_FAILPOINTS="$(UPDATE_SCHEDULE)" GQ_DOMAINS=4 dune exec test/test_updates.exe

# The WAL crash-recovery suite (test/test_wal.ml: model-based recovery
# properties, torn tails, injected faults, every recovery edge case)
# plus the SIGKILL smoke (test/recover_smoke.sh), both with the WAL
# failpoint sites armed on the delay slow path, at pool widths 1 and 4.
RECOVERY_SCHEDULE = wal.append=delay:0,wal.fsync=delay:0,wal.checkpoint=delay:0,wal.rotate=delay:0,graph.save=delay:0,graph.delta=delay:0
check-recovery:
	dune build test/test_wal.exe bin/gqd.exe
	GQ_FAILPOINTS="$(RECOVERY_SCHEDULE)" GQ_DOMAINS=1 dune exec test/test_wal.exe
	GQ_FAILPOINTS="$(RECOVERY_SCHEDULE)" GQ_DOMAINS=4 dune exec test/test_wal.exe
	GQ_FAILPOINTS="$(RECOVERY_SCHEDULE)" GQ_DOMAINS=1 bash test/recover_smoke.sh _build/default/bin/gqd.exe
	GQ_FAILPOINTS="$(RECOVERY_SCHEDULE)" GQ_DOMAINS=4 bash test/recover_smoke.sh _build/default/bin/gqd.exe

test: check

bench:
	dune exec bench/main.exe -- --quick

# Quick E17 run with a span trace; exits nonzero if the indexed or
# parallel engines ever disagree with the seed baseline, if the JSONL
# rows carry no counters, or if the trace is empty or malformed.  Also
# wired into `dune runtest` via test/dune.
bench-smoke:
	dune build bench/main.exe
	bash test/bench_smoke.sh _build/default/bench/main.exe

clean:
	dune clean
