.PHONY: all check test bench bench-smoke clean

all:
	dune build @all

# The tier-1 gate: build everything (libs, CLI, bench, examples) and run
# the full test suite, including the CLI smoke test (test/smoke.sh).
check:
	dune build @all
	dune runtest

test: check

bench:
	dune exec bench/main.exe -- --quick

# Quick E17 run; exits nonzero if the indexed or parallel engines ever
# disagree with the seed baseline.  Also wired into `dune runtest` via
# the bench-smoke alias in test/dune.
bench-smoke:
	dune exec bench/main.exe -- E17 --quick

clean:
	dune clean
