(** Named atomic counters and histograms.

    A {!t} is a registry: engines look a counter up by name once per
    evaluation ({!counter} registers on first use) and then bump it
    lock-free from any domain.  Counters are [Atomic.t], so one registry
    may be shared by every worker of a parallel evaluation — the sum of
    per-worker contributions equals the serial count exactly.

    Names are dotted slugs by convention, [subsystem.quantity]:
    [rpq.product_transitions], [governor.steps], [pool.tasks]. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

(** Get-or-register; thread-safe.  The handle stays valid for the
    registry's lifetime — hot loops should look it up once, outside. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

(** {1 Histograms}

    Power-of-two buckets: observation [v > 0] lands in the bucket of its
    bit width, [v <= 0] in bucket 0. *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit

type histogram_snapshot = {
  total : int;  (** number of observations *)
  total_sum : int;  (** sum of observed values *)
  nonzero_buckets : (int * int) list;  (** (bucket index, count) *)
}

val snapshot : histogram -> histogram_snapshot

(** [bucket_of v] is the bucket index an observation of [v] lands in. *)
val bucket_of : int -> int

(** {1 Gauges}

    A level that goes up and down (queue depth, connected clients),
    tracked together with the peak it ever reached.  Updates are atomic
    and may come from any domain. *)

type gauge

val gauge : t -> string -> gauge

(** Add [k] (may be negative) to the level; positive moves update the
    peak with a CAS-max. *)
val gauge_add : gauge -> int -> unit

val gauge_set : gauge -> int -> unit
val gauge_level : gauge -> int
val gauge_peak : gauge -> int
val gauge_name : gauge -> string

(** {1 Snapshots} *)

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

val histograms : t -> (string * histogram_snapshot) list

(** All gauges as [(name, (level, peak))], sorted by name. *)
val gauges : t -> (string * (int * int)) list

(** Zero every counter and histogram (handles stay valid). *)
val reset : t -> unit
