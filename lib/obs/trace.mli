(** Nestable phase spans, emitted as JSONL.

    A {!t} collects completed spans — parse, compile, automaton build,
    product BFS, join, enumerate — each with monotonic start/end
    timestamps (seconds since the trace was created), the id of the
    domain that ran it, and its nesting depth within that domain.
    Buffers are per-domain, so tracing inside a {!Pool}-parallel section
    is safe and costs no synchronization after the first span on each
    domain; events become visible to {!events} once the parallel section
    has joined.

    One JSONL line per completed span:
    [{"span":"rpq.bfs","domain":0,"depth":1,"start_s":0.000123,
      "end_s":0.004567,"dur_ms":4.444}] *)

type t

(** [create ()] starts the trace clock.  The default clock is
    [Sys.time] (CPU time: monotonic, stdlib-only, coarse); pass
    [?clock] for wall-clock precision. *)
val create : ?clock:(unit -> float) -> unit -> t

type span

val enter : t -> string -> span

(** Closes the span, and any still-open spans nested inside it. *)
val exit : t -> span -> unit

(** [with_span t name f] runs [f] inside a span; exception-safe. *)
val with_span : t -> string -> (unit -> 'a) -> 'a

type event = {
  name : string;
  domain : int;
  depth : int;  (** 0 = top-level within its domain *)
  t0 : float;  (** seconds since trace creation *)
  t1 : float;
}

(** Completed spans across all domains, ordered by start time (ties:
    outermost first). *)
val events : t -> event list

val event_to_json : event -> string
val to_jsonl : t -> string
val write_jsonl : t -> out_channel -> unit
