type t = { metrics : Metrics.t option; trace : Trace.t option }

let none = { metrics = None; trace = None }
let make ?metrics ?trace () = { metrics; trace }
let enabled t = t.metrics <> None || t.trace <> None
let metrics t = t.metrics
let trace t = t.trace

let counter t name =
  match t.metrics with
  | None -> None
  | Some m -> Some (Metrics.counter m name)

let noop_add (_ : int) = ()

let counter_fn t name =
  match t.metrics with
  | None -> noop_add
  | Some m ->
      let c = Metrics.counter m name in
      fun k -> Metrics.add c k

let add t name k =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.add (Metrics.counter m name) k

let incr t name = add t name 1

let observe t name v =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.observe (Metrics.histogram m name) v

let span t name f =
  match t.trace with None -> f () | Some tr -> Trace.with_span tr name f

let gauge_fn t name =
  match t.metrics with
  | None -> noop_add
  | Some m ->
      let g = Metrics.gauge m name in
      fun k -> Metrics.gauge_add g k

let gauge_add t name k =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.gauge_add (Metrics.gauge m name) k

let gauge_set t name v =
  match t.metrics with
  | None -> ()
  | Some m -> Metrics.gauge_set (Metrics.gauge m name) v

let gauges t =
  match t.metrics with None -> [] | Some m -> Metrics.gauges m

let counters t =
  match t.metrics with None -> [] | Some m -> Metrics.counters m

(* One [name value] line per counter, histograms as [name count sum]:
   the `gqd --metrics` stderr format, stable for the smoke test. *)
let summary t =
  match t.metrics with
  | None -> ""
  | Some m ->
      let buf = Buffer.create 256 in
      List.iter
        (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name v))
        (Metrics.counters m);
      List.iter
        (fun (name, s) ->
          Buffer.add_string buf
            (Printf.sprintf "%s %d %d\n" name s.Metrics.total s.Metrics.total_sum))
        (Metrics.histograms m);
      List.iter
        (fun (name, (level, peak)) ->
          Buffer.add_string buf (Printf.sprintf "%s %d %d\n" name level peak))
        (Metrics.gauges m);
      Buffer.contents buf
