(* Counters are plain atomics, so workers of a [Pool]-parallel
   evaluation bump a shared counter without locking and no tick is ever
   lost (test_obs pins sum-of-workers = serial).  The registry itself is
   mutated only on first registration of a name, which is rare and
   mutex-protected; reads ([counters]/[histograms]) take the same mutex
   so a snapshot never observes a half-registered entry. *)

type counter = { cname : string; value : int Atomic.t }

(* Power-of-two buckets: [buckets.(i)] counts observations [v] with
   [2^(i-1) <= v < 2^i] (bucket 0 holds v <= 0 and v = 1 lands in
   bucket 1).  63 buckets cover the whole int range, so there is no
   overflow bucket to special-case. *)
let nb_buckets = 63

type histogram = {
  hname : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
}

(* Gauges track a level that goes up and down (queue depth, connected
   clients, in-flight requests) plus the peak it ever reached — the two
   numbers a capacity decision needs.  Both are atomics: concurrent
   add/sub from the serve-mode I/O loop and worker domains never lose an
   update, and the peak is maintained with a CAS-max. *)
type gauge = { gname : string; level : int Atomic.t; peak : int Atomic.t }

type t = {
  mutable cs : counter list;
  mutable hs : histogram list;
  mutable gs : gauge list;
  lock : Mutex.t;
}

let create () = { cs = []; hs = []; gs = []; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  with_lock t (fun () ->
      match List.find_opt (fun c -> c.cname = name) t.cs with
      | Some c -> c
      | None ->
          let c = { cname = name; value = Atomic.make 0 } in
          t.cs <- c :: t.cs;
          c)

let add c k = ignore (Atomic.fetch_and_add c.value k)
let incr c = add c 1
let value c = Atomic.get c.value
let counter_name c = c.cname

let histogram t name =
  with_lock t (fun () ->
      match List.find_opt (fun h -> h.hname = name) t.hs with
      | Some h -> h
      | None ->
          let h =
            {
              hname = name;
              buckets = Array.init nb_buckets (fun _ -> Atomic.make 0);
              count = Atomic.make 0;
              sum = Atomic.make 0;
            }
          in
          t.hs <- h :: t.hs;
          h)

let bucket_of v =
  if v <= 0 then 0
  else
    (* Index of the highest set bit, plus one. *)
    let rec go v i = if v = 0 then i else go (v lsr 1) (i + 1) in
    min (nb_buckets - 1) (go v 0)

let observe h v =
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.count 1);
  ignore (Atomic.fetch_and_add h.sum v)

let gauge t name =
  with_lock t (fun () ->
      match List.find_opt (fun g -> g.gname = name) t.gs with
      | Some g -> g
      | None ->
          let g = { gname = name; level = Atomic.make 0; peak = Atomic.make 0 } in
          t.gs <- g :: t.gs;
          g)

let rec bump_peak g seen =
  let p = Atomic.get g.peak in
  if seen > p && not (Atomic.compare_and_set g.peak p seen) then
    bump_peak g seen

let gauge_add g k =
  let now = Atomic.fetch_and_add g.level k + k in
  if k > 0 then bump_peak g now

let gauge_set g v =
  Atomic.set g.level v;
  bump_peak g v

let gauge_level g = Atomic.get g.level
let gauge_peak g = Atomic.get g.peak
let gauge_name g = g.gname

type histogram_snapshot = {
  total : int;
  total_sum : int;
  nonzero_buckets : (int * int) list;
}

let snapshot h =
  {
    total = Atomic.get h.count;
    total_sum = Atomic.get h.sum;
    nonzero_buckets =
      Array.to_list h.buckets
      |> List.mapi (fun i c -> (i, Atomic.get c))
      |> List.filter (fun (_, c) -> c > 0);
  }

let counters t =
  with_lock t (fun () -> List.map (fun c -> (c.cname, value c)) t.cs)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  with_lock t (fun () -> List.map (fun h -> (h.hname, snapshot h)) t.hs)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  with_lock t (fun () ->
      List.map (fun g -> (g.gname, (Atomic.get g.level, Atomic.get g.peak))) t.gs)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  with_lock t (fun () ->
      List.iter (fun c -> Atomic.set c.value 0) t.cs;
      List.iter
        (fun h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.count 0;
          Atomic.set h.sum 0)
        t.hs;
      List.iter
        (fun g ->
          Atomic.set g.level 0;
          Atomic.set g.peak 0)
        t.gs)
