(* Each domain appends to its own buffer, acquired once per domain via a
   mutex-protected table keyed by [Domain.self ()] — after acquisition,
   span entry/exit touch only domain-local mutable state, so tracing a
   parallel evaluation costs no synchronization on the hot path.  The
   buffers are only read ([events]/JSONL output) after the parallel
   section has joined; the mutex still guards the table so a late-coming
   domain cannot race the snapshot. *)

type event = {
  name : string;
  domain : int;
  depth : int;  (* 0 = top-level span within this domain *)
  t0 : float;
  t1 : float;
}

type buffer = {
  dom : int;
  mutable stack : (string * float) list;  (* open spans, innermost first *)
  mutable closed : event list;  (* completed spans, most recent first *)
}

type t = {
  clock : unit -> float;
  epoch : float;
  buffers : (int, buffer) Hashtbl.t;
  lock : Mutex.t;
}

(* [Sys.time] is process CPU time: monotonic, stdlib-only, and coarse
   (often 1-10 ms granularity).  Callers that need wall-clock precision
   pass their own [?clock] (gqd uses [Unix.gettimeofday]). *)
let create ?(clock = Sys.time) () =
  { clock; epoch = clock (); buffers = Hashtbl.create 8; lock = Mutex.create () }

let buffer_of t =
  let dom = (Domain.self () :> int) in
  match Hashtbl.find_opt t.buffers dom with
  | Some b -> b
  | None ->
      Mutex.lock t.lock;
      let b =
        match Hashtbl.find_opt t.buffers dom with
        | Some b -> b
        | None ->
            let b = { dom; stack = []; closed = [] } in
            Hashtbl.add t.buffers dom b;
            b
      in
      Mutex.unlock t.lock;
      b

type span = { sname : string; buf : buffer }

let enter t name =
  let b = buffer_of t in
  b.stack <- (name, t.clock () -. t.epoch) :: b.stack;
  { sname = name; buf = b }

(* Exits are matched by name against the innermost open span; exiting a
   span that is not innermost closes the intervening ones too (they
   cannot outlive their parent), keeping the event stream well-nested
   even if an engine leaks a span on an error path. *)
let exit t s =
  let now = t.clock () -. t.epoch in
  let b = s.buf in
  let rec unwind = function
    | [] -> []
    | (name, t0) :: rest ->
        b.closed <-
          { name; domain = b.dom; depth = List.length rest; t0; t1 = now }
          :: b.closed;
        if name = s.sname then rest else unwind rest
  in
  b.stack <- unwind b.stack

let with_span t name f =
  let s = enter t name in
  Fun.protect ~finally:(fun () -> exit t s) f

let events t =
  Mutex.lock t.lock;
  let evs =
    Hashtbl.fold (fun _ b acc -> List.rev_append b.closed acc) t.buffers []
  in
  Mutex.unlock t.lock;
  List.sort
    (fun a b ->
      match compare a.t0 b.t0 with 0 -> compare b.t1 a.t1 | c -> c)
    evs

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let event_to_json e =
  Printf.sprintf
    "{\"span\":\"%s\",\"domain\":%d,\"depth\":%d,\"start_s\":%.6f,\"end_s\":%.6f,\"dur_ms\":%.3f}"
    (json_escape e.name) e.domain e.depth e.t0 e.t1
    ((e.t1 -. e.t0) *. 1e3)

let to_jsonl t =
  String.concat "" (List.map (fun e -> event_to_json e ^ "\n") (events t))

let write_jsonl t oc = output_string oc (to_jsonl t)
