(** The telemetry sink threaded through the engines.

    Every instrumented entry point takes [?obs:Obs.t] defaulting to
    {!none}.  A disabled sink makes every operation here a cheap no-op —
    one branch on an immutable field — so uninstrumented call sites pay
    essentially nothing.  An enabled sink routes counter bumps to a
    {!Metrics.t} registry and phase spans to a {!Trace.t} collector,
    both safe to share across the domains of a parallel evaluation.

    Hot loops should hoist the counter lookup with {!counter_fn} (one
    registry lookup per evaluation, one closure call per bump) rather
    than calling {!add} per iteration.

    Counter names are dotted paths owned by the emitting subsystem
    ([rpq.*], [product.*], [plan.*], [governor.*], [server.*], ...).
    The ones added with the bit-parallel kernel: [rpq.bitset.blocks] /
    [rpq.bitset.sweeps] / [rpq.bitset.word_transitions] (packed-kernel
    work: 63-source blocks, adjacency-span sweeps, word-level edge
    relaxations), [rpq.par_decision.<reason>] with [rpq.par_width] (why
    the parallel policy chose its width: [below_threshold],
    [hardware_serial], [parallel], [pinned]), and [server.batched]
    (serve-mode requests answered from a coalesced multi-source run
    rather than a solo evaluation). *)

type t

(** The no-op sink: no metrics, no trace. *)
val none : t

val make : ?metrics:Metrics.t -> ?trace:Trace.t -> unit -> t

(** [false] exactly for {!none}-like sinks (neither metrics nor trace). *)
val enabled : t -> bool

val metrics : t -> Metrics.t option
val trace : t -> Trace.t option

(** {1 Counters} *)

(** [None] when the sink has no metrics registry. *)
val counter : t -> string -> Metrics.counter option

(** Pre-resolved bump function: a shared no-op when disabled, otherwise
    [Metrics.add] on the named counter.  Hoist out of hot loops. *)
val counter_fn : t -> string -> int -> unit

val add : t -> string -> int -> unit
val incr : t -> string -> unit
val observe : t -> string -> int -> unit

(** {1 Gauges}

    Levels that go up and down (queue depth, connected clients), with
    peak tracking; no-ops when the sink has no metrics registry. *)

(** Pre-resolved delta function, like {!counter_fn}. *)
val gauge_fn : t -> string -> int -> unit

val gauge_add : t -> string -> int -> unit
val gauge_set : t -> string -> int -> unit

(** All gauges as [(name, (level, peak))], sorted by name; [[]] when
    disabled. *)
val gauges : t -> (string * (int * int)) list

(** {1 Spans} *)

(** [span t name f] runs [f] inside a trace span ([f ()] directly when
    the sink has no trace). *)
val span : t -> string -> (unit -> 'a) -> 'a

(** {1 Reporting} *)

(** All counters of the sink's registry, sorted by name; [[]] when
    disabled. *)
val counters : t -> (string * int) list

(** Human summary, one [name value] line per counter (histograms as
    [name count sum], gauges as [name level peak]); [""] when
    disabled. *)
val summary : t -> string
