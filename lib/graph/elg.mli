(** Edge-labeled graphs (Definition 4).

    A graph is a tuple [(N, E, src, tgt, λ)].  Nodes and edges are dense
    integer identifiers ([0 .. nb_nodes-1], [0 .. nb_edges-1]); every node
    and edge also carries a human-readable name (the paper's [a1], [t1]
    style identifiers).  Unlike RDF triples, two distinct edges may share
    source, target and label (Example 5: [t2] and [t5]). *)

type t

(** [make ~nodes ~edges] builds a graph.  [nodes] lists node names;
    [edges] lists [(edge_name, src_name, label, tgt_name)].  Raises
    [Invalid_argument] on duplicate names or unknown endpoints. *)
val make : nodes:string list -> edges:(string * string * string * string) list -> t

(** [id g] is a process-unique stamp assigned at {!make}.  Caches keyed
    by graph use it as their generation: a fresh [load] yields a fresh
    id, so entries for earlier graphs can be invalidated wholesale. *)
val id : t -> int

val nb_nodes : t -> int
val nb_edges : t -> int

val src : t -> int -> int
val tgt : t -> int -> int

(** [label g e] is λ(e). *)
val label : t -> int -> string

val node_name : t -> int -> string
val edge_name : t -> int -> string

(** Raise [Not_found] when no node/edge has that name. *)
val node_id : t -> string -> int

val edge_id : t -> string -> int

(** Outgoing / incoming edge identifiers of a node, in declaration
    order.  These lists are materialized once at {!make}; the CSR
    accessors below expose the same adjacency without per-call
    allocation. *)
val out_edges : t -> int -> int list

val in_edges : t -> int -> int list

(** All distinct edge labels occurring in the graph, sorted. *)
val labels : t -> string list

(** {1 Interned labels}

    Labels are interned at {!make} time: dense ids [0 .. nb_labels-1]
    assigned in sorted label order, so ids are stable under edge
    reordering. *)

val nb_labels : t -> int

(** [label_name g l] is the label with id [l]. *)
val label_name : t -> int -> string

(** [label_id_opt g a] is [Some l] iff label [a] occurs in the graph. *)
val label_id_opt : t -> string -> int option

(** [edge_label_id g e] is the interned id of λ(e). *)
val edge_label_id : t -> int -> int

(** {1 CSR adjacency}

    Immutable compressed-sparse-row adjacency, built once at {!make}.
    Node [n]'s outgoing edges occupy the half-open span {!out_span}
    in a flat int array accessed via {!csr_out_edge}; within a span,
    edges appear in declaration order, matching {!out_edges}.  A second
    copy of each span ({!csr_out_label_edge}) groups the edges by label
    id, giving per-[(node, label)] spans via {!out_label_span}. *)

val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** [out_span g n] is [(lo, hi)]: node [n]'s outgoing edges are
    [csr_out_edge g i] for [lo <= i < hi]. *)
val out_span : t -> int -> int * int

val in_span : t -> int -> int * int
val csr_out_edge : t -> int -> int
val csr_in_edge : t -> int -> int

(** Allocation-free iteration over a node's outgoing / incoming edges
    (declaration order). *)
val iter_out : t -> int -> (int -> unit) -> unit

val iter_in : t -> int -> (int -> unit) -> unit

(** [out_label_span g n ~label] is the span of [n]'s outgoing edges
    carrying the label with id [label], into {!csr_out_label_edge};
    [(0, 0)] when there are none. *)
val out_label_span : t -> int -> label:int -> int * int

val csr_out_label_edge : t -> int -> int
val iter_out_label : t -> int -> label:int -> (int -> unit) -> unit

(** The label-partitioned edges as a list (declaration order within the
    label). *)
val out_label_edges : t -> int -> label:int -> int list

val fold_edges : (int -> 'a -> 'a) -> t -> 'a -> 'a
val fold_nodes : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [edges_between g u v] lists edges with source [u] and target [v]. *)
val edges_between : t -> int -> int -> int list

val pp : Format.formatter -> t -> unit

(** {1 Delta application}

    [apply_delta] builds a new graph from an existing one plus a batch
    of edge insertions/deletions, without reparsing or re-interning:
    node arrays and the label table are shared when untouched, and the
    CSR index is rebuilt with pure counting passes over int arrays.  The
    result is indistinguishable from a from-scratch {!make} over the
    surviving declaration sequence (same dense ids, same interned label
    order, same CSR spans) — the model-based update suite pins this. *)

type delta_summary = {
  added_nodes : int;
  removed_nodes : int;
  added_edges : int;
  removed_edges : int;
  touched_labels : string list;
      (** sorted distinct labels of the inserted and deleted edges *)
  relabeled : bool;
      (** the interned label table changed (a label appeared or vanished),
          shifting dense label ids *)
}

(** [apply_delta g ~new_nodes ~add_edges ~del_edges ~del_nodes] —
    [new_nodes] are appended after the surviving nodes in list order;
    [del_nodes] names existing nodes (survivors keep their relative
    declaration order and compact to dense ids — deleting a node
    *requires* every incident edge to appear in [del_edges], which the
    Pg layer arranges); [del_edges] names existing edges (survivors
    compact likewise); [add_edges] append after the surviving edges.
    Total: returns [Error msg] on unknown/duplicate names, leaving [g]
    untouched. *)
val apply_delta :
  t ->
  new_nodes:string list ->
  add_edges:(string * string * string * string) list ->
  del_edges:string list ->
  del_nodes:string list ->
  (t * delta_summary, string) result

(** {1 Binary pack}

    The primal arrays of a graph, exactly what the binary snapshot
    format persists.  [of_pack_res] validates structure totally
    (lengths, id ranges, sorted label table, duplicate names) and
    rebuilds the index and name tables; the pack arrays are adopted,
    not copied. *)

type pack = {
  pk_nodes : string array;
  pk_edges : string array;
  pk_src : int array;
  pk_tgt : int array;
  pk_labels : string array;  (** sorted distinct, every entry used *)
  pk_elbl : int array;
}

val pack : t -> pack
val of_pack_res : pack -> (t, string) result
