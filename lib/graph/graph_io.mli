(** Textual property-graph format, one declaration per line:

    {v
    # comment
    node <name> [<label>] [key=value ...]
    edge <name> <src> <label> <tgt> [key=value ...]
    v}

    Values are parsed with {!Value.of_string_guess}.  Nodes may be declared
    implicitly by being mentioned in an edge (they get the empty label). *)

(** Raised with a message of the form ["line 12: ..."] on malformed
    input. *)
exception Parse_error of string

val parse_string : string -> Pg.t
val parse_file : string -> Pg.t

(** Result-returning variants mapping {!Parse_error} (and, for files,
    [Sys_error]) into the shared {!Gq_error.t}. *)
val parse_res : string -> (Pg.t, Gq_error.t) result
val parse_file_res : string -> (Pg.t, Gq_error.t) result
val to_string : Pg.t -> string
