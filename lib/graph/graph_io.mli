(** Textual property-graph format, one declaration per line:

    {v
    # comment
    node <name> [<label>] [key=value ...]
    edge <name> <src> <label> <tgt> [key=value ...]
    v}

    Values are parsed with {!Value.of_string_guess}.  Nodes may be declared
    implicitly by being mentioned in an edge (they get the empty label). *)

(** Raised with a message of the form ["line 12: ..."] on malformed
    input. *)
exception Parse_error of string

val parse_string : string -> Pg.t

(** Carries the failpoint site [graph.load]. *)
val parse_file : string -> Pg.t

(** Result-returning variants.  The contract is total: malformed input of
    any kind — bad arity, unknown declaration, bad property syntax, a
    truncated file — returns a position-tagged [Error], never an escaped
    [Failure]/[Invalid_argument]/[Sys_error].  Only [Failpoint.Injected]
    passes through, for supervision layers to classify and retry. *)
val parse_res : string -> (Pg.t, Gq_error.t) result
val parse_file_res : string -> (Pg.t, Gq_error.t) result
val to_string : Pg.t -> string

(** {1 Binary snapshot format (GQB1)}

    A compact, versioned, checksummed binary serialization of a property
    graph: magic ["GQB1"], a u64 payload length, a u64 FNV-1a checksum,
    then the primal arrays (label table, nodes, edges, properties) in
    little-endian layout — see the format comment in the implementation
    and DESIGN.md.  Loading validates the header, the checksum, and the
    graph structure ({!Pg.of_pack_res}) and rebuilds only the index:
    no text parsing, no re-interning.  Truncated or bit-flipped files
    are rejected with [Error (Parse {what = "binary graph"})]; no
    exception escapes the [*_res] loaders. *)

val to_bin_string : Pg.t -> string
val of_bin_string_res : string -> (Pg.t, Gq_error.t) result

(** The FNV-1a 64-bit hash the GQB1 checksum uses (the write-ahead log
    shares it for its record checksums). *)
val fnv1a64 : string -> int64

(** [save_bin_res pg path] writes the snapshot crash-safely — temp file
    in the target directory, fsync, atomic rename over [path], directory
    fsync — returning the byte count; a crash mid-save can never destroy
    the previous snapshot.  Carries the failpoint site [graph.save]; I/O
    failures map to [Error (Io _)]. *)
val save_bin_res : Pg.t -> string -> (int, Gq_error.t) result

(** Format-sniffing loader: dispatches on the magic bytes, so every load
    path accepts both text and binary graphs.  Carries the failpoint
    site [graph.load]. *)
val load_file_res : string -> (Pg.t, Gq_error.t) result
