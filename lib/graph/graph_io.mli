(** Textual property-graph format, one declaration per line:

    {v
    # comment
    node <name> [<label>] [key=value ...]
    edge <name> <src> <label> <tgt> [key=value ...]
    v}

    Values are parsed with {!Value.of_string_guess}.  Nodes may be declared
    implicitly by being mentioned in an edge (they get the empty label). *)

(** Raised with a message of the form ["line 12: ..."] on malformed
    input. *)
exception Parse_error of string

val parse_string : string -> Pg.t

(** Carries the failpoint site [graph.load]. *)
val parse_file : string -> Pg.t

(** Result-returning variants.  The contract is total: malformed input of
    any kind — bad arity, unknown declaration, bad property syntax, a
    truncated file — returns a position-tagged [Error], never an escaped
    [Failure]/[Invalid_argument]/[Sys_error].  Only [Failpoint.Injected]
    passes through, for supervision layers to classify and retry. *)
val parse_res : string -> (Pg.t, Gq_error.t) result
val parse_file_res : string -> (Pg.t, Gq_error.t) result
val to_string : Pg.t -> string
