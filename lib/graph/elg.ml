type t = {
  stamp : int; (* process-unique id; serves as the cache generation *)
  nb_nodes : int;
  nb_edges : int;
  src : int array;
  tgt : int array;
  lbl : string array;
  node_names : string array;
  edge_names : string array;
  node_ids : (string, int) Hashtbl.t;
  edge_ids : (string, int) Hashtbl.t;
  out_adj : int list array;
  in_adj : int list array;
  (* --- interning + CSR index (built once at [make]) --------------------- *)
  nb_labels : int;
  label_names : string array; (* sorted distinct labels; id = index *)
  label_ids : (string, int) Hashtbl.t;
  elbl : int array; (* edge -> label id *)
  out_off : int array; (* nb_nodes+1 offsets into out_csr / out_lbl_csr *)
  out_csr : int array; (* edge ids grouped by source, declaration order *)
  in_off : int array;
  in_csr : int array; (* edge ids grouped by target, declaration order *)
  (* Label-partitioned view: the same per-node spans as [out_csr], but
     within a node the edges are grouped by label id (declaration order
     within a group).  [dir_*] is a sparse per-node directory of the
     labels present: node [v] owns directory entries
     [dir_off.(v) .. dir_off.(v+1) - 1]; entry [i] says label
     [dir_lbl.(i)]'s edges start at [dir_start.(i)] in [out_lbl_csr] and
     run to the next entry's start (or the node's span end). *)
  out_lbl_csr : int array;
  dir_off : int array;
  dir_lbl : int array;
  dir_start : int array;
}

(* CSR + label partition from already-interned arrays.  Split out of
   [build_index] so delta application and the binary loader can rebuild
   the index with pure counting passes — no string hashing or sorting. *)
let index_of_elbl ~nb_nodes ~nb_edges ~src ~tgt ~elbl ~nb_labels =
  (* Plain CSR by counting sort: stable, so each node's span lists its
     edges in declaration order, matching the legacy adjacency lists. *)
  let csr_of key =
    let off = Array.make (nb_nodes + 1) 0 in
    for e = 0 to nb_edges - 1 do
      off.(key.(e) + 1) <- off.(key.(e) + 1) + 1
    done;
    for v = 1 to nb_nodes do
      off.(v) <- off.(v) + off.(v - 1)
    done;
    let fill = Array.copy off in
    let csr = Array.make nb_edges 0 in
    for e = 0 to nb_edges - 1 do
      csr.(fill.(key.(e))) <- e;
      fill.(key.(e)) <- fill.(key.(e)) + 1
    done;
    (off, csr)
  in
  let out_off, out_csr = csr_of src in
  let in_off, in_csr = csr_of tgt in
  (* Label partition: a second stable counting pass inside each node
     span, keyed by label id.  Groups are laid out in ascending label
     order, so a directory entry's span ends where the next entry (or
     the node's span) begins. *)
  let out_lbl_csr = Array.make nb_edges 0 in
  let counts = Array.make (max 1 nb_labels) 0 in
  let cursor = Array.make (max 1 nb_labels) 0 in
  let dir_off = Array.make (nb_nodes + 1) 0 in
  let rev_entries = ref [] (* (label, start), newest first *)
  and dir_n = ref 0 in
  for v = 0 to nb_nodes - 1 do
    let lo = out_off.(v) and hi = out_off.(v + 1) in
    if hi > lo then begin
      let present = ref [] in
      for i = lo to hi - 1 do
        let l = elbl.(out_csr.(i)) in
        if counts.(l) = 0 then present := l :: !present;
        counts.(l) <- counts.(l) + 1
      done;
      let acc = ref lo in
      List.iter
        (fun l ->
          cursor.(l) <- !acc;
          rev_entries := (l, !acc) :: !rev_entries;
          incr dir_n;
          acc := !acc + counts.(l);
          counts.(l) <- 0)
        (List.sort compare !present);
      for i = lo to hi - 1 do
        let e = out_csr.(i) in
        let l = elbl.(e) in
        out_lbl_csr.(cursor.(l)) <- e;
        cursor.(l) <- cursor.(l) + 1
      done
    end;
    dir_off.(v + 1) <- !dir_n
  done;
  let dir_lbl = Array.make (max 1 !dir_n) 0
  and dir_start = Array.make (max 1 !dir_n) 0 in
  List.iteri
    (fun i (l, s) ->
      let j = !dir_n - 1 - i in
      dir_lbl.(j) <- l;
      dir_start.(j) <- s)
    !rev_entries;
  (out_off, out_csr, in_off, in_csr, out_lbl_csr, dir_off, dir_lbl, dir_start)

let build_index ~nb_nodes ~nb_edges ~src ~tgt ~lbl =
  (* Interning: dense ids in sorted label order, so ids are stable under
     edge reordering and [labels] stays the sorted list it always was. *)
  let label_names =
    Array.to_list lbl |> List.sort_uniq String.compare |> Array.of_list
  in
  let nb_labels = Array.length label_names in
  let label_ids = Hashtbl.create (max 8 nb_labels) in
  Array.iteri (fun i a -> Hashtbl.add label_ids a i) label_names;
  let elbl = Array.map (fun a -> Hashtbl.find label_ids a) lbl in
  let out_off, out_csr, in_off, in_csr, out_lbl_csr, dir_off, dir_lbl, dir_start
      =
    index_of_elbl ~nb_nodes ~nb_edges ~src ~tgt ~elbl ~nb_labels
  in
  ( nb_labels, label_names, label_ids, elbl, out_off, out_csr, in_off, in_csr,
    out_lbl_csr, dir_off, dir_lbl, dir_start )

(* Each graph value gets a process-unique stamp so caches keyed by graph
   can tell two loads apart even when the contents coincide. *)
let next_stamp = Atomic.make 0

let make ~nodes ~edges =
  let nb_nodes = List.length nodes in
  let nb_edges = List.length edges in
  let node_names = Array.of_list nodes in
  let node_ids = Hashtbl.create (max 8 nb_nodes) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem node_ids name then
        invalid_arg (Printf.sprintf "Elg.make: duplicate node %s" name);
      Hashtbl.add node_ids name i)
    node_names;
  let src = Array.make nb_edges 0
  and tgt = Array.make nb_edges 0
  and lbl = Array.make nb_edges ""
  and edge_names = Array.make nb_edges "" in
  let edge_ids = Hashtbl.create (max 8 nb_edges) in
  let out_adj = Array.make nb_nodes []
  and in_adj = Array.make nb_nodes [] in
  let node_of name =
    match Hashtbl.find_opt node_ids name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Elg.make: unknown node %s" name)
  in
  List.iteri
    (fun e (name, s, a, t) ->
      if Hashtbl.mem edge_ids name then
        invalid_arg (Printf.sprintf "Elg.make: duplicate edge %s" name);
      Hashtbl.add edge_ids name e;
      edge_names.(e) <- name;
      src.(e) <- node_of s;
      tgt.(e) <- node_of t;
      lbl.(e) <- a)
    edges;
  (* Adjacency lists are built in reverse edge order so that they come out
     in declaration order, which keeps evaluation outputs deterministic. *)
  for e = nb_edges - 1 downto 0 do
    out_adj.(src.(e)) <- e :: out_adj.(src.(e));
    in_adj.(tgt.(e)) <- e :: in_adj.(tgt.(e))
  done;
  let ( nb_labels, label_names, label_ids, elbl, out_off, out_csr, in_off,
        in_csr, out_lbl_csr, dir_off, dir_lbl, dir_start ) =
    build_index ~nb_nodes ~nb_edges ~src ~tgt ~lbl
  in
  {
    stamp = Atomic.fetch_and_add next_stamp 1;
    nb_nodes;
    nb_edges;
    src;
    tgt;
    lbl;
    node_names;
    edge_names;
    node_ids;
    edge_ids;
    out_adj;
    in_adj;
    nb_labels;
    label_names;
    label_ids;
    elbl;
    out_off;
    out_csr;
    in_off;
    in_csr;
    out_lbl_csr;
    dir_off;
    dir_lbl;
    dir_start;
  }

let id g = g.stamp
let nb_nodes g = g.nb_nodes
let nb_edges g = g.nb_edges
let src g e = g.src.(e)
let tgt g e = g.tgt.(e)
let label g e = g.lbl.(e)
let node_name g n = g.node_names.(n)
let edge_name g e = g.edge_names.(e)
let node_id g name = Hashtbl.find g.node_ids name
let edge_id g name = Hashtbl.find g.edge_ids name
let out_edges g n = g.out_adj.(n)
let in_edges g n = g.in_adj.(n)

(* --- interned labels ---------------------------------------------------- *)

let nb_labels g = g.nb_labels
let label_name g l = g.label_names.(l)
let label_id_opt g a = Hashtbl.find_opt g.label_ids a
let edge_label_id g e = g.elbl.(e)

let labels g = Array.to_list g.label_names

(* --- CSR adjacency ------------------------------------------------------ *)

let out_degree g n = g.out_off.(n + 1) - g.out_off.(n)
let in_degree g n = g.in_off.(n + 1) - g.in_off.(n)
let out_span g n = (g.out_off.(n), g.out_off.(n + 1))
let in_span g n = (g.in_off.(n), g.in_off.(n + 1))
let csr_out_edge g i = g.out_csr.(i)
let csr_in_edge g i = g.in_csr.(i)
let csr_out_label_edge g i = g.out_lbl_csr.(i)

let iter_out g n f =
  for i = g.out_off.(n) to g.out_off.(n + 1) - 1 do
    f g.out_csr.(i)
  done

let iter_in g n f =
  for i = g.in_off.(n) to g.in_off.(n + 1) - 1 do
    f g.in_csr.(i)
  done

(* Binary search for [label] in node [n]'s directory slice. *)
let dir_find g n label =
  let lo = ref g.dir_off.(n) and hi = ref (g.dir_off.(n + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let l = g.dir_lbl.(mid) in
    if l = label then found := mid
    else if l < label then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let out_label_span g n ~label =
  let i = dir_find g n label in
  if i < 0 then (0, 0)
  else
    let start = g.dir_start.(i) in
    let stop =
      if i + 1 < g.dir_off.(n + 1) then g.dir_start.(i + 1)
      else g.out_off.(n + 1)
    in
    (start, stop)

let iter_out_label g n ~label f =
  let lo, hi = out_label_span g n ~label in
  for i = lo to hi - 1 do
    f g.out_lbl_csr.(i)
  done

let out_label_edges g n ~label =
  let lo, hi = out_label_span g n ~label in
  List.init (hi - lo) (fun i -> g.out_lbl_csr.(lo + i))

let fold_edges f g acc =
  let acc = ref acc in
  for e = 0 to g.nb_edges - 1 do
    acc := f e !acc
  done;
  !acc

let fold_nodes f g acc =
  let acc = ref acc in
  for n = 0 to g.nb_nodes - 1 do
    acc := f n !acc
  done;
  !acc

let edges_between g u v = List.filter (fun e -> g.tgt.(e) = v) g.out_adj.(u)

(* --- shared assembly from interned arrays ------------------------------- *)

(* Adjacency lists in declaration order (cons'd in reverse edge order). *)
let adj_of_arrays ~nb_nodes ~nb_edges ~src ~tgt =
  let out_adj = Array.make (max 1 nb_nodes) []
  and in_adj = Array.make (max 1 nb_nodes) [] in
  for e = nb_edges - 1 downto 0 do
    out_adj.(src.(e)) <- e :: out_adj.(src.(e));
    in_adj.(tgt.(e)) <- e :: in_adj.(tgt.(e))
  done;
  (out_adj, in_adj)

(* Assemble a graph from trusted, already-interned arrays: rebuilds only
   the CSR index and adjacency lists (counting passes over int arrays —
   no string hashing, no sorting). *)
let assemble ~node_names ~node_ids ~edge_names ~edge_ids ~src ~tgt ~lbl ~elbl
    ~label_names ~label_ids =
  let nb_nodes = Array.length node_names in
  let nb_edges = Array.length edge_names in
  let nb_labels = Array.length label_names in
  let out_adj, in_adj = adj_of_arrays ~nb_nodes ~nb_edges ~src ~tgt in
  let out_off, out_csr, in_off, in_csr, out_lbl_csr, dir_off, dir_lbl, dir_start
      =
    index_of_elbl ~nb_nodes ~nb_edges ~src ~tgt ~elbl ~nb_labels
  in
  {
    stamp = Atomic.fetch_and_add next_stamp 1;
    nb_nodes;
    nb_edges;
    src;
    tgt;
    lbl;
    node_names;
    edge_names;
    node_ids;
    edge_ids;
    out_adj;
    in_adj;
    nb_labels;
    label_names;
    label_ids;
    elbl;
    out_off;
    out_csr;
    in_off;
    in_csr;
    out_lbl_csr;
    dir_off;
    dir_lbl;
    dir_start;
  }

(* --- delta application --------------------------------------------------- *)

type delta_summary = {
  added_nodes : int;
  removed_nodes : int;
  added_edges : int;
  removed_edges : int;
  touched_labels : string list;
  relabeled : bool;
}

let ids_of names =
  let h = Hashtbl.create (max 8 (Array.length names)) in
  Array.iteri (fun i a -> Hashtbl.add h a i) names;
  h

let apply_delta g ~new_nodes ~add_edges ~del_edges ~del_nodes =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  (* Node deletions: mark dense node ids dead; survivors compact,
     keeping their relative declaration order. *)
  let dead_node = Array.make (max 1 g.nb_nodes) false in
  let* nb_del_nodes =
    let rec go k = function
      | [] -> Ok k
      | name :: rest -> (
          match Hashtbl.find_opt g.node_ids name with
          | None -> err "unknown node %s" name
          | Some v ->
              if dead_node.(v) then err "duplicate delete of node %s" name
              else begin
                dead_node.(v) <- true;
                go (k + 1) rest
              end)
    in
    go 0 del_nodes
  in
  (* Nodes: existing arrays and the name table are shared verbatim when
     the delta neither declares nor deletes any; with deletions the
     survivors compact and every old id is remapped. *)
  let nb_new = List.length new_nodes in
  let* node_names, node_ids, node_remap =
    if nb_del_nodes = 0 && nb_new = 0 then Ok (g.node_names, g.node_ids, None)
    else if nb_del_nodes = 0 then begin
      let names = Array.make (g.nb_nodes + nb_new) "" in
      Array.blit g.node_names 0 names 0 g.nb_nodes;
      let ids = Hashtbl.copy g.node_ids in
      let rec go i = function
        | [] -> Ok (names, ids, None)
        | name :: rest ->
            if Hashtbl.mem ids name then err "duplicate node %s" name
            else begin
              names.(i) <- name;
              Hashtbl.add ids name i;
              go (i + 1) rest
            end
      in
      go g.nb_nodes new_nodes
    end
    else begin
      let nb_nodes' = g.nb_nodes - nb_del_nodes + nb_new in
      let names = Array.make nb_nodes' "" in
      let remap = Array.make (max 1 g.nb_nodes) (-1) in
      let k = ref 0 in
      for v = 0 to g.nb_nodes - 1 do
        if not dead_node.(v) then begin
          names.(!k) <- g.node_names.(v);
          remap.(v) <- !k;
          incr k
        end
      done;
      let ids = Hashtbl.create (max 8 nb_nodes') in
      for v = 0 to !k - 1 do
        Hashtbl.add ids names.(v) v
      done;
      let rec go i = function
        | [] -> Ok (names, ids, Some remap)
        | name :: rest ->
            if Hashtbl.mem ids name then err "duplicate node %s" name
            else begin
              names.(i) <- name;
              Hashtbl.add ids name i;
              go (i + 1) rest
            end
      in
      go !k new_nodes
    end
  in
  (* Deletions: mark dense edge ids dead; ids of survivors compact. *)
  let dead = Array.make (max 1 g.nb_edges) false in
  let* nb_del =
    let rec go k = function
      | [] -> Ok k
      | name :: rest -> (
          match Hashtbl.find_opt g.edge_ids name with
          | None -> err "unknown edge %s" name
          | Some e ->
              if dead.(e) then err "duplicate delete of edge %s" name
              else begin
                dead.(e) <- true;
                go (k + 1) rest
              end)
    in
    go 0 del_edges
  in
  (* A deleted node takes its incident edges with it; the caller is
     expected to list them in [del_edges] (the Pg layer does), so a
     survivor touching a dead node is an internal-invariant breach. *)
  let* () =
    if nb_del_nodes = 0 then Ok ()
    else begin
      let bad = ref None in
      for e = 0 to g.nb_edges - 1 do
        if
          (not dead.(e))
          && !bad = None
          && (dead_node.(g.src.(e)) || dead_node.(g.tgt.(e)))
        then bad := Some g.edge_names.(e)
      done;
      match !bad with
      | Some name -> err "deleted node still has incident edge %s" name
      | None -> Ok ()
    end
  in
  let remap_node v = match node_remap with None -> v | Some r -> r.(v) in
  let nb_add = List.length add_edges in
  let nb_edges = g.nb_edges - nb_del + nb_add in
  let src = Array.make nb_edges 0
  and tgt = Array.make nb_edges 0
  and lbl = Array.make nb_edges ""
  and edge_names = Array.make nb_edges "" in
  (* Survivors keep their relative order (matching a from-scratch build
     over the surviving declaration sequence). *)
  let k = ref 0 in
  for e = 0 to g.nb_edges - 1 do
    if not dead.(e) then begin
      src.(!k) <- remap_node g.src.(e);
      tgt.(!k) <- remap_node g.tgt.(e);
      lbl.(!k) <- g.lbl.(e);
      edge_names.(!k) <- g.edge_names.(e);
      incr k
    end
  done;
  (* With no deletions the edge-name table is an O(m) shallow copy; any
     deletion renumbers the dense ids, forcing a rehash of survivors. *)
  let edge_ids =
    if nb_del = 0 then Hashtbl.copy g.edge_ids
    else begin
      let h = Hashtbl.create (max 8 nb_edges) in
      for e = 0 to !k - 1 do
        Hashtbl.add h edge_names.(e) e
      done;
      h
    end
  in
  let* () =
    let rec go i = function
      | [] -> Ok ()
      | (name, s, a, t) :: rest -> (
          if Hashtbl.mem edge_ids name then err "duplicate edge %s" name
          else
            match
              (Hashtbl.find_opt node_ids s, Hashtbl.find_opt node_ids t)
            with
            | None, _ -> err "unknown node %s" s
            | _, None -> err "unknown node %s" t
            | Some si, Some ti ->
                Hashtbl.add edge_ids name i;
                edge_names.(i) <- name;
                src.(i) <- si;
                tgt.(i) <- ti;
                lbl.(i) <- a;
                go (i + 1) rest)
    in
    go !k add_edges
  in
  (* Interning: the label table is shared when every added label is
     already interned and no deletion emptied a label; otherwise the
     sorted table is rebuilt and survivor ids remapped (a new or vanished
     label shifts every id after it in sort order). *)
  let old_cnt = Array.make (max 1 g.nb_labels) 0 in
  for e = 0 to g.nb_edges - 1 do
    if not dead.(e) then old_cnt.(g.elbl.(e)) <- old_cnt.(g.elbl.(e)) + 1
  done;
  (* [old_cnt] now counts surviving edges per old label id. *)
  let fresh_label =
    List.exists (fun (_, _, a, _) -> not (Hashtbl.mem g.label_ids a)) add_edges
  in
  let emptied = ref false in
  List.iter
    (fun name ->
      let e = Hashtbl.find g.edge_ids name in
      let l = g.elbl.(e) in
      if
        old_cnt.(l) = 0
        && not (List.exists (fun (_, _, a, _) -> a = g.lbl.(e)) add_edges)
      then emptied := true)
    del_edges;
  let relabeled = fresh_label || !emptied in
  let label_names, label_ids =
    if not relabeled then (g.label_names, g.label_ids)
    else begin
      let survivors = ref [] in
      for l = g.nb_labels - 1 downto 0 do
        if old_cnt.(l) > 0 then survivors := g.label_names.(l) :: !survivors
      done;
      let names =
        List.rev_append
          (List.rev_map (fun (_, _, a, _) -> a) add_edges)
          !survivors
        |> List.sort_uniq String.compare
        |> Array.of_list
      in
      (names, ids_of names)
    end
  in
  let elbl =
    if not relabeled && nb_del = 0 && nb_add = 0 then g.elbl
    else begin
      let a = Array.make nb_edges 0 in
      if relabeled then
        for e = 0 to nb_edges - 1 do
          a.(e) <- Hashtbl.find label_ids lbl.(e)
        done
      else begin
        (* survivors keep their old ids; only added edges need lookup *)
        let k = ref 0 in
        for e = 0 to g.nb_edges - 1 do
          if not dead.(e) then begin
            a.(!k) <- g.elbl.(e);
            incr k
          end
        done;
        for e = !k to nb_edges - 1 do
          a.(e) <- Hashtbl.find label_ids lbl.(e)
        done
      end;
      a
    end
  in
  let touched_labels =
    List.rev_append
      (List.rev_map (fun (_, _, a, _) -> a) add_edges)
      (List.map (fun name -> g.lbl.(Hashtbl.find g.edge_ids name)) del_edges)
    |> List.sort_uniq String.compare
  in
  let g' =
    assemble ~node_names ~node_ids ~edge_names ~edge_ids ~src ~tgt ~lbl ~elbl
      ~label_names ~label_ids
  in
  Ok
    ( g',
      {
        added_nodes = nb_new;
        removed_nodes = nb_del_nodes;
        added_edges = nb_add;
        removed_edges = nb_del;
        touched_labels;
        relabeled;
      } )

(* --- binary pack --------------------------------------------------------- *)

type pack = {
  pk_nodes : string array;
  pk_edges : string array;
  pk_src : int array;
  pk_tgt : int array;
  pk_labels : string array;
  pk_elbl : int array;
}

let pack g =
  {
    pk_nodes = g.node_names;
    pk_edges = g.edge_names;
    pk_src = g.src;
    pk_tgt = g.tgt;
    pk_labels = g.label_names;
    pk_elbl = g.elbl;
  }

let of_pack_res p =
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let nb_nodes = Array.length p.pk_nodes in
  let nb_edges = Array.length p.pk_edges in
  let nb_labels = Array.length p.pk_labels in
  try
    if
      Array.length p.pk_src <> nb_edges
      || Array.length p.pk_tgt <> nb_edges
      || Array.length p.pk_elbl <> nb_edges
    then bad "edge array lengths disagree";
    for l = 1 to nb_labels - 1 do
      if String.compare p.pk_labels.(l - 1) p.pk_labels.(l) >= 0 then
        bad "label table not strictly sorted"
    done;
    let used = Array.make (max 1 nb_labels) false in
    for e = 0 to nb_edges - 1 do
      let l = p.pk_elbl.(e) in
      if l < 0 || l >= nb_labels then bad "edge %d: label id out of range" e;
      used.(l) <- true;
      if p.pk_src.(e) < 0 || p.pk_src.(e) >= nb_nodes then
        bad "edge %d: source out of range" e;
      if p.pk_tgt.(e) < 0 || p.pk_tgt.(e) >= nb_nodes then
        bad "edge %d: target out of range" e
    done;
    for l = 0 to nb_labels - 1 do
      if not used.(l) then bad "unused label %s in table" p.pk_labels.(l)
    done;
    let node_ids = Hashtbl.create (max 8 nb_nodes) in
    Array.iteri
      (fun i a ->
        if Hashtbl.mem node_ids a then bad "duplicate node %s" a
        else Hashtbl.add node_ids a i)
      p.pk_nodes;
    let edge_ids = Hashtbl.create (max 8 nb_edges) in
    Array.iteri
      (fun i a ->
        if Hashtbl.mem edge_ids a then bad "duplicate edge %s" a
        else Hashtbl.add edge_ids a i)
      p.pk_edges;
    let lbl = Array.map (fun l -> p.pk_labels.(l)) p.pk_elbl in
    Ok
      (assemble ~node_names:p.pk_nodes ~node_ids ~edge_names:p.pk_edges
         ~edge_ids ~src:p.pk_src ~tgt:p.pk_tgt ~lbl ~elbl:p.pk_elbl
         ~label_names:p.pk_labels ~label_ids:(ids_of p.pk_labels))
  with Bad s -> Error s

let pp fmt g =
  Format.fprintf fmt "@[<v>graph (%d nodes, %d edges)@," g.nb_nodes g.nb_edges;
  for e = 0 to g.nb_edges - 1 do
    Format.fprintf fmt "%s: %s -[%s]-> %s@," g.edge_names.(e)
      g.node_names.(g.src.(e)) g.lbl.(e) g.node_names.(g.tgt.(e))
  done;
  Format.fprintf fmt "@]"
