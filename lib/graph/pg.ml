type t = {
  elg : Elg.t;
  node_lbl : string array;
  node_props : (string * Value.t) list array;
  edge_props : (string * Value.t) list array;
}

let make ~nodes ~edges =
  let elg =
    Elg.make
      ~nodes:(List.map (fun (name, _, _) -> name) nodes)
      ~edges:(List.map (fun (name, s, a, t, _) -> (name, s, a, t)) edges)
  in
  let node_lbl = Array.make (Elg.nb_nodes elg) "" in
  let node_props = Array.make (Elg.nb_nodes elg) [] in
  List.iter
    (fun (name, lbl, props) ->
      let i = Elg.node_id elg name in
      node_lbl.(i) <- lbl;
      node_props.(i) <- props)
    nodes;
  let edge_props = Array.make (Elg.nb_edges elg) [] in
  List.iter
    (fun (name, _, _, _, props) ->
      edge_props.(Elg.edge_id elg name) <- props)
    edges;
  { elg; node_lbl; node_props; edge_props }

let elg g = g.elg
let node_label g n = g.node_lbl.(n)

let obj_label g = function
  | Path.N n -> g.node_lbl.(n)
  | Path.E e -> Elg.label g.elg e

let node_prop g n key = List.assoc_opt key g.node_props.(n)
let edge_prop g e key = List.assoc_opt key g.edge_props.(e)

let prop g o key =
  match o with
  | Path.N n -> node_prop g n key
  | Path.E e -> edge_prop g e key

let props_of g = function
  | Path.N n -> g.node_props.(n)
  | Path.E e -> g.edge_props.(e)

let active_domain g =
  let add acc props = List.fold_left (fun acc (_, v) -> v :: acc) acc props in
  let vals = Array.fold_left add [] g.node_props in
  let vals = Array.fold_left add vals g.edge_props in
  List.sort_uniq Value.compare vals

(* --- delta application --------------------------------------------------- *)

type delta_op =
  | Add_edge of {
      name : string;
      src : string;
      label : string;
      tgt : string;
      props : (string * Value.t) list;
    }
  | Del_edge of string
  | Del_node of string

type add = {
  a_name : string;
  a_src : string;
  a_label : string;
  a_tgt : string;
  a_props : (string * Value.t) list;
}

type applied = {
  ap_pg : t;
  ap_summary : Elg.delta_summary;
  ap_adds : (string * string * string * string) list;
  ap_dels : string list;
}

let apply_delta_res g ops =
  let elg0 = g.elg in
  let exception Bad of string in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  try
    (* Sequential semantics over the batch: [add e] then [del e] nets out
       (though implicit nodes the add introduced persist, exactly as under
       op-at-a-time application); [del e] frees the name for a later add.
       [deln v] drops the node together with every incident edge that is
       alive at that point — pending adds touching it are cancelled, and
       its name is freed for a later implicit re-creation. *)
    let in_base name =
      match Elg.edge_id elg0 name with
      | _ -> true
      | exception Not_found -> false
    in
    let node_in_base name =
      match Elg.node_id elg0 name with
      | _ -> true
      | exception Not_found -> false
    in
    let deleted = Hashtbl.create 8 in
    let dels = ref [] in
    let pending = Hashtbl.create 8 in
    let adds = ref [] (* newest first *) in
    let new_node_set = Hashtbl.create 8 in
    let new_nodes = ref [] (* newest first *) in
    let deleted_nodes = Hashtbl.create 8 in
    let del_nodes = ref [] (* newest first *) in
    let note_node name =
      if
        not
          ((node_in_base name && not (Hashtbl.mem deleted_nodes name))
          || Hashtbl.mem new_node_set name)
      then begin
        Hashtbl.add new_node_set name ();
        new_nodes := name :: !new_nodes
      end
    in
    (* Drop every pending add touching [name] (its incident unapplied
       edges die with it). *)
    let cancel_incident name =
      adds :=
        List.filter
          (fun a ->
            if a.a_src = name || a.a_tgt = name then begin
              Hashtbl.remove pending a.a_name;
              false
            end
            else true)
          !adds
    in
    List.iter
      (function
        | Add_edge { name; src; label; tgt; props } ->
            if
              (in_base name && not (Hashtbl.mem deleted name))
              || Hashtbl.mem pending name
            then bad "duplicate edge %s" name;
            note_node src;
            note_node tgt;
            Hashtbl.add pending name ();
            adds :=
              {
                a_name = name;
                a_src = src;
                a_label = label;
                a_tgt = tgt;
                a_props = props;
              }
              :: !adds
        | Del_edge name ->
            if Hashtbl.mem pending name then begin
              Hashtbl.remove pending name;
              adds := List.filter (fun a -> a.a_name <> name) !adds
            end
            else if in_base name && not (Hashtbl.mem deleted name) then begin
              Hashtbl.add deleted name ();
              dels := name :: !dels
            end
            else bad "unknown edge %s" name
        | Del_node name ->
            if Hashtbl.mem new_node_set name then begin
              (* A node this very batch introduced: cancel it and its
                 pending edges; nothing reaches the base graph. *)
              Hashtbl.remove new_node_set name;
              new_nodes := List.filter (fun n -> n <> name) !new_nodes;
              cancel_incident name
            end
            else if node_in_base name && not (Hashtbl.mem deleted_nodes name)
            then begin
              Hashtbl.add deleted_nodes name ();
              del_nodes := name :: !del_nodes;
              cancel_incident name;
              (* Surviving base edges incident to the node die with it. *)
              let v = Elg.node_id elg0 name in
              let bury e =
                let en = Elg.edge_name elg0 e in
                if not (Hashtbl.mem deleted en) then begin
                  Hashtbl.add deleted en ();
                  dels := en :: !dels
                end
              in
              List.iter bury (Elg.out_edges elg0 v);
              List.iter bury (Elg.in_edges elg0 v)
            end
            else bad "unknown node %s" name)
      ops;
    let add_edges =
      List.rev_map (fun a -> (a.a_name, a.a_src, a.a_label, a.a_tgt)) !adds
    in
    match
      Elg.apply_delta elg0 ~new_nodes:(List.rev !new_nodes)
        ~add_edges ~del_edges:(List.rev !dels)
        ~del_nodes:(List.rev !del_nodes)
    with
    | Error e -> Error e
    | Ok (elg, summary) ->
        (* Node-side arrays are shared when no node was introduced or
           removed; otherwise survivors compact exactly as in
           {!Elg.apply_delta} and implicit nodes get the empty label and
           no properties, matching the text format. *)
        let node_lbl, node_props =
          if summary.Elg.added_nodes = 0 && summary.Elg.removed_nodes = 0 then
            (g.node_lbl, g.node_props)
          else begin
            let n = Elg.nb_nodes elg in
            let lbls = Array.make n "" and props = Array.make n [] in
            let dead_node = Array.make (max 1 (Elg.nb_nodes elg0)) false in
            List.iter
              (fun name -> dead_node.(Elg.node_id elg0 name) <- true)
              !del_nodes;
            let k = ref 0 in
            for v = 0 to Elg.nb_nodes elg0 - 1 do
              if not dead_node.(v) then begin
                lbls.(!k) <- g.node_lbl.(v);
                props.(!k) <- g.node_props.(v);
                incr k
              end
            done;
            (lbls, props)
          end
        in
        let edge_props = Array.make (Elg.nb_edges elg) [] in
        let dead = Array.make (max 1 (Elg.nb_edges elg0)) false in
        List.iter
          (fun name -> dead.(Elg.edge_id elg0 name) <- true)
          !dels;
        let k = ref 0 in
        for e = 0 to Elg.nb_edges elg0 - 1 do
          if not dead.(e) then begin
            edge_props.(!k) <- g.edge_props.(e);
            incr k
          end
        done;
        List.iter
          (fun a ->
            edge_props.(!k) <- a.a_props;
            incr k)
          (List.rev !adds);
        Ok
          {
            ap_pg = { elg; node_lbl; node_props; edge_props };
            ap_summary = summary;
            ap_adds = add_edges;
            ap_dels = List.rev !dels;
          }
  with Bad s -> Error s

(* --- binary pack --------------------------------------------------------- *)

type pack = {
  pk_elg : Elg.pack;
  pk_node_lbl : string array;
  pk_node_props : (string * Value.t) list array;
  pk_edge_props : (string * Value.t) list array;
}

let pack g =
  {
    pk_elg = Elg.pack g.elg;
    pk_node_lbl = g.node_lbl;
    pk_node_props = g.node_props;
    pk_edge_props = g.edge_props;
  }

let of_pack_res p =
  match Elg.of_pack_res p.pk_elg with
  | Error _ as e -> e
  | Ok elg ->
      if
        Array.length p.pk_node_lbl <> Elg.nb_nodes elg
        || Array.length p.pk_node_props <> Elg.nb_nodes elg
        || Array.length p.pk_edge_props <> Elg.nb_edges elg
      then Error "property array lengths disagree"
      else
        Ok
          {
            elg;
            node_lbl = p.pk_node_lbl;
            node_props = p.pk_node_props;
            edge_props = p.pk_edge_props;
          }

let pp fmt g =
  let e = g.elg in
  Format.fprintf fmt "@[<v>property graph (%d nodes, %d edges)@,"
    (Elg.nb_nodes e) (Elg.nb_edges e);
  let pp_props fmt props =
    List.iter
      (fun (k, v) -> Format.fprintf fmt " %s=%s" k (Value.to_string v))
      props
  in
  for n = 0 to Elg.nb_nodes e - 1 do
    Format.fprintf fmt "(%s:%s)%a@," (Elg.node_name e n) g.node_lbl.(n)
      pp_props g.node_props.(n)
  done;
  for i = 0 to Elg.nb_edges e - 1 do
    Format.fprintf fmt "%s: %s -[%s]-> %s%a@," (Elg.edge_name e i)
      (Elg.node_name e (Elg.src e i))
      (Elg.label e i)
      (Elg.node_name e (Elg.tgt e i))
      pp_props g.edge_props.(i)
  done;
  Format.fprintf fmt "@]"
