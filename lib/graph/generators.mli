(** Workload graphs: the paper's running examples and the families used by
    the benchmark experiments.

    The bank graphs reconstruct Figures 2 and 3.  The figures are only
    partially spelled out in the text, so the topology is fixed by the
    constraints the paper's examples impose:
    - [t1: a1→a3] (Example 10), [t2, t5 : a3→a2] (Example 5),
      [t3: a2→a4] and [r10: a4 isBlocked yes] (Example 16),
      [t4: a5→a1] and [t7: a3→a5] (Example 17 and Section 6.3),
      [t6: a3→a4], [t9: a4→a6], [t10: a6→a5] (Section 6.3 data-filter
      discussion);
    - Example 13's [q1] must return exactly [{(a3,a2,a4), (a6,a3,a5)}],
      forcing [t8: a6→a3];
    - Example 12 requires all six accounts strongly Transfer-connected;
    - the PMR example (Section 6.4) requires the only unblocked cycle
      through Mike's account to loop through [t7, t4, t1];
    - the data-filter example requires exactly [t2] and [t6] to have
      amounts below 4.5M.
    All constraints are checked by the test suite. *)

(** The edge-labeled bank graph of Figure 2: accounts, owner names and
    blocked-flags are nodes; [Transfer], [owner], [isBlocked] and [type]
    are edge labels. *)
val bank_elg : unit -> Elg.t

(** The property-graph version of Figure 3: owners, blocked-flags, amounts
    and dates are properties of account nodes and transfer edges. *)
val bank_pg : unit -> Pg.t

(** [diamonds n] is the Figure 5 family: a chain of [n] two-path diamonds,
    all edges labeled ["a"]; it has 2{^n} paths from ["s"] to ["t"]. *)
val diamonds : int -> Elg.t

(** [clique n lbl] is the complete directed graph on [n] nodes (no self
    loops), every edge labeled [lbl].  Used by the Section 6.1 counting
    experiment. *)
val clique : int -> string -> Elg.t

(** [line n lbl] is a simple path of [n] edges labeled [lbl] (so [n+1]
    nodes [v0 .. vn]).  Used by the [(aa^z + a^z a)*] experiment. *)
val line : int -> string -> Elg.t

(** [cycle n lbl] is a directed cycle with [n] edges. *)
val cycle : int -> string -> Elg.t

(** [subset_sum items] builds the Section 5.2 reduction graph: a chain of
    [length items + 1] nodes with two parallel ["a"]-edges per position,
    one carrying property [k = item] and one [k = 0].  Paths from first to
    last node choose a subset; the reduce-sum query solves SUBSET-SUM. *)
val subset_sum : int list -> Pg.t

(** [dated_line values] is a property-graph chain whose i-th edge carries
    [date = values.(i)]; nodes carry the same [date] values shifted, for
    node-vs-edge comparisons (Example 3 / Example 21). *)
val dated_line : int list -> Pg.t

(** [hub ~spokes ~core ~targets] is a hub-and-spoke graph: [spokes] rim
    nodes each send one ["a"] edge into a shared [core]-node ["b"]
    clique, and every core node sends a ["c"] edge to each of [targets]
    sink nodes.  Under [a.b*.c] every spoke reaches every sink through
    the same dense core, so per-source engines re-traverse the core once
    per spoke while a multi-source engine crosses it once per batch —
    the workload where frontier packing collapses work. *)
val hub : spokes:int -> core:int -> targets:int -> Elg.t

(** [random_graph ~seed ~nodes ~edges ~labels] draws [edges] independent
    uniformly random labeled edges. *)
val random_graph : seed:int -> nodes:int -> edges:int -> labels:string list -> Elg.t

(** [random_pg ~seed ~nodes ~edges ~labels ~prop ~max_value] additionally
    assigns integer property [prop] uniformly in [0..max_value] to all
    nodes and edges. *)
val random_pg :
  seed:int ->
  nodes:int ->
  edges:int ->
  labels:string list ->
  prop:string ->
  max_value:int ->
  Pg.t
