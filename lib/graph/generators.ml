(* The bank-graph topology; see the .mli for how the paper's examples pin
   it down. *)
let transfer_edges =
  [
    ("t1", "a1", "a3");
    ("t2", "a3", "a2");
    ("t3", "a2", "a4");
    ("t4", "a5", "a1");
    ("t5", "a3", "a2");
    ("t6", "a3", "a4");
    ("t7", "a3", "a5");
    ("t8", "a6", "a3");
    ("t9", "a4", "a6");
    ("t10", "a6", "a5");
  ]

(* Amounts in millions: only t2 and t6 fall below the 4.5M threshold of the
   Section 6.3 example. *)
let amounts =
  [
    ("t1", 5.0);
    ("t2", 1.2);
    ("t3", 6.0);
    ("t4", 8.0);
    ("t5", 7.5);
    ("t6", 2.0);
    ("t7", 10.0);
    ("t8", 5.5);
    ("t9", 9.0);
    ("t10", 4.8);
  ]

(* Dates (as yyyymmdd integers), increasing along t1 -> t2 -> t3. *)
let dates =
  [
    ("t1", 20250101);
    ("t2", 20250102);
    ("t3", 20250104);
    ("t4", 20250301);
    ("t5", 20250220);
    ("t6", 20250105);
    ("t7", 20250210);
    ("t8", 20250215);
    ("t9", 20250110);
    ("t10", 20250401);
  ]

let owners =
  [
    ("a1", "Megan");
    ("a2", "Dave");
    ("a3", "Mike");
    ("a4", "Vera");
    ("a5", "Rebecca");
    ("a6", "Jay");
  ]

let blocked = [ ("a4", true) ]

let is_blocked account =
  match List.assoc_opt account blocked with Some b -> b | None -> false

let accounts = List.map fst owners

let bank_elg () =
  let person_nodes = List.map snd owners |> List.sort_uniq String.compare in
  let nodes = accounts @ person_nodes @ [ "yes"; "no"; "Account" ] in
  let transfer = List.map (fun (e, s, t) -> (e, s, "Transfer", t)) transfer_edges in
  let owner_edges =
    List.mapi (fun i (acc, person) -> (Printf.sprintf "r%d" (i + 1), acc, "owner", person)) owners
  in
  let blocked_edges =
    List.mapi
      (fun i acc ->
        ( Printf.sprintf "r%d" (i + 7),
          acc,
          "isBlocked",
          if is_blocked acc then "yes" else "no" ))
      accounts
  in
  let type_edges =
    List.mapi (fun i acc -> (Printf.sprintf "r%d" (i + 13), acc, "type", "Account")) accounts
  in
  Elg.make ~nodes ~edges:(transfer @ owner_edges @ blocked_edges @ type_edges)

let bank_pg () =
  let nodes =
    List.map
      (fun acc ->
        ( acc,
          "Account",
          [
            ("owner", Value.Text (List.assoc acc owners));
            ("isBlocked", Value.Text (if is_blocked acc then "yes" else "no"));
          ] ))
      accounts
  in
  let edges =
    List.map
      (fun (e, s, t) ->
        ( e,
          s,
          "Transfer",
          t,
          [
            ("amount", Value.Real (List.assoc e amounts));
            ("date", Value.Int (List.assoc e dates));
          ] ))
      transfer_edges
  in
  Pg.make ~nodes ~edges

let diamonds n =
  if n < 1 then invalid_arg "Generators.diamonds: need n >= 1";
  let stage i = Printf.sprintf "v%d" i in
  let mid i side = Printf.sprintf "m%d%s" i side in
  let nodes =
    List.concat
      (List.init n (fun i -> [ stage i; mid i "a"; mid i "b" ]))
    @ [ stage n ]
  in
  let edges =
    List.concat
      (List.init n (fun i ->
           [
             (Printf.sprintf "e%d_up_in" i, stage i, "a", mid i "a");
             (Printf.sprintf "e%d_up_out" i, mid i "a", "a", stage (i + 1));
             (Printf.sprintf "e%d_dn_in" i, stage i, "a", mid i "b");
             (Printf.sprintf "e%d_dn_out" i, mid i "b", "a", stage (i + 1));
           ]))
  in
  let rename s = if s = stage 0 then "s" else if s = stage n then "t" else s in
  Elg.make
    ~nodes:(List.map rename nodes)
    ~edges:(List.map (fun (e, s, a, t) -> (e, rename s, a, rename t)) edges)

let clique n lbl =
  let name i = Printf.sprintf "v%d" i in
  let nodes = List.init n name in
  let edges = ref [] in
  for i = n - 1 downto 0 do
    for j = n - 1 downto 0 do
      if i <> j then
        edges := (Printf.sprintf "e%d_%d" i j, name i, lbl, name j) :: !edges
    done
  done;
  Elg.make ~nodes ~edges:!edges

let line n lbl =
  let name i = Printf.sprintf "v%d" i in
  Elg.make
    ~nodes:(List.init (n + 1) name)
    ~edges:
      (List.init n (fun i -> (Printf.sprintf "e%d" i, name i, lbl, name (i + 1))))

let cycle n lbl =
  let name i = Printf.sprintf "v%d" i in
  Elg.make
    ~nodes:(List.init n name)
    ~edges:
      (List.init n (fun i ->
           (Printf.sprintf "e%d" i, name i, lbl, name ((i + 1) mod n))))

let subset_sum items =
  let m = List.length items in
  let name i = Printf.sprintf "v%d" i in
  let nodes = List.init (m + 1) (fun i -> (name i, "Pos", [])) in
  let edges =
    List.concat
      (List.mapi
         (fun i item ->
           [
             ( Printf.sprintf "take%d" i,
               name i,
               "a",
               name (i + 1),
               [ ("k", Value.Int item) ] );
             ( Printf.sprintf "skip%d" i,
               name i,
               "a",
               name (i + 1),
               [ ("k", Value.Int 0) ] );
           ])
         items)
  in
  Pg.make ~nodes ~edges

let dated_line values =
  let n = List.length values in
  let name i = Printf.sprintf "v%d" i in
  let values = Array.of_list values in
  let nodes =
    List.init (n + 1) (fun i ->
        let date = if i < n then values.(i) else values.(n - 1) + 1 in
        (name i, "Point", [ ("date", Value.Int date) ]))
  in
  let edges =
    List.init n (fun i ->
        ( Printf.sprintf "e%d" i,
          name i,
          "a",
          name (i + 1),
          [ ("date", Value.Int values.(i)) ] ))
  in
  Pg.make ~nodes ~edges

let hub ~spokes ~core ~targets =
  let nodes =
    List.init spokes (Printf.sprintf "s%d")
    @ List.init core (Printf.sprintf "h%d")
    @ List.init targets (Printf.sprintf "t%d")
  in
  let spoke_edges =
    List.init spokes (fun i ->
        ( Printf.sprintf "a%d" i,
          Printf.sprintf "s%d" i,
          "a",
          Printf.sprintf "h%d" (i mod core) ))
  in
  let core_edges =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if i = j then None
            else
              Some
                ( Printf.sprintf "b%d_%d" i j,
                  Printf.sprintf "h%d" i,
                  "b",
                  Printf.sprintf "h%d" j ))
          (List.init core Fun.id))
      (List.init core Fun.id)
  in
  let sink_edges =
    List.concat_map
      (fun i ->
        List.init targets (fun j ->
            ( Printf.sprintf "c%d_%d" i j,
              Printf.sprintf "h%d" i,
              "c",
              Printf.sprintf "t%d" j )))
      (List.init core Fun.id)
  in
  Elg.make ~nodes ~edges:(spoke_edges @ core_edges @ sink_edges)

let random_edge_list st ~nodes ~edges ~labels =
  let labels = Array.of_list labels in
  List.init edges (fun i ->
      let s = Random.State.int st nodes and t = Random.State.int st nodes in
      let a = labels.(Random.State.int st (Array.length labels)) in
      (Printf.sprintf "e%d" i, Printf.sprintf "v%d" s, a, Printf.sprintf "v%d" t))

let random_graph ~seed ~nodes ~edges ~labels =
  let st = Random.State.make [| seed |] in
  Elg.make
    ~nodes:(List.init nodes (Printf.sprintf "v%d"))
    ~edges:(random_edge_list st ~nodes ~edges ~labels)

let random_pg ~seed ~nodes ~edges ~labels ~prop ~max_value =
  let st = Random.State.make [| seed |] in
  let edge_list = random_edge_list st ~nodes ~edges ~labels in
  let rand_prop () = [ (prop, Value.Int (Random.State.int st (max_value + 1))) ] in
  Pg.make
    ~nodes:(List.init nodes (fun i -> (Printf.sprintf "v%d" i, "V", rand_prop ())))
    ~edges:(List.map (fun (e, s, a, t) -> (e, s, a, t, rand_prop ())) edge_list)
