exception Parse_error of string

let fail lineno msg = raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_props lineno tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> fail lineno (Printf.sprintf "expected key=value, got %S" tok)
      | Some i ->
          let key = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          if key = "" then fail lineno "empty property name";
          (key, Value.of_string_guess v))
    tokens

let is_prop_token tok = String.contains tok '='

let parse_string text =
  let nodes : (string, string * (string * Value.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let node_order = ref [] in
  let edges = ref [] in
  let declare_node name =
    if not (Hashtbl.mem nodes name) then begin
      Hashtbl.add nodes name ("", []);
      node_order := name :: !node_order
    end
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match split_ws line with
      | [] -> ()
      | "node" :: name :: rest ->
          let label, props =
            match rest with
            | l :: more when not (is_prop_token l) -> (l, more)
            | more -> ("", more)
          in
          declare_node name;
          Hashtbl.replace nodes name (label, parse_props lineno props)
      | [ "node" ] -> fail lineno "node: missing name"
      | "edge" :: name :: src :: label :: tgt :: props ->
          declare_node src;
          declare_node tgt;
          edges := (name, src, label, tgt, parse_props lineno props) :: !edges
      | "edge" :: _ -> fail lineno "edge: expected <name> <src> <label> <tgt>"
      | tok :: _ -> fail lineno (Printf.sprintf "unknown declaration %S" tok))
    lines;
  let node_list =
    List.rev_map
      (fun name ->
        let label, props = Hashtbl.find nodes name in
        (name, label, props))
      !node_order
  in
  Pg.make ~nodes:node_list ~edges:(List.rev !edges)

let parse_file path =
  Failpoint.check "graph.load";
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

let escape_value v =
  let s = Value.to_string v in
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) s

let to_string pg =
  let g = Pg.elg pg in
  let buf = Buffer.create 1024 in
  let props_str props =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (escape_value v)) props)
  in
  for n = 0 to Elg.nb_nodes g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node %s %s%s\n" (Elg.node_name g n) (Pg.node_label pg n)
         (props_str (Pg.props_of pg (Path.N n))))
  done;
  for e = 0 to Elg.nb_edges g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "edge %s %s %s %s%s\n" (Elg.edge_name g e)
         (Elg.node_name g (Elg.src g e))
         (Elg.label g e)
         (Elg.node_name g (Elg.tgt g e))
         (props_str (Pg.props_of pg (Path.E e))))
  done;
  Buffer.contents buf

(* The [*_res] contract: malformed input is an [Error], never an escaped
   exception.  [Parse_error] carries the position-tagged message; the
   [Failure]/[Invalid_argument] arms are a backstop so no stdlib helper
   reached through parsing can crash a caller that chose the result API.
   [Failpoint.Injected] deliberately passes through — supervision layers
   must see injected faults as exceptions to classify and retry. *)
let parse_res src =
  match parse_string src with
  | pg -> Ok pg
  | exception Parse_error msg -> Error (Gq_error.Parse { what = "graph"; msg })
  | exception Failure msg ->
      Error (Gq_error.Parse { what = "graph"; msg })
  | exception Invalid_argument msg ->
      Error (Gq_error.Parse { what = "graph"; msg })

let parse_file_res path =
  match parse_file path with
  | pg -> Ok pg
  | exception Parse_error msg -> Error (Gq_error.Parse { what = "graph"; msg })
  | exception Failure msg -> Error (Gq_error.Parse { what = "graph"; msg })
  | exception Invalid_argument msg ->
      Error (Gq_error.Parse { what = "graph"; msg })
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception End_of_file ->
      Error (Gq_error.Io (Printf.sprintf "%s: truncated file" path))

(* --- binary snapshot format (GQB1) --------------------------------------- *)

(* Layout (all integers little-endian):
     bytes 0..3   magic "GQB1" (format + version)
     bytes 4..11  u64 payload length
     bytes 12..19 u64 FNV-1a of the payload
     bytes 20..   payload:
       u32 nb_nodes | u32 nb_edges | u32 nb_labels
       labels   nl x str                       (sorted intern table)
       nodes    n  x (str name | str label | props)
       edges    m  x (str name | u32 src | u32 tgt | u32 lbl_id | props)
     str   = u32 length | bytes
     props = u16 count x (str key | u8 tag | payload)
             tag 0 = Int i64, 1 = Real float64 bits, 2 = Text str,
             3 = Bool u8
   A truncated file fails the length check, a flipped bit fails the
   checksum, and a payload that decodes but violates graph structure is
   rejected by [Pg.of_pack_res] — corruption never escapes as an
   exception through the [*_res] loaders. *)

let bin_magic = "GQB1"

let fnv1a64 s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := logxor !h (of_int (Char.code c));
      h := mul !h 0x100000001b3L)
    s;
  !h

let to_bin_string pg =
  let p = Pg.pack pg in
  let e = p.Pg.pk_elg in
  let buf = Buffer.create 4096 in
  let u32 n = Buffer.add_int32_le buf (Int32.of_int n) in
  let str s =
    u32 (String.length s);
    Buffer.add_string buf s
  in
  let props ps =
    Buffer.add_uint16_le buf (List.length ps);
    List.iter
      (fun (k, v) ->
        str k;
        match (v : Value.t) with
        | Int i ->
            Buffer.add_uint8 buf 0;
            Buffer.add_int64_le buf (Int64.of_int i)
        | Real r ->
            Buffer.add_uint8 buf 1;
            Buffer.add_int64_le buf (Int64.bits_of_float r)
        | Text s ->
            Buffer.add_uint8 buf 2;
            str s
        | Bool b ->
            Buffer.add_uint8 buf 3;
            Buffer.add_uint8 buf (if b then 1 else 0))
      ps
  in
  let n = Array.length p.Pg.pk_node_lbl in
  let m = Array.length e.Elg.pk_edges in
  u32 n;
  u32 m;
  u32 (Array.length e.Elg.pk_labels);
  Array.iter str e.Elg.pk_labels;
  for v = 0 to n - 1 do
    str e.Elg.pk_nodes.(v);
    str p.Pg.pk_node_lbl.(v);
    props p.Pg.pk_node_props.(v)
  done;
  for i = 0 to m - 1 do
    str e.Elg.pk_edges.(i);
    u32 e.Elg.pk_src.(i);
    u32 e.Elg.pk_tgt.(i);
    u32 e.Elg.pk_elbl.(i);
    props p.Pg.pk_edge_props.(i)
  done;
  let payload = Buffer.contents buf in
  let hdr = Bytes.create 20 in
  Bytes.blit_string bin_magic 0 hdr 0 4;
  Bytes.set_int64_le hdr 4 (Int64.of_int (String.length payload));
  Bytes.set_int64_le hdr 12 (fnv1a64 payload);
  Bytes.to_string hdr ^ payload

exception Corrupt of string

let of_bin_string_res s =
  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let err msg = Error (Gq_error.Parse { what = "binary graph"; msg }) in
  try
    if String.length s < 20 then corrupt "truncated header (%d bytes)"
        (String.length s);
    if String.sub s 0 4 <> bin_magic then
      corrupt "bad magic %S (want %S)" (String.sub s 0 4) bin_magic;
    (* Compare at full u64 width: [Int64.to_int] drops bit 63 on 63-bit
       native ints, which would let a flip of the length field's top bit
       slip past an int-level comparison. *)
    let plen64 = String.get_int64_le s 4 in
    if plen64 <> Int64.of_int (String.length s - 20) then
      corrupt "payload length %Ld disagrees with file size %d" plen64
        (String.length s - 20);
    let plen = Int64.to_int plen64 in
    let payload = String.sub s 20 plen in
    let want = String.get_int64_le s 12 in
    let got = fnv1a64 payload in
    if want <> got then
      corrupt "checksum mismatch (stored %Lx, computed %Lx)" want got;
    let pos = ref 0 in
    let need k what =
      if !pos + k > plen then corrupt "truncated payload reading %s" what
    in
    let u32 what =
      need 4 what;
      let v = Int32.to_int (String.get_int32_le payload !pos) in
      pos := !pos + 4;
      if v < 0 then corrupt "negative %s" what;
      v
    in
    let u8 what =
      need 1 what;
      let v = Char.code payload.[!pos] in
      incr pos;
      v
    in
    let u16 what =
      need 2 what;
      let v = String.get_uint16_le payload !pos in
      pos := !pos + 2;
      v
    in
    let i64 what =
      need 8 what;
      let v = String.get_int64_le payload !pos in
      pos := !pos + 8;
      v
    in
    let str what =
      let k = u32 what in
      need k what;
      let v = String.sub payload !pos k in
      pos := !pos + k;
      v
    in
    let props what =
      let k = u16 what in
      List.init k (fun _ ->
          let key = str what in
          let v =
            match u8 what with
            | 0 -> Value.Int (Int64.to_int (i64 what))
            | 1 -> Value.Real (Int64.float_of_bits (i64 what))
            | 2 -> Value.Text (str what)
            | 3 -> Value.Bool (u8 what <> 0)
            | t -> corrupt "unknown value tag %d in %s" t what
          in
          (key, v))
    in
    let n = u32 "node count" in
    let m = u32 "edge count" in
    let nl = u32 "label count" in
    (* Cheap structural sanity before allocating: every node and edge
       costs at least 4 bytes of name length in the payload. *)
    if n > plen || m > plen || nl > plen then corrupt "counts exceed payload";
    let labels = Array.init nl (fun _ -> str "label") in
    let node_names = Array.make n "" in
    let node_lbl = Array.make n "" in
    let node_props = Array.make n [] in
    for v = 0 to n - 1 do
      node_names.(v) <- str "node name";
      node_lbl.(v) <- str "node label";
      node_props.(v) <- props "node props"
    done;
    let edge_names = Array.make m "" in
    let src = Array.make m 0
    and tgt = Array.make m 0
    and elbl = Array.make m 0 in
    let edge_props = Array.make m [] in
    for i = 0 to m - 1 do
      edge_names.(i) <- str "edge name";
      src.(i) <- u32 "edge source";
      tgt.(i) <- u32 "edge target";
      elbl.(i) <- u32 "edge label id";
      edge_props.(i) <- props "edge props"
    done;
    if !pos <> plen then corrupt "%d trailing bytes" (plen - !pos);
    match
      Pg.of_pack_res
        {
          Pg.pk_elg =
            {
              Elg.pk_nodes = node_names;
              pk_edges = edge_names;
              pk_src = src;
              pk_tgt = tgt;
              pk_labels = labels;
              pk_elbl = elbl;
            };
          pk_node_lbl = node_lbl;
          pk_node_props = node_props;
          pk_edge_props = edge_props;
        }
    with
    | Ok pg -> Ok pg
    | Error msg -> err msg
  with Corrupt msg -> err msg

(* Durability helper: fsync a directory so a just-renamed entry survives
   a crash.  Best-effort — some filesystems refuse directory fsync. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

(* Crash-safe snapshot write: the bytes go to a fresh temp file in the
   target directory, are fsynced, and only then renamed over the
   destination (atomic on POSIX), followed by a directory fsync — a
   crash at any point leaves either the old snapshot or the new one,
   never a torn file.  The write-ahead log's checkpointer leans on
   exactly this guarantee. *)
let save_bin_res pg path =
  Failpoint.check "graph.save";
  match
    let s = to_bin_string pg in
    let dir = Filename.dirname path in
    let tmp =
      Filename.temp_file ~temp_dir:dir
        ("." ^ Filename.basename path ^ ".")
        ".tmp"
    in
    (try
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () ->
           output_string oc s;
           flush oc;
           Unix.fsync (Unix.descr_of_out_channel oc));
       Sys.rename tmp path;
       fsync_dir dir
     with e ->
       (try Sys.remove tmp with Sys_error _ -> ());
       raise e);
    String.length s
  with
  | bytes -> Ok bytes
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception Unix.Unix_error (e, fn, arg) ->
      Error
        (Gq_error.Io
           (Printf.sprintf "%s: %s: %s" fn arg (Unix.error_message e)))

(* Format-sniffing loader: every load path — CLI subcommands, [load] in
   serve mode — accepts both the text format and GQB1 binary, dispatching
   on the magic bytes.  Carries the [graph.load] failpoint site. *)
let load_file_res path =
  Failpoint.check "graph.load";
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception End_of_file ->
      Error (Gq_error.Io (Printf.sprintf "%s: truncated file" path))
  | text ->
      if String.length text >= 4 && String.sub text 0 4 = bin_magic then
        of_bin_string_res text
      else parse_res text
