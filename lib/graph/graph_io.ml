exception Parse_error of string

let fail lineno msg = raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_props lineno tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> fail lineno (Printf.sprintf "expected key=value, got %S" tok)
      | Some i ->
          let key = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          if key = "" then fail lineno "empty property name";
          (key, Value.of_string_guess v))
    tokens

let is_prop_token tok = String.contains tok '='

let parse_string text =
  let nodes : (string, string * (string * Value.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let node_order = ref [] in
  let edges = ref [] in
  let declare_node name =
    if not (Hashtbl.mem nodes name) then begin
      Hashtbl.add nodes name ("", []);
      node_order := name :: !node_order
    end
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match split_ws line with
      | [] -> ()
      | "node" :: name :: rest ->
          let label, props =
            match rest with
            | l :: more when not (is_prop_token l) -> (l, more)
            | more -> ("", more)
          in
          declare_node name;
          Hashtbl.replace nodes name (label, parse_props lineno props)
      | [ "node" ] -> fail lineno "node: missing name"
      | "edge" :: name :: src :: label :: tgt :: props ->
          declare_node src;
          declare_node tgt;
          edges := (name, src, label, tgt, parse_props lineno props) :: !edges
      | "edge" :: _ -> fail lineno "edge: expected <name> <src> <label> <tgt>"
      | tok :: _ -> fail lineno (Printf.sprintf "unknown declaration %S" tok))
    lines;
  let node_list =
    List.rev_map
      (fun name ->
        let label, props = Hashtbl.find nodes name in
        (name, label, props))
      !node_order
  in
  Pg.make ~nodes:node_list ~edges:(List.rev !edges)

let parse_file path =
  Failpoint.check "graph.load";
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string text

let escape_value v =
  let s = Value.to_string v in
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) s

let to_string pg =
  let g = Pg.elg pg in
  let buf = Buffer.create 1024 in
  let props_str props =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (escape_value v)) props)
  in
  for n = 0 to Elg.nb_nodes g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node %s %s%s\n" (Elg.node_name g n) (Pg.node_label pg n)
         (props_str (Pg.props_of pg (Path.N n))))
  done;
  for e = 0 to Elg.nb_edges g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "edge %s %s %s %s%s\n" (Elg.edge_name g e)
         (Elg.node_name g (Elg.src g e))
         (Elg.label g e)
         (Elg.node_name g (Elg.tgt g e))
         (props_str (Pg.props_of pg (Path.E e))))
  done;
  Buffer.contents buf

(* The [*_res] contract: malformed input is an [Error], never an escaped
   exception.  [Parse_error] carries the position-tagged message; the
   [Failure]/[Invalid_argument] arms are a backstop so no stdlib helper
   reached through parsing can crash a caller that chose the result API.
   [Failpoint.Injected] deliberately passes through — supervision layers
   must see injected faults as exceptions to classify and retry. *)
let parse_res src =
  match parse_string src with
  | pg -> Ok pg
  | exception Parse_error msg -> Error (Gq_error.Parse { what = "graph"; msg })
  | exception Failure msg ->
      Error (Gq_error.Parse { what = "graph"; msg })
  | exception Invalid_argument msg ->
      Error (Gq_error.Parse { what = "graph"; msg })

let parse_file_res path =
  match parse_file path with
  | pg -> Ok pg
  | exception Parse_error msg -> Error (Gq_error.Parse { what = "graph"; msg })
  | exception Failure msg -> Error (Gq_error.Parse { what = "graph"; msg })
  | exception Invalid_argument msg ->
      Error (Gq_error.Parse { what = "graph"; msg })
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception End_of_file ->
      Error (Gq_error.Io (Printf.sprintf "%s: truncated file" path))
