type t = {
  graph_id : int;
  nb_nodes : int;
  nb_edges : int;
  nb_labels : int;
  label_names : string array;
  label_edges : int array;
  label_sources : int array;
  label_targets : int array;
  nodes_with_out : int;
  nodes_with_in : int;
  out_hist : int array;
  in_hist : int array;
  max_out_degree : int;
  max_in_degree : int;
}

let bucket_of_degree d =
  if d <= 0 then 0
  else begin
    let b = ref 1 and x = ref 1 in
    (* bucket i covers 2^(i-1) <= d < 2^i *)
    while d >= 2 * !x do
      x := 2 * !x;
      incr b
    done;
    !b
  end

let nb_buckets = 32

let of_elg g =
  let n = Elg.nb_nodes g and nl = Elg.nb_labels g in
  let label_edges = Array.make (max 1 nl) 0
  and label_sources = Array.make (max 1 nl) 0
  and label_targets = Array.make (max 1 nl) 0 in
  for e = 0 to Elg.nb_edges g - 1 do
    let l = Elg.edge_label_id g e in
    label_edges.(l) <- label_edges.(l) + 1
  done;
  (* Distinct sources per label: walk each node's label directory once.
     The label-partitioned span directory lists each present label once
     per node, so counting directory entries is exactly "distinct
     sources"; the symmetric pass over in-edges uses a stamp array. *)
  let stamp = Array.make (max 1 nl) (-1) in
  let out_hist = Array.make nb_buckets 0
  and in_hist = Array.make nb_buckets 0 in
  let nodes_with_out = ref 0
  and nodes_with_in = ref 0
  and max_out = ref 0
  and max_in = ref 0 in
  for v = 0 to n - 1 do
    let dout = Elg.out_degree g v and din = Elg.in_degree g v in
    out_hist.(bucket_of_degree dout) <- out_hist.(bucket_of_degree dout) + 1;
    in_hist.(bucket_of_degree din) <- in_hist.(bucket_of_degree din) + 1;
    if dout > 0 then incr nodes_with_out;
    if din > 0 then incr nodes_with_in;
    if dout > !max_out then max_out := dout;
    if din > !max_in then max_in := din;
    Elg.iter_out g v (fun e ->
        let l = Elg.edge_label_id g e in
        if stamp.(l) <> v then begin
          stamp.(l) <- v;
          label_sources.(l) <- label_sources.(l) + 1
        end)
  done;
  Array.fill stamp 0 (Array.length stamp) (-1);
  for v = 0 to n - 1 do
    Elg.iter_in g v (fun e ->
        let l = Elg.edge_label_id g e in
        if stamp.(l) <> v then begin
          stamp.(l) <- v;
          label_targets.(l) <- label_targets.(l) + 1
        end)
  done;
  {
    graph_id = Elg.id g;
    nb_nodes = n;
    nb_edges = Elg.nb_edges g;
    nb_labels = nl;
    label_names = Array.of_list (Elg.labels g);
    label_edges;
    label_sources;
    label_targets;
    nodes_with_out = !nodes_with_out;
    nodes_with_in = !nodes_with_in;
    out_hist;
    in_hist;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
  }

(* --- memo, keyed by graph id -------------------------------------------- *)

let memo_cap = 16
let memo : (int, t) Hashtbl.t = Hashtbl.create memo_cap
let memo_order : int Queue.t = Queue.create ()
let memo_lock = Mutex.create ()

let get g =
  let gid = Elg.id g in
  Mutex.lock memo_lock;
  let cached = Hashtbl.find_opt memo gid in
  Mutex.unlock memo_lock;
  match cached with
  | Some st -> st
  | None ->
      let st = of_elg g in
      Mutex.lock memo_lock;
      if not (Hashtbl.mem memo gid) then begin
        if Hashtbl.length memo >= memo_cap then begin
          let victim = Queue.pop memo_order in
          Hashtbl.remove memo victim
        end;
        Hashtbl.add memo gid st;
        Queue.push gid memo_order
      end;
      Mutex.unlock memo_lock;
      st

(* [register] seeds the memo with statistics maintained incrementally by
   delta application, so planning against the post-delta graph pays no
   full scan. *)
let register st =
  Mutex.lock memo_lock;
  if not (Hashtbl.mem memo st.graph_id) then begin
    if Hashtbl.length memo >= memo_cap then begin
      let victim = Queue.pop memo_order in
      Hashtbl.remove memo victim
    end;
    Hashtbl.add memo st.graph_id st;
    Queue.push st.graph_id memo_order
  end;
  Mutex.unlock memo_lock

(* --- symbol-level estimates --------------------------------------------- *)

type sym = Lbl of string | Any | Not of string list

(* label_names is sorted, id = index: binary search. *)
let label_idx st a =
  let lo = ref 0 and hi = ref (st.nb_labels - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = String.compare st.label_names.(mid) a in
    if c = 0 then found := mid else if c < 0 then lo := mid + 1 else hi := mid - 1
  done;
  if !found < 0 then None else Some !found

let per_label field st = function
  | Lbl a -> ( match label_idx st a with Some l -> field.(l) | None -> 0)
  | Any -> Array.fold_left ( + ) 0 (Array.sub field 0 (max 0 st.nb_labels))
  | Not excluded ->
      let total = Array.fold_left ( + ) 0 (Array.sub field 0 (max 0 st.nb_labels)) in
      let gone =
        List.fold_left
          (fun acc a ->
            match label_idx st a with Some l -> acc + field.(l) | None -> acc)
          0
          (List.sort_uniq String.compare excluded)
      in
      max 0 (total - gone)

let sym_edges st s = per_label st.label_edges st s

let sym_sources st s =
  match s with
  | Any | Not _ -> min st.nodes_with_out (per_label st.label_sources st s)
  | Lbl _ -> per_label st.label_sources st s

let sym_targets st s =
  match s with
  | Any | Not _ -> min st.nodes_with_in (per_label st.label_targets st s)
  | Lbl _ -> per_label st.label_targets st s

let summary st =
  [
    ("nodes", st.nb_nodes);
    ("edges", st.nb_edges);
    ("labels", st.nb_labels);
    ("nodes_with_out", st.nodes_with_out);
    ("nodes_with_in", st.nodes_with_in);
    ("max_out_degree", st.max_out_degree);
    ("max_in_degree", st.max_in_degree);
  ]
