exception Parse_error of string

let fail lineno msg = raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_props lineno tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> fail lineno (Printf.sprintf "expected key=value, got %S" tok)
      | Some i ->
          let key = String.sub tok 0 i in
          let v = String.sub tok (i + 1) (String.length tok - i - 1) in
          if key = "" then fail lineno "empty property name";
          (key, Value.of_string_guess v))
    tokens

let parse_string text =
  let ops = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      match split_ws line with
      | [] -> ()
      | "add" :: name :: src :: label :: tgt :: props ->
          ops :=
            Pg.Add_edge
              { name; src; label; tgt; props = parse_props lineno props }
            :: !ops
      | "add" :: _ -> fail lineno "add: expected <name> <src> <label> <tgt>"
      | [ "del"; name ] -> ops := Pg.Del_edge name :: !ops
      | "del" :: _ -> fail lineno "del: expected <name>"
      | [ "deln"; name ] -> ops := Pg.Del_node name :: !ops
      | "deln" :: _ -> fail lineno "deln: expected <name>"
      | tok :: _ -> fail lineno (Printf.sprintf "unknown delta op %S" tok))
    lines;
  List.rev !ops

(* Inverse of [parse_string] on its own image: names never contain
   whitespace or '#' (they came from whitespace-split parsing), and
   property values printed with [Value.to_string] re-parse to the same
   value under [Value.of_string_guess]. *)
let render_op = function
  | Pg.Add_edge { name; src; label; tgt; props } ->
      let b = Buffer.create 64 in
      Buffer.add_string b "add ";
      Buffer.add_string b name;
      Buffer.add_char b ' ';
      Buffer.add_string b src;
      Buffer.add_char b ' ';
      Buffer.add_string b label;
      Buffer.add_char b ' ';
      Buffer.add_string b tgt;
      List.iter
        (fun (k, v) ->
          Buffer.add_char b ' ';
          Buffer.add_string b k;
          Buffer.add_char b '=';
          Buffer.add_string b (Value.to_string v))
        props;
      Buffer.contents b
  | Pg.Del_edge name -> "del " ^ name
  | Pg.Del_node name -> "deln " ^ name

let render ops = String.concat "\n" (List.map render_op ops)

let parse_res src =
  match parse_string src with
  | ops -> Ok ops
  | exception Parse_error msg -> Error (Gq_error.Parse { what = "delta"; msg })
  | exception Failure msg -> Error (Gq_error.Parse { what = "delta"; msg })
  | exception Invalid_argument msg ->
      Error (Gq_error.Parse { what = "delta"; msg })

let parse_file_res path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse_res text
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception End_of_file ->
      Error (Gq_error.Io (Printf.sprintf "%s: truncated file" path))

(* --- incremental statistics --------------------------------------------- *)

(* Exact maintenance of [Stats.t] across a delta, O(delta · degree) plus
   an O(n) max-degree rescan only when a deletion may have dethroned the
   maximum.  The model-based update suite pins field-for-field equality
   with [Stats.of_elg] on the new graph. *)
let stats_after ~old_g ~(old_st : Stats.t) ~new_g ~adds ~dels =
  let old_n = Elg.nb_nodes old_g in
  let nl = Elg.nb_labels new_g in
  let label_names = Array.of_list (Elg.labels new_g) in
  (* Per-label counters start from the old values, remapped through the
     (possibly shifted) new label table. *)
  let remap init =
    Array.init (max 1 nl) (fun l ->
        if l >= nl then 0
        else
          match Elg.label_id_opt old_g label_names.(l) with
          | Some ol -> init.(ol)
          | None -> 0)
  in
  let label_edges = remap old_st.Stats.label_edges
  and label_sources = remap old_st.Stats.label_sources
  and label_targets = remap old_st.Stats.label_targets in
  (* Edge counts: straight +/- per touched label. *)
  let bump arr lstr d =
    match Elg.label_id_opt new_g lstr with
    | Some l -> arr.(l) <- arr.(l) + d
    | None -> ()
  in
  List.iter (fun (_, _, lstr, _) -> bump label_edges lstr 1) adds;
  List.iter
    (fun name ->
      let e = Elg.edge_id old_g name in
      bump label_edges (Elg.label old_g e) (-1))
    dels;
  (* Distinct sources/targets: presence of (node, label) diffs between
     the two graphs, over the touched pairs only.  Old node ids are
     valid in both graphs (nodes are never deleted). *)
  let src_pairs = Hashtbl.create 16 and tgt_pairs = Hashtbl.create 16 in
  let touch tbl v lstr =
    if not (Hashtbl.mem tbl (v, lstr)) then Hashtbl.add tbl (v, lstr) ()
  in
  List.iter
    (fun (_, s, lstr, t) ->
      touch src_pairs (Elg.node_id new_g s) lstr;
      touch tgt_pairs (Elg.node_id new_g t) lstr)
    adds;
  List.iter
    (fun name ->
      let e = Elg.edge_id old_g name in
      let lstr = Elg.label old_g e in
      touch src_pairs (Elg.src old_g e) lstr;
      touch tgt_pairs (Elg.tgt old_g e) lstr)
    dels;
  let out_present g v lstr =
    v < Elg.nb_nodes g
    &&
    match Elg.label_id_opt g lstr with
    | None -> false
    | Some l ->
        let lo, hi = Elg.out_label_span g v ~label:l in
        hi > lo
  in
  let in_present g v lstr =
    v < Elg.nb_nodes g
    &&
    match Elg.label_id_opt g lstr with
    | None -> false
    | Some l ->
        let lo, hi = Elg.in_span g v in
        let found = ref false in
        let i = ref lo in
        while (not !found) && !i < hi do
          if Elg.edge_label_id g (Elg.csr_in_edge g !i) = l then found := true;
          incr i
        done;
        !found
  in
  let diff present arr tbl =
    Hashtbl.iter
      (fun (v, lstr) () ->
        let was = v < old_n && present old_g v lstr in
        let is = present new_g v lstr in
        if was <> is then bump arr lstr (if is then 1 else -1))
      tbl
  in
  diff out_present label_sources src_pairs;
  diff in_present label_targets tgt_pairs;
  (* Degree histograms: adjust the touched old nodes, then account every
     new node once. *)
  let out_hist = Array.copy old_st.Stats.out_hist
  and in_hist = Array.copy old_st.Stats.in_hist in
  let touched_out = Hashtbl.create 16 and touched_in = Hashtbl.create 16 in
  let touch1 tbl v = if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v () in
  List.iter
    (fun (_, s, _, t) ->
      let sv = Elg.node_id new_g s and tv = Elg.node_id new_g t in
      if sv < old_n then touch1 touched_out sv;
      if tv < old_n then touch1 touched_in tv)
    adds;
  List.iter
    (fun name ->
      let e = Elg.edge_id old_g name in
      touch1 touched_out (Elg.src old_g e);
      touch1 touched_in (Elg.tgt old_g e))
    dels;
  let adjust hist tbl old_deg new_deg with_dir old_max =
    let with_dir = ref with_dir in
    let seen_max = ref old_max and dethroned = ref false in
    Hashtbl.iter
      (fun v () ->
        let od = old_deg v and nd = new_deg v in
        hist.(Stats.bucket_of_degree od) <- hist.(Stats.bucket_of_degree od) - 1;
        hist.(Stats.bucket_of_degree nd) <- hist.(Stats.bucket_of_degree nd) + 1;
        if od > 0 && nd = 0 then decr with_dir;
        if od = 0 && nd > 0 then incr with_dir;
        if nd > !seen_max then seen_max := nd;
        if od = old_max && nd < od then dethroned := true)
      tbl;
    (!with_dir, !seen_max, !dethroned)
  in
  let nodes_with_out, max_out, out_dethroned =
    adjust out_hist touched_out
      (fun v -> Elg.out_degree old_g v)
      (fun v -> Elg.out_degree new_g v)
      old_st.Stats.nodes_with_out old_st.Stats.max_out_degree
  in
  let nodes_with_in, max_in, in_dethroned =
    adjust in_hist touched_in
      (fun v -> Elg.in_degree old_g v)
      (fun v -> Elg.in_degree new_g v)
      old_st.Stats.nodes_with_in old_st.Stats.max_in_degree
  in
  let nodes_with_out = ref nodes_with_out
  and nodes_with_in = ref nodes_with_in
  and max_out = ref max_out
  and max_in = ref max_in in
  for v = old_n to Elg.nb_nodes new_g - 1 do
    let dout = Elg.out_degree new_g v and din = Elg.in_degree new_g v in
    out_hist.(Stats.bucket_of_degree dout) <-
      out_hist.(Stats.bucket_of_degree dout) + 1;
    in_hist.(Stats.bucket_of_degree din) <-
      in_hist.(Stats.bucket_of_degree din) + 1;
    if dout > 0 then incr nodes_with_out;
    if din > 0 then incr nodes_with_in;
    if dout > !max_out then max_out := dout;
    if din > !max_in then max_in := din
  done;
  (* A deletion at the reigning maximum forces one O(n) rescan; growth
     never does. *)
  if out_dethroned then begin
    max_out := 0;
    for v = 0 to Elg.nb_nodes new_g - 1 do
      if Elg.out_degree new_g v > !max_out then max_out := Elg.out_degree new_g v
    done
  end;
  if in_dethroned then begin
    max_in := 0;
    for v = 0 to Elg.nb_nodes new_g - 1 do
      if Elg.in_degree new_g v > !max_in then max_in := Elg.in_degree new_g v
    done
  end;
  {
    Stats.graph_id = Elg.id new_g;
    nb_nodes = Elg.nb_nodes new_g;
    nb_edges = Elg.nb_edges new_g;
    nb_labels = nl;
    label_names;
    label_edges;
    label_sources;
    label_targets;
    nodes_with_out = !nodes_with_out;
    nodes_with_in = !nodes_with_in;
    out_hist;
    in_hist;
    max_out_degree = !max_out;
    max_in_degree = !max_in;
  }

(* --- application --------------------------------------------------------- *)

type applied = {
  pg : Pg.t;
  summary : Elg.delta_summary;
  stats : Stats.t;
}

let apply_res pg ops =
  Failpoint.check "graph.delta";
  let old_g = Pg.elg pg in
  match Pg.apply_delta_res pg ops with
  | Error msg -> Error (Gq_error.Parse { what = "delta"; msg })
  | Ok { Pg.ap_pg; ap_summary; ap_adds; ap_dels } ->
      let new_g = Pg.elg ap_pg in
      let stats =
        (* Incremental maintenance keys touched nodes by their old dense
           ids, which node deletion invalidates (survivors compact); a
           batch that removed nodes falls back to the O(n + m) fresh
           scan — the same asymptotics as the CSR rebuild it rides on. *)
        if ap_summary.Elg.removed_nodes > 0 then Stats.of_elg new_g
        else
          stats_after ~old_g ~old_st:(Stats.get old_g) ~new_g ~adds:ap_adds
            ~dels:ap_dels
      in
      Stats.register stats;
      Ok { pg = ap_pg; summary = ap_summary; stats }

let apply_file_res pg path =
  match parse_file_res path with
  | Error _ as e -> e
  | Ok ops -> apply_res pg ops
