type 'a t = { cur : (int * 'a) option Atomic.t }

let create () = { cur = Atomic.make None }
let current t = Atomic.get t.cur
let snapshot t = Option.map snd (Atomic.get t.cur)
let epoch t = match Atomic.get t.cur with None -> 0 | Some (e, _) -> e

let rec publish t v =
  let old = Atomic.get t.cur in
  let e = (match old with None -> 0 | Some (e, _) -> e) + 1 in
  if Atomic.compare_and_set t.cur old (Some (e, v)) then e else publish t v
