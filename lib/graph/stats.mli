(** Graph statistics for cost-based planning.

    Computed once per graph from the CSR index built at {!Elg.make}:
    per-label edge counts, distinct source/target counts per label, and
    log2-bucketed degree histograms.  [get] memoizes by {!Elg.id} so
    repeated planning against the same loaded graph pays the scan once. *)

type t = {
  graph_id : int;
  nb_nodes : int;
  nb_edges : int;
  nb_labels : int;
  label_names : string array;  (** sorted, id = index (mirrors the graph) *)
  label_edges : int array;  (** edges per label id *)
  label_sources : int array;  (** distinct sources per label id *)
  label_targets : int array;  (** distinct targets per label id *)
  nodes_with_out : int;  (** nodes with out-degree > 0 *)
  nodes_with_in : int;  (** nodes with in-degree > 0 *)
  out_hist : int array;  (** bucket 0 = degree 0; bucket i = 2^(i-1) <= d < 2^i *)
  in_hist : int array;
  max_out_degree : int;
  max_in_degree : int;
}

val of_elg : Elg.t -> t

(** Memoized [of_elg], keyed by {!Elg.id} (bounded table, thread-safe). *)
val get : Elg.t -> t

(** Seed the memo with already-computed statistics (delta application
    maintains them incrementally); a later {!get} on that graph returns
    them without a scan. *)
val register : t -> unit

(** The degree-histogram bucket function: bucket 0 is degree 0, bucket
    [i >= 1] covers [2^(i-1) <= d < 2^i].  Exposed for the incremental
    maintenance in {!Delta}. *)
val bucket_of_degree : int -> int

val nb_buckets : int

(** {1 Symbol-level estimates}

    Fanouts for regex alphabet symbols: how many edges / distinct
    sources / distinct targets can match.  Unknown labels contribute 0;
    wildcards and negated sets fall back to graph-level totals. *)

type sym = Lbl of string | Any | Not of string list

val sym_edges : t -> sym -> int
val sym_sources : t -> sym -> int
val sym_targets : t -> sym -> int

(** Flat [(key, value)] rendering for telemetry / EXPLAIN output. *)
val summary : t -> (string * int) list
