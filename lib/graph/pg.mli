(** Labeled property graphs (Definition 6).

    A property graph extends an edge-labeled graph with a label per node
    and a partial property assignment
    [ρ : (N ∪ E) × Properties → Values].  The underlying edge-labeled
    graph [(N, E, src, tgt, λ|E)] is recovered with {!elg} (the projection
    noted right after Definition 6). *)

type t

(** [make ~nodes ~edges]:
    [nodes] lists [(name, label, properties)];
    [edges] lists [(name, src_name, label, tgt_name, properties)]. *)
val make :
  nodes:(string * string * (string * Value.t) list) list ->
  edges:(string * string * string * string * (string * Value.t) list) list ->
  t

(** The underlying edge-labeled graph. *)
val elg : t -> Elg.t

val node_label : t -> int -> string

(** λ on any object: node label or edge label. *)
val obj_label : t -> Path.obj -> string

(** ρ(object, prop); [None] when undefined. *)
val prop : t -> Path.obj -> string -> Value.t option

val node_prop : t -> int -> string -> Value.t option
val edge_prop : t -> int -> string -> Value.t option

(** All property names occurring on the given object. *)
val props_of : t -> Path.obj -> (string * Value.t) list

(** All values occurring as a property value anywhere in the graph (the
    active domain, used by register-style evaluation). *)
val active_domain : t -> Value.t list

val pp : Format.formatter -> t -> unit

(** {1 Delta application}

    Property-graph face of {!Elg.apply_delta}: a batch of edge
    insertions/deletions and node deletions applied with *sequential*
    semantics ([add e] then [del e] in one batch nets out, though
    implicit nodes the add introduced persist; [del e] frees the name
    for a later add).  Nodes mentioned by an added edge but absent from
    the graph are created implicitly (empty label, no properties), in
    first-mention order — exactly as the text format declares them.
    [Del_node v] drops the node together with every edge incident to it
    at that point in the batch (pending adds touching it are cancelled;
    surviving base edges are deleted), and frees the name for a later
    implicit re-creation.  Total: [Error msg] on duplicate/unknown
    names, leaving the graph untouched. *)

type delta_op =
  | Add_edge of {
      name : string;
      src : string;
      label : string;
      tgt : string;
      props : (string * Value.t) list;
    }
  | Del_edge of string
  | Del_node of string

(** Result of a delta: the new graph, the {!Elg.delta_summary}, and the
    *net* operations that took effect after sequential normalization
    ([ap_adds] in op order as [(name, src, label, tgt)]; [ap_dels] the
    base edge names removed) — what incremental statistics maintenance
    and cache invalidation key on. *)
type applied = {
  ap_pg : t;
  ap_summary : Elg.delta_summary;
  ap_adds : (string * string * string * string) list;
  ap_dels : string list;
}

val apply_delta_res : t -> delta_op list -> (applied, string) result

(** {1 Binary pack} *)

type pack = {
  pk_elg : Elg.pack;
  pk_node_lbl : string array;
  pk_node_props : (string * Value.t) list array;
  pk_edge_props : (string * Value.t) list array;
}

val pack : t -> pack
val of_pack_res : pack -> (t, string) result
