(** Epoch-published snapshots.

    A cell holding the current (epoch, value) pair, advanced atomically
    by a writer and read wait-free by any number of readers.  The value
    is expected to be immutable (a graph snapshot): a reader that grabbed
    epoch [e] keeps evaluating against that exact value even while the
    writer publishes [e+1] — copy-on-write isolation with no locks on
    the read side.  Epochs start at 1 ({!epoch} is 0 while the cell is
    empty) and only ever grow. *)

type 'a t

val create : unit -> 'a t

(** The current pair, or [None] before the first {!publish}. *)
val current : 'a t -> (int * 'a) option

val snapshot : 'a t -> 'a option

(** 0 while empty. *)
val epoch : 'a t -> int

(** Install a new value, returning its (freshly incremented) epoch.
    Lock-free; concurrent publishers serialize via CAS retry, though the
    server serializes writers externally anyway. *)
val publish : 'a t -> 'a -> int
