(** Delta mutations: edge insertions/deletions applied incrementally.

    The textual delta format, one op per line:

    {v
    # comment
    add <name> <src> <label> <tgt> [key=value ...]
    del <name>
    deln <node>
    v}

    Nodes mentioned by [add] and absent from the graph are created
    implicitly (as in the graph text format); [deln] drops a node and
    every incident edge.  A batch has sequential semantics; see
    {!Pg.apply_delta_res}.

    Application goes through {!Elg.apply_delta} (shared node arrays and
    label table where untouched, counting-pass index rebuild — no
    reparse, no re-interning) and maintains {!Stats} *incrementally*:
    per-label counters adjust by the touched edges, degree histograms by
    the touched endpoints, with a full rescan only for a dethroned
    maximum degree.  The resulting statistics are registered in the
    {!Stats.get} memo, so post-delta planning pays no scan.

    Carries the failpoint site [graph.delta] (checked before any work).

    The model-based suite in [test/test_updates.ml] pins the whole
    pipeline against a from-scratch rebuild: identical CSR adjacency,
    interned-label order, statistics, and query answers. *)

exception Parse_error of string

(** Total parsers for the delta text format ([Error] carries
    [Gq_error.Parse {what = "delta"}]; file errors map to [Io]). *)
val parse_res : string -> (Pg.delta_op list, Gq_error.t) result

val parse_file_res : string -> (Pg.delta_op list, Gq_error.t) result

(** Render a batch back to the textual format, newline-separated —
    inverse of {!parse_res} on its own image (the write-ahead log
    persists delta records this way, so replay reuses the total
    parser). *)
val render : Pg.delta_op list -> string

type applied = {
  pg : Pg.t;  (** the new snapshot; the input graph is untouched *)
  summary : Elg.delta_summary;
  stats : Stats.t;  (** incrementally maintained, already registered *)
}

(** Apply a batch.  Total: bad ops (unknown/duplicate names) return
    [Error (Parse {what = "delta"})] and leave the input graph and the
    statistics memo untouched.  Only [Failpoint.Injected] escapes, for
    supervision layers to classify. *)
val apply_res : Pg.t -> Pg.delta_op list -> (applied, Gq_error.t) result

(** [parse_file_res] then [apply_res]. *)
val apply_file_res : Pg.t -> string -> (applied, Gq_error.t) result
