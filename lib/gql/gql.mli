(** GQL-style patterns with singleton and group variables — the behaviour
    the paper's Examples 1–3 dissect.

    This engine deliberately implements the {e GQL} variable rules rather
    than the paper's cleaner l-RPQ design, so that the paper's criticisms
    can be replayed and measured:

    - multiple occurrences of a variable outside iteration are {e joins}
      (they must bind the same element);
    - when matching crosses an iteration (quantifier), every variable
      bound inside becomes a {e group variable} collecting a list, one
      entry per iteration;
    - consecutive node patterns bind the same node (paths are glued on
      nodes), e.g. [()-[z:a]->()()-[z:a]->()] forces its two inner nodes
      together — which is why Example 1's join variant only matches
      self-loops;
    - a quantified pattern is {e not} the same as its unfolding:
      [π{2}] groups while [ππ] joins (experiment E12);
    - disjunction permits partial bindings (GQL's nulls, Section 4.2);
    - WHERE conditions are evaluated per match of their subpattern — per
      iteration inside a quantifier (Example 3).

    Mixing degrees (one occurrence singleton, a joined occurrence grouped)
    raises {!Degree_conflict}. *)

type operand = Prop of string * string  (** x.k *) | Const of Value.t

type cond =
  | Cmp of operand * Value.op * operand
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type node_pat = { nvar : string option; nlbl : string option }
type edge_pat = { evar : string option; elbl : string option }

type pattern =
  | Pnode of node_pat
  | Pedge of edge_pat
  | Pseq of pattern * pattern
  | Palt of pattern * pattern
  | Pquant of pattern * int * int option  (** {n,m}; [None] = unbounded *)
  | Pwhere of pattern * cond

(** A variable's value: a single element or a collected list. *)
type gvalue = Single of Path.obj | Group of Path.obj list

type binding = (string * gvalue) list

exception Degree_conflict of string

(** All matches anywhere in the graph: (path, binding) pairs.  [max_len]
    bounds path length (unbounded quantifiers are capped by it).  With
    [dedup:false] the engine works like GQL's bag semantics and returns
    one row per derivation. *)
val matches : ?dedup:bool -> Pg.t -> pattern -> max_len:int -> (Path.t * binding) list

(** As {!matches} under a governor: one step per pattern-position visit,
    one result per (path, binding) kept; [Partial] match sets are subsets
    of the unbounded ones. *)
val matches_bounded :
  ?dedup:bool ->
  Governor.t ->
  Pg.t ->
  pattern ->
  max_len:int ->
  (Path.t * binding) list Governor.outcome

(** Matches whose path runs from [src] to [tgt]. *)
val matches_between :
  ?dedup:bool -> Pg.t -> pattern -> max_len:int -> src:int -> tgt:int ->
  (Path.t * binding) list

val matches_between_bounded :
  ?dedup:bool ->
  Governor.t ->
  Pg.t ->
  pattern ->
  max_len:int ->
  src:int ->
  tgt:int ->
  (Path.t * binding) list Governor.outcome

(** Variables of the pattern. *)
val vars : pattern -> string list

val gvalue_to_string : Elg.t -> gvalue -> string
val binding_to_string : Elg.t -> binding -> string
val pattern_to_string : pattern -> string
