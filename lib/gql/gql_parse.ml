exception Parse_error of string

type token =
  | Tlpar
  | Trpar
  | Tedge_open  (* -[ *)
  | Tedge_close  (* ]-> *)
  | Tbar
  | Tstar
  | Tplus
  | Topt
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tcolon
  | Tdot
  | Tident of string
  | Tint of int
  | Treal of float
  | Tstring of string
  | Top of Value.op
  | Twhere
  | Tand
  | Tor
  | Tnot

let fail msg = raise (Parse_error msg)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (incr i; push Tlpar)
    else if c = ')' then (incr i; push Trpar)
    else if c = '-' && !i + 1 < n && s.[!i + 1] = '[' then begin
      i := !i + 2;
      push Tedge_open
    end
    else if c = ']' && !i + 2 < n && s.[!i + 1] = '-' && s.[!i + 2] = '>' then begin
      i := !i + 3;
      push Tedge_close
    end
    else if c = '|' then (incr i; push Tbar)
    else if c = '*' then (incr i; push Tstar)
    else if c = '+' then (incr i; push Tplus)
    else if c = '?' then (incr i; push Topt)
    else if c = '{' then (incr i; push Tlbrace)
    else if c = '}' then (incr i; push Trbrace)
    else if c = ',' then (incr i; push Tcomma)
    else if c = ':' then (incr i; push Tcolon)
    else if c = '.' then (incr i; push Tdot)
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '=' then (i := !i + 2; push (Top Value.Le))
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '>' then (i := !i + 2; push (Top Value.Neq))
    else if c = '<' then (incr i; push (Top Value.Lt))
    else if c = '>' && !i + 1 < n && s.[!i + 1] = '=' then (i := !i + 2; push (Top Value.Ge))
    else if c = '>' then (incr i; push (Top Value.Gt))
    else if c = '=' then (incr i; push (Top Value.Eq))
    else if c = '!' && !i + 1 < n && s.[!i + 1] = '=' then (i := !i + 2; push (Top Value.Neq))
    else if c = '\'' then begin
      let j = try String.index_from s (!i + 1) '\'' with Not_found -> fail "unterminated string" in
      push (Tstring (String.sub s (!i + 1) (j - !i - 1)));
      i := j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.') do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      if String.contains text '.' then
        match float_of_string_opt text with
        | Some v -> push (Treal v)
        | None -> fail (Printf.sprintf "bad number %S" text)
      else
        match int_of_string_opt text with
        | Some v -> push (Tint v)
        | None -> fail (Printf.sprintf "number %s out of range" text)
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      match String.uppercase_ascii word with
      | "WHERE" -> push Twhere
      | "AND" -> push Tand
      | "OR" -> push Tor
      | "NOT" -> push Tnot
      | _ -> push (Tident word)
    end
    else fail (Printf.sprintf "unexpected character %c" c)
  done;
  List.rev !tokens

(* Recursive descent with backtracking over an immutable token list held in
   a mutable cursor. *)
let parse s =
  let toks = ref (tokenize s) in
  let save () = !toks in
  let restore saved = toks := saved in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let expect t msg = if peek () = Some t then advance () else fail msg in

  (* --- conditions --- *)
  let operand () =
    match peek () with
    | Some (Tident x) -> (
        advance ();
        match peek () with
        | Some Tdot -> (
            advance ();
            match peek () with
            | Some (Tident k) ->
                advance ();
                Gql.Prop (x, k)
            | _ -> fail "expected property name after '.'")
        | _ -> Gql.Const (Value.Text x))
    | Some (Tint v) ->
        advance ();
        Gql.Const (Value.Int v)
    | Some (Treal v) ->
        advance ();
        Gql.Const (Value.Real v)
    | Some (Tstring v) ->
        advance ();
        Gql.Const (Value.Text v)
    | _ -> fail "expected an operand"
  in
  let rec cond_or () =
    let left = cond_and () in
    match peek () with
    | Some Tor ->
        advance ();
        Gql.Or (left, cond_or ())
    | _ -> left
  and cond_and () =
    let left = cond_atom () in
    match peek () with
    | Some Tand ->
        advance ();
        Gql.And (left, cond_and ())
    | _ -> left
  and cond_atom () =
    match peek () with
    | Some Tnot ->
        advance ();
        Gql.Not (cond_atom ())
    | Some Tlpar ->
        advance ();
        let c = cond_or () in
        expect Trpar "expected ) in condition";
        c
    | _ -> (
        let o1 = operand () in
        match peek () with
        | Some (Top op) ->
            advance ();
            let o2 = operand () in
            Gql.Cmp (o1, op, o2)
        | _ -> fail "expected comparison operator")
  in

  (* --- quantifiers --- *)
  let quant_suffix p =
    match peek () with
    | Some Tstar ->
        advance ();
        Some (Gql.Pquant (p, 0, None))
    | Some Tplus ->
        advance ();
        Some (Gql.Pquant (p, 1, None))
    | Some Topt ->
        advance ();
        Some (Gql.Pquant (p, 0, Some 1))
    | Some Tlbrace -> (
        advance ();
        match peek () with
        | Some (Tint n) -> (
            advance ();
            match peek () with
            | Some Trbrace ->
                advance ();
                Some (Gql.Pquant (p, n, Some n))
            | Some Tcomma -> (
                advance ();
                match peek () with
                | Some (Tint m) ->
                    advance ();
                    expect Trbrace "expected } after repetition";
                    if m < n then
                      fail (Printf.sprintf "bad repetition range {%d,%d}" n m);
                    Some (Gql.Pquant (p, n, Some m))
                | Some Trbrace ->
                    advance ();
                    Some (Gql.Pquant (p, n, None))
                | _ -> fail "expected upper bound or } in repetition")
            | _ -> fail "expected , or } in repetition")
        | _ -> fail "expected a number in repetition")
    | _ -> None
  in
  let with_quant p = match quant_suffix p with Some q -> q | None -> p in

  (* --- patterns --- *)
  let var_label_where close_msg =
    (* [var] [: label] [WHERE cond] *)
    let var =
      match peek () with
      | Some (Tident x) ->
          advance ();
          Some x
      | _ -> None
    in
    let lbl =
      match peek () with
      | Some Tcolon -> (
          advance ();
          match peek () with
          | Some (Tident l) ->
              advance ();
              Some l
          | _ -> fail ("expected label " ^ close_msg))
      | _ -> None
    in
    let where =
      match peek () with
      | Some Twhere ->
          advance ();
          Some (cond_or ())
      | _ -> None
    in
    (var, lbl, where)
  in
  let rec pattern () =
    let left = sequence () in
    match peek () with
    | Some Tbar ->
        advance ();
        Gql.Palt (left, pattern ())
    | _ -> left
  and sequence () =
    let first = element () in
    match peek () with
    | Some (Tlpar | Tedge_open) -> Gql.Pseq (first, sequence ())
    | _ -> first
  and element () =
    match peek () with
    | Some Tedge_open ->
        advance ();
        let var, lbl, where = var_label_where "in edge pattern" in
        expect Tedge_close "expected ]->";
        let base = Gql.Pedge { evar = var; elbl = lbl } in
        let base = match where with Some c -> Gql.Pwhere (base, c) | None -> base in
        with_quant base
    | Some Tlpar -> (
        (* Try a node pattern first; fall back to a parenthesized group. *)
        let saved = save () in
        advance ();
        match node_interior () with
        | Some node -> with_quant node
        | None ->
            restore saved;
            advance ();
            let inner = pattern () in
            let inner =
              match peek () with
              | Some Twhere ->
                  advance ();
                  Gql.Pwhere (inner, cond_or ())
              | _ -> inner
            in
            expect Trpar "expected )";
            with_quant inner)
    | _ -> fail "expected a node, edge, or ( pattern )"
  and node_interior () =
    match
      (let var, lbl, where = var_label_where "in node pattern" in
       match peek () with
       | Some Trpar ->
           advance ();
           let base = Gql.Pnode { nvar = var; nlbl = lbl } in
           Some (match where with Some c -> Gql.Pwhere (base, c) | None -> base)
       | _ -> None)
    with
    | result -> result
    | exception Parse_error _ -> None
  in
  let p = pattern () in
  if !toks <> [] then fail "trailing input";
  p

let parse_opt s =
  match parse s with
  | p -> Ok p
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let parse_res s =
  match parse_opt s with
  | Ok p -> Ok p
  | Error msg -> Error (Gq_error.Parse { what = "pattern"; msg })
