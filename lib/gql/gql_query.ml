type agg =
  | Count_star
  | Count of string
  | Sum of string * string
  | Min of string * string
  | Max of string * string

type item =
  | Ivar of string
  | Iprop of string * string
  | Isize of string
  | Iagg of agg

type t = { pattern : Gql.pattern; distinct : bool; items : item list }

exception Parse_error of string
exception Eval_error of string

(* --- parsing -------------------------------------------------------------- *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\n' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

(* Case-insensitive search for a top-level keyword (not inside quotes or
   parentheses). *)
let find_keyword s kw =
  let n = String.length s and k = String.length kw in
  let depth = ref 0 and in_string = ref false in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i <= n - k do
    let c = s.[!i] in
    if !in_string then begin
      if c = '\'' then in_string := false
    end
    else if c = '\'' then in_string := true
    else if c = '(' || c = '[' || c = '{' then incr depth
    else if c = ')' || c = ']' || c = '}' then decr depth
    else if
      !depth = 0
      && String.uppercase_ascii (String.sub s !i k) = kw
      && (!i = 0 || s.[!i - 1] = ' ')
      && (!i + k = n || s.[!i + k] = ' ')
    then result := Some !i;
    incr i
  done;
  !result

let split_top_commas s =
  let parts = ref [] and buf = Buffer.create 16 in
  let depth = ref 0 and in_string = ref false in
  String.iter
    (fun c ->
      if !in_string then begin
        if c = '\'' then in_string := false;
        Buffer.add_char buf c
      end
      else
        match c with
        | '\'' ->
            in_string := true;
            Buffer.add_char buf c
        | '(' | '[' | '{' ->
            incr depth;
            Buffer.add_char buf c
        | ')' | ']' | '}' ->
            decr depth;
            Buffer.add_char buf c
        | ',' when !depth = 0 ->
            parts := Buffer.contents buf :: !parts;
            Buffer.clear buf
        | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map strip !parts

let parse_prop_ref src what =
  match String.index_opt src '.' with
  | Some i ->
      (String.sub src 0 i, String.sub src (i + 1) (String.length src - i - 1))
  | None -> raise (Parse_error (what ^ ": expected var.prop, got " ^ src))

let parse_item src =
  let src = strip src in
  let call prefix =
    let p = prefix ^ "(" in
    if
      String.length src > String.length p + 1
      && String.lowercase_ascii (String.sub src 0 (String.length p)) = p
      && src.[String.length src - 1] = ')'
    then
      Some (strip (String.sub src (String.length p) (String.length src - String.length p - 1)))
    else None
  in
  match call "count" with
  | Some "*" -> Iagg Count_star
  | Some arg -> Iagg (Count arg)
  | None -> (
      match call "sum" with
      | Some arg ->
          let x, p = parse_prop_ref arg "sum" in
          Iagg (Sum (x, p))
      | None -> (
          match call "min" with
          | Some arg ->
              let x, p = parse_prop_ref arg "min" in
              Iagg (Min (x, p))
          | None -> (
              match call "max" with
              | Some arg ->
                  let x, p = parse_prop_ref arg "max" in
                  Iagg (Max (x, p))
              | None -> (
                  match call "size" with
                  | Some arg -> Isize arg
                  | None ->
                      if String.contains src '.' then
                        let x, p = parse_prop_ref src "item" in
                        Iprop (x, p)
                      else if src = "" then raise (Parse_error "empty RETURN item")
                      else Ivar src))))

let parse src =
  let match_pos =
    match find_keyword src "MATCH" with
    | Some i -> i
    | None -> raise (Parse_error "expected MATCH")
  in
  let return_pos =
    match find_keyword src "RETURN" with
    | Some i -> i
    | None -> raise (Parse_error "expected RETURN")
  in
  if return_pos < match_pos then raise (Parse_error "RETURN before MATCH");
  let pattern_src = strip (String.sub src (match_pos + 5) (return_pos - match_pos - 5)) in
  let items_src = strip (String.sub src (return_pos + 6) (String.length src - return_pos - 6)) in
  let distinct, items_src =
    if
      String.length items_src >= 9
      && String.uppercase_ascii (String.sub items_src 0 9) = "DISTINCT "
    then (true, strip (String.sub items_src 9 (String.length items_src - 9)))
    else (false, items_src)
  in
  let pattern =
    match Gql_parse.parse_opt pattern_src with
    | Ok p -> p
    | Error msg -> raise (Parse_error ("in MATCH pattern: " ^ msg))
  in
  if items_src = "" then raise (Parse_error "empty RETURN clause");
  { pattern; distinct; items = List.map parse_item (split_top_commas items_src) }

let parse_res src =
  match parse src with
  | q -> Ok q
  | exception Parse_error msg -> Error (Gq_error.Parse { what = "query"; msg })

(* --- evaluation ------------------------------------------------------------ *)

let item_name = function
  | Ivar x -> x
  | Iprop (x, p) -> x ^ "." ^ p
  | Isize x -> "size(" ^ x ^ ")"
  | Iagg Count_star -> "count(*)"
  | Iagg (Count x) -> "count(" ^ x ^ ")"
  | Iagg (Sum (x, p)) -> "sum(" ^ x ^ "." ^ p ^ ")"
  | Iagg (Min (x, p)) -> "min(" ^ x ^ "." ^ p ^ ")"
  | Iagg (Max (x, p)) -> "max(" ^ x ^ "." ^ p ^ ")"

let is_agg = function Iagg _ -> true | Ivar _ | Iprop _ | Isize _ -> false

let single_of pg b x =
  match List.assoc_opt x b with
  | Some (Gql.Single obj) -> Some obj
  | Some (Gql.Group _) ->
      raise
        (Eval_error
           (Printf.sprintf
              "variable %s is list-bound; returning lists is not allowed \
               (use size(%s))"
              x x))
  | None -> ignore pg; None

let key_cell pg b = function
  | Ivar x -> (
      match single_of pg b x with
      | Some (Path.N n) -> Some (Relation.Cnode n)
      | Some (Path.E e) -> Some (Relation.Cedge e)
      | None -> None)
  | Iprop (x, p) -> (
      match single_of pg b x with
      | Some obj -> Option.map (fun v -> Relation.Cval v) (Pg.prop pg obj p)
      | None -> None)
  | Isize x -> (
      match List.assoc_opt x b with
      | Some (Gql.Group l) -> Some (Relation.Cval (Value.Int (List.length l)))
      | Some (Gql.Single _) -> Some (Relation.Cval (Value.Int 1))
      | None -> None)
  | Iagg _ -> assert false

let numeric_values pg rows x p =
  List.filter_map
    (fun b ->
      match List.assoc_opt x b with
      | Some (Gql.Single obj) -> Pg.prop pg obj p
      | Some (Gql.Group _) | None -> None)
    rows

let agg_cell pg rows = function
  | Count_star -> Relation.Cval (Value.Int (List.length rows))
  | Count x ->
      Relation.Cval
        (Value.Int
           (List.length (List.filter (fun b -> List.mem_assoc x b) rows)))
  | Sum (x, p) ->
      let vals = numeric_values pg rows x p in
      let sum =
        List.fold_left
          (fun acc v ->
            match (acc, v) with
            | Value.Int a, Value.Int b -> Value.Int (a + b)
            | Value.Real a, Value.Real b -> Value.Real (a +. b)
            | Value.Int a, Value.Real b -> Value.Real (float_of_int a +. b)
            | Value.Real a, Value.Int b -> Value.Real (a +. float_of_int b)
            | _, _ -> raise (Eval_error "sum over non-numeric property"))
          (Value.Int 0) vals
      in
      Relation.Cval sum
  | Min (x, p) -> (
      match numeric_values pg rows x p with
      | [] -> raise (Eval_error "min over an empty group")
      | v :: rest ->
          Relation.Cval
            (List.fold_left (fun a b -> if Value.test Value.Lt b a then b else a) v rest))
  | Max (x, p) -> (
      match numeric_values pg rows x p with
      | [] -> raise (Eval_error "max over an empty group")
      | v :: rest ->
          Relation.Cval
            (List.fold_left (fun a b -> if Value.test Value.Gt b a then b else a) v rest))

let eval_gov gov ?(max_len = 8) ?(obs = Obs.none) pg q =
  Obs.span obs "gql.eval" @@ fun () ->
  let matches =
    Obs.span obs "gql.match" @@ fun () ->
    Governor.payload ~default:[]
      (Gql.matches_bounded ~dedup:q.distinct gov pg q.pattern ~max_len)
  in
  Obs.add obs "gql.bindings" (List.length matches);
  let bindings = List.map snd matches in
  let schema = List.map item_name q.items in
  let key_items = List.filter (fun it -> not (is_agg it)) q.items in
  let has_agg = List.exists is_agg q.items in
  let rel =
  if not has_agg then
    let rows =
      List.filter_map
        (fun b ->
          let cells = List.map (key_cell pg b) q.items in
          if List.for_all Option.is_some cells then
            Some (List.map Option.get cells)
          else None)
        bindings
    in
    Relation.make ~schema ~rows
  else begin
    (* Group by the non-aggregate items. *)
    let groups : (Relation.cell option list, Gql.binding list) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun b ->
        let key = List.map (key_cell pg b) key_items in
        if List.for_all Option.is_some key then
          Hashtbl.replace groups key
            (b :: (try Hashtbl.find groups key with Not_found -> [])))
      bindings;
    let rows =
      Hashtbl.fold
        (fun key rows acc ->
          let key = List.map Option.get key in
          let row =
            List.map
              (fun it ->
                match it with
                | Iagg agg -> agg_cell pg rows agg
                | Ivar _ | Iprop _ | Isize _ ->
                    (* Position in the key list. *)
                    let rec nth items key =
                      match (items, key) with
                      | it' :: _, c :: _ when it' == it -> c
                      | _ :: items, _ :: key -> nth items key
                      | _, _ -> assert false
                    in
                    nth key_items key)
              q.items
          in
          row :: acc)
        groups []
    in
    Relation.make ~schema ~rows
  end
  in
  Obs.add obs "gql.rows" (List.length (Relation.rows rel));
  rel

let eval_bounded ?max_len ?obs gov pg q =
  Governor.seal gov (eval_gov gov ?max_len ?obs pg q)

let eval ?max_len ?obs pg q =
  Governor.value (eval_bounded ?max_len ?obs (Governor.unlimited ()) pg q)
