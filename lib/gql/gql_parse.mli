(** Parser for the "ASCII art" pattern syntax of Cypher/GQL/SQL-PGQ used
    throughout the paper:

    {v
    pattern  ::= seq ('|' seq)*
    seq      ::= element+
    element  ::= node | edge | '(' pattern ')' quant?
    node     ::= '(' [var] [':' label] [WHERE cond] ')'
    edge     ::= '-[' [var] [':' label] [WHERE cond] ']->' quant?
    quant    ::= '*' | '+' | '?' | '{' n [',' [m]] '}'
    cond     ::= comparison of var.prop / numbers / 'strings',
                 with AND, OR, NOT, parentheses
    v}

    Examples from the paper that parse directly:
    ["(x) ( ()-[z:a]->() ){2} (y)"] (Example 1),
    ["(x) ( (u)-[:a]->(v) WHERE u.date < v.date )* (y)"] (Example 3). *)

exception Parse_error of string

val parse : string -> Gql.pattern
val parse_opt : string -> (Gql.pattern, string) result

(** As {!parse_opt}, with the shared {!Gq_error.t} error type. *)
val parse_res : string -> (Gql.pattern, Gq_error.t) result
