(** A read-only GQL query layer: MATCH / RETURN over the pattern engine.

    The paper notes that beyond patterns, "GQL is a full-fledged query
    language with features such as aggregation" ([51] models its read-only
    fragment as pattern matching + table operations).  This module is that
    fragment, shaped by the paper's design positions:

    - results are first-normal-form relations (Section 4.1): returning a
      {e list-bound} (group) variable is an error — exactly the
      restriction CoreGQL makes to avoid higher-order relations; use
      [size(z)] to observe a list's length instead;
    - rows whose RETURN items are undefined (missing property, unbound
      disjunct variable) are dropped: no nulls;
    - the output is a set ({!Relation.t}); aggregation groups by the
      non-aggregated items, SQL-style.

    Syntax:
    {v
    MATCH <pattern> RETURN [DISTINCT] item (, item)*
    item ::= x | x.prop | size(x) | count-star | count(x)
           | sum(x.prop) | min(x.prop) | max(x.prop)

    (count-star is spelled count with a star argument, as in SQL.)
    v}

    The pattern syntax is {!Gql_parse}'s, including WHERE inside the
    pattern. *)

type agg =
  | Count_star
  | Count of string
  | Sum of string * string
  | Min of string * string
  | Max of string * string

type item =
  | Ivar of string
  | Iprop of string * string
  | Isize of string  (** length of a group variable's list *)
  | Iagg of agg

type t = { pattern : Gql.pattern; distinct : bool; items : item list }

exception Parse_error of string
exception Eval_error of string

val parse : string -> t

(** As {!parse}, mapping {!Parse_error} into the shared {!Gq_error.t}. *)
val parse_res : string -> (t, Gq_error.t) result

(** [eval pg q ~max_len]: match, project, aggregate.  Raises
    {!Eval_error} on returning a group variable or aggregating over a
    non-value property.

    [?obs] records [gql.bindings] (pattern matches) and [gql.rows]
    (output rows after projection/aggregation), inside [gql.eval] /
    [gql.match] spans. *)
val eval : ?max_len:int -> ?obs:Obs.t -> Pg.t -> t -> Relation.t

(** As {!eval} under a governor metering the MATCH phase.  Aggregates in a
    [Partial] outcome are computed over the truncated match set. *)
val eval_bounded :
  ?max_len:int -> ?obs:Obs.t ->
  Governor.t -> Pg.t -> t -> Relation.t Governor.outcome

val item_name : item -> string
