type operand = Prop of string * string | Const of Value.t

type cond =
  | Cmp of operand * Value.op * operand
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

type node_pat = { nvar : string option; nlbl : string option }
type edge_pat = { evar : string option; elbl : string option }

type pattern =
  | Pnode of node_pat
  | Pedge of edge_pat
  | Pseq of pattern * pattern
  | Palt of pattern * pattern
  | Pquant of pattern * int * int option
  | Pwhere of pattern * cond

type gvalue = Single of Path.obj | Group of Path.obj list
type binding = (string * gvalue) list

exception Degree_conflict of string

let rec vars = function
  | Pnode { nvar; _ } -> Option.to_list nvar
  | Pedge { evar; _ } -> Option.to_list evar
  | Pseq (p1, p2) | Palt (p1, p2) ->
      List.sort_uniq String.compare (vars p1 @ vars p2)
  | Pquant (p, _, _) -> vars p
  | Pwhere (p, _) -> vars p

(* Join singletons, concatenate groups; a variable used in both degrees is
   a static error in GQL, surfaced here dynamically. *)
let merge_value x v1 v2 =
  match (v1, v2) with
  | Single a, Single b -> if a = b then Some (Single a) else None
  | Group l1, Group l2 -> Some (Group (l1 @ l2))
  | Single _, Group _ | Group _, Single _ -> raise (Degree_conflict x)

let rec merge (b1 : binding) (b2 : binding) : binding option =
  match (b1, b2) with
  | [], b | b, [] -> Some b
  | (x1, v1) :: r1, (x2, v2) :: r2 ->
      let c = String.compare x1 x2 in
      if c < 0 then Option.map (fun r -> (x1, v1) :: r) (merge r1 b2)
      else if c > 0 then Option.map (fun r -> (x2, v2) :: r) (merge b1 r2)
      else
        Option.bind (merge_value x1 v1 v2) (fun v ->
            Option.map (fun r -> (x1, v) :: r) (merge r1 r2))

let bind_opt var value : binding =
  match var with Some x -> [ (x, value) ] | None -> []

let cond_holds pg (b : binding) cond =
  let operand_value = function
    | Const v -> Some v
    | Prop (x, k) -> (
        match List.assoc_opt x b with
        | Some (Single obj) -> Pg.prop pg obj k
        | Some (Group _) | None -> None)
  in
  let rec go = function
    | Cmp (o1, op, o2) -> (
        match (operand_value o1, operand_value o2) with
        | Some v1, Some v2 -> Value.test op v1 v2
        | _, _ -> false)
    | And (c1, c2) -> go c1 && go c2
    | Or (c1, c2) -> go c1 || go c2
    | Not c -> not (go c)
  in
  go cond

(* Demote every variable of the per-iteration bindings to a group,
   concatenating in iteration order. *)
let group_iterations (iteration_bindings : binding list) : binding =
  let add acc (x, v) =
    let objs = match v with Single o -> [ o ] | Group l -> l in
    let rec insert = function
      | [] -> [ (x, Group objs) ]
      | (y, Group l) :: rest when String.equal x y -> (y, Group (l @ objs)) :: rest
      | entry :: rest -> entry :: insert rest
    in
    insert acc
  in
  let unsorted =
    List.fold_left (fun acc b -> List.fold_left add acc b) [] iteration_bindings
  in
  List.sort (fun (x, _) (y, _) -> String.compare x y) unsorted

(* Matching: from node [v] with [budget] edges left, return
   (end node, reversed edge list, binding) triples.  One governor step
   per pattern-position visit; a tripped budget truncates candidate
   lists, so partial match sets are subsets of the true ones. *)
let rec matches_at gov pg pattern v budget : (int * int list * binding) list =
  let g = Pg.elg pg in
  if not (Governor.ok gov) then []
  else
  match pattern with
  | Pnode { nvar; nlbl } ->
      let label_ok =
        match nlbl with None -> true | Some l -> String.equal (Pg.node_label pg v) l
      in
      if label_ok then [ (v, [], bind_opt nvar (Single (Path.N v))) ] else []
  | Pedge { evar; elbl } ->
      List.filter_map
        (fun e ->
          let label_ok =
            match elbl with None -> true | Some l -> String.equal (Elg.label g e) l
          in
          if label_ok && budget >= 1 && Governor.tick gov then
            Some (Elg.tgt g e, [ e ], bind_opt evar (Single (Path.E e)))
          else None)
        (Elg.out_edges g v)
  | Pseq (p1, p2) ->
      List.concat_map
        (fun (v1, es1, b1) ->
          if not (Governor.tick gov) then []
          else
            List.filter_map
              (fun (v2, es2, b2) ->
                Option.map (fun b -> (v2, es2 @ es1, b)) (merge b1 b2))
              (matches_at gov pg p2 v1 (budget - List.length es1)))
        (matches_at gov pg p1 v budget)
  | Palt (p1, p2) ->
      matches_at gov pg p1 v budget @ matches_at gov pg p2 v budget
  | Pwhere (p, cond) ->
      List.filter
        (fun (_, _, b) -> cond_holds pg b cond)
        (matches_at gov pg p v budget)
  | Pquant (p, n, m) ->
      let max_iters = match m with Some m -> m | None -> budget + 1 in
      (* [iterate k v budget] returns (end, edges, iteration bindings) for
         runs of exactly [k] further iterations, unbounded by [k <=
         max_iters]. *)
      let results = ref [] in
      let rec iterate k v budget rev_edges rev_iter_bindings =
        if k >= n then
          results := (v, rev_edges, List.rev rev_iter_bindings) :: !results;
        if k < max_iters then
          List.iter
            (fun (v', es, b) ->
              let consumed = List.length es in
              (* Guard against infinite ε-iterations: a zero-edge iteration
                 may repeat, but the iteration cap bounds it. *)
              if consumed <= budget && Governor.tick gov then
                iterate (k + 1) v' (budget - consumed) (es @ rev_edges)
                  (b :: rev_iter_bindings))
            (matches_at gov pg p v budget)
      in
      iterate 0 v budget [] [];
      List.rev_map
        (fun (v', rev_edges, iter_bindings) ->
          (v', rev_edges, group_iterations iter_bindings))
        !results

let build_path g start rev_edges =
  let edges = List.rev rev_edges in
  let objs =
    Path.N start
    :: List.concat_map (fun e -> [ Path.E e; Path.N (Elg.tgt g e) ]) edges
  in
  Path.of_objs_exn g objs

let dedup_results results =
  List.sort_uniq
    (fun (p1, b1) (p2, b2) ->
      match Path.compare p1 p2 with 0 -> Stdlib.compare b1 b2 | c -> c)
    results

let matches_gov gov ?(dedup = true) pg pattern ~max_len =
  let g = Pg.elg pg in
  let all = ref [] in
  for v = 0 to Elg.nb_nodes g - 1 do
    List.iter
      (fun (_, rev_edges, b) ->
        if Governor.emit gov then all := (build_path g v rev_edges, b) :: !all)
      (matches_at gov pg pattern v max_len)
  done;
  let results = List.rev !all in
  if dedup then dedup_results results else results

let matches_bounded ?dedup gov pg pattern ~max_len =
  Governor.seal gov (matches_gov gov ?dedup pg pattern ~max_len)

let matches ?dedup pg pattern ~max_len =
  Governor.value
    (matches_bounded ?dedup (Governor.unlimited ()) pg pattern ~max_len)

let matches_between_gov gov ?(dedup = true) pg pattern ~max_len ~src ~tgt =
  let g = Pg.elg pg in
  let results =
    List.filter_map
      (fun (v_end, rev_edges, b) ->
        if v_end = tgt && Governor.emit gov then
          Some (build_path g src rev_edges, b)
        else None)
      (matches_at gov pg pattern src max_len)
  in
  if dedup then dedup_results results else results

let matches_between_bounded ?dedup gov pg pattern ~max_len ~src ~tgt =
  Governor.seal gov (matches_between_gov gov ?dedup pg pattern ~max_len ~src ~tgt)

let matches_between ?dedup pg pattern ~max_len ~src ~tgt =
  Governor.value
    (matches_between_bounded ?dedup (Governor.unlimited ()) pg pattern ~max_len
       ~src ~tgt)

let gvalue_to_string g = function
  | Single (Path.N n) -> Elg.node_name g n
  | Single (Path.E e) -> Elg.edge_name g e
  | Group objs ->
      let name = function
        | Path.N n -> Elg.node_name g n
        | Path.E e -> Elg.edge_name g e
      in
      "list(" ^ String.concat ", " (List.map name objs) ^ ")"

let binding_to_string g b =
  "{"
  ^ String.concat "; "
      (List.map (fun (x, v) -> x ^ " -> " ^ gvalue_to_string g v) b)
  ^ "}"

let operand_to_string = function
  | Prop (x, k) -> x ^ "." ^ k
  | Const v -> Value.to_string v

let rec cond_to_string = function
  | Cmp (o1, op, o2) ->
      Printf.sprintf "%s %s %s" (operand_to_string o1) (Value.op_to_string op)
        (operand_to_string o2)
  | And (c1, c2) -> cond_to_string c1 ^ " AND " ^ cond_to_string c2
  | Or (c1, c2) -> cond_to_string c1 ^ " OR " ^ cond_to_string c2
  | Not c -> "NOT " ^ cond_to_string c

let rec pattern_to_string = function
  | Pnode { nvar; nlbl } ->
      Printf.sprintf "(%s%s)"
        (Option.value nvar ~default:"")
        (match nlbl with Some l -> ":" ^ l | None -> "")
  | Pedge { evar; elbl } ->
      Printf.sprintf "-[%s%s]->"
        (Option.value evar ~default:"")
        (match elbl with Some l -> ":" ^ l | None -> "")
  | Pseq (p1, p2) -> pattern_to_string p1 ^ pattern_to_string p2
  | Palt (p1, p2) -> "(" ^ pattern_to_string p1 ^ "|" ^ pattern_to_string p2 ^ ")"
  | Pquant (p, n, Some m) when n = m ->
      Printf.sprintf "(%s){%d}" (pattern_to_string p) n
  | Pquant (p, n, Some m) -> Printf.sprintf "(%s){%d,%d}" (pattern_to_string p) n m
  | Pquant (p, 0, None) -> "(" ^ pattern_to_string p ^ ")*"
  | Pquant (p, 1, None) -> "(" ^ pattern_to_string p ^ ")+"
  | Pquant (p, n, None) -> Printf.sprintf "(%s){%d,}" (pattern_to_string p) n
  | Pwhere (p, c) ->
      "(" ^ pattern_to_string p ^ " WHERE " ^ cond_to_string c ^ ")"
