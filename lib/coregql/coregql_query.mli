(** CoreGQL queries: relational algebra over pattern outputs
    (Section 4.1.3).

    "CoreGQL is defined as the set of relational algebra queries over all
    relations R^π_Ω."  This module gives that language an AST: leaves are
    patterns-with-output, internal nodes are σ, π, ⋈, ∪, −, ρ.  The
    Section 4.1.3 example query is expressible verbatim (see the test
    suite):

    {v π_{x,x.s} ( σ_{x1≠x2 ∧ x1.p=x2.p} ( R^π1_Ω1 ⋈ R^π2_Ω2 ) ) v} *)

(** Selection predicates over a row, by attribute name. *)
type pred =
  | Peq of string * string  (** attr = attr *)
  | Plt of string * string
  | Pconst of string * Value.op * Value.t  (** attr op constant *)
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred

type t =
  | Rel of Coregql.pattern * Coregql.omega_item list  (** R^π_Ω *)
  | Select of pred * t
  | Project of string list * t
  | Join of t * t
  | Union of t * t
  | Diff of t * t
  | Rename of (string * string) list * t

(** Evaluate to a first-normal-form relation.  Raises [Invalid_argument]
    on schema errors (propagated from {!Relation}) and [Not_found] on
    predicates over unknown attributes.

    [?obs] records [coregql.pattern_rows] (rows materialized per pattern
    leaf) and [coregql.rows] (final output), inside [coregql.eval] /
    [coregql.pattern] spans. *)
val eval : ?obs:Obs.t -> Pg.t -> t -> Relation.t

(** As {!eval} under a governor, metering the pattern leaves.  A tripped
    budget under a difference returns the empty relation for that subtree
    (a truncated subtrahend could otherwise wrongly keep rows), so
    [Partial] outcomes never contain rows absent from the true answer. *)
val eval_bounded :
  ?obs:Obs.t -> Governor.t -> Pg.t -> t -> Relation.t Governor.outcome
