(* Positional matching: a node-to-node path with L edges has node
   positions 0..L; a pattern match is an interval [i, j] plus a binding. *)

type span = int * int * Coregql.binding

let dedup (spans : span list) = List.sort_uniq Stdlib.compare spans

let path_arrays path =
  let nodes = Array.of_list (Path.nodes path) in
  let edges = Array.of_list (Path.edges path) in
  (nodes, edges)

let rec spans pg (nodes : int array) (edges : int array) pattern : span list =
  let nb_pos = Array.length nodes in
  match (pattern : Coregql.pattern) with
  | Pnode var ->
      List.init nb_pos (fun i ->
          let mu =
            match var with Some x -> [ (x, Path.N nodes.(i)) ] | None -> []
          in
          (i, i, mu))
  | Pedge var ->
      List.init (Array.length edges) (fun i ->
          let mu =
            match var with Some x -> [ (x, Path.E edges.(i)) ] | None -> []
          in
          (i, i + 1, mu))
  | Pconcat (p1, p2) ->
      let s1 = spans pg nodes edges p1 and s2 = spans pg nodes edges p2 in
      List.concat_map
        (fun (i, j, m1) ->
          List.filter_map
            (fun (j', k, m2) ->
              if j = j' then
                Option.map (fun m -> (i, k, m)) (Coregql.(merge) m1 m2)
              else None)
            s2)
        s1
      |> dedup
  | Pdisj (p1, p2) ->
      dedup (spans pg nodes edges p1 @ spans pg nodes edges p2)
  | Prepeat (p, n, m) ->
      let base =
        spans pg nodes edges p
        |> List.map (fun (i, j, _) -> (i, j))
        |> List.sort_uniq Stdlib.compare
      in
      let identity = List.init nb_pos (fun i -> (i, i)) in
      let compose a b =
        List.concat_map
          (fun (i, j) ->
            List.filter_map (fun (j', k) -> if j = j' then Some (i, k) else None) b)
          a
        |> List.sort_uniq Stdlib.compare
      in
      let rec power k = if k = 0 then identity else compose (power (k - 1)) base in
      let exact_n = power n in
      let result =
        match m with
        | Some m ->
            let rec upto k acc cur =
              if k > m then acc
              else upto (k + 1) (List.sort_uniq Stdlib.compare (acc @ cur)) (compose cur base)
            in
            upto n [] exact_n
        | None ->
            (* Positions are finite: iterate the closure to fixpoint. *)
            let rec fix acc =
              let next = List.sort_uniq Stdlib.compare (acc @ compose acc base) in
              if List.length next = List.length acc then acc else fix next
            in
            compose exact_n (fix identity)
      in
      List.map (fun (i, j) -> (i, j, [])) result
  | Pcond (p, theta) ->
      List.filter
        (fun (i, j, mu) -> cond_on_span pg nodes edges (i, j, mu) theta)
        (spans pg nodes edges p)

and cond_on_span pg nodes edges (i, j, mu) theta =
  match (theta : Coregql.cond) with
  | Cforall (inner, inner_cond) ->
      (* Every match of [inner] on an infix of the matched span must
         satisfy the condition. *)
      spans pg nodes edges inner
      |> List.for_all (fun (i', j', mu') ->
             if i <= i' && j' <= j then
               cond_on_span pg nodes edges (i', j', mu') inner_cond
             else true)
  | Cand (t1, t2) ->
      cond_on_span pg nodes edges (i, j, mu) t1
      && cond_on_span pg nodes edges (i, j, mu) t2
  | Cor (t1, t2) ->
      cond_on_span pg nodes edges (i, j, mu) t1
      || cond_on_span pg nodes edges (i, j, mu) t2
  | Cnot t -> not (cond_on_span pg nodes edges (i, j, mu) t)
  | Ckey _ | Ckey_const _ | Clabel _ -> Coregql.cond_holds pg mu theta

let match_positions pg pattern path =
  if not (Path.starts_with_node path && Path.ends_with_node path) then []
  else
    let nodes, edges = path_arrays path in
    spans pg nodes edges pattern

let match_on_path pg pattern path =
  let nodes, _ = path_arrays path in
  let last = Array.length nodes - 1 in
  match_positions pg pattern path
  |> List.filter_map (fun (i, j, mu) ->
         if i = 0 && j = last then Some mu else None)
  |> List.sort_uniq Stdlib.compare

let matches_path pg pattern path = match_on_path pg pattern path <> []

(* All trails of a graph, as node-to-node paths (includes single nodes).
   One governor step per trail extension — there can be factorially
   many. *)
let all_trails gov g =
  let acc = ref [] in
  let visited = Array.make (max 1 (Elg.nb_edges g)) false in
  let rec go v rev_objs =
    acc := List.rev rev_objs :: !acc;
    List.iter
      (fun e ->
        if (not visited.(e)) && Governor.tick gov then begin
          visited.(e) <- true;
          go (Elg.tgt g e) (Path.N (Elg.tgt g e) :: Path.E e :: rev_objs);
          visited.(e) <- false
        end)
      (Elg.out_edges g v)
  in
  for v = 0 to Elg.nb_nodes g - 1 do
    if Governor.ok gov then go v [ Path.N v ]
  done;
  List.rev_map (Path.of_objs_exn g) !acc

let matching_trails_gov gov pg pattern =
  let g = Pg.elg pg in
  List.filter
    (fun p ->
      Governor.ok gov && matches_path pg pattern p && Governor.emit gov)
    (all_trails gov g)
  |> List.sort_uniq Path.compare

let matching_trails_bounded gov pg pattern =
  Governor.seal gov (matching_trails_gov gov pg pattern)

let matching_trails pg pattern =
  Governor.value (matching_trails_bounded (Governor.unlimited ()) pg pattern)

let all_paths_upto gov g ~max_len =
  let acc = ref [] in
  let rec go v rev_objs len =
    acc := List.rev rev_objs :: !acc;
    if len < max_len then
      List.iter
        (fun e ->
          if Governor.tick gov then
            go (Elg.tgt g e)
              (Path.N (Elg.tgt g e) :: Path.E e :: rev_objs)
              (len + 1))
        (Elg.out_edges g v)
  in
  for v = 0 to Elg.nb_nodes g - 1 do
    if Governor.ok gov then go v [ Path.N v ] 0
  done;
  List.rev_map (Path.of_objs_exn g) !acc

let matching_paths_upto_gov gov pg pattern ~max_len =
  let g = Pg.elg pg in
  List.filter
    (fun p ->
      Governor.ok gov && matches_path pg pattern p && Governor.emit gov)
    (all_paths_upto gov g ~max_len)
  |> List.sort_uniq Path.compare

let matching_paths_upto_bounded gov pg pattern ~max_len =
  Governor.seal gov (matching_paths_upto_gov gov pg pattern ~max_len)

let matching_paths_upto pg pattern ~max_len =
  Governor.value
    (matching_paths_upto_bounded (Governor.unlimited ()) pg pattern ~max_len)

let except paths1 paths2 =
  List.filter (fun p -> not (List.exists (Path.equal p) paths2)) paths1
