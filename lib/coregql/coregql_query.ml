type pred =
  | Peq of string * string
  | Plt of string * string
  | Pconst of string * Value.op * Value.t
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred

type t =
  | Rel of Coregql.pattern * Coregql.omega_item list
  | Select of pred * t
  | Project of string list * t
  | Join of t * t
  | Union of t * t
  | Diff of t * t
  | Rename of (string * string) list * t

let cell_value = function
  | Relation.Cval v -> Some v
  | Relation.Cnode _ | Relation.Cedge _ -> None

let rec pred_holds get = function
  | Peq (a, b) -> Relation.compare_cell (get a) (get b) = 0
  | Plt (a, b) -> (
      match (cell_value (get a), cell_value (get b)) with
      | Some v1, Some v2 -> Value.test Value.Lt v1 v2
      | _, _ -> Relation.compare_cell (get a) (get b) < 0)
  | Pconst (a, op, c) -> (
      match cell_value (get a) with
      | Some v -> Value.test op v c
      | None -> false)
  | Pand (p1, p2) -> pred_holds get p1 && pred_holds get p2
  | Por (p1, p2) -> pred_holds get p1 || pred_holds get p2
  | Pnot p -> not (pred_holds get p)

(* The governor meters the pattern leaves (where the blow-up lives); the
   algebra operators themselves work on already-materialized relations.
   Note [Diff]: a truncated subtrahend could wrongly keep rows, so once
   the budget trips the subtraction yields the empty relation — partial
   answers stay subsets of the true answer. *)
let rec eval_gov ?(obs = Obs.none) gov pg = function
  | Rel (pattern, omega) ->
      let rel =
        Obs.span obs "coregql.pattern" @@ fun () ->
        Governor.payload
          ~default:(Relation.make ~schema:[] ~rows:[])
          (Coregql.output_bounded gov pg pattern omega)
      in
      Obs.add obs "coregql.pattern_rows" (List.length (Relation.rows rel));
      rel
  | Select (pred, q) ->
      Relation.select (eval_gov ~obs gov pg q) (fun get -> pred_holds get pred)
  | Project (attrs, q) -> Relation.project (eval_gov ~obs gov pg q) attrs
  | Join (q1, q2) ->
      Relation.join (eval_gov ~obs gov pg q1) (eval_gov ~obs gov pg q2)
  | Union (q1, q2) ->
      Relation.union (eval_gov ~obs gov pg q1) (eval_gov ~obs gov pg q2)
  | Diff (q1, q2) ->
      let r1 = eval_gov ~obs gov pg q1 in
      let r2 = eval_gov ~obs gov pg q2 in
      if Governor.ok gov then Relation.diff r1 r2
      else Relation.make ~schema:(Relation.schema r1) ~rows:[]
  | Rename (mapping, q) -> Relation.rename (eval_gov ~obs gov pg q) mapping

let eval_bounded ?(obs = Obs.none) gov pg q =
  Obs.span obs "coregql.eval" @@ fun () ->
  let rel = eval_gov ~obs gov pg q in
  Obs.add obs "coregql.rows" (List.length (Relation.rows rel));
  Governor.seal gov rel

let eval ?obs pg q =
  Governor.value (eval_bounded ?obs (Governor.unlimited ()) pg q)
