(** Path-level evaluation of CoreGQL patterns (Section 5.2).

    The relational evaluator ({!Coregql.eval}) only keeps endpoints and
    bindings; the workarounds the paper discusses in "Dangers of Ad-Hoc
    Solutions" need the paths themselves:

    - {e path variables + EXCEPT}: materialize the paths matched by two
      patterns and subtract ({!except});
    - {e matched-path conditions} [∀π′ ⇒ θ]: for every match of π′ on an
      infix of the already-matched path, θ must hold.

    Pattern matching against a fixed path is positional: a CoreGQL path is
    node-to-node, so a match is an interval of node positions.  Matching a
    pattern against all trails of a graph is the deliberately expensive
    evaluation strategy the paper warns about; experiment E8 measures it
    against the direct dl-RPQ evaluation. *)

(** Bindings of π matched against exactly the whole path. *)
val match_on_path : Pg.t -> Coregql.pattern -> Path.t -> Coregql.binding list

(** Does π match the whole path? *)
val matches_path : Pg.t -> Coregql.pattern -> Path.t -> bool

(** All matches on infixes: (start position, end position, binding);
    positions index the path's nodes. *)
val match_positions :
  Pg.t -> Coregql.pattern -> Path.t -> (int * int * Coregql.binding) list

(** All trails of the graph (node-to-node, every endpoint pair) that match
    π — the brute-force strategy behind the EXCEPT workaround. *)
val matching_trails : Pg.t -> Coregql.pattern -> Path.t list

(** As {!matching_trails} under a governor: one step per trail extension
    (there can be factorially many trails), one result per matching trail
    kept.  This is the evaluation strategy the paper warns about, so it is
    the one that most needs a budget. *)
val matching_trails_bounded :
  Governor.t -> Pg.t -> Coregql.pattern -> Path.t list Governor.outcome

(** All matching paths of length at most [max_len]. *)
val matching_paths_upto : Pg.t -> Coregql.pattern -> max_len:int -> Path.t list

val matching_paths_upto_bounded :
  Governor.t ->
  Pg.t ->
  Coregql.pattern ->
  max_len:int ->
  Path.t list Governor.outcome

(** Set difference on path lists (the p = π ... EXCEPT construction). *)
val except : Path.t list -> Path.t list -> Path.t list
