type cond =
  | Ckey of string * string * Value.op * string * string
  | Ckey_const of string * string * Value.op * Value.t
  | Clabel of string * string
  | Cand of cond * cond
  | Cor of cond * cond
  | Cnot of cond
  | Cforall of pattern * cond

and pattern =
  | Pnode of string option
  | Pedge of string option
  | Pconcat of pattern * pattern
  | Pdisj of pattern * pattern
  | Prepeat of pattern * int * int option
  | Pcond of pattern * cond

let rec free_vars = function
  | Pnode (Some x) | Pedge (Some x) -> [ x ]
  | Pnode None | Pedge None -> []
  | Pconcat (p1, p2) ->
      List.sort_uniq String.compare (free_vars p1 @ free_vars p2)
  | Pdisj (p1, _) -> free_vars p1
  | Prepeat _ -> []
  | Pcond (p, _) -> free_vars p

let rec validate = function
  | Pnode _ | Pedge _ -> ()
  | Pconcat (p1, p2) ->
      validate p1;
      validate p2
  | Pdisj (p1, p2) ->
      validate p1;
      validate p2;
      if
        List.sort String.compare (free_vars p1)
        <> List.sort String.compare (free_vars p2)
      then invalid_arg "Coregql: disjuncts must have equal free variables"
  | Prepeat (p, n, m) ->
      validate p;
      if n < 0 then invalid_arg "Coregql: negative repetition";
      (match m with
      | Some m when m < n -> invalid_arg "Coregql: empty repetition range"
      | Some _ | None -> ())
  | Pcond (p, _) -> validate p

type binding = (string * Path.obj) list

(* Merge of compatible bindings (both sorted); None when they disagree on a
   shared variable. *)
let rec merge (m1 : binding) (m2 : binding) : binding option =
  match (m1, m2) with
  | [], m | m, [] -> Some m
  | (x1, o1) :: r1, (x2, o2) :: r2 ->
      let c = String.compare x1 x2 in
      if c < 0 then Option.map (fun r -> (x1, o1) :: r) (merge r1 m2)
      else if c > 0 then Option.map (fun r -> (x2, o2) :: r) (merge m1 r2)
      else if o1 = o2 then Option.map (fun r -> (x1, o1) :: r) (merge r1 r2)
      else None

let rec cond_holds pg (mu : binding) = function
  | Ckey (x, k, op, y, k') -> (
      match (List.assoc_opt x mu, List.assoc_opt y mu) with
      | Some ox, Some oy -> (
          match (Pg.prop pg ox k, Pg.prop pg oy k') with
          | Some vx, Some vy -> Value.test op vx vy
          | _, _ -> false)
      | _, _ -> false)
  | Ckey_const (x, k, op, c) -> (
      match List.assoc_opt x mu with
      | Some ox -> (
          match Pg.prop pg ox k with
          | Some vx -> Value.test op vx c
          | None -> false)
      | None -> false)
  | Clabel (lbl, x) -> (
      match List.assoc_opt x mu with
      | Some ox -> String.equal (Pg.obj_label pg ox) lbl
      | None -> false)
  | Cand (t1, t2) -> cond_holds pg mu t1 && cond_holds pg mu t2
  | Cor (t1, t2) -> cond_holds pg mu t1 || cond_holds pg mu t2
  | Cnot t -> not (cond_holds pg mu t)
  | Cforall _ ->
      invalid_arg
        "Coregql.cond_holds: matched-path conditions need the path-level \
         evaluator (Coregql_paths)"

let dedup triples = List.sort_uniq Stdlib.compare triples

(* Endpoint relation composition for repetitions: one governor step per
   candidate pair considered. *)
let compose gov pairs1 pairs2 =
  List.concat_map
    (fun (u, w) ->
      if not (Governor.ok gov) then []
      else
        List.filter_map
          (fun (w', v) ->
            if Governor.tick gov && w = w' then Some (u, v) else None)
          pairs2)
    pairs1
  |> List.sort_uniq Stdlib.compare

let transitive_closure_with_identity gov g pairs =
  (* Reflexive-transitive closure over all graph nodes.  A tripped budget
     stops iterating early, leaving a sound under-approximation. *)
  let identity = List.init (Elg.nb_nodes g) (fun v -> (v, v)) in
  let rec fix acc =
    if not (Governor.ok gov) then acc
    else
      let next = List.sort_uniq Stdlib.compare (acc @ compose gov acc pairs) in
      if List.length next = List.length acc then acc else fix next
  in
  fix (List.sort_uniq Stdlib.compare identity)

(* A tripped governor truncates every enumeration below, so partial
   results are always subsets of the true triple set. *)
let rec eval_gov gov pg pattern =
  let g = Pg.elg pg in
  match pattern with
  | Pnode var ->
      List.init (Elg.nb_nodes g) (fun n ->
          let mu = match var with Some x -> [ (x, Path.N n) ] | None -> [] in
          (n, n, mu))
      |> List.filter (fun _ -> Governor.tick gov)
  | Pedge var ->
      List.init (Elg.nb_edges g) (fun e ->
          let mu = match var with Some x -> [ (x, Path.E e) ] | None -> [] in
          (Elg.src g e, Elg.tgt g e, mu))
      |> List.filter (fun _ -> Governor.tick gov)
  | Pconcat (p1, p2) ->
      let r1 = eval_gov gov pg p1 and r2 = eval_gov gov pg p2 in
      List.concat_map
        (fun (u, w, m1) ->
          if not (Governor.ok gov) then []
          else
            List.filter_map
              (fun (w', v, m2) ->
                if Governor.tick gov && w = w' then
                  Option.map (fun m -> (u, v, m)) (merge m1 m2)
                else None)
              r2)
        r1
      |> dedup
  | Pdisj (p1, p2) -> dedup (eval_gov gov pg p1 @ eval_gov gov pg p2)
  | Prepeat (p, n, m) ->
      let base =
        eval_gov gov pg p
        |> List.map (fun (u, v, _) -> (u, v))
        |> List.sort_uniq Stdlib.compare
      in
      let identity = List.init (Elg.nb_nodes g) (fun v -> (v, v)) in
      let rec power k =
        if k = 0 then identity else compose gov (power (k - 1)) base
      in
      let exact_n = power n in
      let result =
        match m with
        | None ->
            compose gov exact_n (transitive_closure_with_identity gov g base)
        | Some m ->
            let rec upto k acc cur =
              if k > m then acc
              else
                let acc = List.sort_uniq Stdlib.compare (acc @ cur) in
                upto (k + 1) acc (compose gov cur base)
            in
            upto n [] exact_n
      in
      List.map (fun (u, v) -> (u, v, [])) result
  | Pcond (p, theta) ->
      List.filter (fun (_, _, mu) -> cond_holds pg mu theta) (eval_gov gov pg p)

let eval pg pattern = eval_gov (Governor.unlimited ()) pg pattern

type omega_item = Ovar of string | Oprop of string * string

let output_gov gov pg pattern omega =
  let triples = eval_gov gov pg pattern in
  let attr = function
    | Ovar x -> x
    | Oprop (x, k) -> x ^ "." ^ k
  in
  let schema = List.map attr omega in
  let cell_of mu = function
    | Ovar x -> (
        match List.assoc_opt x mu with
        | Some (Path.N n) -> Some (Relation.Cnode n)
        | Some (Path.E e) -> Some (Relation.Cedge e)
        | None -> None)
    | Oprop (x, k) -> (
        match List.assoc_opt x mu with
        | Some obj ->
            Option.map (fun v -> Relation.Cval v) (Pg.prop pg obj k)
        | None -> None)
  in
  let rows =
    List.filter_map
      (fun (_, _, mu) ->
        let cells = List.map (cell_of mu) omega in
        if List.for_all Option.is_some cells && Governor.emit gov then
          Some (List.map Option.get cells)
        else None)
      triples
  in
  Relation.make ~schema ~rows

let output_bounded gov pg pattern omega =
  Governor.seal gov (output_gov gov pg pattern omega)

let output pg pattern omega =
  Governor.value (output_bounded (Governor.unlimited ()) pg pattern omega)

let rec pattern_to_string = function
  | Pnode (Some x) -> "(" ^ x ^ ")"
  | Pnode None -> "()"
  | Pedge (Some x) -> "-[" ^ x ^ "]->"
  | Pedge None -> "-[]->"
  | Pconcat (p1, p2) -> pattern_to_string p1 ^ pattern_to_string p2
  | Pdisj (p1, p2) ->
      "(" ^ pattern_to_string p1 ^ " + " ^ pattern_to_string p2 ^ ")"
  | Prepeat (p, n, None) -> Printf.sprintf "(%s){%d,}" (pattern_to_string p) n
  | Prepeat (p, n, Some m) ->
      Printf.sprintf "(%s){%d,%d}" (pattern_to_string p) n m
  | Pcond (p, _) -> "(" ^ pattern_to_string p ^ ")<θ>"
