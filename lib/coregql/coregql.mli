(** CoreGQL patterns and their relational semantics (Section 4.1, Fig. 4).

    Patterns are node/edge atoms with optional variables, concatenation,
    disjunction, bounded/unbounded repetition, and conditions θ.  Free
    variables follow the paper's definition — in particular
    [FV(π^{n..m}) = ∅], which is exactly what guarantees first-normal-form
    outputs (no lists), and disjuncts must have equal free variables (no
    nulls).

    [⟦π⟧_G] is a set of (path, binding) pairs and can be infinite under
    repetition; since repetition discards bindings, the {e relational}
    image is finite, and {!eval} computes the set of
    (source, target, binding) triples directly, with a reachability
    fixpoint for unbounded repetition.  Path-level evaluation (needed for
    Section 5.2's EXCEPT workaround and matched-path conditions) lives in
    {!Coregql_paths}. *)

type cond =
  | Ckey of string * string * Value.op * string * string
      (** [x.k op y.k']; the paper's grammar has [=] and [<], we allow all
          operators *)
  | Ckey_const of string * string * Value.op * Value.t  (** [x.k op c] *)
  | Clabel of string * string  (** ℓ(x) *)
  | Cand of cond * cond
  | Cor of cond * cond
  | Cnot of cond
  | Cforall of pattern * cond
      (** matched-path condition ∀π′ ⇒ θ (Section 5.2); only supported by
          the path-level evaluator *)

and pattern =
  | Pnode of string option  (** (x) or () *)
  | Pedge of string option  (** −[x]→ or −[]→ *)
  | Pconcat of pattern * pattern
  | Pdisj of pattern * pattern
  | Prepeat of pattern * int * int option  (** π^{n..m}, [None] = ∞ *)
  | Pcond of pattern * cond  (** π⟨θ⟩ *)

(** Free variables, per Section 4.1.1. *)
val free_vars : pattern -> string list

(** Checks the disjunction side condition FV(π1) = FV(π2); raises
    [Invalid_argument] on violation. *)
val validate : pattern -> unit

(** A binding of free variables to graph elements. *)
type binding = (string * Path.obj) list

(** μ1 ⋈ μ2 when compatible (μ1 ∼ μ2), [None] otherwise. *)
val merge : binding -> binding -> binding option

(** [μ ⊨ θ] (Fig. 4).  Raises [Invalid_argument] on [Cforall] — that
    condition needs the matched path, see {!Coregql_paths}. *)
val cond_holds : Pg.t -> binding -> cond -> bool

(** The finite relational image of ⟦π⟧_G: all (source, target, μ)
    triples such that some path p from source to target has
    [(p, μ) ∈ ⟦π⟧_G]. *)
val eval : Pg.t -> pattern -> (int * int * binding) list

(** As {!eval} under a governor: one step per candidate triple considered;
    [Partial] results are subsets of the unbounded triple set. *)
val eval_gov : Governor.t -> Pg.t -> pattern -> (int * int * binding) list

(** Output specification Ω: variables and property accesses. *)
type omega_item = Ovar of string | Oprop of string * string

(** [⟦π_Ω⟧_G] as a first-normal-form relation; attribute names are ["x"]
    and ["x.k"].  Mappings not compatible with Ω (an entry undefined) are
    dropped, per Section 4.1.2. *)
val output : Pg.t -> pattern -> omega_item list -> Relation.t

(** As {!output} under a governor: one result per output row kept. *)
val output_bounded :
  Governor.t -> Pg.t -> pattern -> omega_item list -> Relation.t Governor.outcome

val pattern_to_string : pattern -> string
