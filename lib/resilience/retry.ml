type error_class = Transient | Permanent

type policy = {
  max_attempts : int;
  base_delay : float;
  max_delay : float;
  multiplier : float;
  jitter : float;
  seed : int;
  budget : float;
}

let default =
  {
    max_attempts = 3;
    base_delay = 0.01;
    max_delay = 1.0;
    multiplier = 2.0;
    jitter = 0.2;
    seed = 0;
    budget = 5.0;
  }

let immediate = { default with base_delay = 0.0; max_delay = 0.0; budget = 0.0 }

let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let to_unit_float z =
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

(* Delay before retry [i] (0-based): capped exponential, then jittered
   into [(1-jitter)*d, d] by the seeded PRNG.  Pure in (policy, i). *)
let delay_at policy rng i =
  let d = policy.base_delay *. (policy.multiplier ** float_of_int i) in
  let d = Float.min d policy.max_delay in
  let u =
    rng := splitmix64 !rng;
    to_unit_float !rng
  in
  let jitter = Float.max 0.0 (Float.min 1.0 policy.jitter) in
  d *. (1.0 -. (jitter *. u))

let delays policy =
  let rng = ref (Int64.of_int policy.seed) in
  List.init (max 0 (policy.max_attempts - 1)) (delay_at policy rng)

let run ?(obs = Obs.none) ?(policy = default) ?(sleep = Unix.sleepf)
    ?(on_retry = fun _ -> ()) ~classify f =
  let rng = ref (Int64.of_int policy.seed) in
  let slept = ref 0.0 in
  let rec attempt i =
    Obs.incr obs "retry.attempts";
    let result =
      if i = 0 then (try Ok (f ()) with e -> Error e)
      else Obs.span obs "retry.attempt" (fun () -> try Ok (f ()) with e -> Error e)
    in
    match result with
    | Ok v -> Ok v
    | Error e -> (
        match classify e with
        | Permanent ->
            Obs.incr obs "retry.permanent";
            Error e
        | Transient ->
            let d = delay_at policy rng i in
            if i + 1 >= policy.max_attempts || !slept +. d > policy.budget then begin
              Obs.incr obs "retry.exhausted";
              Error e
            end
            else begin
              Obs.incr obs "retry.retries";
              on_retry e;
              if d > 0.0 then sleep d;
              slept := !slept +. d;
              attempt (i + 1)
            end)
  in
  attempt 0
