type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  cooldown : float;
  success_threshold : int;
}

let default_config = { failure_threshold = 5; cooldown = 30.0; success_threshold = 1 }

type t = {
  name : string;
  config : config;
  clock : unit -> float;
  obs : Obs.t;
  lock : Mutex.t;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable probe_successes : int;
  mutable opened_at : float;
}

let create ?(obs = Obs.none) ?(config = default_config) ?clock name =
  {
    name;
    config;
    clock = (match clock with Some c -> c | None -> Unix.gettimeofday);
    obs;
    lock = Mutex.create ();
    state = Closed;
    consecutive_failures = 0;
    probe_successes = 0;
    opened_at = neg_infinity;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let name t = t.name
let state t = locked t (fun () -> t.state)

let acquire t =
  locked t @@ fun () ->
  match t.state with
  | Closed -> `Proceed
  | Half_open ->
      Obs.incr t.obs "breaker.probe";
      `Probe
  | Open ->
      if t.clock () -. t.opened_at >= t.config.cooldown then begin
        t.state <- Half_open;
        t.probe_successes <- 0;
        Obs.incr t.obs "breaker.probe";
        `Probe
      end
      else begin
        Obs.incr t.obs "breaker.reject";
        `Reject
      end

let success t =
  locked t @@ fun () ->
  match t.state with
  | Closed -> t.consecutive_failures <- 0
  | Half_open ->
      t.probe_successes <- t.probe_successes + 1;
      if t.probe_successes >= t.config.success_threshold then begin
        t.state <- Closed;
        t.consecutive_failures <- 0;
        Obs.incr t.obs "breaker.close"
      end
  | Open -> ()

let trip t =
  t.state <- Open;
  t.opened_at <- t.clock ();
  t.consecutive_failures <- 0;
  Obs.incr t.obs "breaker.trip"

let failure t =
  locked t @@ fun () ->
  match t.state with
  | Closed ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= t.config.failure_threshold then trip t
  | Half_open -> trip t
  | Open -> ()

module Group = struct
  type breaker = t

  type nonrec t = {
    make : string -> breaker;
    lock : Mutex.t;
    tbl : (string, breaker) Hashtbl.t;
  }

  let create ?obs ?config ?clock () =
    {
      make = (fun cls -> create ?obs ?config ?clock cls);
      lock = Mutex.create ();
      tbl = Hashtbl.create 8;
    }

  let locked g f =
    Mutex.lock g.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock g.lock) f

  let get g cls =
    locked g (fun () ->
        match Hashtbl.find_opt g.tbl cls with
        | Some b -> b
        | None ->
            let b = g.make cls in
            Hashtbl.add g.tbl cls b;
            b)

  let all g =
    locked g (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) g.tbl [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
end
