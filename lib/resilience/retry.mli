(** Retry with capped exponential backoff and seeded jitter.

    A retry layer only makes sense for {e transient} faults — injected
    faults, allocation failures, interrupted I/O.  Deterministic errors
    (a parse error, an exhausted step budget) would fail identically on
    every attempt, so the caller classifies: {!run} retries only while
    [classify] answers {!Transient}.

    The backoff schedule is fully determined by the policy: delay [i] is
    [base_delay * multiplier^i] capped at [max_delay], then jittered by a
    seeded splitmix64 PRNG into [[(1-jitter)*d, d]].  {!delays} exposes
    the schedule so tests can pin it.  A [budget] caps the total time
    spent sleeping across one {!run}, bounding worst-case added latency
    regardless of attempt count. *)

type error_class = Transient | Permanent

type policy = {
  max_attempts : int;  (** total attempts, including the first (>= 1) *)
  base_delay : float;  (** seconds before the first retry *)
  max_delay : float;  (** per-retry cap on the backoff delay *)
  multiplier : float;  (** exponential growth factor *)
  jitter : float;  (** fraction of each delay randomized away, in [0,1] *)
  seed : int;  (** jitter PRNG seed — same seed, same schedule *)
  budget : float;  (** cap on total sleep seconds across one {!run} *)
}

(** 3 attempts, 10ms base, x2, capped at 1s, 20% jitter, 5s budget. *)
val default : policy

(** No sleeping at all (every delay 0): the test policy. *)
val immediate : policy

(** The deterministic backoff schedule: the [max_attempts - 1] jittered
    delays {!run} would sleep, budget permitting. *)
val delays : policy -> float list

(** [run ~classify f] calls [f] until it returns, retrying on exceptions
    classified [Transient] while attempts and sleep budget remain;
    [Error e] carries the last exception otherwise.  [f] is never called
    after a [Permanent] classification.

    - [sleep]: override the actual sleeping (tests pass [ignore]).
    - [on_retry]: called with the exception just before each retry
      (e.g. to [Gc.compact] after [Out_of_memory]).

    Counters on [obs]: [retry.attempts] (calls of [f]), [retry.retries]
    (sleep-and-retry transitions), [retry.exhausted] (transient but out
    of attempts/budget), [retry.permanent].  Each retried attempt runs
    inside a [retry.attempt] trace span. *)
val run :
  ?obs:Obs.t ->
  ?policy:policy ->
  ?sleep:(float -> unit) ->
  ?on_retry:(exn -> unit) ->
  classify:(exn -> error_class) ->
  (unit -> 'a) ->
  ('a, exn) result
