(** Per-query-class circuit breaker.

    A query class that keeps exhausting its budget (or keeps faulting)
    should stop being paid for at full price: after
    [failure_threshold] {e consecutive} failures the breaker {e trips}
    from [Closed] to [Open], and callers get a fast {!acquire} rejection
    instead of another expensive evaluation.  After [cooldown] seconds
    the breaker moves to [Half_open] and admits probe traffic; a probe
    success (or [success_threshold] of them) closes it again, a probe
    failure re-opens it.  The transition diagram is exactly

    {v Closed -> Open -> Half_open -> {Closed, Open} v}

    pinned by a QCheck model test in [test/test_resilience.ml].

    What counts as a failure is the caller's choice; the serve-mode
    supervisor counts budget exhaustions ([Partial]/[Aborted]) and
    evaluation faults, but not parse errors (those never reach the
    breaker).  Time is injectable ([clock]) so the state machine is
    testable without sleeping. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type config = {
  failure_threshold : int;  (** consecutive failures that trip (K) *)
  cooldown : float;  (** seconds Open before admitting a probe *)
  success_threshold : int;  (** consecutive probe successes to close *)
}

(** K = 5, 30s cooldown, 1 probe success closes. *)
val default_config : config

type t

(** [create name] builds a closed breaker for one query class.
    [clock] defaults to [Unix.gettimeofday].  Counters on [obs]:
    [breaker.trip], [breaker.reject], [breaker.probe], [breaker.close]. *)
val create : ?obs:Obs.t -> ?config:config -> ?clock:(unit -> float) -> string -> t

val name : t -> string
val state : t -> state

(** Ask to run one evaluation: [`Proceed] (closed), [`Probe] (half-open
    trial — the cooldown elapsing moves Open to Half_open here), or
    [`Reject] (open; serve degraded traffic instead).  Callers must
    report the evaluation back via {!success}/{!failure}. *)
val acquire : t -> [ `Proceed | `Probe | `Reject ]

val success : t -> unit
val failure : t -> unit

(** A registry of breakers, one per query class, sharing config/sink. *)
module Group : sig
  type breaker := t
  type t

  val create : ?obs:Obs.t -> ?config:config -> ?clock:(unit -> float) -> unit -> t

  (** Get-or-create the class's breaker; thread-safe. *)
  val get : t -> string -> breaker

  (** All breakers created so far, sorted by class name. *)
  val all : t -> (string * breaker) list
end
