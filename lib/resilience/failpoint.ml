exception Injected of string

type policy =
  | Fail_once
  | Fail_every of int
  | Fail_prob of { p : float; seed : int }
  | Delay_ms of float

type site = {
  policy : policy;
  hits : int Atomic.t;
  fired : int Atomic.t;
  rng : int64 Atomic.t; (* splitmix64 state, for Fail_prob *)
}

(* The fast path reads one atomic flag: [check] is a single (well
   predicted) branch whenever nothing is armed anywhere in the process.
   When sites *are* armed, concurrent serve-mode clients cross them from
   many domains at once, so the armed lookup must not serialize the
   whole process on one mutex: the site table is published as an
   immutable association-list snapshot in an atomic, rebuilt under
   [lock] on every (rare) arm/disarm, and [check] reads the snapshot
   lock-free.  Per-site counters are atomics, so firing decisions stay
   exact under concurrency. *)
let enabled = Atomic.make false
let lock = Mutex.create ()
let sites : (string, site) Hashtbl.t = Hashtbl.create 8
let snapshot : (string * site) list Atomic.t = Atomic.make []

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Call only under [lock]: republish the table and the enabled flag.
   The flag is set after the snapshot, so a racing [check] that sees
   [enabled] also sees a snapshot at least as recent. *)
let publish () =
  let snap = Hashtbl.fold (fun name s acc -> (name, s) :: acc) sites [] in
  Atomic.set snapshot snap;
  Atomic.set enabled (snap <> [])

(* splitmix64: tiny, seedable, and good enough for fault schedules. *)
let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform draw in [0,1) from the top 53 bits of a splitmix64 output. *)
let to_unit_float z =
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0

let site_of policy =
  {
    policy;
    hits = Atomic.make 0;
    fired = Atomic.make 0;
    rng =
      Atomic.make
        (match policy with
        | Fail_prob { seed; _ } -> Int64.of_int seed
        | Fail_once | Fail_every _ | Delay_ms _ -> 0L);
  }

let arm name policy =
  locked (fun () ->
      Hashtbl.replace sites name (site_of policy);
      publish ())

let disarm name =
  locked (fun () ->
      Hashtbl.remove sites name;
      publish ())

let clear () =
  locked (fun () ->
      Hashtbl.reset sites;
      publish ())

let hits name =
  locked (fun () ->
      match Hashtbl.find_opt sites name with
      | Some s -> Atomic.get s.hits
      | None -> 0)

let fired name =
  locked (fun () ->
      match Hashtbl.find_opt sites name with
      | Some s -> Atomic.get s.fired
      | None -> 0)

let armed () =
  locked (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s.policy) :: acc) sites []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let fires s =
  let n = Atomic.fetch_and_add s.hits 1 + 1 in
  match s.policy with
  | Fail_once -> n = 1
  | Fail_every k -> n mod max 1 k = 0
  | Fail_prob { p; _ } ->
      (* Advance the per-site PRNG with a CAS so the draw sequence is the
         seed's, independent of which domain asks. *)
      let rec draw () =
        let old = Atomic.get s.rng in
        let next = splitmix64 old in
        if Atomic.compare_and_set s.rng old next then to_unit_float next
        else draw ()
      in
      draw () < p
  | Delay_ms _ -> true

let check_armed name =
  match List.assoc_opt name (Atomic.get snapshot) with
  | None -> ()
  | Some s ->
      if fires s then begin
        Atomic.incr s.fired;
        match s.policy with
        | Delay_ms ms -> if ms > 0.0 then Unix.sleepf (ms /. 1000.0)
        | Fail_once | Fail_every _ | Fail_prob _ -> raise (Injected name)
      end

let check name = if Atomic.get enabled then check_armed name

let policy_to_string = function
  | Fail_once -> "once"
  | Fail_every n -> Printf.sprintf "every:%d" n
  | Fail_prob { p; seed } -> Printf.sprintf "prob:%g:%d" p seed
  | Delay_ms ms -> Printf.sprintf "delay:%g" ms

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "once" ] -> Ok (Some Fail_once)
  | [ "off" ] -> Ok None
  | [ "every"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Ok (Some (Fail_every n))
      | Some _ | None -> Error (Printf.sprintf "every: bad count %S" n))
  | [ "prob"; p ] | [ "prob"; p; _ ] when float_of_string_opt p = None ->
      Error (Printf.sprintf "prob: bad probability %S" p)
  | [ "prob"; p ] ->
      Ok (Some (Fail_prob { p = Option.get (float_of_string_opt p); seed = 0 }))
  | [ "prob"; p; seed ] -> (
      match (float_of_string_opt p, int_of_string_opt seed) with
      | Some p, Some seed -> Ok (Some (Fail_prob { p; seed }))
      | _, None -> Error (Printf.sprintf "prob: bad seed %S" seed)
      | None, _ -> assert false)
  | [ "delay"; ms ] -> (
      match float_of_string_opt ms with
      | Some ms when ms >= 0.0 -> Ok (Some (Delay_ms ms))
      | Some _ | None -> Error (Printf.sprintf "delay: bad milliseconds %S" ms))
  | _ -> Error (Printf.sprintf "unknown policy %S" s)

let arm_spec spec =
  let entries =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec go = function
    | [] -> Ok ()
    | entry :: rest -> (
        match String.index_opt entry '=' with
        | None -> Error (Printf.sprintf "expected site=policy, got %S" entry)
        | Some i -> (
            let name = String.sub entry 0 i in
            let pol = String.sub entry (i + 1) (String.length entry - i - 1) in
            if name = "" then Error (Printf.sprintf "empty site name in %S" entry)
            else
              match policy_of_string pol with
              | Error msg -> Error (Printf.sprintf "%s: %s" name msg)
              | Ok None ->
                  disarm name;
                  go rest
              | Ok (Some p) ->
                  arm name p;
                  go rest))
  in
  go entries

(* Environment arming happens once, when the library is linked in: a
   malformed schedule is reported but never fatal — fault injection must
   not be able to take the process down by itself. *)
let () =
  match Sys.getenv_opt "GQ_FAILPOINTS" with
  | None | Some "" -> ()
  | Some spec -> (
      match arm_spec spec with
      | Ok () -> ()
      | Error msg -> Printf.eprintf "GQ_FAILPOINTS: ignoring bad entry: %s\n" msg)
