(** Failpoint registry: named fault-injection sites.

    Hot paths declare injection sites — [Failpoint.check "rpq.bfs.step"]
    — that compile down to a single branch on a global flag when nothing
    is armed, so production code pays nothing for being testable.  A test
    (or the [GQ_FAILPOINTS] environment variable) arms a site with a
    deterministic policy; armed checks then raise {!Injected} or inject a
    delay according to that policy, reproducibly: the probabilistic
    policy runs its own seeded PRNG, so the same seed yields the same
    fault schedule on every run.

    Sites in this repository (see the README table):
    - [graph.load] — {!Graph_io.parse_file}, before reading the file
    - [rpq.product.build] — {!Product.make}, before construction
    - [rpq.bfs.step] — {!Rpq_eval}, once per source BFS
    - [crpq.join.atom] — {!Crpq}, once per atom materialization
    - [pool.fork] — {!Pool.fork_join}, before spawning domains
    - [serve.eval] — [gqd --serve], once per supervised query attempt

    The registry is process-global and thread-safe; arming is expected at
    startup or from tests, not from hot loops. *)

(** Raised by {!check} at an armed site whose policy fires.  The payload
    is the site name.  Classified as transient by
    [Gq_error.classify_exn], so retry layers treat injected faults like
    real transient ones. *)
exception Injected of string

type policy =
  | Fail_once  (** the first check fails, all later ones pass *)
  | Fail_every of int  (** every [n]-th check fails (n >= 1) *)
  | Fail_prob of { p : float; seed : int }
      (** each check fails with probability [p], drawn from a splitmix64
          PRNG seeded with [seed] — deterministic per site arming *)
  | Delay_ms of float  (** sleep that many milliseconds; never fails *)

(** The injection site: a no-op (one branch) unless [name] is armed.
    @raise Injected when the armed policy fires. *)
val check : string -> unit

(** Arm [name] with [policy], resetting its hit/fired counters. *)
val arm : string -> policy -> unit

val disarm : string -> unit

(** Disarm every site, including those armed from [GQ_FAILPOINTS]. *)
val clear : unit -> unit

(** Parse and arm a comma-separated schedule, the [GQ_FAILPOINTS]
    syntax: [site=once], [site=every:N], [site=prob:P] or
    [site=prob:P:SEED], [site=delay:MS], [site=off].
    E.g. ["serve.eval=every:2,graph.load=delay:1"]. *)
val arm_spec : string -> (unit, string) result

val policy_to_string : policy -> string

(** Checks seen at an armed site since arming (disarmed sites: 0). *)
val hits : string -> int

(** Faults (or delays) injected at a site since arming. *)
val fired : string -> int

(** Armed sites with their policies, sorted by name. *)
val armed : unit -> (string * policy) list
