(** Cost-based CRPQ planner.

    Uses {!Stats} to (1) estimate the cardinality of each atom's RPQ by
    structural recursion over the regex, (2) pick a per-atom evaluation
    direction — forward BFS from sources or backward from targets over
    the reversed graph — and (3) greedily order atoms smallest estimated
    intermediate first, dividing estimates by already-bound endpoints
    and penalizing cross products.  Estimates are heuristics: they only
    steer ordering, never correctness (planned and default evaluation
    must agree, which [test_plan] and [make check-plan] pin). *)

type endpoint = Var of string | Const of string

type atom = { re : Sym.t Regex.t; x : endpoint; y : endpoint }

type direction = Forward | Backward

type estimate = {
  card : float;  (** estimated result pairs *)
  sources : float;  (** estimated distinct sources *)
  targets : float;  (** estimated distinct targets *)
}

type atom_plan = {
  index : int;  (** position of the atom in the original query *)
  direction : direction;
  est : estimate;
  cost : float;  (** greedy score at selection time *)
}

type t = { order : atom_plan list  (** chosen execution order *) }

(** [GQ_PLAN] is not ["off"]. *)
val enabled_from_env : unit -> bool

(** Cardinality/source/target estimate for one regex on the graph
    described by the statistics. *)
val estimate : Stats.t -> Sym.t Regex.t -> estimate

(** Direction for a standalone regex: [Backward] only when the estimated
    target side is clearly smaller than the source side. *)
val direction_of : Stats.t -> Sym.t Regex.t -> direction

(** [plan st atoms] — greedy selectivity order over all atoms.
    [order] is always a permutation of [0 .. List.length atoms - 1]. *)
val plan : Stats.t -> atom list -> t

(** Variables in first-appearance order along the planned atom order
    (the WCOJ variable elimination order). *)
val variable_order : atom list -> t -> string list

val direction_to_string : direction -> string
