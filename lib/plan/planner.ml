type endpoint = Var of string | Const of string
type atom = { re : Sym.t Regex.t; x : endpoint; y : endpoint }
type direction = Forward | Backward

type estimate = { card : float; sources : float; targets : float }

type atom_plan = {
  index : int;
  direction : direction;
  est : estimate;
  cost : float;
}

type t = { order : atom_plan list }

let enabled_from_env () =
  match Sys.getenv_opt "GQ_PLAN" with Some "off" -> false | _ -> true

let sym_of = function
  | Sym.Lbl a -> Stats.Lbl a
  | Sym.Any -> Stats.Any
  | Sym.Not s -> Stats.Not s

(* Cardinality estimation by structural recursion.  All the usual
   textbook caveats apply (independence assumptions, closure heuristics);
   the planner only needs the estimates to rank rare labels below dense
   ones, never to be exact. *)
let estimate st re =
  let n = float_of_int (max 1 st.Stats.nb_nodes) in
  let cap2 = n *. n in
  let clamp e =
    {
      card = Float.min cap2 (Float.max 0. e.card);
      sources = Float.min n (Float.max 0. e.sources);
      targets = Float.min n (Float.max 0. e.targets);
    }
  in
  let rec go = function
    | Regex.Eps -> { card = n; sources = n; targets = n }
    | Regex.Atom s ->
        {
          card = float_of_int (Stats.sym_edges st (sym_of s));
          sources = float_of_int (Stats.sym_sources st (sym_of s));
          targets = float_of_int (Stats.sym_targets st (sym_of s));
        }
    | Regex.Seq (a, b) ->
        let ea = go a and eb = go b in
        (* join on the middle node: |A.B| ~ |A|*|B| / max(distinct keys) *)
        let keys = Float.max 1. (Float.max ea.targets eb.sources) in
        let card = ea.card *. eb.card /. keys in
        clamp
          {
            card;
            sources = Float.min ea.sources card;
            targets = Float.min eb.targets card;
          }
    | Regex.Alt (a, b) ->
        let ea = go a and eb = go b in
        clamp
          {
            card = ea.card +. eb.card;
            sources = ea.sources +. eb.sources;
            targets = ea.targets +. eb.targets;
          }
    | Regex.Star r ->
        let er = go r in
        (* closure heuristic: every node reaches itself; each underlying
           pair fans out by the average out-fanout, geometric growth
           capped well below the n^2 ceiling *)
        let fanout = er.card /. n in
        let card = n +. (er.card *. (1. +. Float.min 8. fanout)) in
        clamp { card; sources = n; targets = n }
  in
  clamp (go re)

let direction_of st re =
  let e = estimate st re in
  if e.targets < 0.75 *. e.sources then Backward else Forward

(* Greedy ordering: repeatedly pick the cheapest atom given which
   endpoints earlier atoms (and constants) already bound.  Bound
   endpoints divide the estimate (we evaluate per binding); an atom
   sharing no variable with the bound set while bindings exist is a
   cross product and is pushed back hard. *)
let cross_product_penalty = 1e3

let plan st atoms =
  let atoms = Array.of_list atoms in
  let k = Array.length atoms in
  let ests = Array.map (fun a -> (estimate st a.re, direction_of st a.re)) atoms in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_bound = function
    | Const _ -> true
    | Var v -> Hashtbl.mem bound v
  in
  let bind = function
    | Const _ -> ()
    | Var v -> Hashtbl.replace bound v ()
  in
  let taken = Array.make k false in
  let any_vars_bound () = Hashtbl.length bound > 0 in
  let score i =
    let a = atoms.(i) in
    let e, _ = ests.(i) in
    let bx = is_bound a.x and by = is_bound a.y in
    let c = e.card in
    let c = if bx then c /. Float.max 1. e.sources else c in
    let c = if by then c /. Float.max 1. e.targets else c in
    if (not bx) && (not by) && any_vars_bound () then
      c *. cross_product_penalty
    else c
  in
  let order = ref [] in
  for _step = 1 to k do
    let best = ref (-1) and best_cost = ref infinity in
    for i = 0 to k - 1 do
      if not taken.(i) then begin
        let c = score i in
        if c < !best_cost -. 1e-9 then begin
          best := i;
          best_cost := c
        end
      end
    done;
    let i = !best in
    taken.(i) <- true;
    let e, dir = ests.(i) in
    (* Direction refinement: when exactly one endpoint is bound, start
       the BFS from the bound side regardless of the standalone guess. *)
    let bx = is_bound atoms.(i).x and by = is_bound atoms.(i).y in
    let dir =
      if bx && not by then Forward else if by && not bx then Backward else dir
    in
    bind atoms.(i).x;
    bind atoms.(i).y;
    order := { index = i; direction = dir; est = e; cost = !best_cost } :: !order
  done;
  { order = List.rev !order }

let variable_order atoms plan =
  let atoms = Array.of_list atoms in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let out = ref [] in
  let note = function
    | Const _ -> ()
    | Var v ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          out := v :: !out
        end
  in
  List.iter
    (fun ap ->
      let a = atoms.(ap.index) in
      note a.x;
      note a.y)
    plan.order;
  List.rev !out

let direction_to_string = function Forward -> "forward" | Backward -> "backward"
