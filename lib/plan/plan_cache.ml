type compiled = {
  source : string;
  flags : string;
  ast : Sym.t Regex.t;
  nfa : Sym.t Nfa.t;
  dfa : Dfa.t Lazy.t;
  symbols : string list;
}

type t = { store : (string * string, compiled) Lru.t; enabled : bool }

let enabled_from_env () =
  match Sys.getenv_opt "GQ_PLAN_CACHE" with Some "off" -> false | _ -> true

let create ?(capacity = 128) ?enabled () =
  let enabled =
    match enabled with Some b -> b | None -> enabled_from_env ()
  in
  { store = Lru.create ~capacity (); enabled }

let enabled t = t.enabled
let shared = create ()

let build ~flags ~source ast =
  let nfa = Nfa.of_regex ast in
  let dfa = lazy (Dfa.minimize (Dfa.of_nfa nfa)) in
  let symbols =
    Regex.atoms ast
    |> List.concat_map Sym.mentioned
    |> List.sort_uniq String.compare
  in
  { source; flags; ast; nfa; dfa; symbols }

(* Query-only artifacts never go stale, so every entry lives in
   generation 0; the generation machinery is exercised by the
   graph-dependent caches in Rpq_compile. *)
let compile ?(obs = Obs.none) t ~flags ~parse text =
  let key = (flags, text) in
  (* A disabled cache never stores, so the find never succeeds — but it
     still counts, keeping the hit/miss counters an honest request log. *)
  match Lru.find t.store key with
  | Some c ->
      Obs.incr obs "plan.cache.hit";
      Ok c
  | None ->
      Obs.incr obs "plan.cache.miss";
      Result.map
        (fun ast ->
          let c = build ~flags ~source:text ast in
          if t.enabled then Lru.add t.store ~gen:0 key c;
          c)
        (parse text)

let compile_ast ?obs t re =
  let text = Regex.to_string Sym.to_string re in
  match compile ?obs t ~flags:"ast" ~parse:(fun _ -> Ok re) text with
  | Ok c -> c
  | Error _ -> assert false (* parse is total here *)

let was_cached t ~flags text =
  t.enabled && Option.is_some (Lru.peek t.store (flags, text))

let length t = Lru.length t.store
let hits t = Lru.hits t.store
let misses t = Lru.misses t.store
let evictions t = Lru.evictions t.store
let clear t = Lru.clear t.store
