(** A small LRU cache with generation tags.

    Backing store for the compilation and product caches: bounded
    capacity, least-recently-used eviction, and a per-entry generation
    tag so a whole generation can be invalidated in one call (the serve
    session bumps the generation on every [load]).  All operations are
    guarded by a mutex; recency is a monotone tick, eviction scans the
    (small) table for the minimum — O(capacity), which is fine at the
    capacities used here. *)

type ('k, 'v) t

(** [create ~capacity ()] — capacity is clamped to at least 1. *)
val create : capacity:int -> unit -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

(** [find t k] returns the cached value and bumps its recency.
    Counts a hit or a miss. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [peek t k] is {!find} without touching recency or counters. *)
val peek : ('k, 'v) t -> 'k -> 'v option

(** [add t ~gen k v] inserts (replacing any previous binding of [k]),
    evicting the least-recently-used entry when at capacity. *)
val add : ('k, 'v) t -> gen:int -> 'k -> 'v -> unit

(** [drop_generations_except t gen] removes every entry whose generation
    differs from [gen]; returns how many were dropped (also accumulated
    in {!invalidated}). *)
val drop_generations_except : ('k, 'v) t -> int -> int

(** [sweep t ~f] visits every entry and applies [f]'s verdict: keep it,
    drop it (counted into {!invalidated}), or move it to a new key and
    generation, preserving the value and its recency — how delta
    application migrates still-valid product-cache entries to the new
    graph id instead of rebuilding them.  Returns
    [(dropped, rekeyed)]. *)
val sweep :
  ('k, 'v) t ->
  f:('k -> 'v -> [ `Keep | `Drop | `Rekey of 'k * int ]) ->
  int * int

val clear : ('k, 'v) t -> unit

(** {1 Counters} — monotone over the cache's lifetime. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int
val invalidated : ('k, 'v) t -> int
