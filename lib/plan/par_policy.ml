type kernel = Scalar | Bitset

type reason = Below_threshold | Hardware_serial | Parallel | Pinned

let reason_slug = function
  | Below_threshold -> "below_threshold"
  | Hardware_serial -> "hardware_serial"
  | Parallel -> "parallel"
  | Pinned -> "pinned"

type decision = {
  width : int;
  units : int;
  work : int;
  threshold : int;
  hardware : int;
  reason : reason;
}

(* Calibrated against the bit-parallel kernel: one work unit is one
   relaxation (a scalar product-edge visit, or one word-sized sweep of a
   span entry — both a handful of ns), and a domain spawn plus its GC
   synchronization costs on the order of 100us.  500k units is roughly a
   millisecond of serial work, the point where forking starts to pay; the
   old 2M default was tuned to the slower scalar kernel and left mid-size
   bitset workloads serial on real hardware. *)
let default_threshold = 500_000

let threshold () =
  match Sys.getenv_opt "GQ_PAR_THRESHOLD" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> default_threshold)
  | None -> default_threshold

let hw = lazy (max 1 (Domain.recommended_domain_count ()))
let hardware () = Lazy.force hw

(* The most recent decision taken anywhere in the process, for the serve
   [stats] reply: one atomic write per decision, read without locking. *)
let last_decision : decision option Atomic.t = Atomic.make None
let last () = Atomic.get last_decision
let note d = Atomic.set last_decision (Some d)

let pinned ~width =
  let d =
    {
      width = max 1 width;
      units = 0;
      work = 0;
      threshold = threshold ();
      hardware = hardware ();
      reason = Pinned;
    }
  in
  note d;
  d

let decide ?(obs = Obs.none) ?(kernel = Scalar) ~max_width ~sources
    ~product_edges () =
  let threshold = threshold () in
  let hardware = hardware () in
  let sources = max 0 sources and product_edges = max 1 product_edges in
  (* Parallel grain: the scalar kernel forks over sources, the bitset
     kernel over 63-source blocks — work is units x product edges in
     both, in comparable relaxation units. *)
  let units =
    match kernel with Scalar -> sources | Bitset -> (sources + 62) / 63
  in
  (* Saturating multiply: sizes are far below sqrt(max_int), but keep it
     robust anyway. *)
  let work =
    if units > 0 && product_edges > max_int / units then max_int
    else units * product_edges
  in
  let width, reason =
    if work < threshold then (1, Below_threshold)
    else
      let w = max 1 (min (min max_width hardware) (max 1 units)) in
      (w, if w > 1 then Parallel else Hardware_serial)
  in
  let d = { width; units; work; threshold; hardware; reason } in
  Obs.incr obs ("rpq.par_decision." ^ reason_slug reason);
  note d;
  d
