type kernel = Scalar | Bitset

type reason =
  | Below_threshold
  | Hardware_serial
  | Few_units
  | Calibrated_serial
  | Parallel
  | Pinned

let reason_slug = function
  | Below_threshold -> "below_threshold"
  | Hardware_serial -> "hardware_serial"
  | Few_units -> "few_units"
  | Calibrated_serial -> "calibrated_serial"
  | Parallel -> "parallel"
  | Pinned -> "pinned"

type decision = {
  width : int;
  units : int;
  work : int;
  threshold : int;
  hardware : int;
  reason : reason;
}

(* Calibrated against the bit-parallel kernel: one work unit is one
   relaxation (a scalar product-edge visit, or one word-sized sweep of a
   span entry — both a handful of ns), and a domain spawn plus its GC
   synchronization costs on the order of 100us.  500k units is roughly a
   millisecond of serial work, the point where forking starts to pay; the
   old 2M default was tuned to the slower scalar kernel and left mid-size
   bitset workloads serial on real hardware. *)
let default_threshold = 500_000

let threshold () =
  match Sys.getenv_opt "GQ_PAR_THRESHOLD" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> default_threshold)
  | None -> default_threshold

(* Forking below this many parallel grains per worker never amortizes
   the spawn + stop-the-world cost: a width-2 run over three bitset
   blocks leaves one worker idle half the time while both pay the GC
   synchronization.  The committed E22 rows where width 2 lost to serial
   all sit under this grain count. *)
let default_min_units_per_worker = 4

let min_units_per_worker () =
  match Sys.getenv_opt "GQ_PAR_MIN_UNITS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> max 1 n
      | None -> default_min_units_per_worker)
  | None -> default_min_units_per_worker

let hw = lazy (max 1 (Domain.recommended_domain_count ()))
let hardware () = Lazy.force hw

let now () = Unix.gettimeofday ()

(* --- measured calibration ------------------------------------------------ *)

(* Engines report completed runs ({!record}); [decide] only keeps a
   width > 1 verdict when a measured run at that width actually beat the
   measured serial rate.  Rates are seconds per estimated work unit,
   EMA-smoothed, keyed by (kernel, width) — a process-wide memory, so a
   long-lived serve process (or a bench that runs serial and parallel
   phases) stops re-picking a width it has watched lose.  Workload shape
   drifts, so this is a heuristic: the 5% slack and the work floor keep
   one noisy tiny run from flipping the decision. *)

let calib_lock = Mutex.create ()
let calib : (kernel * int, float) Hashtbl.t = Hashtbl.create 8

(* Runs too small to time meaningfully would poison the EMA. *)
let calib_min_work = 50_000
let calib_min_elapsed = 1e-4

let calibration_enabled () =
  match Sys.getenv_opt "GQ_PAR_CALIBRATE" with
  | Some ("off" | "0" | "false" | "no") -> false
  | Some _ | None -> true

let units_of ~kernel ~sources =
  match kernel with Scalar -> sources | Bitset -> (sources + 62) / 63

let record ?(kernel = Scalar) ~width ~sources ~product_edges ~elapsed () =
  if calibration_enabled () then begin
    let units = units_of ~kernel ~sources in
    let work = units * max 1 product_edges in
    if work >= calib_min_work && elapsed >= calib_min_elapsed then begin
      let r = elapsed /. float_of_int work in
      Mutex.lock calib_lock;
      let key = (kernel, max 1 width) in
      let r' =
        match Hashtbl.find_opt calib key with
        | Some prev -> (0.7 *. prev) +. (0.3 *. r)
        | None -> r
      in
      Hashtbl.replace calib key r';
      Mutex.unlock calib_lock
    end
  end

let calibrated_rate ~kernel ~width =
  Mutex.lock calib_lock;
  let r = Hashtbl.find_opt calib (kernel, width) in
  Mutex.unlock calib_lock;
  r

let reset_calibration () =
  Mutex.lock calib_lock;
  Hashtbl.reset calib;
  Mutex.unlock calib_lock

(* The most recent decision taken anywhere in the process, for the serve
   [stats] reply: one atomic write per decision, read without locking. *)
let last_decision : decision option Atomic.t = Atomic.make None
let last () = Atomic.get last_decision
let note d = Atomic.set last_decision (Some d)

let pinned ~width =
  let d =
    {
      width = max 1 width;
      units = 0;
      work = 0;
      threshold = threshold ();
      hardware = hardware ();
      reason = Pinned;
    }
  in
  note d;
  d

let decide ?(obs = Obs.none) ?(kernel = Scalar) ?hardware:hw ~max_width ~sources
    ~product_edges () =
  let threshold = threshold () in
  let hardware = match hw with Some h -> max 1 h | None -> hardware () in
  let sources = max 0 sources and product_edges = max 1 product_edges in
  (* Parallel grain: the scalar kernel forks over sources, the bitset
     kernel over 63-source blocks — work is units x product edges in
     both, in comparable relaxation units. *)
  let units = units_of ~kernel ~sources in
  (* Saturating multiply: sizes are far below sqrt(max_int), but keep it
     robust anyway. *)
  let work =
    if units > 0 && product_edges > max_int / units then max_int
    else units * product_edges
  in
  let width, reason =
    if work < threshold then (1, Below_threshold)
    else begin
      let cap = min max_width hardware in
      if cap <= 1 then (1, Hardware_serial)
      else begin
        let w = min cap (units / min_units_per_worker ()) in
        if w <= 1 then (1, Few_units)
        else
          match
            (calibrated_rate ~kernel ~width:1, calibrated_rate ~kernel ~width:w)
          with
          | Some serial, Some par when par >= serial *. 0.95 ->
              (1, Calibrated_serial)
          | _ -> (w, Parallel)
      end
    end
  in
  let d = { width; units; work; threshold; hardware; reason } in
  Obs.incr obs ("rpq.par_decision." ^ reason_slug reason);
  note d;
  d
