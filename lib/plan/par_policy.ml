type decision = { width : int; work : int; threshold : int; hardware : int }

let default_threshold = 2_000_000

let threshold () =
  match Sys.getenv_opt "GQ_PAR_THRESHOLD" with
  | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> default_threshold)
  | None -> default_threshold

let hw = lazy (max 1 (Domain.recommended_domain_count ()))
let hardware () = Lazy.force hw

let decide ~max_width ~sources ~product_edges =
  let threshold = threshold () in
  let hardware = hardware () in
  let sources = max 0 sources and product_edges = max 1 product_edges in
  (* Saturating multiply: sizes are far below sqrt(max_int), but keep it
     robust anyway. *)
  let work =
    if sources > 0 && product_edges > max_int / sources then max_int
    else sources * product_edges
  in
  let width =
    if work < threshold then 1
    else max 1 (min (min max_width hardware) (max 1 sources))
  in
  { width; work; threshold; hardware }
