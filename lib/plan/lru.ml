type ('k, 'v) entry = { value : 'v; gen : int; mutable last_used : int }

(* The table, the logical clock and every entry's recency field are
   guarded by [lock]; the statistics counters are atomics so concurrent
   serve-mode sessions can read a live [hits]/[misses] snapshot without
   taking (or contending on) the table lock. *)
type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable tick : int;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  invalidated : int Atomic.t;
  lock : Mutex.t;
}

let create ~capacity () =
  let capacity = max 1 capacity in
  {
    capacity;
    table = Hashtbl.create capacity;
    tick = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    invalidated = Atomic.make 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.table)

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_used <- t.tick;
          Atomic.incr t.hits;
          Some e.value
      | None ->
          Atomic.incr t.misses;
          None)

let peek t k =
  locked t (fun () ->
      Option.map (fun e -> e.value) (Hashtbl.find_opt t.table k))

let evict_lru t =
  (* Linear scan for the oldest entry; capacity is small by design. *)
  let victim = ref None and oldest = ref max_int in
  Hashtbl.iter
    (fun k e ->
      if e.last_used < !oldest then begin
        oldest := e.last_used;
        victim := Some k
      end)
    t.table;
  match !victim with
  | Some k ->
      Hashtbl.remove t.table k;
      Atomic.incr t.evictions
  | None -> ()

let add t ~gen k v =
  locked t (fun () ->
      if Hashtbl.mem t.table k then Hashtbl.remove t.table k
      else if Hashtbl.length t.table >= t.capacity then evict_lru t;
      t.tick <- t.tick + 1;
      Hashtbl.add t.table k { value = v; gen; last_used = t.tick })

let drop_generations_except t gen =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k e acc -> if e.gen <> gen then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) doomed;
      let n = List.length doomed in
      ignore (Atomic.fetch_and_add t.invalidated n);
      n)

let sweep t ~f =
  locked t (fun () ->
      (* Collect verdicts first: the callback must not observe a table
         mid-mutation, and rekeys must not collide with entries not yet
         visited. *)
      let actions =
        Hashtbl.fold (fun k e acc -> (k, e, f k e.value) :: acc) t.table []
      in
      let dropped = ref 0 and rekeyed = ref 0 in
      List.iter
        (fun (k, (e : (_, _) entry), verdict) ->
          match verdict with
          | `Keep -> ()
          | `Drop ->
              Hashtbl.remove t.table k;
              incr dropped
          | `Rekey (k', gen) ->
              Hashtbl.remove t.table k;
              Hashtbl.replace t.table k'
                { value = e.value; gen; last_used = e.last_used };
              incr rekeyed)
        actions;
      ignore (Atomic.fetch_and_add t.invalidated !dropped);
      (!dropped, !rekeyed))

let clear t = locked t (fun () -> Hashtbl.reset t.table)
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
let evictions t = Atomic.get t.evictions
let invalidated t = Atomic.get t.invalidated
