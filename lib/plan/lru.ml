type ('k, 'v) entry = { value : 'v; gen : int; mutable last_used : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidated : int;
  lock : Mutex.t;
}

let create ~capacity () =
  let capacity = max 1 capacity in
  {
    capacity;
    table = Hashtbl.create capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidated = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let capacity t = t.capacity
let length t = locked t (fun () -> Hashtbl.length t.table)

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.table k with
      | Some e ->
          t.tick <- t.tick + 1;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let peek t k =
  locked t (fun () ->
      Option.map (fun e -> e.value) (Hashtbl.find_opt t.table k))

let evict_lru t =
  (* Linear scan for the oldest entry; capacity is small by design. *)
  let victim = ref None and oldest = ref max_int in
  Hashtbl.iter
    (fun k e ->
      if e.last_used < !oldest then begin
        oldest := e.last_used;
        victim := Some k
      end)
    t.table;
  match !victim with
  | Some k ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t ~gen k v =
  locked t (fun () ->
      if Hashtbl.mem t.table k then Hashtbl.remove t.table k
      else if Hashtbl.length t.table >= t.capacity then evict_lru t;
      t.tick <- t.tick + 1;
      Hashtbl.add t.table k { value = v; gen; last_used = t.tick })

let drop_generations_except t gen =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun k e acc -> if e.gen <> gen then k :: acc else acc)
          t.table []
      in
      List.iter (Hashtbl.remove t.table) doomed;
      let n = List.length doomed in
      t.invalidated <- t.invalidated + n;
      n)

let clear t = locked t (fun () -> Hashtbl.reset t.table)
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidated t = t.invalidated
