(** Adaptive parallelism policy.

    Forking domains pays a fixed cost (spawn, stop-the-world GC
    synchronization) that only amortizes when there is real work and
    real hardware.  The policy estimates work as [units x product edges]
    — where a unit is one parallel grain: a source for the scalar
    kernel, a 63-source block for the bitset kernel — and decides a fork
    width: serial below the threshold ([GQ_PAR_THRESHOLD], default
    500,000 relaxations, recalibrated against the bit-parallel kernel),
    and never more domains than the machine has hardware threads.

    Every decision carries a {!reason}, is counted under
    [rpq.par_decision.<reason>] when a sink is supplied, and is recorded
    as the process-wide {!last} decision so serve-mode [stats] replies
    can explain the width in force.

    An explicit [?pool] argument at an engine entry point bypasses the
    policy: callers who pin a width (tests pinning determinism across
    widths, the CLI's [--domains]) keep exactly that width — engines
    record it with {!pinned} so telemetry still explains the choice. *)

type kernel = Scalar | Bitset

(** Why the width came out the way it did. *)
type reason =
  | Below_threshold  (** estimated work under [GQ_PAR_THRESHOLD] *)
  | Hardware_serial  (** enough work, but 1 hardware thread / pool slot *)
  | Few_units
      (** enough work and hardware, but too few parallel grains to give
          each worker [GQ_PAR_MIN_UNITS] of them *)
  | Calibrated_serial
      (** measured runs ({!record}) show this width losing to serial *)
  | Parallel  (** width > 1 *)
  | Pinned  (** explicit pool: the caller chose the width *)

val reason_slug : reason -> string

type decision = {
  width : int;  (** domains to use; 1 = serial *)
  units : int;  (** parallel grains: sources (scalar) or blocks (bitset) *)
  work : int;  (** estimated work (units x product edges) *)
  threshold : int;  (** work threshold in force *)
  hardware : int;  (** hardware threads available *)
  reason : reason;
}

(** [GQ_PAR_THRESHOLD], defaulting to 500,000; clamped to >= 1. *)
val threshold : unit -> int

(** Cached [Domain.recommended_domain_count ()]. *)
val hardware : unit -> int

(** [decide ~max_width ~sources ~product_edges ()] — width 1 when the
    estimated work is under the threshold, when only one hardware thread
    or pool slot is available, when there are fewer than
    [GQ_PAR_MIN_UNITS] parallel grains per prospective worker, or when
    calibration ({!record}) measured the candidate width losing to
    serial; otherwise [min max_width hardware (units / min_units)].
    Bumps [rpq.par_decision.<reason>] on [obs] and records the decision
    as {!last}.  [?hardware] overrides the detected thread count
    (tests / bench demos on fixed hardware). *)
val decide :
  ?obs:Obs.t ->
  ?kernel:kernel ->
  ?hardware:int ->
  max_width:int ->
  sources:int ->
  product_edges:int ->
  unit ->
  decision

(** Record an explicitly pinned width (an engine called with [?pool]) as
    the {!last} decision. *)
val pinned : width:int -> decision

(** The most recent decision taken in this process, if any. *)
val last : unit -> decision option

(** Record [d] as the {!last} decision. *)
val note : decision -> unit

(** {1 Measured calibration} *)

(** Wall clock for timing engine runs (engines have no other monotonic
    source below the CLI layer). *)
val now : unit -> float

(** [GQ_PAR_MIN_UNITS] (default 4): parallel grains each worker must
    receive before forking is worth it. *)
val min_units_per_worker : unit -> int

(** [record ~width ~sources ~product_edges ~elapsed] — report a
    completed run; feeds the per-(kernel, width) seconds-per-work-unit
    EMA that {!decide} consults before keeping a parallel width.  Runs
    under the work/time floor are ignored; [GQ_PAR_CALIBRATE=off]
    disables recording. *)
val record :
  ?kernel:kernel ->
  width:int ->
  sources:int ->
  product_edges:int ->
  elapsed:float ->
  unit ->
  unit

(** Measured EMA rate for (kernel, width), if any run was recorded. *)
val calibrated_rate : kernel:kernel -> width:int -> float option

(** Forget all recorded rates (bench phase isolation, tests). *)
val reset_calibration : unit -> unit
