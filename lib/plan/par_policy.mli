(** Adaptive parallelism policy.

    Forking domains pays a fixed cost (spawn, stop-the-world GC
    synchronization) that only amortizes when there is real work and
    real hardware.  The policy estimates work as [units x product edges]
    — where a unit is one parallel grain: a source for the scalar
    kernel, a 63-source block for the bitset kernel — and decides a fork
    width: serial below the threshold ([GQ_PAR_THRESHOLD], default
    500,000 relaxations, recalibrated against the bit-parallel kernel),
    and never more domains than the machine has hardware threads.

    Every decision carries a {!reason}, is counted under
    [rpq.par_decision.<reason>] when a sink is supplied, and is recorded
    as the process-wide {!last} decision so serve-mode [stats] replies
    can explain the width in force.

    An explicit [?pool] argument at an engine entry point bypasses the
    policy: callers who pin a width (tests pinning determinism across
    widths, the CLI's [--domains]) keep exactly that width — engines
    record it with {!pinned} so telemetry still explains the choice. *)

type kernel = Scalar | Bitset

(** Why the width came out the way it did. *)
type reason =
  | Below_threshold  (** estimated work under [GQ_PAR_THRESHOLD] *)
  | Hardware_serial  (** enough work, but 1 hardware thread / pool slot *)
  | Parallel  (** width > 1 *)
  | Pinned  (** explicit pool: the caller chose the width *)

val reason_slug : reason -> string

type decision = {
  width : int;  (** domains to use; 1 = serial *)
  units : int;  (** parallel grains: sources (scalar) or blocks (bitset) *)
  work : int;  (** estimated work (units x product edges) *)
  threshold : int;  (** work threshold in force *)
  hardware : int;  (** hardware threads available *)
  reason : reason;
}

(** [GQ_PAR_THRESHOLD], defaulting to 500,000; clamped to >= 1. *)
val threshold : unit -> int

(** Cached [Domain.recommended_domain_count ()]. *)
val hardware : unit -> int

(** [decide ~max_width ~sources ~product_edges ()] — width 1 when the
    estimated work is under the threshold, otherwise
    [min max_width hardware units] (at least 1).  Bumps
    [rpq.par_decision.<reason>] on [obs] and records the decision as
    {!last}. *)
val decide :
  ?obs:Obs.t ->
  ?kernel:kernel ->
  max_width:int ->
  sources:int ->
  product_edges:int ->
  unit ->
  decision

(** Record an explicitly pinned width (an engine called with [?pool]) as
    the {!last} decision. *)
val pinned : width:int -> decision

(** The most recent decision taken in this process, if any. *)
val last : unit -> decision option

(** Record [d] as the {!last} decision. *)
val note : decision -> unit
