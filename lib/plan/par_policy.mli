(** Adaptive parallelism policy.

    Forking domains pays a fixed cost (spawn, stop-the-world GC
    synchronization) that only amortizes when there is real work and
    real hardware.  The policy estimates work as
    [sources x product edges] and decides a fork width: serial below the
    threshold ([GQ_PAR_THRESHOLD], default 2,000,000), and never more
    domains than the machine has hardware threads — the fix for the
    BENCH_rpq.json regression, where a forced 2-domain pool lost to
    serial on a 1-core container at every size.

    An explicit [?pool] argument at an engine entry point bypasses the
    policy: callers who pin a width (tests pinning determinism across
    widths, the CLI's [--domains]) keep exactly that width. *)

type decision = {
  width : int;  (** domains to use; 1 = serial *)
  work : int;  (** estimated work (sources x product edges) *)
  threshold : int;  (** work threshold in force *)
  hardware : int;  (** hardware threads available *)
}

(** [GQ_PAR_THRESHOLD], defaulting to 2,000,000; clamped to >= 1. *)
val threshold : unit -> int

(** Cached [Domain.recommended_domain_count ()]. *)
val hardware : unit -> int

(** [decide ~max_width ~sources ~product_edges] — width 1 when the
    estimated work is under the threshold, otherwise
    [min max_width hardware sources] (at least 1). *)
val decide : max_width:int -> sources:int -> product_edges:int -> decision
