(** The query compilation cache (tentpole of ISSUE 5).

    Maps (query text, semantics flags) to everything the engines need to
    evaluate an RPQ: the parsed AST, its Glushkov NFA, a lazily
    minimized DFA, and the interned symbol table (labels the query
    mentions).  These artifacts depend only on the query, never on the
    graph, so they survive [load]; graph-dependent artifacts (products,
    reversed graphs) live in [Rpq_compile] and are invalidated by
    generation.

    Disabled caches ([enabled = false], or [GQ_PLAN_CACHE=off] for the
    {!shared} instance) still compile — they just never store, so every
    request is a miss.  That is what [make check-plan] exercises. *)

type compiled = {
  source : string;  (** canonical key text (concrete syntax or rendered AST) *)
  flags : string;  (** semantics-flags component of the cache key *)
  ast : Sym.t Regex.t;
  nfa : Sym.t Nfa.t;  (** Glushkov construction of [ast] *)
  dfa : Dfa.t Lazy.t;  (** minimized, forced on first use *)
  symbols : string list;  (** sorted labels mentioned by the query *)
}

type t

(** [create ()] — [capacity] defaults to 128 entries; [enabled] defaults
    to the [GQ_PLAN_CACHE] environment variable (anything but ["off"]
    enables). *)
val create : ?capacity:int -> ?enabled:bool -> unit -> t

(** Is the cache storing results? *)
val enabled : t -> bool

(** [GQ_PLAN_CACHE] is not ["off"]. *)
val enabled_from_env : unit -> bool

(** Process-wide instance used by the one-shot CLI paths. *)
val shared : t

(** [compile t ~flags ~parse text] — cache lookup under key
    [(flags, text)]; on a miss, [parse text] supplies the AST and the
    NFA/DFA/symbol table are built and stored.  Parse errors are never
    cached.  [obs] counts [plan.cache.hit] / [plan.cache.miss]. *)
val compile :
  ?obs:Obs.t ->
  t ->
  flags:string ->
  parse:(string -> (Sym.t Regex.t, Gq_error.t) result) ->
  string ->
  (compiled, Gq_error.t) result

(** [compile_ast t re] — as {!compile} for an already-parsed AST, keyed
    by its rendering; used to deduplicate identical atom regexes inside
    one CRPQ. *)
val compile_ast : ?obs:Obs.t -> t -> Sym.t Regex.t -> compiled

(** [was_cached t ~flags text] — non-destructive membership probe
    (no recency bump, no counters); for EXPLAIN output. *)
val was_cached : t -> flags:string -> string -> bool

val length : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val clear : t -> unit
