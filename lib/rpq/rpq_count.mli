(** Counting semantics for RPQs.

    Two counters:

    - {!count_paths_upto}: the number of {e distinct matching paths} of
      bounded length, computed by dynamic programming over the product
      graph with a {e deterministic} (hence unambiguous) automaton, so
      runs and paths coincide (Section 6.2, "if we want to count the
      number of matching paths, it is important that N_R is
      unambiguous").

    - {!bag_count}: a reconstruction of the SPARQL 1.1-draft bag
      semantics analysed by Arenas, Conca and Pérez [9] (Section 6.1).
      Concatenation sums over intermediate nodes, disjunction adds, and
      [R*] sums over all sequences of {e distinct} intermediate nodes
      (the draft's ALP restriction, which is what keeps each level
      finite) weighted by the product of the sub-counts — but nested
      stars restart the distinctness bookkeeping, so multiplicities
      compound and the count explodes double-exponentially with the
      nesting depth: the paper's "boom".

    - {!parse_count}: a second bag model — the number of ways the
      expression parses against the simple paths between the endpoints —
      used as a structural cross-check in tests. *)

(** Number of matching paths from [src] to [tgt] of length at most
    [max_len].  [obs] records [rpq_count.relaxations] (DP edge visits)
    inside an [rpq_count.eval] span. *)
val count_paths_upto :
  ?obs:Obs.t ->
  Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> max_len:int -> Nat_big.t

(** Number of matching paths of length at most [max_len] over {e all}
    (source, target) pairs: one DP per source, fanned out across
    [?pool]'s domains (default pool when omitted).  [obs] as in
    {!count_paths_upto}, plus pool counters. *)
val total_paths_upto :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Elg.t -> Sym.t Regex.t -> max_len:int -> Nat_big.t

(** Set-semantics cardinality |⟦R⟧_G| — COUNT(DISTINCT (u, v)).  Unlike
    the path counters above this needs no length bound: it delegates to
    the evaluation engines' count-only mode, which under the bitset
    kernel popcounts answers straight out of the visited words without
    materializing a single pair (O(blocks) allocation). *)
val count_answers : ?pool:Pool.t -> ?obs:Obs.t -> Elg.t -> Sym.t Regex.t -> int

val count_answers_bounded :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Regex.t -> int Governor.outcome

(** ALP-style bag-semantics multiplicity of the pair [(src, tgt)].
    Requires at most 62 nodes (visited sets are bitmasks). *)
val bag_count : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> Nat_big.t

(** Sum of multiplicities over all pairs: the total number of "solutions"
    a bag-semantics engine would emit. *)
val bag_count_total : Elg.t -> Sym.t Regex.t -> Nat_big.t

(** Parse-multiplicity over simple paths (see above). *)
val parse_count : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> Nat_big.t
