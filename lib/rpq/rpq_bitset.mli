(** Bit-parallel multi-source RPQ kernel.

    Packs 63 sources per native word: product states carry word-packed
    visited/frontier bitsets, and expanding a state advances every
    packed source through its CSR adjacency span in one sweep — the
    all-pairs BFS as a blocked bit-matrix product over the boolean
    semiring.  Blocks of 63 sources are distributed over a {!Pool};
    budgets are charged one {!Governor.tick_many} per span sweep, and
    answers pass {!Governor.emit_many}, so Complete/Partial stays sound.

    On by default; [GQ_BITSET=off] (or {!set_enabled}[ false]) reverts
    every multi-source entry point to the scalar stamped-array engine —
    the parity escape hatch that [make check-bitset] exercises. *)

val word_bits : int
(** Sources per word (63: an OCaml native int). *)

(** {1 Kernel gate} *)

val enabled : unit -> bool
(** Runtime override if set, else [GQ_BITSET] (default: on). *)

val set_enabled : bool -> unit
val clear_enabled : unit -> unit

(** {1 Evaluation} *)

val nb_blocks : int -> int
(** Number of 63-source blocks covering [n] sources. *)

val pairs_codes :
  ?obs:Obs.t ->
  pool:Pool.t ->
  width:int ->
  Governor.t ->
  Product.t ->
  cand:int array ->
  ncand:int ->
  Ibuf.t array
(** Evaluate all sources [cand.(0 .. ncand-1)] (ascending node ids) and
    return one buffer per block of answer codes [u * n + v], each sorted
    ascending — blocks concatenate in order into the globally sorted
    answer list with no further sort. *)

val targets :
  ?obs:Obs.t ->
  ?pool:Pool.t ->
  Governor.t ->
  Product.t ->
  sources:int array ->
  int list array
(** Per-source reachable targets (sorted ascending), one packed run for
    all of [sources] — the serve-mode batching entry point.  Without
    [?pool], width follows {!Par_policy.decide}. *)
