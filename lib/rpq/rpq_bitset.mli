(** Bit-parallel, direction-optimizing multi-source RPQ kernel.

    Packs 63 sources per native word: product states carry word-packed
    visited/frontier bitsets, and one sweep advances every packed source
    at once — the all-pairs BFS as a blocked bit-matrix product over the
    boolean semiring.  The BFS is level-synchronous and switches
    per-level between *push* (scan frontier out-edges) and *pull* (scan
    incomplete states' in-edges over the reverse product CSR, gathering
    frontier bits with early exit) by a Beamer-style density heuristic.
    Blocks of 63 sources are distributed over a {!Pool}; budgets are
    charged one {!Governor.tick_many} per span scanned, and answers pass
    {!Governor.emit_many}, so Complete/Partial stays sound in both
    directions.

    Emission is node-ordered by construction (dense node scan or
    answered-bitmap walk) — per-source target buffers come out ascending
    and per-block outputs concatenate into the globally sorted answer
    list with no sort.  {!count_pairs} and {!check} never materialize
    answers at all.

    On by default; [GQ_BITSET=off] (or {!set_enabled}[ false]) reverts
    every multi-source entry point to the scalar stamped-array engine —
    the parity escape hatch that [make check-bitset] exercises. *)

val word_bits : int
(** Sources per word (63: an OCaml native int). *)

(** {1 Kernel gate} *)

val enabled : unit -> bool
(** Runtime override if set, else [GQ_BITSET] (default: on). *)

val set_enabled : bool -> unit
val clear_enabled : unit -> unit

(** {1 Push/pull policy} *)

(** [Adaptive alpha] pulls on a level when
    [alpha * frontier_out_edges >= unexplored_out_edges + product_states];
    [Always_push]/[Always_pull] pin the direction (differential tests,
    [make check-kernel]). *)
type pull_mode = Adaptive of int | Always_push | Always_pull

val default_pull_alpha : int

val pull_mode : unit -> pull_mode
(** Runtime override if set, else [GQ_PULL_THRESHOLD]: ["push"]/["off"]
    pins push, ["pull"]/["always"] pins pull, an integer sets the
    adaptive ratio (default {!default_pull_alpha}). *)

val pull_mode_of_string : string -> pull_mode
val set_pull_mode : pull_mode -> unit
val clear_pull_mode : unit -> unit

(** {1 Evaluation} *)

val nb_blocks : int -> int
(** Number of 63-source blocks covering [n] sources. *)

val pairs_codes :
  ?obs:Obs.t ->
  pool:Pool.t ->
  width:int ->
  Governor.t ->
  Product.t ->
  cand:int array ->
  ncand:int ->
  Ibuf.t array
(** Evaluate all sources [cand.(0 .. ncand-1)] (ascending node ids) and
    return one buffer per block of answer codes [u * n + v], each sorted
    ascending — blocks concatenate in order into the globally sorted
    answer list with no further sort. *)

val count_pairs :
  ?obs:Obs.t ->
  pool:Pool.t ->
  width:int ->
  Governor.t ->
  Product.t ->
  cand:int array ->
  ncand:int ->
  int
(** Number of distinct [(source, target)] answers, without materializing
    any: allocation is O(blocks), pinned by the [rpq.bitset.materialized]
    counter staying at zero.  Result budgets still apply — the count is
    the number of answers the governor admitted. *)

val targets :
  ?obs:Obs.t ->
  ?pool:Pool.t ->
  Governor.t ->
  Product.t ->
  sources:int array ->
  int array array
(** Per-source reachable targets (sorted ascending), one packed run for
    all of [sources] — the serve-mode batching entry point; each row is
    a fresh array sliced straight from the kernel's per-source buffer.
    Without [?pool], width follows {!Par_policy.decide}, and the run is
    reported to {!Par_policy.record} for calibration. *)

val check :
  ?obs:Obs.t -> Governor.t -> Product.t -> src:int -> tgt:int -> bool
(** Single-source early-exit reachability (the first-k fast path):
    probes [tgt]'s accepting rows between levels and stops at the first
    hit — no answer materialization. *)
