(** Growable flat int buffer for answer codes and scratch lists.

    Used by both the scalar and the bit-parallel RPQ kernels: pushes are
    amortized O(1) with no per-element allocation, and the contents are
    consumed in bulk ([to_array] / [sorted_array]) once a run finishes. *)

type t = { mutable data : int array; mutable len : int }

val create : unit -> t
val push : t -> int -> unit

(** Forget the contents (capacity is kept). *)
val clear : t -> unit

val length : t -> int
val get : t -> int -> int

(** Fresh array of the first [length] elements. *)
val to_array : t -> int array

(** Like {!to_array}, sorted ascending. *)
val sorted_array : t -> int array
