(** Growable flat int buffer for answer codes and scratch lists.

    Used by both the scalar and the bit-parallel RPQ kernels: pushes are
    amortized O(1) with no per-element allocation, and the contents are
    consumed in bulk ([to_array] / [sorted_array]) once a run finishes. *)

type t = { mutable data : int array; mutable len : int }

val create : unit -> t
val push : t -> int -> unit

(** Forget the contents (capacity is kept). *)
val clear : t -> unit

val length : t -> int
val get : t -> int -> int

(** Fresh array of the first [length] elements. *)
val to_array : t -> int array

(** [sub b k] — fresh array of the first [min k (length b)] elements
    (the admitted prefix of a target buffer). *)
val sub : t -> int -> int array

(** [append dst src] — bulk blit of [src]'s contents onto [dst]; one
    capacity check per call instead of one per element. *)
val append : t -> t -> unit

(** [reserve b k] — ensure capacity for [length b + k] elements and
    return the backing array: the bulk-write protocol for hot emission
    loops.  Write [data.(length b) ..] directly, then {!set_len}. *)
val reserve : t -> int -> int array

(** Commit writes made through {!reserve}. *)
val set_len : t -> int -> unit

(** Like {!to_array}, sorted ascending. *)
val sorted_array : t -> int array
