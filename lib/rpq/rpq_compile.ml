(* A cached product carries the labels its query mentions (and whether
   it uses a wildcard/negated symbol), so delta application can decide
   per entry: disjoint from the touched labels means the product is
   still exact on the new graph and migrates to the new graph id. *)
type pentry = {
  prod : Product.t;
  psyms : string list; (* sorted labels the query mentions *)
  pwild : bool; (* query matches labels beyond [psyms] (Any / Not) *)
}

type t = {
  plans : Plan_cache.t;
  products : (int * string * bool, pentry) Lru.t; (* graph id, key, reversed? *)
  reversed : (int, Elg.t) Lru.t;
  gen : int Atomic.t; (* last graph id seen by set_generation *)
  gen_lock : Mutex.t; (* serializes generation bumps against each other *)
  enabled : bool;
  by_label : int Atomic.t; (* entries dropped because labels intersected a delta *)
  retained : int Atomic.t; (* entries migrated across a delta *)
}

let create ?(capacity = 64) ?enabled ?plans () =
  let enabled =
    match enabled with Some b -> b | None -> Plan_cache.enabled_from_env ()
  in
  let plans =
    match plans with
    | Some p -> p
    | None -> Plan_cache.create ~enabled ()
  in
  {
    plans;
    products = Lru.create ~capacity ();
    reversed = Lru.create ~capacity:(max 4 (capacity / 8)) ();
    gen = Atomic.make (-1);
    gen_lock = Mutex.create ();
    enabled;
    by_label = Atomic.make 0;
    retained = Atomic.make 0;
  }

let shared = create ~plans:Plan_cache.shared ()
let plans t = t.plans

let compile ?obs t text =
  Plan_cache.compile ?obs t.plans ~flags:"rpq" ~parse:Rpq_parse.parse_res text

let compile_ast ?obs t re = Plan_cache.compile_ast ?obs t.plans re

let key_of (c : Plan_cache.compiled) = c.flags ^ ":" ^ c.source

(* Same node/edge names in the same declaration order, so ids coincide
   with the forward graph and pairs translate back by a plain swap. *)
let build_reversed g =
  let nodes = List.init (Elg.nb_nodes g) (Elg.node_name g) in
  let edges =
    List.init (Elg.nb_edges g) (fun e ->
        ( Elg.edge_name g e,
          Elg.node_name g (Elg.tgt g e),
          Elg.label g e,
          Elg.node_name g (Elg.src g e) ))
  in
  Elg.make ~nodes ~edges

let reversed_graph t g =
  let gid = Elg.id g in
  match if t.enabled then Lru.find t.reversed gid else None with
  | Some rg -> rg
  | None ->
      let rg = build_reversed g in
      if t.enabled then Lru.add t.reversed ~gen:gid gid rg;
      rg

(* [Sym.mentioned] is empty for [Any] and lists the excluded labels for
   [Not], so symbol-intersection alone would wrongly keep wildcard
   products warm across a delta; they get an explicit flag instead. *)
let wildcard (c : Plan_cache.compiled) =
  List.exists
    (function Sym.Lbl _ -> false | Sym.Any | Sym.Not _ -> true)
    (Regex.atoms c.ast)

let product ?(obs = Obs.none) ?(rev = false) t g (c : Plan_cache.compiled) =
  let gid = Elg.id g in
  let key = (gid, key_of c, rev) in
  match if t.enabled then Lru.find t.products key else None with
  | Some e ->
      Obs.incr obs "plan.product.hit";
      e.prod
  | None ->
      Obs.incr obs "plan.product.miss";
      let p =
        if rev then
          Product.make ~obs (reversed_graph t g)
            (Nfa.of_regex (Regex.reverse c.ast))
        else Product.make ~obs g c.nfa
      in
      if t.enabled then
        Lru.add t.products ~gen:gid key
          { prod = p; psyms = c.symbols; pwild = wildcard c };
      p

let product_rev ?obs t g c = product ?obs ~rev:true t g c
let product ?obs t g c = product ?obs ~rev:false t g c

let product_cached t g c =
  t.enabled && Option.is_some (Lru.peek t.products (Elg.id g, key_of c, false))

(* Serialized: two concurrent loads must not interleave their drops, or
   a cache could keep products of a graph that is no longer current.  A
   product built against the *old* snapshot by an in-flight query may be
   re-added after the bump; it is keyed by its own graph id, so it can
   never answer for the new snapshot and is dropped at the next bump. *)
let set_generation t gen =
  Mutex.lock t.gen_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.gen_lock)
    (fun () ->
      Atomic.set t.gen gen;
      ignore (Lru.drop_generations_except t.products gen);
      ignore (Lru.drop_generations_except t.reversed gen))

let generation t = Atomic.get t.gen

(* Fine-grained invalidation across a delta.  A cached product embeds
   its source graph, and every cached-evaluation path reads only that
   embedded graph (node count, labels, successor spans) — so an entry
   stays exact on the post-delta graph when (a) the node set is
   unchanged (dense ids and the ε self-pair range coincide), and (b)
   its query can only match labels disjoint from the touched set (no
   wildcard/negation, no mentioned label in the delta): no edge the
   query can traverse was added or removed.  Such entries migrate to
   the new graph id, keeping the cache warm under a live update
   stream; everything else built against the old snapshot drops.
   Reversed graphs always drop — they mirror the whole edge set. *)
let apply_delta ?(obs = Obs.none) t ~old_graph ~new_graph ~touched_labels
    ~nodes_stable =
  let old_gid = Elg.id old_graph and new_gid = Elg.id new_graph in
  Mutex.lock t.gen_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.gen_lock)
    (fun () ->
      Atomic.set t.gen new_gid;
      let by_label = ref 0 and kept = ref 0 in
      ignore
        (Lru.sweep t.products ~f:(fun (gid, key, rev) e ->
             if gid <> old_gid then `Drop
             else if
               (not nodes_stable) || e.pwild
               || List.exists (fun a -> List.mem a touched_labels) e.psyms
             then begin
               incr by_label;
               `Drop
             end
             else begin
               incr kept;
               `Rekey ((new_gid, key, rev), new_gid)
             end));
      ignore (Lru.drop_generations_except t.reversed new_gid);
      ignore (Atomic.fetch_and_add t.by_label !by_label);
      ignore (Atomic.fetch_and_add t.retained !kept);
      Obs.add obs "plan.invalidated_by_label" !by_label;
      Obs.add obs "plan.retained" !kept)

let invalidated_by_label t = Atomic.get t.by_label
let retained t = Atomic.get t.retained

(* --- cached evaluation -------------------------------------------------- *)

let pairs_bounded ?pool ?(obs = Obs.none) ?planner t gov g c =
  let use_planner =
    match planner with Some b -> b | None -> Planner.enabled_from_env ()
  in
  let dir =
    if use_planner then Planner.direction_of (Stats.get g) c.Plan_cache.ast
    else Planner.Forward
  in
  match dir with
  | Planner.Forward ->
      Rpq_eval.pairs_product_bounded ?pool ~obs gov (product ~obs t g c)
  | Planner.Backward ->
      Obs.incr obs "plan.backward";
      Rpq_eval.pairs_product_bounded ?pool ~obs gov (product_rev ~obs t g c)
      |> Governor.map (fun ps ->
             List.sort Stdlib.compare (List.rev_map (fun (v, u) -> (u, v)) ps))

let from_source_bounded ?(obs = Obs.none) t gov g c ~src =
  Obs.span obs "rpq.eval" @@ fun () ->
  let p = product ~obs t g c in
  let targets = Rpq_eval.from_source_product ~gov ~obs p ~src in
  let kept = Governor.take_results gov targets in
  Obs.add obs "rpq.answers" (List.length kept);
  Governor.seal gov kept

(* One compiled query, many sources, one evaluation: the serve-mode
   batching path.  Under the bitset kernel all sources run as one packed
   multi-source traversal; the scalar fallback loops a per-source BFS
   over shared compilation artifacts.  Either way the governor spans the
   whole batch, so budgets cover the coalesced run, not each member. *)
let from_source_batch ?pool ?(obs = Obs.none) t gov g c ~srcs =
  Obs.span obs "rpq.eval" @@ fun () ->
  let p = product ~obs t g c in
  let out =
    if Rpq_bitset.enabled () then
      Rpq_bitset.targets ~obs ?pool gov p ~sources:srcs
    else begin
      let res =
        Array.map
          (fun src ->
            if Governor.ok gov then
              Array.of_list
                (Governor.take_results gov
                   (Rpq_eval.from_source_product ~gov ~obs p ~src))
            else [||])
          srcs
      in
      Obs.add obs "rpq.answers"
        (Array.fold_left (fun a l -> a + Array.length l) 0 res);
      res
    end
  in
  Governor.seal gov out

(* Distinct-pair counting through the caches: the planner direction
   choice is irrelevant (|⟦c⟧_g| is symmetric), so always forward —
   keeping the forward product warm for the queries that follow. *)
let count_pairs_bounded ?pool ?(obs = Obs.none) t gov g c =
  Rpq_eval.count_pairs_product_bounded ?pool ~obs gov (product ~obs t g c)

let product_hits t = Lru.hits t.products
let product_misses t = Lru.misses t.products
let product_entries t = Lru.length t.products
let invalidated t = Lru.invalidated t.products + Lru.invalidated t.reversed
