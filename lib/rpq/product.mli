(** The product graph G× of an edge-labeled graph and an NFA
    (Section 6.2).

    Nodes of G× are pairs (graph node, automaton state); edges pair a graph
    edge with a matching transition.  A path from [(u, q0)] to [(v, q)]
    with [q] accepting witnesses that the path's projection matches the
    RPQ, so RPQ evaluation reduces to reachability, shortest paths to BFS,
    and path enumeration to path enumeration in G× (Sections 6.2–6.4). *)

type t

(** [obs]: the construction runs inside a [product.build] span and
    records [product.states] / [product.edges]. *)
val make : ?obs:Obs.t -> Elg.t -> Sym.t Nfa.t -> t

val graph : t -> Elg.t
val nfa : t -> Sym.t Nfa.t
val nb_states : t -> int

(** [state p ~node ~q] encodes a product node. *)
val state : t -> node:int -> q:int -> int

(** [decode p s] is [(node, q)]. *)
val decode : t -> int -> int * int

(** Outgoing product edges: [(graph_edge, successor_state)].  A list
    view over the CSR storage, rebuilt per call; hot loops should use
    {!iter_out} instead. *)
val out : t -> int -> (int * int) list

(** Allocation-free iteration: [f graph_edge successor_state] per product
    edge, in the same order as {!out}. *)
val iter_out : t -> int -> (int -> int -> unit) -> unit

val out_degree : t -> int -> int

(** [out_span t s] is [(lo, hi)]: state [s]'s product edges are
    [(csr_edge t i, csr_succ t i)] for [lo <= i < hi]. *)
val out_span : t -> int -> int * int

val csr_edge : t -> int -> int
val csr_succ : t -> int -> int

(** The raw CSR arrays backing {!out_span}/{!csr_succ}: [(off, succ)],
    for kernel hot loops that cannot afford a call and a pair allocation
    per popped state.  Aliases into the product, not copies — callers
    must not mutate them. *)
val csr : t -> int array * int array

(** Product nodes [(u, q0)] for every initial automaton state. *)
val initials_at : t -> int -> int list

val nb_automaton_states : t -> int

(** Accepting automaton-state ids, ascending: product state
    [v * nb_automaton_states + q] is {!is_final} iff [q] is listed. *)
val final_qs : t -> int array

(** Is the automaton component accepting? *)
val is_final : t -> int -> bool

(** Number of materialized product edges (for size reporting). *)
val nb_product_edges : t -> int

(** Reverse CSR (pull adjacency): [(rin_off, rin_pred)] where state
    [s]'s predecessors are [rin_pred.(i)] for
    [rin_off.(s) <= i < rin_off.(s + 1)], one entry per product edge.
    Built lazily on first use (one counting-sort pass over the forward
    arrays, thread-safe) and cached for the product's lifetime, so the
    plan cache keeps it warm per graph generation.  Aliases, not copies —
    callers must not mutate. *)
val rev_csr : t -> int array * int array
