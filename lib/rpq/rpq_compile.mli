(** Cached RPQ compilation pipeline: query text → AST → Glushkov NFA →
    product graph, each stage memoized.

    Query-only artifacts live in a {!Plan_cache.t} (never invalidated);
    graph-dependent artifacts — product graphs and reversed graphs — are
    keyed by {!Elg.id} and generation-invalidated: {!set_generation}
    (called by the serve session on [load]) drops every entry built
    against another graph.  The caches make warm serve-mode requests
    skip parse, Glushkov, and product construction entirely; E20
    measures the resulting speedup.

    When [GQ_PLAN_CACHE=off] (or [enabled:false]) nothing is stored and
    every request recompiles — used by [make check-plan] to pin that
    caching never changes answers. *)

type t

(** [create ()] — [capacity] bounds the product/reversed-graph caches
    (default 64); [enabled]/[plans] default to a fresh
    {!Plan_cache.create} honoring [GQ_PLAN_CACHE]. *)
val create : ?capacity:int -> ?enabled:bool -> ?plans:Plan_cache.t -> unit -> t

(** Process-wide instance (shares {!Plan_cache.shared}). *)
val shared : t

val plans : t -> Plan_cache.t

(** Parse and compile concrete RPQ syntax, cached under flags ["rpq"]. *)
val compile :
  ?obs:Obs.t -> t -> string -> (Plan_cache.compiled, Gq_error.t) result

(** Compile an already-parsed regex (CRPQ atom dedup). *)
val compile_ast : ?obs:Obs.t -> t -> Sym.t Regex.t -> Plan_cache.compiled

(** [product t g c] — the product of [g] with [c]'s NFA, cached by
    (graph id, query key).  [obs] counts [plan.product.hit] /
    [plan.product.miss]. *)
val product : ?obs:Obs.t -> t -> Elg.t -> Plan_cache.compiled -> Product.t

(** [product_rev t g c] — the product of the {e reversed} graph with the
    {e reversed} regex's NFA: BFS over it explores matching paths
    backward from their targets. *)
val product_rev : ?obs:Obs.t -> t -> Elg.t -> Plan_cache.compiled -> Product.t

(** The edge-reversed twin of [g] (same nodes/labels, src/tgt swapped),
    cached by graph id. *)
val reversed_graph : t -> Elg.t -> Elg.t

(** Is the forward product for this compiled query already cached?
    (No recency bump; for EXPLAIN output.) *)
val product_cached : t -> Elg.t -> Plan_cache.compiled -> bool

(** [set_generation t gen] — drop graph-dependent entries whose graph id
    differs from [gen]; serve calls this with [Elg.id g] on [load]. *)
val set_generation : t -> int -> unit

val generation : t -> int

(** [apply_delta t ~old_graph ~new_graph ~touched_labels ~nodes_stable]
    — fine-grained invalidation for a delta from [old_graph] to
    [new_graph]: cached products whose queries mention only labels
    disjoint from [touched_labels] (and no wildcard/negated symbol)
    stay warm, migrated to the new graph id — valid because cached
    evaluation reads only the product's embedded graph and, with the
    node set unchanged ([nodes_stable]) and no traversable edge
    touched, its answers on the new graph are unchanged.  Everything
    else from [old_graph] drops ([plan.invalidated_by_label] /
    [plan.retained] count the split); reversed graphs always drop.
    Serialized with {!set_generation} under the same lock. *)
val apply_delta :
  ?obs:Obs.t ->
  t ->
  old_graph:Elg.t ->
  new_graph:Elg.t ->
  touched_labels:string list ->
  nodes_stable:bool ->
  unit

(** Entries dropped by {!apply_delta} because their labels intersected a
    delta (or they could not be proven disjoint). *)
val invalidated_by_label : t -> int

(** Entries migrated warm across a delta by {!apply_delta}. *)
val retained : t -> int

(** {1 Cached evaluation} *)

(** [pairs_bounded t gov g c] — ⟦c⟧_g through the caches, picking the
    evaluation direction with the planner (unless [GQ_PLAN=off] or
    [planner:false]): backward evaluation runs the reversed product and
    swaps the pairs back.  Answers are always identical to
    {!Rpq_eval.pairs_bounded}. *)
val pairs_bounded :
  ?pool:Pool.t -> ?obs:Obs.t -> ?planner:bool ->
  t -> Governor.t -> Elg.t -> Plan_cache.compiled ->
  (int * int) list Governor.outcome

(** [from_source_bounded t gov g c ~src] — reachable targets, through
    the product cache. *)
val from_source_bounded :
  ?obs:Obs.t ->
  t -> Governor.t -> Elg.t -> Plan_cache.compiled -> src:int ->
  int list Governor.outcome

(** [from_source_batch t gov g c ~srcs] — reachable targets for every
    source in [srcs], as one evaluation: the bitset kernel packs the
    whole batch into one multi-source traversal (serve-mode request
    coalescing), the scalar fallback loops per source over the shared
    product.  [srcs.(i)]'s targets are at index [i], sorted ascending —
    each row sliced straight from the kernel's per-source emission
    buffer (no list rebuild).  One governor spans the batch. *)
val from_source_batch :
  ?pool:Pool.t ->
  ?obs:Obs.t ->
  t -> Governor.t -> Elg.t -> Plan_cache.compiled -> srcs:int array ->
  int array array Governor.outcome

(** [count_pairs_bounded t gov g c] — |⟦c⟧_g| through the caches via the
    kernel's count-only mode: no answer is ever materialized (O(blocks)
    allocation).  Under a result budget the count is the number of
    admitted answers, exactly as {!pairs_bounded} would have kept. *)
val count_pairs_bounded :
  ?pool:Pool.t -> ?obs:Obs.t ->
  t -> Governor.t -> Elg.t -> Plan_cache.compiled -> int Governor.outcome

(** {1 Counters} (monotone; plan-cache counters via {!plans}) *)

val product_hits : t -> int
val product_misses : t -> int
val product_entries : t -> int
val invalidated : t -> int
