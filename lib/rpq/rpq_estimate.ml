let exact_pairs g r = List.length (Rpq_eval.pairs g r)

let estimate_pairs g r ~samples ~seed =
  let n = Elg.nb_nodes g in
  if n = 0 || samples <= 0 then 0.0
  else begin
    let st = Random.State.make [| seed |] in
    let nfa = Nfa.of_regex r in
    let product = Product.make g nfa in
    let total = ref 0 in
    for _ = 1 to samples do
      let src = Random.State.int st n in
      (* Out-degree of the sampled source in the answer relation. *)
      let seen = Array.make (Product.nb_states product) false in
      let queue = Queue.create () in
      List.iter
        (fun s ->
          if not seen.(s) then begin
            seen.(s) <- true;
            Queue.add s queue
          end)
        (Product.initials_at product src);
      while not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        Product.iter_out product s (fun _ s' ->
            if not seen.(s') then begin
              seen.(s') <- true;
              Queue.add s' queue
            end)
      done;
      let reached = Hashtbl.create 16 in
      Array.iteri
        (fun s ok ->
          if ok && Product.is_final product s then
            Hashtbl.replace reached (fst (Product.decode product s)) ())
        seen;
      total := !total + Hashtbl.length reached
    done;
    float_of_int !total /. float_of_int samples *. float_of_int n
  end

let relative_error g r ~samples ~seed =
  let exact = exact_pairs g r in
  let est = estimate_pairs g r ~samples ~seed in
  Float.abs (est -. float_of_int exact) /. float_of_int (max 1 exact)
