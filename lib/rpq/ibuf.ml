(* Growable flat int buffer, shared by the RPQ engines: answers are
   collected as [u * n + v] codes (or plain node ids), appended without
   allocation in the hot loop and consumed in bulk at the end.  Extracted
   from [Rpq_eval] so the bitset kernel can reuse it. *)

type t = { mutable data : int array; mutable len : int }

let create () = { data = Array.make 64 0; len = 0 }

let push b x =
  if b.len = Array.length b.data then begin
    let d = Array.make (2 * b.len) 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let clear b = b.len <- 0
let length b = b.len
let get b i = b.data.(i)

let to_array b = Array.sub b.data 0 b.len
let sub b k = Array.sub b.data 0 (min k b.len)

(* Bulk-write protocol for hot emission loops: [reserve b k] grows the
   backing array to hold [len + k] more elements and returns it; the
   caller writes [data.(len) .. data.(len + k - 1)] directly and then
   [set_len b (len + k)] — no per-element capacity check or call. *)
let reserve b k =
  let need = b.len + k in
  if need > Array.length b.data then begin
    let cap = ref (max 64 (Array.length b.data)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let d = Array.make !cap 0 in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data

let set_len b n = b.len <- n

let append dst src =
  let need = dst.len + src.len in
  if need > Array.length dst.data then begin
    let cap = ref (max 64 (Array.length dst.data)) in
    while !cap < need do
      cap := 2 * !cap
    done;
    let d = Array.make !cap 0 in
    Array.blit dst.data 0 d 0 dst.len;
    dst.data <- d
  end;
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- need

(* The contents as a fresh ascending array — per-source target lists are
   tiny, so a straight sort beats anything clever. *)
let sorted_array b =
  let a = to_array b in
  Array.sort (fun (x : int) y -> Stdlib.compare x y) a;
  a
