type t = {
  graph : Elg.t;
  nfa : Sym.t Nfa.t;
  (* CSR: product state [s] has out-edges [(edge.(i), succ.(i))] for
     [off.(s) <= i < off.(s+1)], ordered exactly as the original
     list-based construction: graph edges in declaration order, and for
     each edge the matching NFA transitions in delta order. *)
  off : int array;
  edge : int array;
  succ : int array;
  finals : bool array; (* per automaton state, aliased from the NFA *)
  (* Reverse CSR (pull adjacency), built lazily on the first pull sweep
     and kept for the product's lifetime — the plan cache retains it per
     graph generation alongside the forward arrays.  Guarded by [rlock]
     so concurrent pool workers build it once; readers go through the
     atomic and never take the lock after publication. *)
  rev : (int array * int array) option Atomic.t;
  rlock : Mutex.t;
}

let nb_automaton_states t = t.nfa.Nfa.nb_states
let state t ~node ~q = (node * nb_automaton_states t) + q
let decode t s = (s / nb_automaton_states t, s mod nb_automaton_states t)

let make ?(obs = Obs.none) graph nfa =
  Failpoint.check "rpq.product.build";
  Obs.span obs "product.build" @@ fun () ->
  let nq = nfa.Nfa.nb_states in
  let nl = Elg.nb_labels graph in
  let nb_states = Elg.nb_nodes graph * nq in
  (* Compile the symbol predicates once per (state, label): [moves]
     maps [q * nl + l] to the NFA states reached from [q] by an edge
     carrying label [l], in delta order.  All string matching happens
     here — O(|delta| * nb_labels) — instead of per (edge, transition). *)
  let moves = Array.make (max 1 (nq * nl)) [||] in
  for q = 0 to nq - 1 do
    for l = 0 to nl - 1 do
      let a = Elg.label_name graph l in
      let targets =
        List.filter_map
          (fun (sym, q') -> if Sym.matches sym a then Some q' else None)
          nfa.Nfa.delta.(q)
      in
      if targets <> [] then moves.((q * nl) + l) <- Array.of_list targets
    done
  done;
  (* Two passes over (node, state): count, prefix-sum, fill.  The count
     pass loads each edge's label once and walks a transposed
     move-length table ([l * nq + q], contiguous per label). *)
  let mlen_t = Array.make (max 1 (nq * nl)) 0 in
  for q = 0 to nq - 1 do
    for l = 0 to nl - 1 do
      mlen_t.((l * nq) + q) <- Array.length moves.((q * nl) + l)
    done
  done;
  let off = Array.make (nb_states + 1) 0 in
  for v = 0 to Elg.nb_nodes graph - 1 do
    let lo, hi = Elg.out_span graph v in
    let base = v * nq in
    for i = lo to hi - 1 do
      let l = Elg.edge_label_id graph (Elg.csr_out_edge graph i) in
      let row = l * nq in
      for q = 0 to nq - 1 do
        off.(base + q + 1) <- off.(base + q + 1) + mlen_t.(row + q)
      done
    done
  done;
  for s = 1 to nb_states do
    off.(s) <- off.(s) + off.(s - 1)
  done;
  let nb_product_edges = off.(nb_states) in
  let edge = Array.make (max 1 nb_product_edges) 0
  and succ = Array.make (max 1 nb_product_edges) 0 in
  for v = 0 to Elg.nb_nodes graph - 1 do
    let lo, hi = Elg.out_span graph v in
    for q = 0 to nq - 1 do
      let s = (v * nq) + q in
      let pos = ref off.(s) in
      for i = lo to hi - 1 do
        let e = Elg.csr_out_edge graph i in
        let l = Elg.edge_label_id graph e in
        let targets = moves.((q * nl) + l) in
        let base = Elg.tgt graph e * nq in
        for j = 0 to Array.length targets - 1 do
          edge.(!pos) <- e;
          succ.(!pos) <- base + targets.(j);
          incr pos
        done
      done
    done
  done;
  Obs.add obs "product.states" nb_states;
  Obs.add obs "product.edges" nb_product_edges;
  {
    graph;
    nfa;
    off;
    edge;
    succ;
    finals = nfa.Nfa.finals;
    rev = Atomic.make None;
    rlock = Mutex.create ();
  }

let graph t = t.graph
let nfa t = t.nfa
let nb_states t = Elg.nb_nodes t.graph * nb_automaton_states t

let out t s =
  List.init (t.off.(s + 1) - t.off.(s)) (fun i ->
      let j = t.off.(s) + i in
      (t.edge.(j), t.succ.(j)))

let out_degree t s = t.off.(s + 1) - t.off.(s)
let out_span t s = (t.off.(s), t.off.(s + 1))
let csr_edge t i = t.edge.(i)
let csr_succ t i = t.succ.(i)
let csr t = (t.off, t.succ)

let iter_out t s f =
  for i = t.off.(s) to t.off.(s + 1) - 1 do
    f t.edge.(i) t.succ.(i)
  done

let initials_at t v =
  List.map (fun q0 -> state t ~node:v ~q:q0) t.nfa.Nfa.initials

let is_final t s = t.finals.(s mod nb_automaton_states t)

let final_qs t =
  let qs = ref [] in
  for q = Array.length t.finals - 1 downto 0 do
    if t.finals.(q) then qs := q :: !qs
  done;
  Array.of_list !qs

let nb_product_edges t = t.off.(nb_states t)

(* Counting sort of [succ] by target: [rin_pred.(rin_off.(s) ..
   rin_off.(s+1) - 1)] are the predecessors of [s], each listed once per
   parallel product edge, ascending (the forward fill visits sources in
   order).  One O(V + E) pass, same asymptotics as the forward build. *)
let build_rev t =
  let ns = nb_states t in
  let m = t.off.(ns) in
  let rin_off = Array.make (ns + 1) 0 in
  for i = 0 to m - 1 do
    let s = t.succ.(i) in
    rin_off.(s + 1) <- rin_off.(s + 1) + 1
  done;
  for s = 1 to ns do
    rin_off.(s) <- rin_off.(s) + rin_off.(s - 1)
  done;
  let pos = Array.copy rin_off in
  let rin_pred = Array.make (max 1 m) 0 in
  for src = 0 to ns - 1 do
    for i = t.off.(src) to t.off.(src + 1) - 1 do
      let s = t.succ.(i) in
      rin_pred.(pos.(s)) <- src;
      pos.(s) <- pos.(s) + 1
    done
  done;
  (rin_off, rin_pred)

let rev_csr t =
  match Atomic.get t.rev with
  | Some r -> r
  | None ->
      Mutex.lock t.rlock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.rlock)
        (fun () ->
          match Atomic.get t.rev with
          | Some r -> r
          | None ->
              let r = build_rev t in
              Atomic.set t.rev (Some r);
              r)
