(* Compile once per query: the DFA plus a label-id -> class table, so
   the DP loops look classes up by interned id instead of re-running
   [Dfa.class_of_label] on the label string of every edge visit. *)
let compile g r =
  let dfa = Dfa.of_nfa (Nfa.of_regex r) in
  let lclass =
    Array.init (max 1 (Elg.nb_labels g)) (fun l ->
        Dfa.class_of_label dfa (Elg.label_name g l))
  in
  (dfa, lclass)

(* DP over (node, dfa state): counts of paths of the current length from
   [src].  Determinism makes runs and paths one-to-one; [accept v q]
   selects which states tally into the total at each length. *)
let count_from ?(obs = Obs.none) g dfa lclass ~src ~max_len accept =
  let relax = Obs.counter_fn obs "rpq_count.relaxations" in
  let nq = dfa.Dfa.nb_states in
  let idx v q = (v * nq) + q in
  let size = Elg.nb_nodes g * nq in
  let total = ref Nat_big.zero in
  let add_finals counts =
    Array.iteri
      (fun i c ->
        if (not (Nat_big.is_zero c)) && accept (i / nq) (i mod nq) then
          total := Nat_big.add !total c)
      counts
  in
  let current = Array.make size Nat_big.zero in
  current.(idx src dfa.Dfa.init) <- Nat_big.one;
  add_finals current;
  let current = ref current in
  let relaxed = ref 0 in
  for _ = 1 to max_len do
    let next = Array.make size Nat_big.zero in
    Array.iteri
      (fun i count ->
        if not (Nat_big.is_zero count) then begin
          let v = i / nq and q = i mod nq in
          Elg.iter_out g v (fun e ->
              incr relaxed;
              let q' = dfa.Dfa.next.(q).(lclass.(Elg.edge_label_id g e)) in
              let j = idx (Elg.tgt g e) q' in
              next.(j) <- Nat_big.add next.(j) count)
        end)
      !current;
    current := next;
    add_finals next
  done;
  relax !relaxed;
  !total

let count_paths_upto ?(obs = Obs.none) g r ~src ~tgt ~max_len =
  Obs.span obs "rpq_count.eval" @@ fun () ->
  let dfa, lclass = compile g r in
  count_from ~obs g dfa lclass ~src ~max_len (fun v q ->
      v = tgt && dfa.Dfa.finals.(q))

let total_paths_upto ?pool ?(obs = Obs.none) g r ~max_len =
  Obs.span obs "rpq_count.eval" @@ fun () ->
  let dfa, lclass = compile g r in
  let accept _ q = dfa.Dfa.finals.(q) in
  let n = Elg.nb_nodes g in
  (* An explicit pool pins its width; otherwise the adaptive policy
     decides, like the RPQ engines — the DP relaxes every edge once per
     source per length step, so the work estimate scales accordingly. *)
  let pool, width =
    match pool with
    | Some p ->
        let w = max 1 (min (Pool.size p) n) in
        ignore (Par_policy.pinned ~width:w);
        (p, w)
    | None ->
        let p = Pool.default () in
        let d =
          Par_policy.decide ~obs ~max_width:(Pool.size p) ~sources:n
            ~product_edges:(Elg.nb_edges g * max 1 max_len) ()
        in
        (p, d.Par_policy.width)
  in
  let partials = Array.make width Nat_big.zero in
  let next = Atomic.make 0 in
  Pool.fork_join ~obs pool ~width (fun w ->
      let rec loop () =
        let src = Atomic.fetch_and_add next 1 in
        if src < n then begin
          partials.(w) <-
            Nat_big.add partials.(w)
              (count_from ~obs g dfa lclass ~src ~max_len accept);
          loop ()
        end
      in
      loop ());
  Array.fold_left Nat_big.add Nat_big.zero partials

(* Set-semantics cardinality — COUNT(DISTINCT (u, v)) — delegated to the
   evaluation engines' count-only mode: under the bitset kernel the
   answer pairs are popcounted out of the visited words per block and
   never materialized (O(blocks) allocation however many answers). *)
let count_answers ?pool ?obs g r = Rpq_eval.count_pairs ?pool ?obs g r

let count_answers_bounded ?pool ?obs gov g r =
  Rpq_eval.count_pairs_bounded ?pool ?obs gov g r

(* --- Bag-semantics parse counting (Section 6.1, after [9]) ------------- *)

(* Subexpression tree with ids for memoization keys. *)
type 'a tree = { id : int; expr : 'a Regex.t; children : 'a tree list }

let index_subexprs r =
  let count = ref 0 in
  let rec go r =
    let id = !count in
    incr count;
    match r with
    | Regex.Eps | Regex.Atom _ -> { id; expr = r; children = [] }
    | Regex.Seq (r1, r2) | Regex.Alt (r1, r2) ->
        let t1 = go r1 in
        let t2 = go r2 in
        { id; expr = r; children = [ t1; t2 ] }
    | Regex.Star r1 -> { id; expr = r; children = [ go r1 ] }
  in
  go r

(* Multiplicity of expression [tree] on the path slice [i..j] (node indices
   into [path_nodes]; the slice denotes edges i..j-1). *)
let count_on_path g tree path_nodes =
  let memo : (int * int * int, Nat_big.t) Hashtbl.t = Hashtbl.create 64 in
  let n = Array.length path_nodes in
  let edge_count i j sym =
    (* Parallel edges each count once. *)
    List.length
      (List.filter
         (fun e -> Sym.matches sym (Elg.label g e))
         (Elg.edges_between g path_nodes.(i) path_nodes.(j)))
  in
  let rec count t i j =
    match Hashtbl.find_opt memo (t.id, i, j) with
    | Some c -> c
    | None ->
        let result =
          match (t.expr, t.children) with
          | Regex.Eps, _ -> if i = j then Nat_big.one else Nat_big.zero
          | Regex.Atom sym, _ ->
              if j = i + 1 then Nat_big.of_int (edge_count i j sym)
              else Nat_big.zero
          | Regex.Seq _, [ t1; t2 ] ->
              let acc = ref Nat_big.zero in
              for k = i to j do
                let c1 = count t1 i k in
                if not (Nat_big.is_zero c1) then
                  acc := Nat_big.add !acc (Nat_big.mul c1 (count t2 k j))
              done;
              !acc
          | Regex.Alt _, [ t1; t2 ] ->
              Nat_big.add (count t1 i j) (count t2 i j)
          | Regex.Star _, [ t1 ] ->
              if i = j then Nat_big.one
              else begin
                (* Split off a non-empty first iteration. *)
                let acc = ref Nat_big.zero in
                for k = i + 1 to j do
                  let c1 = count t1 i k in
                  if not (Nat_big.is_zero c1) then
                    acc :=
                      Nat_big.add !acc
                        (Nat_big.mul c1 (count t k j))
                done;
                !acc
              end
          | (Regex.Seq _ | Regex.Alt _ | Regex.Star _), _ -> assert false
        in
        Hashtbl.add memo (t.id, i, j) result;
        result
  in
  count tree 0 (n - 1)

(* All simple paths from src to tgt, as node arrays. *)
let simple_paths g ~src ~tgt =
  let acc = ref [] in
  let visited = Array.make (Elg.nb_nodes g) false in
  let rec go v rev_nodes =
    if v = tgt then acc := Array.of_list (List.rev (v :: rev_nodes)) :: !acc
    else
      List.iter
        (fun e ->
          let w = Elg.tgt g e in
          if not visited.(w) then begin
            visited.(w) <- true;
            go w (v :: rev_nodes);
            visited.(w) <- false
          end)
        (Elg.out_edges g v)
  in
  visited.(src) <- true;
  go src [];
  (* Parallel edges produce the same node sequence several times; the
     sequence is the path skeleton, so deduplicate (edge multiplicity is
     accounted for by the per-atom edge counts). *)
  List.sort_uniq Stdlib.compare !acc

let parse_count g r ~src ~tgt =
  let tree = index_subexprs r in
  List.fold_left
    (fun acc nodes -> Nat_big.add acc (count_on_path g tree nodes))
    Nat_big.zero
    (simple_paths g ~src ~tgt)

(* --- ALP-style bag counting (the [9] reconstruction) -------------------- *)

(* count(e, x, y): concatenation composes over intermediate graph nodes;
   a star sums over sequences of distinct intermediate nodes, but each
   nested evaluation starts its own distinctness bookkeeping. *)
let alp_counter g r =
  if Elg.nb_nodes g > 62 then
    invalid_arg "Rpq_count.bag_count: at most 62 nodes (bitmask visited sets)";
  let tree = index_subexprs r in
  let memo : (int * int * int, Nat_big.t) Hashtbl.t = Hashtbl.create 256 in
  let star_memo : (int * int * int * int, Nat_big.t) Hashtbl.t =
    Hashtbl.create 256
  in
  let edge_count x y sym =
    List.length
      (List.filter
         (fun e -> Sym.matches sym (Elg.label g e))
         (Elg.edges_between g x y))
  in
  let rec count t x y =
    match Hashtbl.find_opt memo (t.id, x, y) with
    | Some c -> c
    | None ->
        let result =
          match (t.expr, t.children) with
          | Regex.Eps, _ -> if x = y then Nat_big.one else Nat_big.zero
          | Regex.Atom sym, _ -> Nat_big.of_int (edge_count x y sym)
          | Regex.Seq _, [ t1; t2 ] ->
              Elg.fold_nodes
                (fun z acc ->
                  let c1 = count t1 x z in
                  if Nat_big.is_zero c1 then acc
                  else Nat_big.add acc (Nat_big.mul c1 (count t2 z y)))
                g Nat_big.zero
          | Regex.Alt _, [ t1; t2 ] -> Nat_big.add (count t1 x y) (count t2 x y)
          | Regex.Star _, [ t1 ] -> star t1 x y (1 lsl x)
          | (Regex.Seq _ | Regex.Alt _ | Regex.Star _), _ -> assert false
        in
        Hashtbl.add memo (t.id, x, y) result;
        result
  and star t1 cur y visited =
    match Hashtbl.find_opt star_memo (t1.id, cur, y, visited) with
    | Some c -> c
    | None ->
        let base = if cur = y then Nat_big.one else Nat_big.zero in
        let result =
          Elg.fold_nodes
            (fun z acc ->
              if visited land (1 lsl z) <> 0 then acc
              else
                let c1 = count t1 cur z in
                if Nat_big.is_zero c1 then acc
                else
                  Nat_big.add acc
                    (Nat_big.mul c1 (star t1 z y (visited lor (1 lsl z)))))
            g base
        in
        Hashtbl.add star_memo (t1.id, cur, y, visited) result;
        result
  in
  count tree

let bag_count g r ~src ~tgt = alp_counter g r src tgt

let bag_count_total g r =
  let count = alp_counter g r in
  Elg.fold_nodes
    (fun u acc ->
      Elg.fold_nodes (fun v acc -> Nat_big.add acc (count u v)) g acc)
    g Nat_big.zero
