(* All search loops consult a [Governor.t]: one tick per product-edge
   relaxation (BFS) or per extension (naive search), one emit per answer.
   The unbounded API runs the same code under [Governor.unlimited]. *)

let bfs_reachable gov product start_states =
  let n = Product.nb_states product in
  let seen = Array.make (max 1 n) false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if not seen.(s) then begin
        seen.(s) <- true;
        Queue.add s queue
      end)
    start_states;
  while not (Queue.is_empty queue) && Governor.ok gov do
    let s = Queue.pop queue in
    List.iter
      (fun (_, s') ->
        if Governor.tick gov && not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' queue
        end)
      (Product.out product s)
  done;
  seen

let targets_of_seen product seen =
  let acc = ref [] in
  for s = Product.nb_states product - 1 downto 0 do
    if seen.(s) && Product.is_final product s then begin
      let v, _ = Product.decode product s in
      acc := v :: !acc
    end
  done;
  List.sort_uniq Stdlib.compare !acc

let from_source_product ?(gov = Governor.unlimited ()) product ~src =
  let seen = bfs_reachable gov product (Product.initials_at product src) in
  targets_of_seen product seen

let from_source_bounded gov g r ~src =
  let product = Product.make g (Nfa.of_regex r) in
  let targets = from_source_product ~gov product ~src in
  Governor.seal gov (Governor.take_results gov targets)

let from_source g r ~src =
  Governor.value (from_source_bounded (Governor.unlimited ()) g r ~src)

let pairs_nfa_gov gov g nfa =
  let product = Product.make g nfa in
  let acc = ref [] in
  (try
     Elg.fold_nodes
       (fun u () ->
         if not (Governor.ok gov) then raise Exit;
         List.iter
           (fun v -> if Governor.emit gov then acc := (u, v) :: !acc)
           (from_source_product ~gov product ~src:u))
       g ()
   with Exit -> ());
  List.sort_uniq Stdlib.compare !acc

let pairs_nfa_bounded gov g nfa = Governor.seal gov (pairs_nfa_gov gov g nfa)

let pairs_nfa g nfa =
  Governor.value (pairs_nfa_bounded (Governor.unlimited ()) g nfa)

let pairs_bounded gov g r = pairs_nfa_bounded gov g (Nfa.of_regex r)

let pairs g r = pairs_nfa g (Nfa.of_regex r)

let check g r ~src ~tgt = List.mem tgt (from_source g r ~src)

let shortest_witness_gov gov g r ~src ~tgt =
  let product = Product.make g (Nfa.of_regex r) in
  let n = Product.nb_states product in
  let pred = Array.make (max 1 n) None in
  let seen = Array.make (max 1 n) false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      seen.(s) <- true;
      Queue.add s queue)
    (Product.initials_at product src)
  |> ignore;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) && Governor.ok gov do
    let s = Queue.pop queue in
    let v, _ = Product.decode product s in
    if v = tgt && Product.is_final product s then found := Some s
    else
      List.iter
        (fun (e, s') ->
          if Governor.tick gov && not seen.(s') then begin
            seen.(s') <- true;
            pred.(s') <- Some (e, s);
            Queue.add s' queue
          end)
        (Product.out product s)
  done;
  match !found with
  | None -> None
  | Some s ->
      let rec rebuild s acc =
        match pred.(s) with
        | None ->
            let v, _ = Product.decode product s in
            Path.N v :: acc
        | Some (e, s0) ->
            let v, _ = Product.decode product s in
            rebuild s0 (Path.E e :: Path.N v :: acc)
      in
      Some (Path.of_objs_exn g (rebuild s []))

let shortest_witness_bounded gov g r ~src ~tgt =
  Governor.seal gov (shortest_witness_gov gov g r ~src ~tgt)

let shortest_witness g r ~src ~tgt =
  Governor.value
    (shortest_witness_bounded (Governor.unlimited ()) g r ~src ~tgt)

let pairs_naive_gov gov g r ~max_len =
  let results = ref [] in
  let matches sym lbl = Sym.matches sym lbl in
  let rec extend u v word len =
    if Governor.tick gov then begin
      if Regex.matches_word ~matches r (List.rev word) then
        results := (u, v) :: !results;
      if len < max_len then
        List.iter
          (fun e -> extend u (Elg.tgt g e) (Elg.label g e :: word) (len + 1))
          (Elg.out_edges g v)
    end
  in
  Elg.fold_nodes (fun u () -> extend u u [] 0) g ();
  List.sort_uniq Stdlib.compare !results

let pairs_naive_bounded gov g r ~max_len =
  Governor.seal gov (pairs_naive_gov gov g r ~max_len)

let pairs_naive g r ~max_len =
  Governor.value (pairs_naive_bounded (Governor.unlimited ()) g r ~max_len)
