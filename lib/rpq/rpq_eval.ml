(* All search loops consult a [Governor.t]: one tick per product-edge
   relaxation (charged per adjacency span in the BFS engines), one emit
   per answer.  The unbounded API runs the same code under
   [Governor.unlimited].

   Multi-source evaluation ([pairs]/[pairs_nfa]) chunks source nodes
   across a [Pool] of domains: the product is built once and shared
   read-only, each worker owns its scratch (stamped visited arrays, a
   flat int queue, an answer buffer), and the governor's atomic counters
   keep the Complete/Partial contract sound under parallelism. *)

(* Answers are collected as [u * n + v] codes in {!Ibuf}s.  The scalar
   engine merges per-worker buffers and sorts once at the end; the bitset
   kernel ({!Rpq_bitset}, on by default, [GQ_BITSET=off] to revert)
   returns per-block buffers that are already globally ordered. *)

(* Per-worker BFS scratch, reused across sources: stamping replaces the
   per-source [Array.make _ false] of the old engine, so a search costs
   memory proportional to what it reaches, not to the product size. *)
type scratch = {
  seen : int array; (* product state -> stamp of last visit *)
  queue : int array; (* flat BFS queue; states enter at most once *)
  tmark : int array; (* graph node -> stamp when reported as target *)
  mutable stamp : int;
}

let scratch_of product =
  {
    seen = Array.make (max 1 (Product.nb_states product)) 0;
    queue = Array.make (max 1 (Product.nb_states product)) 0;
    tmark = Array.make (max 1 (Elg.nb_nodes (Product.graph product))) 0;
    stamp = 0;
  }

(* Per-BFS telemetry, accumulated in plain ints and flushed to the
   (possibly shared, atomic) sink counters once per source — the hot
   loop pays nothing beyond the additions it already does. *)
type bfs_stats = {
  transitions : int -> unit; (* rpq.product_transitions *)
  states : int -> unit; (* rpq.states_visited *)
  sources : int -> unit; (* rpq.sources *)
}

let bfs_stats_of obs =
  {
    transitions = Obs.counter_fn obs "rpq.product_transitions";
    states = Obs.counter_fn obs "rpq.states_visited";
    sources = Obs.counter_fn obs "rpq.sources";
  }

(* BFS over the product from [src]'s initial states, invoking
   [on_target v] once per graph node [v] reached in an accepting state. *)
let bfs_targets gov stats product sc ~src on_target =
  (* One failpoint check per source BFS: cheap enough to leave in the
     multi-source loop, frequent enough that a probabilistic schedule
     hits mid-evaluation. *)
  Failpoint.check "rpq.bfs.step";
  sc.stamp <- sc.stamp + 1;
  let stamp = sc.stamp in
  let head = ref 0 and tail = ref 0 in
  let visit s =
    if sc.seen.(s) <> stamp then begin
      sc.seen.(s) <- stamp;
      sc.queue.(!tail) <- s;
      incr tail;
      if Product.is_final product s then begin
        let v, _ = Product.decode product s in
        if sc.tmark.(v) <> stamp then begin
          sc.tmark.(v) <- stamp;
          on_target v
        end
      end
    end
  in
  List.iter visit (Product.initials_at product src);
  let relaxed = ref 0 in
  let running = ref (Governor.ok gov) in
  while !running && !head < !tail do
    let s = sc.queue.(!head) in
    incr head;
    let lo, hi = Product.out_span product s in
    if Governor.tick_many gov (hi - lo) then begin
      relaxed := !relaxed + (hi - lo);
      for i = lo to hi - 1 do
        visit (Product.csr_succ product i)
      done
    end
    else running := false
  done;
  stats.sources 1;
  stats.transitions !relaxed;
  stats.states !tail

let from_source_product ?(gov = Governor.unlimited ()) ?(obs = Obs.none)
    product ~src =
  let sc = scratch_of product in
  let acc = ref [] in
  bfs_targets gov (bfs_stats_of obs) product sc ~src (fun v -> acc := v :: !acc);
  List.sort_uniq Stdlib.compare !acc

let from_source_bounded ?(obs = Obs.none) gov g r ~src =
  Obs.span obs "rpq.eval" @@ fun () ->
  let product = Product.make ~obs g (Nfa.of_regex r) in
  let targets = from_source_product ~gov ~obs product ~src in
  let kept = Governor.take_results gov targets in
  Obs.add obs "rpq.answers" (List.length kept);
  Governor.seal gov kept

let from_source ?obs g r ~src =
  Governor.value (from_source_bounded ?obs (Governor.unlimited ()) g r ~src)

(* --- multi-source prelude ------------------------------------------------ *)

(* Candidate pruning, ε self-pairs and the width decision, shared by the
   pairs / fold / count entry points. *)
type msetup = {
  ms_n : int; (* graph nodes *)
  ms_cand : int array; (* candidate sources, ascending *)
  ms_ncand : int;
  ms_selfs : Ibuf.t; (* admitted ε self-pair codes, ascending *)
  ms_pool : Pool.t;
  ms_width : int;
}

(* Source pruning: a BFS from [u] can only leave its initial states
   through an out-edge of [u] matching a symbol on some initial-state
   transition.  Nodes without one contribute at most the ε self-pair
   (when an initial state is accepting), which is emitted directly — no
   BFS, no scratch touch — and first, like the scalar engine always
   did. *)
let msetup ?pool ~obs gov product =
  let g = Product.graph product in
  let nfa = Product.nfa product in
  let n = Elg.nb_nodes g in
  let eps_accepting = List.exists (Nfa.is_final nfa) nfa.Nfa.initials in
  let nl = Elg.nb_labels g in
  let lbl_ok = Array.make (max 1 nl) false in
  List.iter
    (fun q0 ->
      List.iter
        (fun (sym, _) ->
          for l = 0 to nl - 1 do
            if (not lbl_ok.(l)) && Sym.matches sym (Elg.label_name g l) then
              lbl_ok.(l) <- true
          done)
        nfa.Nfa.delta.(q0))
    nfa.Nfa.initials;
  let is_cand = Array.make (max 1 n) false in
  let cand = Array.make (max 1 n) 0 in
  let ncand = ref 0 in
  for u = 0 to n - 1 do
    let lo, hi = Elg.out_span g u in
    let i = ref lo in
    while (not is_cand.(u)) && !i < hi do
      if lbl_ok.(Elg.edge_label_id g (Elg.csr_out_edge g !i)) then
        is_cand.(u) <- true;
      incr i
    done;
    if is_cand.(u) then begin
      cand.(!ncand) <- u;
      incr ncand
    end
  done;
  let ncand = !ncand in
  Obs.add obs "rpq.pruned_sources" (n - ncand);
  let use_bitset = Rpq_bitset.enabled () in
  (* An explicit pool pins its width (determinism-across-widths tests,
     --domains); otherwise the adaptive policy picks serial under the
     work threshold, never more domains than the hardware has, and never
     a width it has measured losing to serial. *)
  let pool, width =
    match pool with
    | Some p ->
        let w = min (Pool.size p) (max 1 n) in
        ignore (Par_policy.pinned ~width:w);
        (p, w)
    | None ->
        let p = Pool.default () in
        let kernel =
          if use_bitset then Par_policy.Bitset else Par_policy.Scalar
        in
        let d =
          Par_policy.decide ~obs ~kernel ~max_width:(Pool.size p)
            ~sources:ncand
            ~product_edges:(Product.nb_product_edges product) ()
        in
        (p, d.Par_policy.width)
  in
  Obs.add obs "rpq.par_width" width;
  let selfs = Ibuf.create () in
  if eps_accepting && ncand < n then
    for u = 0 to n - 1 do
      if (not is_cand.(u)) && Governor.emit gov then
        Ibuf.push selfs ((u * n) + u)
    done;
  { ms_n = n; ms_cand = cand; ms_ncand = ncand; ms_selfs = selfs;
    ms_pool = pool; ms_width = width }

let record_run ~use_bitset ~width ~sources product ~t0 =
  Par_policy.record
    ~kernel:(if use_bitset then Par_policy.Bitset else Par_policy.Scalar)
    ~width ~sources
    ~product_edges:(Product.nb_product_edges product)
    ~elapsed:(Par_policy.now () -. t0) ()

(* Scalar multi-source run into per-worker buffers (codes, unsorted). *)
let scalar_codes ~obs gov product ms =
  let n = ms.ms_n in
  let stats = bfs_stats_of obs in
  let width = ms.ms_width in
  let bufs = Array.init width (fun _ -> Ibuf.create ()) in
  let next = Atomic.make 0 in
  let chunk = max 8 (ms.ms_ncand / (8 * width)) in
  Obs.span obs "rpq.bfs" (fun () ->
      Pool.fork_join ~obs ms.ms_pool ~width (fun w ->
          let sc = scratch_of product in
          let buf = bufs.(w) in
          let rec loop () =
            let lo = Atomic.fetch_and_add next chunk in
            if lo < ms.ms_ncand && Governor.ok gov then begin
              let hi = min ms.ms_ncand (lo + chunk) in
              for c = lo to hi - 1 do
                let u = ms.ms_cand.(c) in
                if Governor.ok gov then
                  bfs_targets gov stats product sc ~src:u (fun v ->
                      if Governor.emit gov then Ibuf.push buf ((u * n) + v))
              done;
              loop ()
            end
          in
          loop ()));
  bufs

(* Per-worker scalar buffers (plus the pre-sorted selfs) merged into one
   globally sorted code array. *)
let scalar_sorted_codes ~obs gov product ms =
  let bufs = scalar_codes ~obs gov product ms in
  Obs.span obs "rpq.merge" @@ fun () ->
  let total =
    ms.ms_selfs.Ibuf.len
    + Array.fold_left (fun a b -> a + b.Ibuf.len) 0 bufs
  in
  Obs.add obs "rpq.answers" total;
  let all = Array.make (max 1 total) 0 in
  Array.blit ms.ms_selfs.Ibuf.data 0 all 0 ms.ms_selfs.Ibuf.len;
  let pos = ref ms.ms_selfs.Ibuf.len in
  Array.iter
    (fun b ->
      Array.blit b.Ibuf.data 0 all !pos b.Ibuf.len;
      pos := !pos + b.Ibuf.len)
    bufs;
  (* Codes sort exactly like (u, v) pairs; sources never collide, so
     the merge needs no dedup. *)
  let all = Array.sub all 0 total in
  Array.sort (fun (a : int) b -> Stdlib.compare a b) all;
  all

let pairs_product_gov ?pool ?(obs = Obs.none) gov product =
  Obs.span obs "rpq.eval" @@ fun () ->
  let n = Elg.nb_nodes (Product.graph product) in
  if n = 0 then []
  else begin
    let ms = msetup ?pool ~obs gov product in
    let use_bitset = Rpq_bitset.enabled () in
    let t0 = Par_policy.now () in
    if use_bitset then begin
      let blocks =
        Rpq_bitset.pairs_codes ~obs ~pool:ms.ms_pool ~width:ms.ms_width gov
          product ~cand:ms.ms_cand ~ncand:ms.ms_ncand
      in
      record_run ~use_bitset ~width:ms.ms_width ~sources:ms.ms_ncand product
        ~t0;
      Obs.span obs "rpq.merge" @@ fun () ->
      let btotal = Array.fold_left (fun a b -> a + b.Ibuf.len) 0 blocks in
      Obs.add obs "rpq.answers" (btotal + ms.ms_selfs.Ibuf.len);
      (* Both streams are already sorted (blocks cover ascending source
         ranges and are sorted by construction; self-pairs were emitted
         in node order): build the result list back to front with a
         2-way merge straight off the per-block buffers — no
         concatenated copy of the codes. *)
      let sd = ms.ms_selfs.Ibuf.data in
      let si = ref (ms.ms_selfs.Ibuf.len - 1) in
      let bi = ref (Array.length blocks - 1) in
      let ji = ref 0 in
      let rec settle () =
        if !bi >= 0 then begin
          ji := blocks.(!bi).Ibuf.len - 1;
          if !ji < 0 then begin
            decr bi;
            settle ()
          end
        end
      in
      settle ();
      let acc = ref [] in
      (* Unpack codes without dividing per answer: consecutive codes
         share a source run, so the division only happens once per
         source segment ([ulim] = 0 forces it on the first answer). *)
      let u = ref 0 and ubase = ref 0 and ulim = ref 0 in
      while !si >= 0 || !bi >= 0 do
        let code =
          if
            !bi < 0
            || (!si >= 0 && sd.(!si) > blocks.(!bi).Ibuf.data.(!ji))
          then begin
            let c = sd.(!si) in
            decr si;
            c
          end
          else begin
            let c = blocks.(!bi).Ibuf.data.(!ji) in
            decr ji;
            if !ji < 0 then begin
              decr bi;
              settle ()
            end;
            c
          end
        in
        if code < !ubase || code >= !ulim then begin
          u := code / n;
          ubase := !u * n;
          ulim := !ubase + n
        end;
        acc := (!u, code - !ubase) :: !acc
      done;
      !acc
    end
    else begin
      let all = scalar_sorted_codes ~obs gov product ms in
      record_run ~use_bitset ~width:ms.ms_width ~sources:ms.ms_ncand product
        ~t0;
      let rec build i acc =
        if i < 0 then acc
        else build (i - 1) ((all.(i) / n, all.(i) mod n) :: acc)
      in
      build (Array.length all - 1) []
    end
  end

(* Streaming consumption: fold [f] over the answers in globally sorted
   order without materializing the pair list — under the kernel the
   per-block buffers are visited in place (allocation stays O(blocks)
   however many answers there are). *)
let fold_pairs_product_gov ?pool ?(obs = Obs.none) gov product ~init ~f =
  Obs.span obs "rpq.eval" @@ fun () ->
  let n = Elg.nb_nodes (Product.graph product) in
  if n = 0 then init
  else begin
    let ms = msetup ?pool ~obs gov product in
    let use_bitset = Rpq_bitset.enabled () in
    let t0 = Par_policy.now () in
    if use_bitset then begin
      let blocks =
        Rpq_bitset.pairs_codes ~obs ~pool:ms.ms_pool ~width:ms.ms_width gov
          product ~cand:ms.ms_cand ~ncand:ms.ms_ncand
      in
      record_run ~use_bitset ~width:ms.ms_width ~sources:ms.ms_ncand product
        ~t0;
      Obs.span obs "rpq.merge" @@ fun () ->
      let btotal = Array.fold_left (fun a b -> a + b.Ibuf.len) 0 blocks in
      Obs.add obs "rpq.answers" (btotal + ms.ms_selfs.Ibuf.len);
      (* Forward 2-way merge of the self stream and the block stream. *)
      let sd = ms.ms_selfs.Ibuf.data and slen = ms.ms_selfs.Ibuf.len in
      let si = ref 0 in
      let acc = ref init in
      (* Division-free unpacking, as in the pair merge: recompute the
         source only when a code leaves the current source segment. *)
      let u = ref 0 and ubase = ref 0 and ulim = ref 0 in
      let apply code =
        if code < !ubase || code >= !ulim then begin
          u := code / n;
          ubase := !u * n;
          ulim := !ubase + n
        end;
        acc := f !acc !u (code - !ubase)
      in
      Array.iter
        (fun b ->
          let d = b.Ibuf.data in
          for j = 0 to b.Ibuf.len - 1 do
            let code = Array.unsafe_get d j in
            while !si < slen && sd.(!si) < code do
              apply sd.(!si);
              incr si
            done;
            apply code
          done)
        blocks;
      while !si < slen do
        apply sd.(!si);
        incr si
      done;
      !acc
    end
    else begin
      let all = scalar_sorted_codes ~obs gov product ms in
      record_run ~use_bitset ~width:ms.ms_width ~sources:ms.ms_ncand product
        ~t0;
      Array.fold_left (fun acc code -> f acc (code / n) (code mod n)) init all
    end
  end

(* Count of distinct answers without materializing any: the kernel's
   count-only mode under the bitset engine (O(blocks) allocation), a
   counting BFS sweep under the scalar fallback. *)
let count_pairs_product_gov ?pool ?(obs = Obs.none) gov product =
  Obs.span obs "rpq.eval" @@ fun () ->
  let n = Elg.nb_nodes (Product.graph product) in
  if n = 0 then 0
  else begin
    let ms = msetup ?pool ~obs gov product in
    if Rpq_bitset.enabled () then
      ms.ms_selfs.Ibuf.len
      + Rpq_bitset.count_pairs ~obs ~pool:ms.ms_pool ~width:ms.ms_width gov
          product ~cand:ms.ms_cand ~ncand:ms.ms_ncand
    else begin
      let stats = bfs_stats_of obs in
      let sc = scratch_of product in
      let total = ref ms.ms_selfs.Ibuf.len in
      let c = ref 0 in
      while !c < ms.ms_ncand && Governor.ok gov do
        bfs_targets gov stats product sc ~src:ms.ms_cand.(!c) (fun _ ->
            if Governor.emit gov then incr total);
        incr c
      done;
      Obs.add obs "rpq.answers" !total;
      !total
    end
  end

let pairs_nfa_gov ?pool ?obs gov g nfa =
  let product = Product.make ?obs g nfa in
  pairs_product_gov ?pool ?obs gov product

let pairs_product_bounded ?pool ?obs gov product =
  Governor.seal gov (pairs_product_gov ?pool ?obs gov product)

let count_pairs_product_bounded ?pool ?obs gov product =
  Governor.seal gov (count_pairs_product_gov ?pool ?obs gov product)

let count_pairs_bounded ?pool ?obs gov g r =
  count_pairs_product_bounded ?pool ?obs gov
    (Product.make ?obs g (Nfa.of_regex r))

let count_pairs ?pool ?obs g r =
  Governor.value (count_pairs_bounded ?pool ?obs (Governor.unlimited ()) g r)

let pairs_nfa_bounded ?pool ?obs gov g nfa =
  Governor.seal gov (pairs_nfa_gov ?pool ?obs gov g nfa)

let pairs_nfa ?pool ?obs g nfa =
  Governor.value (pairs_nfa_bounded ?pool ?obs (Governor.unlimited ()) g nfa)

let pairs_bounded ?pool ?obs gov g r =
  pairs_nfa_bounded ?pool ?obs gov g (Nfa.of_regex r)

let pairs ?pool ?obs g r = pairs_nfa ?pool ?obs g (Nfa.of_regex r)

(* Early-exit reachability: BFS the product but stop at the first
   accepting (tgt, q) instead of materializing the full answer set.
   Under the kernel this is {!Rpq_bitset.check}, the first-k fast path
   (probe between levels, no materialization, direction switch applies);
   the scalar loop below is the [GQ_BITSET=off] fallback. *)
let check_scalar gov product ~src ~tgt =
  let n = Product.nb_states product in
  let seen = Array.make (max 1 n) false in
  let queue = Array.make (max 1 n) 0 in
  let head = ref 0 and tail = ref 0 in
  let found = ref false in
  let visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      if Product.is_final product s && fst (Product.decode product s) = tgt
      then found := true;
      queue.(!tail) <- s;
      incr tail
    end
  in
  List.iter visit (Product.initials_at product src);
  while (not !found) && !head < !tail && Governor.ok gov do
    let s = queue.(!head) in
    incr head;
    let lo, hi = Product.out_span product s in
    if Governor.tick_many gov (hi - lo) then begin
      let i = ref lo in
      while (not !found) && !i < hi do
        visit (Product.csr_succ product !i);
        incr i
      done
    end
  done;
  Governor.seal gov !found

let check_bounded ?(obs = Obs.none) gov g r ~src ~tgt =
  let product = Product.make ~obs g (Nfa.of_regex r) in
  if Rpq_bitset.enabled () then
    Governor.seal gov (Rpq_bitset.check ~obs gov product ~src ~tgt)
  else check_scalar gov product ~src ~tgt

let check g r ~src ~tgt =
  Governor.value (check_bounded (Governor.unlimited ()) g r ~src ~tgt)

let shortest_witness_gov gov g r ~src ~tgt =
  let product = Product.make g (Nfa.of_regex r) in
  let n = Product.nb_states product in
  let pred = Array.make (max 1 n) None in
  let seen = Array.make (max 1 n) false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      seen.(s) <- true;
      Queue.add s queue)
    (Product.initials_at product src);
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) && Governor.ok gov do
    let s = Queue.pop queue in
    let v, _ = Product.decode product s in
    if v = tgt && Product.is_final product s then found := Some s
    else
      Product.iter_out product s (fun e s' ->
          if Governor.tick gov && not seen.(s') then begin
            seen.(s') <- true;
            pred.(s') <- Some (e, s);
            Queue.add s' queue
          end)
  done;
  match !found with
  | None -> None
  | Some s ->
      let rec rebuild s acc =
        match pred.(s) with
        | None ->
            let v, _ = Product.decode product s in
            Path.N v :: acc
        | Some (e, s0) ->
            let v, _ = Product.decode product s in
            rebuild s0 (Path.E e :: Path.N v :: acc)
      in
      Some (Path.of_objs_exn g (rebuild s []))

let shortest_witness_bounded gov g r ~src ~tgt =
  Governor.seal gov (shortest_witness_gov gov g r ~src ~tgt)

let shortest_witness g r ~src ~tgt =
  Governor.value
    (shortest_witness_bounded (Governor.unlimited ()) g r ~src ~tgt)

let pairs_naive_gov gov g r ~max_len =
  let results = ref [] in
  let matches sym lbl = Sym.matches sym lbl in
  let rec extend u v word len =
    if Governor.tick gov then begin
      if Regex.matches_word ~matches r (List.rev word) then
        results := (u, v) :: !results;
      if len < max_len then
        List.iter
          (fun e -> extend u (Elg.tgt g e) (Elg.label g e :: word) (len + 1))
          (Elg.out_edges g v)
    end
  in
  Elg.fold_nodes (fun u () -> extend u u [] 0) g ();
  List.sort_uniq Stdlib.compare !results

let pairs_naive_bounded gov g r ~max_len =
  Governor.seal gov (pairs_naive_gov gov g r ~max_len)

let pairs_naive g r ~max_len =
  Governor.value (pairs_naive_bounded (Governor.unlimited ()) g r ~max_len)
