(* The bit-parallel multi-source RPQ kernel.

   Sources are packed 63 per native word: block [b] covers sources
   [cand.(63*b) .. cand.(63*b + 62)], and every product state carries
   packed words — [visited] (which packed sources have reached it) and a
   frontier word — so one sweep advances *all* packed sources at once:
   the all-pairs BFS loop becomes a blocked bit-matrix product over the
   boolean semiring, the same shape the matrix oracle in the
   differential suite pins.

   The BFS is level-synchronous and direction-optimizing.  Each level
   either *pushes* (scan the frontier states' out-edges, scatter bits
   forward) or *pulls* (scan incomplete states' in-edges over the
   reverse CSR, gather frontier bits with one word load each and stop as
   soon as the missing bits are covered).  The Beamer-style switch
   compares the frontier's out-edge volume against the out-edge volume
   still unexplored: pull pays when the frontier is a constant fraction
   of the graph, which on RPQ products happens on closure-style starred
   queries where whole levels saturate.  [GQ_PULL_THRESHOLD] tunes the
   ratio or pins a direction; per-level decisions are visible as
   [rpq.bitset.push_sweeps] / [pull_sweeps] / [switches].

   Budgets: one [Governor.tick_many] per adjacency span scanned
   (either direction), answers pass [Governor.emit_many] — the same
   soundness contract as the scalar engine.  [visited] bits are true
   reachability facts whatever the interleaving or direction, so a
   budget trip mid-run still yields a sound Partial subset.

   Answers are emitted per block in node order with no sort: a push/pull
   run leaves accepting bits in [visited]; emission either scans nodes
   in order (dense blocks) or gathers per-node answer words and walks an
   answered-node *bitmap* in word order (sparse blocks) — both produce
   per-source target buffers already ascending, so concatenating
   per-block buffers in block order yields globally sorted answers.
   This replaced a per-source sort that cost ~4x the BFS itself at 2M
   answers.  Count-only and probe modes skip materialization entirely:
   they touch O(blocks) memory however many answers exist.

   Blocks are distributed over the [Pool] by an atomic claim counter;
   each worker owns one scratch. *)

let word_bits = 63

(* --- GQ_BITSET escape hatch --------------------------------------------- *)

let enabled_override : bool option Atomic.t = Atomic.make None

let enabled_from_env () =
  match Sys.getenv_opt "GQ_BITSET" with
  | Some ("off" | "0" | "false" | "no") -> false
  | Some _ | None -> true

let enabled () =
  match Atomic.get enabled_override with
  | Some b -> b
  | None -> enabled_from_env ()

let set_enabled b = Atomic.set enabled_override (Some b)
let clear_enabled () = Atomic.set enabled_override None

(* --- push/pull policy ---------------------------------------------------- *)

type pull_mode = Adaptive of int | Always_push | Always_pull

(* Pull pays one linear pass over all product states plus the in-edges
   it actually scans, so it needs a dense frontier to win: switch when
   alpha * (frontier out-edges) >= (unexplored out-edges) + states.
   alpha = 12 lands close to Beamer's 1/14 edge-fraction rule once the
   early-exit saving of the gather loop is accounted for. *)
let default_pull_alpha = 12

let pull_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "push" | "off" | "never" | "0" -> Always_push
  | "pull" | "always" -> Always_pull
  | s -> (
      match int_of_string_opt s with
      | Some a -> Adaptive (max 1 a)
      | None -> Adaptive default_pull_alpha)

let pull_override : pull_mode option Atomic.t = Atomic.make None

let pull_mode_from_env () =
  match Sys.getenv_opt "GQ_PULL_THRESHOLD" with
  | Some s -> pull_mode_of_string s
  | None -> Adaptive default_pull_alpha

let pull_mode () =
  match Atomic.get pull_override with
  | Some m -> m
  | None -> pull_mode_from_env ()

let set_pull_mode m = Atomic.set pull_override (Some m)
let clear_pull_mode () = Atomic.set pull_override None

(* --- scratch ------------------------------------------------------------- *)

type scratch = {
  visited : int array; (* product state -> reached-by bits *)
  front : int array; (* product state -> current-level frontier bits *)
  front2 : int array; (* product state -> next-level frontier bits *)
  cur : Ibuf.t; (* states with front <> 0 *)
  nxt : Ibuf.t; (* states with front2 <> 0 *)
  touched : Ibuf.t; (* states with visited <> 0, for O(touched) clearing *)
  answord : int array; (* graph node -> accepting bits (OR over final qs) *)
  amask : int array; (* bitmap over graph nodes: answord.(v) <> 0 *)
  tbufs : Ibuf.t array; (* per packed source: target nodes, ascending *)
  fmask : Bytes.t; (* product state -> is accepting (emission scans run
                      over millions of touched states; a byte load beats
                      the [mod nq] behind [Product.is_final]) *)
}

let scratch_of product =
  let ns = max 1 (Product.nb_states product) in
  let n = max 1 (Elg.nb_nodes (Product.graph product)) in
  let nq = Product.nb_automaton_states product in
  let fqs = Product.final_qs product in
  let fmask = Bytes.make ns '\000' in
  for v = 0 to Elg.nb_nodes (Product.graph product) - 1 do
    Array.iter (fun q -> Bytes.unsafe_set fmask ((v * nq) + q) '\001') fqs
  done;
  {
    visited = Array.make ns 0;
    front = Array.make ns 0;
    front2 = Array.make ns 0;
    cur = Ibuf.create ();
    nxt = Ibuf.create ();
    touched = Ibuf.create ();
    answord = Array.make n 0;
    amask = Array.make ((n + word_bits - 1) / word_bits) 0;
    tbufs = Array.init word_bits (fun _ -> Ibuf.create ());
    fmask;
  }

(* Index of the single set bit of [b] (0..62), by mask cascade — the
   stdlib has no ctz, and a per-bit loop would pay up to 62 iterations
   per answer. *)
let bit_index b =
  let n = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    n := 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr n;
  !n

(* Set bits of [w] (Kernighan's loop: O(answers), no 64-bit constants —
   OCaml ints are 63-bit, so SWAR masks don't fit a literal). *)
let popcount w =
  let c = ref 0 and w = ref w in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr c
  done;
  !c

type stats = {
  sweeps : int -> unit; (* rpq.bitset.sweeps *)
  words : int -> unit; (* rpq.bitset.word_transitions *)
  states : int -> unit; (* rpq.states_visited *)
  pull_sweeps : int -> unit; (* rpq.bitset.pull_sweeps *)
  push_sweeps : int -> unit; (* rpq.bitset.push_sweeps *)
  switches : int -> unit; (* rpq.bitset.switches *)
  materialized : int -> unit; (* rpq.bitset.materialized *)
}

let stats_of obs =
  {
    sweeps = Obs.counter_fn obs "rpq.bitset.sweeps";
    words = Obs.counter_fn obs "rpq.bitset.word_transitions";
    states = Obs.counter_fn obs "rpq.states_visited";
    pull_sweeps = Obs.counter_fn obs "rpq.bitset.pull_sweeps";
    push_sweeps = Obs.counter_fn obs "rpq.bitset.push_sweeps";
    switches = Obs.counter_fn obs "rpq.bitset.switches";
    materialized = Obs.counter_fn obs "rpq.bitset.materialized";
  }

(* What a block does with its answers.  [Emit] hands each packed source
   its target buffer (ascending, deduplicated; valid only during the
   callback — the buffer is scratch and is reused).  [Count] is called
   at most once per block with the admitted answer count and never
   materializes a target: O(blocks) allocation however many answers.
   [Probe] skips emission entirely; callers inspect reachability through
   [stop]. *)
type mode =
  | Emit of (k:int -> targets:Ibuf.t -> admitted:int -> unit)
  | Count of (int -> unit)
  | Probe

(* --- one block ----------------------------------------------------------- *)

(* Run packed sources [cand.(lo) .. cand.(hi-1)] (hi - lo <= 63) to
   fixpoint or budget trip, level-synchronously, then emit per [mode].
   [stop], when given, is polled between levels: returning [true] ends
   the BFS early with the bits found so far (the first-k fast path). *)
let run_block ?stop gov st product sc ~cand ~lo ~hi ~mode =
  (* Work on the raw CSR arrays and skip bounds checks: every index
     below is a product-state id (< length visited = length front) or a
     CSR position within [off.(s) .. off.(s+1)). *)
  let off, succ = Product.csr product in
  let visited = sc.visited in
  (* Clear the previous block's marks: O(what it touched).  Every state
     with frontier bits also has visited bits, so the touched list
     covers all three arrays. *)
  for i = 0 to sc.touched.Ibuf.len - 1 do
    let s = sc.touched.Ibuf.data.(i) in
    visited.(s) <- 0;
    sc.front.(s) <- 0;
    sc.front2.(s) <- 0
  done;
  Ibuf.clear sc.touched;
  Ibuf.clear sc.cur;
  Ibuf.clear sc.nxt;
  let nbits = hi - lo in
  let full = if nbits >= word_bits then -1 else (1 lsl nbits) - 1 in
  let ns = Product.nb_states product in
  (* Beamer bookkeeping: [m_f] = out-edges of the current frontier,
     [m_u] = out-edges of states not yet fully visited (upper bound on
     useful push work ahead). *)
  let m_f = ref 0 in
  let m_u = ref (Product.nb_product_edges product) in
  for k = 0 to nbits - 1 do
    let bit = 1 lsl k in
    List.iter
      (fun s ->
        if visited.(s) land bit = 0 then begin
          let was = visited.(s) in
          if was = 0 then Ibuf.push sc.touched s;
          let now = was lor bit in
          visited.(s) <- now;
          if now = full && was <> full then m_u := !m_u - (off.(s + 1) - off.(s));
          if sc.front.(s) = 0 then begin
            Ibuf.push sc.cur s;
            m_f := !m_f + (off.(s + 1) - off.(s))
          end;
          sc.front.(s) <- sc.front.(s) lor bit
        end)
      (Product.initials_at product cand.(lo + k))
  done;
  let policy = pull_mode () in
  let sweeps = ref 0 and words = ref 0 in
  let pulls = ref 0 and pushes = ref 0 and switches = ref 0 in
  let was_pull = ref false in
  let front = ref sc.front and front2 = ref sc.front2 in
  let cur = ref sc.cur and nxt = ref sc.nxt in
  let running = ref (Governor.ok gov) in
  (match stop with
  | Some f -> if f () then running := false
  | None -> ());
  while !running && (!cur).Ibuf.len > 0 do
    (* Same injection site as the scalar engine, at comparable density:
       once per level sweep; one branch when disarmed. *)
    Failpoint.check "rpq.bfs.step";
    let use_pull =
      match policy with
      | Always_push -> false
      | Always_pull -> true
      | Adaptive alpha -> alpha * !m_f >= !m_u + ns
    in
    if !pulls + !pushes > 0 && use_pull <> !was_pull then incr switches;
    was_pull := use_pull;
    let fr = !front and fr2 = !front2 in
    m_f := 0;
    if not use_pull then begin
      (* Push: scan the frontier's out-edges, scatter bits forward. *)
      incr pushes;
      let cd = (!cur).Ibuf.data and cl = (!cur).Ibuf.len in
      let i = ref 0 in
      while !running && !i < cl do
        let s = Array.unsafe_get cd !i in
        incr i;
        let f = Array.unsafe_get fr s in
        Array.unsafe_set fr s 0;
        let elo = Array.unsafe_get off s in
        let ehi = Array.unsafe_get off (s + 1) in
        if Governor.tick_many gov (ehi - elo) then begin
          incr sweeps;
          words := !words + (ehi - elo);
          for j = elo to ehi - 1 do
            let t = Array.unsafe_get succ j in
            let vt = Array.unsafe_get visited t in
            let add = f land lnot vt in
            if add <> 0 then begin
              if vt = 0 then Ibuf.push sc.touched t;
              let vt' = vt lor add in
              Array.unsafe_set visited t vt';
              if vt' = full then
                m_u :=
                  !m_u - (Array.unsafe_get off (t + 1) - Array.unsafe_get off t);
              let ft = Array.unsafe_get fr2 t in
              if ft = 0 then begin
                Ibuf.push !nxt t;
                m_f :=
                  !m_f + (Array.unsafe_get off (t + 1) - Array.unsafe_get off t)
              end;
              Array.unsafe_set fr2 t (ft lor add)
            end
          done
        end
        else running := false
      done
    end
    else begin
      (* Pull: scan incomplete states' in-edges, gather frontier bits,
         early-exit once the missing bits are covered.  Only the spans
         actually scanned are ticked. *)
      incr pulls;
      let rin_off, rin_pred = Product.rev_csr product in
      let s = ref 0 in
      while !running && !s < ns do
        let t = !s in
        let vt = Array.unsafe_get visited t in
        if vt <> full then begin
          let missing = full land lnot vt in
          let ilo = Array.unsafe_get rin_off t in
          let ihi = Array.unsafe_get rin_off (t + 1) in
          if ihi > ilo then begin
            let acc = ref 0 and j = ref ilo in
            while !j < ihi && missing land lnot !acc <> 0 do
              acc := !acc lor Array.unsafe_get fr (Array.unsafe_get rin_pred !j);
              incr j
            done;
            if Governor.tick_many gov (!j - ilo) then begin
              incr sweeps;
              words := !words + (!j - ilo);
              let add = missing land !acc in
              if add <> 0 then begin
                if vt = 0 then Ibuf.push sc.touched t;
                let vt' = vt lor add in
                Array.unsafe_set visited t vt';
                if vt' = full then
                  m_u :=
                    !m_u
                    - (Array.unsafe_get off (t + 1) - Array.unsafe_get off t);
                (* Every bit gained this level is next-level frontier;
                   [fr2.(t)] is clean (a state is scanned once per pull
                   sweep). *)
                Ibuf.push !nxt t;
                Array.unsafe_set fr2 t add;
                m_f :=
                  !m_f + (Array.unsafe_get off (t + 1) - Array.unsafe_get off t)
              end
            end
            else running := false
          end
        end;
        incr s
      done;
      (* Pull reads [fr] without consuming it: retire the level now. *)
      let cd = (!cur).Ibuf.data in
      for i = 0 to (!cur).Ibuf.len - 1 do
        Array.unsafe_set fr (Array.unsafe_get cd i) 0
      done
    end;
    (* Level barrier: next frontier becomes current; the spent arrays
       (all zeros after the sweep) become next-level scratch. *)
    let f = !front in
    front := !front2;
    front2 := f;
    let c = !cur in
    cur := !nxt;
    nxt := c;
    Ibuf.clear !nxt;
    (match stop with
    | Some f -> if !running && f () then running := false
    | None -> ())
  done;
  st.sweeps !sweeps;
  st.words !words;
  st.states sc.touched.Ibuf.len;
  st.pull_sweeps !pulls;
  st.push_sweeps !pushes;
  st.switches !switches;
  (* --- emission ---------------------------------------------------------- *)
  let n = Elg.nb_nodes (Product.graph product) in
  let nq = Product.nb_automaton_states product in
  let fqs = Product.final_qs product in
  let nf = Array.length fqs in
  (* When the block reached a constant fraction of the graph, scan every
     node's accepting rows in node order; otherwise gather per-node
     answer words from the touched list and walk an answered-node bitmap
     in word order.  Both orders are ascending by construction — no
     sort, and the OR across accepting rows dedups for free. *)
  let dense = 4 * sc.touched.Ibuf.len >= n in
  match mode with
  | Probe -> ()
  | Count add_count ->
      let total = ref 0 in
      let count_word w =
        if w <> 0 then begin
          let adm = Governor.emit_many gov (popcount w) in
          total := !total + adm
        end
      in
      if dense then
        for v = 0 to n - 1 do
          let base = v * nq in
          let w = ref 0 in
          for j = 0 to nf - 1 do
            w := !w lor Array.unsafe_get visited (base + Array.unsafe_get fqs j)
          done;
          count_word !w
        done
      else if nf = 1 then
        (* One accepting automaton state: distinct accepting product
           states are distinct nodes, no per-node dedup needed. *)
        for i = 0 to sc.touched.Ibuf.len - 1 do
          let s = sc.touched.Ibuf.data.(i) in
          if Bytes.unsafe_get sc.fmask s <> '\000' then count_word visited.(s)
        done
      else begin
        let aw = sc.answord and am = sc.amask in
        for i = 0 to sc.touched.Ibuf.len - 1 do
          let s = sc.touched.Ibuf.data.(i) in
          if Bytes.unsafe_get sc.fmask s <> '\000' then begin
            let v = s / nq in
            let old = aw.(v) in
            if old = 0 then
              am.(v / word_bits) <-
                am.(v / word_bits) lor (1 lsl (v mod word_bits));
            aw.(v) <- old lor visited.(s)
          end
        done;
        for wi = 0 to Array.length am - 1 do
          let mw = ref am.(wi) in
          if !mw <> 0 then begin
            am.(wi) <- 0;
            let base = wi * word_bits in
            while !mw <> 0 do
              let b = !mw land - !mw in
              mw := !mw lxor b;
              let v = base + bit_index b in
              count_word aw.(v);
              aw.(v) <- 0
            done
          end
        done
      end;
      if !total > 0 then add_count !total
  | Emit emit ->
      let tbufs = sc.tbufs in
      let distribute v w =
        let w = ref w in
        while !w <> 0 do
          let b = !w land - !w in
          w := !w lxor b;
          (* Inlined [Ibuf.push] fast path: one answer per set bit, so
             the per-element call + capacity check is the hot cost. *)
          let tb = Array.unsafe_get tbufs (bit_index b) in
          let len = tb.Ibuf.len in
          if len < Array.length tb.Ibuf.data then begin
            Array.unsafe_set tb.Ibuf.data len v;
            tb.Ibuf.len <- len + 1
          end
          else Ibuf.push tb v
        done
      in
      if dense then
        for v = 0 to n - 1 do
          let base = v * nq in
          let w = ref 0 in
          for j = 0 to nf - 1 do
            w := !w lor Array.unsafe_get visited (base + Array.unsafe_get fqs j)
          done;
          if !w <> 0 then distribute v !w
        done
      else begin
        let aw = sc.answord and am = sc.amask in
        for i = 0 to sc.touched.Ibuf.len - 1 do
          let s = sc.touched.Ibuf.data.(i) in
          if Bytes.unsafe_get sc.fmask s <> '\000' then begin
            let v = s / nq in
            let old = aw.(v) in
            if old = 0 then
              am.(v / word_bits) <-
                am.(v / word_bits) lor (1 lsl (v mod word_bits));
            aw.(v) <- old lor visited.(s)
          end
        done;
        for wi = 0 to Array.length am - 1 do
          let mw = ref am.(wi) in
          if !mw <> 0 then begin
            am.(wi) <- 0;
            let base = wi * word_bits in
            while !mw <> 0 do
              let b = !mw land - !mw in
              mw := !mw lxor b;
              let v = base + bit_index b in
              distribute v aw.(v);
              aw.(v) <- 0
            done
          end
        done
      end;
      for k = 0 to nbits - 1 do
        let tb = sc.tbufs.(k) in
        if tb.Ibuf.len > 0 then begin
          let admitted = Governor.emit_many gov tb.Ibuf.len in
          if admitted > 0 then begin
            st.materialized admitted;
            emit ~k ~targets:tb ~admitted
          end;
          Ibuf.clear tb
        end
      done

(* --- block fan-out ------------------------------------------------------- *)

let nb_blocks n_sources = (n_sources + word_bits - 1) / word_bits

(* Distribute blocks over the pool; [mode_of block lo] builds the
   block's emission mode, whose callbacks must be safe for concurrent
   calls on *different* blocks (each call stays within one block, and a
   block is owned by one worker). *)
let run_blocks ?(obs = Obs.none) ?stop ~pool ~width gov product ~cand ~ncand
    ~mode_of =
  let nblocks = nb_blocks ncand in
  if nblocks > 0 then begin
    Obs.add obs "rpq.sources" ncand;
    Obs.add obs "rpq.bitset.blocks" nblocks;
    let st = stats_of obs in
    let next = Atomic.make 0 in
    Obs.span obs "rpq.bfs" (fun () ->
        Pool.fork_join ~obs pool ~width (fun _ ->
            let sc = scratch_of product in
            let rec loop () =
              let b = Atomic.fetch_and_add next 1 in
              if b < nblocks && Governor.ok gov then begin
                let lo = b * word_bits in
                let hi = min ncand (lo + word_bits) in
                run_block ?stop gov st product sc ~cand ~lo ~hi
                  ~mode:(mode_of b lo);
                loop ()
              end
            in
            loop ()))
  end

(* --- entry points -------------------------------------------------------- *)

let pairs_codes ?obs ~pool ~width gov product ~cand ~ncand =
  let n = Elg.nb_nodes (Product.graph product) in
  let outs = Array.init (nb_blocks ncand) (fun _ -> Ibuf.create ()) in
  run_blocks ?obs ~pool ~width gov product ~cand ~ncand
    ~mode_of:(fun block lo ->
      let buf = outs.(block) in
      Emit
        (fun ~k ~targets ~admitted ->
          let base = cand.(lo + k) * n in
          let d = targets.Ibuf.data in
          let dst = Ibuf.reserve buf admitted in
          let pos = buf.Ibuf.len in
          for i = 0 to admitted - 1 do
            Array.unsafe_set dst (pos + i) (base + Array.unsafe_get d i)
          done;
          Ibuf.set_len buf (pos + admitted)));
  outs

let count_pairs ?(obs = Obs.none) ~pool ~width gov product ~cand ~ncand =
  let total = Atomic.make 0 in
  run_blocks ~obs ~pool ~width gov product ~cand ~ncand
    ~mode_of:(fun _ _ -> Count (fun c -> ignore (Atomic.fetch_and_add total c)));
  let total = Atomic.get total in
  Obs.add obs "rpq.answers" total;
  total

let targets ?(obs = Obs.none) ?pool gov product ~sources =
  let nsrc = Array.length sources in
  let pool, width =
    match pool with
    | Some p ->
        ignore (Par_policy.pinned ~width:(Pool.size p));
        (p, Pool.size p)
    | None ->
        let p = Pool.default () in
        let d =
          Par_policy.decide ~obs ~kernel:Par_policy.Bitset
            ~max_width:(Pool.size p) ~sources:nsrc
            ~product_edges:(Product.nb_product_edges product) ()
        in
        (p, d.Par_policy.width)
  in
  Obs.add obs "rpq.par_width" width;
  let out = Array.make nsrc [||] in
  let t0 = Par_policy.now () in
  run_blocks ~obs ~pool ~width gov product ~cand:sources ~ncand:nsrc
    ~mode_of:(fun _ lo ->
      Emit
        (fun ~k ~targets ~admitted -> out.(lo + k) <- Ibuf.sub targets admitted));
  Par_policy.record ~kernel:Par_policy.Bitset ~width ~sources:nsrc
    ~product_edges:(Product.nb_product_edges product)
    ~elapsed:(Par_policy.now () -. t0) ();
  let total = Array.fold_left (fun a l -> a + Array.length l) 0 out in
  Obs.add obs "rpq.answers" total;
  out

(* Single-source early-exit reachability: the first-k (k = 1) fast path
   behind [Rpq_eval.check].  Probes [tgt]'s accepting rows between
   levels — no emission, no materialization, and the direction switch
   applies (a closure query over a dense component completes in a
   handful of pull sweeps). *)
let check ?(obs = Obs.none) gov product ~src ~tgt =
  let st = stats_of obs in
  let sc = scratch_of product in
  let nq = Product.nb_automaton_states product in
  let fqs = Product.final_qs product in
  let found = ref false in
  let stop () =
    (not !found)
    && Array.exists (fun q -> sc.visited.((tgt * nq) + q) <> 0) fqs
    && begin
         found := true;
         true
       end
  in
  run_block ~stop gov st product sc ~cand:[| src |] ~lo:0 ~hi:1 ~mode:Probe;
  (* A trip before the probe fired could still have left the bit. *)
  if not !found then
    found := Array.exists (fun q -> sc.visited.((tgt * nq) + q) <> 0) fqs;
  !found
