(* The bit-parallel multi-source RPQ kernel.

   Sources are packed 63 per native word: block [b] covers sources
   [cand.(63*b) .. cand.(63*b + 62)], and every product state carries two
   words — [visited] (which packed sources have reached it) and [front]
   (which of those still have to be expanded from it).  Expanding a state
   advances *all* packed sources through its whole CSR adjacency span in
   one sweep: the all-pairs BFS loop becomes a blocked bit-matrix product
   over the boolean semiring, the same shape the matrix oracle in the
   differential suite pins.

   The worklist is monotone: a state enters the queue when [front] goes
   0 -> nonzero and leaves when popped ([front] reset to 0); bits only
   accumulate in [visited], so a popped state re-enters only when a
   *new* source reaches it.  Per block the total work is bounded by
   (span sweeps) x (span widths), and each sweep costs one
   [Governor.tick_many] of the span width — the same soundness contract
   as the scalar engine with ~63x fewer ticks per unit of real work.

   Answers are emitted per block, per packed source, with targets sorted:
   blocks cover ascending candidate ranges, so concatenating the
   per-block buffers in block order yields globally sorted answers with
   no final sort — which mattered as much as the BFS itself (the old
   engine spent ~3x more in sort+merge than in the BFS at 10k nodes).

   Blocks are distributed over the [Pool] by an atomic claim counter;
   each worker owns one scratch.  [visited] bits are true reachability
   facts whatever the interleaving, so a budget trip mid-run still
   yields a sound Partial subset. *)

let word_bits = 63

(* --- GQ_BITSET escape hatch --------------------------------------------- *)

let enabled_override : bool option Atomic.t = Atomic.make None

let enabled_from_env () =
  match Sys.getenv_opt "GQ_BITSET" with
  | Some ("off" | "0" | "false" | "no") -> false
  | Some _ | None -> true

let enabled () =
  match Atomic.get enabled_override with
  | Some b -> b
  | None -> enabled_from_env ()

let set_enabled b = Atomic.set enabled_override (Some b)
let clear_enabled () = Atomic.set enabled_override None

(* --- scratch ------------------------------------------------------------- *)

type scratch = {
  visited : int array; (* product state -> reached-by bits *)
  front : int array; (* product state -> pending bits (front <= visited) *)
  queue : int array; (* circular worklist of states with front <> 0 *)
  answered : int array; (* graph node -> bits already given this target *)
  touched : Ibuf.t; (* states with visited <> 0, for O(touched) clearing *)
  anodes : Ibuf.t; (* graph nodes with answered <> 0 *)
  tbufs : Ibuf.t array; (* per packed source: target nodes found *)
}

let scratch_of product =
  let ns = max 1 (Product.nb_states product) in
  {
    visited = Array.make ns 0;
    front = Array.make ns 0;
    queue = Array.make ns 0;
    answered = Array.make (max 1 (Elg.nb_nodes (Product.graph product))) 0;
    touched = Ibuf.create ();
    anodes = Ibuf.create ();
    tbufs = Array.init word_bits (fun _ -> Ibuf.create ());
  }

(* Index of the single set bit of [b] (0..62), by mask cascade — the
   stdlib has no ctz, and a per-bit loop would pay up to 62 iterations
   per answer. *)
let bit_index b =
  let n = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin
    n := 32;
    b := !b lsr 32
  end;
  if !b land 0xFFFF = 0 then begin
    n := !n + 16;
    b := !b lsr 16
  end;
  if !b land 0xFF = 0 then begin
    n := !n + 8;
    b := !b lsr 8
  end;
  if !b land 0xF = 0 then begin
    n := !n + 4;
    b := !b lsr 4
  end;
  if !b land 0x3 = 0 then begin
    n := !n + 2;
    b := !b lsr 2
  end;
  if !b land 0x1 = 0 then incr n;
  !n

type stats = {
  sweeps : int -> unit; (* rpq.bitset.sweeps *)
  words : int -> unit; (* rpq.bitset.word_transitions *)
  states : int -> unit; (* rpq.states_visited *)
}

let stats_of obs =
  {
    sweeps = Obs.counter_fn obs "rpq.bitset.sweeps";
    words = Obs.counter_fn obs "rpq.bitset.word_transitions";
    states = Obs.counter_fn obs "rpq.states_visited";
  }

(* --- one block ----------------------------------------------------------- *)

(* Run packed sources [cand.(lo) .. cand.(hi-1)] (hi - lo <= 63) to
   fixpoint or budget trip, then hand each packed source its sorted,
   deduplicated targets: [emit ~k ~targets ~admitted] with
   [k = index - lo], where only [targets.(0 .. admitted-1)] passed the
   result budget. *)
let run_block gov st product sc ~cand ~lo ~hi ~emit =
  (* The pop loop runs ~once per (state, new-bit wave) — the same order
     of iterations as the scalar engine's transition count on graphs with
     little wavefront overlap — so its constant factor is the whole
     ballgame.  Work on the raw CSR arrays and skip bounds checks: every
     index below is a product-state id (< length visited = length front
     = length queue) or a CSR position within [off.(s) .. off.(s+1)),
     and head/tail wrap at [cap]. *)
  let off, succ = Product.csr product in
  let visited = sc.visited and front = sc.front and queue = sc.queue in
  (* Clear the previous block's marks: O(what it touched). *)
  for i = 0 to sc.touched.Ibuf.len - 1 do
    let s = sc.touched.Ibuf.data.(i) in
    sc.visited.(s) <- 0;
    sc.front.(s) <- 0
  done;
  Ibuf.clear sc.touched;
  for i = 0 to sc.anodes.Ibuf.len - 1 do
    sc.answered.(sc.anodes.Ibuf.data.(i)) <- 0
  done;
  Ibuf.clear sc.anodes;
  let cap = Array.length sc.queue in
  let head = ref 0 and tail = ref 0 and count = ref 0 in
  let push s =
    sc.queue.(!tail) <- s;
    tail := if !tail + 1 = cap then 0 else !tail + 1;
    incr count
  in
  let reach s bit =
    if sc.visited.(s) land bit = 0 then begin
      if sc.visited.(s) = 0 then Ibuf.push sc.touched s;
      sc.visited.(s) <- sc.visited.(s) lor bit;
      if sc.front.(s) = 0 then push s;
      sc.front.(s) <- sc.front.(s) lor bit
    end
  in
  for k = 0 to hi - lo - 1 do
    let bit = 1 lsl k in
    List.iter (fun s -> reach s bit) (Product.initials_at product cand.(lo + k))
  done;
  let sweeps = ref 0 and words = ref 0 in
  let running = ref (Governor.ok gov) in
  while !running && !count > 0 do
    (* Same injection site as the scalar engine, at comparable density:
       once per popped state (the scalar kernel checks once per source
       BFS); one branch when disarmed. *)
    Failpoint.check "rpq.bfs.step";
    let s = Array.unsafe_get queue !head in
    head := if !head + 1 = cap then 0 else !head + 1;
    decr count;
    let f = Array.unsafe_get front s in
    Array.unsafe_set front s 0;
    let elo = Array.unsafe_get off s in
    let ehi = Array.unsafe_get off (s + 1) in
    if Governor.tick_many gov (ehi - elo) then begin
      incr sweeps;
      words := !words + (ehi - elo);
      for i = elo to ehi - 1 do
        let t = Array.unsafe_get succ i in
        let vt = Array.unsafe_get visited t in
        let add = f land lnot vt in
        if add <> 0 then begin
          if vt = 0 then Ibuf.push sc.touched t;
          Array.unsafe_set visited t (vt lor add);
          let ft = Array.unsafe_get front t in
          if ft = 0 then begin
            Array.unsafe_set queue !tail t;
            tail := if !tail + 1 = cap then 0 else !tail + 1;
            incr count
          end;
          Array.unsafe_set front t (ft lor add)
        end
      done
    end
    else running := false
  done;
  st.sweeps !sweeps;
  st.words !words;
  st.states sc.touched.Ibuf.len;
  (* Bucket accepting states by packed source.  Two strategies with
     identical output.  When the block reached a constant fraction of
     the graph, scan every node's accepting rows in node order: the
     per-source target buffers come out already ascending and the OR
     across accepting rows dedups for free — this replaced a per-source
     [sorted_array] that used to cost more than the BFS itself.  For
     blocks that reached little (tight budgets, sparse fan-out), scan
     only the touched list instead, with [answered] dedup and a
     per-source sort. *)
  let n = Elg.nb_nodes (Product.graph product) in
  let dense = 4 * sc.touched.Ibuf.len >= n in
  if dense then begin
    let nq = Product.nb_automaton_states product in
    let fqs = Product.final_qs product in
    let nf = Array.length fqs in
    for v = 0 to n - 1 do
      let base = v * nq in
      let w = ref 0 in
      for j = 0 to nf - 1 do
        (* base + fq < n * nq = length visited *)
        w := !w lor Array.unsafe_get visited (base + Array.unsafe_get fqs j)
      done;
      while !w <> 0 do
        let b = !w land - !w in
        w := !w lxor b;
        Ibuf.push sc.tbufs.(bit_index b) v
      done
    done
  end
  else
    for i = 0 to sc.touched.Ibuf.len - 1 do
      let s = sc.touched.Ibuf.data.(i) in
      if Product.is_final product s then begin
        let v, _ = Product.decode product s in
        let w = sc.visited.(s) land lnot sc.answered.(v) in
        if w <> 0 then begin
          if sc.answered.(v) = 0 then Ibuf.push sc.anodes v;
          sc.answered.(v) <- sc.answered.(v) lor w;
          let w = ref w in
          while !w <> 0 do
            let b = !w land - !w in
            w := !w lxor b;
            Ibuf.push sc.tbufs.(bit_index b) v
          done
        end
      end
    done;
  for k = 0 to hi - lo - 1 do
    let tb = sc.tbufs.(k) in
    if tb.Ibuf.len > 0 then begin
      let targets = if dense then Ibuf.to_array tb else Ibuf.sorted_array tb in
      Ibuf.clear tb;
      let admitted = Governor.emit_many gov (Array.length targets) in
      if admitted > 0 then emit ~k ~targets ~admitted
    end
  done

(* --- block fan-out ------------------------------------------------------- *)

let nb_blocks n_sources = (n_sources + word_bits - 1) / word_bits

(* Distribute blocks over the pool; [emit] must be safe for concurrent
   calls on *different* blocks (each call stays within one block, and a
   block is owned by one worker). *)
let run_blocks ?(obs = Obs.none) ~pool ~width gov product ~cand ~ncand ~emit =
  let nblocks = nb_blocks ncand in
  if nblocks > 0 then begin
    Obs.add obs "rpq.sources" ncand;
    Obs.add obs "rpq.bitset.blocks" nblocks;
    let st = stats_of obs in
    let next = Atomic.make 0 in
    Obs.span obs "rpq.bfs" (fun () ->
        Pool.fork_join ~obs pool ~width (fun _ ->
            let sc = scratch_of product in
            let rec loop () =
              let b = Atomic.fetch_and_add next 1 in
              if b < nblocks && Governor.ok gov then begin
                let lo = b * word_bits in
                let hi = min ncand (lo + word_bits) in
                run_block gov st product sc ~cand ~lo ~hi
                  ~emit:(fun ~k ~targets ~admitted ->
                    emit ~block:b ~k:(lo + k) ~targets ~admitted);
                loop ()
              end
            in
            loop ()))
  end

(* --- entry points -------------------------------------------------------- *)

let pairs_codes ?obs ~pool ~width gov product ~cand ~ncand =
  let n = Elg.nb_nodes (Product.graph product) in
  let outs = Array.init (nb_blocks ncand) (fun _ -> Ibuf.create ()) in
  run_blocks ?obs ~pool ~width gov product ~cand ~ncand
    ~emit:(fun ~block ~k ~targets ~admitted ->
      let buf = outs.(block) in
      let u = cand.(k) in
      for i = 0 to admitted - 1 do
        Ibuf.push buf ((u * n) + targets.(i))
      done);
  outs

let targets ?(obs = Obs.none) ?pool gov product ~sources =
  let nsrc = Array.length sources in
  let pool, width =
    match pool with
    | Some p ->
        ignore (Par_policy.pinned ~width:(Pool.size p));
        (p, Pool.size p)
    | None ->
        let p = Pool.default () in
        let d =
          Par_policy.decide ~obs ~kernel:Par_policy.Bitset
            ~max_width:(Pool.size p) ~sources:nsrc
            ~product_edges:(Product.nb_product_edges product) ()
        in
        (p, d.Par_policy.width)
  in
  Obs.add obs "rpq.par_width" width;
  let out = Array.make nsrc [] in
  run_blocks ~obs ~pool ~width gov product ~cand:sources ~ncand:nsrc
    ~emit:(fun ~block:_ ~k ~targets ~admitted ->
      let rec build i acc =
        if i < 0 then acc else build (i - 1) (targets.(i) :: acc)
      in
      out.(k) <- build (admitted - 1) []);
  let total = Array.fold_left (fun a l -> a + List.length l) 0 out in
  Obs.add obs "rpq.answers" total;
  out
