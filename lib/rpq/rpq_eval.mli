(** RPQ evaluation via the product construction (Sections 3.1.1 and 6.2).

    [⟦R⟧_G = { (u,v) | some path from u to v has elab(p) ∈ L(R) }].

    Every evaluation has a [*_bounded] form taking a {!Governor.t}: it
    charges one step per product-edge relaxation and one result per
    answer, and returns what was computed when a budget trips instead of
    running on.  The unbounded functions are the bounded ones under
    {!Governor.unlimited}.

    Multi-source entry points ([pairs], [pairs_nfa] and their bounded
    forms) take an optional [?pool]: when given, source nodes are
    chunked across that {!Pool}'s domains; when omitted, the default
    pool is used but only once the estimated work (sources × product
    edges) is large enough to amortize domain spawns.  Results are
    identical to serial evaluation; under a result budget the kept
    subset may differ across widths but stays within the
    Complete/Partial contract.

    Every entry point also takes an optional [?obs] telemetry sink
    (default {!Obs.none}, one branch of cost): BFS engines record
    [rpq.product_transitions], [rpq.states_visited], [rpq.sources] and
    [rpq.answers], and run inside [rpq.eval] / [rpq.bfs] / [rpq.merge]
    spans (plus whatever {!Product.make} and {!Pool} record). *)

(** [pairs g r] computes ⟦R⟧_G (Example 12).  Polynomial:
    one product-graph BFS per source node. *)
val pairs : ?pool:Pool.t -> ?obs:Obs.t -> Elg.t -> Sym.t Regex.t -> (int * int) list

val pairs_bounded :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Regex.t -> (int * int) list Governor.outcome

(** Nodes reachable from [src] along a matching path. *)
val from_source : ?obs:Obs.t -> Elg.t -> Sym.t Regex.t -> src:int -> int list

val from_source_bounded :
  ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Regex.t -> src:int -> int list Governor.outcome

(** Membership of a single pair.  Early-exits: the product BFS stops at
    the first accepting [(tgt, q)] state instead of computing the full
    reachable set. *)
val check : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> bool

val check_bounded :
  ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int ->
  bool Governor.outcome

(** As {!pairs} but reusing a compiled automaton. *)
val pairs_nfa : ?pool:Pool.t -> ?obs:Obs.t -> Elg.t -> Sym.t Nfa.t -> (int * int) list

val pairs_nfa_bounded :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Nfa.t -> (int * int) list Governor.outcome

(** As {!pairs_nfa_bounded} over a prebuilt product graph — the entry
    point the compilation cache uses to skip both automaton and product
    construction on warm requests.  When [?pool] is omitted the adaptive
    policy ({!Par_policy}) picks the width: serial below the work
    threshold, never more domains than hardware threads. *)
val pairs_product_bounded :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Governor.t -> Product.t -> (int * int) list Governor.outcome

(** Stream the answers of a prebuilt product in globally sorted order
    without building the pair list: [f acc u v] per answer.  Under the
    bitset kernel the fold walks the per-block emission buffers in
    place, so allocation beyond them is whatever [f] does. *)
val fold_pairs_product_gov :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Governor.t -> Product.t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

(** Number of distinct answers, never materializing any (the kernel's
    count-only mode: O(blocks) allocation however many answers).  Under
    a result budget the count is the number of admitted answers. *)
val count_pairs_product_gov :
  ?pool:Pool.t -> ?obs:Obs.t -> Governor.t -> Product.t -> int

val count_pairs_product_bounded :
  ?pool:Pool.t -> ?obs:Obs.t -> Governor.t -> Product.t -> int Governor.outcome

val count_pairs_bounded :
  ?pool:Pool.t -> ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Regex.t -> int Governor.outcome

val count_pairs : ?pool:Pool.t -> ?obs:Obs.t -> Elg.t -> Sym.t Regex.t -> int

(** Reachable targets over a prebuilt product, charging the governor.
    Shared with the other engines; exposed for reuse. *)
val from_source_product :
  ?gov:Governor.t -> ?obs:Obs.t -> Product.t -> src:int -> int list

(** A shortest matching path from [src] to [tgt], if any (BFS in G×). *)
val shortest_witness : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> Path.t option

val shortest_witness_bounded :
  Governor.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int ->
  Path.t option Governor.outcome

(** Naive reference evaluation: enumerate all paths of length at most
    [max_len] and test elab(p) against the regex.  Exponential; a test
    oracle for the product construction. *)
val pairs_naive : Elg.t -> Sym.t Regex.t -> max_len:int -> (int * int) list

val pairs_naive_bounded :
  Governor.t -> Elg.t -> Sym.t Regex.t -> max_len:int ->
  (int * int) list Governor.outcome
