(* The admission queue: a bounded MPMC queue between the server's I/O
   loop (producer) and its worker domains (consumers).

   The bound is the server's overload valve.  [push] never blocks: when
   the queue is full the caller sheds the request with a structured
   "shed" reply instead of queueing unbounded work — bounded queue plus
   load shedding keeps tail latency flat under overload, where an
   unbounded queue would grow until every reply is late.  [pop] blocks
   until work arrives or the queue is closed and drained, which is the
   worker shutdown path: [close] wakes every waiter, workers finish the
   remaining backlog, then exit. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  on_depth : int -> unit;  (* called under [lock]: keep it cheap *)
}

let create ?(on_depth = fun _ -> ()) ~capacity () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity = max 1 capacity;
    closed = false;
    on_depth;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push t x =
  locked t (fun () ->
      if t.closed then `Closed
      else if Queue.length t.items >= t.capacity then `Full
      else begin
        Queue.add x t.items;
        t.on_depth (Queue.length t.items);
        Condition.signal t.nonempty;
        `Ok
      end)

(* Blocks until an item is available; [None] once closed and drained. *)
let pop t =
  locked t (fun () ->
      let rec wait () =
        if not (Queue.is_empty t.items) then begin
          let x = Queue.take t.items in
          t.on_depth (Queue.length t.items);
          Some x
        end
        else if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

(* Steal up to [limit] queued items matching [f], preserving the order
   of both the stolen items and the survivors — the batching hook: a
   worker that just popped a request collects the queued requests its
   evaluation can also answer.  O(depth) under the lock; depth is
   bounded by [capacity]. *)
let take_matching t ~limit ~f =
  if limit <= 0 then []
  else
    locked t (fun () ->
        let keep = Queue.create () in
        let taken = ref [] and ntaken = ref 0 in
        Queue.iter
          (fun x ->
            if !ntaken < limit && f x then begin
              taken := x :: !taken;
              incr ntaken
            end
            else Queue.add x keep)
          t.items;
        if !ntaken > 0 then begin
          Queue.clear t.items;
          Queue.transfer keep t.items;
          t.on_depth (Queue.length t.items)
        end;
        List.rev !taken)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let depth t = locked t (fun () -> Queue.length t.items)
let capacity t = t.capacity
let closed t = locked t (fun () -> t.closed)
