(** Serve-protocol wire layer: JSON rendering, bounded newline framing,
    UTF-8 validation, and partial-write-safe output.

    This is the robustness boundary of the server: an endless line
    cannot grow an unbounded buffer (it becomes one {!Too_long} frame),
    binary garbage cannot corrupt the JSON reply stream (it becomes
    {!Bad_utf8}), and a reply spanning several socket buffers is never
    truncated by a short [write]. *)

(** {1 JSON rendering} *)

(** A reply is an ordered list of key/rendered-value pairs — field
    order in the output is exactly list order. *)
type jfield = string * string

val json_escape : string -> string
val jstr : string -> string
val jint : int -> string
val jbool : bool -> string
val jfloat : float -> string
val jobj : jfield list -> string
val jarr : string list -> string

(** {1 Framing} *)

(** [true] iff well-formed UTF-8 (RFC 3629): no overlongs, no
    surrogates, nothing above U+10FFFF. *)
val utf8_valid : string -> bool

type frame =
  | Line of string  (** a complete, length-bounded, valid-UTF-8 line *)
  | Too_long of int  (** a line exceeded the bound; payload discarded *)
  | Bad_utf8  (** a complete line that is not well-formed UTF-8 *)

(** Incremental newline framer with a hard per-line length bound. *)
module Framer : sig
  type t

  val create : ?max_line:int -> unit -> t

  (** [feed t bytes len] consumes [len] bytes, returning the complete
      frames oldest-first.  An over-long line buffers at most
      [max_line] bytes and yields exactly one [Too_long]. *)
  val feed : t -> bytes -> int -> frame list

  (** At EOF: the unterminated remainder as a final frame, if any — a
      command file without a trailing newline still runs its last
      command. *)
  val flush : t -> frame option
end

(** {1 Output} *)

(** Write the whole string: loops on short writes, retries [EINTR];
    [Error `Closed] on any write error ([EPIPE], [ECONNRESET], ...) —
    the peer is gone, drop that client only.  Serve-mode entry points
    ignore [SIGPIPE] so the error is reported here instead of killing
    the process. *)
val write_all : Unix.file_descr -> string -> (unit, [ `Closed ]) result
