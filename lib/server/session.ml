(* One serve-protocol session: the command dispatch behind both
   `gqd --serve` (stdin/stdout, one session) and `gqd --listen` (one
   session per connected client over a shared graph snapshot and a
   shared compilation cache).

   Protocol: one command per line, one JSON object per reply line.
   Blank lines and '#' comments are ignored; every other line gets
   exactly one reply carrying a monotonically increasing "id".  Every
   evaluation runs under Governor budgets inside [Supervise.run]
   (exceptions classified, transient faults retried, per-query-class
   circuit breaker), and dispatch has a catch-all so even a bug in
   reply rendering answers with a structured error instead of dying.

   Commands:
     load PATH                  load (replace) the graph snapshot;
                                accepts text or GQB1 binary
     add-edge NAME SRC LABEL TGT [k=v ...]
                                insert one edge (implicit nodes created)
     del-edge NAME              delete one edge by name
     del-node NAME              delete one node and its incident edges
     delta-load PATH            apply a batch of add/del/deln ops from a file
     save-bin PATH              write the snapshot as a GQB1 binary file
     rpq REGEX                  all endpoint pairs of an RPQ
     rpq-from NODE REGEX        nodes reachable from NODE
     shortest SRC TGT REGEX     all shortest matching paths
     query MATCH ... RETURN ... MATCH/RETURN query over the graph
     plan QUERY                 EXPLAIN: cost estimates, atom order,
                                direction, cache status (no evaluation)
     set KEY VALUE              max-steps | max-results | timeout |
                                retries (VALUE `none` clears a budget)
     stats                      breaker states + plan-cache counters
     ping                       liveness probe
     quit                       exit 0

   Reply shape (field order fixed; see README "Resilience & fault
   injection"):
     {"id":N,"cmd":"rpq","status":"ok|partial|degraded|error|shed",
      "code":C,"degraded":B,"attempts":A[,"reason":R]
      [,"error":{"kind":K,"msg":M}][,"answers":[...],"count":N]}
   "code" follows the CLI exit-code contract: 0 ok, 1 parse/unknown
   node, 2 evaluation/fault, 3 I/O, 4 budget exhausted/shed.

   Concurrency: sessions are confined to one worker domain per request
   (per-client state is only touched by whichever worker handles that
   client's current request, and the server's per-client in-flight
   quota plus command ordering keep those sequential per client).  All
   cross-client state is the [shared] record: the graph snapshot is an
   atomic swapped under [graph_lock] together with the cache-generation
   bump, and the compilation cache is internally synchronised. *)

open Wire

type config = {
  retries : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  degraded_max_steps : int;
  initial_max_steps : int option;
  initial_max_results : int option;
  initial_timeout : float option;
  ceiling_max_steps : int option;
  ceiling_max_results : int option;
  ceiling_timeout : float option;
  obs : Obs.t;
}

let default_config =
  {
    retries = 3;
    breaker_threshold = 5;
    breaker_cooldown = 30.0;
    degraded_max_steps = 1000;
    initial_max_steps = None;
    initial_max_results = None;
    initial_timeout = None;
    ceiling_max_steps = None;
    ceiling_max_results = None;
    ceiling_timeout = None;
    obs = Obs.none;
  }

(* State shared by every session of one server process.  The graph is an
   epoch-published immutable snapshot: [load] parses (and deltas apply)
   off to the side, then publish the new snapshot and bump the cache
   generation under [graph_lock] (so concurrent writers publish snapshot
   and generation as a pair); readers grab whatever epoch is current and
   evaluate against that exact value unlocked — a later load or delta
   cannot mutate it out from under them. *)
type shared = {
  config : config;
  cache : Rpq_compile.t;
  graph : Pg.t Epoch.t;
  graph_lock : Mutex.t;
  deltas : int Atomic.t; (* delta batches applied since startup *)
  wal : Wal.t option;
      (* durability: updates append here (under [graph_lock], before
         publishing) when serve mode was started with --wal *)
}

let make_shared ?wal config =
  {
    config;
    cache = Rpq_compile.create ();
    graph = Epoch.create ();
    graph_lock = Mutex.create ();
    deltas = Atomic.make 0;
    wal;
  }

let shared_config sh = sh.config
let shared_cache sh = sh.cache
let graph_loaded sh = Epoch.snapshot sh.graph <> None
let shared_epoch sh = Epoch.epoch sh.graph

(* Publish a recovered snapshot before serving starts (gqd --wal):
   exactly what [load] does, minus the file read. *)
let publish_initial sh pg =
  Mutex.lock sh.graph_lock;
  ignore (Epoch.publish sh.graph pg);
  Rpq_compile.set_generation sh.cache (Elg.id (Pg.elg pg));
  Mutex.unlock sh.graph_lock

(* Periodic WAL housekeeping (interval fsync policy), called from the
   server's I/O loop under the writer lock — [Wal.t] is single-writer. *)
let wal_tick sh =
  match sh.wal with
  | None -> ()
  | Some w ->
      Mutex.lock sh.graph_lock;
      (match Wal.tick_res w with Ok _ | Error _ -> ());
      Mutex.unlock sh.graph_lock

let wal_close sh =
  match sh.wal with
  | None -> ()
  | Some w ->
      Mutex.lock sh.graph_lock;
      Wal.close w;
      Mutex.unlock sh.graph_lock

type t = {
  shared : shared;
  mutable retry : Retry.policy;
  breakers : Breaker.Group.t;
  mutable max_steps : int option;
  mutable max_results : int option;
  mutable timeout : float option;
  register_gov : Governor.t -> unit -> unit;
      (* watchdog hook: called with each governor as its evaluation
         starts, returns the matching unregister thunk *)
  extra_stats : unit -> jfield list;
}

let create ?(register_gov = fun _ () -> ()) ?(extra_stats = fun () -> [])
    shared =
  let config = shared.config in
  {
    shared;
    retry =
      {
        Retry.default with
        Retry.max_attempts = max 1 config.retries;
        base_delay = 0.001;
        max_delay = 0.1;
        budget = 1.0;
      };
    breakers =
      Breaker.Group.create ~obs:config.obs
        ~config:
          {
            Breaker.failure_threshold = max 1 config.breaker_threshold;
            cooldown = config.breaker_cooldown;
            success_threshold = 1;
          }
        ();
    max_steps = config.initial_max_steps;
    max_results = config.initial_max_results;
    timeout = config.initial_timeout;
    register_gov;
    extra_stats;
  }

(* Work done by the current request, for the server's per-client budget
   accounting.  One ctx per request, touched only by the worker domain
   running it. *)
type ctx = { mutable spent : int }

(* --- reply rendering ------------------------------------------------------ *)

let reply id cmd ~status ~code (extra : jfield list) =
  (* The cmd field echoes client input (e.g. an unknown verb); bound it
     so a junk line of tens of kilobytes cannot balloon the reply — a
     flooding client must never dictate how much the server writes
     back. *)
  let cmd = if String.length cmd > 64 then String.sub cmd 0 64 else cmd in
  jobj
    (("id", jint id) :: ("cmd", jstr cmd) :: ("status", jstr status)
    :: ("code", jint code) :: extra)

let error_fields ?(attempts = 0) err =
  [
    ("degraded", jbool false);
    ("attempts", jint attempts);
    ( "error",
      jobj
        [ ("kind", jstr (Gq_error.kind err)); ("msg", jstr (Gq_error.to_string err)) ]
    );
  ]

let error_reply id cmd ?attempts err =
  reply id cmd ~status:"error" ~code:(Gq_error.exit_code err)
    (error_fields ?attempts err)

(* Structured load-shedding reply: the admission controller answers
   instead of evaluating.  "code":4 (the budget exit code — the server,
   not the query, is out of budget); clients should back off for
   [retry_after_ms] before resending. *)
let shed_reply ~id ~cmd ~reason ~retry_after_ms =
  reply id cmd ~status:"shed" ~code:4
    [
      ("degraded", jbool true);
      ("reason", jstr reason);
      ("retry_after_ms", jint retry_after_ms);
    ]

let parse_error id cmd msg =
  error_reply id cmd (Gq_error.Parse { what = "command"; msg })

(* Structured replies for frames the wire layer rejected before they
   could become commands. *)
let frame_error_reply ~id frame =
  match frame with
  | Wire.Too_long limit ->
      parse_error id "input" (Printf.sprintf "line exceeds %d bytes" limit)
  | Wire.Bad_utf8 -> parse_error id "input" "line is not valid UTF-8"
  | Wire.Line _ -> invalid_arg "frame_error_reply: not an error frame"

(* --- supervised evaluation ----------------------------------------------- *)

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let min_opt_f a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.min a b)

(* Effective budgets: the client's own settings clamped by the
   server-wide ceilings (a client may lower its budgets below the
   ceiling, never raise them above it). *)
(* Session governors always carry a cancel flag: the watchdog may cancel
   them, and — crucially — a cancellable governor is never [limitless],
   so its step counter runs even when the client set no caps.  Budget
   accounting ([ctx.spent], the server's per-client token bucket) relies
   on that: a hostile client must be charged for work it causes whether
   or not it opted into limits. *)
let governor_of sess () =
  let c = sess.shared.config in
  Governor.make ~obs:c.obs
    ?max_steps:(min_opt sess.max_steps c.ceiling_max_steps)
    ?max_results:(min_opt sess.max_results c.ceiling_max_results)
    ?timeout:(min_opt_f sess.timeout c.ceiling_timeout)
    ~cancel:(ref false) ()

(* Wrap [body] so that whatever governor it runs under — per-attempt
   from [governor_of], or the small degraded governor [Supervise]
   builds when a breaker rejects — is registered with the watchdog for
   its duration and has its step count charged to the request. *)
let governed sess ctx body gov =
  let unregister = sess.register_gov gov in
  Fun.protect
    ~finally:(fun () ->
      ctx.spent <- ctx.spent + Governor.steps gov;
      unregister ())
    (fun () ->
      Failpoint.check "serve.eval";
      body gov)

(* Run [body] under the session's budgets, retry policy and the [cls]
   breaker.  Split from reply rendering so a batched evaluation can run
   once and render per member. *)
let supervised_outcome sess ctx ~cls body =
  let breaker = Breaker.Group.get sess.breakers cls in
  Supervise.run ~obs:sess.shared.config.obs ~retry:sess.retry ~breaker
    ~degraded_max_steps:sess.shared.config.degraded_max_steps
    ~gov:(governor_of sess)
    (governed sess ctx body)

(* Render one supervised outcome as [id]'s reply.  [render] turns the
   outcome into the pre-rendered answers JSON array and its count — it
   must be total on the [Aborted] payload. *)
let outcome_reply_render id ~cls sup ~render =
  match sup.Supervise.outcome with
  | Error err -> error_reply id cls ~attempts:sup.Supervise.attempts err
  | Ok outcome ->
      let answers_json, count = render outcome in
      let status, code, reason =
        match outcome with
        | Governor.Complete _ ->
            ((if sup.Supervise.degraded then "degraded" else "ok"), 0, None)
        | Governor.Partial (_, r) | Governor.Aborted r ->
            ( (if sup.Supervise.degraded then "degraded" else "partial"),
              Gq_error.exit_code (Gq_error.Budget r),
              Some r )
      in
      reply id cls ~status ~code
        (("degraded", jbool sup.Supervise.degraded)
        :: ("attempts", jint sup.Supervise.attempts)
        :: (match reason with
           | Some r -> [ ("reason", jstr (Governor.reason_slug r)) ]
           | None -> [])
        @ [ ("answers", answers_json); ("count", jint count) ])

(* [answers_of] projects the payload to this request's display strings —
   identity for a solo request, the member's slice for a batched one. *)
let outcome_reply id ~cls sup ~default ~answers_of =
  outcome_reply_render id ~cls sup ~render:(fun outcome ->
      let answers = answers_of (Governor.payload ~default outcome) in
      (jarr (List.map jstr answers), List.length answers))

(* [body] returns the answers as display strings. *)
let supervised sess ctx id ~cls body =
  let sup = supervised_outcome sess ctx ~cls body in
  outcome_reply id ~cls sup ~default:[] ~answers_of:Fun.id

let graph_or_fail sess =
  match Epoch.snapshot sess.shared.graph with
  | Some pg -> pg
  | None -> raise (Gq_error.Error (Gq_error.Eval "no graph loaded"))

let node_id_or_fail g name =
  match Elg.node_id g name with
  | id -> id
  | exception Not_found -> raise (Gq_error.Error (Gq_error.Unknown_node name))

(* --- commands ------------------------------------------------------------ *)

let cmd_load sess ctx id path =
  let breaker = Breaker.Group.get sess.breakers "load" in
  let sup =
    Supervise.run ~obs:sess.shared.config.obs ~retry:sess.retry ~breaker
      ~degraded_max_steps:sess.shared.config.degraded_max_steps
      ~gov:(governor_of sess)
      (governed sess ctx (fun _gov ->
           match Graph_io.load_file_res path with
           | Ok pg -> Governor.Complete pg
           | Error err -> raise (Gq_error.Error err)))
  in
  match sup.Supervise.outcome with
  | Error err -> error_reply id "load" ~attempts:sup.Supervise.attempts err
  | Ok outcome -> (
      match outcome with
      | Governor.Complete pg | Governor.Partial (pg, _) -> (
          let g = Pg.elg pg in
          (* Publish snapshot and cache generation as a pair: plans
             (query-only) survive, products built against the previous
             graph are dropped.  Parsing cost isn't governor-ticked, so
             charge the request its edge count for budget accounting.

             With a WAL, the load must checkpoint *before* publishing: a
             load is not in the log, so serving a graph the log cannot
             reconstruct would break the recovery invariant.  A failed
             checkpoint therefore fails the load and keeps the previous
             epoch. *)
          Mutex.lock sess.shared.graph_lock;
          let ckpt =
            match sess.shared.wal with
            | None -> Ok ()
            | Some w -> (
                match Wal.checkpoint_res w pg with
                | Ok _gen -> Ok ()
                | Error e ->
                    Wal.note_checkpoint_error w;
                    Error e
                | exception e ->
                    Wal.note_checkpoint_error w;
                    Error (Gq_error.of_exn e))
          in
          (match ckpt with
          | Ok () ->
              ignore (Epoch.publish sess.shared.graph pg);
              Rpq_compile.set_generation sess.shared.cache (Elg.id g)
          | Error _ -> ());
          Mutex.unlock sess.shared.graph_lock;
          match ckpt with
          | Error err -> error_reply id "load" ~attempts:sup.Supervise.attempts err
          | Ok () ->
              ctx.spent <- ctx.spent + Elg.nb_edges g;
              reply id "load" ~status:"ok" ~code:0
                [
                  ("degraded", jbool sup.Supervise.degraded);
                  ("attempts", jint sup.Supervise.attempts);
                  ("nodes", jint (Elg.nb_nodes g));
                  ("edges", jint (Elg.nb_edges g));
                ])
      | Governor.Aborted r ->
          error_reply id "load" ~attempts:sup.Supervise.attempts
            (Gq_error.Budget r))

(* Apply a delta batch and publish the successor snapshot.  The whole
   apply runs under [graph_lock], serializing writers against [load] and
   each other; readers never take the lock — an in-flight query keeps
   its epoch.  Publishing pairs the snapshot with fine-grained cache
   invalidation: products over labels disjoint from the delta migrate
   warm to the new graph id ([Rpq_compile.apply_delta]).  A failed or
   faulted apply publishes nothing — the current epoch stands. *)
let cmd_delta sess ctx id verb ops =
  let breaker = Breaker.Group.get sess.breakers "update" in
  let sup =
    Supervise.run ~obs:sess.shared.config.obs ~retry:sess.retry ~breaker
      ~degraded_max_steps:sess.shared.config.degraded_max_steps
      ~gov:(governor_of sess)
      (governed sess ctx (fun _gov ->
           Mutex.lock sess.shared.graph_lock;
           Fun.protect
             ~finally:(fun () -> Mutex.unlock sess.shared.graph_lock)
             (fun () ->
               match Epoch.snapshot sess.shared.graph with
               | None ->
                   raise (Gq_error.Error (Gq_error.Eval "no graph loaded"))
               | Some pg -> (
                   match Delta.apply_res pg ops with
                   | Error err -> raise (Gq_error.Error err)
                   | Ok applied ->
                       (* Durability point: the record hits the log (and,
                          under fsync=always, the disk) before the epoch
                          is published — an acknowledged write is in the
                          log, a failed append publishes nothing.  A
                          failed append also rolled the segment back, so
                          a supervised retry re-runs the whole body
                          without duplicating the record. *)
                       let wal =
                         match sess.shared.wal with
                         | None -> None
                         | Some w -> (
                             match Wal.append_res w ops with
                             | Ok (lsn, synced) -> Some (lsn, synced)
                             | Error err -> raise (Gq_error.Error err))
                       in
                       let published = ref false in
                       try
                         let s = applied.Delta.summary in
                         Rpq_compile.apply_delta ~obs:sess.shared.config.obs
                           sess.shared.cache ~old_graph:(Pg.elg pg)
                           ~new_graph:(Pg.elg applied.Delta.pg)
                           ~touched_labels:s.Elg.touched_labels
                           ~nodes_stable:(s.Elg.added_nodes = 0 && s.Elg.removed_nodes = 0);
                         let epoch =
                           Epoch.publish sess.shared.graph applied.Delta.pg
                         in
                         published := true;
                         Atomic.incr sess.shared.deltas;
                         (* Rotation runs after publish: a checkpoint
                            failure is tolerated (the log still holds every
                            record) but counted and surfaced in stats. *)
                         (match sess.shared.wal with
                         | None -> ()
                         | Some w -> (
                             match Wal.maybe_checkpoint_res w applied.Delta.pg with
                             | Ok _ -> ()
                             | Error _ -> Wal.note_checkpoint_error w
                             | exception _ -> Wal.note_checkpoint_error w));
                         Governor.Complete (applied, epoch, wal)
                       with e ->
                         (* Publishing failed after the record hit the
                            log: take it back out before the supervised
                            retry re-runs this body, or the batch would
                            be appended (and replayed) twice. *)
                         (if not !published then
                            match (sess.shared.wal, wal) with
                            | Some w, Some (lsn, _) -> (
                                match Wal.undo_append_res w lsn with
                                | Ok _ | Error _ -> ())
                            | _ -> ());
                         raise e))))
  in
  match sup.Supervise.outcome with
  | Error err -> error_reply id verb ~attempts:sup.Supervise.attempts err
  | Ok outcome -> (
      match outcome with
      | Governor.Complete (applied, epoch, wal)
      | Governor.Partial ((applied, epoch, wal), _) ->
          let g = Pg.elg applied.Delta.pg in
          let s = applied.Delta.summary in
          (* Deltas aren't governor-ticked; charge the touched volume. *)
          ctx.spent <-
            ctx.spent + s.Elg.added_edges + s.Elg.removed_edges
            + s.Elg.added_nodes + 1;
          reply id verb ~status:"ok" ~code:0
            ([
               ("degraded", jbool sup.Supervise.degraded);
               ("attempts", jint sup.Supervise.attempts);
               ("nodes", jint (Elg.nb_nodes g));
               ("edges", jint (Elg.nb_edges g));
               ("epoch", jint epoch);
               ("added", jint s.Elg.added_edges);
               ("removed", jint s.Elg.removed_edges);
               ( "touched",
                 jarr (List.map jstr s.Elg.touched_labels) );
             ]
            @
            (* Only in --wal mode: the golden stdio transcripts (no WAL)
               stay byte-stable. *)
            match wal with
            | None -> []
            | Some (lsn, synced) ->
                [
                  ("durable", jbool synced);
                  ("wal_lsn", jint (Int64.to_int lsn));
                ])
      | Governor.Aborted r ->
          error_reply id verb ~attempts:sup.Supervise.attempts
            (Gq_error.Budget r))

(* Serialize the *current* snapshot; no lock — a concurrent delta just
   means the file captures the epoch that was current when we started,
   which is all copy-on-write can promise anyway. *)
let cmd_save_bin sess ctx id path =
  let breaker = Breaker.Group.get sess.breakers "save-bin" in
  let sup =
    Supervise.run ~obs:sess.shared.config.obs ~retry:sess.retry ~breaker
      ~degraded_max_steps:sess.shared.config.degraded_max_steps
      ~gov:(governor_of sess)
      (governed sess ctx (fun _gov ->
           match Epoch.current sess.shared.graph with
           | None -> raise (Gq_error.Error (Gq_error.Eval "no graph loaded"))
           | Some (epoch, pg) -> (
               match Graph_io.save_bin_res pg path with
               | Ok bytes ->
                   ctx.spent <- ctx.spent + Elg.nb_edges (Pg.elg pg);
                   Governor.Complete (epoch, bytes)
               | Error err -> raise (Gq_error.Error err))))
  in
  match sup.Supervise.outcome with
  | Error err -> error_reply id "save-bin" ~attempts:sup.Supervise.attempts err
  | Ok outcome -> (
      match outcome with
      | Governor.Complete (epoch, bytes) | Governor.Partial ((epoch, bytes), _)
        ->
          reply id "save-bin" ~status:"ok" ~code:0
            [
              ("degraded", jbool sup.Supervise.degraded);
              ("attempts", jint sup.Supervise.attempts);
              ("bytes", jint bytes);
              ("epoch", jint epoch);
            ]
      | Governor.Aborted r ->
          error_reply id "save-bin" ~attempts:sup.Supervise.attempts
            (Gq_error.Budget r))

let cmd_rpq sess ctx id src =
  let obs = sess.shared.config.obs in
  match Rpq_compile.compile ~obs sess.shared.cache src with
  | Error err -> error_reply id "rpq" err
  | Ok c ->
      supervised sess ctx id ~cls:"rpq" (fun gov ->
          let g = Pg.elg (graph_or_fail sess) in
          Governor.map
            (List.map (fun (u, v) ->
                 Elg.node_name g u ^ " -> " ^ Elg.node_name g v))
            (Rpq_compile.pairs_bounded ~obs sess.shared.cache gov g c))

let cmd_rpq_from sess ctx id node src =
  let obs = sess.shared.config.obs in
  match Rpq_compile.compile ~obs sess.shared.cache src with
  | Error err -> error_reply id "rpq-from" err
  | Ok c ->
      supervised sess ctx id ~cls:"rpq-from" (fun gov ->
          let g = Pg.elg (graph_or_fail sess) in
          let src_id = node_id_or_fail g node in
          Governor.map
            (List.map (Elg.node_name g))
            (Rpq_compile.from_source_bounded ~obs sess.shared.cache gov g c
               ~src:src_id))

let cmd_shortest sess ctx id src_name tgt_name regex =
  match Rpq_parse.parse_res regex with
  | Error err -> error_reply id "shortest" err
  | Ok r ->
      supervised sess ctx id ~cls:"shortest" (fun gov ->
          let g = Pg.elg (graph_or_fail sess) in
          let src = node_id_or_fail g src_name in
          let tgt = node_id_or_fail g tgt_name in
          Governor.map
            (List.map (Path.to_string g))
            (Path_modes.shortest_bounded ~obs:sess.shared.config.obs gov g r
               ~src ~tgt))

let cmd_query sess ctx id src =
  match Gql_query.parse_res src with
  | Error err -> error_reply id "query" err
  | Ok q ->
      supervised sess ctx id ~cls:"query" (fun gov ->
          let pg = graph_or_fail sess in
          let g = Pg.elg pg in
          match
            Gql_query.eval_bounded ~max_len:8 ~obs:sess.shared.config.obs gov
              pg q
          with
          | outcome ->
              Governor.map
                (fun rel ->
                  List.map
                    (fun row ->
                      String.concat " | "
                        (List.map (Relation.cell_to_string g) row))
                    (Relation.rows rel))
                outcome
          | exception Gql_query.Eval_error msg ->
              raise (Gq_error.Error (Gq_error.Eval msg)))

let cmd_set sess id key value =
  let ok v = reply id "set" ~status:"ok" ~code:0 [ ("key", jstr key); ("value", jstr v) ] in
  let bad msg = error_reply id "set" (Gq_error.Parse { what = "set"; msg }) in
  let int_budget set =
    if value = "none" then (set None; ok value)
    else
      match int_of_string_opt value with
      | Some n when n >= 0 -> set (Some n); ok value
      | Some _ | None -> bad (Printf.sprintf "%s: expected a count or none, got %S" key value)
  in
  match key with
  | "max-steps" -> int_budget (fun v -> sess.max_steps <- v)
  | "max-results" -> int_budget (fun v -> sess.max_results <- v)
  | "timeout" ->
      if value = "none" then (sess.timeout <- None; ok value)
      else (
        match float_of_string_opt value with
        | Some t when t >= 0.0 -> sess.timeout <- Some t; ok value
        | Some _ | None -> bad (Printf.sprintf "timeout: expected seconds or none, got %S" value))
  | "retries" -> (
      match int_of_string_opt value with
      | Some n when n >= 1 ->
          sess.retry <- { sess.retry with Retry.max_attempts = n };
          ok value
      | Some _ | None -> bad (Printf.sprintf "retries: expected attempts >= 1, got %S" value))
  | _ -> bad (Printf.sprintf "unknown setting %S" key)

let plan_cache_fields cache =
  let plans = Rpq_compile.plans cache in
  [
    ("enabled", jbool (Plan_cache.enabled plans));
    ("compiled", jint (Plan_cache.length plans));
    ("hits", jint (Plan_cache.hits plans));
    ("misses", jint (Plan_cache.misses plans));
    ("evictions", jint (Plan_cache.evictions plans));
    ("products", jint (Rpq_compile.product_entries cache));
    ("product_hits", jint (Rpq_compile.product_hits cache));
    ("product_misses", jint (Rpq_compile.product_misses cache));
    ("invalidated", jint (Rpq_compile.invalidated cache));
    ("invalidated_by_label", jint (Rpq_compile.invalidated_by_label cache));
    ("retained", jint (Rpq_compile.retained cache));
    ("generation", jint (Rpq_compile.generation cache));
  ]

(* WAL health for `stats`, only present in --wal mode (golden
   transcripts are recorded without a WAL). *)
let wal_fields w =
  let c = Wal.counters w in
  [
    ("generation", jint c.Wal.c_gen);
    ("next_lsn", jint (Int64.to_int c.Wal.c_next_lsn));
    ("read_only", jbool c.Wal.c_read_only);
    ("policy", jstr (Wal.fsync_policy_to_string (Wal.policy w)));
    ("records", jint c.Wal.c_records);
    ("bytes", jint c.Wal.c_bytes);
    ("appends", jint c.Wal.c_appends);
    ("fsyncs", jint c.Wal.c_fsyncs);
    ("checkpoints", jint c.Wal.c_checkpoints);
    ("rotations", jint c.Wal.c_rotations);
    ("replayed", jint c.Wal.c_replayed);
    ("checkpoint_errors", jint c.Wal.c_checkpoint_errors);
  ]

let cmd_stats sess id =
  let breakers =
    List.map
      (fun (cls, b) -> (cls, jstr (Breaker.state_to_string (Breaker.state b))))
      (Breaker.Group.all sess.breakers)
  in
  reply id "stats" ~status:"ok" ~code:0
    ([
       ("graph", jbool (graph_loaded sess.shared));
       ("epoch", jint (Epoch.epoch sess.shared.graph));
       ("deltas", jint (Atomic.get sess.shared.deltas));
       ("breakers", jobj breakers);
       ( "failpoints",
         jobj
           (List.map
              (fun (site, p) -> (site, jstr (Failpoint.policy_to_string p)))
              (Failpoint.armed ())) );
       ("plan", jobj (plan_cache_fields sess.shared.cache));
       (* The parallelism decision in force: kernel gate plus the last
          width the policy (or a pinning caller) chose. *)
       ( "par",
         jobj
           (( "kernel",
              jstr (if Rpq_bitset.enabled () then "bitset" else "scalar") )
           ::
           (match Par_policy.last () with
           | None -> []
           | Some d ->
               [
                 ("width", jint d.Par_policy.width);
                 ("reason", jstr (Par_policy.reason_slug d.Par_policy.reason));
               ])) );
     ]
    @ (match sess.shared.wal with
      | None -> []
      | Some w -> [ ("wal", jobj (wal_fields w)) ])
    @ sess.extra_stats ())

(* --- plan (EXPLAIN) ------------------------------------------------------ *)

let render_term = function
  | Crpq.TVar v -> v
  | Crpq.TConst c -> "@" ^ c

let render_atom (a : Crpq.atom) =
  render_term a.Crpq.x ^ " -[" ^ Regex.to_string Sym.to_string a.Crpq.re
  ^ "]-> " ^ render_term a.Crpq.y

let est_fields (e : Planner.estimate) =
  [
    ("est_card", jfloat e.Planner.card);
    ("est_sources", jfloat e.Planner.sources);
    ("est_targets", jfloat e.Planner.targets);
  ]

(* Product-edge upper estimate for the parallel decision: each NFA
   transition can pair with every edge its symbol matches. *)
let est_product_edges st (nfa : Sym.t Nfa.t) =
  Array.fold_left
    (fun acc trans ->
      List.fold_left
        (fun acc (sym, _) ->
          acc
          + Stats.sym_edges st
              (match sym with
              | Sym.Lbl a -> Stats.Lbl a
              | Sym.Any -> Stats.Any
              | Sym.Not s -> Stats.Not s))
        acc trans)
    0 nfa.Nfa.delta

(* The EXPLAIN payload: fields appended to the reply.  Shared by the
   serve [plan] command and the one-shot [gqd plan] subcommand. *)
let plan_fields ?(obs = Obs.none) cache g text =
  let st = Stats.get g in
  let is_crpq =
    let n = String.length text in
    let rec go i = i + 1 < n && ((text.[i] = '-' && text.[i + 1] = '[') || go (i + 1)) in
    go 0
  in
  if is_crpq then
    match Crpq_parse.parse_res text with
    | Error err -> Error err
    | Ok q ->
        let atoms = Array.of_list (Crpq.atoms q) in
        let plans = Crpq.explain g q in
        Ok
          [
            ("kind", jstr "crpq");
            ("planner", jbool (Planner.enabled_from_env ()));
            ( "cache",
              jobj
                [
                  ( "enabled",
                    jbool (Plan_cache.enabled (Rpq_compile.plans cache)) );
                ] );
            ( "order",
              jarr
                (List.map (fun (ap, _) -> jint ap.Planner.index) plans) );
            ( "atoms",
              jarr
                (List.map
                   (fun (ap, mode) ->
                     jobj
                       ([
                          ("index", jint ap.Planner.index);
                          ("atom", jstr (render_atom atoms.(ap.Planner.index)));
                          ("mode", jstr mode);
                          ( "direction",
                            jstr (Planner.direction_to_string ap.Planner.direction)
                          );
                        ]
                       @ est_fields ap.Planner.est
                       @ [ ("cost", jfloat ap.Planner.cost) ]))
                   plans) );
          ]
  else
    let plan_hit =
      Plan_cache.was_cached (Rpq_compile.plans cache) ~flags:"rpq" text
    in
    match Rpq_compile.compile ~obs cache text with
    | Error err -> Error err
    | Ok c ->
        let product_hit = Rpq_compile.product_cached cache g c in
        let e = Planner.estimate st c.Plan_cache.ast in
        let dir = Planner.direction_of st c.Plan_cache.ast in
        let pe = est_product_edges st c.Plan_cache.nfa in
        let kernel =
          if Rpq_bitset.enabled () then Par_policy.Bitset
          else Par_policy.Scalar
        in
        let d =
          Par_policy.decide ~kernel
            ~max_width:(Pool.size (Pool.default ()))
            ~sources:(int_of_float e.Planner.sources)
            ~product_edges:pe ()
        in
        Ok
          ([
             ("kind", jstr "rpq");
             ("planner", jbool (Planner.enabled_from_env ()));
             ( "cache",
               jobj
                 [
                   ("plan", jstr (if plan_hit then "hit" else "miss"));
                   ("product", jstr (if product_hit then "hit" else "cold"));
                 ] );
             ("direction", jstr (Planner.direction_to_string dir));
           ]
          @ est_fields e
          @ [
              ( "parallel",
                jobj
                  [
                    ( "kernel",
                      jstr
                        (match kernel with
                        | Par_policy.Bitset -> "bitset"
                        | Par_policy.Scalar -> "scalar") );
                    ("width", jint d.Par_policy.width);
                    ("work", jint d.Par_policy.work);
                    ("threshold", jint d.Par_policy.threshold);
                    ("reason", jstr (Par_policy.reason_slug d.Par_policy.reason));
                  ] );
            ])

let cmd_plan sess id text =
  match Epoch.snapshot sess.shared.graph with
  | None -> error_reply id "plan" (Gq_error.Eval "no graph loaded")
  | Some pg -> (
      match
        plan_fields ~obs:sess.shared.config.obs sess.shared.cache (Pg.elg pg)
          text
      with
      | Error err -> error_reply id "plan" err
      | Ok fields -> reply id "plan" ~status:"ok" ~code:0 fields)

(* --- dispatch ------------------------------------------------------------ *)

type action = Reply of string | Silent | Quit of string

let split_first line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let handle sess ctx id line =
  let verb, rest = split_first line in
  match verb with
  | "ping" -> Reply (reply id "ping" ~status:"ok" ~code:0 [])
  | "quit" -> Quit (reply id "quit" ~status:"ok" ~code:0 [])
  | "stats" -> Reply (cmd_stats sess id)
  | "load" ->
      if rest = "" then Reply (parse_error id "load" "load: missing path")
      else Reply (cmd_load sess ctx id rest)
  | "add-edge" ->
      if rest = "" then
        Reply
          (parse_error id "add-edge"
             "add-edge: expected NAME SRC LABEL TGT [key=value ...]")
      else
        Reply
          (match Delta.parse_res ("add " ^ rest) with
          | Error err -> error_reply id "add-edge" err
          | Ok ops -> cmd_delta sess ctx id "add-edge" ops)
  | "del-edge" ->
      if rest = "" then
        Reply (parse_error id "del-edge" "del-edge: expected NAME")
      else
        Reply
          (match Delta.parse_res ("del " ^ rest) with
          | Error err -> error_reply id "del-edge" err
          | Ok ops -> cmd_delta sess ctx id "del-edge" ops)
  | "del-node" ->
      if rest = "" then
        Reply (parse_error id "del-node" "del-node: expected NAME")
      else
        Reply
          (match Delta.parse_res ("deln " ^ rest) with
          | Error err -> error_reply id "del-node" err
          | Ok ops -> cmd_delta sess ctx id "del-node" ops)
  | "delta-load" ->
      if rest = "" then
        Reply (parse_error id "delta-load" "delta-load: missing path")
      else
        Reply
          (match Delta.parse_file_res rest with
          | Error err -> error_reply id "delta-load" err
          | Ok ops -> cmd_delta sess ctx id "delta-load" ops)
  | "save-bin" ->
      if rest = "" then
        Reply (parse_error id "save-bin" "save-bin: missing path")
      else Reply (cmd_save_bin sess ctx id rest)
  | "rpq" ->
      if rest = "" then Reply (parse_error id "rpq" "rpq: missing regex")
      else Reply (cmd_rpq sess ctx id rest)
  | "rpq-from" -> (
      match split_first rest with
      | node, regex when node <> "" && regex <> "" ->
          Reply (cmd_rpq_from sess ctx id node regex)
      | _ -> Reply (parse_error id "rpq-from" "rpq-from: expected NODE REGEX"))
  | "shortest" -> (
      match split_first rest with
      | src, rest' when src <> "" -> (
          match split_first rest' with
          | tgt, regex when tgt <> "" && regex <> "" ->
              Reply (cmd_shortest sess ctx id src tgt regex)
          | _ -> Reply (parse_error id "shortest" "shortest: expected SRC TGT REGEX"))
      | _ -> Reply (parse_error id "shortest" "shortest: expected SRC TGT REGEX"))
  | "query" ->
      if rest = "" then Reply (parse_error id "query" "query: missing query text")
      else Reply (cmd_query sess ctx id rest)
  | "plan" ->
      if rest = "" then Reply (parse_error id "plan" "plan: missing query text")
      else Reply (cmd_plan sess id rest)
  | "set" -> (
      match split_first rest with
      | key, value when key <> "" && value <> "" -> Reply (cmd_set sess id key value)
      | _ -> Reply (parse_error id "set" "set: expected KEY VALUE"))
  | verb ->
      (* Bound the echoed verb: error messages must stay small no matter
         how long the junk line was. *)
      let shown =
        if String.length verb > 64 then String.sub verb 0 64 ^ "..." else verb
      in
      Reply (parse_error id verb (Printf.sprintf "unknown command %S" shown))

(* The outermost safety net: if command handling itself blows up (a bug,
   an injected fault at an unsupervised site, a signal-free OOM), the
   session still answers with a structured error and keeps serving.
   Returns the action plus the governed work (steps) the request spent,
   for the server's per-client token-bucket accounting. *)
let handle_safe sess ~id line =
  let ctx = { spent = 0 } in
  let action =
    try handle sess ctx id line
    with e -> Reply (error_reply id "internal" (Gq_error.of_exn e))
  in
  (action, ctx.spent)

(* --- request batching ----------------------------------------------------- *)

(* Requests coalesce when one evaluation can answer all of them: same
   verb, same regex (hence the same plan-cache entry and compiled
   automaton), same effective budgets and retry policy, and the same
   breaker state for the class — so the shared supervised run behaves
   exactly as each member's solo run would have.  The graph snapshot is
   read once inside the run, which is also what each queued member would
   have seen unbatched.  [rpq-from] keys ignore the source node: the
   bitset kernel packs all the batch's sources into one multi-source
   traversal. *)
let budget_signature sess cls =
  let io = function None -> "-" | Some n -> string_of_int n in
  let fo = function None -> "-" | Some f -> Printf.sprintf "%h" f in
  String.concat ","
    [
      io sess.max_steps;
      io sess.max_results;
      fo sess.timeout;
      string_of_int sess.retry.Retry.max_attempts;
      Breaker.state_to_string
        (Breaker.state (Breaker.Group.get sess.breakers cls));
    ]

let batch_key sess line =
  if not (graph_loaded sess.shared) then None
  else
    match split_first line with
    | "rpq", regex when regex <> "" ->
        Some ("rpq|" ^ regex ^ "|" ^ budget_signature sess "rpq")
    | "rpq-from", rest -> (
        match split_first rest with
        | node, regex when node <> "" && regex <> "" ->
            Some ("rpq-from|" ^ regex ^ "|" ^ budget_signature sess "rpq-from")
        | _ -> None)
    | _ -> None

(* One evaluation, one reply per member, each carrying its own id. *)
let rpq_batch lead ctx members regex =
  let obs = lead.shared.config.obs in
  match Rpq_compile.compile ~obs lead.shared.cache regex with
  | Error err -> List.map (fun (_, id, _) -> error_reply id "rpq" err) members
  | Ok c ->
      let sup =
        supervised_outcome lead ctx ~cls:"rpq" (fun gov ->
            let g = Pg.elg (graph_or_fail lead) in
            Governor.map
              (List.map (fun (u, v) ->
                   Elg.node_name g u ^ " -> " ^ Elg.node_name g v))
              (Rpq_compile.pairs_bounded ~obs lead.shared.cache gov g c))
      in
      List.map
        (fun (_, id, _) ->
          outcome_reply id ~cls:"rpq" sup ~default:[] ~answers_of:Fun.id)
        members

(* Distinct source nodes packed into one multi-source run; members with
   an unknown node get their solo error reply without spoiling the
   batch, and duplicate nodes share one slot (and its answers). *)
let rpq_from_batch lead ctx members regex =
  let obs = lead.shared.config.obs in
  match Rpq_compile.compile ~obs lead.shared.cache regex with
  | Error err ->
      List.map (fun (_, id, _) -> error_reply id "rpq-from" err) members
  | Ok c -> (
      match Epoch.snapshot lead.shared.graph with
      | None ->
          (* [batch_key] requires a loaded graph; unreachable. *)
          List.map
            (fun (_, id, _) ->
              error_reply id "rpq-from" (Gq_error.Eval "no graph loaded"))
            members
      | Some pg ->
          let g = Pg.elg pg in
          let slot = Hashtbl.create 8 in
          let srcs = ref [] and nsrc = ref 0 in
          let resolved =
            List.map
              (fun (_, id, line) ->
                let node, _ = split_first (snd (split_first line)) in
                match Elg.node_id g node with
                | sid ->
                    let k =
                      match Hashtbl.find_opt slot sid with
                      | Some k -> k
                      | None ->
                          let k = !nsrc in
                          Hashtbl.add slot sid k;
                          srcs := sid :: !srcs;
                          incr nsrc;
                          k
                    in
                    Ok (id, k)
                | exception Not_found -> Error (id, node))
              members
          in
          let srcs = Array.of_list (List.rev !srcs) in
          let sup =
            supervised_outcome lead ctx ~cls:"rpq-from" (fun gov ->
                Rpq_compile.from_source_batch ~obs lead.shared.cache gov g c
                  ~srcs)
          in
          List.map
            (function
              | Error (id, node) ->
                  error_reply id "rpq-from" ~attempts:1
                    (Gq_error.Unknown_node node)
              | Ok (id, k) ->
                  (* Render the member's slice straight off the kernel's
                     per-source array — no intermediate id or name
                     lists between the packed run and the wire. *)
                  outcome_reply_render id ~cls:"rpq-from" sup
                    ~render:(fun outcome ->
                      let arr = Governor.payload ~default:[||] outcome in
                      if k < Array.length arr && Array.length arr.(k) > 0
                      then begin
                        let row = arr.(k) in
                        let b = Buffer.create ((16 * Array.length row) + 2) in
                        Buffer.add_char b '[';
                        Array.iteri
                          (fun i v ->
                            if i > 0 then Buffer.add_char b ',';
                            Buffer.add_string b (jstr (Elg.node_name g v)))
                          row;
                        Buffer.add_char b ']';
                        (Buffer.contents b, Array.length row)
                      end
                      else ("[]", 0)))
            resolved)

let handle_batch members =
  match members with
  | [] -> ([], [])
  | (lead, _, line) :: _ ->
      let ctx = { spent = 0 } in
      let verb, rest = split_first line in
      let replies =
        match verb with
        | "rpq" -> rpq_batch lead ctx members rest
        | "rpq-from" -> rpq_from_batch lead ctx members (snd (split_first rest))
        | _ ->
            (* [batch_key] only keys rpq/rpq-from; fall back per member. *)
            List.map
              (fun (sess, id, l) ->
                let action, spent = handle_safe sess ~id l in
                ctx.spent <- ctx.spent + spent;
                match action with Reply r | Quit r -> r | Silent -> "")
              members
      in
      (* Split the governed work across the coalesced requests: every
         member's client is charged a fair share of the one run. *)
      let n = List.length members in
      let share = ctx.spent / n in
      let spents =
        List.mapi
          (fun i _ -> if i = 0 then ctx.spent - (share * (n - 1)) else share)
          members
      in
      (replies, spents)
