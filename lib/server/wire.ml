(* The serve protocol's wire layer: JSON rendering, newline framing with
   a hard line-length bound, UTF-8 validation, and a write loop that
   survives short writes and broken pipes.

   Framing is the robustness boundary of the server: a client that
   streams an endless line must not grow an unbounded buffer, a client
   that sends binary garbage must get a structured reply rather than
   corrupt a JSON stream, and a reply larger than one socket buffer must
   never be truncated because [Unix.write] returned short. *)

(* --- JSON rendering ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* A reply is an ordered list of key/rendered-value pairs. *)
type jfield = string * string

let jstr s = Printf.sprintf "\"%s\"" (json_escape s)
let jint = string_of_int
let jbool = string_of_bool
let jfloat x = Printf.sprintf "%.1f" x

let jobj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields)
  ^ "}"

let jarr items = "[" ^ String.concat "," items ^ "]"

(* --- UTF-8 validation ---------------------------------------------------- *)

(* Standard table-free validator: accepts exactly well-formed UTF-8
   (RFC 3629) — no overlongs, no surrogates, nothing above U+10FFFF. *)
let utf8_valid s =
  let n = String.length s in
  let byte i = Char.code s.[i] in
  let cont i = i < n && byte i land 0xC0 = 0x80 in
  let rec go i =
    if i >= n then true
    else
      let b = byte i in
      if b < 0x80 then go (i + 1)
      else if b < 0xC2 then false (* continuation or overlong lead *)
      else if b < 0xE0 then cont (i + 1) && go (i + 2)
      else if b < 0xF0 then
        cont (i + 1) && cont (i + 2)
        && (b <> 0xE0 || byte (i + 1) >= 0xA0) (* overlong *)
        && (b <> 0xED || byte (i + 1) < 0xA0) (* surrogates *)
        && go (i + 3)
      else if b < 0xF5 then
        cont (i + 1) && cont (i + 2) && cont (i + 3)
        && (b <> 0xF0 || byte (i + 1) >= 0x90) (* overlong *)
        && (b <> 0xF4 || byte (i + 1) < 0x90) (* > U+10FFFF *)
        && go (i + 4)
      else false
  in
  go 0

(* --- newline framing with a length bound --------------------------------- *)

type frame =
  | Line of string  (* a complete, length-bounded, valid-UTF-8 line *)
  | Too_long of int  (* a line exceeded the bound; payload discarded *)
  | Bad_utf8  (* a complete line that is not well-formed UTF-8 *)

module Framer = struct
  type t = {
    max_line : int;
    pending : Buffer.t;
    mutable discarding : bool;
        (* inside an over-long line: swallow bytes until its newline *)
  }

  let create ?(max_line = 65536) () =
    { max_line = max 1 max_line; pending = Buffer.create 256; discarding = false }

  let finish_line t acc =
    let line = Buffer.contents t.pending in
    Buffer.clear t.pending;
    if t.discarding then begin
      t.discarding <- false;
      Too_long t.max_line :: acc
    end
    else if utf8_valid line then Line line :: acc
    else Bad_utf8 :: acc

  (* Feed [len] bytes; returns the complete frames, oldest first.  A
     line longer than [max_line] yields exactly one [Too_long] once its
     terminating newline (or EOF flush) arrives; its payload is never
     buffered beyond the bound. *)
  let feed t bytes len =
    let frames = ref [] in
    for i = 0 to len - 1 do
      let c = Bytes.get bytes i in
      if c = '\n' then frames := finish_line t !frames
      else if not t.discarding then begin
        if Buffer.length t.pending >= t.max_line then begin
          Buffer.clear t.pending;
          t.discarding <- true
        end
        else Buffer.add_char t.pending c
      end
    done;
    List.rev !frames

  (* EOF: the unterminated remainder, if any, as a final frame — so a
     piped command file without a trailing newline still runs its last
     command, matching the old [input_line] behaviour. *)
  let flush t =
    if Buffer.length t.pending = 0 && not t.discarding then None
    else
      match finish_line t [] with frame :: _ -> Some frame | [] -> None
end

(* --- writes that survive short writes and broken pipes ------------------- *)

(* Loop until every byte is written.  [EINTR] retries; [EPIPE],
   [ECONNRESET] and any other write error mean the peer is gone — the
   caller drops that one client and keeps serving the rest.  (Serve-mode
   processes ignore [SIGPIPE]; see [Server.run].) *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write fd b off (n - off) with
      | 0 -> Error `Closed
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> Error `Closed
  in
  go 0
