(* The concurrent multi-client server behind `gqd --listen`, and the
   hardened single-session stdio loop behind `gqd --serve`.

   Architecture: one I/O domain multiplexes the listening socket and
   every connected client with [Unix.select]; complete frames are
   admitted into a bounded [Admission] queue; a fixed pool of worker
   domains pops requests, runs them through [Session.handle_safe]
   (shared graph snapshot, shared compilation cache, per-client
   breakers and budgets) and writes the reply back under the client's
   write lock.  Everything that crosses domains is an atomic, a mutex,
   or the queue.

   Admission control, in the order a frame meets it:
     - connect: beyond [max_clients], the connection is answered with a
       structured "shed" reply and closed;
     - per-client in-flight quota: more than [client_inflight]
       unanswered requests from one client are shed, not queued — one
       client cannot occupy the whole queue;
     - per-client budget: a token bucket refilled at
       [client_steps_per_sec] governor-steps per second; a client in
       debt is shed with a computed retry_after_ms until the bucket
       refills.  This is what isolates well-behaved clients from a
       pathological one on any machine, including a single core: the
       expensive client burns its bucket and is then shed (costing ~no
       CPU) while others keep their latency;
     - queue depth: a full queue sheds instead of growing — bounded
       queue + shedding keeps tail latency flat under overload.

   A wall-clock watchdog ([Watchdog], swept by the I/O loop) cancels
   any evaluation running past [hard_deadline], so a runaway query
   returns a structured partial reply instead of occupying a worker
   forever.

   Graceful drain (SIGTERM/SIGINT or [drain]): stop accepting and
   reading, close the admission queue, let workers finish the backlog
   (watchdog still sweeping), join them, close every client — no
   admitted request is ever dropped without a reply. *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* "unix:PATH" | "tcp:HOST:PORT" | "tcp:PORT" | bare path. *)
let parse_listen s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefixed "unix:" then Ok (Unix_path (after "unix:"))
  else if prefixed "tcp:" then
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && host <> "" -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "invalid tcp address %S" rest))
    | None -> (
        match int_of_string_opt rest with
        | Some p when p >= 0 -> Ok (Tcp ("127.0.0.1", p))
        | _ -> Error (Printf.sprintf "invalid tcp address %S" rest))
  else if s = "" then Error "empty listen address"
  else Ok (Unix_path s)

type config = {
  listen : addr;
  max_clients : int;
  queue_depth : int;
  client_inflight : int;
  client_steps_per_sec : int;  (* 0 = no per-client budget *)
  workers : int option;  (* None: GQ_DOMAINS / recommended (Pool) *)
  hard_deadline : float option;  (* wall-clock seconds per evaluation *)
  retry_after_ms : int;  (* baseline back-off hint in shed replies *)
  max_line : int;
  session : Session.config;
}

let default_config ~listen session =
  {
    listen;
    max_clients = 64;
    queue_depth = 128;
    client_inflight = 4;
    client_steps_per_sec = 0;
    workers = None;
    hard_deadline = None;
    retry_after_ms = 50;
    max_line = 65536;
    session;
  }

(* --- per-client token bucket --------------------------------------------- *)

(* Refilled at [rate] governor-steps/second, capacity one second's
   worth; charged post-evaluation with the steps the request actually
   spent.  Debt is capped at two seconds' worth so one accidental
   monster query locks a client out for a bounded time, while a
   sustained flood keeps the client pinned at max debt (shed at ~zero
   CPU cost until it relents). *)
type bucket = {
  block : Mutex.t;
  mutable level : float;
  mutable last : float;
  rate : float;
}

let bucket_make ~now rate = { block = Mutex.create (); level = rate; last = now; rate }

let bucket_refill b ~now =
  b.level <- Float.min b.rate (b.level +. ((now -. b.last) *. b.rate));
  b.last <- now

(* (admitted, retry_after_ms when not). *)
let bucket_admit b ~now =
  Mutex.lock b.block;
  bucket_refill b ~now;
  let ok = b.level > 0.0 in
  let wait_ms =
    if ok then 0
    else int_of_float (Float.ceil ((1.0 -. b.level) /. b.rate *. 1000.0))
  in
  Mutex.unlock b.block;
  (ok, wait_ms)

let bucket_charge b spent =
  Mutex.lock b.block;
  b.level <- Float.max (b.level -. float_of_int spent) (-2.0 *. b.rate);
  Mutex.unlock b.block

(* --- server state --------------------------------------------------------- *)

type client = {
  cid : int;
  fd : Unix.file_descr;  (* non-blocking *)
  framer : Wire.Framer.t;
  session : Session.t;
  inflight : int Atomic.t;
  wlock : Mutex.t;  (* guards [obuf] and ordering of writes to [fd] *)
  obuf : Buffer.t;  (* replies the socket couldn't take yet *)
  alive : bool Atomic.t;  (* write side usable; cleared on write error *)
  closing : bool Atomic.t;  (* quit seen: close once in-flight drains *)
  bucket : bucket option;
  mutable input_done : bool;  (* I/O domain only: EOF / read error *)
  mutable next_id : int;  (* I/O domain only *)
}

type request = { rc : client; rid : int; rline : string }

type state = {
  cfg : config;
  obs : Obs.t;
  shared : Session.shared;
  queue : request Admission.t;
  listen_fd : Unix.file_descr;
  actual : addr;
  draining : bool Atomic.t;
  stopped : bool Atomic.t;
  nclients : int Atomic.t;
  batched : int Atomic.t;  (* requests answered from a coalesced run *)
  workers_done : int Atomic.t;
  nworkers : int;
  rbuf : Bytes.t;  (* I/O domain read scratch *)
  mutable next_cid : int;  (* I/O domain only *)
  mutable listener_open : bool;  (* I/O domain only *)
}

type t = { st : state; io : unit Domain.t }

(* --- replies over the wire ------------------------------------------------ *)

(* Client sockets are non-blocking and every reply goes through a
   bounded per-client output buffer: a reader that stalls (or floods
   without reading, like a hostile pipeline) can never block the I/O
   domain or a worker mid-[send] — that would wedge every other client
   behind one slow socket.  What the socket can't take immediately is
   buffered and flushed by the I/O loop when [select] reports the fd
   writable; past [max_pending] bytes the client is dropped. *)
let max_pending = 1 lsl 20

(* Write as much as the socket accepts without blocking. *)
let write_nb fd s off0 =
  let len = String.length s in
  let rec go off =
    if off >= len then `All
    else
      match Unix.write_substring fd s off (len - off) with
      | 0 -> `Partial off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          `Partial off
      | exception Unix.Unix_error (_, _, _) -> `Failed
  in
  go off0

let send st c line =
  let s = line ^ "\n" in
  Mutex.lock c.wlock;
  let r =
    if not (Atomic.get c.alive) then `Dead
    else if Buffer.length c.obuf > 0 then
      if Buffer.length c.obuf + String.length s > max_pending then `Slow
      else begin
        Buffer.add_string c.obuf s;
        `Sent
      end
    else
      match write_nb c.fd s 0 with
      | `All -> `Sent
      | `Failed -> `Err
      | `Partial off ->
          Buffer.add_substring c.obuf s off (String.length s - off);
          `Sent
  in
  Mutex.unlock c.wlock;
  match r with
  | `Sent -> Obs.incr st.obs "server.replies"
  | `Dead -> ()
  | `Err ->
      (* EPIPE or peer reset: drop only this client; its in-flight work
         still completes (and discards its replies here). *)
      if Atomic.exchange c.alive false then
        Obs.incr st.obs "server.write_drops"
  | `Slow ->
      if Atomic.exchange c.alive false then
        Obs.incr st.obs "server.slow_drops"

let has_pending c =
  Mutex.lock c.wlock;
  let p = Buffer.length c.obuf > 0 in
  Mutex.unlock c.wlock;
  p

(* I/O domain, when [select] reports [c.fd] writable. *)
let flush_pending st c =
  Mutex.lock c.wlock;
  (if Atomic.get c.alive && Buffer.length c.obuf > 0 then begin
     let s = Buffer.contents c.obuf in
     match write_nb c.fd s 0 with
     | `All -> Buffer.clear c.obuf
     | `Partial off ->
         let rest = String.sub s off (String.length s - off) in
         Buffer.clear c.obuf;
         Buffer.add_string c.obuf rest
     | `Failed ->
         Buffer.clear c.obuf;
         if Atomic.exchange c.alive false then
           Obs.incr st.obs "server.write_drops"
   end);
  Mutex.unlock c.wlock

let shed st c ~id ~cmd ~reason ~retry_after_ms =
  Obs.incr st.obs ("server.shed." ^ reason);
  send st c (Session.shed_reply ~id ~cmd ~reason ~retry_after_ms)

(* --- worker domains ------------------------------------------------------- *)

(* One batch fills at most one bitset word: a leader plus 62 stolen
   requests pack 63 sources into a single multi-source sweep. *)
let max_batch = 63

let worker st () =
  let gauge_inflight = Obs.gauge_fn st.obs "server.inflight" in
  let finish c =
    (* Decrement last: while a request is in flight its client's fd
       is never closed, so a worker can never write into a reused
       descriptor. *)
    ignore (Atomic.fetch_and_add c.inflight (-1));
    gauge_inflight (-1)
  in
  let solo c rid rline =
    let action, spent = Session.handle_safe c.session ~id:rid rline in
    (match c.bucket with
    | Some b when spent > 0 -> bucket_charge b spent
    | _ -> ());
    match action with
    | Session.Silent -> ()
    | Session.Reply s -> send st c s
    | Session.Quit s ->
        send st c s;
        Atomic.set c.closing true
  in
  let batched lead rid rline key =
    match
      Admission.take_matching st.queue ~limit:(max_batch - 1) ~f:(fun r ->
          Atomic.get r.rc.alive
          && Session.batch_key r.rc.session r.rline = Some key)
    with
    | [] -> solo lead rid rline
    | stolen ->
        let members = { rc = lead; rid; rline } :: stolen in
        ignore (Atomic.fetch_and_add st.batched (List.length members));
        Obs.add st.obs "server.batched" (List.length members);
        let replies, spents =
          Session.handle_batch
            (List.map (fun r -> (r.rc.session, r.rid, r.rline)) members)
        in
        List.iter2
          (fun r (reply, spent) ->
            (match r.rc.bucket with
            | Some b when spent > 0 -> bucket_charge b spent
            | _ -> ());
            send st r.rc reply)
          members
          (List.combine replies spents);
        (* The leader's inflight is decremented by the pop loop; stolen
           requests are finished here (per request, not per client — a
           pipelining client may own several members of one batch). *)
        List.iter (fun r -> finish r.rc) stolen
  in
  let rec loop () =
    match Admission.pop st.queue with
    | None -> ()
    | Some { rc = c; rid; rline } ->
        (if Atomic.get c.alive then
           match Session.batch_key c.session rline with
           | Some key -> batched c rid rline key
           | None -> solo c rid rline);
        finish c;
        loop ()
  in
  loop ();
  ignore (Atomic.fetch_and_add st.workers_done 1)

(* --- admission ------------------------------------------------------------ *)

let verb_of line = fst (Session.split_first line)

let admit st c frame =
  match frame with
  | Wire.Too_long _ | Wire.Bad_utf8 ->
      c.next_id <- c.next_id + 1;
      Obs.incr st.obs
        (match frame with
        | Wire.Too_long _ -> "server.bad_frame.too_long"
        | _ -> "server.bad_frame.utf8");
      send st c (Session.frame_error_reply ~id:c.next_id frame)
  | Wire.Line raw ->
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else begin
        c.next_id <- c.next_id + 1;
        let id = c.next_id in
        let cmd = verb_of line in
        Obs.incr st.obs "server.requests";
        if Atomic.get st.draining then
          shed st c ~id ~cmd ~reason:"draining"
            ~retry_after_ms:st.cfg.retry_after_ms
        else if Atomic.get c.inflight >= st.cfg.client_inflight then
          shed st c ~id ~cmd ~reason:"client-quota"
            ~retry_after_ms:st.cfg.retry_after_ms
        else begin
          let admitted, wait_ms =
            match c.bucket with
            | None -> (true, 0)
            | Some b -> bucket_admit b ~now:(Unix.gettimeofday ())
          in
          if not admitted then
            shed st c ~id ~cmd ~reason:"client-budget"
              ~retry_after_ms:(max st.cfg.retry_after_ms wait_ms)
          else begin
            ignore (Atomic.fetch_and_add c.inflight 1);
            Obs.gauge_add st.obs "server.inflight" 1;
            match Admission.push st.queue { rc = c; rid = id; rline = line } with
            | `Ok -> ()
            | `Full | `Closed ->
                ignore (Atomic.fetch_and_add c.inflight (-1));
                Obs.gauge_add st.obs "server.inflight" (-1);
                shed st c ~id ~cmd ~reason:"queue-full"
                  ~retry_after_ms:st.cfg.retry_after_ms
          end
        end
      end

(* --- I/O domain ----------------------------------------------------------- *)

let register_gov st gov =
  match st.cfg.hard_deadline with
  | None -> fun () -> ()
  | Some hd ->
      let tok = Watchdog.register ~deadline:(Unix.gettimeofday () +. hd) gov in
      fun () -> Watchdog.unregister tok

(* Appended to every `stats` reply in listen mode. *)
let server_stats st () =
  [
    ( "server",
      Wire.jobj
        [
          ("clients", Wire.jint (Atomic.get st.nclients));
          ("queue", Wire.jint (Admission.depth st.queue));
          ("batched", Wire.jint (Atomic.get st.batched));
          ("draining", Wire.jbool (Atomic.get st.draining));
        ] );
  ]

let close_client st c =
  Atomic.set c.alive false;
  (try Unix.close c.fd with Unix.Unix_error _ -> ());
  ignore (Atomic.fetch_and_add st.nclients (-1));
  Obs.gauge_add st.obs "server.clients" (-1);
  Obs.incr st.obs "server.disconnects"

let close_listener st =
  if st.listener_open then begin
    st.listener_open <- false;
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    match st.actual with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let accept_one st clients =
  match Unix.accept st.listen_fd with
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
    ->
      ()
  | fd, _ ->
      if
        Atomic.get st.draining
        || List.length !clients >= st.cfg.max_clients
      then begin
        (* Over capacity: answer with a structured shed so the client
           can back off, instead of a silent RST or an unbounded
           accept. *)
        Obs.incr st.obs "server.shed.max-clients";
        ignore
          (Wire.write_all fd
             (Session.shed_reply ~id:0 ~cmd:"connect" ~reason:"max-clients"
                ~retry_after_ms:st.cfg.retry_after_ms
             ^ "\n"));
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        (match st.actual with
        | Tcp _ -> (
            try Unix.setsockopt fd Unix.TCP_NODELAY true
            with Unix.Unix_error _ -> ())
        | Unix_path _ -> ());
        (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
        st.next_cid <- st.next_cid + 1;
        let now = Unix.gettimeofday () in
        let c =
          {
            cid = st.next_cid;
            fd;
            framer = Wire.Framer.create ~max_line:st.cfg.max_line ();
            session =
              Session.create ~register_gov:(register_gov st)
                ~extra_stats:(server_stats st) st.shared;
            inflight = Atomic.make 0;
            wlock = Mutex.create ();
            obuf = Buffer.create 256;
            alive = Atomic.make true;
            closing = Atomic.make false;
            bucket =
              (if st.cfg.client_steps_per_sec > 0 then
                 Some (bucket_make ~now (float_of_int st.cfg.client_steps_per_sec))
               else None);
            input_done = false;
            next_id = 0;
          }
        in
        clients := !clients @ [ c ];
        ignore (Atomic.fetch_and_add st.nclients 1);
        Obs.gauge_add st.obs "server.clients" 1;
        Obs.incr st.obs "server.accepted"
      end

let read_client st c =
  match Unix.read c.fd st.rbuf 0 (Bytes.length st.rbuf) with
  | exception
      Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()
  | exception Unix.Unix_error (_, _, _) ->
      Atomic.set c.alive false;
      c.input_done <- true
  | 0 ->
      c.input_done <- true;
      (* Unterminated trailing line: still a command (EOF flush). *)
      (match Wire.Framer.flush c.framer with
      | Some frame -> admit st c frame
      | None -> ())
  | n -> List.iter (admit st c) (Wire.Framer.feed c.framer st.rbuf n)

(* A client record is reaped only once nothing can still write to it
   (no in-flight requests), its input side is finished (EOF, quit, or a
   dead write side), and every buffered reply has reached the socket —
   closing with output pending would drop tail replies. *)
let reapable c =
  Atomic.get c.inflight = 0
  && (c.input_done || Atomic.get c.closing || not (Atomic.get c.alive))
  && ((not (Atomic.get c.alive)) || not (has_pending c))

(* How long a drain waits for a non-reading client to take its buffered
   replies before forfeiting them: graceful shutdown must not hinge on
   a peer that stopped reading. *)
let drain_flush_deadline = 5.0

let io_main st workers =
  let clients = ref [] in
  let finished = ref false in
  let drain_started = ref None in
  let wfds_of () =
    List.filter_map
      (fun c -> if Atomic.get c.alive && has_pending c then Some c.fd else None)
      !clients
  in
  let flush_ready wready =
    List.iter
      (fun c -> if List.mem c.fd wready then flush_pending st c)
      !clients
  in
  while not !finished do
    let now = Unix.gettimeofday () in
    let cancelled = Watchdog.sweep ~now in
    if cancelled > 0 then Obs.add st.obs "server.watchdog.cancelled" cancelled;
    (* Interval-policy group commit: bound the unsynced window even when
       no new update arrives to trigger the fsync. *)
    Session.wal_tick st.shared;
    let keep, dead = List.partition (fun c -> not (reapable c)) !clients in
    List.iter (close_client st) dead;
    clients := keep;
    if Atomic.get st.draining then begin
      (* Drain: stop accepting and reading; the closed queue feeds
         workers the backlog, the watchdog keeps sweeping so even a
         runaway in-flight query terminates, and buffered replies keep
         flushing so nothing already answered is lost. *)
      close_listener st;
      if not (Admission.closed st.queue) then Admission.close st.queue;
      (match !drain_started with
      | None -> drain_started := Some now
      | Some t0 ->
          if now -. t0 > drain_flush_deadline then
            List.iter
              (fun c ->
                if Atomic.get c.alive && has_pending c then begin
                  if Atomic.exchange c.alive false then
                    Obs.incr st.obs "server.slow_drops"
                end)
              !clients);
      if
        Atomic.get st.workers_done = st.nworkers
        && List.for_all (fun c -> Atomic.get c.inflight = 0) !clients
        && List.for_all
             (fun c -> (not (Atomic.get c.alive)) || not (has_pending c))
             !clients
      then begin
        List.iter (close_client st) !clients;
        clients := [];
        finished := true
      end
      else begin
        match Unix.select [] (wfds_of ()) [] 0.01 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | _, wready, _ -> flush_ready wready
      end
    end
    else begin
      let fds =
        st.listen_fd
        :: List.filter_map
             (fun c ->
               if
                 Atomic.get c.alive && (not c.input_done)
                 && not (Atomic.get c.closing)
               then Some c.fd
               else None)
             !clients
      in
      match Unix.select fds (wfds_of ()) [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, wready, _ ->
          flush_ready wready;
          if List.mem st.listen_fd ready then accept_one st clients;
          List.iter
            (fun c -> if List.mem c.fd ready then read_client st c)
            !clients
    end
  done;
  Array.iter Domain.join workers;
  (* Workers are gone: nothing can append any more; flush and close. *)
  Session.wal_close st.shared;
  close_listener st;
  Atomic.set st.stopped true

(* --- lifecycle ------------------------------------------------------------ *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found -> Unix.inet_addr_loopback)

let make_listener = function
  | Unix_path path ->
      (* A stale socket file from a crashed predecessor would make bind
         fail; serving is the only use of these paths, so remove it. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, Unix_path path)
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd 64;
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> Tcp (host, p)
        | _ -> Tcp (host, port)
      in
      (fd, actual)

(* Client side of [addr]: one connected stream socket. *)
let connect = function
  | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (resolve_host host, port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      fd

let launch ?wal ?initial cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, actual = make_listener cfg.listen in
  let obs = cfg.session.Session.obs in
  let nworkers =
    match cfg.workers with
    | Some n -> max 1 n
    | None -> max 1 (Pool.size (Pool.default ()))
  in
  let gauge_depth = Obs.gauge_fn obs "server.queue.depth" in
  let depth_seen = ref 0 in
  let shared = Session.make_shared ?wal cfg.session in
  (* A recovered snapshot (gqd --wal) is live before the first client
     connects. *)
  Option.iter (Session.publish_initial shared) initial;
  let st =
    {
      cfg;
      obs;
      shared;
      queue =
        Admission.create ~capacity:cfg.queue_depth
          ~on_depth:(fun d ->
            gauge_depth (d - !depth_seen);
            depth_seen := d)
          ();
      listen_fd;
      actual;
      draining = Atomic.make false;
      stopped = Atomic.make false;
      nclients = Atomic.make 0;
      batched = Atomic.make 0;
      workers_done = Atomic.make 0;
      nworkers;
      rbuf = Bytes.create 8192;
      next_cid = 0;
      listener_open = true;
    }
  in
  let workers = Array.init nworkers (fun _ -> Domain.spawn (worker st)) in
  let io = Domain.spawn (fun () -> io_main st workers) in
  { st; io }

let addr t = t.st.actual
let drain t = Atomic.set t.st.draining true

(* Poll-then-join: polling keeps the main domain responsive to signals
   (a SIGTERM handler calling [drain] fires between sleeps), joining
   guarantees the I/O domain has fully shut down before we return. *)
let await t =
  while not (Atomic.get t.st.stopped) do
    try Unix.sleepf 0.05 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Domain.join t.io

let run ?wal ?initial cfg =
  let t = launch ?wal ?initial cfg in
  let stop _ = drain t in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
  await t

(* --- hardened stdio session (gqd --serve) --------------------------------- *)

(* The single-client loop, on the same wire layer as the server: line
   length is bounded, malformed UTF-8 gets a structured reply, and
   writes survive short writes / a closed stdout (exit instead of
   SIGPIPE death). *)
let run_stdio ?(max_line = 65536) ?wal ?initial scfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let shared = Session.make_shared ?wal scfg in
  Option.iter (Session.publish_initial shared) initial;
  let sess = Session.create shared in
  let framer = Wire.Framer.create ~max_line () in
  let buf = Bytes.create 8192 in
  let id = ref 0 in
  let emit s =
    match Wire.write_all Unix.stdout (s ^ "\n") with
    | Ok () -> true
    | Error `Closed -> false
  in
  (* [true] to keep serving. *)
  let handle_frame frame =
    match frame with
    | Wire.Too_long _ | Wire.Bad_utf8 ->
        incr id;
        emit (Session.frame_error_reply ~id:!id frame)
    | Wire.Line raw ->
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then true
        else begin
          incr id;
          match Session.handle_safe sess ~id:!id line with
          | Session.Silent, _ -> true
          | Session.Reply s, _ -> emit s
          | Session.Quit s, _ ->
              ignore (emit s);
              false
        end
  in
  (* Under fsync=interval the bounded-loss window must hold even when
     the client goes quiet: poll stdin with a timeout and tick the WAL
     while idle, mirroring [io_main]'s periodic sweep.  Other policies
     (and no WAL) keep the plain blocking read. *)
  let interval_wal =
    match wal with
    | Some w -> ( match Wal.policy w with Wal.Interval _ -> true | _ -> false)
    | None -> false
  in
  let rec serve () =
    if interval_wal then begin
      match Unix.select [ Unix.stdin ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> serve ()
      | [], _, _ ->
          Session.wal_tick shared;
          serve ()
      | _ -> read_once ()
    end
    else read_once ()
  and read_once () =
    match Unix.read Unix.stdin buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> serve ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | 0 -> (
        match Wire.Framer.flush framer with
        | Some frame -> ignore (handle_frame frame)
        | None -> ())
    | n ->
        let rec go = function
          | [] -> serve ()
          | f :: fs -> if handle_frame f then go fs else ()
        in
        go (Wire.Framer.feed framer buf n)
  in
  serve ();
  Session.wal_close shared
