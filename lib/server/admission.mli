(** Bounded MPMC request queue between the server's I/O domain and its
    worker domains — the overload valve of admission control.

    {!push} never blocks: a full queue answers [`Full] and the caller
    sheds the request with a structured reply, so tail latency stays
    flat under overload instead of growing with an unbounded backlog.
    {!pop} blocks until work arrives; after {!close}, workers drain the
    remaining items and then receive [None] — the graceful-shutdown
    path. *)

type 'a t

(** [on_depth] is called with the new depth on every push/pop, under
    the queue lock — keep it cheap (a gauge update). *)
val create : ?on_depth:(int -> unit) -> capacity:int -> unit -> 'a t

val push : 'a t -> 'a -> [ `Ok | `Full | `Closed ]

(** Blocks; [None] once the queue is closed and drained. *)
val pop : 'a t -> 'a option

(** [take_matching t ~limit ~f] — remove and return up to [limit] queued
    items satisfying [f], oldest first, leaving the rest in order.  The
    request-batching hook: a worker that popped a request steals the
    queued requests its evaluation can also answer.  Runs under the
    queue lock; [f] must be cheap and must not touch the queue. *)
val take_matching : 'a t -> limit:int -> f:('a -> bool) -> 'a list

(** Idempotent; wakes every blocked {!pop}. *)
val close : 'a t -> unit

val depth : 'a t -> int
val capacity : 'a t -> int
val closed : 'a t -> bool
