(** Concurrent multi-client serve mode ([gqd --listen]) and the
    hardened single-session stdio loop ([gqd --serve]).

    One I/O domain multiplexes the listener and every client socket;
    complete frames pass admission control (connection cap, per-client
    in-flight quota, per-client token-bucket budget, bounded queue —
    each refusal is a structured ["shed"] reply with a retry hint) into
    an {!Admission} queue consumed by worker domains running
    {!Session.handle_safe} over a shared graph snapshot and compilation
    cache.  A wall-clock {!Watchdog}, swept by the I/O loop, cancels
    evaluations past [hard_deadline].  SIGTERM/SIGINT drain gracefully:
    stop accepting, finish (or shed) the backlog, reply to everything
    admitted, exit 0. *)

type addr = Unix_path of string | Tcp of string * int

val addr_to_string : addr -> string

(** ["unix:PATH"], ["tcp:HOST:PORT"], ["tcp:PORT"] (loopback), or a
    bare filesystem path. *)
val parse_listen : string -> (addr, string) result

type config = {
  listen : addr;
  max_clients : int;
  queue_depth : int;
  client_inflight : int;  (** per-client unanswered-request quota *)
  client_steps_per_sec : int;
      (** per-client budget refill rate in governor steps/second;
          0 disables the bucket.  Charged with the steps each request
          actually spent, debt capped at two seconds' worth — a
          pathological client is shed at ~zero CPU cost, which is what
          isolates the others even on one core. *)
  workers : int option;  (** [None]: GQ_DOMAINS / recommended *)
  hard_deadline : float option;
      (** wall-clock seconds before the watchdog cancels an evaluation *)
  retry_after_ms : int;  (** baseline back-off hint in shed replies *)
  max_line : int;
  session : Session.config;
}

val default_config : listen:addr -> Session.config -> config

(** Client side: one connected stream socket to [addr] (used by
    [gqd client], the load smoke test and bench E21). *)
val connect : addr -> Unix.file_descr

(** {1 Lifecycle} *)

type t

(** Bind, listen, spawn workers and the I/O domain; returns once the
    socket accepts connections.  Ignores [SIGPIPE] process-wide.
    [wal] makes updates durable (see {!Session.make_shared}); the I/O
    loop runs its interval fsync tick and shutdown closes it.
    [initial] publishes a recovered snapshot before serving starts. *)
val launch : ?wal:Wal.t -> ?initial:Pg.t -> config -> t

(** The bound address — for [Tcp] with port 0, the actual port. *)
val addr : t -> addr

(** Begin graceful drain (async-signal-safe: one atomic store). *)
val drain : t -> unit

(** Block until fully drained and every domain has exited. *)
val await : t -> unit

(** [launch] + SIGTERM/SIGINT handlers that {!drain} + {!await}. *)
val run : ?wal:Wal.t -> ?initial:Pg.t -> config -> unit

(** {1 Stdio mode} *)

(** The single-session [gqd --serve] loop on the same wire layer:
    bounded line length, structured replies to malformed input, writes
    that survive a closed stdout.  [wal] / [initial] as in {!launch}. *)
val run_stdio :
  ?max_line:int -> ?wal:Wal.t -> ?initial:Pg.t -> Session.config -> unit
