(** One serve-protocol session: command dispatch behind both
    [gqd --serve] (single stdio session) and [gqd --listen] (one
    session per client over shared state).

    A session owns everything one client may mutate — retry policy,
    budgets, per-query-class breakers — while the graph snapshot and
    the compilation cache live in the {!shared} record, safe to use
    from every worker domain: the snapshot is an {!Epoch}-published
    immutable value ([load] replaces it wholesale; [add-edge] /
    [del-edge] / [delta-load] publish an incrementally-built successor,
    each paired with its cache invalidation under one writer lock), and
    the cache synchronises internally.  Readers never block on writers:
    an in-flight query keeps evaluating against the epoch it grabbed.

    Reply shape and field order are fixed (see README "Serving"): the
    stdio transcripts are byte-stable golden files. *)

(** {1 Configuration and shared state} *)

type config = {
  retries : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  degraded_max_steps : int;
  initial_max_steps : int option;
  initial_max_results : int option;
  initial_timeout : float option;
  ceiling_max_steps : int option;
      (** server-wide clamp: a client's [set max-steps] cannot exceed it *)
  ceiling_max_results : int option;
  ceiling_timeout : float option;
  obs : Obs.t;
}

val default_config : config

(** State shared by every session of one server process: config, the
    compilation cache, and the published graph snapshot. *)
type shared

(** [wal] makes every update durable: [add-edge] / [del-edge] /
    [del-node] / [delta-load] append to the log (under the writer lock,
    before publishing) and reply with [durable] / [wal_lsn]; [load]
    checkpoints; [stats] gains a ["wal"] object. *)
val make_shared : ?wal:Wal.t -> config -> shared

val shared_config : shared -> config
val shared_cache : shared -> Rpq_compile.t
val graph_loaded : shared -> bool

(** Current snapshot epoch (0 before the first [load]). *)
val shared_epoch : shared -> int

(** Publish a recovered snapshot before serving starts (what [load]
    does, minus the file read and the checkpoint). *)
val publish_initial : shared -> Pg.t -> unit

(** Periodic WAL housekeeping (interval-policy fsync), from the server's
    I/O loop; takes the writer lock.  No-op without a WAL. *)
val wal_tick : shared -> unit

(** Flush and close the WAL at shutdown.  No-op without a WAL. *)
val wal_close : shared -> unit

(** {1 Sessions} *)

type t

(** [register_gov] is the watchdog hook: called with each governor as
    its evaluation starts (including the degraded rescue governor),
    returning the matching unregister thunk.  [extra_stats] fields are
    appended to every [stats] reply (the server adds a ["server"]
    object). *)
val create :
  ?register_gov:(Governor.t -> unit -> unit) ->
  ?extra_stats:(unit -> Wire.jfield list) ->
  shared ->
  t

type action =
  | Reply of string
  | Silent
  | Quit of string  (** final reply; the session is over *)

(** Dispatch one command line.  Never raises: even a bug in handling
    answers a structured ["internal"] error.  Also returns the governed
    work (steps) the request spent, for per-client budget accounting. *)
val handle_safe : t -> id:int -> string -> action * int

(** First space-separated token and trimmed remainder. *)
val split_first : string -> string * string

(** {1 Request batching}

    Queued requests that would run the same compiled automaton under the
    same budgets coalesce into one evaluation, fanned back out per
    client (the serve-mode face of the multi-source bitset kernel). *)

(** [batch_key sess line] — [Some key] when [line] is batchable for this
    session: rpq / rpq-from with the key covering verb, regex, effective
    budgets, retry policy and breaker state (rpq-from keys ignore the
    source node — sources pack into one multi-source run).  [None] for
    everything else, including when no graph is loaded. *)
val batch_key : t -> string -> string option

(** [handle_batch members] — evaluate a batch of key-equal requests
    [(session, id, line)] once and render one reply per member, in
    order, each under its own id; the second list is each member's share
    of the governed work (for token-bucket charging).  The first member
    is the leader: its session's budgets/retry/breaker drive the run
    (equal across members by construction of the key). *)
val handle_batch : (t * int * string) list -> string list * int list

(** {1 Reply rendering} *)

val reply :
  int -> string -> status:string -> code:int -> Wire.jfield list -> string

val error_reply : int -> string -> ?attempts:int -> Gq_error.t -> string

(** Structured load-shedding reply ([status:"shed"], [code:4]): the
    admission controller answers instead of evaluating; clients should
    back off [retry_after_ms] before resending. *)
val shed_reply :
  id:int -> cmd:string -> reason:string -> retry_after_ms:int -> string

(** Structured reply for a frame the wire layer rejected (over-long or
    non-UTF-8 input).  @raise Invalid_argument on [Wire.Line]. *)
val frame_error_reply : id:int -> Wire.frame -> string

(** {1 EXPLAIN} *)

(** The EXPLAIN payload fields, shared by the serve [plan] command and
    the one-shot [gqd plan] subcommand. *)
val plan_fields :
  ?obs:Obs.t ->
  Rpq_compile.t ->
  Elg.t ->
  string ->
  (Wire.jfield list, Gq_error.t) result
