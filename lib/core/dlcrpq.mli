(** CRPQs with data tests and list variables — dl-CRPQs (Section 3.2.2).

    Identical to l-CRPQs except that atoms are dl-RPQs over a property
    graph; the semantics is verbatim that of Section 3.1.5.  This is the
    paper's endpoint language: joins live here (at the conjunctive
    level), while list collection and data filtering live inside the
    atoms — the separation of roles the paper argues Example 1 and 2 call
    for. *)

type term = TVar of string | TConst of string

type atom = { mode : Path_modes.mode; re : Dlrpq.t; x : term; y : term }
type t

type entry = Enode of int | Elist of Path.obj list

val make : head:string list -> atoms:atom list -> t
val head : t -> string list
val atoms : t -> atom list

(** Output tuples under set semantics, sorted; [max_len] bounds non-
    shortest modes (default 12). *)
val eval : ?max_len:int -> Pg.t -> t -> entry list list

(** As {!eval} under a governor: one step per candidate row considered in
    the join, one result per satisfying assignment; [Partial] outcomes are
    subsets of the unbounded answer. *)
val eval_bounded :
  ?max_len:int -> Governor.t -> Pg.t -> t -> entry list list Governor.outcome

val entry_to_string : Elg.t -> entry -> string
val row_to_string : Elg.t -> entry list -> string
