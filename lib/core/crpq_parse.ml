let fail msg = Error (Gq_error.Parse { what = "crpq"; msg })

(* Split on top-level commas only: commas inside '{ }' belong to the
   regex syntax (!{a,b}, r{n,m}). *)
let split_atoms s =
  let parts = ref [] and buf = Buffer.create 32 and depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '{' ->
          incr depth;
          Buffer.add_char buf c
      | '}' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map String.trim !parts

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go from

let is_ident s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

let parse_term s =
  let s = String.trim s in
  if s = "" then fail "empty endpoint term"
  else if s.[0] = '@' then
    let name = String.sub s 1 (String.length s - 1) in
    if is_ident name then Ok (Crpq.TConst name)
    else fail (Printf.sprintf "bad constant %S" s)
  else if is_ident s then Ok (Crpq.TVar s)
  else fail (Printf.sprintf "bad variable %S" s)

let parse_atom s =
  match find_sub s "-[" 0 with
  | None -> fail (Printf.sprintf "atom %S: expected TERM -[RE]-> TERM" s)
  | Some i -> (
      match find_sub s "]->" (i + 2) with
      | None -> fail (Printf.sprintf "atom %S: missing ]->" s)
      | Some j -> (
          let term_x = String.sub s 0 i in
          let re_src = String.sub s (i + 2) (j - i - 2) in
          let term_y = String.sub s (j + 3) (String.length s - j - 3) in
          match parse_term term_x with
          | Error e -> Error e
          | Ok x -> (
              match parse_term term_y with
              | Error e -> Error e
              | Ok y -> (
                  match Rpq_parse.parse_res (String.trim re_src) with
                  | Error e -> Error e
                  | Ok re -> Ok { Crpq.re; x; y }))))

let parse_res s =
  let s = String.trim s in
  if s = "" then fail "empty query"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest -> (
          match parse_atom part with
          | Error e -> Error e
          | Ok a -> go (a :: acc) rest)
    in
    match go [] (split_atoms s) with
    | Error e -> Error e
    | Ok atoms -> (
        let head =
          List.concat_map
            (fun a ->
              List.concat_map
                (function Crpq.TVar v -> [ v ] | Crpq.TConst _ -> [])
                [ a.Crpq.x; a.Crpq.y ])
            atoms
          |> List.fold_left
               (fun acc v -> if List.mem v acc then acc else v :: acc)
               []
          |> List.rev
        in
        match Crpq.make ~head ~atoms with
        | q -> Ok q
        | exception Invalid_argument msg -> fail msg)
