(** CRPQs with list variables — l-CRPQs (Section 3.1.5).

    [q(x̄) :- m1 R1(y1,y1'), ..., mn Rn(yn,yn')] where each [mi] is a path
    mode, each [Ri] an l-RPQ, list variables are disjoint from endpoint
    variables and across atoms (conditions 3–4), and head entries come
    from either set (condition 5).

    Semantics: restricted path homomorphisms.  Crucially the mode applies
    {e after} endpoint selection — [mi(σ_{h(yi),h(yi')}(⟦Ri⟧_G))] — which
    gives [shortest] its per-endpoint-pair grouping (Example 17).  Each
    atom contributes, for each endpoint pair, one witness (p, μ) whose
    list values extend the homomorphism.

    [All]-mode atoms have infinite result sets on cyclic graphs, so
    evaluation takes a length bound that applies to them (and to
    simple/trail searches as a cap); [Shortest] is exact. *)

type term = TVar of string | TConst of string

type atom = { mode : Path_modes.mode; re : Lrpq.t; x : term; y : term }
type t

(** An output value: a node or a list of graph objects. *)
type entry = Enode of int | Elist of Path.obj list

(** Validates conditions (1)–(5) of Section 3.1.5. *)
val make : head:string list -> atoms:atom list -> t

val head : t -> string list
val atoms : t -> atom list

(** Output tuples under set semantics, sorted.  [max_len] bounds
    [All]-mode atoms (default 12). *)
val eval : ?max_len:int -> Elg.t -> t -> entry list list

(** As {!eval} under a governor: one step per candidate row considered in
    the join, one result per satisfying assignment; [Partial] outcomes are
    subsets of the unbounded answer. *)
val eval_bounded :
  ?max_len:int -> Governor.t -> Elg.t -> t -> entry list list Governor.outcome

val entry_to_string : Elg.t -> entry -> string
val row_to_string : Elg.t -> entry list -> string
