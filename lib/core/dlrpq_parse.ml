exception Parse_error of string

type token =
  | Tlpar
  | Trpar
  | Tlbrack
  | Trbrack
  | Tbar
  | Tstar
  | Tplus
  | Topt
  | Tlbrace
  | Trbrace
  | Tcomma
  | Tcaret
  | Tassign  (* := *)
  | Tbang
  | Tident of string
  | Tint of int
  | Treal of float
  | Tstring of string
  | Top of Value.op

let fail msg = raise (Parse_error msg)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push t = tokens := t :: !tokens in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then (incr i; push Tlpar)
    else if c = ')' then (incr i; push Trpar)
    else if c = '[' then (incr i; push Tlbrack)
    else if c = ']' then (incr i; push Trbrack)
    else if c = '|' then (incr i; push Tbar)
    else if c = '*' then (incr i; push Tstar)
    else if c = '+' then (incr i; push Tplus)
    else if c = '?' then (incr i; push Topt)
    else if c = '{' then (incr i; push Tlbrace)
    else if c = '}' then (incr i; push Trbrace)
    else if c = ',' then (incr i; push Tcomma)
    else if c = '^' then (incr i; push Tcaret)
    else if c = '!' then (incr i; push Tbang)
    else if c = ':' && !i + 1 < n && s.[!i + 1] = '=' then (i := !i + 2; push Tassign)
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '=' then (i := !i + 2; push (Top Value.Le))
    else if c = '<' && !i + 1 < n && s.[!i + 1] = '>' then (i := !i + 2; push (Top Value.Neq))
    else if c = '<' then (incr i; push (Top Value.Lt))
    else if c = '>' && !i + 1 < n && s.[!i + 1] = '=' then (i := !i + 2; push (Top Value.Ge))
    else if c = '>' then (incr i; push (Top Value.Gt))
    else if c = '=' then (incr i; push (Top Value.Eq))
    else if c = '\'' then begin
      let j =
        try String.index_from s (!i + 1) '\''
        with Not_found -> fail "unterminated string"
      in
      push (Tstring (String.sub s (!i + 1) (j - !i - 1)));
      i := j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((s.[!i] >= '0' && s.[!i] <= '9') || s.[!i] = '.') do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      if String.contains text '.' then
        match float_of_string_opt text with
        | Some v -> push (Treal v)
        | None -> fail (Printf.sprintf "bad number %S" text)
      else
        match int_of_string_opt text with
        | Some v -> push (Tint v)
        | None -> fail (Printf.sprintf "number %s out of range" text)
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      push (Tident (String.sub s start (!i - start)))
    end
    else fail (Printf.sprintf "unexpected character %c" c)
  done;
  List.rev !tokens

let parse src =
  let toks = ref (tokenize src) in
  let save () = !toks in
  let restore saved = toks := saved in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let expect t msg = if peek () = Some t then advance () else fail msg in

  (* The interior of a node or edge atom; [kind] chooses the wrapper. *)
  let atom_interior kind close close_msg =
    let finish a =
      expect close close_msg;
      Regex.atom a
    in
    let wildcard_sym () =
      (* '_' lexes as an identifier. *)
      match peek () with
      | Some (Tident "_") ->
          advance ();
          Some Sym.Any
      | Some Tbang -> (
          advance ();
          expect Tlbrace "expected { after !";
          let rec labels acc =
            match peek () with
            | Some (Tident l) -> (
                advance ();
                match peek () with
                | Some Tcomma ->
                    advance ();
                    labels (l :: acc)
                | _ -> List.rev (l :: acc))
            | _ -> fail "expected label in !{...}"
          in
          let set = labels [] in
          expect Trbrace "expected } after !{...";
          Some (Sym.Not set))
      | _ -> None
    in
    match wildcard_sym () with
    | Some sym -> (
        match peek () with
        | Some Tcaret -> (
            advance ();
            match peek () with
            | Some (Tident z) ->
                advance ();
                finish (Dlrpq.Lbl (kind, sym, Some z))
            | _ -> fail "expected variable after ^")
        | _ -> finish (Dlrpq.Lbl (kind, sym, None)))
    | None -> (
        match peek () with
        | Some (Tident word) -> (
            advance ();
            match peek () with
            | Some Tcaret -> (
                advance ();
                match peek () with
                | Some (Tident z) ->
                    advance ();
                    finish (Dlrpq.Lbl (kind, Sym.Lbl word, Some z))
                | _ -> fail "expected variable after ^")
            | Some Tassign -> (
                advance ();
                match peek () with
                | Some (Tident prop) ->
                    advance ();
                    finish (Dlrpq.Test (kind, Etest.Assign (word, prop)))
                | _ -> fail "expected property name after :=")
            | Some (Top op) -> (
                advance ();
                match peek () with
                | Some (Tint v) ->
                    advance ();
                    finish (Dlrpq.Test (kind, Etest.Cmp_const (word, op, Value.Int v)))
                | Some (Treal v) ->
                    advance ();
                    finish (Dlrpq.Test (kind, Etest.Cmp_const (word, op, Value.Real v)))
                | Some (Tstring v) ->
                    advance ();
                    finish (Dlrpq.Test (kind, Etest.Cmp_const (word, op, Value.Text v)))
                | Some (Tident x) ->
                    advance ();
                    finish (Dlrpq.Test (kind, Etest.Cmp_var (word, op, x)))
                | _ -> fail "expected a constant or variable after the operator")
            | _ -> finish (Dlrpq.Lbl (kind, Sym.Lbl word, None)))
        | _ when peek () = Some close ->
            (* Bare () / []: wildcards, as in Example 21. *)
            finish (Dlrpq.Lbl (kind, Sym.Any, None))
        | _ -> fail "expected an atom")
  in
  let rec expr () =
    let t = term () in
    match peek () with
    | Some Tbar ->
        advance ();
        Regex.alt t (expr ())
    | _ -> t
  and term () =
    let f = factor () in
    match peek () with
    | Some (Tlpar | Tlbrack) -> Regex.seq f (term ())
    | _ -> f
  and factor () =
    let base = ref (base_item ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some Tstar ->
          advance ();
          base := Regex.Star !base
      | Some Tplus ->
          advance ();
          base := Regex.plus !base
      | Some Topt ->
          advance ();
          base := Regex.opt !base
      | Some Tlbrace -> (
          advance ();
          match peek () with
          | Some (Tint n) -> (
              advance ();
              match peek () with
              | Some Trbrace ->
                  advance ();
                  base := Regex.repeat n n !base
              | Some Tcomma -> (
                  advance ();
                  match peek () with
                  | Some (Tint m) ->
                      advance ();
                      expect Trbrace "expected } in repetition";
                      if m < n then
                        fail (Printf.sprintf "bad repetition range {%d,%d}" n m);
                      base := Regex.repeat n m !base
                  | _ -> fail "expected upper bound in repetition")
              | _ -> fail "expected , or } in repetition")
          | _ -> fail "expected a number in repetition")
      | _ -> continue := false
    done;
    !base
  and base_item () =
    match peek () with
    | Some Tlbrack ->
        advance ();
        atom_interior Dlrpq.Kedge Trbrack "expected ]"
    | Some Tlpar -> (
        let saved = save () in
        advance ();
        match atom_interior Dlrpq.Knode Trpar "expected )" with
        | atom -> atom
        | exception Parse_error _ ->
            restore saved;
            advance ();
            let inner = expr () in
            expect Trpar "expected ) closing the group";
            inner)
    | _ -> fail "expected ( or ["
  in
  let result = expr () in
  if !toks <> [] then fail "trailing input";
  result

let parse_opt src =
  match parse src with
  | r -> Ok r
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let parse_res src =
  match parse_opt src with
  | Ok r -> Ok r
  | Error msg -> Error (Gq_error.Parse { what = "dlrpq"; msg })
