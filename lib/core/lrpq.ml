type atom = { sym : Sym.t; capture : string option }
type t = atom Regex.t

let atom ?capture sym = Regex.atom { sym; capture }
let lbl a = atom (Sym.Lbl a)
let cap a z = atom ~capture:z (Sym.Lbl a)
let cap_any z = atom ~capture:z Sym.Any
let any = atom Sym.Any

let vars r =
  Regex.atoms r
  |> List.filter_map (fun a -> a.capture)
  |> List.sort_uniq String.compare

let strip r = Regex.map (fun a -> a.sym) r

(* Depth-first search over the annotated product: one recursion branch per
   run, accumulating the path and the binding.  One governor step per
   edge extension; a tripped budget unwinds the whole search. *)
let search gov g nfa ~src ~max_len ~node_once ~edge_once ~emit =
  let visited_nodes = Array.make (Elg.nb_nodes g) false in
  let visited_edges = Array.make (max 1 (Elg.nb_edges g)) false in
  let rec go q node rev_objs binding len =
    if nfa.Nfa.finals.(q) then emit (List.rev rev_objs) binding node len;
    if len < max_len then
      List.iter
        (fun e ->
          let w = Elg.tgt g e in
          let node_ok = (not node_once) || not visited_nodes.(w) in
          let edge_ok = (not edge_once) || not visited_edges.(e) in
          if node_ok && edge_ok && Governor.tick gov then
            List.iter
              (fun (a, q') ->
                if Sym.matches a.sym (Elg.label g e) then begin
                  let binding' =
                    match a.capture with
                    | None -> binding
                    | Some z ->
                        Lbinding.concat binding
                          (Lbinding.singleton z (Path.E e))
                  in
                  if node_once then visited_nodes.(w) <- true;
                  if edge_once then visited_edges.(e) <- true;
                  go q' w
                    (Path.N w :: Path.E e :: rev_objs)
                    binding' (len + 1);
                  if node_once then visited_nodes.(w) <- false;
                  if edge_once then visited_edges.(e) <- false
                end)
              nfa.Nfa.delta.(q))
        (Elg.out_edges g node)
  in
  visited_nodes.(src) <- true;
  List.iter
    (fun q0 -> go q0 src [ Path.N src ] Lbinding.empty 0)
    nfa.Nfa.initials

let dedup results =
  List.sort_uniq
    (fun (p1, m1) (p2, m2) ->
      match Path.compare p1 p2 with 0 -> Lbinding.compare m1 m2 | c -> c)
    results

let enumerate_from_gov gov g r ~src ~max_len =
  let nfa = Nfa.of_regex r in
  let acc = ref [] in
  search gov g nfa ~src ~max_len ~node_once:false ~edge_once:false
    ~emit:(fun objs binding _node _len ->
      if Governor.emit gov then
        acc := (Path.of_objs_exn g objs, binding) :: !acc);
  dedup !acc

let enumerate_from_bounded gov g r ~src ~max_len =
  Governor.seal gov (enumerate_from_gov gov g r ~src ~max_len)

let enumerate_from g r ~src ~max_len =
  Governor.value
    (enumerate_from_bounded (Governor.unlimited ()) g r ~src ~max_len)

let enumerate_bounded gov g r ~max_len =
  let results =
    List.concat
      (List.init (Elg.nb_nodes g) (fun src ->
           if Governor.ok gov then enumerate_from_gov gov g r ~src ~max_len
           else []))
    |> dedup
  in
  Governor.seal gov results

let enumerate g r ~max_len =
  Governor.value (enumerate_bounded (Governor.unlimited ()) g r ~max_len)

let pairs g r = Rpq_eval.pairs g (strip r)

let pairs_bounded gov g r = Rpq_eval.pairs_bounded gov g (strip r)

let collect_between gov g nfa ~src ~tgt ~max_len ~node_once ~edge_once =
  let acc = ref [] in
  search gov g nfa ~src ~max_len ~node_once ~edge_once
    ~emit:(fun objs binding node len ->
      if node = tgt && Governor.emit gov then
        acc := (Path.of_objs_exn g objs, binding, len) :: !acc);
  !acc

let eval_mode_gov gov g r ~mode ~max_len ~src ~tgt =
  let nfa = Nfa.of_regex r in
  match (mode : Path_modes.mode) with
  | All ->
      collect_between gov g nfa ~src ~tgt ~max_len ~node_once:false
        ~edge_once:false
      |> List.map (fun (p, m, _) -> (p, m))
      |> dedup
  | Simple ->
      collect_between gov g nfa ~src ~tgt
        ~max_len:(min max_len (Elg.nb_nodes g - 1))
        ~node_once:true ~edge_once:false
      |> List.map (fun (p, m, _) -> (p, m))
      |> dedup
  | Trail ->
      collect_between gov g nfa ~src ~tgt
        ~max_len:(min max_len (Elg.nb_edges g))
        ~node_once:false ~edge_once:true
      |> List.map (fun (p, m, _) -> (p, m))
      |> dedup
  | Shortest -> (
      (* The geodesic length comes from the (capture-free) product BFS; we
         then enumerate every run of exactly that length. *)
      match
        Governor.payload ~default:None
          (Rpq_eval.shortest_witness_bounded gov g (strip r) ~src ~tgt)
      with
      | None -> []
      | Some witness ->
          let d = Path.len witness in
          collect_between gov g nfa ~src ~tgt ~max_len:d ~node_once:false
            ~edge_once:false
          |> List.filter_map (fun (p, m, len) ->
                 if len = d then Some (p, m) else None)
          |> dedup)

let eval_mode_bounded gov g r ~mode ~max_len ~src ~tgt =
  Governor.seal gov (eval_mode_gov gov g r ~mode ~max_len ~src ~tgt)

let eval_mode g r ~mode ~max_len ~src ~tgt =
  Governor.value
    (eval_mode_bounded (Governor.unlimited ()) g r ~mode ~max_len ~src ~tgt)

let to_pmr ?obs g r ~src ~tgt =
  Pmr.of_nfa ?obs g (Nfa.map_atoms (fun a -> a.sym) (Nfa.of_regex r)) ~src ~tgt

let atom_to_string a =
  match a.capture with
  | None -> Sym.to_string a.sym
  | Some z -> Printf.sprintf "%s^%s" (Sym.to_string a.sym) z

let to_string r = Regex.to_string atom_to_string r
