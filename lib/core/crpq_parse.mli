(** Concrete syntax for CRPQs (the serve [plan] command).

    {v
    query ::= atom (',' atom)*
    atom  ::= term '-[' RE ']->' term
    term  ::= ident          (variable)
            | '@' ident      (constant: a graph node name)
    v}

    [RE] is the RPQ syntax of {!Rpq_parse} (commas inside [!{...}] and
    [{n,m}] do not split atoms).  The head is every variable in order of
    first appearance. *)

val parse_res : string -> (Crpq.t, Gq_error.t) result
