(** Conjunctive regular path queries (Section 3.1.2).

    [q(x1..xk) :- R1(y1,y1'), ..., Rn(yn,yn')] with node homomorphism
    semantics: output tuples are images of the head variables under
    mappings h with [(h(yi), h(yi')) ∈ ⟦Ri⟧_G] for every atom.

    Following footnote 3, atom endpoints may also be constants (graph
    nodes), which map to themselves. *)

type term = TVar of string | TConst of string  (** variable or node name *)

type atom = { re : Sym.t Regex.t; x : term; y : term }
type t

(** Raises [Invalid_argument] if the query is unsafe (a head variable not
    appearing as an endpoint) or has no atoms. *)
val make : head:string list -> atoms:atom list -> t

val head : t -> string list
val atoms : t -> atom list

(** Output tuples (rows of node identifiers), set semantics, sorted.
    [?pool] parallelizes the per-atom RPQ materialization (see
    {!Rpq_eval.pairs}); the join itself stays serial.

    [?planner] (default: [GQ_PLAN] ≠ ["off"]) selects the cost-based
    plan: atoms are ordered by estimated selectivity via {!Planner}, and
    an atom whose endpoint is already bound (by earlier atoms or a
    constant) is evaluated as a per-binding BFS probe — forward from the
    bound source, or backward over the reversed graph from the bound
    target — instead of materializing its full relation.  With the
    planner off, atoms run in query order, all materialized.  Both modes
    return identical answers (pinned by [test_plan] and
    [make check-plan]).  Identical atom regexes are compiled and
    materialized once per query either way.

    [?obs] records [crpq.atom_pairs] (materialized pairs per atom),
    [crpq.join_candidates] (pairs considered by the nested-loop join),
    [crpq.probes] (per-binding BFS probes), [crpq.atom_dedup] (repeated
    atom regexes served from the per-query memo), [crpq.est_card] /
    [crpq.actual_card] (planner estimates vs. materialized sizes) and
    [crpq.rows] (assignments emitted), inside [crpq.eval] /
    [crpq.atoms] / [crpq.join] spans. *)
val eval :
  ?pool:Pool.t -> ?obs:Obs.t -> ?planner:bool -> Elg.t -> t -> int list list

(** As {!eval} under a governor: one step per candidate pair considered
    in the join, one result per satisfying assignment.  An assignment is
    counted only once it satisfies every atom, so a [Partial] outcome is
    always a subset of the unbounded answer. *)
val eval_bounded :
  ?pool:Pool.t -> ?obs:Obs.t -> ?planner:bool ->
  Governor.t -> Elg.t -> t -> int list list Governor.outcome

(** Boolean evaluation: is the output non-empty? *)
val holds : Elg.t -> t -> bool

(** All satisfying assignments over every endpoint variable (not just the
    head); used by the l-CRPQ layer and by tests. *)
val homomorphisms :
  ?pool:Pool.t -> ?obs:Obs.t -> ?planner:bool ->
  Elg.t -> t -> (string * int) list list

(** The atom in the {!Planner}'s vocabulary (shared with {!Crpq_wcoj}). *)
val to_planner_atom : atom -> Planner.atom

(** The static plan, without evaluating anything: atoms in execution
    order, each with its {!Planner.atom_plan} and execution mode
    (["materialize-forward"], ["materialize-backward"],
    ["probe-forward"] or ["probe-backward"]) — the payload of the serve
    [plan] command.  The [index] fields are a permutation of the query's
    atom positions. *)
val explain : Elg.t -> t -> (Planner.atom_plan * string) list

(** Alternative engine: evaluate each atom to a binary relation and join
    with the relational-algebra substrate — the "relational operations
    over pattern matching" pipeline of Sections 4 and 7.1.  Must agree
    with {!eval} (tested). *)
val eval_relational : Elg.t -> t -> Relation.t
