type kind = Knode | Kedge

type atom =
  | Lbl of kind * Sym.t * string option
  | Test of kind * Etest.t

type t = atom Regex.t

let node_lbl a = Regex.atom (Lbl (Knode, Sym.Lbl a, None))
let node_cap a z = Regex.atom (Lbl (Knode, Sym.Lbl a, Some z))
let node_test et = Regex.atom (Test (Knode, et))
let node_any = Regex.atom (Lbl (Knode, Sym.Any, None))
let node_any_cap z = Regex.atom (Lbl (Knode, Sym.Any, Some z))
let edge_lbl a = Regex.atom (Lbl (Kedge, Sym.Lbl a, None))
let edge_cap a z = Regex.atom (Lbl (Kedge, Sym.Lbl a, Some z))
let edge_test et = Regex.atom (Test (Kedge, et))
let edge_any = Regex.atom (Lbl (Kedge, Sym.Any, None))
let edge_any_cap z = Regex.atom (Lbl (Kedge, Sym.Any, Some z))

let list_vars r =
  Regex.atoms r
  |> List.filter_map (function Lbl (_, _, z) -> z | Test _ -> None)
  |> List.sort_uniq String.compare

let data_vars r =
  Regex.atoms r
  |> List.concat_map (function Lbl _ -> [] | Test (_, et) -> Etest.vars et)
  |> List.sort_uniq String.compare

let atom_to_string a =
  let wrap kind body =
    match kind with
    | Knode -> "(" ^ body ^ ")"
    | Kedge -> "[" ^ body ^ "]"
  in
  match a with
  | Lbl (kind, sym, None) -> wrap kind (Sym.to_string sym)
  | Lbl (kind, sym, Some z) -> wrap kind (Sym.to_string sym ^ "^" ^ z)
  | Test (kind, et) -> wrap kind (Etest.to_string et)

let to_string r = Regex.to_string atom_to_string r

(* --- Value assignments ν ----------------------------------------------- *)

module Valu = struct
  (* Sorted association list: canonical, so usable as a hash key. *)
  type t = (string * Value.t) list

  let empty : t = []
  let get (v : t) x = List.assoc_opt x v

  let set (v : t) x c : t =
    let rec go = function
      | [] -> [ (x, c) ]
      | (y, d) :: rest ->
          let cmp = String.compare x y in
          if cmp < 0 then (x, c) :: (y, d) :: rest
          else if cmp = 0 then (x, c) :: rest
          else (y, d) :: go rest
    in
    go v
end

(* Applying an atom to an object: [None] on failure, otherwise the updated
   assignment and an optional capture variable. *)
let apply_atom pg atom obj valu =
  let kind_ok kind =
    match (kind, obj) with
    | Knode, Path.N _ | Kedge, Path.E _ -> true
    | Knode, Path.E _ | Kedge, Path.N _ -> false
  in
  match atom with
  | Lbl (kind, sym, cap) ->
      if kind_ok kind && Sym.matches sym (Pg.obj_label pg obj) then
        Some (valu, cap)
      else None
  | Test (kind, et) ->
      if not (kind_ok kind) then None
      else (
        match et with
        | Etest.Assign (x, pname) -> (
            match Pg.prop pg obj pname with
            | Some c -> Some (Valu.set valu x c, None)
            | None -> None)
        | Etest.Cmp_const (pname, op, c) -> (
            match Pg.prop pg obj pname with
            | Some v when Value.test op v c -> Some (valu, None)
            | Some _ | None -> None)
        | Etest.Cmp_var (pname, op, x) -> (
            match (Pg.prop pg obj pname, Valu.get valu x) with
            | Some v, Some c when Value.test op v c -> Some (valu, None)
            | _, _ -> None))

let default_steps r max_len = (max_len + 2) * (Regex.size r + 2)

let extend_binding mu cap obj =
  match cap with
  | None -> mu
  | Some z -> Lbinding.concat mu (Lbinding.singleton z obj)

(* --- Enumerating ⟦R⟧_G -------------------------------------------------- *)

let search gov pg r ~start_objs ~max_len ~max_steps ~node_once ~edge_once
    ~emit =
  let g = Pg.elg pg in
  let nfa = Nfa.of_regex r in
  let visited_nodes = Array.make (Elg.nb_nodes g) false in
  let visited_edges = Array.make (max 1 (Elg.nb_edges g)) false in
  let rec go q last rev_objs valu mu len steps =
    if nfa.Nfa.finals.(q) && rev_objs <> [] then
      emit (List.rev rev_objs) mu len;
    if steps < max_steps && Governor.ok gov then
      List.iter
        (fun (atom, q') ->
          (* Collapse: re-match the last object (p · path(o) = p). *)
          (match last with
          | Some o -> (
              match apply_atom pg atom o valu with
              | Some (valu', cap) ->
                  if Governor.tick gov then
                    go q' last rev_objs valu' (extend_binding mu cap o) len
                      (steps + 1)
              | None -> ())
          | None -> ());
          (* Extend: append a fresh object. *)
          let candidates =
            match last with
            | None -> start_objs
            | Some (Path.N u) -> List.map (fun e -> Path.E e) (Elg.out_edges g u)
            | Some (Path.E e) -> [ Path.N (Elg.tgt g e) ]
          in
          List.iter
            (fun o ->
              let len' = match o with Path.E _ -> len + 1 | Path.N _ -> len in
              let blocked =
                match o with
                | Path.N v -> node_once && visited_nodes.(v)
                | Path.E e -> edge_once && visited_edges.(e)
              in
              if len' <= max_len && not blocked then
                match apply_atom pg atom o valu with
                | Some (valu', cap) ->
                    if Governor.tick gov then begin
                      (match o with
                      | Path.N v -> if node_once then visited_nodes.(v) <- true
                      | Path.E e -> if edge_once then visited_edges.(e) <- true);
                      go q' (Some o) (o :: rev_objs) valu'
                        (extend_binding mu cap o) len' (steps + 1);
                      match o with
                      | Path.N v -> if node_once then visited_nodes.(v) <- false
                      | Path.E e -> if edge_once then visited_edges.(e) <- false
                    end
                | None -> ())
            candidates)
        nfa.Nfa.delta.(q)
  in
  List.iter
    (fun q0 -> go q0 None [] Valu.empty Lbinding.empty 0 0)
    nfa.Nfa.initials

let start_objs_at g src =
  Path.N src :: List.map (fun e -> Path.E e) (Elg.out_edges g src)

let dedup results =
  List.sort_uniq
    (fun (p1, m1) (p2, m2) ->
      match Path.compare p1 p2 with 0 -> Lbinding.compare m1 m2 | c -> c)
    results

let enumerate_from_gov gov pg r ~src ~max_len ?max_steps () =
  let g = Pg.elg pg in
  let max_steps =
    match max_steps with Some s -> s | None -> default_steps r max_len
  in
  let acc = ref [] in
  search gov pg r ~start_objs:(start_objs_at g src) ~max_len ~max_steps
    ~node_once:false ~edge_once:false ~emit:(fun objs mu _len ->
      if Governor.emit gov then acc := (Path.of_objs_exn g objs, mu) :: !acc);
  dedup !acc

let enumerate_from_bounded gov pg r ~src ~max_len ?max_steps () =
  Governor.seal gov (enumerate_from_gov gov pg r ~src ~max_len ?max_steps ())

let enumerate_from pg r ~src ~max_len ?max_steps () =
  Governor.value
    (enumerate_from_bounded (Governor.unlimited ()) pg r ~src ~max_len
       ?max_steps ())

(* --- Shortest length: 0/1-BFS over configurations ---------------------- *)

(* A deque for the 0/1-BFS. *)
module Deque = struct
  type 'a t = { mutable front : 'a list; mutable back : 'a list }

  let create () = { front = []; back = [] }
  let push_front d x = d.front <- x :: d.front
  let push_back d x = d.back <- x :: d.back

  let pop d =
    match d.front with
    | x :: rest ->
        d.front <- rest;
        Some x
    | [] -> (
        match List.rev d.back with
        | [] -> None
        | x :: rest ->
            d.front <- rest;
            d.back <- [];
            Some x)
end

let shortest_len_stats_gov gov pg r ~src ~tgt =
  let g = Pg.elg pg in
  let nfa = Nfa.of_regex r in
  let dist : (int * Path.obj * Valu.t, int) Hashtbl.t = Hashtbl.create 256 in
  let deque = Deque.create () in
  let explored = ref 0 in
  (* 0/1-BFS invariant: a zero-weight relaxation goes to the front of the
     deque, a unit-weight one to the back, so pops are in nondecreasing
     distance order and the first accepting pop is optimal. *)
  let relax ~front key d =
    match Hashtbl.find_opt dist key with
    | Some d0 when d0 <= d -> ()
    | _ ->
        Hashtbl.replace dist key d;
        if front then Deque.push_front deque (key, d)
        else Deque.push_back deque (key, d)
  in
  (* Initial atom applications. *)
  List.iter
    (fun q0 ->
      List.iter
        (fun (atom, q') ->
          List.iter
            (fun o ->
              match apply_atom pg atom o Valu.empty with
              | Some (valu', _) ->
                  let w = match o with Path.E _ -> 1 | Path.N _ -> 0 in
                  relax ~front:(w = 0) (q', o, valu') w
              | None -> ())
            (start_objs_at g src))
        nfa.Nfa.delta.(q0))
    nfa.Nfa.initials;
  let best = ref None in
  let continue = ref true in
  while !continue do
    match Deque.pop deque with
    | None -> continue := false
    | Some _ when not (Governor.tick gov) -> continue := false
    | Some ((q, last, valu), d) ->
        if Hashtbl.find_opt dist (q, last, valu) = Some d then begin
          incr explored;
          let at_tgt =
            match last with
            | Path.N v -> v = tgt
            | Path.E e -> Elg.tgt g e = tgt
          in
          if nfa.Nfa.finals.(q) && at_tgt then begin
            best := Some d;
            continue := false
          end
          else
            List.iter
              (fun (atom, q') ->
                (* Collapse. *)
                (match apply_atom pg atom last valu with
                | Some (valu', _) -> relax ~front:true (q', last, valu') d
                | None -> ());
                (* Extend. *)
                let candidates =
                  match last with
                  | Path.N u -> List.map (fun e -> Path.E e) (Elg.out_edges g u)
                  | Path.E e -> [ Path.N (Elg.tgt g e) ]
                in
                List.iter
                  (fun o ->
                    match apply_atom pg atom o valu with
                    | Some (valu', _) ->
                        let w = match o with Path.E _ -> 1 | Path.N _ -> 0 in
                        relax ~front:(w = 0) (q', o, valu') (d + w)
                    | None -> ())
                  candidates)
              nfa.Nfa.delta.(q)
        end
  done;
  (!best, !explored)

let shortest_len_stats pg r ~src ~tgt =
  shortest_len_stats_gov (Governor.unlimited ()) pg r ~src ~tgt

let shortest_len pg r ~src ~tgt = fst (shortest_len_stats pg r ~src ~tgt)

let shortest_len_bounded gov pg r ~src ~tgt =
  Governor.seal gov (fst (shortest_len_stats_gov gov pg r ~src ~tgt))

let eval_mode_gov gov pg r ~mode ~max_len ?max_steps ~src ~tgt () =
  let g = Pg.elg pg in
  let collect ~max_len ~node_once ~edge_once =
    let max_steps =
      match max_steps with Some s -> s | None -> default_steps r max_len
    in
    let acc = ref [] in
    search gov pg r ~start_objs:(start_objs_at g src) ~max_len ~max_steps
      ~node_once ~edge_once ~emit:(fun objs mu len ->
        let p = Path.of_objs_exn g objs in
        if Path.tgt g p = Some tgt && Governor.emit gov then
          acc := (p, mu, len) :: !acc);
    !acc
  in
  match (mode : Path_modes.mode) with
  | All ->
      collect ~max_len ~node_once:false ~edge_once:false
      |> List.map (fun (p, m, _) -> (p, m))
      |> dedup
  | Simple ->
      collect
        ~max_len:(min max_len (Elg.nb_nodes g - 1))
        ~node_once:true ~edge_once:false
      |> List.map (fun (p, m, _) -> (p, m))
      |> dedup
  | Trail ->
      collect
        ~max_len:(min max_len (Elg.nb_edges g))
        ~node_once:false ~edge_once:true
      |> List.map (fun (p, m, _) -> (p, m))
      |> dedup
  | Shortest -> (
      match
        Governor.payload ~default:None
          (shortest_len_bounded gov pg r ~src ~tgt)
      with
      | None -> []
      | Some d ->
          collect ~max_len:d ~node_once:false ~edge_once:false
          |> List.filter_map (fun (p, m, len) ->
                 if len = d then Some (p, m) else None)
          |> dedup)

let eval_mode_bounded gov pg r ~mode ~max_len ?max_steps ~src ~tgt () =
  Governor.seal gov (eval_mode_gov gov pg r ~mode ~max_len ?max_steps ~src ~tgt ())

let eval_mode pg r ~mode ~max_len ?max_steps ~src ~tgt () =
  Governor.value
    (eval_mode_bounded (Governor.unlimited ()) pg r ~mode ~max_len ?max_steps
       ~src ~tgt ())

(* --- Matching against a fixed path ------------------------------------- *)

let check_path ?max_steps pg r path =
  let objs = Array.of_list (Path.objs path) in
  let n = Array.length objs in
  let nfa = Nfa.of_regex r in
  (* Enough for every object to be constrained by several consecutive atoms;
     capture-stutter loops produce budget-many distinct bindings, so the
     default stays modest and callers align budgets explicitly when they
     compare against [enumerate_from]. *)
  let bound =
    match max_steps with
    | Some s -> s
    | None -> (2 * (n + 2)) + (2 * Regex.size r)
  in
  (* [suffixes q pos valu steps]: the binding suffixes produced by runs
     from this configuration to acceptance.  Memoized per configuration and
     remaining budget, so stutter loops cost linear work per distinct
     binding instead of exponential re-exploration. *)
  let memo : (int * int * Valu.t * int, Lbinding.t list) Hashtbl.t =
    Hashtbl.create 256
  in
  let prepend cap obj suffixes =
    match cap with
    | None -> suffixes
    | Some z ->
        List.map (fun mu -> Lbinding.concat (Lbinding.singleton z obj) mu) suffixes
  in
  let rec suffixes q pos valu steps =
    let key = (q, pos, valu, steps) in
    match Hashtbl.find_opt memo key with
    | Some result -> result
    | None ->
        let base = if nfa.Nfa.finals.(q) && pos = n then [ Lbinding.empty ] else [] in
        let step_results =
          if steps = 0 then []
          else
            List.concat_map
              (fun (atom, q') ->
                let collapse =
                  if pos > 0 then
                    match apply_atom pg atom objs.(pos - 1) valu with
                    | Some (valu', cap) ->
                        prepend cap objs.(pos - 1) (suffixes q' pos valu' (steps - 1))
                    | None -> []
                  else []
                in
                let advance =
                  if pos < n then
                    match apply_atom pg atom objs.(pos) valu with
                    | Some (valu', cap) ->
                        prepend cap objs.(pos) (suffixes q' (pos + 1) valu' (steps - 1))
                    | None -> []
                  else []
                in
                collapse @ advance)
              nfa.Nfa.delta.(q)
        in
        let result = List.sort_uniq Lbinding.compare (base @ step_results) in
        Hashtbl.add memo key result;
        result
  in
  List.concat_map (fun q0 -> suffixes q0 0 Valu.empty bound) nfa.Nfa.initials
  |> List.sort_uniq Lbinding.compare

let matches_path pg r path = check_path pg r path <> []
