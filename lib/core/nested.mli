(** Nested CRPQs / regular queries (Section 3.1.3, Examples 14–15).

    CRPQs are not compositional: a binary CRPQ defines virtual edges, but
    plain CRPQs cannot take the Kleene closure of those.  Nested CRPQs fix
    this by allowing a binary query [(q)[x,y]] wherever an edge label may
    appear, as in

    [q2(u,v) :- ((Transfer(x,y), Transfer(y,x))[x,y])*(u,v)].

    Evaluation is by saturation: inner queries are evaluated recursively
    and materialized as virtual edges with fresh labels, then the outer
    level runs as a plain CRPQ.  Wildcard symbols in outer expressions
    would also match the virtual labels, so wildcards are rejected at
    construction time for nested queries. *)

type nre_atom = Base of Sym.t | Nested of query
and nre = nre_atom Regex.t
and nre_query_atom = { re : nre; x : string; y : string }

and query = {
  hx : string;
  hy : string;  (** binary head (x, y) *)
  body : nre_query_atom list;
}

(** Checks that heads are endpoint variables, and that queries containing
    nested atoms use no wildcard symbols. *)
val make : hx:string -> hy:string -> body:nre_query_atom list -> query

(** Output pairs, set semantics, sorted. *)
val eval : Elg.t -> query -> (int * int) list

(** As {!eval} under a governor, shared across all nesting levels. *)
val eval_bounded :
  Governor.t -> Elg.t -> query -> (int * int) list Governor.outcome

(** Nesting depth (0 for a plain CRPQ). *)
val depth : query -> int
