type term = TVar of string | TConst of string
type atom = { mode : Path_modes.mode; re : Dlrpq.t; x : term; y : term }
type t = { head : string list; atoms : atom list }
type entry = Enode of int | Elist of Path.obj list

let term_vars = function TVar x -> [ x ] | TConst _ -> []

let make ~head ~atoms =
  if atoms = [] then invalid_arg "Dlcrpq.make: no atoms";
  let endpoint_vars =
    List.concat_map (fun a -> term_vars a.x @ term_vars a.y) atoms
    |> List.sort_uniq String.compare
  in
  let all_list_vars = List.concat_map (fun a -> Dlrpq.list_vars a.re) atoms in
  List.iter
    (fun z ->
      if List.mem z endpoint_vars then
        invalid_arg
          (Printf.sprintf "Dlcrpq.make: %s is both list and endpoint variable" z))
    all_list_vars;
  let sorted = List.sort String.compare all_list_vars in
  let rec check_dup = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg
            (Printf.sprintf "Dlcrpq.make: list variable %s shared by two atoms" a)
        else check_dup rest
    | [ _ ] | [] -> ()
  in
  check_dup sorted;
  List.iter
    (fun x ->
      if not (List.mem x endpoint_vars || List.mem x all_list_vars) then
        invalid_arg (Printf.sprintf "Dlcrpq.make: unsafe head variable %s" x))
    head;
  { head; atoms }

let head q = q.head
let atoms q = q.atoms

let bind asg x v =
  let rec go = function
    | [] -> Some [ (x, v) ]
    | (y, w) :: rest ->
        let c = String.compare x y in
        if c < 0 then Some ((x, v) :: (y, w) :: rest)
        else if c = 0 then if w = v then Some ((y, w) :: rest) else None
        else Option.map (fun r -> (y, w) :: r) (go rest)
  in
  go asg

let bind_term g asg term node =
  match term with
  | TVar x -> bind asg x (Enode node)
  | TConst name -> if Elg.node_id g name = node then Some asg else None

(* Rows contributed by one atom: data tests preclude a cheap endpoint
   precomputation, so we evaluate per candidate pair.  A tripped governor
   truncates the row set, which only shrinks the join. *)
let atom_rows gov pg ~max_len a =
  let g = Pg.elg pg in
  let nodes n =
    match n with
    | TConst name -> [ Elg.node_id g name ]
    | TVar _ -> List.init (Elg.nb_nodes g) Fun.id
  in
  List.concat_map
    (fun u ->
      List.concat_map
        (fun v ->
          if not (Governor.ok gov) then []
          else
            Governor.payload ~default:[]
              (Dlrpq.eval_mode_bounded gov pg a.re ~mode:a.mode ~max_len
                 ~src:u ~tgt:v ())
            |> List.map (fun (_p, mu) -> (u, v, mu))
            |> List.sort_uniq Stdlib.compare)
        (nodes a.y))
    (nodes a.x)

(* Depth-first join: an assignment is reported only once it satisfies
   every atom, so a tripped budget yields a subset of the true answers. *)
let eval_gov gov ?(max_len = 12) pg q =
  let g = Pg.elg pg in
  let all_rows = List.map (fun a -> (a, atom_rows gov pg ~max_len a)) q.atoms in
  let results = ref [] in
  let rec extend asg = function
    | [] -> if Governor.emit gov then results := asg :: !results
    | (a, rows) :: rest ->
        List.iter
          (fun (u, v, mu) ->
            if Governor.tick gov then
              match bind_term g asg a.x u with
              | None -> ()
              | Some asg -> (
                  match bind_term g asg a.y v with
                  | None -> ()
                  | Some asg -> (
                      match
                        List.fold_left
                          (fun acc (z, objs) ->
                            Option.bind acc (fun asg ->
                                bind asg z (Elist objs)))
                          (Some asg) (Lbinding.to_list mu)
                      with
                      | None -> ()
                      | Some asg -> extend asg rest)))
          rows
  in
  extend [] all_rows;
  !results
  |> List.map (fun asg ->
         List.map
           (fun x ->
             match List.assoc_opt x asg with
             | Some e -> e
             | None -> Elist [])
           q.head)
  |> List.sort_uniq Stdlib.compare

let eval_bounded ?max_len gov pg q =
  Governor.seal gov (eval_gov gov ?max_len pg q)

let eval ?max_len pg q =
  Governor.value (eval_bounded ?max_len (Governor.unlimited ()) pg q)

let entry_to_string g = function
  | Enode n -> Elg.node_name g n
  | Elist objs ->
      let name = function
        | Path.N u -> Elg.node_name g u
        | Path.E e -> Elg.edge_name g e
      in
      "list(" ^ String.concat ", " (List.map name objs) ^ ")"

let row_to_string g row =
  "(" ^ String.concat ", " (List.map (entry_to_string g) row) ^ ")"
