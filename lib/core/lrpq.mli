(** RPQs with list variables — l-RPQs (Section 3.1.4).

    An l-RPQ is a regular expression over [Labels ∪ {a^z}]: an atom [a^z]
    matches an [a]-labeled edge {e and} appends its identifier to the list
    bound to [z].  We additionally allow wildcard symbols in atoms
    (Remark 11 says extending the definitions with wildcards is routine).

    ⟦R⟧_G is a set of (path, binding) pairs over node-to-node paths and
    may be infinite (Example 16); the evaluation functions therefore take
    explicit length bounds, while {!to_pmr} gives the finite annotated
    representation of the possibly-infinite result (Section 6.3-6.4).

    By construction, list variables do not join: [⟦R⟧²_G = ⟦R·R⟧_G] holds
    by definition — the test suite checks this as a qcheck property
    (experiment E12). *)

type atom = { sym : Sym.t; capture : string option }
type t = atom Regex.t

(** [a]: plain label atom. *)
val lbl : string -> t

(** [a^z]: capturing label atom. *)
val cap : string -> string -> t

(** Capturing wildcard [_^z]. *)
val cap_any : string -> t

(** Wildcard [_]. *)
val any : t

val atom : ?capture:string -> Sym.t -> t

(** List variables occurring in the expression (Var(R)), sorted. *)
val vars : t -> string list

(** Forgets captures, yielding the underlying RPQ. *)
val strip : t -> Sym.t Regex.t

(** All (p, μ) ∈ ⟦R⟧_G with len(p) ≤ max_len.  Set semantics: duplicates
    arising from distinct runs with equal (p, μ) are eliminated. *)
val enumerate : Elg.t -> t -> max_len:int -> (Path.t * Lbinding.t) list

(** As {!enumerate}, restricted to paths from [src]. *)
val enumerate_from :
  Elg.t -> t -> src:int -> max_len:int -> (Path.t * Lbinding.t) list

(** As {!enumerate} under a governor: one step per search-tree edge
    extension, one result per (path, binding) kept. *)
val enumerate_bounded :
  Governor.t ->
  Elg.t ->
  t ->
  max_len:int ->
  (Path.t * Lbinding.t) list Governor.outcome

val enumerate_from_bounded :
  Governor.t ->
  Elg.t ->
  t ->
  src:int ->
  max_len:int ->
  (Path.t * Lbinding.t) list Governor.outcome

(** [m(σ_{src,tgt}(⟦R⟧_G))]: endpoint selection first, then the path mode
    — the order that gives shortest its grouping-by-endpoint-pair
    semantics (Example 17).  [max_len] bounds [All]; [Shortest] computes
    the true geodesic length itself. *)
val eval_mode :
  Elg.t ->
  t ->
  mode:Path_modes.mode ->
  max_len:int ->
  src:int ->
  tgt:int ->
  (Path.t * Lbinding.t) list

(** As {!eval_mode} under a governor. *)
val eval_mode_bounded :
  Governor.t ->
  Elg.t ->
  t ->
  mode:Path_modes.mode ->
  max_len:int ->
  src:int ->
  tgt:int ->
  (Path.t * Lbinding.t) list Governor.outcome

(** Endpoint pairs with at least one matching path (of any length). *)
val pairs : Elg.t -> t -> (int * int) list

val pairs_bounded :
  Governor.t -> Elg.t -> t -> (int * int) list Governor.outcome

(** Annotated-PMR representation of σ_{src,tgt}(⟦R⟧_G): one PMR path per
    run, i.e. per (path, binding) derivation.  Finite even when the result
    set is infinite.  [?obs] is forwarded to the PMR construction
    ([pmr.nodes], [pmr.edges], [pmr.build] span). *)
val to_pmr : ?obs:Obs.t -> Elg.t -> t -> src:int -> tgt:int -> Pmr.t

val to_string : t -> string
