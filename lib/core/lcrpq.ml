type term = TVar of string | TConst of string
type atom = { mode : Path_modes.mode; re : Lrpq.t; x : term; y : term }
type t = { head : string list; atoms : atom list }
type entry = Enode of int | Elist of Path.obj list

let term_vars = function TVar x -> [ x ] | TConst _ -> []

let make ~head ~atoms =
  if atoms = [] then invalid_arg "Lcrpq.make: no atoms";
  let endpoint_vars =
    List.concat_map (fun a -> term_vars a.x @ term_vars a.y) atoms
    |> List.sort_uniq String.compare
  in
  let list_var_sets = List.map (fun a -> Lrpq.vars a.re) atoms in
  let all_list_vars = List.concat list_var_sets in
  (* Condition (3): list variables disjoint from endpoint variables. *)
  List.iter
    (fun z ->
      if List.mem z endpoint_vars then
        invalid_arg
          (Printf.sprintf "Lcrpq.make: %s is both list and endpoint variable" z))
    all_list_vars;
  (* Condition (4): list variables disjoint across atoms. *)
  let sorted = List.sort String.compare all_list_vars in
  let rec check_dup = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg
            (Printf.sprintf "Lcrpq.make: list variable %s shared by two atoms" a)
        else check_dup rest
    | [ _ ] | [] -> ()
  in
  check_dup sorted;
  (* Condition (5): head from endpoint or list variables. *)
  List.iter
    (fun x ->
      if not (List.mem x endpoint_vars || List.mem x all_list_vars) then
        invalid_arg (Printf.sprintf "Lcrpq.make: unsafe head variable %s" x))
    head;
  { head; atoms }

let head q = q.head
let atoms q = q.atoms

(* Partial assignments: variable -> entry, sorted association list. *)
let bind asg x v =
  let rec go = function
    | [] -> Some [ (x, v) ]
    | (y, w) :: rest ->
        let c = String.compare x y in
        if c < 0 then Some ((x, v) :: (y, w) :: rest)
        else if c = 0 then if w = v then Some ((y, w) :: rest) else None
        else Option.map (fun r -> (y, w) :: r) (go rest)
  in
  go asg

let bind_term g asg term node =
  match term with
  | TVar x -> bind asg x (Enode node)
  | TConst name -> if Elg.node_id g name = node then Some asg else None

(* Rows contributed by one atom: (u, v, one binding per witness).  A
   tripped governor truncates the row set, which only shrinks the join. *)
let atom_rows gov g ~max_len a =
  let has_list_vars = Lrpq.vars a.re <> [] in
  let endpoint_pairs =
    Governor.payload ~default:[] (Lrpq.pairs_bounded gov g a.re)
  in
  let constrain term pairs proj =
    match term with
    | TVar _ -> pairs
    | TConst name ->
        let n = Elg.node_id g name in
        List.filter (fun p -> proj p = n) pairs
  in
  let endpoint_pairs = constrain a.x endpoint_pairs fst in
  let endpoint_pairs = constrain a.y endpoint_pairs snd in
  List.concat_map
    (fun (u, v) ->
      if not has_list_vars then
        (* No list variables: the mode constrains nothing (it only fixes
           the values of list variables), so the pair itself suffices. *)
        [ (u, v, Lbinding.empty) ]
      else if not (Governor.ok gov) then []
      else
        Governor.payload ~default:[]
          (Lrpq.eval_mode_bounded gov g a.re ~mode:a.mode ~max_len ~src:u
             ~tgt:v)
        |> List.map (fun (_p, mu) -> (u, v, mu))
        |> List.sort_uniq Stdlib.compare)
    endpoint_pairs

(* Depth-first join: an assignment is reported only once it satisfies
   every atom, so a tripped budget yields a subset of the true answers. *)
let eval_gov gov ?(max_len = 12) g q =
  let all_rows = List.map (fun a -> (a, atom_rows gov g ~max_len a)) q.atoms in
  let results = ref [] in
  let rec extend asg = function
    | [] -> if Governor.emit gov then results := asg :: !results
    | (a, rows) :: rest ->
        List.iter
          (fun (u, v, mu) ->
            if Governor.tick gov then
              match bind_term g asg a.x u with
              | None -> ()
              | Some asg -> (
                  match bind_term g asg a.y v with
                  | None -> ()
                  | Some asg -> (
                      (* List variables are atom-local (condition 4), so
                         binds cannot clash. *)
                      match
                        List.fold_left
                          (fun acc (z, objs) ->
                            Option.bind acc (fun asg ->
                                bind asg z (Elist objs)))
                          (Some asg) (Lbinding.to_list mu)
                      with
                      | None -> ()
                      | Some asg -> extend asg rest)))
          rows
  in
  extend [] all_rows;
  !results
  |> List.map (fun asg ->
         List.map
           (fun x ->
             match List.assoc_opt x asg with
             | Some e -> e
             | None -> Elist [] (* list variable that captured nothing *))
           q.head)
  |> List.sort_uniq Stdlib.compare

let eval_bounded ?max_len gov g q =
  Governor.seal gov (eval_gov gov ?max_len g q)

let eval ?max_len g q =
  Governor.value (eval_bounded ?max_len (Governor.unlimited ()) g q)

let entry_to_string g = function
  | Enode n -> Elg.node_name g n
  | Elist objs ->
      let name = function
        | Path.N u -> Elg.node_name g u
        | Path.E e -> Elg.edge_name g e
      in
      "list(" ^ String.concat ", " (List.map name objs) ^ ")"

let row_to_string g row =
  "(" ^ String.concat ", " (List.map (entry_to_string g) row) ^ ")"
