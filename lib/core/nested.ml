type nre_atom = Base of Sym.t | Nested of query
and nre = nre_atom Regex.t
and nre_query_atom = { re : nre; x : string; y : string }
and query = { hx : string; hy : string; body : nre_query_atom list }

let rec depth q =
  List.fold_left
    (fun acc a ->
      List.fold_left
        (fun acc atom ->
          match atom with
          | Base _ -> acc
          | Nested inner -> max acc (1 + depth inner))
        acc (Regex.atoms a.re))
    0 q.body

let make ~hx ~hy ~body =
  if body = [] then invalid_arg "Nested.make: no atoms";
  let endpoint_vars =
    List.concat_map (fun a -> [ a.x; a.y ]) body
    |> List.sort_uniq String.compare
  in
  List.iter
    (fun v ->
      if not (List.mem v endpoint_vars) then
        invalid_arg (Printf.sprintf "Nested.make: unsafe head variable %s" v))
    [ hx; hy ];
  let q = { hx; hy; body } in
  let nested_present = depth q > 0 in
  if nested_present then
    List.iter
      (fun a ->
        List.iter
          (function
            | Base (Sym.Any | Sym.Not _) ->
                invalid_arg
                  "Nested.make: wildcards cannot be mixed with nested queries"
            | Base (Sym.Lbl _) | Nested _ -> ())
          (Regex.atoms a.re))
      q.body;
  q

(* Saturation: evaluate nested queries, materialize their pairs as virtual
   edges, then run the outer level as a plain CRPQ.  The governor is
   shared across every nesting level; inner truncation only shrinks the
   virtual edge sets, so partial outer answers stay sound. *)
let rec eval_gov gov g q =
  (* Collect nested subqueries of the outer level, left to right. *)
  let nested = ref [] in
  List.iter
    (fun a ->
      List.iter
        (function Base _ -> () | Nested inner -> nested := inner :: !nested)
        (Regex.atoms a.re))
    q.body;
  let nested = List.rev !nested in
  if nested = [] then eval_flat gov g q
  else begin
    let virtuals =
      List.mapi
        (fun i inner -> (inner, Printf.sprintf "#vq%d" i, eval_gov gov g inner))
        nested
    in
    (* Rebuild the graph with one fresh label per nested query. *)
    let nodes = List.init (Elg.nb_nodes g) (Elg.node_name g) in
    let base_edges =
      List.init (Elg.nb_edges g) (fun e ->
          ( Elg.edge_name g e,
            Elg.node_name g (Elg.src g e),
            Elg.label g e,
            Elg.node_name g (Elg.tgt g e) ))
    in
    let virtual_edges =
      List.concat_map
        (fun (_, lbl, pairs) ->
          List.mapi
            (fun j (u, v) ->
              ( Printf.sprintf "%s_e%d" lbl j,
                Elg.node_name g u,
                lbl,
                Elg.node_name g v ))
            pairs)
        virtuals
    in
    let g' = Elg.make ~nodes ~edges:(base_edges @ virtual_edges) in
    (* Replace nested atoms by their virtual labels, matching structurally
       (structurally equal nested queries share a label, which is sound:
       they have the same pairs). *)
    let replace_atom = function
      | Base sym -> sym
      | Nested inner -> (
          match List.find_opt (fun (q', _, _) -> q' = inner) virtuals with
          | Some (_, lbl, _) -> Sym.Lbl lbl
          | None -> assert false)
    in
    let body' =
      List.map
        (fun a -> { a with re = Regex.map (fun at -> Base (replace_atom at)) a.re })
        q.body
    in
    eval_flat gov g' { q with body = body' }
  end

and eval_flat gov g q =
  (* All atoms are Base symbols here. *)
  let to_sym = function
    | Base sym -> sym
    | Nested _ -> assert false
  in
  let crpq =
    Crpq.make ~head:[ q.hx; q.hy ]
      ~atoms:
        (List.map
           (fun a ->
             {
               Crpq.re = Regex.map to_sym a.re;
               x = Crpq.TVar a.x;
               y = Crpq.TVar a.y;
             })
           q.body)
  in
  Governor.payload ~default:[] (Crpq.eval_bounded gov g crpq)
  |> List.map (function [ u; v ] -> (u, v) | _ -> assert false)

let eval_bounded gov g q = Governor.seal gov (eval_gov gov g q)
let eval g q = Governor.value (eval_bounded (Governor.unlimited ()) g q)
