(** Generic (worst-case-optimal-style) join evaluation for CRPQs.

    Section 7.1: "over the last decade we have seen impressive progress on
    worst-case optimal evaluation of conjunctive queries ... For CRPQs we
    have seen little progress so far".  This module is the natural first
    step the paper gestures at: evaluate every atom's RPQ to a binary
    relation (the pattern-matching layer), then join all atoms with a
    {e generic join} — variables are assigned one at a time, and each
    candidate set is the intersection of the constraints from every atom
    touching the variable — rather than with a fixed binary-join plan
    whose intermediate results can exceed the AGM bound.

    Benchmark E15 compares this against {!Crpq.eval}'s pairwise joins on
    triangle queries, where the intermediate-result gap is the classical
    worst case. *)

(** Same specification as {!Crpq.eval}.  [?pool] parallelizes the
    per-atom RPQ materialization; the generic join stays serial.

    [?planner] (default: [GQ_PLAN] ≠ ["off"]) uses the {!Planner}'s
    first-appearance order along its selectivity-ordered atoms as the
    variable elimination order (sorted names when off); answers are
    identical either way.  Identical atom regexes are compiled and
    materialized once per query.

    [?obs] records [wcoj.index_pairs] (pairs materialized per atom
    index), [wcoj.atom_dedup] (repeated atom regexes served from the
    per-query memo), [wcoj.tuples_explored] (candidate extensions tried)
    and [wcoj.rows], inside [wcoj.eval] / [wcoj.index] spans. *)
val eval :
  ?pool:Pool.t -> ?obs:Obs.t -> ?planner:bool -> Elg.t -> Crpq.t -> int list list

(** As {!eval} under a governor: one step per explored tuple extension,
    one result per completed assignment; [Partial] outcomes are subsets
    of the unbounded answer. *)
val eval_bounded :
  ?pool:Pool.t -> ?obs:Obs.t -> ?planner:bool ->
  Governor.t -> Elg.t -> Crpq.t -> int list list Governor.outcome

(** Intermediate-result sizes: [(tuples_explored_generic,
    max_intermediate_binary)] for cost reporting in E15. *)
val compare_costs : Elg.t -> Crpq.t -> int * int
