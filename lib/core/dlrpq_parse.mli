(** Parser for the paper's dl-RPQ notation (Section 3.2.1):

    {v
    expr    ::= term ('|' term)*
    term    ::= factor+
    factor  ::= atom ('*' | '+' | '?' | '{n}' | '{n,m}')* | '(' expr ')' ...
    atom    ::= '(' inner ')'          node atom
              | '[' inner ']'          edge atom
    inner   ::= label | label '^' var | '_' | '_' '^' var
              | var ':=' prop
              | prop op (const | var)
    v}

    where [op ∈ {=, <>, <, >, <=, >=}] and constants are numbers or
    ['quoted strings'].  Examples from the paper parse verbatim:

    - ["(a^z)(x := date)([_](a^z)(date > x)(x := date))*"] (Example 21,
      node version),
    - ["[a^z][x := date]((_)[a^z][date > x][x := date])*"] (edge version).

    A parenthesized group containing a full expression is disambiguated
    from a node atom by attempting the atom parse first. *)

exception Parse_error of string

val parse : string -> Dlrpq.t

(** Total: any malformed input (including out-of-range numbers and bad
    repetition ranges) is an [Error], never an escaped exception. *)
val parse_opt : string -> (Dlrpq.t, string) result

(** As {!parse_opt}, with the shared {!Gq_error.t} error type. *)
val parse_res : string -> (Dlrpq.t, Gq_error.t) result
