(** RPQs with data tests and list variables — dl-RPQs (Section 3.2.1).

    Atoms come in node form [(·)] and edge form [[·]], each either a label
    (possibly capturing into a list variable) or an element test; nodes
    and edges are treated {e symmetrically}, which is what makes
    "increasing values on edges" as easy as on nodes (Example 21, versus
    Proposition 23 for GQL-style patterns).

    The semantics is the paper's configuration relation
    [(p, ν, μ) ⊢_R (p', ν', μ')]: each atom appends an object to the
    path, where appending the {e current last object again collapses}
    ([p · path(o) = p] when p ends in o).  Hence several consecutive
    atoms can constrain the same node or edge —
    [(a^z)(date < x)(x := date)] matches a single node.  Value
    assignments ν filter paths but are not part of the output
    (Remark 19): results are (path, list-binding) pairs.

    Because collapsing atoms ("stutters") do not lengthen the path, a
    starred capturing atom can produce unboundedly many bindings on a
    fixed path; enumeration therefore bounds the number of {e atom
    applications} with [max_steps] (default: [(max_len + 2) ×
    (expression size + 2)], enough for any expression that does not
    stutter-capture in a loop). *)

type kind = Knode | Kedge

type atom =
  | Lbl of kind * Sym.t * string option
      (** [(a)], [(a^z)], [[a]], [[a^z]] and their wildcard forms *)
  | Test of kind * Etest.t  (** [(et)], [[et]] *)

type t = atom Regex.t

(** {1 Constructors} *)

val node_lbl : string -> t
val node_cap : string -> string -> t
val node_test : Etest.t -> t

(** [(_)]: any node. *)
val node_any : t

val node_any_cap : string -> t
val edge_lbl : string -> t
val edge_cap : string -> string -> t
val edge_test : Etest.t -> t

(** [[_]]: any edge. *)
val edge_any : t

val edge_any_cap : string -> t

(** {1 Static information} *)

(** List variables (Var(R)). *)
val list_vars : t -> string list

(** Data variables (from element tests). *)
val data_vars : t -> string list

val to_string : t -> string
val atom_to_string : atom -> string

(** {1 Evaluation} *)

(** All (p, μ) ∈ ⟦R⟧_G with src(p) = [src] and len(p) ≤ [max_len].  The
    empty path is never reported (its endpoints are undefined, so no
    σ_{u,v} selects it). *)
val enumerate_from :
  Pg.t -> t -> src:int -> max_len:int -> ?max_steps:int -> unit ->
  (Path.t * Lbinding.t) list

(** As {!enumerate_from} under a governor: one step per atom application,
    one result per (path, binding) kept. *)
val enumerate_from_bounded :
  Governor.t ->
  Pg.t ->
  t ->
  src:int ->
  max_len:int ->
  ?max_steps:int ->
  unit ->
  (Path.t * Lbinding.t) list Governor.outcome

(** [m(σ_{src,tgt}(⟦R⟧_G))].  [Shortest] determines the geodesic length
    exactly (0/1-BFS over configurations, so data filters are honoured:
    the Section 6.3 example where the answer is longer than the shortest
    path works out of the box); the other modes are bounded by
    [max_len]. *)
val eval_mode :
  Pg.t ->
  t ->
  mode:Path_modes.mode ->
  max_len:int ->
  ?max_steps:int ->
  src:int ->
  tgt:int ->
  unit ->
  (Path.t * Lbinding.t) list

(** As {!eval_mode} under a governor. *)
val eval_mode_bounded :
  Governor.t ->
  Pg.t ->
  t ->
  mode:Path_modes.mode ->
  max_len:int ->
  ?max_steps:int ->
  src:int ->
  tgt:int ->
  unit ->
  (Path.t * Lbinding.t) list Governor.outcome

(** Length of the shortest matching path from [src] to [tgt], data tests
    included; [None] if there is none. *)
val shortest_len : Pg.t -> t -> src:int -> tgt:int -> int option

(** As {!shortest_len} under a governor: one step per configuration
    popped in the 0/1-BFS.  A tripped budget yields [Partial None]. *)
val shortest_len_bounded :
  Governor.t -> Pg.t -> t -> src:int -> tgt:int -> int option Governor.outcome

(** Number of configurations explored by {!shortest_len}'s search — the
    cost measure of experiment E6. *)
val shortest_len_stats : Pg.t -> t -> src:int -> tgt:int -> int option * int

(** Bindings of matches of [R] against exactly the given path (used to
    replay the paper's fixed-path examples).  [max_steps] bounds the
    number of atom applications, as in {!enumerate_from}; the default
    allows each object to be constrained by several consecutive atoms. *)
val check_path : ?max_steps:int -> Pg.t -> t -> Path.t -> Lbinding.t list

(** Does [R] match the path exactly? *)
val matches_path : Pg.t -> t -> Path.t -> bool
