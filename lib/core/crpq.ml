type term = TVar of string | TConst of string
type atom = { re : Sym.t Regex.t; x : term; y : term }
type t = { head : string list; atoms : atom list }

let term_vars = function TVar x -> [ x ] | TConst _ -> []

let endpoint_vars atoms =
  List.concat_map (fun a -> term_vars a.x @ term_vars a.y) atoms
  |> List.sort_uniq String.compare

let make ~head ~atoms =
  if atoms = [] then invalid_arg "Crpq.make: no atoms";
  let vars = endpoint_vars atoms in
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        invalid_arg
          (Printf.sprintf "Crpq.make: head variable %s is not an endpoint" x))
    head;
  { head; atoms }

let head q = q.head
let atoms q = q.atoms

(* Assignments are sorted association lists, variable -> node. *)
let lookup asg x = List.assoc_opt x asg

let bind asg x v =
  let rec go = function
    | [] -> Some [ (x, v) ]
    | (y, w) :: rest ->
        let c = String.compare x y in
        if c < 0 then Some ((x, v) :: (y, w) :: rest)
        else if c = 0 then if w = v then Some ((y, w) :: rest) else None
        else Option.map (fun r -> (y, w) :: r) (go rest)
  in
  go asg

let bind_term g asg term node =
  match term with
  | TVar x -> bind asg x node
  | TConst name -> if Elg.node_id g name = node then Some asg else None

let to_planner_atom a =
  {
    Planner.re = a.re;
    x = (match a.x with TVar v -> Planner.Var v | TConst c -> Planner.Const c);
    y = (match a.y with TVar v -> Planner.Var v | TConst c -> Planner.Const c);
  }

(* How one planned atom participates in the join: materialized pair set,
   or — when an endpoint is already bound by earlier atoms (or is a
   constant) — a per-binding BFS probe over the cached (reversed)
   product, which never materializes the atom's full relation. *)
type exec =
  | Mat of atom * (int * int) list
  | Probe_fwd of int * atom * Product.t  (* x bound: BFS from h(x) *)
  | Probe_bwd of int * atom * Product.t  (* y bound: reverse BFS from h(y) *)

let swap_sorted ps =
  List.sort Stdlib.compare (List.rev_map (fun (v, u) -> (u, v)) ps)

(* Memoized by (regex, direction): a CRPQ with k copies of the same atom
   compiles and materializes it once (the compilation itself also hits
   the process-wide Plan_cache). *)
let materialize_memo ?pool ~obs gov g memo a dir =
  let key = (Regex.to_string Sym.to_string a.re, dir = Planner.Backward) in
  match Hashtbl.find_opt memo key with
  | Some pairs ->
      Obs.incr obs "crpq.atom_dedup";
      pairs
  | None ->
      let c = Rpq_compile.compile_ast ~obs Rpq_compile.shared a.re in
      let pairs =
        Governor.payload ~default:[]
          (match dir with
          | Planner.Forward ->
              Rpq_eval.pairs_product_bounded ?pool ~obs gov
                (Rpq_compile.product ~obs Rpq_compile.shared g c)
          | Planner.Backward ->
              Governor.map swap_sorted
                (Rpq_eval.pairs_product_bounded ?pool ~obs gov
                   (Rpq_compile.product_rev ~obs Rpq_compile.shared g c)))
      in
      Hashtbl.add memo key pairs;
      pairs

let homomorphisms_gov ?pool ?(obs = Obs.none) ?planner gov g q =
  (* Plan the atom order, materialize what must be materialized, then
     join depth-first: one tick per candidate pair, one emit per
     completed assignment.  Depth-first matters for soundness of partial
     results — an assignment is reported only once it satisfies
     {e every} atom, so a tripped budget yields a subset of the true
     answers, never a superset.  With the planner off ([GQ_PLAN=off] or
     [~planner:false]) atoms run in query order, all materialized
     forward — the baseline the planner is benchmarked against. *)
  Obs.span obs "crpq.eval" @@ fun () ->
  let use_planner =
    match planner with Some b -> b | None -> Planner.enabled_from_env ()
  in
  let memo = Hashtbl.create 8 in
  let execs =
    Obs.span obs "crpq.atoms" @@ fun () ->
    if not use_planner then
      List.map
        (fun a ->
          Failpoint.check "crpq.join.atom";
          Mat (a, materialize_memo ?pool ~obs gov g memo a Planner.Forward))
        q.atoms
    else begin
      let st = Stats.get g in
      let plan = Planner.plan st (List.map to_planner_atom q.atoms) in
      let atoms_arr = Array.of_list q.atoms in
      let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let is_bound = function
        | TConst _ -> true
        | TVar v -> Hashtbl.mem bound v
      in
      let note = function
        | TConst _ -> ()
        | TVar v -> Hashtbl.replace bound v ()
      in
      List.mapi
        (fun pos ap ->
          let a = atoms_arr.(ap.Planner.index) in
          Failpoint.check "crpq.join.atom";
          let bx = is_bound a.x and by = is_bound a.y in
          let e =
            if bx then
              let c = Rpq_compile.compile_ast ~obs Rpq_compile.shared a.re in
              Probe_fwd
                (pos, a, Rpq_compile.product ~obs Rpq_compile.shared g c)
            else if by then
              let c = Rpq_compile.compile_ast ~obs Rpq_compile.shared a.re in
              Probe_bwd
                (pos, a, Rpq_compile.product_rev ~obs Rpq_compile.shared g c)
            else begin
              let pairs =
                materialize_memo ?pool ~obs gov g memo a ap.Planner.direction
              in
              Obs.add obs "crpq.est_card"
                (int_of_float ap.Planner.est.Planner.card);
              Obs.add obs "crpq.actual_card" (List.length pairs);
              Mat (a, pairs)
            end
          in
          note a.x;
          note a.y;
          e)
        plan.Planner.order
    end
  in
  List.iter
    (function
      | Mat (_, pairs) -> Obs.add obs "crpq.atom_pairs" (List.length pairs)
      | Probe_fwd _ | Probe_bwd _ -> ())
    execs;
  Obs.span obs "crpq.join" @@ fun () ->
  let candidates = Obs.counter_fn obs "crpq.join_candidates" in
  let probe_count = Obs.counter_fn obs "crpq.probes" in
  let considered = ref 0 in
  let results = ref [] in
  let nb_results = ref 0 in
  (* Reachable sets per (planned atom, start node), shared across join
     branches that bind the same node. *)
  let reach_memo = Hashtbl.create 64 in
  let reach pos product src =
    match Hashtbl.find_opt reach_memo (pos, src) with
    | Some ts -> ts
    | None ->
        probe_count 1;
        let ts = Rpq_eval.from_source_product ~gov ~obs product ~src in
        Hashtbl.add reach_memo (pos, src) ts;
        ts
  in
  let node_of asg = function
    | TConst name -> Elg.node_id g name
    | TVar x -> (
        match lookup asg x with
        | Some v -> v
        | None -> assert false (* bound by construction of the plan *))
  in
  let rec extend asg = function
    | [] ->
        if Governor.emit gov then begin
          incr nb_results;
          results := asg :: !results
        end
    | e :: rest -> (
        let try_pair a asg u v =
          match bind_term g asg a.x u with
          | None -> ()
          | Some asg -> (
              match bind_term g asg a.y v with
              | None -> ()
              | Some asg -> extend asg rest)
        in
        match e with
        | Mat (a, pairs) ->
            List.iter
              (fun (u, v) ->
                if Governor.tick gov then begin
                  incr considered;
                  try_pair a asg u v
                end)
              pairs
        | Probe_fwd (pos, a, product) ->
            let u = node_of asg a.x in
            List.iter
              (fun v ->
                if Governor.tick gov then begin
                  incr considered;
                  try_pair a asg u v
                end)
              (reach pos product u)
        | Probe_bwd (pos, a, product) ->
            let v = node_of asg a.y in
            List.iter
              (fun u ->
                if Governor.tick gov then begin
                  incr considered;
                  try_pair a asg u v
                end)
              (reach pos product v))
  in
  extend [] execs;
  candidates !considered;
  Obs.add obs "crpq.rows" !nb_results;
  List.sort_uniq Stdlib.compare !results

let homomorphisms ?pool ?obs ?planner g q =
  homomorphisms_gov ?pool ?obs ?planner (Governor.unlimited ()) g q

(* The static planning decisions, without evaluating anything: the same
   bound-endpoint walk as [homomorphisms_gov], for EXPLAIN output. *)
let explain g q =
  let st = Stats.get g in
  let plan = Planner.plan st (List.map to_planner_atom q.atoms) in
  let atoms_arr = Array.of_list q.atoms in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let is_bound = function TConst _ -> true | TVar v -> Hashtbl.mem bound v in
  let note = function TConst _ -> () | TVar v -> Hashtbl.replace bound v () in
  List.map
    (fun ap ->
      let a = atoms_arr.(ap.Planner.index) in
      let bx = is_bound a.x and by = is_bound a.y in
      let mode =
        if bx then "probe-forward"
        else if by then "probe-backward"
        else
          match ap.Planner.direction with
          | Planner.Forward -> "materialize-forward"
          | Planner.Backward -> "materialize-backward"
      in
      note a.x;
      note a.y;
      (ap, mode))
    plan.Planner.order

let project_head q homs =
  List.map
    (fun asg ->
      List.map
        (fun x ->
          match lookup asg x with
          | Some v -> v
          | None -> assert false (* safety checked in [make] *))
        q.head)
    homs
  |> List.sort_uniq Stdlib.compare

let eval_bounded ?pool ?obs ?planner gov g q =
  Governor.seal gov
    (project_head q (homomorphisms_gov ?pool ?obs ?planner gov g q))

let eval ?pool ?obs ?planner g q =
  Governor.value (eval_bounded ?pool ?obs ?planner (Governor.unlimited ()) g q)

let holds g q = homomorphisms g q <> []

(* Relational-algebra pipeline: one binary relation per atom, natural
   joins on shared variables, projection onto the head. *)
let eval_relational g q =
  let fresh =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Printf.sprintf "#c%d" !counter
  in
  let atom_relation a =
    let pairs = Rpq_eval.pairs g a.re in
    (* Constants become fresh columns filtered to the constant node, then
       projected away. *)
    let col_x, keep_x =
      match a.x with TVar x -> (x, true) | TConst _ -> (fresh (), false)
    in
    let col_y, keep_y =
      match a.y with TVar y -> (y, true) | TConst _ -> (fresh (), false)
    in
    if col_x = col_y then
      (* Self-join within the atom: R(x, x). *)
      Relation.make ~schema:[ col_x ]
        ~rows:
          (List.filter_map
             (fun (u, v) -> if u = v then Some [ Relation.Cnode u ] else None)
             pairs)
    else begin
      let rel =
        Relation.make ~schema:[ col_x; col_y ]
          ~rows:(List.map (fun (u, v) -> [ Relation.Cnode u; Relation.Cnode v ]) pairs)
      in
      let filter_const term col rel =
        match term with
        | TConst name ->
            let n = Elg.node_id g name in
            Relation.select rel (fun get -> get col = Relation.Cnode n)
        | TVar _ -> rel
      in
      let rel = filter_const a.x col_x rel in
      let rel = filter_const a.y col_y rel in
      let keep =
        (if keep_x then [ col_x ] else []) @ if keep_y then [ col_y ] else []
      in
      Relation.project rel keep
    end
  in
  let joined =
    match List.map atom_relation q.atoms with
    | [] -> invalid_arg "Crpq.eval_relational: no atoms"
    | first :: rest -> List.fold_left Relation.join first rest
  in
  Relation.project joined q.head
