type term = TVar of string | TConst of string
type atom = { re : Sym.t Regex.t; x : term; y : term }
type t = { head : string list; atoms : atom list }

let term_vars = function TVar x -> [ x ] | TConst _ -> []

let endpoint_vars atoms =
  List.concat_map (fun a -> term_vars a.x @ term_vars a.y) atoms
  |> List.sort_uniq String.compare

let make ~head ~atoms =
  if atoms = [] then invalid_arg "Crpq.make: no atoms";
  let vars = endpoint_vars atoms in
  List.iter
    (fun x ->
      if not (List.mem x vars) then
        invalid_arg
          (Printf.sprintf "Crpq.make: head variable %s is not an endpoint" x))
    head;
  { head; atoms }

let head q = q.head
let atoms q = q.atoms

(* Assignments are sorted association lists, variable -> node. *)
let lookup asg x = List.assoc_opt x asg

let bind asg x v =
  let rec go = function
    | [] -> Some [ (x, v) ]
    | (y, w) :: rest ->
        let c = String.compare x y in
        if c < 0 then Some ((x, v) :: (y, w) :: rest)
        else if c = 0 then if w = v then Some ((y, w) :: rest) else None
        else Option.map (fun r -> (y, w) :: r) (go rest)
  in
  go asg

let bind_term g asg term node =
  match term with
  | TVar x -> bind asg x node
  | TConst name -> if Elg.node_id g name = node then Some asg else None

let homomorphisms_gov ?pool ?(obs = Obs.none) gov g q =
  (* Evaluate every atom's pair set (atom materialization fans each
     pair-set's sources across [?pool]), then join smallest-first with a
     depth-first nested-loop join: one tick per candidate pair, one emit
     per completed assignment.  Depth-first matters for soundness of
     partial results — an assignment is reported only once it satisfies
     {e every} atom, so a tripped budget yields a subset of the true
     answers, never a superset. *)
  Obs.span obs "crpq.eval" @@ fun () ->
  let atom_pairs =
    Obs.span obs "crpq.atoms" @@ fun () ->
    List.map
      (fun a ->
        Failpoint.check "crpq.join.atom";
        ( a,
          Governor.payload ~default:[]
            (Rpq_eval.pairs_bounded ?pool ~obs gov g a.re) ))
      q.atoms
    |> List.sort (fun (_, p1) (_, p2) ->
           Stdlib.compare (List.length p1) (List.length p2))
  in
  List.iter
    (fun (_, pairs) -> Obs.add obs "crpq.atom_pairs" (List.length pairs))
    atom_pairs;
  Obs.span obs "crpq.join" @@ fun () ->
  let candidates = Obs.counter_fn obs "crpq.join_candidates" in
  let considered = ref 0 in
  let results = ref [] in
  let nb_results = ref 0 in
  let rec extend asg = function
    | [] ->
        if Governor.emit gov then begin
          incr nb_results;
          results := asg :: !results
        end
    | (a, pairs) :: rest ->
        List.iter
          (fun (u, v) ->
            if Governor.tick gov then begin
              incr considered;
              match bind_term g asg a.x u with
              | None -> ()
              | Some asg -> (
                  match bind_term g asg a.y v with
                  | None -> ()
                  | Some asg -> extend asg rest)
            end)
          pairs
  in
  extend [] atom_pairs;
  candidates !considered;
  Obs.add obs "crpq.rows" !nb_results;
  List.sort_uniq Stdlib.compare !results

let homomorphisms ?pool ?obs g q =
  homomorphisms_gov ?pool ?obs (Governor.unlimited ()) g q

let project_head q homs =
  List.map
    (fun asg ->
      List.map
        (fun x ->
          match lookup asg x with
          | Some v -> v
          | None -> assert false (* safety checked in [make] *))
        q.head)
    homs
  |> List.sort_uniq Stdlib.compare

let eval_bounded ?pool ?obs gov g q =
  Governor.seal gov (project_head q (homomorphisms_gov ?pool ?obs gov g q))

let eval ?pool ?obs g q =
  Governor.value (eval_bounded ?pool ?obs (Governor.unlimited ()) g q)

let holds g q = homomorphisms g q <> []

(* Relational-algebra pipeline: one binary relation per atom, natural
   joins on shared variables, projection onto the head. *)
let eval_relational g q =
  let fresh =
    let counter = ref 0 in
    fun () ->
      incr counter;
      Printf.sprintf "#c%d" !counter
  in
  let atom_relation a =
    let pairs = Rpq_eval.pairs g a.re in
    (* Constants become fresh columns filtered to the constant node, then
       projected away. *)
    let col_x, keep_x =
      match a.x with TVar x -> (x, true) | TConst _ -> (fresh (), false)
    in
    let col_y, keep_y =
      match a.y with TVar y -> (y, true) | TConst _ -> (fresh (), false)
    in
    if col_x = col_y then
      (* Self-join within the atom: R(x, x). *)
      Relation.make ~schema:[ col_x ]
        ~rows:
          (List.filter_map
             (fun (u, v) -> if u = v then Some [ Relation.Cnode u ] else None)
             pairs)
    else begin
      let rel =
        Relation.make ~schema:[ col_x; col_y ]
          ~rows:(List.map (fun (u, v) -> [ Relation.Cnode u; Relation.Cnode v ]) pairs)
      in
      let filter_const term col rel =
        match term with
        | TConst name ->
            let n = Elg.node_id g name in
            Relation.select rel (fun get -> get col = Relation.Cnode n)
        | TVar _ -> rel
      in
      let rel = filter_const a.x col_x rel in
      let rel = filter_const a.y col_y rel in
      let keep =
        (if keep_x then [ col_x ] else []) @ if keep_y then [ col_y ] else []
      in
      Relation.project rel keep
    end
  in
  let joined =
    match List.map atom_relation q.atoms with
    | [] -> invalid_arg "Crpq.eval_relational: no atoms"
    | first :: rest -> List.fold_left Relation.join first rest
  in
  Relation.project joined q.head
