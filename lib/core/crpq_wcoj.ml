(* Index for one atom's answer relation. *)
type atom_index = {
  x_term : Crpq.term;
  y_term : Crpq.term;
  forward : (int, int list) Hashtbl.t;  (* x -> sorted ys *)
  backward : (int, int list) Hashtbl.t;  (* y -> sorted xs *)
  xs : int list;  (* sorted distinct sources *)
  ys : int list;  (* sorted distinct targets *)
  loops : int list;  (* sorted n with (n, n) in the relation *)
}

(* Pair sets are memoized per distinct regex ([memo]): a query with k
   copies of the same atom compiles and materializes it once; the
   compilation itself goes through the process-wide Plan_cache. *)
let atom_pairs ?pool ~obs gov g memo (a : Crpq.atom) =
  let key = Regex.to_string Sym.to_string a.Crpq.re in
  match Hashtbl.find_opt memo key with
  | Some pairs ->
      Obs.incr obs "wcoj.atom_dedup";
      pairs
  | None ->
      let c = Rpq_compile.compile_ast ~obs Rpq_compile.shared a.Crpq.re in
      let pairs =
        Governor.payload ~default:[]
          (Rpq_eval.pairs_product_bounded ?pool ~obs gov
             (Rpq_compile.product ~obs Rpq_compile.shared g c))
      in
      Hashtbl.add memo key pairs;
      pairs

let build_index ?pool ?(obs = Obs.none) gov g memo (a : Crpq.atom) =
  let pairs = atom_pairs ?pool ~obs gov g memo a in
  Obs.add obs "wcoj.index_pairs" (List.length pairs);
  let forward = Hashtbl.create 64 and backward = Hashtbl.create 64 in
  let add tbl k v =
    Hashtbl.replace tbl k (v :: (try Hashtbl.find tbl k with Not_found -> []))
  in
  List.iter
    (fun (u, v) ->
      add forward u v;
      add backward v u)
    pairs;
  Hashtbl.iter (fun k vs -> Hashtbl.replace forward k (List.sort_uniq compare vs))
    (Hashtbl.copy forward);
  Hashtbl.iter (fun k vs -> Hashtbl.replace backward k (List.sort_uniq compare vs))
    (Hashtbl.copy backward);
  {
    x_term = a.Crpq.x;
    y_term = a.Crpq.y;
    forward;
    backward;
    xs = List.map fst pairs |> List.sort_uniq compare;
    ys = List.map snd pairs |> List.sort_uniq compare;
    loops = List.filter_map (fun (u, v) -> if u = v then Some u else None) pairs
            |> List.sort_uniq compare;
  }

let rec intersect l1 l2 =
  match (l1, l2) with
  | [], _ | _, [] -> []
  | a :: r1, b :: r2 ->
      if a < b then intersect r1 l2
      else if a > b then intersect l1 r2
      else a :: intersect r1 r2

let term_vars = function Crpq.TVar x -> [ x ] | Crpq.TConst _ -> []

let eval_with_stats_gov ?pool ?(obs = Obs.none) ?planner gov g q =
  Obs.span obs "wcoj.eval" @@ fun () ->
  let use_planner =
    match planner with Some b -> b | None -> Planner.enabled_from_env ()
  in
  let atoms = Crpq.atoms q in
  let memo = Hashtbl.create 8 in
  let indexes =
    Obs.span obs "wcoj.index" @@ fun () ->
    List.map (build_index ?pool ~obs gov g memo) atoms
  in
  (* Variable elimination order: the planner's first-appearance order
     along its selectivity-ordered atoms, or sorted names when off. *)
  let vars =
    if use_planner then
      let p_atoms = List.map Crpq.to_planner_atom atoms in
      Planner.variable_order p_atoms (Planner.plan (Stats.get g) p_atoms)
    else
      List.concat_map (fun a -> term_vars a.Crpq.x @ term_vars a.Crpq.y) atoms
      |> List.sort_uniq String.compare
  in
  let resolve asg = function
    | Crpq.TConst name -> Some (Elg.node_id g name)
    | Crpq.TVar x -> List.assoc_opt x asg
  in
  let explored = ref 0 in
  let results = ref [] in
  let lookup tbl k = try Hashtbl.find tbl k with Not_found -> [] in
  (* Candidates for [v] under [asg]: intersect every applicable atom
     constraint; [None] means unconstrained so far. *)
  let candidates v asg =
    List.fold_left
      (fun acc idx ->
        let vx = match idx.x_term with Crpq.TVar x when x = v -> true | _ -> false in
        let vy = match idx.y_term with Crpq.TVar y when y = v -> true | _ -> false in
        let constraint_list =
          if vx && vy then Some idx.loops
          else if vx then
            match resolve asg idx.y_term with
            | Some n -> Some (lookup idx.backward n)
            | None -> Some idx.xs
          else if vy then
            match resolve asg idx.x_term with
            | Some n -> Some (lookup idx.forward n)
            | None -> Some idx.ys
          else None
        in
        match (acc, constraint_list) with
        | None, c -> c
        | Some l, None -> Some l
        | Some l1, Some l2 -> Some (intersect l1 l2))
      None indexes
  in
  (* Tuple-at-a-time: a tripped budget abandons the in-flight partial
     assignment, so reported rows always satisfy every atom. *)
  let rec assign asg = function
    | [] -> if Governor.emit gov then results := asg :: !results
    | v :: rest ->
        let cands = match candidates v asg with Some l -> l | None -> [] in
        List.iter
          (fun n ->
            if Governor.tick gov then begin
              incr explored;
              assign ((v, n) :: asg) rest
            end)
          cands
  in
  assign [] vars;
  (* Fully-constant atoms were never touched by any variable: check them. *)
  let constant_ok =
    List.for_all2
      (fun a idx ->
        match (a.Crpq.x, a.Crpq.y) with
        | Crpq.TConst nx, Crpq.TConst ny ->
            List.mem (Elg.node_id g ny) (lookup idx.forward (Elg.node_id g nx))
        | _, _ -> true)
      atoms indexes
  in
  let rows =
    if not constant_ok then []
    else
      List.map
        (fun asg ->
          List.map
            (fun x ->
              match List.assoc_opt x asg with Some n -> n | None -> -1)
            (Crpq.head q))
        !results
      |> List.sort_uniq compare
  in
  Obs.add obs "wcoj.tuples_explored" !explored;
  Obs.add obs "wcoj.rows" (List.length rows);
  (rows, !explored)

let eval_with_stats g q = eval_with_stats_gov (Governor.unlimited ()) g q

let eval_bounded ?pool ?obs ?planner gov g q =
  let rows, _ = eval_with_stats_gov ?pool ?obs ?planner gov g q in
  Governor.seal gov rows

let eval ?pool ?obs ?planner g q =
  Governor.value (eval_bounded ?pool ?obs ?planner (Governor.unlimited ()) g q)

let compare_costs g q =
  let _, generic = eval_with_stats g q in
  (* The pairwise-join baseline: materialize the join left to right (atoms
     sorted smallest-first, as Crpq.eval does) and record the peak
     intermediate assignment count. *)
  let atoms = Crpq.atoms q in
  let with_pairs =
    List.map (fun a -> (a, Rpq_eval.pairs g a.Crpq.re)) atoms
    |> List.sort (fun (_, p1) (_, p2) -> compare (List.length p1) (List.length p2))
  in
  let bind asg x v =
    match List.assoc_opt x asg with
    | Some w -> if w = v then Some asg else None
    | None -> Some ((x, v) :: asg)
  in
  let bind_term asg term node =
    match term with
    | Crpq.TVar x -> bind asg x node
    | Crpq.TConst name -> if Elg.node_id g name = node then Some asg else None
  in
  let peak = ref 0 in
  let _ =
    List.fold_left
      (fun assignments (a, pairs) ->
        let next =
          List.concat_map
            (fun asg ->
              List.filter_map
                (fun (u, v) ->
                  Option.bind (bind_term asg a.Crpq.x u) (fun asg ->
                      bind_term asg a.Crpq.y v))
                pairs)
            assignments
          |> List.sort_uniq compare
        in
        if List.length next > !peak then peak := List.length next;
        next)
      [ [] ] with_pairs
  in
  (generic, !peak)
