type 'a t =
  | Eps
  | Atom of 'a
  | Seq of 'a t * 'a t
  | Alt of 'a t * 'a t
  | Star of 'a t

let eps = Eps
let atom a = Atom a

let seq r1 r2 =
  match (r1, r2) with Eps, r | r, Eps -> r | r1, r2 -> Seq (r1, r2)

let alt r1 r2 = Alt (r1, r2)

let star = function
  | Eps -> Eps
  | Star _ as r -> r
  | r -> Star r

let opt r = Alt (r, Eps)
let plus r = seq r (star r)

let repeat n m r =
  if n < 0 || m < n then invalid_arg "Regex.repeat: need 0 <= n <= m";
  let rec exact k = if k = 0 then Eps else seq r (exact (k - 1)) in
  let rec upto k = if k = 0 then Eps else opt (seq r (upto (k - 1))) in
  seq (exact n) (upto (m - n))

let seq_list rs = List.fold_right seq rs Eps

let alt_list = function
  | [] -> invalid_arg "Regex.alt_list: empty"
  | r :: rs -> List.fold_left alt r rs

let rec size = function
  | Eps | Atom _ -> 1
  | Seq (r1, r2) | Alt (r1, r2) -> 1 + size r1 + size r2
  | Star r -> 1 + size r

let atoms r =
  let rec go acc = function
    | Eps -> acc
    | Atom a -> a :: acc
    | Seq (r1, r2) | Alt (r1, r2) -> go (go acc r2) r1
    | Star r -> go acc r
  in
  go [] r

let rec map f = function
  | Eps -> Eps
  | Atom a -> Atom (f a)
  | Seq (r1, r2) -> Seq (map f r1, map f r2)
  | Alt (r1, r2) -> Alt (map f r1, map f r2)
  | Star r -> Star (map f r)

let rec reverse = function
  | (Eps | Atom _) as r -> r
  | Seq (r1, r2) -> Seq (reverse r2, reverse r1)
  | Alt (r1, r2) -> Alt (reverse r1, reverse r2)
  | Star r -> Star (reverse r)

let rec nullable = function
  | Eps -> true
  | Atom _ -> false
  | Seq (r1, r2) -> nullable r1 && nullable r2
  | Alt (r1, r2) -> nullable r1 || nullable r2
  | Star _ -> true

(* The derivative uses the simplifying constructors to keep expression
   growth in check; [Fail] is encoded as [Alt] of nothing — we add an
   explicit empty regex locally. *)
type 'a d = DFail | DRe of 'a t

let d_alt d1 d2 =
  match (d1, d2) with
  | DFail, d | d, DFail -> d
  | DRe r1, DRe r2 -> DRe (alt r1 r2)

let d_seq d r2 = match d with DFail -> DFail | DRe r1 -> DRe (seq r1 r2)

let rec deriv ~matches letter = function
  | Eps -> DFail
  | Atom a -> if matches a letter then DRe Eps else DFail
  | Seq (r1, r2) ->
      let left = d_seq (deriv ~matches letter r1) r2 in
      if nullable r1 then d_alt left (deriv ~matches letter r2) else left
  | Alt (r1, r2) -> d_alt (deriv ~matches letter r1) (deriv ~matches letter r2)
  | Star r as whole -> d_seq (deriv ~matches letter r) whole

let matches_word ~matches r w =
  let rec go r = function
    | [] -> nullable r
    | letter :: rest -> (
        match deriv ~matches letter r with
        | DFail -> false
        | DRe r' -> go r' rest)
  in
  go r w

let enumerate ~alphabet ~matches ~max_len r =
  (* Breadth-first over derivative states; words of the same length come
     out in alphabet order. *)
  let results = ref [] in
  let frontier = ref [ ([], r) ] in
  let len = ref 0 in
  while !frontier <> [] && !len <= max_len do
    List.iter
      (fun (w, r) -> if nullable r then results := List.rev w :: !results)
      !frontier;
    if !len < max_len then
      frontier :=
        List.concat_map
          (fun (w, r) ->
            List.filter_map
              (fun letter ->
                match deriv ~matches letter r with
                | DFail -> None
                | DRe r' -> Some (letter :: w, r'))
              alphabet)
          !frontier
    else frontier := [];
    incr len
  done;
  List.rev !results

let rec pp pp_atom fmt = function
  | Eps -> Format.pp_print_string fmt "()"
  | Atom a -> pp_atom fmt a
  | Seq (r1, r2) ->
      Format.fprintf fmt "%a%a" (pp_inner pp_atom) r1 (pp_inner pp_atom) r2
  | Alt (r1, r2) ->
      Format.fprintf fmt "%a|%a" (pp_inner pp_atom) r1 (pp_inner pp_atom) r2
  | Star r -> Format.fprintf fmt "%a*" (pp_inner pp_atom) r

and pp_inner pp_atom fmt r =
  match r with
  | Eps | Atom _ | Star _ -> pp pp_atom fmt r
  | Seq _ | Alt _ -> Format.fprintf fmt "(%a)" (pp pp_atom) r

let to_string atom_to_string r =
  Format.asprintf "%a"
    (pp (fun fmt a -> Format.pp_print_string fmt (atom_to_string a)))
    r
