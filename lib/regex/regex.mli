(** Regular expressions over an arbitrary atom type (Section 3.1.1).

    One polymorphic AST serves every language in the paper: plain RPQs use
    {!Sym.t} atoms, RPQs with list variables use capture-annotated labels,
    and dl-RPQs use node/edge/data-test atoms (Section 3.2.1).  The core
    connectives are exactly the paper's (ε, atom, concatenation,
    disjunction, Kleene star); [R?], [R+] and [R{n,m}] are provided as the
    derived forms the paper introduces. *)

type 'a t =
  | Eps
  | Atom of 'a
  | Seq of 'a t * 'a t
  | Alt of 'a t * 'a t
  | Star of 'a t

val eps : 'a t
val atom : 'a -> 'a t

(** Simplifying constructor: drops [Eps] units. *)
val seq : 'a t -> 'a t -> 'a t

val alt : 'a t -> 'a t -> 'a t

(** Simplifying constructor: [star (star r)] is [star r] and
    [star Eps] is [Eps].  Use the bare {!t} constructors to build
    deliberately redundant expressions such as the nested stars of
    Section 6.1. *)
val star : 'a t -> 'a t

(** [R?] = [R + ε]. *)
val opt : 'a t -> 'a t

(** [R+] = [R · R*]. *)
val plus : 'a t -> 'a t

(** [repeat n m r] = [r{n,m}]; requires [0 <= n <= m]. *)
val repeat : int -> int -> 'a t -> 'a t

val seq_list : 'a t list -> 'a t
val alt_list : 'a t list -> 'a t

(** AST size (number of constructors); the paper's notion of expression
    size for the Section 6.2 comparison. *)
val size : 'a t -> int

(** Atoms in left-to-right order. *)
val atoms : 'a t -> 'a list

val map : ('a -> 'b) -> 'a t -> 'b t

(** Language reversal: [w ∈ L(reverse r)] iff the mirror of [w] is in
    [L(r)].  Used to evaluate an RPQ backward — from targets over the
    reversed graph — when the planner deems that side cheaper. *)
val reverse : 'a t -> 'a t

(** [ε ∈ L(r)]? *)
val nullable : 'a t -> bool

(** [matches_word ~matches r w]: Brzozowski-derivative membership test;
    [matches] decides whether an atom matches a letter.  Reference
    implementation used as an oracle against the automata pipeline. *)
val matches_word : matches:('a -> 'l -> bool) -> 'a t -> 'l list -> bool

(** [enumerate ~alphabet ~matches ~max_len r] lists all words over
    [alphabet] of length at most [max_len] in [L(r)], shortest first. *)
val enumerate :
  alphabet:'l list ->
  matches:('a -> 'l -> bool) ->
  max_len:int ->
  'a t ->
  'l list list

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
val to_string : ('a -> string) -> 'a t -> string
