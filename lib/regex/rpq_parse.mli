(** Concrete syntax for RPQs.

    {v
    expr    ::= term ('|' term)*
    term    ::= factor factor*            (juxtaposition, '.' and '/' allowed)
    factor  ::= base ('*' | '+' | '?' | '{n}' | '{n,m}')*
    base    ::= label | '_' | '!{' label (',' label)* '}' | '(' expr ')' | '()'
    v}

    ['_'] is the full wildcard, [!{a,b}] the negated set of Remark 11,
    ['()'] is ε.  Labels are alphanumeric (plus [_] and [-]). *)

exception Parse_error of string

val parse : string -> Sym.t Regex.t
val parse_opt : string -> (Sym.t Regex.t, string) result

(** As {!parse_opt}, with the shared {!Gq_error.t} error type. *)
val parse_res : string -> (Sym.t Regex.t, Gq_error.t) result
