exception Parse_error of string

type token =
  | Tlabel of string
  | Tany
  | Tnotset of string list
  | Tlpar
  | Trpar
  | Tbar
  | Tstar
  | Tplus
  | Topt
  | Trepeat of int * int option

let fail msg = raise (Parse_error msg)

let is_label_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let read_label () =
    let start = !i in
    while !i < n && is_label_char s.[!i] do
      incr i
    done;
    String.sub s start (!i - start)
  in
  let read_int () =
    let start = !i in
    while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
      incr i
    done;
    if start = !i then fail "expected a number in repetition";
    let text = String.sub s start (!i - start) in
    (* [int_of_string] raises [Failure] on overflow; the parser must
       degrade to its own error instead. *)
    match int_of_string_opt text with
    | Some v -> v
    | None -> fail (Printf.sprintf "repetition count %s out of range" text)
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else fail (Printf.sprintf "expected %c" c)
  in
  while !i < n do
    match s.[!i] with
    | ' ' | '\t' | '\n' | '.' | '/' -> incr i
    | '(' ->
        incr i;
        tokens := Tlpar :: !tokens
    | ')' ->
        incr i;
        tokens := Trpar :: !tokens
    | '|' ->
        incr i;
        tokens := Tbar :: !tokens
    | '*' ->
        incr i;
        tokens := Tstar :: !tokens
    | '+' ->
        incr i;
        tokens := Tplus :: !tokens
    | '?' ->
        incr i;
        tokens := Topt :: !tokens
    | '{' ->
        incr i;
        let lo = read_int () in
        let hi =
          if !i < n && s.[!i] = ',' then begin
            incr i;
            Some (read_int ())
          end
          else None
        in
        expect '}';
        tokens := Trepeat (lo, hi) :: !tokens
    | '!' ->
        incr i;
        expect '{';
        let rec labels acc =
          let l = read_label () in
          if l = "" then fail "empty label in !{...}";
          if !i < n && s.[!i] = ',' then begin
            incr i;
            labels (l :: acc)
          end
          else List.rev (l :: acc)
        in
        let set = labels [] in
        expect '}';
        tokens := Tnotset set :: !tokens
    | c when is_label_char c ->
        let l = read_label () in
        tokens := (if l = "_" then Tany else Tlabel l) :: !tokens
    | c -> fail (Printf.sprintf "unexpected character %c" c)
  done;
  List.rev !tokens

(* Recursive descent over the token list. *)
let parse s =
  let tokens = tokenize s in
  let toks = ref tokens in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec expr () =
    let t = term () in
    match peek () with
    | Some Tbar ->
        advance ();
        Regex.alt t (expr ())
    | _ -> t
  and term () =
    let f = factor () in
    match peek () with
    | Some (Tlabel _ | Tany | Tnotset _ | Tlpar) -> Regex.seq f (term ())
    | _ -> f
  and factor () =
    let b = ref (base ()) in
    let continue = ref true in
    while !continue do
      (match peek () with
      | Some Tstar -> advance (); b := Regex.Star !b
      | Some Tplus -> advance (); b := Regex.plus !b
      | Some Topt -> advance (); b := Regex.opt !b
      | Some (Trepeat (lo, hi)) ->
          advance ();
          let hi = match hi with Some h -> h | None -> lo in
          if hi < lo then
            fail (Printf.sprintf "bad repetition range {%d,%d}" lo hi);
          b := Regex.repeat lo hi !b
      | _ -> continue := false)
    done;
    !b
  and base () =
    match peek () with
    | Some (Tlabel l) ->
        advance ();
        Regex.atom (Sym.Lbl l)
    | Some Tany ->
        advance ();
        Regex.atom Sym.Any
    | Some (Tnotset set) ->
        advance ();
        Regex.atom (Sym.Not set)
    | Some Tlpar -> (
        advance ();
        match peek () with
        | Some Trpar ->
            advance ();
            Regex.Eps
        | _ ->
            let e = expr () in
            (match peek () with
            | Some Trpar -> advance ()
            | _ -> fail "expected )");
            e)
    | Some (Trpar | Tbar | Tstar | Tplus | Topt | Trepeat _) | None ->
        fail "expected a label, wildcard, or ("
  in
  let e = expr () in
  if !toks <> [] then fail "trailing input";
  e

let parse_opt s =
  match parse s with
  | e -> Ok e
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let parse_res s =
  match parse_opt s with
  | Ok e -> Ok e
  | Error msg -> Error (Gq_error.Parse { what = "rpq"; msg })
