(* Write-ahead log for delta batches.  See wal.mli for the format and
   the durability contract; the serve-mode writer appends under its
   writer lock, so no internal locking is needed — the counter reads the
   stats path performs from other domains are single-word and benign. *)

let wal_magic = "GQW1"
let header_len = 20 (* magic | u64 gen | u64 base lsn *)
let rec_header_len = 20 (* u32 len | u64 checksum | u64 lsn *)

type fsync_policy = Always | Interval of float | Never

let fsync_policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s when String.length s > 9 && String.sub s 0 9 = "interval:" -> (
      let ms = String.sub s 9 (String.length s - 9) in
      match float_of_string_opt ms with
      | Some f when f >= 0. -> Ok (Interval f)
      | _ -> Error (Printf.sprintf "bad fsync interval %S" ms))
  | _ -> Error (Printf.sprintf "unknown fsync policy %S (want always | interval:MS | never)" s)

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval ms ->
      if Float.is_integer ms then Printf.sprintf "interval:%.0f" ms
      else Printf.sprintf "interval:%g" ms

type t = {
  dir : string;
  pol : fsync_policy;
  checkpoint_every : int;
  checkpoint_bytes : int;
  obs : Obs.t;
  mutable gen : int; (* current generation; 0 before any checkpoint *)
  mutable fd : Unix.file_descr option; (* current segment, None when read-only or gen 0 *)
  mutable lsn : int64; (* next LSN to assign *)
  mutable records : int; (* records in the current segment *)
  mutable bytes : int; (* valid bytes in the current segment (incl. header) *)
  mutable last_fsync : float;
  mutable dirty : bool;
  mutable ro : bool;
  mutable last_append : (int64 * int) option;
      (* (lsn, pre-append byte length) of the newest record in the
         current segment, for [undo_append_res]; cleared at rotation *)
  mutable appends : int;
  mutable fsyncs : int;
  mutable checkpoints : int;
  mutable rotations : int;
  mutable replayed : int;
  mutable checkpoint_errors : int;
}

type recovery = {
  rc_graph : Pg.t option;
  rc_gen : int;
  rc_base_gen : int;
  rc_next_lsn : int64;
  rc_replayed : int;
  rc_truncated : bool;
  rc_warnings : string list;
}

type counters = {
  c_gen : int;
  c_next_lsn : int64;
  c_read_only : bool;
  c_records : int;
  c_bytes : int;
  c_appends : int;
  c_fsyncs : int;
  c_checkpoints : int;
  c_rotations : int;
  c_replayed : int;
  c_checkpoint_errors : int;
}

type record = {
  r_gen : int;
  r_lsn : int64;
  r_bytes : int;
  r_payload : string;
}

let err_parse fmt =
  Printf.ksprintf (fun msg -> Error (Gq_error.Parse { what = "wal"; msg })) fmt

let err_io fmt = Printf.ksprintf (fun msg -> Error (Gq_error.Io msg)) fmt
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* --- paths and directory listing ----------------------------------------- *)

let checkpoint_path dir gen = Filename.concat dir (Printf.sprintf "checkpoint-%d.gqb" gen)
let segment_path dir gen = Filename.concat dir (Printf.sprintf "wal-%d.log" gen)

let gen_of ~prefix ~suffix name =
  let pl = String.length prefix and sl = String.length suffix in
  let nl = String.length name in
  if nl > pl + sl && String.sub name 0 pl = prefix
     && String.sub name (nl - sl) sl = suffix
  then
    let mid = String.sub name pl (nl - pl - sl) in
    match int_of_string_opt mid with Some g when g > 0 -> Some g | _ -> None
  else None

(* (checkpoint generations, segment generations), both sorted ascending. *)
let list_gens dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | entries ->
      let cps = ref [] and segs = ref [] in
      Array.iter
        (fun name ->
          (match gen_of ~prefix:"checkpoint-" ~suffix:".gqb" name with
          | Some g -> cps := g :: !cps
          | None -> ());
          match gen_of ~prefix:"wal-" ~suffix:".log" name with
          | Some g -> segs := g :: !segs
          | None -> ())
        entries;
      Ok (List.sort compare !cps, List.sort compare !segs)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception End_of_file -> err_io "%s: truncated file" path

(* --- record framing ------------------------------------------------------ *)

let checksum ~lsn payload =
  let b = Bytes.create (8 + String.length payload) in
  Bytes.set_int64_le b 0 lsn;
  Bytes.blit_string payload 0 b 8 (String.length payload);
  Graph_io.fnv1a64 (Bytes.to_string b)

let encode_header ~gen ~base_lsn =
  let b = Bytes.create header_len in
  Bytes.blit_string wal_magic 0 b 0 4;
  Bytes.set_int64_le b 4 (Int64.of_int gen);
  Bytes.set_int64_le b 12 base_lsn;
  Bytes.to_string b

let encode_record ~lsn payload =
  let n = String.length payload in
  let b = Bytes.create (rec_header_len + n) in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.set_int64_le b 4 (checksum ~lsn payload);
  Bytes.set_int64_le b 12 lsn;
  Bytes.blit_string payload 0 b rec_header_len n;
  Bytes.to_string b

(* One scanned segment: records in order plus where the valid prefix
   ends.  [sg_torn] marks a dropped tail (short write or a failed check
   on the very last record). *)
type seg_scan = {
  sg_base : int64;
  sg_recs : (int64 * string) list;
  sg_valid_len : int;
  sg_torn : bool;
}

(* [allow_torn] distinguishes the last segment of a recovery chain (a
   crash can tear its tail) from inner segments, where any framing
   damage is refused as corruption. *)
let scan_segment ~gen ~allow_torn path =
  let* s = read_file path in
  let flen = String.length s in
  if flen < header_len then
    if allow_torn then
      (* A crash between segment creation and the header fsync leaves a
         short or empty file: nothing to replay. *)
      Ok { sg_base = -1L; sg_recs = []; sg_valid_len = 0; sg_torn = flen > 0 }
    else err_parse "%s: truncated segment header (%d bytes)" path flen
  else if String.sub s 0 4 <> wal_magic then
    err_parse "%s: bad magic %S (want %S)" path (String.sub s 0 4) wal_magic
  else
    let hgen = Int64.to_int (String.get_int64_le s 4) in
    if hgen <> gen then
      err_parse "%s: header generation %d disagrees with filename" path hgen
    else
      let base = String.get_int64_le s 12 in
      let recs = ref [] and nrec = ref 0 in
      let pos = ref header_len and torn = ref false in
      let result = ref None in
      (while !result = None && not !torn && !pos < flen do
         let expect = Int64.add base (Int64.of_int !nrec) in
         if !pos + rec_header_len > flen then torn := true
         else begin
           let len = Int32.to_int (String.get_int32_le s !pos) in
           if len < 0 || !pos + rec_header_len + len > flen then
             (* Framing runs past EOF: a torn tail when nothing follows,
                otherwise undecidable — treated as torn since no further
                record can be framed either way. *)
             torn := true
           else begin
             let stored = String.get_int64_le s (!pos + 4) in
             let lsn = String.get_int64_le s (!pos + 12) in
             let payload = String.sub s (!pos + rec_header_len) len in
             let last = !pos + rec_header_len + len = flen in
             if stored <> checksum ~lsn payload then
               if last then torn := true
               else
                 result :=
                   Some
                     (err_parse
                        "%s: checksum mismatch at record %d (offset %d), valid records follow — refusing to recover"
                        path !nrec !pos)
             else if lsn <> expect then
               if last then torn := true
               else
                 result :=
                   Some
                     (err_parse "%s: LSN %Ld at record %d (expected %Ld)" path
                        lsn !nrec expect)
             else begin
               recs := (lsn, payload) :: !recs;
               incr nrec;
               pos := !pos + rec_header_len + len
             end
           end
         end
       done;
       if !torn && not allow_torn then
         result :=
           Some (err_parse "%s: torn record in a non-final segment" path));
      (match !result with
      | Some e -> e
      | None ->
          Ok
            {
              sg_base = base;
              sg_recs = List.rev !recs;
              sg_valid_len = !pos;
              sg_torn = !torn;
            })

(* End LSN of a segment (base + records), tolerating a torn tail —
   used to place the next LSN when the current segment is missing
   (crash between checkpoint and rotation).  A torn tail record had its
   LSN assigned by the writer before the crash; count it, so that LSN is
   never reissued to a new write in a later generation — the torn bytes
   stay behind in the abandoned segment, and reuse would break LSN
   uniqueness across the retained log history (visible in wal-dump). *)
let scan_end_lsn ~gen path =
  let* sc = scan_segment ~gen ~allow_torn:true path in
  if sc.sg_base < 0L then Ok None
  else
    let n = List.length sc.sg_recs + if sc.sg_torn then 1 else 0 in
    Ok (Some (Int64.add sc.sg_base (Int64.of_int n)))

(* --- recovery ------------------------------------------------------------ *)

let empty_recovery =
  {
    rc_graph = None;
    rc_gen = 0;
    rc_base_gen = 0;
    rc_next_lsn = 1L;
    rc_replayed = 0;
    rc_truncated = false;
    rc_warnings = [];
  }

(* Replay coalescing: by default every segment's records are parsed
   up front and applied as ONE [Delta.apply_res] batch — one counting-pass
   CSR rebuild per segment instead of one per record, which turns
   recovery of an n-record segment from O(n * (V + E)) into O(V + E + n).
   [Pg.apply_delta_res] gives batches sequential semantics (an op sees
   the effects of every earlier op, within and across record boundaries),
   so the recovered state is identical to per-record replay — pinned by
   test_wal.  [GQ_WAL_COALESCE=off] forces the per-record path (also the
   fallback whenever a batched apply fails, so errors still name the
   exact LSN). *)
let coalesce_from_env () =
  match Sys.getenv_opt "GQ_WAL_COALESCE" with
  | Some ("off" | "0" | "false" | "no") -> false
  | Some _ | None -> true

(* Internal recovery, also returning the valid byte length and record
   count of the current segment so [open_res] can truncate a torn tail
   and resume its rotation-threshold bookkeeping. *)
let recover_internal ?coalesce dir =
  let coalesce =
    match coalesce with Some b -> b | None -> coalesce_from_env ()
  in
  if not (Sys.file_exists dir) then Ok (empty_recovery, 0, 0)
  else
    let* cps, segs = list_gens dir in
    match (cps, segs) with
    | [], [] -> Ok (empty_recovery, 0, 0)
    | [], _ -> err_parse "%s: log segments without any checkpoint" dir
    | _ ->
        let warnings = ref [] in
        (* Anchor: newest checkpoint that loads and validates; fall back
           generation by generation on 0-byte/garbage snapshots.  Strictly
           GQB1 — the sniffing loader would accept a zeroed file as an
           empty *text* graph and silently anchor at the wrong state. *)
        let load_checkpoint path =
          match
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with
          | s -> Graph_io.of_bin_string_res s
          | exception Sys_error msg -> err_io "%s" msg
        in
        let rec pick = function
          | [] -> err_io "%s: no checkpoint generation validates" dir
          | g :: older -> (
              match load_checkpoint (checkpoint_path dir g) with
              | Ok pg -> Ok (g, pg)
              | Error e ->
                  warnings :=
                    Printf.sprintf
                      "checkpoint generation %d invalid (%s); falling back" g
                      (Gq_error.to_string e)
                    :: !warnings;
                  pick older)
        in
        let* base_gen, base_pg = pick (List.rev cps) in
        let top =
          List.fold_left max
            (List.fold_left max base_gen cps)
            segs
        in
        (* Replay segments base_gen..top in order; only the last may be
           torn.  LSN continuity across segment boundaries is enforced. *)
        let chain = List.filter (fun g -> g >= base_gen) segs in
        let graph = ref base_pg in
        let replayed = ref 0 and truncated = ref false in
        let next = ref None and cur_valid = ref 0 and cur_records = ref 0 in
        let rec replay = function
          | [] -> Ok ()
          | g :: rest ->
              let last = rest = [] in
              let* sc =
                scan_segment ~gen:g ~allow_torn:last (segment_path dir g)
              in
              if sc.sg_torn then truncated := true;
              if last then begin
                cur_valid := sc.sg_valid_len;
                cur_records := List.length sc.sg_recs
              end;
              if sc.sg_base >= 0L then begin
                match !next with
                | Some l when sc.sg_base <> l ->
                    err_parse
                      "%s: segment %d starts at LSN %Ld, expected %Ld (missing segment?)"
                      dir g sc.sg_base l
                | _ ->
                    let rec per_record = function
                      | [] -> Ok ()
                      | (lsn, payload) :: more -> (
                          match
                            let* ops = Delta.parse_res payload in
                            Delta.apply_res !graph ops
                          with
                          | Ok applied ->
                              graph := applied.Delta.pg;
                              incr replayed;
                              per_record more
                          | Error e ->
                              err_parse "%s: replaying LSN %Ld: %s" dir lsn
                                (Gq_error.to_string e))
                    in
                    let batched recs =
                      match
                        let* parsed =
                          List.fold_left
                            (fun acc (lsn, payload) ->
                              let* acc = acc in
                              match Delta.parse_res payload with
                              | Ok ops -> Ok (ops :: acc)
                              | Error e ->
                                  err_parse "%s: replaying LSN %Ld: %s" dir
                                    lsn (Gq_error.to_string e))
                            (Ok []) recs
                        in
                        Delta.apply_res !graph
                          (List.concat (List.rev parsed))
                      with
                      | Ok applied ->
                          graph := applied.Delta.pg;
                          replayed := !replayed + List.length recs;
                          Ok ()
                      | Error _ ->
                          (* Re-run record by record so the error names
                             the exact LSN (recovery aborts either way). *)
                          per_record recs
                    in
                    let* () =
                      if coalesce then batched sc.sg_recs
                      else per_record sc.sg_recs
                    in
                    next :=
                      Some
                        (Int64.add sc.sg_base
                           (Int64.of_int (List.length sc.sg_recs)));
                    replay rest
              end
              else replay rest
        in
        let* () = replay chain in
        let* next_lsn =
          match !next with
          | Some l -> Ok l
          | None -> (
              (* No replayable segment at or above the anchor: place the
                 next LSN after the newest completed segment below it. *)
              match List.filter (fun g -> g < base_gen) segs with
              | [] -> Ok 1L
              | below -> (
                  let g = List.fold_left max 0 below in
                  let* e = scan_end_lsn ~gen:g (segment_path dir g) in
                  Ok (Option.value e ~default:1L)))
        in
        Ok
          ( {
              rc_graph = Some !graph;
              rc_gen = top;
              rc_base_gen = base_gen;
              rc_next_lsn = next_lsn;
              rc_replayed = !replayed;
              rc_truncated = !truncated;
              rc_warnings = List.rev !warnings;
            },
            !cur_valid,
            !cur_records )

let recover_res ?coalesce dir =
  let* r, _, _ = recover_internal ?coalesce dir in
  Ok r

(* --- open ---------------------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go o =
    if o < n then
      let k = Unix.write fd b o (n - o) in
      go (o + k)
  in
  go 0

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let unix_msg e fn arg =
  Printf.sprintf "%s: %s: %s" fn arg (Unix.error_message e)

(* Open (or create) segment [gen] for appending, truncating to
   [valid_len] first; writes a fresh header when the file is new or its
   header was torn.  Returns the descriptor and the segment's valid
   byte length. *)
let open_segment ~dir ~gen ~base_lsn ~valid_len =
  let path = segment_path dir gen in
  let existed = Sys.file_exists path in
  (* O_APPEND keeps every write at EOF even after a rollback ftruncate. *)
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  try
    let len =
      if (not existed) || valid_len < header_len then begin
        Unix.ftruncate fd 0;
        write_all fd (encode_header ~gen ~base_lsn);
        Unix.fsync fd;
        if not existed then fsync_dir dir;
        header_len
      end
      else begin
        Unix.ftruncate fd valid_len;
        valid_len
      end
    in
    (fd, len)
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let open_res ?(obs = Obs.none) ?(policy = Always) ?(checkpoint_every = 1000)
    ?(checkpoint_bytes = 16 * 1024 * 1024) ?(read_only = false) dir =
  match
    let* () =
      if Sys.file_exists dir then
        if Sys.is_directory dir then Ok ()
        else err_io "%s: not a directory" dir
      else
        match Unix.mkdir dir 0o755 with
        | () -> Ok ()
        | exception Unix.Unix_error (e, fn, arg) ->
            err_io "%s" (unix_msg e fn arg)
    in
    let* r, valid_len, cur_records = recover_internal dir in
    let t =
      {
        dir;
        pol = policy;
        checkpoint_every = max 1 checkpoint_every;
        checkpoint_bytes = max 1 checkpoint_bytes;
        obs;
        gen = r.rc_gen;
        fd = None;
        lsn = r.rc_next_lsn;
        records = 0;
        bytes = 0;
        last_fsync = Unix.gettimeofday ();
        dirty = false;
        ro = read_only;
        last_append = None;
        appends = 0;
        fsyncs = 0;
        checkpoints = 0;
        rotations = 0;
        replayed = r.rc_replayed;
        checkpoint_errors = 0;
      }
    in
    Obs.add obs "wal.replayed" r.rc_replayed;
    let r =
      if t.ro || r.rc_gen = 0 then r
      else
        (* Resume appending to the current segment: drop any torn tail,
           re-create the segment if the crash landed between checkpoint
           and rotation.  An unwritable directory degrades to read-only
           inspection mode with a structured warning. *)
        match
          open_segment ~dir ~gen:r.rc_gen ~base_lsn:r.rc_next_lsn ~valid_len
        with
        | fd, len ->
            t.fd <- Some fd;
            t.bytes <- len;
            (* [cur_records] counts the chain's final segment; a freshly
               re-created segment (header only) starts from zero. *)
            t.records <- (if len > header_len then cur_records else 0);
            r
        | exception Unix.Unix_error ((EACCES | EPERM | EROFS) as e, fn, arg) ->
            t.ro <- true;
            {
              r with
              rc_warnings =
                r.rc_warnings
                @ [
                    Printf.sprintf
                      "log directory unwritable (%s); serving read-only"
                      (unix_msg e fn arg);
                  ];
            }
        | exception Unix.Unix_error (e, fn, arg) ->
            raise (Gq_error.Error (Gq_error.Io (unix_msg e fn arg)))
    in
    Ok (t, r)
  with
  | Ok _ as ok -> ok
  | Error _ as e -> e
  | exception Gq_error.Error e -> Error e
  | exception Sys_error msg -> Error (Gq_error.Io msg)
  | exception Unix.Unix_error (e, fn, arg) ->
      Error (Gq_error.Io (unix_msg e fn arg))

(* --- appending ----------------------------------------------------------- *)

let now () = Unix.gettimeofday ()

let fsync_now t fd =
  Failpoint.check "wal.fsync";
  Unix.fsync fd;
  t.fsyncs <- t.fsyncs + 1;
  t.last_fsync <- now ();
  t.dirty <- false;
  Obs.incr t.obs "wal.fsyncs"

let append_res t ops =
  Failpoint.check "wal.append";
  if t.ro then err_io "wal: read-only mode, refusing append"
  else
    match t.fd with
    | None -> err_io "wal: no checkpoint generation yet (load a graph first)"
    | Some fd -> (
        let lsn = t.lsn in
        let payload = Delta.render ops in
        let rec_bytes = encode_record ~lsn payload in
        let rollback () =
          (* Restore the pre-append segment length so a supervised retry
             cannot leave a duplicate or half-written record behind. *)
          try Unix.ftruncate fd t.bytes with Unix.Unix_error _ -> ()
        in
        match
          write_all fd rec_bytes;
          t.dirty <- true;
          let synced =
            match t.pol with
            | Always ->
                fsync_now t fd;
                true
            | Interval ms when (now () -. t.last_fsync) *. 1000. >= ms ->
                fsync_now t fd;
                true
            | Interval _ | Never -> false
          in
          synced
        with
        | synced ->
            t.last_append <- Some (lsn, t.bytes);
            t.lsn <- Int64.add lsn 1L;
            t.records <- t.records + 1;
            t.bytes <- t.bytes + String.length rec_bytes;
            t.appends <- t.appends + 1;
            Obs.incr t.obs "wal.appends";
            Obs.add t.obs "wal.bytes" (String.length rec_bytes);
            Ok (lsn, synced)
        | exception Unix.Unix_error (e, fn, arg) ->
            rollback ();
            err_io "%s" (unix_msg e fn arg)
        | exception e ->
            (* Failpoint.Injected and friends: roll back, let the
               supervision layer classify. *)
            rollback ();
            raise e)

(* Undo the most recent successful append, under the same writer lock
   that issued it: truncate the segment back and rewind the LSN.  The
   serve path calls this when publishing the already-appended delta
   fails — without it, a supervised retry of the append-then-publish
   body would write the batch a second time under a fresh LSN, and
   replay would apply the ops twice (a duplicate add-edge then bricks
   recovery with a parse error).  [Ok false] when [lsn] is not the
   newest append (a rotation or another append intervened) — nothing is
   touched.  If the truncate itself fails the log flips read-only:
   appending past a record that was never acknowledged would make
   replay apply it anyway. *)
let undo_append_res t lsn =
  match (t.fd, t.last_append) with
  | Some fd, Some (l, prev) when l = lsn && Int64.add l 1L = t.lsn -> (
      match Unix.ftruncate fd prev with
      | () ->
          (* O_APPEND puts the retry's write back at the truncated EOF,
             re-using this LSN — exactly the rolled-back layout. *)
          (if t.pol = Always && not t.dirty then
             try Unix.fsync fd with Unix.Unix_error _ -> ());
          t.lsn <- l;
          t.records <- t.records - 1;
          t.bytes <- prev;
          t.appends <- t.appends - 1;
          t.last_append <- None;
          Obs.incr t.obs "wal.undone";
          Ok true
      | exception Unix.Unix_error (e, fn, arg) ->
          t.ro <- true;
          err_io "wal: undo of LSN %Ld failed (%s); log now read-only" lsn
            (unix_msg e fn arg))
  | _ -> Ok false

let flush_res t =
  match t.fd with
  | Some fd when t.dirty && not t.ro -> (
      match fsync_now t fd with
      | () -> Ok true
      | exception Unix.Unix_error (e, fn, arg) ->
          err_io "%s" (unix_msg e fn arg))
  | _ -> Ok false

let tick_res t =
  match (t.pol, t.fd) with
  | Interval ms, Some _
    when t.dirty && (not t.ro) && (now () -. t.last_fsync) *. 1000. >= ms ->
      flush_res t
  | _ -> Ok false

(* --- checkpointing ------------------------------------------------------- *)

let delete_old_generations t =
  (* Keep the current and previous generations; the previous checkpoint
     anchors recovery if the current one is ever damaged. *)
  match list_gens t.dir with
  | Error _ -> ()
  | Ok (cps, segs) ->
      let rm path = try Sys.remove path with Sys_error _ -> () in
      List.iter
        (fun g -> if g <= t.gen - 2 then rm (checkpoint_path t.dir g))
        cps;
      List.iter
        (fun g -> if g <= t.gen - 2 then rm (segment_path t.dir g))
        segs

let checkpoint_res t pg =
  Failpoint.check "wal.checkpoint";
  if t.ro then err_io "wal: read-only mode, refusing checkpoint"
  else
    let gen' = t.gen + 1 in
    let* _bytes = Graph_io.save_bin_res pg (checkpoint_path t.dir gen') in
    (* From here checkpoint-<gen'> is durably on disk.  If the rotation
       below fails it must not stay: recovery anchors at the newest
       checkpoint and replays only segments >= its generation, so an
       orphaned checkpoint-<gen'> would silently drop every append a
       surviving writer acks into wal-<gen> afterwards.  Unlink the
       orphan (and fsync the directory) before surfacing the error; if
       even the unlink fails, flip read-only — refusing further appends
       beats acknowledging writes the next recovery would not replay. *)
    let abandon () =
      match Sys.remove (checkpoint_path t.dir gen') with
      | () -> fsync_dir t.dir
      | exception Sys_error _ -> t.ro <- true
    in
    match
      Failpoint.check "wal.rotate";
      (* Flush the old segment before abandoning it, then cut over. *)
      (match t.fd with
      | Some fd when t.dirty -> fsync_now t fd
      | _ -> ());
      open_segment ~dir:t.dir ~gen:gen' ~base_lsn:t.lsn ~valid_len:0
    with
    | fd', len ->
        (match t.fd with
        | Some old -> ( try Unix.close old with Unix.Unix_error _ -> ())
        | None -> ());
        t.fd <- Some fd';
        t.gen <- gen';
        t.records <- 0;
        t.bytes <- len;
        t.dirty <- false;
        t.last_append <- None;
        t.checkpoints <- t.checkpoints + 1;
        t.rotations <- t.rotations + 1;
        Obs.incr t.obs "wal.checkpoints";
        Obs.incr t.obs "wal.rotations";
        delete_old_generations t;
        Ok gen'
    | exception Unix.Unix_error (e, fn, arg) ->
        abandon ();
        err_io "%s" (unix_msg e fn arg)
    | exception e ->
        (* Injected faults and friends: remove the orphan, then let the
           supervision layer classify the original failure. *)
        abandon ();
        raise e

let maybe_checkpoint_res t pg =
  if
    (not t.ro)
    && t.fd <> None
    && (t.records >= t.checkpoint_every || t.bytes >= t.checkpoint_bytes)
  then
    let* _gen = checkpoint_res t pg in
    Ok true
  else Ok false

let note_checkpoint_error t =
  t.checkpoint_errors <- t.checkpoint_errors + 1;
  Obs.incr t.obs "wal.checkpoint_errors"

(* --- accessors ----------------------------------------------------------- *)

let read_only t = t.ro
let generation t = t.gen
let next_lsn t = t.lsn
let policy t = t.pol

let counters t =
  {
    c_gen = t.gen;
    c_next_lsn = t.lsn;
    c_read_only = t.ro;
    c_records = t.records;
    c_bytes = t.bytes;
    c_appends = t.appends;
    c_fsyncs = t.fsyncs;
    c_checkpoints = t.checkpoints;
    c_rotations = t.rotations;
    c_replayed = t.replayed;
    c_checkpoint_errors = t.checkpoint_errors;
  }

let close t =
  (match flush_res t with Ok _ | Error _ -> ());
  match t.fd with
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None
  | None -> ()

(* --- offline dump -------------------------------------------------------- *)

let dump_res dir =
  let* _cps, segs = list_gens dir in
  let rec go acc warns = function
    | [] -> Ok (List.rev acc, List.rev warns)
    | g :: rest ->
        let path = segment_path dir g in
        let* sc = scan_segment ~gen:g ~allow_torn:true path in
        let acc =
          List.fold_left
            (fun acc (lsn, payload) ->
              {
                r_gen = g;
                r_lsn = lsn;
                r_bytes = String.length payload;
                r_payload = payload;
              }
              :: acc)
            acc sc.sg_recs
        in
        let warns =
          if sc.sg_torn then
            Printf.sprintf "%s: torn tail truncated after %d record%s" path
              (List.length sc.sg_recs)
              (if List.length sc.sg_recs = 1 then "" else "s")
            :: warns
          else warns
        in
        go acc warns rest
  in
  go [] [] segs
