(** Durable write-ahead log for delta batches.

    A WAL directory holds checkpoint/segment generation pairs:

    {v
    checkpoint-<gen>.gqb   GQB1 snapshot (crash-safe atomic rename)
    wal-<gen>.log          delta records appended since that snapshot
    v}

    Segment layout, all integers little-endian:

    {v
    header   magic "GQW1" | u64 generation | u64 base LSN
    record   u32 payload length | u64 FNV-1a checksum | u64 LSN | payload
    v}

    The checksum covers the 8 LSN bytes followed by the payload; the
    payload is the textual delta format ({!Delta.render}), so replay
    reuses the total parser.  Records are appended *before* the delta is
    published (append-then-apply under the server's writer lock), and a
    failed append truncates the segment back to its pre-append length,
    making retries safe.

    Recovery loads the newest checkpoint that validates — a 0-byte or
    corrupt checkpoint falls back to the previous generation with a
    structured warning, replaying the intervening segments — and replays
    the log tail.  A torn final record (short write at the very end of
    the last segment) is tolerated and truncated; a checksum-corrupt
    record in the middle of the log is refused with
    [Error (Parse {what = "wal"})].

    Checkpointing writes the snapshot crash-safely ({!Graph_io.save_bin_res}),
    rotates to a fresh segment, and deletes generations older than the
    previous one (kept as the fallback anchor).

    Failpoint sites: [wal.append], [wal.fsync], [wal.checkpoint],
    [wal.rotate].  Obs counters: [wal.appends], [wal.bytes],
    [wal.fsyncs], [wal.checkpoints], [wal.rotations], [wal.replayed]. *)

type t

(** Group-commit policy: [Always] fsyncs every append (each
    acknowledgement is durable); [Interval ms] fsyncs when at least [ms]
    milliseconds have passed since the last sync (bounded loss window);
    [Never] leaves syncing to the OS (fastest, weakest). *)
type fsync_policy = Always | Interval of float | Never

(** Accepts ["always"], ["never"], ["interval:MS"]. *)
val fsync_policy_of_string : string -> (fsync_policy, string) result

val fsync_policy_to_string : fsync_policy -> string

type recovery = {
  rc_graph : Pg.t option;  (** [None] when the directory holds nothing *)
  rc_gen : int;  (** current (newest) generation, 0 when empty *)
  rc_base_gen : int;  (** checkpoint generation the replay anchored at *)
  rc_next_lsn : int64;  (** next LSN to assign *)
  rc_replayed : int;  (** records replayed *)
  rc_truncated : bool;  (** a torn final record was dropped *)
  rc_warnings : string list;
}

(** Offline recovery: read-only, touches nothing on disk.

    Replay coalesces each segment's records into one {!Delta.apply_res}
    batch — one counting-pass CSR rebuild per segment instead of one per
    record.  Batches have sequential semantics, so the recovered state
    is identical to per-record replay; a failing batch is re-run record
    by record so the error names the exact LSN.  [?coalesce] (default:
    on unless [GQ_WAL_COALESCE=off]) pins the strategy — tests pin
    batched == per-record with it. *)
val recover_res : ?coalesce:bool -> string -> (recovery, Gq_error.t) result

(** Open a WAL directory for serving: runs recovery, truncates a torn
    tail, opens (or re-creates) the current segment for appending.  The
    directory is created when missing.  [read_only] forces inspection
    mode; an unwritable directory degrades to read-only mode with a
    structured warning instead of failing.  [checkpoint_every] /
    [checkpoint_bytes] are the rotation thresholds for
    {!maybe_checkpoint_res} (records and segment bytes). *)
val open_res :
  ?obs:Obs.t ->
  ?policy:fsync_policy ->
  ?checkpoint_every:int ->
  ?checkpoint_bytes:int ->
  ?read_only:bool ->
  string ->
  (t * recovery, Gq_error.t) result

(** Append one delta batch; returns its LSN and whether the record is
    already fsynced (per policy).  On failure the segment is truncated
    back to its pre-append length, so a supervised retry cannot
    duplicate the record.  [Error (Io _)] in read-only mode or before
    the first checkpoint. *)
val append_res : t -> Pg.delta_op list -> (int64 * bool, Gq_error.t) result

(** Undo the most recent successful append (same writer-lock scope as
    the append): truncate the segment back and rewind the LSN, so a
    caller whose post-append publish failed can retry the whole
    append-then-publish body without writing the batch twice.  [Ok
    false] when [lsn] is not the newest append (nothing is touched);
    [Error (Io _)] — and the log flips read-only — when the truncate
    itself fails, since appending past an unacknowledged record would
    make replay apply it anyway. *)
val undo_append_res : t -> int64 -> (bool, Gq_error.t) result

(** Snapshot [pg] as the next generation and rotate to a fresh segment;
    returns the new generation.  Also the bootstrap path: the first
    checkpoint (e.g. serve-mode [load]) creates generation 1.  If the
    rotation fails after the snapshot file was written, the orphaned
    checkpoint is unlinked again before the error surfaces — recovery
    anchors at the newest checkpoint and skips older segments, so an
    orphan would silently drop every append acknowledged afterwards; if
    even that unlink fails, the log flips read-only. *)
val checkpoint_res : t -> Pg.t -> (int, Gq_error.t) result

(** {!checkpoint_res} when a rotation threshold is crossed; [Ok true]
    when it checkpointed. *)
val maybe_checkpoint_res : t -> Pg.t -> (bool, Gq_error.t) result

(** Force an fsync of any unsynced appends. [Ok true] when it synced. *)
val flush_res : t -> (bool, Gq_error.t) result

(** Interval-policy housekeeping: fsync when dirty and the interval has
    elapsed.  Cheap no-op otherwise; safe to call from a periodic
    sweep. *)
val tick_res : t -> (bool, Gq_error.t) result

(** Count a swallowed checkpoint failure (the server tolerates them —
    the log still holds every record — but surfaces the count). *)
val note_checkpoint_error : t -> unit

val read_only : t -> bool
val generation : t -> int
val next_lsn : t -> int64
val policy : t -> fsync_policy

type counters = {
  c_gen : int;
  c_next_lsn : int64;
  c_read_only : bool;
  c_records : int;  (** records in the current segment *)
  c_bytes : int;  (** bytes in the current segment *)
  c_appends : int;
  c_fsyncs : int;
  c_checkpoints : int;
  c_rotations : int;
  c_replayed : int;
  c_checkpoint_errors : int;
}

val counters : t -> counters

(** Flush and close the segment descriptor (best-effort). *)
val close : t -> unit

type record = {
  r_gen : int;
  r_lsn : int64;
  r_bytes : int;  (** payload bytes *)
  r_payload : string;
}

(** Every record of every segment present, in generation order, plus
    warnings (torn tails).  Corrupt mid-segment framing is an error. *)
val dump_res : string -> (record list * string list, Gq_error.t) result
