(** Supervised evaluation: budgets + retry + circuit breaking in one
    wrapper.

    This is the policy layer that [gqd --serve] (and bench E19) put
    around every query: the body runs under a fresh {!Governor.t} per
    attempt, exceptions are caught and classified, transient faults are
    retried per {!Retry.policy}, and an optional per-query-class
    {!Breaker.t} converts repeated budget exhaustions or faults into a
    fast degraded path — the body still runs, but under a small fixed
    step budget, and the reply is flagged [degraded].

    The process-survival guarantee is structural: {!run} never lets an
    exception escape.  Every outcome is either a sealed
    {!Governor.outcome} or a classified {!Gq_error.t}. *)

type 'a reply = {
  outcome : ('a Governor.outcome, Gq_error.t) result;
      (** [Ok]: the evaluation finished (possibly [Partial]); [Error]:
          it kept failing and this is the classified last error. *)
  degraded : bool;
      (** The breaker was open: [outcome] comes from the small-budget
          degraded run, not a full evaluation. *)
  attempts : int;  (** times the body ran (1 = no retry needed) *)
}

(** Counters on [obs]: [supervise.queries], [supervise.retried],
    [supervise.degraded], [supervise.failed], plus whatever the retry
    layer and breaker record.  Breaker accounting: [Complete] outcomes
    count as success; [Partial]/[Aborted] outcomes and exceptions count
    as failure; degraded runs are not reported to the breaker at all
    (the probe admitted by the half-open state is a normal run).

    - [gov]: builds the fresh governor for each full-price attempt.
    - [degraded_max_steps]: step budget of the degraded path
      (default 1000).
    - [sleep]: forwarded to {!Retry.run} (tests pass [ignore]). *)
val run :
  ?obs:Obs.t ->
  ?retry:Retry.policy ->
  ?breaker:Breaker.t ->
  ?degraded_max_steps:int ->
  ?sleep:(float -> unit) ->
  gov:(unit -> Governor.t) ->
  (Governor.t -> 'a Governor.outcome) ->
  'a reply
