type t = { size : int }

let env_size () =
  match Sys.getenv_opt "GQ_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None)

let create ?size () =
  let n =
    match size with
    | Some n -> n
    | None -> (
        match env_size () with
        | Some n -> n
        | None -> Domain.recommended_domain_count ())
  in
  { size = max 1 n }

(* 0 means "not overridden"; the default pool is rebuilt on demand so a
   CLI override taking effect after startup is still honoured. *)
let default_override = Atomic.make 0

let set_default_size n = Atomic.set default_override (max 1 n)

let default () =
  match Atomic.get default_override with
  | 0 -> create ()
  | n -> { size = n }

let size t = t.size

let fork_join ?(obs = Obs.none) t ~width body =
  let width = min t.size (max 1 width) in
  if width = 1 then body 0
  else begin
    Failpoint.check "pool.fork";
    Obs.add obs "pool.forks" (width - 1);
    let spawned =
      Array.init (width - 1) (fun i -> Domain.spawn (fun () -> body (i + 1)))
    in
    (* Run worker 0 here, then join everything before re-raising: a
       failure in one domain must not leave others unjoined. *)
    let first_exn = ref None in
    let note = function
      | None -> ()
      | Some e -> if !first_exn = None then first_exn := Some e
    in
    note (try body 0; None with e -> Some e);
    Array.iter
      (fun d -> note (try Domain.join d; None with e -> Some e))
      spawned;
    match !first_exn with None -> () | Some e -> raise e
  end

let parallel_chunks ?(obs = Obs.none) t ~n ~chunk f =
  if n > 0 then begin
    let chunk = max 1 chunk in
    let nb_chunks = (n + chunk - 1) / chunk in
    (* One "task" per chunk claimed off the shared queue: under
       contention this is also the number of successful steals of work a
       domain did not spawn with. *)
    let tasks = Obs.counter_fn obs "pool.tasks" in
    let next = Atomic.make 0 in
    let body _w =
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < nb_chunks then begin
          tasks 1;
          let lo = c * chunk in
          f lo (min n (lo + chunk));
          loop ()
        end
      in
      loop ()
    in
    fork_join ~obs t ~width:nb_chunks body
  end
