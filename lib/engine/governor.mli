(** Resource governor: budgets, deadlines, cooperative cancellation.

    Every evaluation engine in this repository explores a combinatorial
    space — product graphs, path enumerations, join assignments — that the
    paper's adversarial families (Figure 5, Sections 5-6) blow up
    exponentially.  A governor is a mutable budget shared across one
    query evaluation: engines call {!tick} on each unit of work and
    {!emit} on each produced result, and stop descending as soon as
    either returns [false].  Exhaustion is {e sticky}: once a resource
    trips, every subsequent {!tick}/{!emit} returns [false], so deep
    recursions unwind promptly and nested engine calls sharing the
    governor stop too.

    A bounded entry point returns the results computed so far wrapped by
    {!seal}: [Complete] when no resource tripped, [Partial] tagged with
    the exhausted resource otherwise, and [Aborted] on cooperative
    cancellation.

    Governors are domain-safe: counters are atomics, so one governor may
    be shared by every worker of a {!Pool}-parallel evaluation.  The
    result budget is exact under contention ({!emit} admits exactly
    [max_results] answers across all domains); the step counter may
    overshoot its cap by at most one batch per worker, which only
    affects reporting.  The Complete/Partial contract survives
    parallelism: workers observe a trip on their next {!tick}/{!emit}
    and unwind, so a [Partial] payload is still a subset of the complete
    answer. *)

(** The resource that ran out. *)
type reason = Steps | Results | Deadline | Cancelled

val reason_to_string : reason -> string

(** Outcome of a governed evaluation. *)
type 'a outcome = Complete of 'a | Partial of 'a * reason | Aborted of reason

type t

(** [make ()] builds a governor; omitted limits are infinite.

    - [obs]: telemetry sink; the moment a budget trips, the counter
      [governor.trip.<steps|results|deadline|cancelled>] is bumped
      (exactly once, CAS-guarded), so aborted runs are attributable.
    - [max_steps]: cap on {!tick} calls (fuel).
    - [max_results]: cap on results kept ({!emit} returns [false] for the
      result that would exceed it, so at most [max_results] are kept).
    - [timeout]: relative deadline in seconds, measured with [Sys.time]
      from the moment of creation and checked every few hundred ticks.
    - [cancel]: a flag that any cooperating party (signal handler,
      another thread of control) may set to [true] to abort. *)
val make :
  ?obs:Obs.t ->
  ?max_steps:int ->
  ?max_results:int ->
  ?timeout:float ->
  ?cancel:bool ref ->
  unit ->
  t

(** A governor that never trips: bounded code run under it behaves
    exactly like the unbounded original. *)
val unlimited : unit -> t

(** Count one unit of work; [false] means stop (budget exhausted,
    deadline passed, or cancelled). *)
val tick : t -> bool

(** [tick_many t k] charges [k] units at once — the same budget as [k]
    ticks with a single counter update, for hot loops that expand a
    whole adjacency span per iteration.  [false] means stop. *)
val tick_many : t -> int -> bool

(** Count one produced result; [false] means the result must be dropped
    and the search stopped. *)
val emit : t -> bool

(** [emit_many t k] admits up to [k] results in one CAS and returns the
    number admitted (0..k); the result cap stays exact and trips
    [Results] when it truncates the batch.  Unlike {!emit}, a prior
    steps/deadline trip does not zero the batch: block kernels discover
    answers before the trip stops them, and those already-computed facts
    belong in the Partial payload just like the scalar engine's answers
    emitted before its trip.  A [Results] or [Cancelled] trip admits
    nothing. *)
val emit_many : t -> int -> int

(** [true] while no resource has tripped. *)
val ok : t -> bool

(** Request cooperative cancellation (sets the cancel flag). *)
val cancel : t -> unit

val steps : t -> int
val results : t -> int

(** The first resource that tripped, if any. *)
val tripped : t -> reason option

(** Short machine-friendly name of a reason: ["steps"], ["results"],
    ["deadline"], ["cancelled"] — used in counter names and JSONL rows. *)
val reason_slug : reason -> string

(** [observe t] snapshots the governor into a sink (default: the sink
    given to {!make}): adds [governor.steps] / [governor.results] and,
    when recording into a sink other than the governor's own, the
    [governor.trip.*] reason.  Call once per governed run. *)
val observe : ?obs:Obs.t -> t -> unit

(** Wrap a finished computation: [Complete v] if nothing tripped,
    [Aborted Cancelled] on cancellation, [Partial (v, r)] otherwise. *)
val seal : t -> 'a -> 'a outcome

(** Keep a prefix of [xs] allowed by the result budget (one {!emit} per
    kept element). *)
val take_results : t -> 'a list -> 'a list

val map : ('a -> 'b) -> 'a outcome -> 'b outcome

(** The computed value; [default] for [Aborted] (which carries none). *)
val payload : default:'a -> 'a outcome -> 'a

(** The value of a [Complete] outcome.
    @raise Invalid_argument on [Partial] or [Aborted]; use only where
    completeness is guaranteed, e.g. under {!unlimited}. *)
val value : 'a outcome -> 'a

val is_complete : 'a outcome -> bool

(** ["complete"], ["partial (budget exhausted: ...)"], or
    ["aborted (...)"] — the CLI and bench report format. *)
val outcome_status : 'a outcome -> string
