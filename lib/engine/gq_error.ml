type t =
  | Parse of { what : string; msg : string }
  | Unknown_node of string
  | Eval of string
  | Io of string
  | Budget of Governor.reason
  | Fault of { site : string; attempts : int }

exception Error of t

let to_string = function
  | Parse { what; msg } -> Printf.sprintf "cannot parse %s: %s" what msg
  | Unknown_node name -> Printf.sprintf "unknown node %s" name
  | Eval msg -> msg
  | Io msg -> msg
  | Budget r ->
      Printf.sprintf "evaluation stopped: %s exhausted" (Governor.reason_to_string r)
  | Fault { site; attempts } ->
      Printf.sprintf "transient fault at %s persisted after %d attempt%s" site
        attempts
        (if attempts = 1 then "" else "s")

let exit_code = function
  | Parse _ | Unknown_node _ -> 1
  | Eval _ | Fault _ -> 2
  | Io _ -> 3
  | Budget _ -> 4

let kind = function
  | Parse _ -> "parse"
  | Unknown_node _ -> "unknown-node"
  | Eval _ -> "eval"
  | Io _ -> "io"
  | Budget _ -> "budget"
  | Fault _ -> "fault"

let classify = function
  | Fault _ -> Retry.Transient
  | Parse _ | Unknown_node _ | Eval _ | Io _ | Budget _ -> Retry.Permanent

let classify_exn = function
  | Failpoint.Injected _ -> Retry.Transient
  | Out_of_memory -> Retry.Transient
  | Error e -> classify e
  | _ -> Retry.Permanent

let of_exn ?(attempts = 1) = function
  | Error e -> e
  | Failpoint.Injected site -> Fault { site; attempts }
  | Out_of_memory -> Eval "out of memory"
  | Stack_overflow -> Eval "stack overflow"
  | e -> Eval (Printexc.to_string e)
