type t =
  | Parse of { what : string; msg : string }
  | Unknown_node of string
  | Eval of string
  | Io of string
  | Budget of Governor.reason

let to_string = function
  | Parse { what; msg } -> Printf.sprintf "cannot parse %s: %s" what msg
  | Unknown_node name -> Printf.sprintf "unknown node %s" name
  | Eval msg -> msg
  | Io msg -> msg
  | Budget r ->
      Printf.sprintf "evaluation stopped: %s exhausted" (Governor.reason_to_string r)

let exit_code = function
  | Parse _ | Unknown_node _ -> 1
  | Eval _ -> 2
  | Io _ -> 3
  | Budget _ -> 4
