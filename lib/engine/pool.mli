(** A fixed-width domain pool for multi-source query evaluation.

    OCaml 5 stdlib only ([Domain] + [Atomic]).  A pool is a width
    descriptor: parallel regions fork at most [size] domains (including
    the calling one), run a body to completion in each, and join every
    spawned domain before returning — structured fork/join, so no domain
    ever outlives the call that created it and [dune runtest] never leaks
    workers.

    Sizing: an explicit [?size] wins; otherwise the [GQ_DOMAINS]
    environment variable; otherwise {!Domain.recommended_domain_count}.
    The CLI plumbs [--domains] through {!set_default_size}.  A pool of
    size 1 runs every body inline — callers need no separate serial
    path. *)

type t

(** [create ()] reads [GQ_DOMAINS], falling back to
    [Domain.recommended_domain_count ()].  [size] overrides both and is
    clamped to at least 1. *)
val create : ?size:int -> unit -> t

(** The process-wide default pool (see {!set_default_size}). *)
val default : unit -> t

(** Override the width of {!default} (CLI [--domains]); clamped to >= 1. *)
val set_default_size : int -> unit

val size : t -> int

(** [fork_join pool ~width body] runs [body w] for [w = 0 ..
    min width (size pool) - 1], each in its own domain (worker 0 in the
    calling domain).  Returns when all bodies have; if any raised, one of
    the exceptions is re-raised after every domain is joined.

    [obs] counts spawned domains under [pool.forks]. *)
val fork_join : ?obs:Obs.t -> t -> width:int -> (int -> unit) -> unit

(** [parallel_chunks pool ~n ~chunk f] partitions [0 .. n-1] into blocks
    of at most [chunk] indices and calls [f lo hi] (half-open) for each,
    dynamically load-balanced across the pool.  [f] must be safe to run
    concurrently with itself.

    [obs] counts claimed chunks under [pool.tasks] (and forks as in
    {!fork_join}). *)
val parallel_chunks :
  ?obs:Obs.t -> t -> n:int -> chunk:int -> (int -> int -> unit) -> unit
