type reason = Steps | Results | Deadline | Cancelled

let reason_to_string = function
  | Steps -> "step budget"
  | Results -> "result cap"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

type 'a outcome = Complete of 'a | Partial of 'a * reason | Aborted of reason

(* Counters are atomics so one governor can be shared by every domain of
   a parallel evaluation (Pool): workers race on [tick]/[emit], the first
   trip wins via compare-and-set, and stickiness is a plain atomic read,
   so all workers observe exhaustion promptly.  Step counting tolerates a
   small overshoot under contention (fetch-and-add, then compare); the
   result budget is exact (CAS loop), because [emit] decides whether a
   specific answer is kept. *)
type t = {
  max_steps : int;
  max_results : int;
  deadline : float option; (* absolute, in Sys.time seconds *)
  cancel_flag : bool ref;
  steps : int Atomic.t;
  results : int Atomic.t;
  tripped : reason option Atomic.t;
  (* No budget, no deadline, no external cancel ref: [tick]/[emit] skip
     the counter updates entirely, so an unlimited governor shared by
     many domains costs one atomic read per call and never contends. *)
  limitless : bool;
  obs : Obs.t;
}

(* Deadline checks call [Sys.time]; amortize them over this many ticks. *)
let deadline_mask = 255

let reason_slug = function
  | Steps -> "steps"
  | Results -> "results"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

let make ?(obs = Obs.none) ?(max_steps = max_int) ?(max_results = max_int)
    ?timeout ?cancel () =
  {
    max_steps;
    max_results;
    deadline = Option.map (fun dt -> Sys.time () +. dt) timeout;
    cancel_flag = (match cancel with Some f -> f | None -> ref false);
    steps = Atomic.make 0;
    results = Atomic.make 0;
    tripped = Atomic.make None;
    limitless =
      max_steps = max_int && max_results = max_int && timeout = None
      && cancel = None;
    obs;
  }

let unlimited () = make ()

let trip t r =
  if Atomic.compare_and_set t.tripped None (Some r) then
    Obs.incr t.obs ("governor.trip." ^ reason_slug r);
  false

let deadline_passed t =
  match t.deadline with Some d -> Sys.time () > d | None -> false

(* Charge [k] units of work at once (a full adjacency span, say): the
   same budget as [k] ticks with one atomic update.  Trips at the first
   boundary crossed; the steps counter may overshoot the cap by the
   batch size, which only affects reporting. *)
let tick_many t k =
  match Atomic.get t.tripped with
  | Some _ -> false
  | None ->
      if t.limitless then true
      else if k <= 0 then true
      else begin
        let s = Atomic.fetch_and_add t.steps k + k in
        if !(t.cancel_flag) then trip t Cancelled
        else if s > t.max_steps then trip t Steps
        else if
          (* Crossed a multiple of [deadline_mask + 1] within the batch? *)
          s land lnot deadline_mask <> (s - k) land lnot deadline_mask
          && deadline_passed t
        then trip t Deadline
        else true
      end

let tick t = tick_many t 1

let rec emit t =
  match Atomic.get t.tripped with
  | Some _ -> false
  | None ->
      if t.limitless then true
      else begin
        let r = Atomic.get t.results in
        if r >= t.max_results then trip t Results
        else if Atomic.compare_and_set t.results r (r + 1) then true
        else emit t
      end

(* Bulk admission for the bitset kernel, which discovers a whole block's
   answers before it gets a chance to emit them.  Admits up to [k]
   results against the result cap in one CAS and returns the number
   admitted.  Unlike [emit], a prior *non-result* trip (steps, deadline)
   does not zero the batch: those answers were computed before the trip,
   exactly like the scalar engine's answers emitted before its trip, and
   dropping them would make Partial payloads gratuitously empty.  The
   result cap itself stays exact, and a [Results]/[Cancelled] trip still
   admits nothing. *)
let rec emit_many t k =
  if k <= 0 then 0
  else if t.limitless then k
  else
    match Atomic.get t.tripped with
    | Some (Results | Cancelled) -> 0
    | Some (Steps | Deadline) | None ->
        let r = Atomic.get t.results in
        if r >= t.max_results then begin
          ignore (trip t Results);
          0
        end
        else
          let adm = min k (t.max_results - r) in
          if Atomic.compare_and_set t.results r (r + adm) then begin
            if adm < k then ignore (trip t Results);
            adm
          end
          else emit_many t k

let ok t = Atomic.get t.tripped = None

let cancel t =
  t.cancel_flag := true;
  ignore (Atomic.compare_and_set t.tripped None (Some Cancelled))

let steps t = Atomic.get t.steps
let results t = Atomic.get t.results
let tripped t = Atomic.get t.tripped

(* Ticks are counted on the governor's own atomics (shared with the
   budget logic), not duplicated into the sink per call; a snapshot at
   the end of an evaluation transfers them.  Call once per governed
   run — the counters are cumulative adds.  The trip reason was already
   recorded at trip time when the sink is the governor's own, so it is
   only re-recorded into a different sink. *)
let observe ?obs t =
  let sink = match obs with Some o -> o | None -> t.obs in
  Obs.add sink "governor.steps" (Atomic.get t.steps);
  Obs.add sink "governor.results" (Atomic.get t.results);
  match Atomic.get t.tripped with
  | Some r when not (sink == t.obs) ->
      Obs.incr sink ("governor.trip." ^ reason_slug r)
  | Some _ | None -> ()

let seal t v =
  match Atomic.get t.tripped with
  | None -> Complete v
  | Some Cancelled -> Aborted Cancelled
  | Some r -> Partial (v, r)

let take_results t xs =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest -> if emit t then go (x :: acc) rest else List.rev acc
  in
  go [] xs

let map f = function
  | Complete v -> Complete (f v)
  | Partial (v, r) -> Partial (f v, r)
  | Aborted r -> Aborted r

let payload ~default = function
  | Complete v | Partial (v, _) -> v
  | Aborted _ -> default

let value = function
  | Complete v -> v
  | Partial (_, r) | Aborted r ->
      invalid_arg
        ("Governor.value: evaluation was cut short by " ^ reason_to_string r)

let is_complete = function Complete _ -> true | Partial _ | Aborted _ -> false

let outcome_status = function
  | Complete _ -> "complete"
  | Partial (_, r) ->
      Printf.sprintf "partial (budget exhausted: %s)" (reason_to_string r)
  | Aborted r -> Printf.sprintf "aborted (%s)" (reason_to_string r)
