type reason = Steps | Results | Deadline | Cancelled

let reason_to_string = function
  | Steps -> "step budget"
  | Results -> "result cap"
  | Deadline -> "deadline"
  | Cancelled -> "cancelled"

type 'a outcome = Complete of 'a | Partial of 'a * reason | Aborted of reason

type t = {
  max_steps : int;
  max_results : int;
  deadline : float option; (* absolute, in Sys.time seconds *)
  cancel_flag : bool ref;
  mutable steps : int;
  mutable results : int;
  mutable tripped : reason option;
}

(* Deadline checks call [Sys.time]; amortize them over this many ticks. *)
let deadline_mask = 255

let make ?(max_steps = max_int) ?(max_results = max_int) ?timeout ?cancel () =
  {
    max_steps;
    max_results;
    deadline = Option.map (fun dt -> Sys.time () +. dt) timeout;
    cancel_flag = (match cancel with Some f -> f | None -> ref false);
    steps = 0;
    results = 0;
    tripped = None;
  }

let unlimited () = make ()

let trip t r =
  if t.tripped = None then t.tripped <- Some r;
  false

let tick t =
  match t.tripped with
  | Some _ -> false
  | None ->
      t.steps <- t.steps + 1;
      if !(t.cancel_flag) then trip t Cancelled
      else if t.steps > t.max_steps then trip t Steps
      else if
        t.steps land deadline_mask = 0
        && match t.deadline with Some d -> Sys.time () > d | None -> false
      then trip t Deadline
      else true

let emit t =
  match t.tripped with
  | Some _ -> false
  | None ->
      if t.results >= t.max_results then trip t Results
      else begin
        t.results <- t.results + 1;
        true
      end

let ok t = t.tripped = None

let cancel t =
  t.cancel_flag := true;
  if t.tripped = None then t.tripped <- Some Cancelled

let steps t = t.steps
let results t = t.results
let tripped t = t.tripped

let seal t v =
  match t.tripped with
  | None -> Complete v
  | Some Cancelled -> Aborted Cancelled
  | Some r -> Partial (v, r)

let take_results t xs =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: rest -> if emit t then go (x :: acc) rest else List.rev acc
  in
  go [] xs

let map f = function
  | Complete v -> Complete (f v)
  | Partial (v, r) -> Partial (f v, r)
  | Aborted r -> Aborted r

let payload ~default = function
  | Complete v | Partial (v, _) -> v
  | Aborted _ -> default

let value = function
  | Complete v -> v
  | Partial (_, r) | Aborted r ->
      invalid_arg
        ("Governor.value: evaluation was cut short by " ^ reason_to_string r)

let is_complete = function Complete _ -> true | Partial _ | Aborted _ -> false

let outcome_status = function
  | Complete _ -> "complete"
  | Partial (_, r) ->
      Printf.sprintf "partial (budget exhausted: %s)" (reason_to_string r)
  | Aborted r -> Printf.sprintf "aborted (%s)" (reason_to_string r)
