(* In serve mode, budgets alone cannot stop a runaway query: a client
   may simply not set one, and the CPU-time deadline of [Governor] is
   process-wide, so it is meaningless once several clients share the
   process.  The watchdog is the wall-clock backstop: every supervised
   evaluation registers its governor with an absolute deadline, and the
   server's I/O loop periodically calls [sweep], which cancels every
   governor past its deadline.  Cancellation is cooperative and
   promptly visible across domains ([Governor.cancel] CASes the atomic
   trip flag that every [tick]/[emit] reads first), so the runaway
   evaluation unwinds and answers [Aborted Cancelled] instead of
   occupying a worker forever.

   The module is clock-agnostic — callers pass [now] (the server uses
   [Unix.gettimeofday]) — so lib/engine stays free of a unix dependency
   and tests can drive time by hand. *)

type entry = {
  gov : Governor.t;
  deadline : float;
  mutable cancelled : bool; (* protected by [lock]; counts first cancel only *)
}

type token = int

let lock = Mutex.create ()
let entries : (token, entry) Hashtbl.t = Hashtbl.create 16
let next = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register ~deadline gov =
  locked (fun () ->
      incr next;
      let tok = !next in
      Hashtbl.replace entries tok { gov; deadline; cancelled = false };
      tok)

let unregister tok = locked (fun () -> Hashtbl.remove entries tok)
let watching () = locked (fun () -> Hashtbl.length entries)

(* Cancel every registered governor whose deadline has passed; return
   how many were newly cancelled by this sweep.  Entries stay registered
   until their owner unregisters (the evaluation is still unwinding);
   [cancelled] keeps repeated sweeps from recounting them. *)
let sweep ~now =
  locked (fun () ->
      Hashtbl.fold
        (fun _ e n ->
          if (not e.cancelled) && e.deadline <= now then begin
            e.cancelled <- true;
            Governor.cancel e.gov;
            n + 1
          end
          else n)
        entries 0)
