(** One error type for the whole query pipeline.

    The parsers and evaluators historically each raised their own
    exception ([Graph_io.Parse_error], [Rpq_parse.Parse_error],
    [Gql_parse.Parse_error], [Gql_query.Parse_error/Eval_error], ...).
    Result-returning [*_res] entry points in those modules translate into
    this shared type so front ends (gqd, services) report through a
    single path and map errors to stable exit codes. *)

type t =
  | Parse of { what : string; msg : string }
      (** Malformed input; [what] names the language ("graph", "rpq",
          "pattern", "query"). *)
  | Unknown_node of string  (** A node name not present in the graph. *)
  | Eval of string  (** Semantic error during evaluation. *)
  | Io of string  (** File-system problem. *)
  | Budget of Governor.reason
      (** Evaluation cut short by the resource governor. *)

val to_string : t -> string

(** Stable exit code per error class: parse/unknown-node errors 1, eval
    errors 2, I/O errors 3, exhausted budgets 4. *)
val exit_code : t -> int
