(** One error type for the whole query pipeline.

    The parsers and evaluators historically each raised their own
    exception ([Graph_io.Parse_error], [Rpq_parse.Parse_error],
    [Gql_parse.Parse_error], [Gql_query.Parse_error/Eval_error], ...).
    Result-returning [*_res] entry points in those modules translate into
    this shared type so front ends (gqd, services) report through a
    single path and map errors to stable exit codes. *)

type t =
  | Parse of { what : string; msg : string }
      (** Malformed input; [what] names the language ("graph", "rpq",
          "pattern", "query"). *)
  | Unknown_node of string  (** A node name not present in the graph. *)
  | Eval of string  (** Semantic error during evaluation. *)
  | Io of string  (** File-system problem. *)
  | Budget of Governor.reason
      (** Evaluation cut short by the resource governor. *)
  | Fault of { site : string; attempts : int }
      (** A transient fault (injected or real) that survived [attempts]
          evaluation attempts — the retry layer gave up. *)

(** [t] as an exception, for code that must funnel a structured error
    through an exception boundary (e.g. a supervised evaluation body). *)
exception Error of t

val to_string : t -> string

(** Stable exit code per error class: parse/unknown-node errors 1, eval
    errors and exhausted faults 2, I/O errors 3, exhausted budgets 4. *)
val exit_code : t -> int

(** Machine-friendly slug of the error class, used in serve-mode JSON
    replies: ["parse"], ["unknown-node"], ["eval"], ["io"], ["budget"],
    ["fault"]. *)
val kind : t -> string

(** Whether retrying the same operation could plausibly succeed.
    Only {!Fault} is transient: every other class is deterministic in
    the input and budget. *)
val classify : t -> Retry.error_class

(** Classify an arbitrary exception for a retry layer:
    [Failpoint.Injected] and [Out_of_memory] are transient, [Error e]
    defers to {!classify}, anything else is permanent. *)
val classify_exn : exn -> Retry.error_class

(** Render an exception as a [t]: [Error e] unwraps, [Injected site]
    becomes [Fault] (with [attempts], the evaluation attempts made),
    [Out_of_memory]/[Stack_overflow] become [Eval], and any other
    exception becomes [Eval (Printexc.to_string _)]. *)
val of_exn : ?attempts:int -> exn -> t
