(** Wall-clock watchdog for in-flight governed evaluations.

    The per-query budgets of {!Governor} are cooperative and counted in
    work units or process CPU time; in a multi-client server neither
    bounds wall time once domains run concurrently.  The watchdog closes
    that gap: each supervised evaluation {!register}s its governor with
    an absolute wall-clock deadline, and a periodic {!sweep} (driven by
    the server's I/O loop) {!Governor.cancel}s every governor past its
    deadline, so the evaluation unwinds promptly with
    [Aborted Cancelled].

    The registry is process-global and mutex-protected; registration
    and sweeping may happen from different domains.  The module never
    reads a clock itself — callers pass [now] — so it stays
    dependency-free and deterministic under test. *)

type token

(** Register a governor to be cancelled once [deadline] (absolute,
    caller's clock) has passed.  Pair with {!unregister} in a
    [Fun.protect] finally. *)
val register : deadline:float -> Governor.t -> token

(** Remove a registration (idempotent). *)
val unregister : token -> unit

(** Number of currently registered evaluations. *)
val watching : unit -> int

(** Cancel every registered governor whose deadline is [<= now]; returns
    how many were newly cancelled.  Sweeping an already-cancelled entry
    again is a no-op, so callers may sweep at any frequency. *)
val sweep : now:float -> int
