type 'a reply = {
  outcome : ('a Governor.outcome, Gq_error.t) result;
  degraded : bool;
  attempts : int;
}

let run ?(obs = Obs.none) ?(retry = Retry.default) ?breaker
    ?(degraded_max_steps = 1000) ?sleep ~gov body =
  Obs.incr obs "supervise.queries";
  let admission =
    match breaker with None -> `Proceed | Some b -> Breaker.acquire b
  in
  match admission with
  | `Reject ->
      (* Breaker open: still answer, but under a budget small enough that
         even the query class that tripped it returns promptly. *)
      Obs.incr obs "supervise.degraded";
      let g = Governor.make ~obs ~max_steps:degraded_max_steps () in
      let outcome =
        match body g with
        | o -> Ok o
        | exception e -> Error (Gq_error.of_exn e)
      in
      { outcome; degraded = true; attempts = 1 }
  | `Proceed | `Probe ->
      let attempts = ref 0 in
      let result =
        Retry.run ~obs ~policy:retry ?sleep
          ~on_retry:(function Out_of_memory -> Gc.compact () | _ -> ())
          ~classify:Gq_error.classify_exn
          (fun () ->
            incr attempts;
            body (gov ()))
      in
      if !attempts > 1 then Obs.incr obs "supervise.retried";
      let report f = match breaker with Some b -> f b | None -> () in
      (match result with
      | Ok o when Governor.is_complete o -> report Breaker.success
      | Ok _ | Error _ -> report Breaker.failure);
      (match result with
      | Ok o -> { outcome = Ok o; degraded = false; attempts = !attempts }
      | Error e ->
          Obs.incr obs "supervise.failed";
          {
            outcome = Error (Gq_error.of_exn ~attempts:!attempts e);
            degraded = false;
            attempts = !attempts;
          })
