(** Path modes (Sections 3.1.5 and 6.3).

    GQL and SQL/PGQ restrict matched paths to keep outputs finite; the
    paper's l-CRPQs use the four modes below.  [All] is only finite on
    acyclic product graphs, so its enumeration takes an explicit length
    bound.  Finding a simple path or trail matching an RPQ is NP-complete
    in general (Section 6.3), and the implementations here are indeed
    worst-case exponential searches over the product graph — experiment E5
    measures exactly this contrast. *)

type mode = Shortest | Simple | Trail | All

val mode_to_string : mode -> string

(** Every search below also has a [*_bounded] form taking a
    {!Governor.t}: one step is charged per product-edge extension, one
    result per emitted path, and exhaustion returns the paths found so
    far as a [Partial] outcome — these NP-hard searches are the paper's
    canonical blow-up (experiment E5), so the governor is what makes
    them safe to expose. *)

(** [enumerate g r ~mode ~max_len ~src ~tgt] lists matching node-to-node
    paths from [src] to [tgt] under [mode].  [max_len] bounds [All] (and
    acts as a safety bound for the others; simple paths and trails are
    intrinsically bounded by the graph size). *)
val enumerate :
  Elg.t ->
  Sym.t Regex.t ->
  mode:mode ->
  max_len:int ->
  src:int ->
  tgt:int ->
  Path.t list

(** [?obs] (on the bounded forms) records [paths.expansions]
    (product-edge extensions tried by the search) and [paths.emitted],
    inside a [paths.eval] span. *)
val enumerate_bounded :
  ?obs:Obs.t ->
  Governor.t ->
  Elg.t ->
  Sym.t Regex.t ->
  mode:mode ->
  max_len:int ->
  src:int ->
  tgt:int ->
  Path.t list Governor.outcome

(** All shortest matching paths (the full geodesic set, not just one
    witness). *)
val shortest : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> Path.t list

val shortest_bounded :
  ?obs:Obs.t ->
  Governor.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int ->
  Path.t list Governor.outcome

(** Matching paths in length order, lazily: the enumeration-algorithms
    view of Section 6.4.  Stops after [max_len] (paths can repeat states,
    so the sequence may otherwise be infinite). *)
val in_length_order :
  Elg.t -> Sym.t Regex.t -> max_len:int -> src:int -> tgt:int -> Path.t Seq.t

(** The [k] shortest matching paths (ties beyond [k] are cut in
    deterministic order) — the Eppstein-style primitive Section 7.1 points
    to for future evaluation algorithms.  Exact but worst-case exponential
    (it enumerates level by level); [max_len] caps the search. *)
val k_shortest :
  Elg.t -> Sym.t Regex.t -> k:int -> max_len:int -> src:int -> tgt:int ->
  Path.t list

(** [count ~mode] without materializing the paths. *)
val count :
  Elg.t ->
  Sym.t Regex.t ->
  mode:mode ->
  max_len:int ->
  src:int ->
  tgt:int ->
  Nat_big.t

val count_bounded :
  ?obs:Obs.t ->
  Governor.t ->
  Elg.t ->
  Sym.t Regex.t ->
  mode:mode ->
  max_len:int ->
  src:int ->
  tgt:int ->
  Nat_big.t Governor.outcome

(** Does {e some} simple path (resp. trail) from [src] to [tgt] match?
    The NP-complete decision problems of Section 6.3. *)
val exists_simple : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> bool

val exists_trail : Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> bool

val exists_simple_bounded :
  Governor.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int ->
  bool Governor.outcome

val exists_trail_bounded :
  Governor.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int ->
  bool Governor.outcome
