type mode = Shortest | Simple | Trail | All

let mode_to_string = function
  | Shortest -> "shortest"
  | Simple -> "simple"
  | Trail -> "trail"
  | All -> "all"

(* A deterministic (hence unambiguous) automaton guarantees one run per
   path, so searches below never emit duplicates. *)
let det_nfa r = Dfa.to_nfa (Dfa.minimize (Dfa.of_nfa (Nfa.of_regex r)))

let det_product ?obs g r = Product.make ?obs g (det_nfa r)

(* Generic bounded DFS over the product graph.  [node_once]/[edge_once]
   enforce simple-path/trail restrictions on the graph projection.
   [emit] receives completed paths; returning [false] stops the search.
   The governor is charged one step per product-edge extension; these
   searches are worst-case exponential (experiment E5), so this is the
   choke point that keeps hostile instances from hanging. *)
let dfs ?(obs = Obs.none) gov product ~src ~tgt ~max_len ~node_once
    ~edge_once ~emit =
  let expansions = Obs.counter_fn obs "paths.expansions" in
  let expanded = ref 0 in
  let g = Product.graph product in
  let visited_nodes = Array.make (Elg.nb_nodes g) false in
  let visited_edges = Array.make (max 1 (Elg.nb_edges g)) false in
  let stop = ref false in
  let rec go state rev_objs len =
    if not !stop then begin
      let v, _ = Product.decode product state in
      if v = tgt && Product.is_final product state then
        if not (emit (List.rev rev_objs)) then stop := true;
      if (not !stop) && len < max_len then
        Product.iter_out product state (fun e state' ->
            let w = Elg.tgt g e in
            let node_ok = (not node_once) || not visited_nodes.(w) in
            let edge_ok = (not edge_once) || not visited_edges.(e) in
            if node_ok && edge_ok && Governor.tick gov then begin
              incr expanded;
              if node_once then visited_nodes.(w) <- true;
              if edge_once then visited_edges.(e) <- true;
              go state' (Path.N w :: Path.E e :: rev_objs) (len + 1);
              if node_once then visited_nodes.(w) <- false;
              if edge_once then visited_edges.(e) <- false
            end)
    end
  in
  visited_nodes.(src) <- true;
  List.iter
    (fun state -> if not !stop then go state [ Path.N src ] 0)
    (Product.initials_at product src);
  expansions !expanded

(* Geodesic DFS: follow only product edges on shortest-path layers. *)
let shortest_search ?(obs = Obs.none) gov product ~src ~tgt ~emit =
  let expansions = Obs.counter_fn obs "paths.expansions" in
  let expanded = ref 0 in
  let g = Product.graph product in
  let n = Product.nb_states product in
  let dist = Array.make (max 1 n) (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    (Product.initials_at product src);
  while not (Queue.is_empty queue) && Governor.ok gov do
    let s = Queue.pop queue in
    Product.iter_out product s (fun _ s' ->
        if Governor.tick gov then begin
          incr expanded;
          if dist.(s') < 0 then begin
            dist.(s') <- dist.(s) + 1;
            Queue.add s' queue
          end
        end)
  done;
  let best = ref max_int in
  for s = 0 to n - 1 do
    let v, _ = Product.decode product s in
    if v = tgt && Product.is_final product s && dist.(s) >= 0 then
      best := min !best dist.(s)
  done;
  if !best < max_int then begin
    let d = !best in
    let rec go state rev_objs len =
      let v, _ = Product.decode product state in
      if len = d then begin
        if v = tgt && Product.is_final product state then
          ignore (emit (List.rev rev_objs))
      end
      else
        Product.iter_out product state (fun e state' ->
            if
              dist.(state') = len + 1 && dist.(state') <= d
              && Governor.tick gov
            then begin
              incr expanded;
              go state' (Path.N (Elg.tgt g e) :: Path.E e :: rev_objs) (len + 1)
            end)
    in
    List.iter
      (fun s -> if dist.(s) = 0 && Governor.ok gov then go s [ Path.N src ] 0)
      (Product.initials_at product src)
  end;
  expansions !expanded

let shortest_gov ?(obs = Obs.none) gov g r ~src ~tgt =
  Obs.span obs "paths.eval" @@ fun () ->
  let product = det_product ~obs g r in
  let acc = ref [] in
  let emitted = ref 0 in
  shortest_search ~obs gov product ~src ~tgt ~emit:(fun objs ->
      if Governor.emit gov then begin
        incr emitted;
        acc := Path.of_objs_exn g objs :: !acc
      end;
      Governor.ok gov);
  Obs.add obs "paths.emitted" !emitted;
  List.rev !acc

let shortest_bounded ?obs gov g r ~src ~tgt =
  Governor.seal gov (shortest_gov ?obs gov g r ~src ~tgt)

let shortest g r ~src ~tgt =
  Governor.value (shortest_bounded (Governor.unlimited ()) g r ~src ~tgt)

let enumerate_gov ?(obs = Obs.none) gov g r ~mode ~max_len ~src ~tgt =
  match mode with
  | Shortest -> shortest_gov ~obs gov g r ~src ~tgt
  | Simple | Trail | All ->
      Obs.span obs "paths.eval" @@ fun () ->
      let product = det_product ~obs g r in
      let node_once = mode = Simple and edge_once = mode = Trail in
      let bound =
        match mode with
        | Simple -> min max_len (Elg.nb_nodes g - 1)
        | Trail -> min max_len (Elg.nb_edges g)
        | Shortest | All -> max_len
      in
      let acc = ref [] in
      let emitted = ref 0 in
      dfs ~obs gov product ~src ~tgt ~max_len:bound ~node_once ~edge_once
        ~emit:(fun objs ->
          if Governor.emit gov then begin
            incr emitted;
            acc := Path.of_objs_exn g objs :: !acc
          end;
          Governor.ok gov);
      Obs.add obs "paths.emitted" !emitted;
      List.rev !acc

let enumerate_bounded ?obs gov g r ~mode ~max_len ~src ~tgt =
  Governor.seal gov (enumerate_gov ?obs gov g r ~mode ~max_len ~src ~tgt)

let enumerate g r ~mode ~max_len ~src ~tgt =
  Governor.value
    (enumerate_bounded (Governor.unlimited ()) g r ~mode ~max_len ~src ~tgt)

let in_length_order g r ~max_len ~src ~tgt =
  let product = det_product g r in
  let graph = Product.graph product in
  (* Level-synchronous frontier; lazily expanded as the Seq is consumed. *)
  let initial_frontier =
    List.map (fun s -> (s, [ Path.N src ])) (Product.initials_at product src)
  in
  let accepting_paths frontier =
    List.filter_map
      (fun (s, rev_objs) ->
        let v, _ = Product.decode product s in
        if v = tgt && Product.is_final product s then
          Some (Path.of_objs_exn graph (List.rev rev_objs))
        else None)
      frontier
  in
  let expand frontier =
    List.concat_map
      (fun (s, rev_objs) ->
        List.map
          (fun (e, s') ->
            (s', Path.N (Elg.tgt graph e) :: Path.E e :: rev_objs))
          (Product.out product s))
      frontier
  in
  let rec levels frontier len () =
    if len > max_len || frontier = [] then Seq.Nil
    else
      let here = accepting_paths frontier in
      let rest = levels (expand frontier) (len + 1) in
      List.fold_right (fun p tail -> fun () -> Seq.Cons (p, tail)) here rest ()
  in
  levels initial_frontier 0

let k_shortest g r ~k ~max_len ~src ~tgt =
  in_length_order g r ~max_len ~src ~tgt |> Seq.take k |> List.of_seq

let count_gov ?(obs = Obs.none) gov g r ~mode ~max_len ~src ~tgt =
  match mode with
  | All -> Rpq_count.count_paths_upto ~obs g r ~src ~tgt ~max_len
  | Shortest ->
      let product = det_product ~obs g r in
      let n = ref Nat_big.zero in
      shortest_search ~obs gov product ~src ~tgt ~emit:(fun _ ->
          n := Nat_big.succ !n;
          Governor.ok gov);
      !n
  | Simple | Trail ->
      let product = det_product ~obs g r in
      let bound =
        if mode = Simple then min max_len (Elg.nb_nodes g - 1)
        else min max_len (Elg.nb_edges g)
      in
      let n = ref Nat_big.zero in
      dfs ~obs gov product ~src ~tgt ~max_len:bound ~node_once:(mode = Simple)
        ~edge_once:(mode = Trail) ~emit:(fun _ ->
          n := Nat_big.succ !n;
          Governor.ok gov);
      !n

let count_bounded ?obs gov g r ~mode ~max_len ~src ~tgt =
  Governor.seal gov (count_gov ?obs gov g r ~mode ~max_len ~src ~tgt)

let count g r ~mode ~max_len ~src ~tgt =
  Governor.value
    (count_bounded (Governor.unlimited ()) g r ~mode ~max_len ~src ~tgt)

let exists_with gov g r ~src ~tgt ~node_once ~edge_once ~max_len =
  let product = det_product g r in
  let found = ref false in
  dfs gov product ~src ~tgt ~max_len ~node_once ~edge_once ~emit:(fun _ ->
      found := true;
      false);
  !found

let exists_simple_bounded gov g r ~src ~tgt =
  let found =
    exists_with gov g r ~src ~tgt ~node_once:true ~edge_once:false
      ~max_len:(Elg.nb_nodes g - 1)
  in
  Governor.seal gov found

let exists_simple g r ~src ~tgt =
  Governor.value (exists_simple_bounded (Governor.unlimited ()) g r ~src ~tgt)

let exists_trail_bounded gov g r ~src ~tgt =
  let found =
    exists_with gov g r ~src ~tgt ~node_once:false ~edge_once:true
      ~max_len:(Elg.nb_edges g)
  in
  Governor.seal gov found

let exists_trail g r ~src ~tgt =
  Governor.value (exists_trail_bounded (Governor.unlimited ()) g r ~src ~tgt)
