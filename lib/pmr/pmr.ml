type t = {
  nb_nodes : int;
  gamma_node : int array;
  edges : (int * int * int) array;
  sources : int list;
  targets : int list;
}

let size pmr = pmr.nb_nodes + Array.length pmr.edges

let check g pmr =
  let node_ok n = n >= 0 && n < pmr.nb_nodes in
  Array.for_all (fun gn -> gn >= 0 && gn < Elg.nb_nodes g) pmr.gamma_node
  && Array.for_all
       (fun (s, t, ge) ->
         node_ok s && node_ok t && ge >= 0
         && ge < Elg.nb_edges g
         && Elg.src g ge = pmr.gamma_node.(s)
         && Elg.tgt g ge = pmr.gamma_node.(t))
       pmr.edges
  && List.for_all node_ok pmr.sources
  && List.for_all node_ok pmr.targets

let out_adj pmr =
  let adj = Array.make (max 1 pmr.nb_nodes) [] in
  Array.iter (fun (s, t, ge) -> adj.(s) <- (t, ge) :: adj.(s)) pmr.edges;
  Array.map List.rev adj

(* --- Construction from RPQs -------------------------------------------- *)

let det_nfa r = Dfa.to_nfa (Dfa.minimize (Dfa.of_nfa (Nfa.of_regex r)))

(* Useful product states and the trimmed PMR they induce. *)
let of_product ?(obs = Obs.none) product ~src ~tgt ~keep_edge =
  Obs.span obs "pmr.build" @@ fun () ->
  let n = Product.nb_states product in
  let forward = Array.make (max 1 n) false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      forward.(s) <- true;
      Queue.add s queue)
    (Product.initials_at product src);
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Product.iter_out product s (fun e s' ->
        if keep_edge s e s' && not forward.(s') then begin
          forward.(s') <- true;
          Queue.add s' queue
        end)
  done;
  (* Backward pass from accepting states at tgt. *)
  let rev = Array.make (max 1 n) [] in
  for s = 0 to n - 1 do
    if forward.(s) then
      Product.iter_out product s (fun e s' ->
          if keep_edge s e s' && forward.(s') then rev.(s') <- s :: rev.(s'))
  done;
  let backward = Array.make (max 1 n) false in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    let v, _ = Product.decode product s in
    if forward.(s) && v = tgt && Product.is_final product s then begin
      backward.(s) <- true;
      Queue.add s queue
    end
  done;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter
      (fun s' ->
        if not backward.(s') then begin
          backward.(s') <- true;
          Queue.add s' queue
        end)
      rev.(s)
  done;
  let useful s = forward.(s) && backward.(s) in
  let renum = Array.make (max 1 n) (-1) in
  let count = ref 0 in
  for s = 0 to n - 1 do
    if useful s then begin
      renum.(s) <- !count;
      incr count
    end
  done;
  let gamma_node = Array.make (max 1 !count) 0 in
  let edges = ref [] in
  for s = n - 1 downto 0 do
    if useful s then begin
      let v, _ = Product.decode product s in
      gamma_node.(renum.(s)) <- v;
      Product.iter_out product s (fun e s' ->
          if keep_edge s e s' && useful s' then
            edges := (renum.(s), renum.(s'), e) :: !edges)
    end
  done;
  let sources =
    List.filter_map
      (fun s -> if useful s then Some renum.(s) else None)
      (Product.initials_at product src)
  in
  let targets = ref [] in
  for s = n - 1 downto 0 do
    let v, _ = Product.decode product s in
    if useful s && v = tgt && Product.is_final product s then
      targets := renum.(s) :: !targets
  done;
  let edges = Array.of_list !edges in
  Obs.add obs "pmr.nodes" !count;
  Obs.add obs "pmr.edges" (Array.length edges);
  { nb_nodes = !count; gamma_node; edges; sources; targets = !targets }

let of_rpq ?obs g r ~src ~tgt =
  let product = Product.make ?obs g (det_nfa r) in
  of_product ?obs product ~src ~tgt ~keep_edge:(fun _ _ _ -> true)

let of_nfa ?obs g nfa ~src ~tgt =
  let product = Product.make ?obs g nfa in
  of_product ?obs product ~src ~tgt ~keep_edge:(fun _ _ _ -> true)

let of_rpq_shortest ?obs g r ~src ~tgt =
  let product = Product.make ?obs g (det_nfa r) in
  let n = Product.nb_states product in
  let dist = Array.make (max 1 n) (-1) in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        Queue.add s queue
      end)
    (Product.initials_at product src);
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    Product.iter_out product s (fun _ s' ->
        if dist.(s') < 0 then begin
          dist.(s') <- dist.(s) + 1;
          Queue.add s' queue
        end)
  done;
  let best = ref max_int in
  for s = 0 to n - 1 do
    let v, _ = Product.decode product s in
    if v = tgt && Product.is_final product s && dist.(s) >= 0 then
      best := min !best dist.(s)
  done;
  let keep_edge s _ s' =
    dist.(s) >= 0 && dist.(s') = dist.(s) + 1 && dist.(s') <= !best
  in
  of_product ?obs product ~src ~tgt ~keep_edge

let count_paths pmr =
  let adj = out_adj pmr in
  let n = pmr.nb_nodes in
  (* Kahn-style topological sort; a leftover node means a cycle.  All
     nodes are useful by construction here, but cope with any PMR. *)
  let indeg = Array.make (max 1 n) 0 in
  Array.iter (fun (_, t, _) -> indeg.(t) <- indeg.(t) + 1) pmr.edges;
  let order = ref [] in
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr visited;
    order := v :: !order;
    List.iter
      (fun (w, _) ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      adj.(v)
  done;
  if !visited < n then `Infinite
  else begin
    (* Reverse topological order: count paths-to-target per node. *)
    let is_target = Array.make (max 1 n) false in
    List.iter (fun t -> is_target.(t) <- true) pmr.targets;
    let counts = Array.make (max 1 n) Nat_big.zero in
    List.iter
      (fun v ->
        let c =
          List.fold_left
            (fun acc (w, _) -> Nat_big.add acc counts.(w))
            Nat_big.zero adj.(v)
        in
        counts.(v) <- (if is_target.(v) then Nat_big.succ c else c))
      !order;
    `Finite
      (List.fold_left
         (fun acc s -> Nat_big.add acc counts.(s))
         Nat_big.zero pmr.sources)
  end

(* A PMR can represent exponentially (even infinitely) many paths, so the
   unrolling charges the governor: one step per PMR-edge extension, one
   result per represented path. *)
let spaths_upto_gov ?(obs = Obs.none) gov g pmr ~max_len =
  Obs.span obs "pmr.unroll" @@ fun () ->
  let steps = Obs.counter_fn obs "pmr.unroll_steps" in
  let stepped = ref 0 in
  let adj = out_adj pmr in
  let acc = ref [] in
  let rec go v rev_objs len =
    if List.mem v pmr.targets && Governor.emit gov then
      acc := List.rev rev_objs :: !acc;
    if len < max_len && Governor.ok gov then
      List.iter
        (fun (w, ge) ->
          if Governor.tick gov then begin
            incr stepped;
            go w (Path.N pmr.gamma_node.(w) :: Path.E ge :: rev_objs) (len + 1)
          end)
        adj.(v)
  in
  List.iter
    (fun s -> if Governor.ok gov then go s [ Path.N pmr.gamma_node.(s) ] 0)
    pmr.sources;
  steps !stepped;
  List.map (Path.of_objs_exn g) !acc
  |> List.sort_uniq Path.compare

let spaths_upto_bounded ?obs gov g pmr ~max_len =
  Governor.seal gov (spaths_upto_gov ?obs gov g pmr ~max_len)

let spaths_upto g pmr ~max_len =
  Governor.value (spaths_upto_bounded (Governor.unlimited ()) g pmr ~max_len)

let mem _g pmr path =
  match Path.objs path with
  | [] -> false
  | Path.E _ :: _ -> false
  | Path.N first :: rest ->
      let start =
        List.filter (fun s -> pmr.gamma_node.(s) = first) pmr.sources
      in
      let adj = out_adj pmr in
      let rec walk current objs =
        match objs with
        | [] -> List.exists (fun s -> List.mem s pmr.targets) current
        | Path.E e :: Path.N v :: rest ->
            let next =
              List.concat_map
                (fun s ->
                  List.filter_map
                    (fun (w, ge) ->
                      if ge = e && pmr.gamma_node.(w) = v then Some w else None)
                    adj.(s))
                current
              |> List.sort_uniq Stdlib.compare
            in
            if next = [] then false else walk next rest
        | Path.E _ :: _ | Path.N _ :: _ -> false
      in
      walk start rest

let pp g fmt pmr =
  Format.fprintf fmt "@[<v>PMR (%d nodes, %d edges)@," pmr.nb_nodes
    (Array.length pmr.edges);
  Array.iteri
    (fun i gn -> Format.fprintf fmt "n%d ~ %s@," i (Elg.node_name g gn))
    pmr.gamma_node;
  Array.iter
    (fun (s, t, ge) ->
      Format.fprintf fmt "n%d -[%s]-> n%d@," s (Elg.edge_name g ge) t)
    pmr.edges;
  Format.fprintf fmt "S = {%s}, T = {%s}@]"
    (String.concat "," (List.map string_of_int pmr.sources))
    (String.concat "," (List.map string_of_int pmr.targets))
