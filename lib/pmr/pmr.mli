(** Path multiset representations (Section 6.4, after [84]).

    A PMR over a graph G is a graph R together with a homomorphism γ into
    G and sets S, T of source and target nodes; it represents
    [SPaths(R) = { γ(ρ) | ρ a path from S to T in R }].  PMRs can
    represent exponentially many — even infinitely many — paths in linear
    space: the paper's two examples (the 2{^n} paths of Figure 5, the
    infinite set of unblocked transfer cycles) are both reproduced in the
    tests and in experiment E3.

    The paper notes PMRs support multisets; in line with its advocacy of
    set semantics we expose only the set view, and {!of_rpq} compiles
    through a deterministic automaton so that represented paths are in
    bijection with PMR paths (making {!count_paths} a true path count). *)

type t = {
  nb_nodes : int;
  gamma_node : int array;  (** PMR node -> graph node *)
  edges : (int * int * int) array;  (** (src, tgt, γ(edge)) *)
  sources : int list;
  targets : int list;
}

(** Structural size |N| + |E|, the space measure of experiment E3. *)
val size : t -> int

(** [check g pmr] verifies that γ is a homomorphism and S, T are nodes. *)
val check : Elg.t -> t -> bool

(** The PMR of all matching paths from [src] to [tgt]: the trimmed product
    graph with a deterministic automaton.  Represents exactly
    [{ p | p from src to tgt, elab(p) ∈ L(R) }] — possibly an infinite
    set.

    [?obs] (here and on the other constructors) records [pmr.nodes] /
    [pmr.edges] of the trimmed result inside a [pmr.build] span, plus
    whatever {!Product.make} records. *)
val of_rpq : ?obs:Obs.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> t

(** Like {!of_rpq} but keeping only geodesic edges: represents exactly the
    shortest matching paths. *)
val of_rpq_shortest :
  ?obs:Obs.t -> Elg.t -> Sym.t Regex.t -> src:int -> tgt:int -> t

(** Trimmed product with a caller-supplied automaton.  With a
    nondeterministic automaton, PMR paths are in bijection with {e runs},
    not matched paths; this is exactly what annotated representations of
    l-RPQ outputs need (one run = one binding, experiment E4). *)
val of_nfa : ?obs:Obs.t -> Elg.t -> Sym.t Nfa.t -> src:int -> tgt:int -> t

(** [`Infinite] when a cycle lies on some S→T route. *)
val count_paths : t -> [ `Finite of Nat_big.t | `Infinite ]

(** SPaths(R) restricted to paths of length at most [max_len]. *)
val spaths_upto : Elg.t -> t -> max_len:int -> Path.t list

(** As {!spaths_upto} under a governor: a PMR may represent
    exponentially many paths, so the unrolling charges one step per
    PMR-edge extension and one result per path, returning a [Partial]
    prefix when a budget trips.  [?obs] records [pmr.unroll_steps]
    inside a [pmr.unroll] span. *)
val spaths_upto_bounded :
  ?obs:Obs.t ->
  Governor.t -> Elg.t -> t -> max_len:int -> Path.t list Governor.outcome

(** Is the (node-to-node) path represented? *)
val mem : Elg.t -> t -> Path.t -> bool

val pp : Elg.t -> Format.formatter -> t -> unit
