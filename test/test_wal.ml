(* Crash-recovery properties for the write-ahead log (lib/wal).

   The core property: whatever interleaving of delta appends,
   checkpoints, torn tails and injected faults a run suffers, recovery
   must reproduce exactly the acknowledged prefix — same node/edge/label
   order, same CSR adjacency, same statistics, same RPQ/CRPQ answers as
   the graph the writer had published when the last acknowledged append
   returned.  Un-acknowledged work (a rolled-back append, a torn final
   record) must be atomically absent; damage anywhere else in the log
   must be refused with a structured parse error, never silently
   skipped. *)

let seed_arb = QCheck.(make ~print:string_of_int Gen.(int_range 0 1_000_000))

(* --- scratch directories -------------------------------------------------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "gq_wal" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.chmod dir 0o700 with Unix.Unix_error _ -> ());
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* --- reference model (as in test_updates) --------------------------------- *)

type model = {
  mutable m_nodes : (string * string * (string * Value.t) list) list;
  mutable m_edges :
    (string * string * string * string * (string * Value.t) list) list;
  mutable m_fresh : int;
}

let model_has_node m name = List.exists (fun (n, _, _) -> n = name) m.m_nodes

let model_apply m (op : Pg.delta_op) =
  match op with
  | Pg.Add_edge { name; src; label; tgt; props } ->
      if not (model_has_node m src) then
        m.m_nodes <- m.m_nodes @ [ (src, "", []) ];
      if not (model_has_node m tgt) then
        m.m_nodes <- m.m_nodes @ [ (tgt, "", []) ];
      m.m_edges <- m.m_edges @ [ (name, src, label, tgt, props) ]
  | Pg.Del_edge name ->
      m.m_edges <- List.filter (fun (n, _, _, _, _) -> n <> name) m.m_edges
  | Pg.Del_node name ->
      m.m_nodes <- List.filter (fun (n, _, _) -> n <> name) m.m_nodes;
      m.m_edges <-
        List.filter (fun (_, s, _, t, _) -> s <> name && t <> name) m.m_edges

let model_rebuild m = Pg.make ~nodes:m.m_nodes ~edges:m.m_edges

let pick st l = List.nth l (Random.State.int st (List.length l))

let gen_base st =
  let nb = 3 + Random.State.int st 4 in
  let nodes = List.init nb (fun i -> (Printf.sprintf "n%d" i, "", [])) in
  let labels = [ "a"; "b"; "c" ] in
  let ne = Random.State.int st 8 in
  let edges =
    List.init ne (fun i ->
        ( Printf.sprintf "e%d" i,
          Printf.sprintf "n%d" (Random.State.int st nb),
          pick st labels,
          Printf.sprintf "n%d" (Random.State.int st nb),
          if Random.State.bool st then [ ("w", Value.Int i) ] else [] ))
  in
  { m_nodes = nodes; m_edges = edges; m_fresh = 0 }

(* One valid batch, replayed into the model as it is generated.  Every
   op shape that can appear in the log: adds (implicit endpoints,
   properties whose textual rendering must round-trip), edge deletes,
   node deletes. *)
let gen_batch st m =
  let nops = 1 + Random.State.int st 4 in
  List.init nops (fun _ ->
      let can_del = m.m_edges <> [] in
      let can_deln = m.m_nodes <> [] in
      let roll = Random.State.int st 10 in
      let op =
        if can_deln && roll >= 9 then
          Pg.Del_node ((fun (n, _, _) -> n) (pick st m.m_nodes))
        else if (not can_del) || roll < 6 then begin
          let endpoint () =
            if m.m_nodes <> [] && Random.State.int st 10 < 8 then
              (fun (n, _, _) -> n) (pick st m.m_nodes)
            else begin
              m.m_fresh <- m.m_fresh + 1;
              Printf.sprintf "m%d" m.m_fresh
            end
          in
          m.m_fresh <- m.m_fresh + 1;
          Pg.Add_edge
            {
              name = Printf.sprintf "x%d" m.m_fresh;
              src = endpoint ();
              label = pick st [ "a"; "b"; "c" ];
              tgt = endpoint ();
              props =
                (match Random.State.int st 3 with
                | 0 -> [ ("w", Value.Int m.m_fresh) ]
                | 1 -> [ ("tag", Value.Text "hot"); ("ok", Value.Bool true) ]
                | _ -> []);
            }
        end
        else Pg.Del_edge ((fun (n, _, _, _, _) -> n) (pick st m.m_edges))
      in
      model_apply m op;
      op)

(* --- equivalence ---------------------------------------------------------- *)

let names_out g v = List.map (Elg.edge_name g) (Elg.out_edges g v)
let names_in g v = List.map (Elg.edge_name g) (Elg.in_edges g v)

let check_graph_eq msg inc ref_pg =
  let gi = Pg.elg inc and gr = Pg.elg ref_pg in
  Alcotest.(check int) (msg ^ ": nodes") (Elg.nb_nodes gr) (Elg.nb_nodes gi);
  Alcotest.(check int) (msg ^ ": edges") (Elg.nb_edges gr) (Elg.nb_edges gi);
  Alcotest.(check (list string))
    (msg ^ ": node order")
    (List.init (Elg.nb_nodes gr) (Elg.node_name gr))
    (List.init (Elg.nb_nodes gi) (Elg.node_name gi));
  Alcotest.(check (list string))
    (msg ^ ": edge order")
    (List.init (Elg.nb_edges gr) (Elg.edge_name gr))
    (List.init (Elg.nb_edges gi) (Elg.edge_name gi));
  Alcotest.(check (list string))
    (msg ^ ": interned labels") (Elg.labels gr) (Elg.labels gi);
  for e = 0 to Elg.nb_edges gr - 1 do
    Alcotest.(check (pair int int))
      (msg ^ ": endpoints")
      (Elg.src gr e, Elg.tgt gr e)
      (Elg.src gi e, Elg.tgt gi e)
  done;
  for v = 0 to Elg.nb_nodes gr - 1 do
    Alcotest.(check (list string))
      (msg ^ ": out adjacency") (names_out gr v) (names_out gi v);
    Alcotest.(check (list string))
      (msg ^ ": in adjacency") (names_in gr v) (names_in gi v);
    Alcotest.(check bool)
      (msg ^ ": node props") true
      (Pg.props_of ref_pg (Path.N v) = Pg.props_of inc (Path.N v))
  done;
  for e = 0 to Elg.nb_edges gr - 1 do
    Alcotest.(check bool)
      (msg ^ ": edge props") true
      (Pg.props_of ref_pg (Path.E e) = Pg.props_of inc (Path.E e))
  done

(* Statistics, field for field except [graph_id] (distinct instances). *)
let check_stats_like msg (got : Stats.t) (want : Stats.t) =
  Alcotest.(check int) (msg ^ ": nb_nodes") want.Stats.nb_nodes got.Stats.nb_nodes;
  Alcotest.(check int) (msg ^ ": nb_edges") want.nb_edges got.nb_edges;
  Alcotest.(check int) (msg ^ ": nb_labels") want.nb_labels got.nb_labels;
  Alcotest.(check (array string))
    (msg ^ ": label_names") want.label_names got.label_names;
  Alcotest.(check (array int))
    (msg ^ ": label_edges") want.label_edges got.label_edges;
  Alcotest.(check (array int))
    (msg ^ ": label_sources") want.label_sources got.label_sources;
  Alcotest.(check (array int))
    (msg ^ ": label_targets") want.label_targets got.label_targets;
  Alcotest.(check (array int)) (msg ^ ": out_hist") want.out_hist got.out_hist;
  Alcotest.(check (array int)) (msg ^ ": in_hist") want.in_hist got.in_hist

let queries =
  Regex.
    [
      Atom (Sym.Lbl "a");
      Seq (Atom (Sym.Lbl "a"), Star (Atom (Sym.Lbl "b")));
      Star (Alt (Atom (Sym.Lbl "a"), Atom (Sym.Lbl "c")));
      Star (Atom Sym.Any);
    ]

let crpq =
  Crpq.make ~head:[ "x"; "z" ]
    ~atoms:
      [
        {
          Crpq.re = Regex.Star (Regex.Atom (Sym.Lbl "a"));
          x = Crpq.TVar "x";
          y = Crpq.TVar "y";
        };
        {
          Crpq.re = Regex.Atom (Sym.Lbl "b");
          x = Crpq.TVar "y";
          y = Crpq.TVar "z";
        };
      ]

let check_equiv msg recovered reference =
  check_graph_eq msg recovered reference;
  check_stats_like msg
    (Stats.get (Pg.elg recovered))
    (Stats.of_elg (Pg.elg reference));
  let gi = Pg.elg recovered and gr = Pg.elg reference in
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (msg ^ ": rpq answers") true
        (Rpq_eval.pairs gi r = Rpq_eval.pairs gr r))
    queries;
  Alcotest.(check bool)
    (msg ^ ": crpq answers") true
    (Crpq.eval gi crpq = Crpq.eval gr crpq)

let ok_exn what = function
  | Ok v -> v
  | Error err -> Alcotest.failf "%s: %s" what (Gq_error.to_string err)

let recover_exn dir = ok_exn "recover" (Wal.recover_res dir)

let recovered_graph (r : Wal.recovery) =
  match r.Wal.rc_graph with
  | Some pg -> pg
  | None -> Alcotest.fail "recovery produced no graph"

(* --- property: clean shutdown and reopen ---------------------------------- *)

(* Random append/checkpoint interleavings, clean close: recovery (both
   offline [recover_res] and a fresh [open_res]) must reproduce the
   final published graph exactly, and a second recovery must agree with
   the first (replay is idempotent — it re-reads the same immutable
   prefix). *)
let prop_recovery_equals_reference =
  QCheck.Test.make ~count:60 ~name:"recovery = last acknowledged state"
    seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      with_tmpdir (fun dir ->
          let m = gen_base st in
          let base = model_rebuild m in
          let w, _ = ok_exn "open" (Wal.open_res ~policy:Wal.Always dir) in
          ignore (ok_exn "bootstrap checkpoint" (Wal.checkpoint_res w base));
          let live = ref base in
          let appends = ref 0 in
          let batches = 2 + Random.State.int st 6 in
          for _ = 1 to batches do
            let ops = gen_batch st m in
            let applied = ok_exn "apply" (Delta.apply_res !live ops) in
            let _lsn, synced = ok_exn "append" (Wal.append_res w ops) in
            Alcotest.(check bool) "always policy syncs" true synced;
            incr appends;
            live := applied.Delta.pg;
            if Random.State.int st 4 = 0 then
              ignore (ok_exn "checkpoint" (Wal.checkpoint_res w !live))
          done;
          Wal.close w;
          let r1 = recover_exn dir in
          check_equiv "offline recovery" (recovered_graph r1) !live;
          Alcotest.(check bool)
            "next lsn past every append" true
            (r1.Wal.rc_next_lsn = Int64.of_int (!appends + 1));
          (* Idempotence: a second pass over the same directory. *)
          let r2 = recover_exn dir in
          check_equiv "second recovery" (recovered_graph r2) (recovered_graph r1);
          Alcotest.(check bool)
            "identical lsn/generation" true
            (r1.Wal.rc_next_lsn = r2.Wal.rc_next_lsn
            && r1.Wal.rc_gen = r2.Wal.rc_gen
            && r1.Wal.rc_replayed = r2.Wal.rc_replayed);
          (* Batched replay (one Delta.apply_res per segment, the
             default) and per-record replay must recover the same state,
             byte for byte, whatever the interleaving of adds, deletes
             and checkpoints across record boundaries. *)
          let rb =
            ok_exn "recover batched" (Wal.recover_res ~coalesce:true dir)
          in
          let rp =
            ok_exn "recover per-record" (Wal.recover_res ~coalesce:false dir)
          in
          check_equiv "batched = per-record replay" (recovered_graph rb)
            (recovered_graph rp);
          Alcotest.(check bool)
            "batched replay bookkeeping matches" true
            (rb.Wal.rc_next_lsn = rp.Wal.rc_next_lsn
            && rb.Wal.rc_gen = rp.Wal.rc_gen
            && rb.Wal.rc_replayed = rp.Wal.rc_replayed);
          (* Reopening for serving resumes where the log ends. *)
          let w2, r3 = ok_exn "reopen" (Wal.open_res dir) in
          check_equiv "reopen" (recovered_graph r3) !live;
          Alcotest.(check bool)
            "reopen lsn" true
            (Wal.next_lsn w2 = Int64.of_int (!appends + 1));
          Wal.close w2);
      true)

(* --- property: torn tails -------------------------------------------------- *)

(* Truncate the final segment at a random byte.  Recovery must come back
   with exactly the record-aligned prefix: every record wholly before
   the cut survives, the first record the cut bites into disappears
   together with everything after it, and [rc_truncated] fires iff the
   cut left a partial record (or a torn segment header) behind. *)
let prop_torn_tail_prefix =
  QCheck.Test.make ~count:60 ~name:"torn tail recovers the exact prefix"
    seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      with_tmpdir (fun dir ->
          let m = gen_base st in
          let base = model_rebuild m in
          let w, _ = ok_exn "open" (Wal.open_res ~policy:Wal.Never dir) in
          ignore (ok_exn "bootstrap" (Wal.checkpoint_res w base));
          let live = ref base in
          (* States of the *current* segment: (valid bytes, graph) after
             each append, reset at each rotation; [anchor] is the state
             the newest checkpoint captured. *)
          let anchor = ref base in
          let marks = ref [] in
          let batches = 2 + Random.State.int st 6 in
          for _ = 1 to batches do
            let ops = gen_batch st m in
            let applied = ok_exn "apply" (Delta.apply_res !live ops) in
            ignore (ok_exn "append" (Wal.append_res w ops));
            live := applied.Delta.pg;
            marks := ((Wal.counters w).Wal.c_bytes, !live) :: !marks;
            if Random.State.int st 5 = 0 then begin
              ignore (ok_exn "checkpoint" (Wal.checkpoint_res w !live));
              anchor := !live;
              marks := []
            end
          done;
          let gen = Wal.generation w in
          Wal.close w;
          let seg = Filename.concat dir (Printf.sprintf "wal-%d.log" gen) in
          let len = (Unix.stat seg).Unix.st_size in
          let cut = Random.State.int st (len + 1) in
          let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
          Unix.ftruncate fd cut;
          Unix.close fd;
          let header_len = 20 in
          let expected, survivors =
            List.fold_left
              (fun (best, n) (bytes, pg) ->
                if bytes <= cut then
                  match best with
                  | Some (b, _) when b >= bytes -> (best, n + 1)
                  | _ -> (Some (bytes, pg), n + 1)
                else (best, n))
              (None, 0) !marks
          in
          let expected_pg =
            match expected with Some (_, pg) -> pg | None -> !anchor
          in
          let torn_expected =
            if cut = len then false
            else if cut = 0 then false
            else if cut < header_len then true
            else cut <> header_len && not (List.mem_assoc cut !marks)
          in
          let r = recover_exn dir in
          check_equiv
            (Printf.sprintf "cut at %d/%d (%d of %d records survive)" cut len
               survivors (List.length !marks))
            (recovered_graph r) expected_pg;
          Alcotest.(check bool)
            (Printf.sprintf "truncated flag (cut %d/%d)" cut len)
            torn_expected r.Wal.rc_truncated);
      true)

(* --- property: injected faults are crashes --------------------------------- *)

exception Crash

let fault_sites = [ "wal.append"; "wal.fsync"; "wal.checkpoint"; "wal.rotate" ]

(* Arm one failpoint site mid-run, treat the first injected fault (or
   any error it surfaces as) as the crash: the process stops on the
   spot, nothing is rolled forward, and recovery must land exactly on
   the acknowledged prefix — a failed append was rolled back, so it
   must be absent; a failed checkpoint leaves the log authoritative. *)
let prop_fault_injection_crash =
  QCheck.Test.make ~count:80 ~name:"injected fault = crash at the ack boundary"
    seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      let site = pick st fault_sites in
      with_tmpdir (fun dir ->
          Fun.protect ~finally:Failpoint.clear (fun () ->
              let m = gen_base st in
              let base = model_rebuild m in
              let w, _ = ok_exn "open" (Wal.open_res ~policy:Wal.Always dir) in
              ignore (ok_exn "bootstrap" (Wal.checkpoint_res w base));
              let live = ref base in
              let acked = ref base in
              let batches = 3 + Random.State.int st 5 in
              let crash_at = 1 + Random.State.int st batches in
              (try
                 for i = 1 to batches do
                   if i = crash_at then Failpoint.arm site Failpoint.Fail_once;
                   let ops = gen_batch st m in
                   let applied = ok_exn "apply" (Delta.apply_res !live ops) in
                   (match Wal.append_res w ops with
                   | Ok _ ->
                       live := applied.Delta.pg;
                       acked := !live
                   | Error _ -> raise Crash
                   | exception _ -> raise Crash);
                   if i mod 3 = 0 then
                     match Wal.checkpoint_res w !live with
                     | Ok _ -> ()
                     | Error _ -> raise Crash
                     | exception _ -> raise Crash
                 done
               with Crash -> ());
              (* No clean close: the crash leaves the descriptor behind. *)
              let r = recover_exn dir in
              check_equiv
                (Printf.sprintf "site %s, crash at %d" site crash_at)
                (recovered_graph r) !acked));
      true)

(* --- property: tolerated checkpoint failures -------------------------------- *)

(* The serve path tolerates a failed rotation (cmd_delta counts it and
   keeps acking appends into the old segment).  That is only sound if
   the failure left no orphaned checkpoint-<gen+1> behind: recovery
   anchors at the newest checkpoint and skips older segments, so an
   orphan would silently drop every append acked after the failure.
   Here the writer survives the injected fault, keeps appending, then
   crashes — recovery must still land on the full acked state. *)
let prop_survive_failed_rotation =
  QCheck.Test.make ~count:60
    ~name:"appends acked after a tolerated checkpoint failure survive"
    seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      let site = pick st [ "wal.checkpoint"; "wal.rotate" ] in
      with_tmpdir (fun dir ->
          Fun.protect ~finally:Failpoint.clear (fun () ->
              let m = gen_base st in
              let base = model_rebuild m in
              let w, _ = ok_exn "open" (Wal.open_res ~policy:Wal.Always dir) in
              ignore (ok_exn "bootstrap" (Wal.checkpoint_res w base));
              let live = ref base in
              let batches = 3 + Random.State.int st 5 in
              let fail_at = 1 + Random.State.int st batches in
              for i = 1 to batches do
                let ops = gen_batch st m in
                let applied = ok_exn "apply" (Delta.apply_res !live ops) in
                ignore (ok_exn "append" (Wal.append_res w ops));
                live := applied.Delta.pg;
                if i = fail_at then begin
                  Failpoint.arm site Failpoint.Fail_once;
                  match Wal.checkpoint_res w !live with
                  | Ok _ ->
                      Alcotest.fail "checkpoint succeeded under armed failpoint"
                  | Error _ -> ()
                  | exception Failpoint.Injected _ -> ()
                end
                else if Random.State.int st 4 = 0 then
                  ignore (ok_exn "checkpoint" (Wal.checkpoint_res w !live))
              done;
              (* Crash: no clean close. *)
              let r = recover_exn dir in
              check_equiv
                (Printf.sprintf "site %s, tolerated failure at %d" site fail_at)
                (recovered_graph r) !live));
      true)

(* --- pins: recovery edge cases --------------------------------------------- *)

let test_empty_dir () =
  with_tmpdir (fun dir ->
      let r = recover_exn dir in
      Alcotest.(check bool) "no graph" true (r.Wal.rc_graph = None);
      Alcotest.(check int) "generation" 0 r.Wal.rc_gen;
      Alcotest.(check bool) "lsn" true (r.Wal.rc_next_lsn = 1L);
      Alcotest.(check int) "replayed" 0 r.Wal.rc_replayed;
      Alcotest.(check bool) "no warnings" true (r.Wal.rc_warnings = []));
  (* A directory that does not exist at all recovers to the same. *)
  let r = recover_exn "/nonexistent/gq-wal-nowhere" in
  Alcotest.(check bool) "missing dir: no graph" true (r.Wal.rc_graph = None)

let bank () = Generators.bank_pg ()

let test_checkpoint_only () =
  with_tmpdir (fun dir ->
      let pg = bank () in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "checkpoint" (Wal.checkpoint_res w pg));
      Wal.close w;
      let r = recover_exn dir in
      check_equiv "checkpoint only" (recovered_graph r) pg;
      Alcotest.(check int) "replayed" 0 r.Wal.rc_replayed;
      Alcotest.(check bool) "not truncated" false r.Wal.rc_truncated)

let test_torn_header_only () =
  with_tmpdir (fun dir ->
      let pg = bank () in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "checkpoint" (Wal.checkpoint_res w pg));
      Wal.close w;
      (* Tear the segment down to a 7-byte header stub. *)
      let seg = Filename.concat dir "wal-1.log" in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd 7;
      Unix.close fd;
      let r = recover_exn dir in
      check_equiv "torn header" (recovered_graph r) pg;
      Alcotest.(check bool) "flagged truncated" true r.Wal.rc_truncated;
      (* Reopening rewrites the header and serves. *)
      let w2, _ = ok_exn "reopen" (Wal.open_res dir) in
      Alcotest.(check bool) "writable again" false (Wal.read_only w2);
      ignore
        (ok_exn "append after repair"
           (Wal.append_res w2
              [
                Pg.Add_edge
                  {
                    name = "wrepair1";
                    src = "p";
                    label = "z";
                    tgt = "q";
                    props = [];
                  };
              ]));
      Wal.close w2;
      let r2 = recover_exn dir in
      Alcotest.(check int) "replays the repaired record" 1 r2.Wal.rc_replayed)

let append_simple w i =
  ok_exn "append"
    (Wal.append_res w
       [
         Pg.Add_edge
           {
             name = Printf.sprintf "s%d" i;
             src = "u";
             label = "a";
             tgt = Printf.sprintf "v%d" i;
             props = [];
           };
       ])

let test_midlog_corruption_refused () =
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "checkpoint" (Wal.checkpoint_res w pg));
      for i = 1 to 3 do
        ignore (append_simple w i)
      done;
      Wal.close w;
      (* Flip a payload byte of the *first* record: valid records follow,
         so this is corruption, not a tear. *)
      let seg = Filename.concat dir "wal-1.log" in
      let fd = Unix.openfile seg [ Unix.O_RDWR ] 0 in
      ignore (Unix.lseek fd 41 Unix.SEEK_SET);
      ignore (Unix.write fd (Bytes.of_string "#") 0 1);
      Unix.close fd;
      (match Wal.recover_res dir with
      | Error (Gq_error.Parse { what = "wal"; _ }) -> ()
      | Error err ->
          Alcotest.failf "wrong error shape: %s" (Gq_error.to_string err)
      | Ok _ -> Alcotest.fail "corrupt mid-log record accepted");
      (* Serving must refuse too, not truncate valid acknowledged data. *)
      match Wal.open_res dir with
      | Error (Gq_error.Parse { what = "wal"; _ }) -> ()
      | Error err ->
          Alcotest.failf "open: wrong error shape: %s" (Gq_error.to_string err)
      | Ok _ -> Alcotest.fail "open over corruption succeeded")

let test_garbage_checkpoint_falls_back () =
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "checkpoint" (Wal.checkpoint_res w pg));
      ignore (append_simple w 1);
      let applied =
        ok_exn "apply"
          (Delta.apply_res pg
             [
               Pg.Add_edge
                 { name = "s1"; src = "u"; label = "a"; tgt = "v1"; props = [] };
             ])
      in
      ignore (ok_exn "checkpoint 2" (Wal.checkpoint_res w applied.Delta.pg));
      ignore (append_simple w 2);
      let final =
        ok_exn "apply 2"
          (Delta.apply_res applied.Delta.pg
             [
               Pg.Add_edge
                 { name = "s2"; src = "u"; label = "a"; tgt = "v2"; props = [] };
             ])
      in
      Wal.close w;
      (* Generation 2's snapshot rots to zero bytes: recovery must fall
         back to generation 1 and still reach the same final state by
         replaying both segments. *)
      let cp2 = Filename.concat dir "checkpoint-2.gqb" in
      let fd = Unix.openfile cp2 [ Unix.O_WRONLY; Unix.O_TRUNC ] 0 in
      Unix.close fd;
      let r = recover_exn dir in
      Alcotest.(check int) "anchored at generation 1" 1 r.Wal.rc_base_gen;
      Alcotest.(check int) "replayed both segments" 2 r.Wal.rc_replayed;
      Alcotest.(check bool) "warned" true (r.Wal.rc_warnings <> []);
      check_equiv "fallback" (recovered_graph r) final.Delta.pg)

let test_read_only_mode () =
  with_tmpdir (fun dir ->
      let pg = bank () in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "checkpoint" (Wal.checkpoint_res w pg));
      ignore (append_simple w 1);
      Wal.close w;
      (* Forced inspection mode: recovery runs, appends are refused. *)
      let w2, r = ok_exn "open ro" (Wal.open_res ~read_only:true dir) in
      Alcotest.(check bool) "read_only" true (Wal.read_only w2);
      Alcotest.(check int) "recovered" 1 r.Wal.rc_replayed;
      (match Wal.append_res w2 [ Pg.Del_edge "s1" ] with
      | Error (Gq_error.Io _) -> ()
      | Error err -> Alcotest.failf "wrong error: %s" (Gq_error.to_string err)
      | Ok _ -> Alcotest.fail "append accepted in read-only mode");
      (match Wal.checkpoint_res w2 pg with
      | Error (Gq_error.Io _) -> ()
      | Error err -> Alcotest.failf "wrong error: %s" (Gq_error.to_string err)
      | Ok _ -> Alcotest.fail "checkpoint accepted in read-only mode");
      Wal.close w2;
      (* An unwritable directory degrades to the same mode with a
         structured warning (root bypasses permission checks, so this
         branch only runs unprivileged). *)
      if Unix.geteuid () <> 0 then begin
        Unix.chmod dir 0o500;
        let w3, r3 = ok_exn "open unwritable" (Wal.open_res dir) in
        Alcotest.(check bool) "degraded to read-only" true (Wal.read_only w3);
        Alcotest.(check bool)
          "warning names the degradation" true
          (List.exists
             (fun m ->
               let has_sub sub s =
                 let n = String.length sub and l = String.length s in
                 let rec go i =
                   i + n <= l && (String.sub s i n = sub || go (i + 1))
                 in
                 go 0
               in
               has_sub "read-only" m)
             r3.Wal.rc_warnings);
        Wal.close w3;
        Unix.chmod dir 0o700
      end)

let test_append_requires_checkpoint () =
  with_tmpdir (fun dir ->
      let w, r = ok_exn "open" (Wal.open_res dir) in
      Alcotest.(check bool) "empty recovery" true (r.Wal.rc_graph = None);
      (match Wal.append_res w [ Pg.Del_edge "e" ] with
      | Error (Gq_error.Io _) -> ()
      | Error err -> Alcotest.failf "wrong error: %s" (Gq_error.to_string err)
      | Ok _ -> Alcotest.fail "append accepted before any checkpoint");
      Wal.close w)

let test_rotation_and_retention () =
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ = ok_exn "open" (Wal.open_res ~checkpoint_every:2 dir) in
      ignore (ok_exn "bootstrap" (Wal.checkpoint_res w pg));
      let live = ref pg in
      for i = 1 to 8 do
        let ops =
          [
            Pg.Add_edge
              {
                name = Printf.sprintf "s%d" i;
                src = "u";
                label = "a";
                tgt = Printf.sprintf "v%d" i;
                props = [];
              };
          ]
        in
        let applied = ok_exn "apply" (Delta.apply_res !live ops) in
        ignore (ok_exn "append" (Wal.append_res w ops));
        live := applied.Delta.pg;
        ignore (ok_exn "maybe" (Wal.maybe_checkpoint_res w !live))
      done;
      (* Every 2 appends rotated: bootstrap gen 1 + 4 rotations. *)
      Alcotest.(check int) "generation" 5 (Wal.generation w);
      Wal.close w;
      (* Retention: only the current and previous generations remain. *)
      let entries = Array.to_list (Sys.readdir dir) in
      List.iter
        (fun g ->
          Alcotest.(check bool)
            (Printf.sprintf "generation %d deleted" g)
            false
            (List.mem (Printf.sprintf "checkpoint-%d.gqb" g) entries
            || List.mem (Printf.sprintf "wal-%d.log" g) entries))
        [ 1; 2; 3 ];
      List.iter
        (fun f ->
          Alcotest.(check bool) (f ^ " kept") true (List.mem f entries))
        [ "checkpoint-4.gqb"; "wal-4.log"; "checkpoint-5.gqb"; "wal-5.log" ];
      let r = recover_exn dir in
      check_equiv "post-rotation recovery" (recovered_graph r) !live)

let simple_op i =
  Pg.Add_edge
    {
      name = Printf.sprintf "s%d" i;
      src = "u";
      label = "a";
      tgt = Printf.sprintf "v%d" i;
      props = [];
    }

let test_failed_rotation_unlinks_orphan () =
  with_tmpdir (fun dir ->
      Fun.protect ~finally:Failpoint.clear (fun () ->
          let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
          let w, _ = ok_exn "open" (Wal.open_res dir) in
          ignore (ok_exn "bootstrap" (Wal.checkpoint_res w pg));
          ignore (append_simple w 1);
          let live1 = ok_exn "apply" (Delta.apply_res pg [ simple_op 1 ]) in
          (* Rotation fails after the snapshot file was written: the
             orphan must go, and the generation must not advance. *)
          Failpoint.arm "wal.rotate" Failpoint.Fail_once;
          (match Wal.checkpoint_res w live1.Delta.pg with
          | Ok _ -> Alcotest.fail "checkpoint succeeded under injected fault"
          | Error _ -> ()
          | exception Failpoint.Injected _ -> ());
          Alcotest.(check bool)
            "orphan checkpoint removed" false
            (Sys.file_exists (Filename.concat dir "checkpoint-2.gqb"));
          Alcotest.(check int) "generation unchanged" 1 (Wal.generation w);
          Alcotest.(check bool) "still writable" false (Wal.read_only w);
          (* The survivor keeps acking appends into the old segment... *)
          ignore (append_simple w 2);
          let live2 =
            ok_exn "apply 2" (Delta.apply_res live1.Delta.pg [ simple_op 2 ])
          in
          Wal.close w;
          (* ...and the next recovery must replay them all. *)
          let r = recover_exn dir in
          Alcotest.(check int) "both appends recovered" 2 r.Wal.rc_replayed;
          check_equiv "log authoritative after failed rotation"
            (recovered_graph r) live2.Delta.pg))

let test_undo_append () =
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "bootstrap" (Wal.checkpoint_res w pg));
      let lsn1, _ = append_simple w 1 in
      (* Publishing failed: the caller takes the record back out. *)
      Alcotest.(check bool)
        "undone" true
        (ok_exn "undo" (Wal.undo_append_res w lsn1));
      Alcotest.(check bool) "lsn rewound" true (Wal.next_lsn w = lsn1);
      (* A stale undo is a no-op — no double rollback. *)
      Alcotest.(check bool)
        "stale undo refused" false
        (ok_exn "undo2" (Wal.undo_append_res w lsn1));
      (* The retry re-appends under the same LSN at the same offset. *)
      let lsn2, _ = append_simple w 1 in
      Alcotest.(check bool) "lsn reused by the retry" true (lsn1 = lsn2);
      Wal.close w;
      let r = recover_exn dir in
      Alcotest.(check int) "exactly one record replays" 1 r.Wal.rc_replayed;
      let live = ok_exn "apply" (Delta.apply_res pg [ simple_op 1 ]) in
      check_equiv "undo then retry" (recovered_graph r) live.Delta.pg)

let test_lsn_monotone_after_lost_rotation () =
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "bootstrap" (Wal.checkpoint_res w pg));
      ignore (append_simple w 1);
      let live1 = ok_exn "apply" (Delta.apply_res pg [ simple_op 1 ]) in
      ignore (append_simple w 2);
      let live2 =
        ok_exn "apply 2" (Delta.apply_res live1.Delta.pg [ simple_op 2 ])
      in
      ignore (ok_exn "checkpoint" (Wal.checkpoint_res w live2.Delta.pg));
      Wal.close w;
      (* Simulate a crash between checkpoint and rotation: the new
         segment never made it, and the old one lost part of its final
         record (fsync=never tear). *)
      Sys.remove (Filename.concat dir "wal-2.log");
      let seg = Filename.concat dir "wal-1.log" in
      let len = (Unix.stat seg).Unix.st_size in
      let fd = Unix.openfile seg [ Unix.O_WRONLY ] 0 in
      Unix.ftruncate fd (len - 3);
      Unix.close fd;
      let r = recover_exn dir in
      check_equiv "anchored at the checkpoint" (recovered_graph r)
        live2.Delta.pg;
      (* LSN 2 was assigned to the (now torn) record; it must not be
         reissued to a new write in generation 2. *)
      Alcotest.(check bool)
        "next lsn skips the torn record" true
        (r.Wal.rc_next_lsn = 3L))

let test_fsync_policies () =
  (match Wal.fsync_policy_of_string "always" with
  | Ok Wal.Always -> ()
  | _ -> Alcotest.fail "always");
  (match Wal.fsync_policy_of_string "never" with
  | Ok Wal.Never -> ()
  | _ -> Alcotest.fail "never");
  (match Wal.fsync_policy_of_string "interval:25" with
  | Ok (Wal.Interval ms) -> Alcotest.(check bool) "ms" true (ms = 25.)
  | _ -> Alcotest.fail "interval");
  (match Wal.fsync_policy_of_string "interval:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad interval accepted");
  (match Wal.fsync_policy_of_string "sometimes" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy accepted");
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ =
        ok_exn "open" (Wal.open_res ~policy:(Wal.Interval 60_000.) dir)
      in
      ignore (ok_exn "bootstrap" (Wal.checkpoint_res w pg));
      let _lsn, synced = append_simple w 1 in
      Alcotest.(check bool) "interval defers the fsync" false synced;
      Alcotest.(check bool) "flush syncs" true (ok_exn "flush" (Wal.flush_res w));
      Alcotest.(check bool)
        "second flush is clean" false
        (ok_exn "flush2" (Wal.flush_res w));
      Wal.close w;
      let r = recover_exn dir in
      Alcotest.(check int) "deferred record recovered" 1 r.Wal.rc_replayed)

let test_dump () =
  with_tmpdir (fun dir ->
      let pg = Pg.make ~nodes:[ ("u", "", []) ] ~edges:[] in
      let w, _ = ok_exn "open" (Wal.open_res dir) in
      ignore (ok_exn "bootstrap" (Wal.checkpoint_res w pg));
      for i = 1 to 3 do
        ignore (append_simple w i)
      done;
      Wal.close w;
      let recs, warns = ok_exn "dump" (Wal.dump_res dir) in
      Alcotest.(check int) "records" 3 (List.length recs);
      Alcotest.(check bool) "no warnings" true (warns = []);
      Alcotest.(check (list int))
        "lsns in order" [ 1; 2; 3 ]
        (List.map (fun r -> Int64.to_int r.Wal.r_lsn) recs);
      List.iteri
        (fun i r ->
          Alcotest.(check string)
            "payload round-trips"
            (Printf.sprintf "add s%d u a v%d" (i + 1) (i + 1))
            r.Wal.r_payload)
        recs)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wal"
    [
      ( "crash-recovery",
        [
          qt prop_recovery_equals_reference;
          qt prop_torn_tail_prefix;
          qt prop_fault_injection_crash;
          qt prop_survive_failed_rotation;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "empty directory" `Quick test_empty_dir;
          Alcotest.test_case "checkpoint only" `Quick test_checkpoint_only;
          Alcotest.test_case "torn header only" `Quick test_torn_header_only;
          Alcotest.test_case "mid-log corruption refused" `Quick
            test_midlog_corruption_refused;
          Alcotest.test_case "garbage checkpoint falls back" `Quick
            test_garbage_checkpoint_falls_back;
          Alcotest.test_case "read-only mode" `Quick test_read_only_mode;
          Alcotest.test_case "append requires checkpoint" `Quick
            test_append_requires_checkpoint;
          Alcotest.test_case "rotation and retention" `Quick
            test_rotation_and_retention;
          Alcotest.test_case "failed rotation unlinks the orphan" `Quick
            test_failed_rotation_unlinks_orphan;
          Alcotest.test_case "undo append" `Quick test_undo_append;
          Alcotest.test_case "lsn monotone after lost rotation" `Quick
            test_lsn_monotone_after_lost_rotation;
          Alcotest.test_case "fsync policies" `Quick test_fsync_policies;
          Alcotest.test_case "wal-dump" `Quick test_dump;
        ] );
    ]
