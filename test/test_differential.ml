(* Cross-engine differential suite: the same query through independent
   evaluation pipelines must produce identical answer sets, serially and
   under domain parallelism.

   Three RPQ pipelines are compared:
   - [Rpq_eval.pairs_nfa] over the Glushkov NFA (the production engine);
   - the same engine over the minimized-DFA automaton
     ([Dfa.to_nfa (Dfa.minimize (Dfa.of_nfa nfa))]) — a different
     automaton for the same language must not change the answers;
   - two reference implementations that share no code with the product
     construction: a boolean-matrix semiring evaluator (structural
     recursion on the regex over n×n reachability matrices) and, on
     acyclic graphs, [Rpq_eval.pairs_naive] path enumeration.

   CRPQs are run through the pairwise-join engine ([Crpq.eval]) and the
   generic worst-case-optimal join ([Crpq_wcoj.eval]).

   Every property is checked at pool widths 1 and 4. *)

let pool1 = Pool.create ~size:1 ()
let pool4 = Pool.create ~size:4 ()

(* --- boolean-matrix semiring oracle -------------------------------------- *)

(* ⟦R⟧_G by structural recursion over n×n boolean matrices: atoms become
   label-filtered adjacency matrices, concatenation is matrix product,
   disjunction is union, star is reflexive-transitive closure by fixpoint
   iteration.  No automaton, no product graph, no BFS. *)
module Matrix_oracle = struct
  let mul n a b =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let rec hit k = k < n && ((a.(i).(k) && b.(k).(j)) || hit (k + 1)) in
            hit 0))

  let union n a b =
    Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) || b.(i).(j)))

  let identity n = Array.init n (fun i -> Array.init n (fun j -> i = j))

  let closure n a =
    let m = ref (identity n) in
    let stable = ref false in
    while not !stable do
      let next = union n !m (mul n !m a) in
      if next = !m then stable := true else m := next
    done;
    !m

  let of_sym g sym =
    let n = Elg.nb_nodes g in
    let m = Array.make_matrix n n false in
    for e = 0 to Elg.nb_edges g - 1 do
      if Sym.matches sym (Elg.label g e) then
        m.(Elg.src g e).(Elg.tgt g e) <- true
    done;
    m

  let rec eval g = function
    | Regex.Eps -> identity (Elg.nb_nodes g)
    | Regex.Atom sym -> of_sym g sym
    | Regex.Seq (a, b) -> mul (Elg.nb_nodes g) (eval g a) (eval g b)
    | Regex.Alt (a, b) -> union (Elg.nb_nodes g) (eval g a) (eval g b)
    | Regex.Star a -> closure (Elg.nb_nodes g) (eval g a)

  let pairs g r =
    let m = eval g r in
    let acc = ref [] in
    for i = Elg.nb_nodes g - 1 downto 0 do
      for j = Elg.nb_nodes g - 1 downto 0 do
        if m.(i).(j) then acc := (i, j) :: !acc
      done
    done;
    !acc
end

(* --- generators ----------------------------------------------------------- *)

let gen_graph =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    Generators.random_graph ~seed ~nodes:5 ~edges:8 ~labels:[ "a"; "b" ])

(* A random DAG: edges only go from lower to higher node ids, so every
   path has length < n and naive enumeration is exact and cheap. *)
let gen_dag =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    let st = Random.State.make [| seed |] in
    let n = 5 in
    let nodes = List.init n (Printf.sprintf "v%d") in
    let edges = ref [] in
    for e = 0 to 7 do
      let u = Random.State.int st (n - 1) in
      let v = u + 1 + Random.State.int st (n - 1 - u) in
      let lbl = if Random.State.bool st then "a" else "b" in
      edges := (Printf.sprintf "e%d" e, Printf.sprintf "v%d" u, lbl,
                Printf.sprintf "v%d" v) :: !edges
    done;
    Elg.make ~nodes ~edges:!edges)

let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 7) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Regex.Eps;
              map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b" ]);
              return (Regex.Atom Sym.Any);
            ]
        else
          oneof
            [
              map2 (fun a b -> Regex.Seq (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Regex.Alt (a, b)) (self (size / 2)) (self (size / 2));
              map (fun a -> Regex.Star a) (self (size - 1));
            ]))

let print_regex = Regex.to_string Sym.to_string

let arb_graph_regex =
  QCheck.make ~print:(fun (_, r) -> print_regex r)
    QCheck.Gen.(pair gen_graph gen_regex)

let arb_dag_regex =
  QCheck.make ~print:(fun (_, r) -> print_regex r)
    QCheck.Gen.(pair gen_dag gen_regex)

let norm pairs = List.sort_uniq compare pairs

(* --- RPQ: production engine vs matrix oracle, widths 1 and 4 -------------- *)

let prop_rpq_vs_matrix =
  QCheck.Test.make ~count:120 ~name:"pairs_nfa = matrix oracle (widths 1, 4)"
    arb_graph_regex
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let oracle = norm (Matrix_oracle.pairs g r) in
      norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa) = oracle
      && norm (Rpq_eval.pairs_nfa ~pool:pool4 g nfa) = oracle)

(* --- RPQ: NFA pipeline vs minimized-DFA pipeline -------------------------- *)

let prop_rpq_nfa_vs_dfa =
  QCheck.Test.make ~count:120 ~name:"pairs_nfa: Glushkov = minimized DFA (widths 1, 4)"
    arb_graph_regex
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let dfa_nfa = Dfa.to_nfa (Dfa.minimize (Dfa.of_nfa nfa)) in
      let reference = norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa) in
      norm (Rpq_eval.pairs_nfa ~pool:pool1 g dfa_nfa) = reference
      && norm (Rpq_eval.pairs_nfa ~pool:pool4 g dfa_nfa) = reference)

(* --- RPQ: product BFS vs naive path enumeration on DAGs ------------------- *)

let prop_rpq_vs_naive_on_dags =
  QCheck.Test.make ~count:120 ~name:"pairs_nfa = pairs_naive on DAGs (widths 1, 4)"
    arb_dag_regex
    (fun (g, r) ->
      (* Acyclic, so every path has length < nb_nodes: enumeration up to
         that bound is the complete answer set. *)
      let naive = norm (Rpq_eval.pairs_naive g r ~max_len:(Elg.nb_nodes g)) in
      let nfa = Nfa.of_regex r in
      norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa) = naive
      && norm (Rpq_eval.pairs_nfa ~pool:pool4 g nfa) = naive)

(* --- RPQ: naive is sound on cyclic graphs --------------------------------- *)

let prop_naive_sound_on_cycles =
  QCheck.Test.make ~count:120 ~name:"pairs_naive (bounded) is a subset of pairs_nfa"
    arb_graph_regex
    (fun (g, r) ->
      let full = Rpq_eval.pairs_nfa ~pool:pool1 g (Nfa.of_regex r) in
      List.for_all
        (fun uv -> List.mem uv full)
        (Rpq_eval.pairs_naive g r ~max_len:3))

(* --- CRPQ: pairwise joins vs worst-case-optimal join ---------------------- *)

let gen_crpq =
  (* 2–3 atoms over up to three variables: cyclic shapes included. *)
  QCheck.Gen.(
    let gen_var = oneofl [ "x"; "y"; "z" ] in
    let gen_atom =
      map3
        (fun re x y -> { Crpq.re; x = Crpq.TVar x; y = Crpq.TVar y })
        gen_regex gen_var gen_var
    in
    list_size (int_range 2 3) gen_atom >|= fun atoms ->
    let vars =
      List.concat_map
        (fun a ->
          List.filter_map
            (function Crpq.TVar v -> Some v | Crpq.TConst _ -> None)
            [ a.Crpq.x; a.Crpq.y ])
        atoms
      |> List.sort_uniq compare
    in
    Crpq.make ~head:vars ~atoms)

let arb_graph_crpq =
  QCheck.make
    ~print:(fun (_, q) ->
      String.concat " , "
        (List.map (fun a -> print_regex a.Crpq.re) (Crpq.atoms q)))
    QCheck.Gen.(pair gen_graph gen_crpq)

let prop_crpq_vs_wcoj =
  QCheck.Test.make ~count:120 ~name:"Crpq.eval = Crpq_wcoj.eval (widths 1, 4)"
    arb_graph_crpq
    (fun (g, q) ->
      let reference = norm (Crpq.eval ~pool:pool1 g q) in
      norm (Crpq_wcoj.eval ~pool:pool1 g q) = reference
      && norm (Crpq.eval ~pool:pool4 g q) = reference
      && norm (Crpq_wcoj.eval ~pool:pool4 g q) = reference)

(* --- telemetry does not change answers ------------------------------------ *)

let prop_obs_transparent =
  (* An enabled sink must be observation-only: identical answers with and
     without metrics attached, and the counted work must be non-zero
     whenever there are answers. *)
  QCheck.Test.make ~count:120 ~name:"attaching a metrics sink changes nothing"
    arb_graph_regex
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let plain = Rpq_eval.pairs_nfa ~pool:pool1 g nfa in
      let metrics = Metrics.create () in
      let obs = Obs.make ~metrics () in
      let counted = Rpq_eval.pairs_nfa ~pool:pool1 ~obs g nfa in
      counted = plain
      && (plain = []
         || List.assoc_opt "rpq.answers" (Metrics.counters metrics)
            = Some (List.length plain)))

let () =
  Alcotest.run "differential"
    [
      ( "rpq",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rpq_vs_matrix;
            prop_rpq_nfa_vs_dfa;
            prop_rpq_vs_naive_on_dags;
            prop_naive_sound_on_cycles;
          ] );
      ( "crpq",
        List.map QCheck_alcotest.to_alcotest [ prop_crpq_vs_wcoj ] );
      ( "telemetry",
        List.map QCheck_alcotest.to_alcotest [ prop_obs_transparent ] );
    ]
