(* Bit-parallel kernel suite: the word-packed multi-source engine
   ([Rpq_bitset]) must be answer-for-answer interchangeable with the
   scalar stamped-array engine and with the boolean-matrix semiring
   oracle, at pool widths 1 and 4; under a budget its Partial payload
   must be a subset of the full answer set; and the 63-sources-per-word
   packing must be exercised right at the block boundaries
   (62/63/64/65 sources). *)

let pool1 = Pool.create ~size:1 ()
let pool4 = Pool.create ~size:4 ()

(* Pin the kernel for the extent of [f], then restore the
   environment-driven default so tests compose in any order. *)
let with_bitset b f =
  Rpq_bitset.set_enabled b;
  Fun.protect ~finally:Rpq_bitset.clear_enabled f

(* --- boolean-matrix semiring oracle (no automaton, no BFS) ---------------- *)

module Matrix_oracle = struct
  let mul n a b =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let rec hit k = k < n && ((a.(i).(k) && b.(k).(j)) || hit (k + 1)) in
            hit 0))

  let union n a b =
    Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) || b.(i).(j)))

  let identity n = Array.init n (fun i -> Array.init n (fun j -> i = j))

  let closure n a =
    let m = ref (identity n) in
    let stable = ref false in
    while not !stable do
      let next = union n !m (mul n !m a) in
      if next = !m then stable := true else m := next
    done;
    !m

  let of_sym g sym =
    let n = Elg.nb_nodes g in
    let m = Array.make_matrix n n false in
    for e = 0 to Elg.nb_edges g - 1 do
      if Sym.matches sym (Elg.label g e) then
        m.(Elg.src g e).(Elg.tgt g e) <- true
    done;
    m

  let rec eval g = function
    | Regex.Eps -> identity (Elg.nb_nodes g)
    | Regex.Atom sym -> of_sym g sym
    | Regex.Seq (a, b) -> mul (Elg.nb_nodes g) (eval g a) (eval g b)
    | Regex.Alt (a, b) -> union (Elg.nb_nodes g) (eval g a) (eval g b)
    | Regex.Star a -> closure (Elg.nb_nodes g) (eval g a)

  let pairs g r =
    let m = eval g r in
    let acc = ref [] in
    for i = Elg.nb_nodes g - 1 downto 0 do
      for j = Elg.nb_nodes g - 1 downto 0 do
        if m.(i).(j) then acc := (i, j) :: !acc
      done
    done;
    !acc
end

(* --- generators ----------------------------------------------------------- *)

let gen_graph =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    Generators.random_graph ~seed ~nodes:6 ~edges:10 ~labels:[ "a"; "b" ])

let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 7) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Regex.Eps;
              map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b" ]);
              return (Regex.Atom Sym.Any);
            ]
        else
          oneof
            [
              map2 (fun a b -> Regex.Seq (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Regex.Alt (a, b)) (self (size / 2)) (self (size / 2));
              map (fun a -> Regex.Star a) (self (size - 1));
            ]))

let print_regex = Regex.to_string Sym.to_string

let arb_graph_regex =
  QCheck.make ~print:(fun (_, r) -> print_regex r)
    QCheck.Gen.(pair gen_graph gen_regex)

let norm pairs = List.sort_uniq compare pairs

(* --- equivalence: bitset = scalar = matrix oracle, widths 1 and 4 --------- *)

let prop_bitset_vs_scalar_vs_matrix =
  QCheck.Test.make ~count:150
    ~name:"bitset = scalar = matrix oracle (widths 1, 4)" arb_graph_regex
    (fun (g, r) ->
      let oracle = norm (Matrix_oracle.pairs g r) in
      let nfa = Nfa.of_regex r in
      let bit1 =
        with_bitset true (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
      and bit4 =
        with_bitset true (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool4 g nfa))
      and sca1 =
        with_bitset false (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
      and sca4 =
        with_bitset false (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool4 g nfa))
      in
      bit1 = oracle && bit4 = oracle && sca1 = oracle && sca4 = oracle)

(* --- budgets: Partial is a subset, Complete is everything ------------------ *)

let arb_budgeted =
  QCheck.make
    ~print:(fun ((_, r), k) -> Printf.sprintf "%s / max_steps=%d" (print_regex r) k)
    QCheck.Gen.(pair (pair gen_graph gen_regex) (int_range 1 60))

let prop_partial_subset_under_budget =
  QCheck.Test.make ~count:150
    ~name:"bitset under step budget: Partial subset / Complete equal"
    arb_budgeted
    (fun ((g, r), max_steps) ->
      with_bitset true (fun () ->
          let full = norm (Rpq_eval.pairs g r) in
          let gov = Governor.make ~max_steps () in
          match Rpq_eval.pairs_bounded gov g r with
          | Governor.Complete ps -> norm ps = full
          | Governor.Partial (ps, _) ->
              List.for_all (fun uv -> List.mem uv full) ps
          | Governor.Aborted _ -> true))

let prop_result_cap_exact =
  (* [emit_many] must admit exactly up to the cap, not a word-granular
     approximation of it. *)
  QCheck.Test.make ~count:150 ~name:"bitset result cap is exact" arb_graph_regex
    (fun (g, r) ->
      with_bitset true (fun () ->
          let full = norm (Rpq_eval.pairs g r) in
          let cap = 3 in
          let gov = Governor.make ~max_results:cap () in
          let ps = Governor.payload ~default:[] (Rpq_eval.pairs_bounded gov g r) in
          List.length ps = min cap (List.length full)
          && List.for_all (fun uv -> List.mem uv full) ps))

(* --- block boundaries: 62 / 63 / 64 / 65 sources --------------------------- *)

(* A star: spoke s_i -a-> hub -b-> t.  Under a.b exactly the spokes are
   multi-source candidates, so [m] spokes occupy [nb_blocks m] words. *)
let star m =
  let nodes =
    "hub" :: "t" :: List.init m (Printf.sprintf "s%d")
  in
  let edges =
    ("eb", "hub", "b", "t")
    :: List.init m (fun i ->
           (Printf.sprintf "ea%d" i, Printf.sprintf "s%d" i, "a", "hub"))
  in
  Elg.make ~nodes ~edges

let re_ab = Regex.Seq (Regex.Atom (Sym.Lbl "a"), Regex.Atom (Sym.Lbl "b"))

(* The benchmark's high-overlap workload, shrunk: every spoke crosses the
   same core clique, which drives the kernel down its dense-emission
   path (most of the graph reached per block) — the sparse touched-scan
   path is what the random QCheck graphs exercise. *)
let test_hub_equivalence () =
  let g = Generators.hub ~spokes:10 ~core:4 ~targets:2 in
  let r =
    Regex.Seq
      ( Regex.Atom (Sym.Lbl "a"),
        Regex.Seq (Regex.Star (Regex.Atom (Sym.Lbl "b")), Regex.Atom (Sym.Lbl "c")) )
  in
  let oracle = norm (Matrix_oracle.pairs g r) in
  let nfa = Nfa.of_regex r in
  let bit =
    with_bitset true (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
  and sca =
    with_bitset false (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
  in
  Alcotest.(check bool) "bitset = oracle on hub" true (bit = oracle);
  Alcotest.(check bool) "scalar = oracle on hub" true (sca = oracle);
  Alcotest.(check int) "every spoke reaches every sink" 20 (List.length bit)

let test_block_boundaries () =
  List.iter
    (fun m ->
      let g = star m in
      let t = Elg.node_id g "t" in
      let expected =
        norm (List.init m (fun i -> (Elg.node_id g (Printf.sprintf "s%d" i), t)))
      in
      let metrics = Metrics.create () in
      let obs = Obs.make ~metrics () in
      let got =
        with_bitset true (fun () ->
            norm (Rpq_eval.pairs ~pool:pool4 ~obs g re_ab))
      in
      Alcotest.(check bool)
        (Printf.sprintf "answers at %d sources" m)
        true (got = expected);
      Alcotest.(check (option int))
        (Printf.sprintf "blocks at %d sources" m)
        (Some (Rpq_bitset.nb_blocks m))
        (List.assoc_opt "rpq.bitset.blocks" (Metrics.counters metrics)))
    [ 62; 63; 64; 65 ]

let test_targets_boundaries () =
  (* The serve-mode entry point: per-source target slices must line up
     with their sources across the word boundary. *)
  List.iter
    (fun m ->
      let g = star m in
      let t = Elg.node_id g "t" in
      let hub = Elg.node_id g "hub" in
      let p = Product.make g (Nfa.of_regex re_ab) in
      let sources =
        Array.append
          (Array.init m (fun i -> Elg.node_id g (Printf.sprintf "s%d" i)))
          [| hub; t |]
      in
      let out =
        with_bitset true (fun () ->
            Rpq_bitset.targets (Governor.unlimited ()) p ~sources)
      in
      Alcotest.(check int)
        (Printf.sprintf "slices at %d spokes" m)
        (m + 2) (Array.length out);
      for i = 0 to m - 1 do
        Alcotest.(check (list int))
          (Printf.sprintf "spoke %d of %d" i m)
          [ t ] out.(i)
      done;
      Alcotest.(check (list int)) "hub reaches nothing" [] out.(m);
      Alcotest.(check (list int)) "t reaches nothing" [] out.(m + 1))
    [ 62; 63; 64; 65 ]

let () =
  Alcotest.run "bitset"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bitset_vs_scalar_vs_matrix;
            prop_partial_subset_under_budget;
            prop_result_cap_exact;
          ] );
      ( "blocks",
        [
          Alcotest.test_case "boundary sources 62-65" `Quick
            test_block_boundaries;
          Alcotest.test_case "targets slicing 62-65" `Quick
            test_targets_boundaries;
          Alcotest.test_case "hub workload equivalence" `Quick
            test_hub_equivalence;
        ] );
    ]
