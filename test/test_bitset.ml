(* Bit-parallel kernel suite: the word-packed multi-source engine
   ([Rpq_bitset]) must be answer-for-answer interchangeable with the
   scalar stamped-array engine and with the boolean-matrix semiring
   oracle — at pool widths 1 and 4, and under every frontier direction
   (forced push, forced pull, adaptive); under a budget its Partial
   payload must be a subset of the full answer set (in pull sweeps
   too); the 63-sources-per-word packing must be exercised right at the
   block boundaries (62/63/64/65 sources) in both directions; and the
   count-only mode must count without materializing (the
   [rpq.bitset.materialized] counter stays at zero). *)

let pool1 = Pool.create ~size:1 ()
let pool4 = Pool.create ~size:4 ()

(* Pin the kernel for the extent of [f], then restore the
   environment-driven default so tests compose in any order. *)
let with_bitset b f =
  Rpq_bitset.set_enabled b;
  Fun.protect ~finally:Rpq_bitset.clear_enabled f

(* Pin the frontier direction for the extent of [f]. *)
let with_pull m f =
  Rpq_bitset.set_pull_mode m;
  Fun.protect ~finally:Rpq_bitset.clear_pull_mode f

let pull_modes =
  [
    ("push", Rpq_bitset.Always_push);
    ("pull", Rpq_bitset.Always_pull);
    ("adaptive", Rpq_bitset.Adaptive Rpq_bitset.default_pull_alpha);
    (* An aggressive ratio so adaptive runs actually mix directions on
       tiny graphs instead of degenerating to all-push. *)
    ("adaptive-eager", Rpq_bitset.Adaptive 1_000);
  ]

(* --- boolean-matrix semiring oracle (no automaton, no BFS) ---------------- *)

module Matrix_oracle = struct
  let mul n a b =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let rec hit k = k < n && ((a.(i).(k) && b.(k).(j)) || hit (k + 1)) in
            hit 0))

  let union n a b =
    Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) || b.(i).(j)))

  let identity n = Array.init n (fun i -> Array.init n (fun j -> i = j))

  let closure n a =
    let m = ref (identity n) in
    let stable = ref false in
    while not !stable do
      let next = union n !m (mul n !m a) in
      if next = !m then stable := true else m := next
    done;
    !m

  let of_sym g sym =
    let n = Elg.nb_nodes g in
    let m = Array.make_matrix n n false in
    for e = 0 to Elg.nb_edges g - 1 do
      if Sym.matches sym (Elg.label g e) then
        m.(Elg.src g e).(Elg.tgt g e) <- true
    done;
    m

  let rec eval g = function
    | Regex.Eps -> identity (Elg.nb_nodes g)
    | Regex.Atom sym -> of_sym g sym
    | Regex.Seq (a, b) -> mul (Elg.nb_nodes g) (eval g a) (eval g b)
    | Regex.Alt (a, b) -> union (Elg.nb_nodes g) (eval g a) (eval g b)
    | Regex.Star a -> closure (Elg.nb_nodes g) (eval g a)

  let pairs g r =
    let m = eval g r in
    let acc = ref [] in
    for i = Elg.nb_nodes g - 1 downto 0 do
      for j = Elg.nb_nodes g - 1 downto 0 do
        if m.(i).(j) then acc := (i, j) :: !acc
      done
    done;
    !acc
end

(* --- generators ----------------------------------------------------------- *)

let gen_graph =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    Generators.random_graph ~seed ~nodes:6 ~edges:10 ~labels:[ "a"; "b" ])

let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 7) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Regex.Eps;
              map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b" ]);
              return (Regex.Atom Sym.Any);
            ]
        else
          oneof
            [
              map2 (fun a b -> Regex.Seq (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Regex.Alt (a, b)) (self (size / 2)) (self (size / 2));
              map (fun a -> Regex.Star a) (self (size - 1));
            ]))

let print_regex = Regex.to_string Sym.to_string

let arb_graph_regex =
  QCheck.make ~print:(fun (_, r) -> print_regex r)
    QCheck.Gen.(pair gen_graph gen_regex)

let norm pairs = List.sort_uniq compare pairs

(* --- equivalence: bitset = scalar = matrix oracle, widths 1 and 4 --------- *)

let prop_bitset_vs_scalar_vs_matrix =
  QCheck.Test.make ~count:150
    ~name:"bitset (push/pull/adaptive) = scalar = matrix oracle (widths 1, 4)"
    arb_graph_regex
    (fun (g, r) ->
      let oracle = norm (Matrix_oracle.pairs g r) in
      let nfa = Nfa.of_regex r in
      let sca1 =
        with_bitset false (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
      and sca4 =
        with_bitset false (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool4 g nfa))
      in
      sca1 = oracle && sca4 = oracle
      && List.for_all
           (fun (_, m) ->
             with_bitset true (fun () ->
                 with_pull m (fun () ->
                     norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa) = oracle
                     && norm (Rpq_eval.pairs_nfa ~pool:pool4 g nfa) = oracle)))
           pull_modes)

(* --- budgets: Partial is a subset, Complete is everything ------------------ *)

let arb_budgeted =
  QCheck.make
    ~print:(fun ((_, r), k) -> Printf.sprintf "%s / max_steps=%d" (print_regex r) k)
    QCheck.Gen.(pair (pair gen_graph gen_regex) (int_range 1 60))

let prop_partial_subset_under_budget =
  QCheck.Test.make ~count:150
    ~name:"bitset under step budget: Partial subset / Complete equal"
    arb_budgeted
    (fun ((g, r), max_steps) ->
      with_bitset true (fun () ->
          let full = norm (Rpq_eval.pairs g r) in
          let gov = Governor.make ~max_steps () in
          match Rpq_eval.pairs_bounded gov g r with
          | Governor.Complete ps -> norm ps = full
          | Governor.Partial (ps, _) ->
              List.for_all (fun uv -> List.mem uv full) ps
          | Governor.Aborted _ -> true))

let prop_partial_subset_under_budget_pull =
  (* A budget trip mid-pull-sweep must also leave only true
     reachability facts behind. *)
  QCheck.Test.make ~count:150
    ~name:"pull sweeps under step budget: Partial subset / Complete equal"
    arb_budgeted
    (fun ((g, r), max_steps) ->
      with_bitset true (fun () ->
          with_pull Rpq_bitset.Always_pull (fun () ->
              let full = norm (Rpq_eval.pairs g r) in
              let gov = Governor.make ~max_steps () in
              match Rpq_eval.pairs_bounded gov g r with
              | Governor.Complete ps -> norm ps = full
              | Governor.Partial (ps, _) ->
                  List.for_all (fun uv -> List.mem uv full) ps
              | Governor.Aborted _ -> true)))

let prop_count_matches_pairs =
  (* Count-only mode: same cardinality as the materializing run, zero
     materialized answers (the O(blocks) allocation claim), under every
     direction. *)
  QCheck.Test.make ~count:150 ~name:"count-only = |pairs|, materializes nothing"
    arb_graph_regex
    (fun (g, r) ->
      let expected = List.length (norm (Matrix_oracle.pairs g r)) in
      List.for_all
        (fun (_, m) ->
          with_bitset true (fun () ->
              with_pull m (fun () ->
                  let metrics = Metrics.create () in
                  let obs = Obs.make ~metrics () in
                  let got = Rpq_eval.count_pairs ~pool:pool1 ~obs g r in
                  got = expected
                  && Option.value ~default:0
                       (List.assoc_opt "rpq.bitset.materialized"
                          (Metrics.counters metrics))
                     = 0)))
        pull_modes)

let prop_count_result_cap =
  QCheck.Test.make ~count:100 ~name:"count-only respects the result cap"
    arb_graph_regex
    (fun (g, r) ->
      let full = List.length (norm (Matrix_oracle.pairs g r)) in
      with_bitset true (fun () ->
          let cap = 3 in
          let gov = Governor.make ~max_results:cap () in
          let got =
            Governor.payload ~default:0
              (Rpq_eval.count_pairs_bounded ~pool:pool1 gov g r)
          in
          got = min cap full))

let prop_check_matches_oracle =
  (* The kernel first-k path behind [check]: membership must agree with
     the oracle and the scalar fallback for every (src, tgt). *)
  QCheck.Test.make ~count:75 ~name:"kernel check = scalar check = oracle"
    arb_graph_regex
    (fun (g, r) ->
      let oracle = norm (Matrix_oracle.pairs g r) in
      let n = Elg.nb_nodes g in
      let ok = ref true in
      for src = 0 to n - 1 do
        for tgt = 0 to n - 1 do
          let expected = List.mem (src, tgt) oracle in
          let kern =
            with_bitset true (fun () -> Rpq_eval.check g r ~src ~tgt)
          in
          let scal =
            with_bitset false (fun () -> Rpq_eval.check g r ~src ~tgt)
          in
          if kern <> expected || scal <> expected then ok := false
        done
      done;
      !ok)

let prop_result_cap_exact =
  (* [emit_many] must admit exactly up to the cap, not a word-granular
     approximation of it. *)
  QCheck.Test.make ~count:150 ~name:"bitset result cap is exact" arb_graph_regex
    (fun (g, r) ->
      with_bitset true (fun () ->
          let full = norm (Rpq_eval.pairs g r) in
          let cap = 3 in
          let gov = Governor.make ~max_results:cap () in
          let ps = Governor.payload ~default:[] (Rpq_eval.pairs_bounded gov g r) in
          List.length ps = min cap (List.length full)
          && List.for_all (fun uv -> List.mem uv full) ps))

(* --- block boundaries: 62 / 63 / 64 / 65 sources --------------------------- *)

(* A star: spoke s_i -a-> hub -b-> t.  Under a.b exactly the spokes are
   multi-source candidates, so [m] spokes occupy [nb_blocks m] words. *)
let star m =
  let nodes =
    "hub" :: "t" :: List.init m (Printf.sprintf "s%d")
  in
  let edges =
    ("eb", "hub", "b", "t")
    :: List.init m (fun i ->
           (Printf.sprintf "ea%d" i, Printf.sprintf "s%d" i, "a", "hub"))
  in
  Elg.make ~nodes ~edges

let re_ab = Regex.Seq (Regex.Atom (Sym.Lbl "a"), Regex.Atom (Sym.Lbl "b"))

(* The benchmark's high-overlap workload, shrunk: every spoke crosses the
   same core clique, which drives the kernel down its dense-emission
   path (most of the graph reached per block) — the sparse touched-scan
   path is what the random QCheck graphs exercise. *)
let test_hub_equivalence () =
  let g = Generators.hub ~spokes:10 ~core:4 ~targets:2 in
  let r =
    Regex.Seq
      ( Regex.Atom (Sym.Lbl "a"),
        Regex.Seq (Regex.Star (Regex.Atom (Sym.Lbl "b")), Regex.Atom (Sym.Lbl "c")) )
  in
  let oracle = norm (Matrix_oracle.pairs g r) in
  let nfa = Nfa.of_regex r in
  let bit =
    with_bitset true (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
  and sca =
    with_bitset false (fun () -> norm (Rpq_eval.pairs_nfa ~pool:pool1 g nfa))
  in
  Alcotest.(check bool) "bitset = oracle on hub" true (bit = oracle);
  Alcotest.(check bool) "scalar = oracle on hub" true (sca = oracle);
  Alcotest.(check int) "every spoke reaches every sink" 20 (List.length bit)

let test_block_boundaries () =
  List.iter
    (fun (mname, pm) ->
      List.iter
        (fun m ->
          let g = star m in
          let t = Elg.node_id g "t" in
          let expected =
            norm
              (List.init m (fun i -> (Elg.node_id g (Printf.sprintf "s%d" i), t)))
          in
          let metrics = Metrics.create () in
          let obs = Obs.make ~metrics () in
          let got =
            with_bitset true (fun () ->
                with_pull pm (fun () ->
                    norm (Rpq_eval.pairs ~pool:pool4 ~obs g re_ab)))
          in
          Alcotest.(check bool)
            (Printf.sprintf "answers at %d sources (%s)" m mname)
            true (got = expected);
          Alcotest.(check (option int))
            (Printf.sprintf "blocks at %d sources (%s)" m mname)
            (Some (Rpq_bitset.nb_blocks m))
            (List.assoc_opt "rpq.bitset.blocks" (Metrics.counters metrics));
          (* Positive control for the count-only O(blocks) pin: a
             materializing run on an ε-free query must account for every
             answer under [rpq.bitset.materialized]. *)
          Alcotest.(check (option int))
            (Printf.sprintf "materialized at %d sources (%s)" m mname)
            (Some m)
            (List.assoc_opt "rpq.bitset.materialized"
               (Metrics.counters metrics)))
        [ 62; 63; 64; 65 ])
    [ ("push", Rpq_bitset.Always_push); ("pull", Rpq_bitset.Always_pull) ]

let test_targets_boundaries () =
  (* The serve-mode entry point: per-source target slices must line up
     with their sources across the word boundary, in both directions. *)
  List.iter
    (fun (mname, pm) ->
      List.iter
        (fun m ->
          let g = star m in
          let t = Elg.node_id g "t" in
          let hub = Elg.node_id g "hub" in
          let p = Product.make g (Nfa.of_regex re_ab) in
          let sources =
            Array.append
              (Array.init m (fun i -> Elg.node_id g (Printf.sprintf "s%d" i)))
              [| hub; t |]
          in
          let out =
            with_bitset true (fun () ->
                with_pull pm (fun () ->
                    Rpq_bitset.targets (Governor.unlimited ()) p ~sources))
          in
          Alcotest.(check int)
            (Printf.sprintf "slices at %d spokes (%s)" m mname)
            (m + 2) (Array.length out);
          for i = 0 to m - 1 do
            Alcotest.(check (array int))
              (Printf.sprintf "spoke %d of %d (%s)" i m mname)
              [| t |] out.(i)
          done;
          Alcotest.(check (array int))
            (Printf.sprintf "hub reaches nothing (%s)" mname)
            [||] out.(m);
          Alcotest.(check (array int))
            (Printf.sprintf "t reaches nothing (%s)" mname)
            [||]
            out.(m + 1))
        [ 62; 63; 64; 65 ])
    [ ("push", Rpq_bitset.Always_push); ("pull", Rpq_bitset.Always_pull) ]

let () =
  Alcotest.run "bitset"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bitset_vs_scalar_vs_matrix;
            prop_partial_subset_under_budget;
            prop_partial_subset_under_budget_pull;
            prop_result_cap_exact;
            prop_count_matches_pairs;
            prop_count_result_cap;
            prop_check_matches_oracle;
          ] );
      ( "blocks",
        [
          Alcotest.test_case "boundary sources 62-65" `Quick
            test_block_boundaries;
          Alcotest.test_case "targets slicing 62-65" `Quick
            test_targets_boundaries;
          Alcotest.test_case "hub workload equivalence" `Quick
            test_hub_equivalence;
        ] );
    ]
