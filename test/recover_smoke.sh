#!/bin/sh
# Crash-recovery smoke for `gqd --listen --wal`: seed a server, stream
# synchronous add-edge writes recording every acknowledgement, SIGKILL
# the server mid-stream, then prove the durability contract offline and
# on restart:
#   - every acknowledged write is present after recovery;
#   - nothing beyond the acknowledged prefix survives except at most the
#     single in-flight write the kill interrupted (appended+fsynced but
#     unacknowledged — durable-but-unreported is allowed, loss is not);
#   - a server restarted on the same WAL directory serves the recovered
#     state and continues the LSN sequence.
# Run by `make check-recovery` at GQ_DOMAINS=1 and 4.
set -eu

GQD=$1
GQD_ABS=$(cd "$(dirname "$GQD")" && pwd)/$(basename "$GQD")
tmp=$(mktemp -d)
SRV=
trap 'kill "${SRV:-}" 2> /dev/null || true; rm -rf "$tmp"' EXIT

fail() {
  echo "recover-smoke: $1" >&2
  shift
  for f in "$@"; do cat "$f" >&2 || true; done
  exit 1
}

json_int() { # json_int FILE KEY
  sed -n "s/.*\"$2\":\\([0-9][0-9]*\\).*/\\1/p" "$1" | head -n 1
}

"$GQD_ABS" demo > "$tmp/bank.graph"
SOCK="$tmp/gq.sock"
WAL="$tmp/wal"

( cd "$tmp" && exec "$GQD_ABS" --listen "unix:$SOCK" \
    --wal "$WAL" --fsync always \
    > /dev/null 2> "$tmp/server.err" ) &
SRV=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || fail "server socket never appeared" "$tmp/server.err"
  sleep 0.05
done

printf 'load bank.graph\n' | "$GQD_ABS" client "unix:$SOCK" > "$tmp/load.out"
grep -q '"status":"ok"' "$tmp/load.out" \
  || fail "load failed" "$tmp/load.out" "$tmp/server.err"
[ -f "$WAL/checkpoint-1.gqb" ] || fail "load wrote no checkpoint"

# Sequential writer: one connection per write, so at most one write is
# ever in flight.  Reply N in acked.jsonl acknowledges edge rN.
: > "$tmp/acked.jsonl"
(
  set +e
  i=1
  while [ $i -le 500 ]; do
    out=$(printf 'add-edge r%d s%d Transfer t%d\n' "$i" "$i" "$i" \
      | "$GQD_ABS" client "unix:$SOCK" 2> /dev/null) || break
    [ -n "$out" ] || break
    printf '%s\n' "$out" >> "$tmp/acked.jsonl"
    i=$((i + 1))
  done
) &
WRITER=$!

# Kill -9 once a healthy prefix is acknowledged, mid-stream.
i=0
while :; do
  n=$(wc -l < "$tmp/acked.jsonl")
  [ "$n" -ge 15 ] && break
  i=$((i + 1))
  [ "$i" -le 200 ] || fail "writer never reached 15 acks" "$tmp/server.err"
  sleep 0.05
done
kill -9 "$SRV"
wait "$SRV" 2> /dev/null || true
SRV=
wait "$WRITER" 2> /dev/null || true

acked=$(grep -c '"status":"ok"' "$tmp/acked.jsonl")
[ "$acked" -eq "$(wc -l < "$tmp/acked.jsonl")" ] \
  || fail "a write was acknowledged with an error" "$tmp/acked.jsonl"
grep -q '"durable":true' "$tmp/acked.jsonl" \
  || fail "acks carry no durable:true" "$tmp/acked.jsonl"
[ "$acked" -lt 500 ] || fail "writer finished before the kill (not mid-stream)"
echo "recover-smoke: $acked writes acknowledged before SIGKILL"

# Offline recovery: acked prefix intact, no phantoms beyond one in-flight.
"$GQD_ABS" recover "$WAL" --out "$tmp/recovered.graph" \
  > "$tmp/recover.json" 2> "$tmp/recover.err" \
  || fail "offline recovery failed" "$tmp/recover.err"
i=1
while [ $i -le "$acked" ]; do
  grep -q "^edge r$i " "$tmp/recovered.graph" \
    || fail "acknowledged write r$i lost (acked=$acked)" "$tmp/recover.json"
  i=$((i + 1))
done
recovered_r=$(grep -c '^edge r' "$tmp/recovered.graph")
extra=$((recovered_r - acked))
{ [ "$extra" -eq 0 ] || [ "$extra" -eq 1 ]; } \
  || fail "$extra phantom writes beyond the acked prefix (acked=$acked)" \
       "$tmp/recover.json"
if [ "$extra" -eq 1 ]; then
  next=$((acked + 1))
  grep -q "^edge r$next " "$tmp/recovered.graph" \
    || fail "phantom write is not the in-flight r$next"
fi
replayed=$(json_int "$tmp/recover.json" replayed)
next_lsn=$(json_int "$tmp/recover.json" next_lsn)
nodes=$(json_int "$tmp/recover.json" nodes)
edges=$(json_int "$tmp/recover.json" edges)
[ "$replayed" -ge "$acked" ] || fail "replayed $replayed < acked $acked"
echo "recover-smoke: recovered $nodes nodes, $edges edges ($replayed records, $extra in-flight)"

# wal-dump agrees on the record count.
dumped=$("$GQD_ABS" wal-dump "$WAL" 2> /dev/null | wc -l)
[ "$dumped" -ge "$acked" ] || fail "wal-dump shows $dumped < acked $acked"

# Restart on the same directory: recovered state served, LSNs continue.
SOCK2="$tmp/gq2.sock"
( cd "$tmp" && exec "$GQD_ABS" --listen "unix:$SOCK2" \
    --wal "$WAL" --fsync always \
    > /dev/null 2> "$tmp/server2.err" ) &
SRV=$!
i=0
while [ ! -S "$SOCK2" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || fail "restarted server never came up" "$tmp/server2.err"
  sleep 0.05
done
grep -q 'wal: recovered' "$tmp/server2.err" \
  || fail "restart printed no recovery banner" "$tmp/server2.err"

printf 'add-edge probe1 pA Transfer pB\nstats\n' \
  | "$GQD_ABS" client "unix:$SOCK2" > "$tmp/probe.out"
probe=$(head -n 1 "$tmp/probe.out")
printf '%s\n' "$probe" | grep -q '"status":"ok"' \
  || fail "probe write failed after restart" "$tmp/probe.out" "$tmp/server2.err"
printf '%s\n' "$probe" > "$tmp/probe.json"
p_nodes=$(json_int "$tmp/probe.json" nodes)
p_edges=$(json_int "$tmp/probe.json" edges)
p_lsn=$(json_int "$tmp/probe.json" wal_lsn)
[ "$p_nodes" -eq $((nodes + 2)) ] && [ "$p_edges" -eq $((edges + 1)) ] \
  || fail "served state $p_nodes/$p_edges != recovered $nodes+2/$edges+1" \
       "$tmp/probe.out"
[ "$p_lsn" -eq "$next_lsn" ] \
  || fail "restart assigned LSN $p_lsn, recovery promised $next_lsn"
grep -q '"wal":{' "$tmp/probe.out" || fail "stats carry no wal object" "$tmp/probe.out"

kill "$SRV"
wait "$SRV" || fail "graceful drain exited nonzero" "$tmp/server2.err"
SRV=
echo "recover-smoke: ok (acked=$acked, restart lsn=$p_lsn)"
