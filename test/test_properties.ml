(* Cross-engine differential properties: independent implementations of the
   same semantics must agree on random inputs.  These are the "widen
   coverage" tests: every property here ties two or more subsystems
   together. *)

let gen_small_graph =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    Generators.random_graph ~seed ~nodes:5 ~edges:8 ~labels:[ "a"; "b" ])

let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 7) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Regex.Eps;
              map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b" ]);
              return (Regex.Atom Sym.Any);
            ]
        else
          oneof
            [
              map2 (fun a b -> Regex.Seq (a, b)) (self (size / 2)) (self (size / 2));
              map2 (fun a b -> Regex.Alt (a, b)) (self (size / 2)) (self (size / 2));
              map (fun a -> Regex.Star a) (self (size - 1));
            ]))

let arb_graph_regex =
  QCheck.make
    ~print:(fun (_, r) -> Regex.to_string Sym.to_string r)
    QCheck.Gen.(pair gen_small_graph gen_regex)

(* --- simplification preserves the language ------------------------------- *)

let prop_simplify_preserves_language =
  QCheck.Test.make ~count:300 ~name:"simplify preserves language"
    (QCheck.make ~print:(Regex.to_string Sym.to_string) gen_regex)
    (fun r ->
      let s = Regex_simplify.simplify r in
      Regex.size s <= Regex.size r
      && Dfa.equiv (Nfa.of_regex r) (Nfa.of_regex s))

let prop_simplify_kills_nested_stars =
  QCheck.Test.make ~count:100 ~name:"simplify(star^k a) = star a"
    (QCheck.make QCheck.Gen.(int_range 1 6))
    (fun k ->
      let rec nest k =
        if k = 0 then Regex.Atom (Sym.Lbl "a") else Regex.Star (nest (k - 1))
      in
      Regex_simplify.simplify (nest k) = Regex.Star (Regex.Atom (Sym.Lbl "a")))

(* --- three path-enumeration implementations agree ------------------------ *)

let prop_enumeration_triangle =
  QCheck.Test.make ~count:60 ~name:"Path_modes = Pmr.spaths = length-order"
    arb_graph_regex
    (fun (g, r) ->
      List.for_all
        (fun (src, tgt) ->
          let via_modes =
            Path_modes.enumerate g r ~mode:Path_modes.All ~max_len:3 ~src ~tgt
            |> List.sort Path.compare
          in
          let via_pmr =
            Pmr.spaths_upto g (Pmr.of_rpq g r ~src ~tgt) ~max_len:3
            |> List.filter (fun p -> Path.len p <= 3)
            |> List.sort Path.compare
          in
          let via_seq =
            Path_modes.in_length_order g r ~max_len:3 ~src ~tgt
            |> List.of_seq |> List.sort_uniq Path.compare
          in
          via_modes = via_pmr && via_modes = via_seq)
        [ (0, 1); (2, 3); (4, 0) ])

(* --- counting agrees with enumeration ------------------------------------ *)

let prop_count_matches_enumeration =
  QCheck.Test.make ~count:60 ~name:"count_paths_upto = |enumerate|"
    arb_graph_regex
    (fun (g, r) ->
      List.for_all
        (fun (src, tgt) ->
          let counted = Rpq_count.count_paths_upto g r ~src ~tgt ~max_len:3 in
          let listed =
            Path_modes.enumerate g r ~mode:Path_modes.All ~max_len:3 ~src ~tgt
          in
          Nat_big.to_int counted = Some (List.length listed))
        [ (0, 1); (1, 2) ])

(* --- PMR membership is sound and complete -------------------------------- *)

let prop_pmr_membership =
  QCheck.Test.make ~count:60 ~name:"Pmr.mem = enumerated membership"
    arb_graph_regex
    (fun (g, r) ->
      let src = 0 and tgt = 1 in
      let pmr = Pmr.of_rpq g r ~src ~tgt in
      let inside = Pmr.spaths_upto g pmr ~max_len:3 in
      List.for_all (fun p -> Pmr.mem g pmr p) inside
      &&
      (* Paths to a different target are never members. *)
      let other =
        Path_modes.enumerate g r ~mode:Path_modes.All ~max_len:3 ~src ~tgt:2
      in
      List.for_all (fun p -> tgt = 2 || not (Pmr.mem g pmr p)) other)

(* --- dl-RPQ: fixed-path matching vs graph enumeration --------------------- *)

let gen_dl_expr =
  QCheck.Gen.(
    sized_size (int_range 1 6) @@ fix (fun self size ->
        if size <= 1 then
          oneofl
            [
              Dlrpq.node_any;
              Dlrpq.edge_any;
              Dlrpq.node_test (Etest.Cmp_const ("p", Value.Lt, Value.Int 3));
              Dlrpq.edge_test (Etest.Cmp_const ("p", Value.Gt, Value.Int 0));
              Dlrpq.node_any_cap "z";
            ]
        else
          oneof
            [
              map2 Regex.seq (self (size / 2)) (self (size / 2));
              map2 Regex.alt (self (size / 2)) (self (size / 2));
              map Regex.star (self (size - 1));
            ]))

let prop_dlrpq_checkpath_consistent =
  QCheck.Test.make ~count:60 ~name:"dl-RPQ enumerate => check_path"
    (QCheck.make
       ~print:(fun (seed, r) -> Printf.sprintf "seed=%d %s" seed (Dlrpq.to_string r))
       QCheck.Gen.(pair (int_range 1 1000) gen_dl_expr))
    (fun (seed, r) ->
      let pg =
        Generators.random_pg ~seed ~nodes:4 ~edges:6 ~labels:[ "a" ] ~prop:"p"
          ~max_value:4
      in
      (* A modest explicit step budget: random expressions can stutter-
         capture in loops, whose output is legitimately exponential in the
         budget.  check_path's own budget is larger, so containment is the
         right property. *)
      let results = Dlrpq.enumerate_from pg r ~src:0 ~max_len:2 ~max_steps:10 () in
      (* Every enumerated binding reappears when matching the same path
         directly. *)
      List.for_all
        (fun (p, mu) ->
          List.exists (Lbinding.equal mu)
            (Dlrpq.check_path ~max_steps:10 pg r p))
        results)

(* --- GQL typing predicts runtime degree behaviour ------------------------- *)

let prop_typing_predicts_conflicts =
  let patterns_ok =
    [
      "(x)-[z:a]->(y)";
      "(x)(()-[z:a]->()){2}(y)";
      "((x)-[:a]->(x))*";
      "((x) | (x)-[:a]->())";
    ]
  in
  let patterns_bad = [ "(x)((x)-[:a]->())*"; "(x)-[:a]->()((x)-[:b]->())+" ] in
  QCheck.Test.make ~count:20 ~name:"typing accepts/rejects correctly"
    (QCheck.make QCheck.Gen.(int_range 1 50))
    (fun seed ->
      let pg =
        Generators.random_pg ~seed ~nodes:4 ~edges:6 ~labels:[ "a"; "b" ]
          ~prop:"p" ~max_value:2
      in
      List.for_all
        (fun src ->
          let pat = Gql_parse.parse src in
          Gql_typing.well_typed pat
          &&
          match Gql.matches pg pat ~max_len:3 with
          | _ -> true
          | exception Gql.Degree_conflict _ -> false)
        patterns_ok
      && List.for_all
           (fun src -> not (Gql_typing.well_typed (Gql_parse.parse src)))
           patterns_bad)

(* --- canonical DFA keys characterize equivalence --------------------------- *)

let prop_canonical_key_equivalence =
  QCheck.Test.make ~count:150 ~name:"canonical keys agree with equivalence"
    (QCheck.make
       ~print:(fun (r1, r2) ->
         Regex.to_string Sym.to_string r1 ^ " vs " ^ Regex.to_string Sym.to_string r2)
       QCheck.Gen.(pair gen_regex gen_regex))
    (fun (r1, r2) ->
      let labels =
        List.concat_map Sym.mentioned (Regex.atoms r1 @ Regex.atoms r2)
        |> List.sort_uniq String.compare
      in
      let key r =
        Dfa.canonical_key
          (Dfa.minimize (Dfa.of_nfa ~extra_labels:labels (Nfa.of_regex r)))
      in
      Dfa.equiv (Nfa.of_regex r1) (Nfa.of_regex r2) = (key r1 = key r2))

(* --- two-way RPQs conservatively extend one-way --------------------------- *)

let prop_two_way_conservative =
  QCheck.Test.make ~count:60 ~name:"forward-only 2RPQ = RPQ"
    arb_graph_regex
    (fun (g, r) ->
      let two_way = Regex.map (fun sym -> Two_way.Fwd sym) r in
      Two_way.pairs g two_way = Rpq_eval.pairs g r)

(* --- graph IO roundtrip on random property graphs ------------------------- *)

let prop_graph_io_roundtrip =
  QCheck.Test.make ~count:50 ~name:"Graph_io roundtrip on random graphs"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 10_000))
    (fun seed ->
      let pg =
        Generators.random_pg ~seed ~nodes:6 ~edges:10 ~labels:[ "a"; "b" ]
          ~prop:"k" ~max_value:9
      in
      let pg' = Graph_io.parse_string (Graph_io.to_string pg) in
      let g = Pg.elg pg and g' = Pg.elg pg' in
      Elg.nb_nodes g = Elg.nb_nodes g'
      && Elg.nb_edges g = Elg.nb_edges g'
      && List.for_all
           (fun e ->
             let e' = Elg.edge_id g' (Elg.edge_name g e) in
             Elg.label g e = Elg.label g' e'
             && Elg.node_name g (Elg.src g e) = Elg.node_name g' (Elg.src g' e')
             && Pg.edge_prop pg e "k" = Pg.edge_prop pg' e' "k")
           (List.init (Elg.nb_edges g) Fun.id))

(* --- governed evaluation vs unbounded evaluation --------------------------- *)

let prop_governor_ample_agrees =
  QCheck.Test.make ~count:100 ~name:"ample budget = unbounded (rpq + crpq)"
    arb_graph_regex
    (fun (g, r) ->
      let gov = Governor.unlimited () in
      Rpq_eval.pairs_bounded gov g r = Governor.Complete (Rpq_eval.pairs g r)
      &&
      let q =
        Crpq.make ~head:[ "x"; "y" ]
          ~atoms:[ { Crpq.re = r; x = Crpq.TVar "x"; y = Crpq.TVar "y" } ]
      in
      let gov2 = Governor.make ~max_steps:10_000_000 () in
      Crpq.eval_bounded gov2 g q = Governor.Complete (Crpq.eval g q))

let prop_governor_never_superset =
  (* Whatever the budget, a governed run only ever reports true answers:
     the payload is a subset of the unbounded result, never a superset. *)
  QCheck.Test.make ~count:150 ~name:"any budget is never a superset"
    (QCheck.make
       ~print:(fun ((_, r), budget) ->
         Printf.sprintf "%s budget=%d" (Regex.to_string Sym.to_string r) budget)
       QCheck.Gen.(pair (pair gen_small_graph gen_regex) (int_range 0 200)))
    (fun ((g, r), budget) ->
      let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1 in
      let gov = Governor.make ~max_steps:budget () in
      let bounded_pairs =
        Governor.payload ~default:[] (Rpq_eval.pairs_bounded gov g r)
      in
      subset bounded_pairs (Rpq_eval.pairs g r)
      &&
      let q =
        Crpq.make ~head:[ "x"; "y" ]
          ~atoms:
            [
              { Crpq.re = r; x = Crpq.TVar "x"; y = Crpq.TVar "y" };
              { Crpq.re = r; x = Crpq.TVar "y"; y = Crpq.TVar "x" };
            ]
      in
      let gov2 = Governor.make ~max_steps:budget () in
      let bounded_rows = Governor.payload ~default:[] (Crpq.eval_bounded gov2 g q) in
      subset bounded_rows (Crpq.eval g q))

(* --- binding algebra -------------------------------------------------------- *)

let gen_binding =
  QCheck.Gen.(
    list_size (int_range 0 4)
      (pair (oneofl [ "x"; "y"; "z" ])
         (list_size (int_range 1 3)
            (map (fun i -> Path.N i) (int_range 0 5))))
    >|= Lbinding.of_list)

let prop_binding_monoid =
  QCheck.Test.make ~count:200 ~name:"list bindings form a monoid"
    (QCheck.make QCheck.Gen.(triple gen_binding gen_binding gen_binding))
    (fun (m1, m2, m3) ->
      Lbinding.equal
        (Lbinding.concat (Lbinding.concat m1 m2) m3)
        (Lbinding.concat m1 (Lbinding.concat m2 m3))
      && Lbinding.equal (Lbinding.concat Lbinding.empty m1) m1
      && Lbinding.equal (Lbinding.concat m1 Lbinding.empty) m1)

let () =
  Alcotest.run "properties"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_simplify_preserves_language;
            prop_simplify_kills_nested_stars;
            prop_enumeration_triangle;
            prop_count_matches_enumeration;
            prop_pmr_membership;
            prop_dlrpq_checkpath_consistent;
            prop_typing_predicts_conflicts;
            prop_canonical_key_equivalence;
            prop_two_way_conservative;
            prop_graph_io_roundtrip;
            prop_governor_ample_agrees;
            prop_governor_never_superset;
            prop_binding_monoid;
          ] );
    ]
