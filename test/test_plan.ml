(* The plan layer (ISSUE 5): the LRU compilation cache, graph statistics,
   the cost-based CRPQ planner, and the adaptive parallelism policy.
   Deterministic pins on the bank graph plus QCheck properties that the
   planner and the caches never change answers. *)

let bank = Generators.bank_elg ()
let parse = Rpq_parse.parse

(* --- Lru: recency, eviction, generations -------------------------------- *)

let test_lru_eviction () =
  let c = Lru.create ~capacity:2 () in
  Lru.add c ~gen:0 "a" 1;
  Lru.add c ~gen:0 "b" 2;
  (* Touch [a] so [b] becomes the LRU victim of the next insert. *)
  Alcotest.(check (option int)) "a hit" (Some 1) (Lru.find c "a");
  Lru.add c ~gen:0 "c" 3;
  Alcotest.(check int) "still at capacity" 2 (Lru.length c);
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "c present" (Some 3) (Lru.find c "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions c);
  Alcotest.(check int) "hits" 3 (Lru.hits c);
  Alcotest.(check int) "misses" 1 (Lru.misses c);
  (* Replacing an existing key at capacity evicts nothing. *)
  Lru.add c ~gen:0 "c" 30;
  Alcotest.(check int) "replace is not an eviction" 1 (Lru.evictions c);
  Alcotest.(check (option int)) "replaced" (Some 30) (Lru.peek c "c")

let test_lru_generations () =
  let c = Lru.create ~capacity:8 () in
  Lru.add c ~gen:1 "p1" 1;
  Lru.add c ~gen:1 "p2" 2;
  Lru.add c ~gen:2 "q" 3;
  Alcotest.(check int) "drop gen-1 entries" 2 (Lru.drop_generations_except c 2);
  Alcotest.(check (option int)) "survivor" (Some 3) (Lru.peek c "q");
  Alcotest.(check (option int)) "dropped" None (Lru.peek c "p1");
  Alcotest.(check int) "invalidated counter" 2 (Lru.invalidated c);
  Alcotest.(check int) "idempotent" 0 (Lru.drop_generations_except c 2)

(* --- Plan_cache: hit/miss accounting, disabled mode, error paths -------- *)

let test_plan_cache_hits () =
  let pc = Plan_cache.create ~enabled:true () in
  let compile text =
    Plan_cache.compile pc ~flags:"rpq" ~parse:Rpq_parse.parse_res text
  in
  (match compile "a.b*" with
  | Ok c ->
      Alcotest.(check string) "source" "a.b*" c.Plan_cache.source;
      Alcotest.(check (list string)) "symbols" [ "a"; "b" ] c.Plan_cache.symbols
  | Error _ -> Alcotest.fail "compile failed");
  Alcotest.(check int) "first is a miss" 1 (Plan_cache.misses pc);
  ignore (compile "a.b*");
  Alcotest.(check int) "second is a hit" 1 (Plan_cache.hits pc);
  Alcotest.(check int) "one entry" 1 (Plan_cache.length pc);
  (* Same text, different flags: a distinct entry. *)
  ignore (Plan_cache.compile pc ~flags:"other" ~parse:Rpq_parse.parse_res "a.b*");
  Alcotest.(check int) "flags key the cache" 2 (Plan_cache.length pc);
  (* Parse errors are never cached. *)
  (match compile "a.(b" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error _ -> ());
  ignore (compile "a.(b");
  Alcotest.(check int) "errors not stored" 2 (Plan_cache.length pc);
  (* The DFA is shared across hits, built at most once. *)
  match (compile "a.b*", compile "a.b*") with
  | Ok c1, Ok c2 ->
      Alcotest.(check bool) "hit returns the same compiled value" true
        (c1 == c2);
      Alcotest.(check bool) "minimized DFA accepts a.b" true
        (Dfa.accepts (Lazy.force c1.Plan_cache.dfa) [ "a"; "b" ])
  | _ -> Alcotest.fail "recompile failed"

let test_plan_cache_disabled () =
  let pc = Plan_cache.create ~enabled:false () in
  let compile () =
    Plan_cache.compile pc ~flags:"rpq" ~parse:Rpq_parse.parse_res "a*"
  in
  (match compile () with Ok _ -> () | Error _ -> Alcotest.fail "compile");
  (match compile () with Ok _ -> () | Error _ -> Alcotest.fail "compile");
  Alcotest.(check int) "nothing stored" 0 (Plan_cache.length pc);
  Alcotest.(check int) "no hits" 0 (Plan_cache.hits pc);
  Alcotest.(check int) "every request misses" 2 (Plan_cache.misses pc)

(* --- Rpq_compile: product cache + generation invalidation --------------- *)

let test_generation_invalidation () =
  let t = Rpq_compile.create ~enabled:true () in
  let c =
    match Rpq_compile.compile t "Transfer*" with
    | Ok c -> c
    | Error _ -> Alcotest.fail "compile"
  in
  let eval g =
    Governor.payload ~default:[]
      (Rpq_compile.pairs_bounded t (Governor.unlimited ()) g c)
  in
  let before = eval bank in
  Alcotest.(check bool) "product cached after eval" true
    (Rpq_compile.product_cached t bank c);
  ignore (eval bank);
  Alcotest.(check bool) "warm product hits" true (Rpq_compile.product_hits t >= 1);
  (* A new load: graph-dependent entries die, the compiled plan survives. *)
  let other = Generators.clique 4 "Transfer" in
  Rpq_compile.set_generation t (Elg.id other);
  Alcotest.(check int) "products dropped" 0 (Rpq_compile.product_entries t);
  Alcotest.(check bool) "invalidation counted" true
    (Rpq_compile.invalidated t >= 1);
  Alcotest.(check bool) "plan survives the load" true
    (Plan_cache.was_cached (Rpq_compile.plans t) ~flags:"rpq" "Transfer*");
  Alcotest.(check int) "generation recorded" (Elg.id other)
    (Rpq_compile.generation t);
  (* Rebuilt against the new graph, and the old answers are unchanged if
     the old graph comes back. *)
  Alcotest.(check int) "clique pairs" 16 (List.length (eval other));
  Alcotest.(check bool) "bank answers unchanged after invalidation" true
    (eval bank = before)

(* --- Stats: pins on the bank graph -------------------------------------- *)

let test_stats () =
  let st = Stats.get bank in
  Alcotest.(check int) "nodes" (Elg.nb_nodes bank) st.Stats.nb_nodes;
  Alcotest.(check int) "edges" (Elg.nb_edges bank) st.Stats.nb_edges;
  Alcotest.(check int) "Transfer edges" 10
    (Stats.sym_edges st (Stats.Lbl "Transfer"));
  Alcotest.(check int) "unknown label" 0 (Stats.sym_edges st (Stats.Lbl "zzz"));
  Alcotest.(check int) "wildcard = all edges" (Elg.nb_edges bank)
    (Stats.sym_edges st Stats.Any);
  Alcotest.(check bool) "negation excludes the set" true
    (Stats.sym_edges st (Stats.Not [ "Transfer" ])
    <= Elg.nb_edges bank - 10);
  Alcotest.(check bool) "distinct sources <= edges" true
    (Stats.sym_sources st (Stats.Lbl "Transfer") <= 10);
  Alcotest.(check bool) "memoized" true (Stats.get bank == st)

(* --- Par_policy ---------------------------------------------------------- *)

let test_par_policy () =
  let d = Par_policy.decide ~max_width:8 ~sources:10 ~product_edges:10 () in
  Alcotest.(check int) "tiny work stays serial" 1 d.Par_policy.width;
  Alcotest.(check int) "work = sources x edges" 100 d.Par_policy.work;
  Alcotest.(check bool) "below-threshold reason" true
    (d.Par_policy.reason = Par_policy.Below_threshold);
  let d2 =
    Par_policy.decide ~max_width:8 ~sources:1_000_000 ~product_edges:1_000_000
      ()
  in
  Alcotest.(check bool) "work saturates without overflow" true
    (d2.Par_policy.work > 0);
  Alcotest.(check int) "wide work forks up to hardware"
    (max 1 (min 8 (Par_policy.hardware ())))
    d2.Par_policy.width;
  let d3 =
    Par_policy.decide ~max_width:1 ~sources:max_int ~product_edges:2 ()
  in
  Alcotest.(check int) "max_width caps the decision" 1 d3.Par_policy.width;
  (* Bitset work is counted in 63-source blocks. *)
  let db =
    Par_policy.decide ~kernel:Par_policy.Bitset ~max_width:8 ~sources:126
      ~product_edges:10 ()
  in
  Alcotest.(check int) "bitset units are blocks" 2 db.Par_policy.units;
  Alcotest.(check int) "bitset work = blocks x edges" 20 db.Par_policy.work;
  (* The last decision is recorded for serve stats. *)
  (match Par_policy.last () with
  | Some l -> Alcotest.(check int) "last records the decision" 20 l.Par_policy.work
  | None -> Alcotest.fail "expected a last decision");
  let dp = Par_policy.pinned ~width:4 in
  Alcotest.(check bool) "pinned reason" true
    (dp.Par_policy.reason = Par_policy.Pinned);
  Alcotest.(check int) "pinned width" 4 dp.Par_policy.width

(* The two serial gates that sit between "work is big enough" and
   "fork": too few parallel grains per worker, and a calibration memory
   that has watched this width lose.  [?hardware] pins the machine shape
   so the test is deterministic on any runner. *)
let test_par_policy_gating () =
  Par_policy.reset_calibration ();
  let m = Metrics.create () in
  let obs = Obs.make ~metrics:m () in
  (* 3 bitset blocks of work over 2 claimed cores: under the default
     4-units-per-worker floor, forking leaves a worker idle — serial. *)
  let df =
    Par_policy.decide ~obs ~kernel:Par_policy.Bitset ~hardware:2 ~max_width:8
      ~sources:180 ~product_edges:1_000_000 ()
  in
  Alcotest.(check int) "few units stay serial" 1 df.Par_policy.width;
  Alcotest.(check bool) "few-units reason" true
    (df.Par_policy.reason = Par_policy.Few_units);
  (* Plenty of blocks: same shape forks once the grain count clears. *)
  let dw =
    Par_policy.decide ~obs ~kernel:Par_policy.Bitset ~hardware:2 ~max_width:8
      ~sources:(63 * 16) ~product_edges:1_000_000 ()
  in
  Alcotest.(check int) "ample units fork" 2 dw.Par_policy.width;
  (* Inject measurements: width 2 ran no faster than serial, so the
     calibration memory overrides the static verdict. *)
  Par_policy.record ~kernel:Par_policy.Bitset ~width:1 ~sources:(63 * 16)
    ~product_edges:1_000_000 ~elapsed:0.10 ();
  Par_policy.record ~kernel:Par_policy.Bitset ~width:2 ~sources:(63 * 16)
    ~product_edges:1_000_000 ~elapsed:0.11 ();
  let dc =
    Par_policy.decide ~obs ~kernel:Par_policy.Bitset ~hardware:2 ~max_width:8
      ~sources:(63 * 16) ~product_edges:1_000_000 ()
  in
  Alcotest.(check int) "calibrated loser stays serial" 1 dc.Par_policy.width;
  Alcotest.(check bool) "calibrated-serial reason" true
    (dc.Par_policy.reason = Par_policy.Calibrated_serial);
  (* A measured parallel win (beats serial by > 5%) re-enables forking. *)
  Par_policy.record ~kernel:Par_policy.Bitset ~width:2 ~sources:(63 * 16)
    ~product_edges:1_000_000 ~elapsed:0.02 ();
  Par_policy.record ~kernel:Par_policy.Bitset ~width:2 ~sources:(63 * 16)
    ~product_edges:1_000_000 ~elapsed:0.02 ();
  Par_policy.record ~kernel:Par_policy.Bitset ~width:2 ~sources:(63 * 16)
    ~product_edges:1_000_000 ~elapsed:0.02 ();
  let dr =
    Par_policy.decide ~obs ~kernel:Par_policy.Bitset ~hardware:2 ~max_width:8
      ~sources:(63 * 16) ~product_edges:1_000_000 ()
  in
  Alcotest.(check int) "measured win re-forks" 2 dr.Par_policy.width;
  (* Each gate left its audit trail in the decision counters. *)
  let counters = Metrics.counters m in
  let c name = match List.assoc_opt name counters with Some n -> n | None -> 0 in
  Alcotest.(check int) "few_units counted" 1 (c "rpq.par_decision.few_units");
  Alcotest.(check int) "calibrated_serial counted" 1
    (c "rpq.par_decision.calibrated_serial");
  Alcotest.(check int) "parallel counted" 2 (c "rpq.par_decision.parallel");
  Par_policy.reset_calibration ()

(* --- Planner: pins ------------------------------------------------------- *)

let v x = Planner.Var x

let test_planner_orders_selective_first () =
  (* Adversarial order: the huge Transfer* atom first, the 2-edge
     isBlocked atom second.  The planner flips them and probes the big
     atom from its bound endpoint. *)
  let q =
    Crpq.make ~head:[ "x"; "y"; "z" ]
      ~atoms:
        [
          { Crpq.re = parse "Transfer*"; x = Crpq.TVar "x"; y = Crpq.TVar "y" };
          { Crpq.re = parse "isBlocked"; x = Crpq.TVar "y"; y = Crpq.TVar "z" };
        ]
  in
  match Crpq.explain bank q with
  | [ (ap1, mode1); (ap2, mode2) ] ->
      Alcotest.(check int) "selective atom first" 1 ap1.Planner.index;
      Alcotest.(check int) "big atom second" 0 ap2.Planner.index;
      Alcotest.(check bool) "first atom materializes" true
        (String.length mode1 >= 11 && String.sub mode1 0 11 = "materialize");
      Alcotest.(check string) "bound endpoint turns into a backward probe"
        "probe-backward" mode2;
      Alcotest.(check bool) "isBlocked estimate is the small one" true
        (ap1.Planner.est.Planner.card <= ap2.Planner.est.Planner.card)
  | plans ->
      Alcotest.failf "expected 2 planned atoms, got %d" (List.length plans)

let test_variable_order () =
  let atoms =
    [
      { Planner.re = parse "Transfer*"; x = v "x"; y = v "y" };
      { Planner.re = parse "isBlocked"; x = v "y"; y = v "z" };
    ]
  in
  let st = Stats.get bank in
  let p = Planner.plan st atoms in
  Alcotest.(check (list string)) "first-appearance along the plan"
    [ "y"; "z"; "x" ]
    (Planner.variable_order atoms p)

(* --- properties ---------------------------------------------------------- *)

let gen_graph =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    Generators.random_graph ~seed ~nodes:6 ~edges:12 ~labels:[ "a"; "b"; "c" ])

let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 6)
    @@ fix (fun self size ->
           if size <= 1 then
             oneof
               [
                 return Regex.Eps;
                 map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b"; "c" ]);
                 return (Regex.Atom Sym.Any);
               ]
           else
             oneof
               [
                 map2 (fun a b -> Regex.Seq (a, b)) (self (size / 2)) (self (size / 2));
                 map2 (fun a b -> Regex.Alt (a, b)) (self (size / 2)) (self (size / 2));
                 map (fun a -> Regex.Star a) (self (size - 1));
               ]))

let gen_crpq =
  QCheck.Gen.(
    let term = oneofl [ "x"; "y"; "z"; "w" ] >|= fun v -> Crpq.TVar v in
    list_size (int_range 1 3)
      (map3 (fun re x y -> { Crpq.re; x; y }) gen_regex term term)
    >|= fun atoms ->
    let head =
      List.concat_map
        (fun a ->
          List.filter_map
            (function Crpq.TVar v -> Some v | Crpq.TConst _ -> None)
            [ a.Crpq.x; a.Crpq.y ])
        atoms
      |> List.sort_uniq String.compare
    in
    Crpq.make ~head ~atoms)

let crpq_to_string q =
  String.concat ", "
    (List.map
       (fun a ->
         let t = function Crpq.TVar v -> v | Crpq.TConst c -> "@" ^ c in
         Printf.sprintf "%s -[%s]-> %s" (t a.Crpq.x)
           (Regex.to_string Sym.to_string a.Crpq.re)
           (t a.Crpq.y))
       (Crpq.atoms q))

let arb_graph_crpq =
  QCheck.make
    ~print:(fun (_, q) -> crpq_to_string q)
    QCheck.Gen.(pair gen_graph gen_crpq)

let prop_planner_equals_default =
  QCheck.Test.make ~count:60
    ~name:"planner-ordered CRPQ = default-order answers (widths 1, 4)"
    arb_graph_crpq
    (fun (g, q) ->
      let base =
        Crpq.homomorphisms ~planner:false ~pool:(Pool.create ~size:1 ()) g q
      in
      List.for_all
        (fun (planner, size) ->
          Crpq.homomorphisms ~planner ~pool:(Pool.create ~size ()) g q = base)
        [ (true, 1); (true, 4); (false, 4) ])

let prop_wcoj_planner_equals_default =
  QCheck.Test.make ~count:40
    ~name:"WCOJ with planner variable order = default order"
    arb_graph_crpq
    (fun (g, q) ->
      Crpq_wcoj.eval ~planner:true g q = Crpq_wcoj.eval ~planner:false g q)

let prop_cached_equals_cold =
  QCheck.Test.make ~count:60 ~name:"cached evaluation = cold evaluation"
    (QCheck.make
       ~print:(fun (_, r) -> Regex.to_string Sym.to_string r)
       QCheck.Gen.(pair gen_graph gen_regex))
    (fun (g, r) ->
      let cold = Rpq_eval.pairs g r in
      let t = Rpq_compile.create ~enabled:true () in
      let c = Rpq_compile.compile_ast t r in
      let eval () =
        Governor.payload ~default:[]
          (Rpq_compile.pairs_bounded t (Governor.unlimited ()) g c)
      in
      (* First evaluation builds the product; the second one hits it. *)
      eval () = cold && eval () = cold)

let prop_plan_is_permutation =
  QCheck.Test.make ~count:100 ~name:"plan atom order is a permutation"
    arb_graph_crpq
    (fun (g, q) ->
      let atoms = List.map Crpq.to_planner_atom (Crpq.atoms q) in
      let p = Planner.plan (Stats.get g) atoms in
      List.sort compare (List.map (fun ap -> ap.Planner.index) p.Planner.order)
      = List.init (List.length atoms) Fun.id)

let prop_reverse_is_language_reversal =
  QCheck.Test.make ~count:60 ~name:"pairs of reversed regex on reversed graph"
    (QCheck.make
       ~print:(fun (_, r) -> Regex.to_string Sym.to_string r)
       QCheck.Gen.(pair gen_graph gen_regex))
    (fun (g, r) ->
      let rg = Rpq_compile.reversed_graph (Rpq_compile.create ~enabled:false ()) g in
      List.sort compare
        (List.map (fun (u, v) -> (v, u)) (Rpq_eval.pairs rg (Regex.reverse r)))
      = Rpq_eval.pairs g r)

let () =
  Alcotest.run "plan"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction + recency" `Quick test_lru_eviction;
          Alcotest.test_case "generation drop" `Quick test_lru_generations;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_plan_cache_hits;
          Alcotest.test_case "disabled mode" `Quick test_plan_cache_disabled;
          Alcotest.test_case "generation invalidation" `Quick
            test_generation_invalidation;
        ] );
      ( "stats + policy",
        [
          Alcotest.test_case "bank statistics" `Quick test_stats;
          Alcotest.test_case "parallelism policy" `Quick test_par_policy;
          Alcotest.test_case "serial gates + calibration" `Quick
            test_par_policy_gating;
        ] );
      ( "planner",
        [
          Alcotest.test_case "selective atom first" `Quick
            test_planner_orders_selective_first;
          Alcotest.test_case "variable order" `Quick test_variable_order;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_planner_equals_default;
          QCheck_alcotest.to_alcotest prop_wcoj_planner_equals_default;
          QCheck_alcotest.to_alcotest prop_cached_equals_cold;
          QCheck_alcotest.to_alcotest prop_plan_is_permutation;
          QCheck_alcotest.to_alcotest prop_reverse_is_language_reversal;
        ] );
    ]
