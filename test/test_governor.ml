(* The resource governor across every engine (robustness tentpole).

   Two claims per engine, on the Fig. 5 blow-up generators:

   - {e tight}: with a step budget of at most 10^5, evaluation terminates
     well under a second with a non-[Complete] outcome;
   - {e ample}: with a generous budget the outcome is [Complete] and its
     payload equals the unbounded entry point's answer.

   Plus unit tests for the governor mechanics themselves (result caps,
   deadlines, cooperative cancellation, outcome plumbing). *)

let tight () = Governor.make ~max_steps:50_000 ()
let ample () = Governor.make ~max_steps:50_000_000 ()

let timed f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

(* The budget must bite AND the run must stay fast: a governor that ticks
   too coarsely would pass a plain "is partial" check while still
   exploring an exponential region between checks. *)
let check_tight name f =
  let outcome, elapsed = timed f in
  Alcotest.(check bool) (name ^ ": outcome is not Complete") false
    (Governor.is_complete outcome);
  Alcotest.(check bool) (name ^ ": terminates in under a second") true
    (elapsed < 1.0)

let check_ample name bounded unbounded =
  match bounded with
  | Governor.Complete v ->
      Alcotest.(check bool) (name ^ ": ample budget equals unbounded") true
        (v = unbounded)
  | Governor.Partial _ | Governor.Aborted _ ->
      Alcotest.fail (name ^ ": ample budget still tripped")

(* Shared adversarial inputs. *)
let a = Regex.atom (Sym.Lbl "a")
let astar = Regex.star a

let triangle =
  Crpq.make ~head:[ "x"; "y"; "z" ]
    ~atoms:
      [
        { Crpq.re = a; x = Crpq.TVar "x"; y = Crpq.TVar "y" };
        { Crpq.re = a; x = Crpq.TVar "y"; y = Crpq.TVar "z" };
        { Crpq.re = a; x = Crpq.TVar "z"; y = Crpq.TVar "x" };
      ]

(* Property-graph view of a clique, for the CoreGQL / GQL engines. *)
let pg_of_elg g =
  Pg.make
    ~nodes:(List.init (Elg.nb_nodes g) (fun i -> (Elg.node_name g i, "V", [])))
    ~edges:
      (List.init (Elg.nb_edges g) (fun e ->
           ( Elg.edge_name g e,
             Elg.node_name g (Elg.src g e),
             Elg.label g e,
             Elg.node_name g (Elg.tgt g e),
             [] )))

let hop_pattern =
  Coregql.(
    Pconcat (Pnode None, Pconcat (Prepeat (Pedge None, 1, None), Pnode None)))

(* --- tight budgets on Fig. 5 inputs -------------------------------------- *)

let test_tight_rpq_paths () =
  let big = Generators.diamonds 40 in
  let s = Elg.node_id big "s" and t = Elg.node_id big "t" in
  check_tight "Rpq_eval.pairs_naive" (fun () ->
      Rpq_eval.pairs_naive_bounded (tight ()) big astar ~max_len:80);
  check_tight "Path_modes.enumerate All" (fun () ->
      Path_modes.enumerate_bounded (tight ()) big astar ~mode:Path_modes.All
        ~max_len:80 ~src:s ~tgt:t);
  check_tight "Pmr.spaths_upto" (fun () ->
      let pmr = Pmr.of_rpq big astar ~src:s ~tgt:t in
      Pmr.spaths_upto_bounded (tight ()) big pmr ~max_len:80);
  let k9 = Generators.clique 9 "a" in
  check_tight "Path_modes.count Simple" (fun () ->
      Path_modes.count_bounded (tight ()) k9 astar ~mode:Path_modes.Simple
        ~max_len:9 ~src:0 ~tgt:1);
  check_tight "Path_modes.exists_trail" (fun () ->
      Path_modes.exists_trail_bounded (tight ())
        (Generators.clique 9 "a")
        (Regex.seq astar (Regex.atom (Sym.Lbl "b")))
        ~src:0 ~tgt:1)

let test_tight_crpq () =
  check_tight "Crpq.eval" (fun () ->
      Crpq.eval_bounded (tight ()) (Generators.clique 20 "a") triangle);
  check_tight "Crpq_wcoj.eval" (fun () ->
      Crpq_wcoj.eval_bounded (tight ()) (Generators.clique 60 "a") triangle);
  let nested_triangle =
    Nested.make ~hx:"x" ~hy:"y"
      ~body:
        (List.map
           (fun (x, y) -> { Nested.re = Regex.atom (Nested.Base (Sym.Lbl "a")); x; y })
           [ ("x", "y"); ("y", "z"); ("z", "x") ])
  in
  check_tight "Nested.eval" (fun () ->
      Nested.eval_bounded (tight ()) (Generators.clique 20 "a") nested_triangle)

let test_tight_lists () =
  let lexpr =
    Regex.star
      (Regex.alt
         (Regex.seq (Lrpq.lbl "a") (Lrpq.cap "a" "z"))
         (Regex.seq (Lrpq.cap "a" "z") (Lrpq.lbl "a")))
  in
  let line40 = Generators.line 40 "a" in
  check_tight "Lrpq.enumerate" (fun () ->
      Lrpq.enumerate_bounded (tight ()) line40 lexpr ~max_len:40);
  let lq =
    Lcrpq.make ~head:[ "x"; "z" ]
      ~atoms:
        [
          {
            Lcrpq.mode = Path_modes.All;
            re = Regex.star (Lrpq.cap "a" "z");
            x = Lcrpq.TVar "x";
            y = Lcrpq.TVar "y";
          };
        ]
  in
  check_tight "Lcrpq.eval" (fun () ->
      Lcrpq.eval_bounded ~max_len:9 (tight ()) (Generators.clique 9 "a") lq)

let test_tight_data () =
  let pg = Generators.subset_sum (List.init 30 (fun i -> i + 1)) in
  let dl = Regex.star (Regex.seq Dlrpq.node_any (Dlrpq.edge_cap "a" "z")) in
  let src = 0 and tgt = 30 in
  check_tight "Dlrpq.eval_mode All" (fun () ->
      Dlrpq.eval_mode_bounded (tight ()) pg dl ~mode:Path_modes.All ~max_len:64
        ~src ~tgt ());
  let dq =
    Dlcrpq.make ~head:[ "x"; "z" ]
      ~atoms:
        [
          {
            Dlcrpq.mode = Path_modes.All;
            re = dl;
            x = Dlcrpq.TVar "x";
            y = Dlcrpq.TVar "y";
          };
        ]
  in
  check_tight "Dlcrpq.eval" (fun () ->
      Dlcrpq.eval_bounded ~max_len:64 (tight ()) pg dq)

let test_tight_coregql_gql () =
  let k7 = pg_of_elg (Generators.clique 7 "a") in
  check_tight "Coregql_paths.matching_trails" (fun () ->
      Coregql_paths.matching_trails_bounded (tight ()) k7 hop_pattern);
  check_tight "Coregql.output" (fun () ->
      Coregql.output_bounded (tight ())
        (pg_of_elg (Generators.clique 40 "a"))
        hop_pattern [])
  ;
  check_tight "Coregql_query.eval" (fun () ->
      Coregql_query.eval_bounded (tight ())
        (pg_of_elg (Generators.clique 40 "a"))
        (Coregql_query.Rel (hop_pattern, [])));
  check_tight "Gql.matches" (fun () ->
      Gql.matches_bounded (tight ()) k7
        (Gql_parse.parse "(x)(()-[:a]->()){1,}(y)")
        ~max_len:14);
  check_tight "Gql_query.eval" (fun () ->
      Gql_query.eval_bounded ~max_len:14 (tight ()) k7
        (Gql_query.parse "MATCH (x)(()-[:a]->()){1,}(y) RETURN x, y"))

(* --- ample budgets agree with the unbounded entry points ------------------ *)

let test_ample_rpq_paths () =
  let g = Generators.diamonds 6 in
  let s = Elg.node_id g "s" and t = Elg.node_id g "t" in
  check_ample "pairs"
    (Rpq_eval.pairs_bounded (ample ()) g astar)
    (Rpq_eval.pairs g astar);
  check_ample "from_source"
    (Rpq_eval.from_source_bounded (ample ()) g astar ~src:s)
    (Rpq_eval.from_source g astar ~src:s);
  check_ample "shortest_witness"
    (Rpq_eval.shortest_witness_bounded (ample ()) g astar ~src:s ~tgt:t)
    (Rpq_eval.shortest_witness g astar ~src:s ~tgt:t);
  check_ample "enumerate"
    (Path_modes.enumerate_bounded (ample ()) g astar ~mode:Path_modes.All
       ~max_len:12 ~src:s ~tgt:t)
    (Path_modes.enumerate g astar ~mode:Path_modes.All ~max_len:12 ~src:s ~tgt:t);
  check_ample "count"
    (Path_modes.count_bounded (ample ()) g astar ~mode:Path_modes.All
       ~max_len:12 ~src:s ~tgt:t)
    (Path_modes.count g astar ~mode:Path_modes.All ~max_len:12 ~src:s ~tgt:t);
  check_ample "spaths_upto"
    (let pmr = Pmr.of_rpq g astar ~src:s ~tgt:t in
     Pmr.spaths_upto_bounded (ample ()) g pmr ~max_len:12)
    (let pmr = Pmr.of_rpq g astar ~src:s ~tgt:t in
     Pmr.spaths_upto g pmr ~max_len:12)

let test_ample_crpq () =
  let k6 = Generators.clique 6 "a" in
  check_ample "Crpq.eval"
    (Crpq.eval_bounded (ample ()) k6 triangle)
    (Crpq.eval k6 triangle);
  check_ample "Crpq_wcoj.eval"
    (Crpq_wcoj.eval_bounded (ample ()) k6 triangle)
    (Crpq_wcoj.eval k6 triangle);
  let nested_triangle =
    Nested.make ~hx:"x" ~hy:"y"
      ~body:
        (List.map
           (fun (x, y) -> { Nested.re = Regex.atom (Nested.Base (Sym.Lbl "a")); x; y })
           [ ("x", "y"); ("y", "z"); ("z", "x") ])
  in
  check_ample "Nested.eval"
    (Nested.eval_bounded (ample ()) k6 nested_triangle)
    (Nested.eval k6 nested_triangle)

let test_ample_lists_data () =
  let line8 = Generators.line 8 "a" in
  let lexpr = Regex.star (Lrpq.cap "a" "z") in
  check_ample "Lrpq.enumerate"
    (Lrpq.enumerate_bounded (ample ()) line8 lexpr ~max_len:8)
    (Lrpq.enumerate line8 lexpr ~max_len:8);
  let lq =
    Lcrpq.make ~head:[ "x"; "z" ]
      ~atoms:
        [
          {
            Lcrpq.mode = Path_modes.Shortest;
            re = lexpr;
            x = Lcrpq.TVar "x";
            y = Lcrpq.TVar "y";
          };
        ]
  in
  check_ample "Lcrpq.eval"
    (Lcrpq.eval_bounded ~max_len:8 (ample ()) line8 lq)
    (Lcrpq.eval ~max_len:8 line8 lq);
  let pg = Generators.subset_sum [ 3; 5; 7 ] in
  let dl = Regex.star (Regex.seq Dlrpq.node_any (Dlrpq.edge_cap "a" "z")) in
  check_ample "Dlrpq.eval_mode"
    (Dlrpq.eval_mode_bounded (ample ()) pg dl ~mode:Path_modes.All ~max_len:8
       ~src:0 ~tgt:3 ())
    (Dlrpq.eval_mode pg dl ~mode:Path_modes.All ~max_len:8 ~src:0 ~tgt:3 ());
  check_ample "Dlrpq.shortest_len"
    (Dlrpq.shortest_len_bounded (ample ()) pg dl ~src:0 ~tgt:3)
    (Dlrpq.shortest_len pg dl ~src:0 ~tgt:3);
  let dq =
    Dlcrpq.make ~head:[ "x"; "z" ]
      ~atoms:
        [
          {
            Dlcrpq.mode = Path_modes.Shortest;
            re = dl;
            x = Dlcrpq.TVar "x";
            y = Dlcrpq.TVar "y";
          };
        ]
  in
  check_ample "Dlcrpq.eval"
    (Dlcrpq.eval_bounded ~max_len:8 (ample ()) pg dq)
    (Dlcrpq.eval ~max_len:8 pg dq)

let test_ample_coregql_gql () =
  let k4 = pg_of_elg (Generators.clique 4 "a") in
  check_ample "Coregql.output"
    (Coregql.output_bounded (ample ()) k4 hop_pattern [])
    (Coregql.output k4 hop_pattern []);
  check_ample "Coregql_paths.matching_trails"
    (Coregql_paths.matching_trails_bounded (ample ()) k4 hop_pattern)
    (Coregql_paths.matching_trails k4 hop_pattern);
  check_ample "Coregql_query.eval"
    (Coregql_query.eval_bounded (ample ()) k4
       (Coregql_query.Rel (hop_pattern, [])))
    (Coregql_query.eval k4 (Coregql_query.Rel (hop_pattern, [])));
  let pat = Gql_parse.parse "(x)(()-[:a]->()){1,}(y)" in
  check_ample "Gql.matches"
    (Gql.matches_bounded (ample ()) k4 pat ~max_len:6)
    (Gql.matches k4 pat ~max_len:6);
  let q = Gql_query.parse "MATCH (x)(()-[:a]->()){1,}(y) RETURN x, y" in
  check_ample "Gql_query.eval"
    (Gql_query.eval_bounded ~max_len:6 (ample ()) k4 q)
    (Gql_query.eval ~max_len:6 k4 q)

(* --- governor mechanics --------------------------------------------------- *)

let test_result_cap () =
  let g = Generators.diamonds 4 in
  let gov = Governor.make ~max_results:5 () in
  match Rpq_eval.pairs_bounded gov g astar with
  | Governor.Partial (pairs, Governor.Results) ->
      Alcotest.(check int) "exactly the cap" 5 (List.length pairs);
      let all = Rpq_eval.pairs g astar in
      Alcotest.(check bool) "kept pairs are real answers" true
        (List.for_all (fun p -> List.mem p all) pairs)
  | _ -> Alcotest.fail "expected Partial Results"

let test_deadline () =
  (* An already-expired deadline trips at the first periodic check (every
     256 ticks), so any input with enough work terminates early. *)
  let gov = Governor.make ~timeout:0.0 () in
  let outcome, elapsed =
    timed (fun () ->
        Path_modes.count_bounded gov
          (Generators.clique 9 "a")
          astar ~mode:Path_modes.Simple ~max_len:9 ~src:0 ~tgt:1)
  in
  (match outcome with
  | Governor.Partial (_, Governor.Deadline) -> ()
  | _ -> Alcotest.fail "expected Partial Deadline");
  Alcotest.(check bool) "deadline bites fast" true (elapsed < 1.0)

let test_cancellation () =
  let cancel = ref true in
  let gov = Governor.make ~cancel () in
  (match Rpq_eval.pairs_bounded gov (Generators.diamonds 4) astar with
  | Governor.Aborted Governor.Cancelled -> ()
  | _ -> Alcotest.fail "expected Aborted Cancelled");
  (* Explicit cancel on a live governor behaves the same. *)
  let gov2 = Governor.make () in
  Governor.cancel gov2;
  match Rpq_eval.pairs_bounded gov2 (Generators.diamonds 4) astar with
  | Governor.Aborted Governor.Cancelled -> ()
  | _ -> Alcotest.fail "expected Aborted Cancelled after cancel"

let test_outcome_plumbing () =
  Alcotest.(check string) "complete status" "complete"
    (Governor.outcome_status (Governor.Complete ()));
  Alcotest.(check string) "partial status"
    "partial (budget exhausted: step budget)"
    (Governor.outcome_status (Governor.Partial ((), Governor.Steps)));
  Alcotest.(check int) "payload of partial" 3
    (Governor.payload ~default:0 (Governor.Partial (3, Governor.Deadline)));
  Alcotest.(check int) "payload of aborted is the default" 7
    (Governor.payload ~default:7 (Governor.Aborted Governor.Cancelled));
  let gov = Governor.make ~max_steps:2 () in
  Alcotest.(check bool) "first ticks pass" true
    (Governor.tick gov && Governor.tick gov);
  Alcotest.(check bool) "third tick trips" false (Governor.tick gov);
  Alcotest.(check bool) "tripped is sticky" false (Governor.tick gov)

let () =
  Alcotest.run "governor"
    [
      ( "tight budgets",
        [
          Alcotest.test_case "rpq + paths + pmr" `Quick test_tight_rpq_paths;
          Alcotest.test_case "crpq engines" `Quick test_tight_crpq;
          Alcotest.test_case "list variables" `Quick test_tight_lists;
          Alcotest.test_case "data tests" `Quick test_tight_data;
          Alcotest.test_case "coregql + gql" `Quick test_tight_coregql_gql;
        ] );
      ( "ample budgets",
        [
          Alcotest.test_case "rpq + paths + pmr" `Quick test_ample_rpq_paths;
          Alcotest.test_case "crpq engines" `Quick test_ample_crpq;
          Alcotest.test_case "lists + data" `Quick test_ample_lists_data;
          Alcotest.test_case "coregql + gql" `Quick test_ample_coregql_gql;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "result cap" `Quick test_result_cap;
          Alcotest.test_case "deadline" `Quick test_deadline;
          Alcotest.test_case "cancellation" `Quick test_cancellation;
          Alcotest.test_case "outcome plumbing" `Quick test_outcome_plumbing;
        ] );
    ]
