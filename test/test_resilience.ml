(* The resilience layer (robustness tentpole): failpoint registry,
   retry/backoff, circuit breaker, supervised evaluation, and the
   hardened parser contracts.

   The three headline QCheck properties:

   - {e transparency}: with failpoints disabled (or armed with
     non-failing policies) every engine is bit-identical to the seed
     behavior — injection sites cost a branch, never an answer;
   - {e no wrong answers}: under any seeded fault schedule a supervised,
     retried query either equals the fault-free answer or returns a
     classified error — it never silently returns a different answer;
   - {e breaker model}: the circuit breaker agrees with a reference
     state machine on arbitrary operation sequences, and every observed
     transition is one of closed→open, open→half-open,
     half-open→{closed,open}. *)

(* Every test that arms failpoints must clean up, or later tests (and
   later suites in the same binary) would inherit the schedule. *)
let with_clear f =
  Failpoint.clear ();
  Fun.protect ~finally:Failpoint.clear f

let raises_injected name f =
  match f () with
  | _ -> false
  | exception Failpoint.Injected site -> site = name

(* --- failpoint policies --------------------------------------------------- *)

let test_fp_once () =
  with_clear @@ fun () ->
  Failpoint.arm "t.once" Fail_once;
  Alcotest.(check bool) "first check fires" true
    (raises_injected "t.once" (fun () -> Failpoint.check "t.once"));
  Failpoint.check "t.once";
  Failpoint.check "t.once";
  Alcotest.(check int) "hits counts every check" 3 (Failpoint.hits "t.once");
  Alcotest.(check int) "fired exactly once" 1 (Failpoint.fired "t.once")

let test_fp_every () =
  with_clear @@ fun () ->
  Failpoint.arm "t.every" (Fail_every 3);
  let fired_at = ref [] in
  for i = 1 to 9 do
    match Failpoint.check "t.every" with
    | () -> ()
    | exception Failpoint.Injected _ -> fired_at := i :: !fired_at
  done;
  Alcotest.(check (list int)) "fires on every 3rd check" [ 3; 6; 9 ]
    (List.rev !fired_at);
  Alcotest.(check int) "fired counter agrees" 3 (Failpoint.fired "t.every")

let prob_schedule ~seed ~n =
  Failpoint.arm "t.prob" (Fail_prob { p = 0.5; seed });
  List.init n (fun _ ->
      match Failpoint.check "t.prob" with
      | () -> false
      | exception Failpoint.Injected _ -> true)

let test_fp_prob_deterministic () =
  with_clear @@ fun () ->
  let s1 = prob_schedule ~seed:42 ~n:64 in
  let s2 = prob_schedule ~seed:42 ~n:64 in
  Alcotest.(check (list bool)) "same seed, same fault schedule" s1 s2;
  let fired = List.length (List.filter Fun.id s1) in
  Alcotest.(check bool) "p=0.5 fires sometimes, not always" true
    (fired > 0 && fired < 64);
  let s3 = prob_schedule ~seed:43 ~n:64 in
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s3)

let test_fp_delay_and_disarm () =
  with_clear @@ fun () ->
  Failpoint.arm "t.delay" (Delay_ms 0.0);
  Failpoint.check "t.delay";
  Failpoint.check "t.delay";
  Alcotest.(check int) "delay fires without raising" 2 (Failpoint.fired "t.delay");
  Failpoint.disarm "t.delay";
  Failpoint.check "t.delay";
  Alcotest.(check int) "disarmed site no longer counts" 0 (Failpoint.hits "t.delay");
  Failpoint.clear ();
  Alcotest.(check (list (pair string string))) "clear empties the registry" []
    (List.map (fun (n, p) -> (n, Failpoint.policy_to_string p)) (Failpoint.armed ()))

let test_fp_spec () =
  with_clear @@ fun () ->
  (match Failpoint.arm_spec "a.b=once, c.d=every:2 ,e.f=prob:0.25:7,g.h=delay:1.5" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("valid spec rejected: " ^ msg));
  Alcotest.(check (list (pair string string)))
    "armed reflects the spec, sorted"
    [ ("a.b", "once"); ("c.d", "every:2"); ("e.f", "prob:0.25:7"); ("g.h", "delay:1.5") ]
    (List.map (fun (n, p) -> (n, Failpoint.policy_to_string p)) (Failpoint.armed ()));
  (match Failpoint.arm_spec "a.b=off" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("off rejected: " ^ msg));
  Alcotest.(check bool) "site=off disarms" true
    (not (List.mem_assoc "a.b" (Failpoint.armed ())));
  let bad spec =
    match Failpoint.arm_spec spec with
    | Ok () -> Alcotest.fail (Printf.sprintf "bad spec %S accepted" spec)
    | Error _ -> ()
  in
  bad "nopolicy";
  bad "x=bogus";
  bad "x=every:0";
  bad "x=every:abc";
  bad "x=prob:zz";
  bad "x=delay:-1";
  bad "=once"

(* --- hardened parsers: total result contracts ----------------------------- *)

let check_parse_error name what = function
  | Ok _ -> Alcotest.fail (name ^ ": malformed input accepted")
  | Error (Gq_error.Parse { what = w; _ }) ->
      Alcotest.(check string) (name ^ ": error language tag") what w
  | Error e -> Alcotest.fail (name ^ ": wrong error class " ^ Gq_error.to_string e)

let test_graph_io_total () =
  let cases =
    [
      ("bad node arity", "node");
      ("bad edge arity", "edge e1 a b");
      ("unknown declaration", "frobnicate x y");
      ("bad property syntax", "node n1 N owner");
      ("empty property name", "node n1 N =v");
    ]
  in
  List.iter
    (fun (name, src) -> check_parse_error name "graph" (Graph_io.parse_res src))
    cases;
  (* Position tagging: the error names the offending line. *)
  (match Graph_io.parse_res "node n1 N\nnode\n" with
  | Error (Gq_error.Parse { msg; _ }) ->
      Alcotest.(check bool) "error is position-tagged" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")
  | _ -> Alcotest.fail "expected a parse error on line 2");
  (* File-level failures are classified I/O, never exceptions. *)
  (match Graph_io.parse_file_res "/nonexistent/path.graph" with
  | Error (Gq_error.Io _) -> ()
  | _ -> Alcotest.fail "missing file should be an Io error");
  match Graph_io.parse_res "node n1 N\nedge e1 n1 a n2\n" with
  | Ok pg -> Alcotest.(check int) "well-formed input still parses" 2
      (Elg.nb_nodes (Pg.elg pg))
  | Error e -> Alcotest.fail ("well-formed input rejected: " ^ Gq_error.to_string e)

let test_parsers_total () =
  (* Inputs that historically escaped as [Failure]/[Invalid_argument]:
     inverted repetition ranges, out-of-range integers, malformed
     numbers.  Each parser's [_res] entry point must classify them. *)
  check_parse_error "rpq inverted range" "rpq" (Rpq_parse.parse_res "a{3,1}");
  check_parse_error "rpq huge count" "rpq"
    (Rpq_parse.parse_res "a{99999999999999999999}");
  check_parse_error "rpq unbalanced" "rpq" (Rpq_parse.parse_res "a)(");
  (match Rpq_parse.parse_res "a{1,3}" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("valid rpq rejected: " ^ Gq_error.to_string e));
  check_parse_error "dlrpq inverted range" "dlrpq"
    (Dlrpq_parse.parse_res "(a){3,1}");
  check_parse_error "dlrpq huge count" "dlrpq"
    (Dlrpq_parse.parse_res "(a){99999999999999999999}");
  check_parse_error "dlrpq bad float" "dlrpq"
    (Dlrpq_parse.parse_res "(date > 1.2.3)");
  (match Dlrpq_parse.parse_res "(a^z)(x := date)" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("valid dlrpq rejected: " ^ Gq_error.to_string e));
  check_parse_error "gql inverted range" "pattern"
    (Gql_parse.parse_res "(x)(()-[:a]->()){3,1}(y)");
  check_parse_error "gql huge count" "pattern"
    (Gql_parse.parse_res "(x)(()-[:a]->()){99999999999999999999}(y)");
  check_parse_error "gql bad float" "pattern"
    (Gql_parse.parse_res "(x WHERE x.v = 1.2.3)");
  match Gql_parse.parse_res "(x)(()-[:a]->()){1,3}(y)" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("valid gql pattern rejected: " ^ Gq_error.to_string e)

(* --- retry ---------------------------------------------------------------- *)

let transient_policy n = { Retry.immediate with Retry.max_attempts = n }

let test_retry_delays () =
  let p =
    {
      Retry.max_attempts = 5;
      base_delay = 0.01;
      max_delay = 0.04;
      multiplier = 2.0;
      jitter = 0.2;
      seed = 11;
      budget = 10.0;
    }
  in
  let d1 = Retry.delays p and d2 = Retry.delays p in
  Alcotest.(check (list (float 1e-12))) "same policy, same schedule" d1 d2;
  Alcotest.(check int) "one delay per retry" 4 (List.length d1);
  List.iteri
    (fun i d ->
      let raw = Float.min (0.01 *. (2.0 ** float_of_int i)) 0.04 in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d capped and jittered into [0.8d, d]" i)
        true
        (d <= raw +. 1e-12 && d >= (0.8 *. raw) -. 1e-12))
    d1;
  Alcotest.(check bool) "different seed, different jitter" true
    (Retry.delays p <> Retry.delays { p with Retry.seed = 12 })

let test_retry_transient () =
  with_clear @@ fun () ->
  let calls = ref 0 in
  let result =
    Retry.run ~policy:(transient_policy 5) ~sleep:ignore
      ~classify:Gq_error.classify_exn (fun () ->
        incr calls;
        if !calls < 3 then raise (Failpoint.Injected "t.site");
        "done")
  in
  Alcotest.(check (result string reject)) "recovers after two faults"
    (Ok "done") result;
  Alcotest.(check int) "exactly three attempts" 3 !calls

let test_retry_exhausted () =
  let calls = ref 0 in
  (match
     Retry.run ~policy:(transient_policy 3) ~sleep:ignore
       ~classify:Gq_error.classify_exn (fun () ->
         incr calls;
         raise (Failpoint.Injected "t.site"))
   with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error (Failpoint.Injected "t.site") -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e));
  Alcotest.(check int) "all attempts consumed" 3 !calls

let test_retry_permanent () =
  let calls = ref 0 in
  (match
     Retry.run ~policy:(transient_policy 5) ~sleep:ignore
       ~classify:Gq_error.classify_exn (fun () ->
         incr calls;
         failwith "deterministic")
   with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (Failure msg) -> Alcotest.(check string) "original error" "deterministic" msg
  | Error e -> Alcotest.fail ("wrong error: " ^ Printexc.to_string e));
  Alcotest.(check int) "permanent errors never retry" 1 !calls

let test_retry_budget () =
  (* A positive first delay against a zero sleep budget: transient, but
     no retry is affordable. *)
  let p =
    { Retry.default with Retry.max_attempts = 5; base_delay = 1.0; budget = 0.0 }
  in
  let calls = ref 0 in
  (match
     Retry.run ~policy:p ~sleep:ignore ~classify:Gq_error.classify_exn
       (fun () ->
         incr calls;
         raise (Failpoint.Injected "t.site"))
   with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error _ -> ());
  Alcotest.(check int) "budget 0 means a single attempt" 1 !calls

(* --- supervised evaluation ------------------------------------------------ *)

let gov_ample () = Governor.make ~max_steps:50_000_000 ()

let test_supervise_plain () =
  with_clear @@ fun () ->
  let sup =
    Supervise.run ~retry:(transient_policy 3) ~sleep:ignore ~gov:gov_ample
      (fun _gov -> Governor.Complete 42)
  in
  Alcotest.(check bool) "complete outcome" true
    (sup.Supervise.outcome = Ok (Governor.Complete 42));
  Alcotest.(check bool) "not degraded" false sup.Supervise.degraded;
  Alcotest.(check int) "one attempt" 1 sup.Supervise.attempts

let test_supervise_retries_faults () =
  with_clear @@ fun () ->
  let calls = ref 0 in
  let sup =
    Supervise.run ~retry:(transient_policy 3) ~sleep:ignore ~gov:gov_ample
      (fun _gov ->
        incr calls;
        if !calls = 1 then raise (Failpoint.Injected "t.site");
        Governor.Complete "ok")
  in
  Alcotest.(check bool) "recovered" true
    (sup.Supervise.outcome = Ok (Governor.Complete "ok"));
  Alcotest.(check int) "retried once" 2 sup.Supervise.attempts

let test_supervise_fault_classified () =
  with_clear @@ fun () ->
  let sup =
    Supervise.run ~retry:(transient_policy 3) ~sleep:ignore ~gov:gov_ample
      (fun _gov -> raise (Failpoint.Injected "t.site"))
  in
  (match sup.Supervise.outcome with
  | Error (Gq_error.Fault { site = "t.site"; attempts = 3 }) -> ()
  | Error e -> Alcotest.fail ("wrong classification: " ^ Gq_error.to_string e)
  | Ok _ -> Alcotest.fail "expected a fault error");
  Alcotest.(check string) "fault kind slug" "fault"
    (match sup.Supervise.outcome with
    | Error e -> Gq_error.kind e
    | Ok _ -> "?");
  Alcotest.(check int) "exit code 2 for exhausted faults" 2
    (Gq_error.exit_code (Gq_error.Fault { site = "t.site"; attempts = 3 }))

let test_supervise_never_escapes () =
  with_clear @@ fun () ->
  (* Arbitrary exceptions — not just injected ones — become classified
     errors; [Supervise.run] must never re-raise. *)
  let sup =
    Supervise.run ~retry:(transient_policy 2) ~sleep:ignore ~gov:gov_ample
      (fun _gov -> failwith "boom")
  in
  match sup.Supervise.outcome with
  | Error (Gq_error.Eval _) -> ()
  | Error e -> Alcotest.fail ("wrong class: " ^ Gq_error.to_string e)
  | Ok _ -> Alcotest.fail "expected an error"

let test_supervise_breaker_cycle () =
  with_clear @@ fun () ->
  let now = ref 0.0 in
  let b =
    Breaker.create
      ~config:{ Breaker.failure_threshold = 2; cooldown = 10.0; success_threshold = 1 }
      ~clock:(fun () -> !now)
      "t"
  in
  let failing = ref true in
  let run () =
    Supervise.run ~retry:(transient_policy 1) ~sleep:ignore ~breaker:b
      ~degraded_max_steps:100 ~gov:gov_ample (fun _gov ->
        if !failing then Governor.Partial ([ 1 ], Governor.Steps)
        else Governor.Complete [ 1; 2 ])
  in
  (* Two budget exhaustions trip the breaker. *)
  let r1 = run () in
  Alcotest.(check bool) "first partial is full-price" false r1.Supervise.degraded;
  let _ = run () in
  Alcotest.(check string) "tripped after threshold" "open"
    (Breaker.state_to_string (Breaker.state b));
  (* While open, replies are degraded — the body still runs, under the
     small budget — and are not reported to the breaker. *)
  let r3 = run () in
  Alcotest.(check bool) "open breaker serves degraded" true r3.Supervise.degraded;
  Alcotest.(check bool) "degraded still answers" true
    (r3.Supervise.outcome = Ok (Governor.Partial ([ 1 ], Governor.Steps)));
  Alcotest.(check string) "still open" "open"
    (Breaker.state_to_string (Breaker.state b));
  (* After the cooldown, the next run is the half-open probe; a complete
     outcome closes the breaker again. *)
  now := 11.0;
  failing := false;
  let r4 = run () in
  Alcotest.(check bool) "probe runs full price" false r4.Supervise.degraded;
  Alcotest.(check bool) "probe completes" true
    (r4.Supervise.outcome = Ok (Governor.Complete [ 1; 2 ]));
  Alcotest.(check string) "probe success closes" "closed"
    (Breaker.state_to_string (Breaker.state b))

(* --- QCheck: breaker model ------------------------------------------------ *)

type brop = Acquire | Success | Failure | Advance of int

let brop_to_string = function
  | Acquire -> "acquire"
  | Success -> "success"
  | Failure -> "failure"
  | Advance s -> Printf.sprintf "advance %ds" s

let gen_brops =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (frequency
         [
           (3, return Acquire);
           (2, return Success);
           (4, return Failure);
           (2, map (fun s -> Advance s) (int_range 1 15));
         ]))

let arb_brops =
  QCheck.make ~print:(fun ops -> String.concat "; " (List.map brop_to_string ops))
    gen_brops

(* Reference model, transcribed from the documented semantics (not the
   implementation): trip on K consecutive closed failures or any
   half-open failure; open admits a probe once the cooldown elapses;
   [success_threshold] probe successes close. *)
module Model = struct
  type t = {
    mutable st : Breaker.state;
    mutable consec : int;
    mutable probes : int;
    mutable opened_at : float;
  }

  let create () = { st = Closed; consec = 0; probes = 0; opened_at = neg_infinity }

  let trip m now =
    m.st <- Open;
    m.opened_at <- now;
    m.consec <- 0

  let acquire m ~cfg ~now =
    match m.st with
    | Breaker.Closed -> `Proceed
    | Breaker.Half_open -> `Probe
    | Breaker.Open ->
        if now -. m.opened_at >= cfg.Breaker.cooldown then begin
          m.st <- Half_open;
          m.probes <- 0;
          `Probe
        end
        else `Reject

  let success m ~cfg =
    match m.st with
    | Breaker.Closed -> m.consec <- 0
    | Breaker.Half_open ->
        m.probes <- m.probes + 1;
        if m.probes >= cfg.Breaker.success_threshold then begin
          m.st <- Closed;
          m.consec <- 0
        end
    | Breaker.Open -> ()

  let failure m ~cfg ~now =
    match m.st with
    | Breaker.Closed ->
        m.consec <- m.consec + 1;
        if m.consec >= cfg.Breaker.failure_threshold then trip m now
    | Breaker.Half_open -> trip m now
    | Breaker.Open -> ()
end

let legal_transition a b =
  match (a, b) with
  | Breaker.Closed, Breaker.Open
  | Breaker.Open, Breaker.Half_open
  | Breaker.Half_open, Breaker.Closed
  | Breaker.Half_open, Breaker.Open -> true
  | _ -> a = b

let prop_breaker_model ops =
  let cfg = { Breaker.failure_threshold = 3; cooldown = 10.0; success_threshold = 2 } in
  let now = ref 0.0 in
  let b = Breaker.create ~config:cfg ~clock:(fun () -> !now) "model" in
  let m = Model.create () in
  List.for_all
    (fun op ->
      let before = Breaker.state b in
      (match op with
      | Acquire ->
          let got = Breaker.acquire b in
          let want = Model.acquire m ~cfg ~now:!now in
          if got <> want then
            QCheck.Test.fail_reportf "acquire disagrees in state %s"
              (Breaker.state_to_string before)
      | Success ->
          Breaker.success b;
          Model.success m ~cfg
      | Failure ->
          Breaker.failure b;
          Model.failure m ~cfg ~now:!now
      | Advance s -> now := !now +. float_of_int s);
      let after = Breaker.state b in
      if after <> m.Model.st then
        QCheck.Test.fail_reportf "state diverged: breaker %s, model %s"
          (Breaker.state_to_string after)
          (Breaker.state_to_string m.Model.st);
      if not (legal_transition before after) then
        QCheck.Test.fail_reportf "illegal transition %s -> %s"
          (Breaker.state_to_string before)
          (Breaker.state_to_string after);
      true)
    ops

(* --- QCheck: transparency and no-wrong-answers ---------------------------- *)

let gen_case =
  QCheck.Gen.(
    pair (int_range 1 10_000) (int_range 0 2) >|= fun (seed, shape) ->
    let g = Generators.random_graph ~seed ~nodes:5 ~edges:8 ~labels:[ "a"; "b" ] in
    let a = Regex.atom (Sym.Lbl "a") and b = Regex.atom (Sym.Lbl "b") in
    let r =
      match shape with
      | 0 -> Regex.star a
      | 1 -> Regex.seq (Regex.star a) b
      | _ -> Regex.star (Regex.alt a b)
    in
    (seed, shape, g, r))

let arb_case =
  QCheck.make
    ~print:(fun (seed, shape, _, _) ->
      Printf.sprintf "graph seed %d, regex shape %d" seed shape)
    gen_case

(* (a) Transparency: armed-but-benign and disarmed sites leave every
   answer bit-identical.  [Delay_ms 0] exercises the full armed slow
   path (registry lookup, counters) on the real engine sites. *)
let prop_failpoints_transparent (_, _, g, r) =
  with_clear @@ fun () ->
  let baseline = Rpq_eval.pairs g r in
  Failpoint.arm "rpq.bfs.step" (Delay_ms 0.0);
  Failpoint.arm "rpq.product.build" (Delay_ms 0.0);
  let armed = Rpq_eval.pairs g r in
  Failpoint.clear ();
  let cleared = Rpq_eval.pairs g r in
  if Failpoint.fired "rpq.bfs.step" <> 0 then
    QCheck.Test.fail_report "armed site did not fire (site name drifted?)";
  armed = baseline && cleared = baseline

(* (b) No wrong answers: under an arbitrary seeded fault schedule on the
   BFS site, a supervised query either completes with exactly the
   fault-free answer or reports a classified transient fault. *)
let prop_no_wrong_answers ((_, _, g, r), fault_seed) =
  with_clear @@ fun () ->
  let expected = Rpq_eval.pairs g r in
  Failpoint.arm "rpq.bfs.step" (Fail_prob { p = 0.3; seed = fault_seed });
  let sup =
    Supervise.run ~retry:(transient_policy 4) ~sleep:ignore ~gov:gov_ample
      (fun gov -> Rpq_eval.pairs_bounded gov g r)
  in
  Failpoint.clear ();
  match sup.Supervise.outcome with
  | Ok (Governor.Complete got) ->
      if got <> expected then
        QCheck.Test.fail_report "fault schedule changed a completed answer";
      true
  | Ok (Governor.Partial _ | Governor.Aborted _) ->
      QCheck.Test.fail_report "ample budget tripped without faults"
  | Error e -> (
      match Gq_error.classify e with
      | Retry.Transient -> true
      | Retry.Permanent ->
          QCheck.Test.fail_reportf "fault surfaced as permanent: %s"
            (Gq_error.to_string e))

let qcheck ?(count = 200) name prop arb =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

let () =
  Alcotest.run "resilience"
    [
      ( "failpoints",
        [
          Alcotest.test_case "fail once" `Quick test_fp_once;
          Alcotest.test_case "fail every N" `Quick test_fp_every;
          Alcotest.test_case "seeded probability" `Quick test_fp_prob_deterministic;
          Alcotest.test_case "delay + disarm + clear" `Quick test_fp_delay_and_disarm;
          Alcotest.test_case "GQ_FAILPOINTS spec" `Quick test_fp_spec;
        ] );
      ( "hardened parsers",
        [
          Alcotest.test_case "graph_io is total" `Quick test_graph_io_total;
          Alcotest.test_case "rpq/dlrpq/gql are total" `Quick test_parsers_total;
        ] );
      ( "retry",
        [
          Alcotest.test_case "deterministic schedule" `Quick test_retry_delays;
          Alcotest.test_case "transient recovery" `Quick test_retry_transient;
          Alcotest.test_case "exhaustion" `Quick test_retry_exhausted;
          Alcotest.test_case "permanent short-circuits" `Quick test_retry_permanent;
          Alcotest.test_case "sleep budget" `Quick test_retry_budget;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "plain completion" `Quick test_supervise_plain;
          Alcotest.test_case "fault retry" `Quick test_supervise_retries_faults;
          Alcotest.test_case "fault classification" `Quick test_supervise_fault_classified;
          Alcotest.test_case "exceptions never escape" `Quick test_supervise_never_escapes;
          Alcotest.test_case "breaker trip/degrade/probe/close" `Quick
            test_supervise_breaker_cycle;
        ] );
      ( "properties",
        [
          qcheck "breaker agrees with reference model" prop_breaker_model arb_brops;
          qcheck "disabled failpoints are transparent" prop_failpoints_transparent
            arb_case;
          qcheck ~count:100 "faults never change a completed answer"
            prop_no_wrong_answers
            QCheck.(pair arb_case (QCheck.make QCheck.Gen.(int_range 0 1_000_000)));
        ] );
    ]
