(* Concurrent serve mode: wire framing, the admission queue, the
   wall-clock watchdog, and whole-server behaviour over real sockets —
   quotas, shedding, budget isolation, graceful drain — plus a QCheck
   property pinning the concurrent server to the single-session
   semantics query by query.

   Every server here listens on a loopback TCP socket with port 0 (the
   kernel picks a free port), so tests are sandbox-friendly and never
   collide. *)

let ( let@ ) f x = f x

(* --- fixtures ------------------------------------------------------------- *)

let bank_file =
  lazy
    (let path = Filename.temp_file "gq_bank" ".graph" in
     let oc = open_out path in
     output_string oc (Graph_io.to_string (Generators.bank_pg ()));
     close_out oc;
     path)

(* A 200-edge line graph: enough work that [rpq a*] costs thousands of
   governor steps — the expensive query of the budget tests. *)
let line_file =
  lazy
    (let path = Filename.temp_file "gq_line" ".graph" in
     let oc = open_out path in
     for i = 0 to 200 do Printf.fprintf oc "node n%d N\n" i done;
     for i = 0 to 199 do Printf.fprintf oc "edge e%d n%d a n%d\n" i i (i + 1) done;
     close_out oc;
     path)

(* --- wire ----------------------------------------------------------------- *)

let feed_string ?max_line s =
  let f = Wire.Framer.create ?max_line () in
  let frames = Wire.Framer.feed f (Bytes.of_string s) (String.length s) in
  (frames, Wire.Framer.flush f)

let test_framer_lines () =
  let frames, tail = feed_string "ping\nstats\n" in
  Alcotest.(check int) "two frames" 2 (List.length frames);
  (match frames with
  | [ Wire.Line a; Wire.Line b ] ->
      Alcotest.(check string) "first" "ping" a;
      Alcotest.(check string) "second" "stats" b
  | _ -> Alcotest.fail "expected two Line frames");
  Alcotest.(check bool) "no tail" true (tail = None)

let test_framer_split_feed () =
  let f = Wire.Framer.create () in
  let all = "load x.graph\nrpq a*\n" in
  let frames = ref [] in
  String.iter
    (fun c ->
      frames :=
        !frames @ Wire.Framer.feed f (Bytes.make 1 c) 1)
    all;
  match !frames with
  | [ Wire.Line a; Wire.Line b ] ->
      Alcotest.(check string) "first" "load x.graph" a;
      Alcotest.(check string) "second" "rpq a*" b
  | _ -> Alcotest.fail "byte-by-byte feed must yield the same frames"

let test_framer_too_long () =
  let frames, _ =
    feed_string ~max_line:8 (String.make 100 'x' ^ "\nping\n")
  in
  match frames with
  | [ Wire.Too_long n; Wire.Line p ] ->
      Alcotest.(check int) "reported bound" 8 n;
      Alcotest.(check string) "next line survives" "ping" p
  | _ -> Alcotest.fail "expected Too_long then Line"

let test_framer_eof_tail () =
  let frames, tail = feed_string "quit" in
  Alcotest.(check int) "no complete frame" 0 (List.length frames);
  match tail with
  | Some (Wire.Line l) -> Alcotest.(check string) "flushed tail" "quit" l
  | _ -> Alcotest.fail "expected flushed Line"

let test_utf8 () =
  let valid = [ ""; "ascii"; "caf\xc3\xa9"; "\xe2\x82\xac"; "\xf0\x9f\x90\xab" ] in
  let invalid =
    [ "\xff"; "\xc0\xaf" (* overlong *); "\xed\xa0\x80" (* surrogate *);
      "\xf4\x90\x80\x80" (* > U+10FFFF *); "\xc3" (* truncated *) ]
  in
  List.iter
    (fun s -> Alcotest.(check bool) ("valid " ^ String.escaped s) true (Wire.utf8_valid s))
    valid;
  List.iter
    (fun s ->
      Alcotest.(check bool) ("invalid " ^ String.escaped s) false (Wire.utf8_valid s))
    invalid;
  let frames, _ = feed_string "\xff\xfe\n" in
  match frames with
  | [ Wire.Bad_utf8 ] -> ()
  | _ -> Alcotest.fail "expected Bad_utf8 frame"

(* --- admission ------------------------------------------------------------ *)

let test_admission_bounds () =
  let q = Admission.create ~capacity:2 () in
  Alcotest.(check bool) "push 1" true (Admission.push q 1 = `Ok);
  Alcotest.(check bool) "push 2" true (Admission.push q 2 = `Ok);
  Alcotest.(check bool) "push 3 full" true (Admission.push q 3 = `Full);
  Alcotest.(check int) "depth" 2 (Admission.depth q);
  Alcotest.(check bool) "pop fifo" true (Admission.pop q = Some 1);
  Alcotest.(check bool) "room again" true (Admission.push q 3 = `Ok);
  Admission.close q;
  Alcotest.(check bool) "push after close" true (Admission.push q 4 = `Closed);
  Alcotest.(check bool) "drain 2" true (Admission.pop q = Some 2);
  Alcotest.(check bool) "drain 3" true (Admission.pop q = Some 3);
  Alcotest.(check bool) "closed+empty" true (Admission.pop q = None)

(* Concurrent producers and consumers: every successfully pushed item is
   popped exactly once, and closing wakes every blocked consumer. *)
let test_admission_concurrent () =
  let q = Admission.create ~capacity:8 () in
  let pushed = Atomic.make 0 and popped = Atomic.make 0 in
  let sum_pushed = Atomic.make 0 and sum_popped = Atomic.make 0 in
  let producers =
    Array.init 3 (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to 50 do
              let v = (p * 1000) + i in
              let rec go () =
                match Admission.push q v with
                | `Ok ->
                    Atomic.incr pushed;
                    ignore (Atomic.fetch_and_add sum_pushed v)
                | `Full -> Domain.cpu_relax (); go ()
                | `Closed -> ()
              in
              go ()
            done))
  in
  let consumers =
    Array.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec go () =
              match Admission.pop q with
              | Some v ->
                  Atomic.incr popped;
                  ignore (Atomic.fetch_and_add sum_popped v);
                  go ()
              | None -> ()
            in
            go ()))
  in
  Array.iter Domain.join producers;
  Admission.close q;
  Array.iter Domain.join consumers;
  Alcotest.(check int) "all pushed" 150 (Atomic.get pushed);
  Alcotest.(check int) "all popped" (Atomic.get pushed) (Atomic.get popped);
  Alcotest.(check int) "same items" (Atomic.get sum_pushed) (Atomic.get sum_popped)

(* --- watchdog ------------------------------------------------------------- *)

let test_watchdog () =
  let gov = Governor.make () in
  let tok = Watchdog.register ~deadline:10.0 gov in
  Alcotest.(check int) "watching" 1 (Watchdog.watching ());
  Alcotest.(check int) "before deadline" 0 (Watchdog.sweep ~now:9.9);
  Alcotest.(check bool) "still ok" true (Governor.ok gov);
  Alcotest.(check int) "past deadline" 1 (Watchdog.sweep ~now:10.0);
  Alcotest.(check bool) "cancelled" false (Governor.tick gov);
  Alcotest.(check bool) "reason" true
    (Governor.tripped gov = Some Governor.Cancelled);
  Alcotest.(check int) "idempotent sweep" 0 (Watchdog.sweep ~now:11.0);
  Watchdog.unregister tok;
  Alcotest.(check int) "unregistered" 0 (Watchdog.watching ())

(* --- whole-server tests --------------------------------------------------- *)

let loopback = Server.Tcp ("127.0.0.1", 0)

let base_config ?(workers = 1) ?(client_inflight = 4) ?(queue_depth = 16)
    ?(client_budget = 0) ?(max_clients = 8) ?hard_deadline ?(max_line = 65536)
    () =
  {
    (Server.default_config ~listen:loopback Session.default_config) with
    Server.workers = Some workers;
    client_inflight;
    queue_depth;
    client_steps_per_sec = client_budget;
    max_clients;
    hard_deadline;
    max_line;
    retry_after_ms = 5;
  }

let with_server cfg f =
  let t = Server.launch cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.drain t;
      Server.await t)
    (fun () -> f t)

let with_delay ms f =
  Failpoint.arm "serve.eval" (Failpoint.Delay_ms (float_of_int ms));
  Fun.protect ~finally:(fun () -> Failpoint.disarm "serve.eval") f

type client = { fd : Unix.file_descr; ic : in_channel }

let connect t =
  let fd = Server.connect (Server.addr t) in
  { fd; ic = Unix.in_channel_of_descr fd }

let send c line =
  match Wire.write_all c.fd (line ^ "\n") with
  | Ok () -> ()
  | Error `Closed -> Alcotest.fail "server closed the connection mid-send"

let recv c = input_line c.ic

let recv_all c =
  let rec go acc =
    match input_line c.ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let has_field line k v =
  let needle = Printf.sprintf "\"%s\":%s" k v in
  let rec go i =
    i + String.length needle <= String.length line
    && (String.sub line i (String.length needle) = needle || go (i + 1))
  in
  go 0

(* Pipelined requests beyond the in-flight quota are shed with the
   documented reply shape, and every request line still gets exactly one
   reply. *)
let test_quota_shed () =
  let@ () = with_delay 200 in
  let@ t = with_server (base_config ~workers:1 ~client_inflight:1 ()) in
  let c = connect t in
  send c "rpq a*\nrpq b*\nrpq c*";
  (try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let replies = recv_all c in
  close_client c;
  Alcotest.(check int) "one reply per request" 3 (List.length replies);
  let shed =
    List.filter (fun r -> has_field r "status" "\"shed\"") replies
  in
  Alcotest.(check int) "two shed" 2 (List.length shed);
  List.iter
    (fun r ->
      Alcotest.(check bool) "reason" true (has_field r "reason" "\"client-quota\"");
      Alcotest.(check bool) "code 4" true (has_field r "code" "4");
      Alcotest.(check bool) "degraded" true (has_field r "degraded" "true"))
    shed;
  Alcotest.(check bool) "first request evaluated" true
    (List.exists (fun r -> has_field r "id" "1" && not (has_field r "status" "\"shed\"")) replies)

(* With a one-slot queue and a busy worker, overflow requests get the
   queue-full shed reply. *)
let test_queue_full_shed () =
  let@ () = with_delay 200 in
  let@ t =
    with_server (base_config ~workers:1 ~client_inflight:8 ~queue_depth:1 ())
  in
  let c = connect t in
  (* Let the worker dequeue the first request (it then sleeps in the
     200ms failpoint) before pipelining the rest — otherwise whether
     the second request finds the queue slot free is a race between
     this client and the worker's wakeup. *)
  send c "rpq a*";
  Unix.sleepf 0.05;
  send c "rpq b*\nrpq c*\nrpq d*";
  (try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  let replies = recv_all c in
  close_client c;
  Alcotest.(check int) "one reply per request" 4 (List.length replies);
  let qfull =
    List.filter (fun r -> has_field r "reason" "\"queue-full\"") replies
  in
  Alcotest.(check int) "two shed on the full queue" 2 (List.length qfull)

(* The per-client token bucket: an expensive query drives the client
   into debt, and its next request is shed with a computed retry hint —
   the isolation mechanism of E21. *)
let test_budget_shed () =
  (* Budget below the cost of [rpq a*] on the line graph under either
     kernel: the bitset engine charges one tick per span *sweep*, so the
     same query costs ~63x fewer steps than the scalar engine's ~40k. *)
  let@ t = with_server (base_config ~workers:2 ~client_budget:500 ()) in
  let c = connect t in
  send c (Printf.sprintf "load %s" (Lazy.force line_file));
  let r1 = recv c in
  Alcotest.(check bool) "load ok" true (has_field r1 "status" "\"ok\"");
  send c "rpq a*";
  let r2 = recv c in
  Alcotest.(check bool) "expensive rpq evaluated" false
    (has_field r2 "status" "\"shed\"");
  send c "ping";
  let r3 = recv c in
  Alcotest.(check bool) "now in debt: shed" true
    (has_field r3 "reason" "\"client-budget\"");
  close_client c

(* Beyond max-clients, a connection is answered with a structured shed
   and closed — never silently dropped. *)
let test_connect_shed () =
  let@ t = with_server (base_config ~max_clients:0 ()) in
  let c = connect t in
  let replies = recv_all c in
  close_client c;
  match replies with
  | [ r ] ->
      Alcotest.(check bool) "connect shed" true
        (has_field r "cmd" "\"connect\"" && has_field r "reason" "\"max-clients\"")
  | _ -> Alcotest.fail "expected exactly the connect-shed reply"

(* Malformed input gets structured errors and never kills the session:
   an over-long line, binary garbage, then a healthy command. *)
let test_hostile_input () =
  let@ t = with_server (base_config ~max_line:64 ()) in
  let c = connect t in
  send c (String.make 500 'x');
  let r1 = recv c in
  Alcotest.(check bool) "too-long is an error reply" true
    (has_field r1 "status" "\"error\"" && has_field r1 "id" "1");
  send c "rpq \xff\xfe";
  let r2 = recv c in
  Alcotest.(check bool) "bad utf8 is an error reply" true
    (has_field r2 "status" "\"error\"" && has_field r2 "id" "2");
  send c "ping";
  let r3 = recv c in
  Alcotest.(check bool) "session survives" true (has_field r3 "status" "\"ok\"");
  close_client c

(* One hostile client (oversized lines, garbage, a flood of expensive
   queries) next to K well-behaved clients: every well-behaved request
   completes ok, none is shed or garbled. *)
let test_hostile_plus_wellbehaved () =
  let@ t = with_server (base_config ~workers:2 ~max_clients:8 ()) in
  let hostile = connect t in
  send hostile (Printf.sprintf "load %s" (Lazy.force line_file));
  ignore (recv hostile);
  send hostile
    (String.make 100_000 'z' ^ "\n\xff\xfe\nnonsense cmd\nrpq a*\nrpq a*\nrpq a*");
  let wb = Array.init 3 (fun _ -> connect t) in
  let n = 10 in
  Array.iter
    (fun c ->
      for i = 1 to n do
        send c "ping";
        let r = recv c in
        Alcotest.(check bool) "wb reply ok" true
          (has_field r "status" "\"ok\"" && has_field r "id" (string_of_int i))
      done)
    wb;
  Array.iter close_client wb;
  close_client hostile

(* Graceful drain loses nothing: a request still evaluating when drain
   begins is finished and answered before the server exits. *)
let test_drain_keeps_inflight () =
  let@ () = with_delay 150 in
  let t = Server.launch (base_config ~workers:1 ()) in
  let c = connect t in
  send c "ping";
  ignore (recv c);
  send c "rpq a*\nrpq b*";
  Unix.sleepf 0.05 (* both admitted: one in flight, one queued *);
  Server.drain t;
  Server.await t;
  let replies = recv_all c in
  close_client c;
  Alcotest.(check int) "both in-flight requests answered" 2 (List.length replies);
  List.iter
    (fun r ->
      Alcotest.(check bool) "not dropped" true
        (has_field r "id" "2" || has_field r "id" "3"))
    replies

(* The watchdog cancels a query past the hard deadline: the reply is a
   structured partial with reason "cancelled", not a hung worker. *)
let test_watchdog_cancels_runaway () =
  let@ t = with_server (base_config ~workers:1 ~hard_deadline:0.15 ()) in
  let c = connect t in
  send c (Printf.sprintf "load %s" (Lazy.force line_file));
  ignore (recv c);
  (* ~40k-step query, slowed to a crawl: every bfs step sleeps, so only
     the watchdog can end it promptly. *)
  Failpoint.arm "rpq.bfs.step" (Failpoint.Delay_ms 2.0);
  Fun.protect
    ~finally:(fun () -> Failpoint.disarm "rpq.bfs.step")
    (fun () ->
      send c "rpq a*";
      let r = recv c in
      Alcotest.(check bool) "cancelled" true
        (has_field r "reason" "\"cancelled\"" && has_field r "code" "4"));
  close_client c

(* stats in listen mode carries the server block. *)
let test_stats_server_block () =
  let@ t = with_server (base_config ()) in
  let c = connect t in
  send c "stats";
  let r = recv c in
  Alcotest.(check bool) "server object present" true
    (has_field r "clients" "1" && has_field r "draining" "false");
  close_client c

(* --- request batching: attribution and parity ----------------------------- *)

(* Two pipelined clients issuing the identical cached query must get
   byte-identical, correctly-attributed replies from one batched run —
   each exactly what a fresh solo session would have answered under its
   own id. *)
let test_session_batching () =
  let shared = Session.make_shared Session.default_config in
  let sa = Session.create shared and sb = Session.create shared in
  Alcotest.(check bool) "not batchable before load" true
    (Session.batch_key sa "rpq Transfer*" = None);
  (match Session.handle_safe sa ~id:1 (Printf.sprintf "load %s" (Lazy.force bank_file)) with
  | Session.Reply _, _ -> ()
  | _ -> Alcotest.fail "load failed");
  Alcotest.(check bool) "rpq batchable" true
    (Session.batch_key sa "rpq Transfer*" <> None);
  Alcotest.(check bool) "key equal across sessions" true
    (Session.batch_key sa "rpq Transfer*" = Session.batch_key sb "rpq Transfer*");
  Alcotest.(check bool) "different regex, different key" true
    (Session.batch_key sa "rpq Transfer*" <> Session.batch_key sa "rpq Transfer");
  Alcotest.(check bool) "ping not batchable" true
    (Session.batch_key sa "ping" = None);
  (* Reference: what a fresh solo session answers for [line] under [id]. *)
  let solo id line =
    match Session.handle_safe (Session.create shared) ~id line with
    | Session.Reply r, _ -> r
    | _ -> Alcotest.fail "expected a reply"
  in
  let replies, spents =
    Session.handle_batch [ (sa, 5, "rpq Transfer*"); (sb, 9, "rpq Transfer*") ]
  in
  (match replies with
  | [ ra; rb ] ->
      Alcotest.(check string) "leader attributed" (solo 5 "rpq Transfer*") ra;
      Alcotest.(check string) "follower attributed" (solo 9 "rpq Transfer*") rb
  | _ -> Alcotest.fail "expected two replies");
  Alcotest.(check int) "one spent share per member" 2 (List.length spents);
  (* rpq-from: distinct sources pack into one multi-source run; a repeat
     source dedups; an unknown source gets its own structured error. *)
  let lines =
    [
      (sa, 11, "rpq-from a1 Transfer*");
      (sb, 12, "rpq-from a2 Transfer*");
      (sa, 13, "rpq-from a1 Transfer*");
      (sb, 14, "rpq-from nosuch Transfer*");
    ]
  in
  let replies, spents = Session.handle_batch lines in
  Alcotest.(check int) "four replies" 4 (List.length replies);
  Alcotest.(check int) "four spent shares" 4 (List.length spents);
  List.iter2
    (fun (_, id, line) r ->
      Alcotest.(check string) (Printf.sprintf "rpq-from id %d" id) (solo id line) r)
    lines replies

(* --- property: server sessions = stdio session, query by query ----------- *)

let command_pool =
  [|
    "ping";
    "rpq Transfer*";
    "rpq Transfer.Transfer*";
    "rpq-from a1 Transfer*";
    "shortest a1 a3 Transfer*";
    "query MATCH (x:Account)-[:Transfer]->(y) RETURN x.owner, y.owner";
    "set max-steps 40";
    "set max-steps none";
    "set max-results 2";
    "rpq Transfer)(";
    "rpq-from nosuch Transfer*";
    "definitely-not-a-command";
  |]

let gen_commands =
  QCheck.make
    ~print:(fun l -> String.concat " ; " l)
    QCheck.Gen.(
      map
        (fun idxs ->
          List.map (fun i -> command_pool.(i mod Array.length command_pool)) idxs)
        (list_size (int_range 1 8) (int_bound 1000)))

(* Reference semantics: a fresh single session handling the same lines
   with the same ids. *)
let reference_replies commands =
  let sess = Session.create (Session.make_shared Session.default_config) in
  List.mapi
    (fun i line ->
      match Session.handle_safe sess ~id:(i + 1) line with
      | Session.Reply s, _ | Session.Quit s, _ -> s
      | Session.Silent, _ -> "")
    commands

let prop_server_equals_session =
  QCheck.Test.make ~count:12 ~name:"server session = stdio session"
    gen_commands (fun cmds ->
      let cmds = (Printf.sprintf "load %s" (Lazy.force bank_file)) :: cmds in
      let expected = reference_replies cmds in
      let actual =
        let@ t = with_server (base_config ~workers:2 ()) in
        let c = connect t in
        let replies =
          List.map
            (fun line ->
              send c line;
              recv c)
            cmds
        in
        close_client c;
        replies
      in
      expected = actual)

(* --- suite ---------------------------------------------------------------- *)

let () =
  (* The ambient fault schedule of `make check-faults` arms serve.eval
     with a delay; these tests arm and disarm their own failpoints, so
     start from a clean registry. *)
  Failpoint.clear ();
  Alcotest.run "server"
    [
      ( "wire",
        [
          Alcotest.test_case "newline frames" `Quick test_framer_lines;
          Alcotest.test_case "split feeds" `Quick test_framer_split_feed;
          Alcotest.test_case "line bound" `Quick test_framer_too_long;
          Alcotest.test_case "eof tail" `Quick test_framer_eof_tail;
          Alcotest.test_case "utf8 validation" `Quick test_utf8;
        ] );
      ( "admission",
        [
          Alcotest.test_case "bounds + close" `Quick test_admission_bounds;
          Alcotest.test_case "concurrent prod/cons" `Quick test_admission_concurrent;
        ] );
      ("watchdog", [ Alcotest.test_case "sweep cancels" `Quick test_watchdog ]);
      ( "server",
        [
          Alcotest.test_case "quota shed" `Quick test_quota_shed;
          Alcotest.test_case "queue-full shed" `Quick test_queue_full_shed;
          Alcotest.test_case "budget shed" `Quick test_budget_shed;
          Alcotest.test_case "connect shed" `Quick test_connect_shed;
          Alcotest.test_case "hostile input" `Quick test_hostile_input;
          Alcotest.test_case "hostile + well-behaved" `Quick
            test_hostile_plus_wellbehaved;
          Alcotest.test_case "drain keeps in-flight" `Quick
            test_drain_keeps_inflight;
          Alcotest.test_case "watchdog cancels runaway" `Quick
            test_watchdog_cancels_runaway;
          Alcotest.test_case "stats server block" `Quick test_stats_server_block;
          Alcotest.test_case "batched replies attributed" `Quick
            test_session_batching;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_server_equals_session ] );
    ]
