(* Model-based tests for incremental graph updates (lib/graph/delta.ml),
   epoch snapshots, binary persistence, and fine-grained plan-cache
   invalidation.

   The core property: a chain of incremental [Delta.apply_res] calls
   must be indistinguishable from rebuilding the graph from scratch with
   [Pg.make] — same node/edge declaration order, same interned-label
   order, same CSR adjacency, same properties, same statistics
   (field-for-field against [Stats.of_elg]), and same RPQ/CRPQ answers
   at pool widths 1 and 4.  The reference is a trivial list model of the
   graph that each delta batch is replayed against sequentially. *)

let seed_arb = QCheck.(make ~print:string_of_int Gen.(int_range 0 1_000_000))

(* --- the reference model ------------------------------------------------- *)

type model = {
  mutable m_nodes : (string * string * (string * Value.t) list) list;
  mutable m_edges :
    (string * string * string * string * (string * Value.t) list) list;
  mutable m_deleted : string list; (* edge names freed by del *)
  mutable m_fresh : int;
}

let model_has_node m name = List.exists (fun (n, _, _) -> n = name) m.m_nodes
let model_has_edge m name =
  List.exists (fun (n, _, _, _, _) -> n = name) m.m_edges

(* Sequential-batch semantics, one op at a time: an add appends its edge
   (and any implicitly created endpoints, in first-mention order); a del
   removes the edge wherever it sits; a deln removes the node and every
   incident edge, freeing all their names.  Implicit nodes survive even
   when their add is later cancelled, which is why the model applies ops
   eagerly rather than netting the batch first. *)
let model_apply m (op : Pg.delta_op) =
  match op with
  | Pg.Add_edge { name; src; label; tgt; props } ->
      if not (model_has_node m src) then
        m.m_nodes <- m.m_nodes @ [ (src, "", []) ];
      if not (model_has_node m tgt) then
        m.m_nodes <- m.m_nodes @ [ (tgt, "", []) ];
      m.m_edges <- m.m_edges @ [ (name, src, label, tgt, props) ]
  | Pg.Del_edge name ->
      m.m_edges <- List.filter (fun (n, _, _, _, _) -> n <> name) m.m_edges;
      m.m_deleted <- name :: m.m_deleted
  | Pg.Del_node name ->
      m.m_nodes <- List.filter (fun (n, _, _) -> n <> name) m.m_nodes;
      m.m_edges <-
        List.filter
          (fun (en, s, _, t, _) ->
            if s = name || t = name then begin
              m.m_deleted <- en :: m.m_deleted;
              false
            end
            else true)
          m.m_edges

let model_rebuild m = Pg.make ~nodes:m.m_nodes ~edges:m.m_edges

(* --- scenario generation ------------------------------------------------- *)

let pick st l = List.nth l (Random.State.int st (List.length l))

let gen_base st =
  let nb = 3 + Random.State.int st 5 in
  let nodes = List.init nb (fun i -> (Printf.sprintf "n%d" i, "", [])) in
  let labels = [ "a"; "b"; "c" ] in
  let ne = Random.State.int st 12 in
  let edges =
    List.init ne (fun i ->
        ( Printf.sprintf "e%d" i,
          Printf.sprintf "n%d" (Random.State.int st nb),
          pick st labels,
          Printf.sprintf "n%d" (Random.State.int st nb),
          (if Random.State.bool st then [ ("w", Value.Int i) ] else []) ))
  in
  { m_nodes = nodes; m_edges = edges; m_deleted = []; m_fresh = 0 }

(* One valid batch, generated against (and replayed into) the model. *)
let gen_batch st m =
  let nops = 1 + Random.State.int st 5 in
  List.init nops (fun _ ->
      let can_del = m.m_edges <> [] in
      let can_deln = m.m_nodes <> [] in
      let roll = Random.State.int st 10 in
      let op =
        if can_deln && roll >= 9 then
          (* Occasionally drop a whole node (and its incident edges). *)
          Pg.Del_node ((fun (n, _, _) -> n) (pick st m.m_nodes))
        else if (not can_del) || roll < 6 then begin
          (* An add: mostly existing endpoints, sometimes an implicit
             node, occasionally a fresh label or a recycled edge name. *)
          let endpoint () =
            if m.m_nodes <> [] && Random.State.int st 10 < 8 then
              (fun (n, _, _) -> n) (pick st m.m_nodes)
            else begin
              m.m_fresh <- m.m_fresh + 1;
              Printf.sprintf "m%d" m.m_fresh
            end
          in
          let name =
            match m.m_deleted with
            | d :: _ when Random.State.int st 10 < 2 && not (model_has_edge m d)
              ->
                d
            | _ ->
                m.m_fresh <- m.m_fresh + 1;
                Printf.sprintf "x%d" m.m_fresh
          in
          let label =
            if Random.State.int st 10 < 1 then "zz"
            else pick st [ "a"; "b"; "c" ]
          in
          Pg.Add_edge
            {
              name;
              src = endpoint ();
              label;
              tgt = endpoint ();
              props =
                (if Random.State.bool st then [ ("w", Value.Int m.m_fresh) ]
                 else []);
            }
        end
        else
          Pg.Del_edge ((fun (n, _, _, _, _) -> n) (pick st m.m_edges))
      in
      model_apply m op;
      op)

(* --- structural equality ------------------------------------------------- *)

let names_out g v = List.map (Elg.edge_name g) (Elg.out_edges g v)
let names_in g v = List.map (Elg.edge_name g) (Elg.in_edges g v)

let check_graph_eq msg inc ref_pg =
  let gi = Pg.elg inc and gr = Pg.elg ref_pg in
  Alcotest.(check int) (msg ^ ": nodes") (Elg.nb_nodes gr) (Elg.nb_nodes gi);
  Alcotest.(check int) (msg ^ ": edges") (Elg.nb_edges gr) (Elg.nb_edges gi);
  Alcotest.(check (list string))
    (msg ^ ": node order")
    (List.init (Elg.nb_nodes gr) (Elg.node_name gr))
    (List.init (Elg.nb_nodes gi) (Elg.node_name gi));
  Alcotest.(check (list string))
    (msg ^ ": edge order")
    (List.init (Elg.nb_edges gr) (Elg.edge_name gr))
    (List.init (Elg.nb_edges gi) (Elg.edge_name gi));
  Alcotest.(check (list string))
    (msg ^ ": interned labels") (Elg.labels gr) (Elg.labels gi);
  for e = 0 to Elg.nb_edges gr - 1 do
    Alcotest.(check (pair int int))
      (msg ^ ": endpoints")
      (Elg.src gr e, Elg.tgt gr e)
      (Elg.src gi e, Elg.tgt gi e);
    Alcotest.(check int)
      (msg ^ ": edge label id") (Elg.edge_label_id gr e)
      (Elg.edge_label_id gi e)
  done;
  for v = 0 to Elg.nb_nodes gr - 1 do
    Alcotest.(check (list string))
      (msg ^ ": out adjacency") (names_out gr v) (names_out gi v);
    Alcotest.(check (list string))
      (msg ^ ": in adjacency") (names_in gr v) (names_in gi v);
    for l = 0 to Elg.nb_labels gr - 1 do
      Alcotest.(check (list int))
        (msg ^ ": label-partitioned spans")
        (Elg.out_label_edges gr v ~label:l)
        (Elg.out_label_edges gi v ~label:l)
    done;
    Alcotest.(check bool)
      (msg ^ ": node props") true
      (Pg.props_of ref_pg (Path.N v) = Pg.props_of inc (Path.N v))
  done;
  for e = 0 to Elg.nb_edges gr - 1 do
    Alcotest.(check bool)
      (msg ^ ": edge props") true
      (Pg.props_of ref_pg (Path.E e) = Pg.props_of inc (Path.E e))
  done

let check_stats_eq msg (got : Stats.t) (want : Stats.t) =
  Alcotest.(check int) (msg ^ ": graph_id") want.Stats.graph_id got.Stats.graph_id;
  Alcotest.(check int) (msg ^ ": nb_nodes") want.nb_nodes got.nb_nodes;
  Alcotest.(check int) (msg ^ ": nb_edges") want.nb_edges got.nb_edges;
  Alcotest.(check int) (msg ^ ": nb_labels") want.nb_labels got.nb_labels;
  Alcotest.(check (array string))
    (msg ^ ": label_names") want.label_names got.label_names;
  Alcotest.(check (array int))
    (msg ^ ": label_edges") want.label_edges got.label_edges;
  Alcotest.(check (array int))
    (msg ^ ": label_sources") want.label_sources got.label_sources;
  Alcotest.(check (array int))
    (msg ^ ": label_targets") want.label_targets got.label_targets;
  Alcotest.(check int)
    (msg ^ ": nodes_with_out") want.nodes_with_out got.nodes_with_out;
  Alcotest.(check int)
    (msg ^ ": nodes_with_in") want.nodes_with_in got.nodes_with_in;
  Alcotest.(check (array int)) (msg ^ ": out_hist") want.out_hist got.out_hist;
  Alcotest.(check (array int)) (msg ^ ": in_hist") want.in_hist got.in_hist;
  Alcotest.(check int)
    (msg ^ ": max_out_degree") want.max_out_degree got.max_out_degree;
  Alcotest.(check int)
    (msg ^ ": max_in_degree") want.max_in_degree got.max_in_degree

(* Run a random scenario: base graph + [batches] delta batches applied
   incrementally, handing each intermediate to [visit] along with the
   from-scratch reference. *)
let run_scenario seed ~batches visit =
  let st = Random.State.make [| seed |] in
  let m = gen_base st in
  let pg = ref (model_rebuild m) in
  for i = 1 to batches do
    let ops = gen_batch st m in
    match Delta.apply_res !pg ops with
    | Error err ->
        Alcotest.failf "valid batch rejected: %s" (Gq_error.to_string err)
    | Ok applied ->
        pg := applied.Delta.pg;
        visit i applied (model_rebuild m)
  done

(* --- properties ---------------------------------------------------------- *)

let prop_incremental_equals_rebuild =
  QCheck.Test.make ~count:120 ~name:"incremental apply = rebuild from scratch"
    seed_arb (fun seed ->
      run_scenario seed ~batches:4 (fun i applied ref_pg ->
          let msg = Printf.sprintf "batch %d" i in
          check_graph_eq msg applied.Delta.pg ref_pg;
          check_stats_eq msg applied.Delta.stats
            (Stats.of_elg (Pg.elg applied.Delta.pg));
          (* The memo serves the incremental stats without a rescan. *)
          let memo = Stats.get (Pg.elg applied.Delta.pg) in
          Alcotest.(check bool) (msg ^ ": memo seeded") true
            (memo == applied.Delta.stats));
      true)

let queries =
  Regex.
    [
      Atom (Sym.Lbl "a");
      Seq (Atom (Sym.Lbl "a"), Star (Atom (Sym.Lbl "b")));
      Star (Alt (Atom (Sym.Lbl "a"), Atom (Sym.Lbl "c")));
      Star (Atom Sym.Any);
    ]

let prop_answers_equal =
  QCheck.Test.make ~count:120 ~name:"RPQ/CRPQ answers survive deltas" seed_arb
    (fun seed ->
      let pool1 = Pool.create ~size:1 () and pool4 = Pool.create ~size:4 () in
      run_scenario seed ~batches:3 (fun i applied ref_pg ->
          let gi = Pg.elg applied.Delta.pg and gr = Pg.elg ref_pg in
          List.iter
            (fun r ->
              let want = Rpq_eval.pairs ~pool:pool1 gr r in
              Alcotest.(check bool)
                (Printf.sprintf "batch %d: pairs width 1" i)
                true
                (Rpq_eval.pairs ~pool:pool1 gi r = want);
              Alcotest.(check bool)
                (Printf.sprintf "batch %d: pairs width 4" i)
                true
                (Rpq_eval.pairs ~pool:pool4 gi r = want))
            queries;
          let crpq =
            Crpq.make ~head:[ "x"; "z" ]
              ~atoms:
                [
                  {
                    Crpq.re = Regex.Star (Regex.Atom (Sym.Lbl "a"));
                    x = Crpq.TVar "x";
                    y = Crpq.TVar "y";
                  };
                  {
                    Crpq.re = Regex.Atom (Sym.Lbl "b");
                    x = Crpq.TVar "y";
                    y = Crpq.TVar "z";
                  };
                ]
          in
          Alcotest.(check bool)
            (Printf.sprintf "batch %d: crpq" i)
            true
            (Crpq.eval gi crpq = Crpq.eval gr crpq));
      true)

(* Cached evaluation through [Rpq_compile.apply_delta] must agree with
   evaluating cold on the post-delta graph — including wildcard queries,
   which can never be retained. *)
let prop_cache_consistency =
  QCheck.Test.make ~count:120 ~name:"plan cache consistent across deltas"
    seed_arb (fun seed ->
      let t = Rpq_compile.create ~enabled:true () in
      let texts = [ "a"; "a.b*"; "(a|c)*"; "_*" ] in
      let compiled =
        List.map
          (fun s ->
            match Rpq_compile.compile t s with
            | Ok c -> c
            | Error _ -> Alcotest.failf "compile %s" s)
          texts
      in
      let eval g c =
        Governor.payload ~default:[]
          (Rpq_compile.pairs_bounded t (Governor.unlimited ()) g c)
      in
      let st = Random.State.make [| seed |] in
      let m = gen_base st in
      let pg = ref (model_rebuild m) in
      Rpq_compile.set_generation t (Elg.id (Pg.elg !pg));
      (* Warm every product on the base graph. *)
      List.iter (fun c -> ignore (eval (Pg.elg !pg) c)) compiled;
      for i = 1 to 3 do
        let ops = gen_batch st m in
        match Delta.apply_res !pg ops with
        | Error err ->
            Alcotest.failf "valid batch rejected: %s" (Gq_error.to_string err)
        | Ok applied ->
            let old_g = Pg.elg !pg and new_g = Pg.elg applied.Delta.pg in
            let s = applied.Delta.summary in
            Rpq_compile.apply_delta t ~old_graph:old_g ~new_graph:new_g
              ~touched_labels:s.Elg.touched_labels
              ~nodes_stable:(s.Elg.added_nodes = 0 && s.Elg.removed_nodes = 0);
            pg := applied.Delta.pg;
            List.iter
              (fun c ->
                let cold =
                  Governor.payload ~default:[]
                    (Rpq_eval.pairs_bounded (Governor.unlimited ()) new_g
                       c.Plan_cache.ast)
                in
                Alcotest.(check bool)
                  (Printf.sprintf "batch %d: cached = cold" i)
                  true
                  (eval new_g c = cold))
              compiled
      done;
      true)

(* --- deterministic pins --------------------------------------------------- *)

let mk_pg nodes edges =
  Pg.make
    ~nodes:(List.map (fun n -> (n, "", [])) nodes)
    ~edges:(List.map (fun (n, s, l, t) -> (n, s, l, t, [])) edges)

let apply_exn pg ops =
  match Delta.apply_res pg ops with
  | Ok a -> a
  | Error err -> Alcotest.failf "apply: %s" (Gq_error.to_string err)

let test_label_table_evolution () =
  let pg =
    mk_pg [ "u"; "v" ] [ ("e1", "u", "b", "v"); ("e2", "v", "d", "u") ]
  in
  (* A fresh label "a" sorts before both existing labels: every interned
     id shifts, and the new table must still be sorted. *)
  let a1 =
    apply_exn pg [ Pg.Add_edge { name = "e3"; src = "u"; label = "a"; tgt = "v"; props = [] } ]
  in
  let g1 = Pg.elg a1.Delta.pg in
  Alcotest.(check (list string)) "fresh label sorts first" [ "a"; "b"; "d" ]
    (Elg.labels g1);
  Alcotest.(check int) "e1 remapped" 1
    (Elg.edge_label_id g1 (Elg.edge_id g1 "e1"));
  Alcotest.(check bool) "relabeled flagged" true a1.Delta.summary.Elg.relabeled;
  (* Emptying label "d" shrinks the table. *)
  let a2 = apply_exn a1.Delta.pg [ Pg.Del_edge "e2" ] in
  let g2 = Pg.elg a2.Delta.pg in
  Alcotest.(check (list string)) "emptied label dropped" [ "a"; "b" ]
    (Elg.labels g2);
  Alcotest.(check bool) "shrink flagged" true a2.Delta.summary.Elg.relabeled;
  (* A label-preserving delta shares the table (no relabel). *)
  let a3 =
    apply_exn a2.Delta.pg
      [ Pg.Add_edge { name = "e4"; src = "v"; label = "b"; tgt = "u"; props = [] } ]
  in
  Alcotest.(check bool) "stable table" false a3.Delta.summary.Elg.relabeled

let test_bad_batches_leave_graph_untouched () =
  let pg = mk_pg [ "u"; "v" ] [ ("e1", "u", "a", "v") ] in
  let before = Rpq_eval.pairs (Pg.elg pg) (Regex.Atom (Sym.Lbl "a")) in
  let expect_error ops =
    match Delta.apply_res pg ops with
    | Ok _ -> Alcotest.fail "bad batch accepted"
    | Error err ->
        Alcotest.(check string) "parse kind" "parse" (Gq_error.kind err)
  in
  expect_error [ Pg.Del_edge "nosuch" ];
  expect_error [ Pg.Del_edge "e1"; Pg.Del_edge "e1" ];
  expect_error
    [ Pg.Add_edge { name = "e1"; src = "u"; label = "a"; tgt = "v"; props = [] } ];
  (* duplicate add within one batch *)
  expect_error
    [
      Pg.Add_edge { name = "x"; src = "u"; label = "a"; tgt = "v"; props = [] };
      Pg.Add_edge { name = "x"; src = "v"; label = "a"; tgt = "u"; props = [] };
    ];
  Alcotest.(check bool) "graph unchanged" true
    (Rpq_eval.pairs (Pg.elg pg) (Regex.Atom (Sym.Lbl "a")) = before)

let test_delta_parser () =
  let ops =
    match
      Delta.parse_res
        "# comment\nadd x u a v w=3\n\ndel e1\nadd y u b v name=Ada ok=true"
    with
    | Ok ops -> ops
    | Error err -> Alcotest.failf "parse: %s" (Gq_error.to_string err)
  in
  (match ops with
  | [
   Pg.Add_edge { name = "x"; src = "u"; label = "a"; tgt = "v"; props = [ ("w", Value.Int 3) ] };
   Pg.Del_edge "e1";
   Pg.Add_edge { name = "y"; props = [ ("name", Value.Text "Ada"); ("ok", Value.Bool true) ]; _ };
  ] ->
      ()
  | _ -> Alcotest.fail "unexpected parse");
  (match Delta.parse_res "add x u a" with
  | Error err -> Alcotest.(check string) "kind" "parse" (Gq_error.kind err)
  | Ok _ -> Alcotest.fail "truncated add accepted");
  match Delta.parse_res "frobnicate x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown op accepted"

(* --- binary persistence --------------------------------------------------- *)

let prop_binary_roundtrip =
  QCheck.Test.make ~count:120 ~name:"GQB1 round-trip is the identity"
    seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = gen_base st in
      (* A couple of deltas first, so round-tripping covers post-delta
         shapes (shared tables, implicit nodes). *)
      let pg = ref (model_rebuild m) in
      for _ = 1 to 2 do
        let ops = gen_batch st m in
        match Delta.apply_res !pg ops with
        | Ok a -> pg := a.Delta.pg
        | Error err -> Alcotest.failf "apply: %s" (Gq_error.to_string err)
      done;
      let bytes = Graph_io.to_bin_string !pg in
      (match Graph_io.of_bin_string_res bytes with
      | Error err -> Alcotest.failf "decode: %s" (Gq_error.to_string err)
      | Ok back -> check_graph_eq "round-trip" back !pg);
      true)

let prop_binary_corruption_rejected =
  QCheck.Test.make ~count:120 ~name:"corrupt GQB1 bytes are rejected totally"
    seed_arb (fun seed ->
      let st = Random.State.make [| seed |] in
      let m = gen_base st in
      let bytes = Graph_io.to_bin_string (model_rebuild m) in
      let n = String.length bytes in
      (* Truncation at a random point. *)
      let cut = Random.State.int st n in
      (match Graph_io.of_bin_string_res (String.sub bytes 0 cut) with
      | Error (Gq_error.Parse { what = "binary graph"; _ }) -> ()
      | Error _ -> Alcotest.fail "truncation: wrong error shape"
      | Ok _ -> Alcotest.fail "truncation accepted");
      (* A single flipped bit anywhere: magic, length, checksum or
         payload — each is caught by its own check. *)
      let flipped pos bit =
        let b = Bytes.of_string bytes in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
        Bytes.to_string b
      in
      let reject what s =
        match Graph_io.of_bin_string_res s with
        | Error (Gq_error.Parse { what = "binary graph"; _ }) -> ()
        | Error _ -> Alcotest.failf "%s: wrong error shape" what
        | Ok _ -> Alcotest.failf "%s accepted" what
      in
      reject "bit flip"
        (flipped (Random.State.int st n) (Random.State.int st 8));
      (* The top bit of the u64 length field specifically: it is exactly
         the bit a 63-bit-int comparison would drop, and the checksum
         does not cover the header. *)
      reject "length sign-bit flip" (flipped 11 7);
      true)

let test_binary_sniffing () =
  let pg = Generators.bank_pg () in
  let dir = Filename.temp_file "gq_updates" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let bin = Filename.concat dir "bank.gqb" in
      (match Graph_io.save_bin_res pg bin with
      | Ok bytes -> Alcotest.(check bool) "bytes written" true (bytes > 0)
      | Error err -> Alcotest.failf "save: %s" (Gq_error.to_string err));
      (match Graph_io.load_file_res bin with
      | Ok back -> check_graph_eq "binary load" back pg
      | Error err -> Alcotest.failf "load bin: %s" (Gq_error.to_string err));
      (* The sniffing loader still reads the text format. *)
      let txt = Filename.concat dir "bank.graph" in
      let oc = open_out txt in
      output_string oc (Graph_io.to_string pg);
      close_out oc;
      match Graph_io.load_file_res txt with
      | Ok back ->
          Alcotest.(check int) "text load nodes"
            (Elg.nb_nodes (Pg.elg pg))
            (Elg.nb_nodes (Pg.elg back))
      | Error err -> Alcotest.failf "load text: %s" (Gq_error.to_string err))

(* --- epoch snapshots ------------------------------------------------------ *)

let test_epoch_basics () =
  let e = Epoch.create () in
  Alcotest.(check int) "empty epoch" 0 (Epoch.epoch e);
  Alcotest.(check bool) "empty snapshot" true (Epoch.snapshot e = None);
  Alcotest.(check int) "first publish" 1 (Epoch.publish e "g1");
  Alcotest.(check int) "second publish" 2 (Epoch.publish e "g2");
  Alcotest.(check bool) "current" true (Epoch.current e = Some (2, "g2"))

let test_epoch_isolation () =
  (* A reader that grabbed its snapshot keeps it across publishes. *)
  let e = Epoch.create () in
  ignore (Epoch.publish e [ 1; 2; 3 ]);
  let snap = Epoch.snapshot e in
  ignore (Epoch.publish e [ 4 ]);
  Alcotest.(check bool) "reader pinned" true (snap = Some [ 1; 2; 3 ]);
  Alcotest.(check bool) "writer advanced" true (Epoch.snapshot e = Some [ 4 ])

(* --- label-keyed retention (the warm-cache regression) -------------------- *)

let test_untouched_label_stays_warm () =
  let t = Rpq_compile.create ~enabled:true () in
  let nodes = [ "u"; "v"; "w" ] in
  let pg =
    mk_pg nodes [ ("ea", "u", "a", "v"); ("ed0", "v", "d", "w") ]
  in
  let c =
    match Rpq_compile.compile t "a.a*" with
    | Ok c -> c
    | Error _ -> Alcotest.fail "compile"
  in
  let eval g =
    Governor.payload ~default:[]
      (Rpq_compile.pairs_bounded t (Governor.unlimited ()) g c)
  in
  let pg = ref pg in
  Rpq_compile.set_generation t (Elg.id (Pg.elg !pg));
  let baseline = eval (Pg.elg !pg) in
  Alcotest.(check bool) "warm" true (Rpq_compile.product_cached t (Pg.elg !pg) c);
  (* 100 deltas touching only label "d" (add then del, endpoints all
     existing, so the node set is stable): the "a"-product must ride
     every one of them without a rebuild. *)
  for i = 1 to 100 do
    let ops =
      if i mod 2 = 1 then
        [ Pg.Add_edge { name = Printf.sprintf "ed%d" i; src = "v"; label = "d"; tgt = "w"; props = [] } ]
      else [ Pg.Del_edge (Printf.sprintf "ed%d" (i - 1)) ]
    in
    let applied = apply_exn !pg ops in
    let s = applied.Delta.summary in
    Rpq_compile.apply_delta t ~old_graph:(Pg.elg !pg)
      ~new_graph:(Pg.elg applied.Delta.pg)
      ~touched_labels:s.Elg.touched_labels
      ~nodes_stable:(s.Elg.added_nodes = 0 && s.Elg.removed_nodes = 0);
    pg := applied.Delta.pg
  done;
  Alcotest.(check bool) "still warm after 100 deltas" true
    (Rpq_compile.product_cached t (Pg.elg !pg) c);
  Alcotest.(check int) "never invalidated by label" 0
    (Rpq_compile.invalidated_by_label t);
  Alcotest.(check int) "retained across every delta" 100
    (Rpq_compile.retained t);
  let misses_before = Rpq_compile.product_misses t in
  Alcotest.(check bool) "answers unchanged" true
    (eval (Pg.elg !pg) = baseline);
  Alcotest.(check int) "served without a rebuild" misses_before
    (Rpq_compile.product_misses t);
  (* Touching "a" finally kills it. *)
  let applied = apply_exn !pg [ Pg.Del_edge "ea" ] in
  let s = applied.Delta.summary in
  Rpq_compile.apply_delta t ~old_graph:(Pg.elg !pg)
    ~new_graph:(Pg.elg applied.Delta.pg)
    ~touched_labels:s.Elg.touched_labels
    ~nodes_stable:(s.Elg.added_nodes = 0 && s.Elg.removed_nodes = 0);
  Alcotest.(check bool) "touched label drops" false
    (Rpq_compile.product_cached t (Pg.elg applied.Delta.pg) c);
  Alcotest.(check int) "counted as label invalidation" 1
    (Rpq_compile.invalidated_by_label t)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "updates"
    [
      ( "model",
        [
          qt prop_incremental_equals_rebuild;
          qt prop_answers_equal;
          qt prop_cache_consistency;
        ] );
      ( "pins",
        [
          Alcotest.test_case "label table evolution" `Quick
            test_label_table_evolution;
          Alcotest.test_case "bad batches rejected" `Quick
            test_bad_batches_leave_graph_untouched;
          Alcotest.test_case "delta parser" `Quick test_delta_parser;
        ] );
      ( "binary",
        [
          qt prop_binary_roundtrip;
          qt prop_binary_corruption_rejected;
          Alcotest.test_case "save/load + sniffing" `Quick test_binary_sniffing;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "basics" `Quick test_epoch_basics;
          Alcotest.test_case "isolation" `Quick test_epoch_isolation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "untouched label stays warm" `Quick
            test_untouched_label_stays_warm;
        ] );
    ]
