#!/bin/sh
# Concurrent-load smoke for `gqd --listen`: one server, one hostile
# client (expensive queries, oversized lines, binary garbage) and six
# well-behaved clients hammering it at the same time.  Fatal if any
# well-behaved reply is dropped, garbled, shed, or an error, and the
# final SIGTERM drain must exit 0 and unlink the socket.  Run by
# `make check-serve` at GQ_DOMAINS=1 and 4.
set -eu

GQD=$1
GQD_ABS=$(cd "$(dirname "$GQD")" && pwd)/$(basename "$GQD")
tmp=$(mktemp -d)
SRV=
trap 'kill "${SRV:-}" 2> /dev/null || true; rm -rf "$tmp"' EXIT

"$GQD_ABS" demo > "$tmp/bank.graph"
SOCK="$tmp/gq.sock"

( cd "$tmp" && GQ_FAILPOINTS= exec "$GQD_ABS" --listen "unix:$SOCK" \
    --queue-depth 256 > /dev/null 2> "$tmp/server.err" ) &
SRV=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  [ "$i" -le 100 ] || { echo "serve-smoke: server socket never appeared" >&2; exit 1; }
  sleep 0.05
done

# Seed the shared snapshot once; every client then queries it.
printf 'load bank.graph\n' | "$GQD_ABS" client "unix:$SOCK" > "$tmp/load.out"
grep -q '"status":"ok"' "$tmp/load.out" \
  || { echo "serve-smoke: load failed" >&2; cat "$tmp/load.out" >&2; exit 1; }

# The well-behaved mix: synchronous clients, one reply per line.
j=0
while [ $j -lt 5 ]; do
  printf 'ping\nrpq Transfer*\nrpq-from a1 Transfer*\nshortest a1 a3 Transfer*\nquery MATCH (x:Account)-[:Transfer]->(y) RETURN x.owner, y.owner\n'
  j=$((j + 1))
done > "$tmp/cmds.txt"
total=$(wc -l < "$tmp/cmds.txt")

# The hostile pipeline: floods without reading, mixing expensive
# queries with frames the wire layer must reject.
k=0
while [ $k -lt 20 ]; do
  printf 'rpq (Transfer.Transfer)*\n'
  head -c 30000 /dev/zero | tr '\0' 'z'
  printf '\n'
  printf '\303\050\n'
  printf 'no-such-command\n'
  k=$((k + 1))
done > "$tmp/hostile.txt"
"$GQD_ABS" client "unix:$SOCK" --pipeline \
  < "$tmp/hostile.txt" > "$tmp/hostile.out" 2>&1 || true &
HPID=$!

pids=
c=0
while [ $c -lt 6 ]; do
  "$GQD_ABS" client "unix:$SOCK" < "$tmp/cmds.txt" > "$tmp/wb$c.out" &
  pids="$pids $!"
  c=$((c + 1))
done
for p in $pids; do
  wait "$p" || { echo "serve-smoke: well-behaved client exited nonzero" >&2; exit 1; }
done
wait "$HPID" || true

# Every well-behaved reply arrived, parses, and succeeded.
c=0
while [ $c -lt 6 ]; do
  got=$(wc -l < "$tmp/wb$c.out")
  [ "$got" -eq "$total" ] \
    || { echo "serve-smoke: client $c got $got of $total replies" >&2; exit 1; }
  bad=$(grep -cv '^{"id":[0-9][0-9]*,"cmd":"[a-z-]*","status":"' "$tmp/wb$c.out" || true)
  [ "$bad" -eq 0 ] \
    || { echo "serve-smoke: client $c has $bad garbled replies" >&2; cat "$tmp/wb$c.out" >&2; exit 1; }
  shed=$(grep -c '"status":"shed"' "$tmp/wb$c.out" || true)
  [ "$shed" -eq 0 ] \
    || { echo "serve-smoke: well-behaved client $c was shed $shed times" >&2; exit 1; }
  errs=$(grep -c '"status":"error"' "$tmp/wb$c.out" || true)
  [ "$errs" -eq 0 ] \
    || { echo "serve-smoke: client $c got $errs error replies" >&2; cat "$tmp/wb$c.out" >&2; exit 1; }
  c=$((c + 1))
done

# The hostile client was answered, not crashed into: it must have seen
# at least one structured reply per line it managed to deliver.
grep -q '"status":"error"' "$tmp/hostile.out" \
  || { echo "serve-smoke: hostile client saw no structured errors" >&2; exit 1; }

kill -TERM "$SRV"
wait "$SRV" || {
  echo "serve-smoke: drain exited nonzero" >&2
  cat "$tmp/server.err" >&2
  exit 1
}
SRV=
[ ! -S "$SOCK" ] || { echo "serve-smoke: drain left the socket behind" >&2; exit 1; }

echo "serve-smoke: 6 clients x $total replies clean under hostile load (GQ_DOMAINS=${GQ_DOMAINS:-default})"
