#!/bin/sh
# Bench smoke: a quick E17 run must pass its internal correctness checks
# (the indexed and parallel engines against the seed baseline), emit
# JSONL rows carrying engine counters, and write a well-formed span
# trace when asked.
set -eu

BENCH="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" E17 --quick "--trace-json=$tmp/trace.jsonl" > "$tmp/out"

grep -q '"engine":"indexed-serial".*"counters":{"' "$tmp/out" \
  || { echo "bench-smoke: E17 rows carry no counters" >&2; exit 1; }

[ -s "$tmp/trace.jsonl" ] \
  || { echo "bench-smoke: --trace-json produced no spans" >&2; exit 1; }
grep -q '"span":"rpq.eval"' "$tmp/trace.jsonl" \
  || { echo "bench-smoke: trace is missing the rpq.eval span" >&2; exit 1; }
if grep -v '^{"span":".*","domain":[0-9]*,"depth":[0-9]*,"start_s":[0-9.]*,"end_s":[0-9.]*,"dur_ms":[0-9.]*}$' "$tmp/trace.jsonl"; then
  echo "bench-smoke: malformed trace line" >&2
  exit 1
fi

echo "bench-smoke: E17 counters and trace OK"
