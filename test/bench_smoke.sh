#!/bin/sh
# Bench smoke: a quick E17 run must pass its internal correctness checks
# (the indexed and parallel engines against the seed baseline), emit
# JSONL rows carrying engine counters, and write a well-formed span
# trace when asked.
set -eu

BENCH="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" E17 --quick "--trace-json=$tmp/trace.jsonl" > "$tmp/out"

grep -q '"engine":"indexed-serial".*"counters":{"' "$tmp/out" \
  || { echo "bench-smoke: E17 rows carry no counters" >&2; exit 1; }

[ -s "$tmp/trace.jsonl" ] \
  || { echo "bench-smoke: --trace-json produced no spans" >&2; exit 1; }
grep -q '"span":"rpq.eval"' "$tmp/trace.jsonl" \
  || { echo "bench-smoke: trace is missing the rpq.eval span" >&2; exit 1; }
if grep -v '^{"span":".*","domain":[0-9]*,"depth":[0-9]*,"start_s":[0-9.]*,"end_s":[0-9.]*,"dur_ms":[0-9.]*}$' "$tmp/trace.jsonl"; then
  echo "bench-smoke: malformed trace line" >&2
  exit 1
fi

# E22 is fatal on any disagreement between the packed kernel (serial or
# width-2) and the scalar indexed engine, so a zero exit is itself the
# parity gate; additionally pin that the rows carry the packed-kernel
# counters and a genuine width-2 row.
"$BENCH" E22 --quick > "$tmp/e22.out"

grep -q '"engine":"bitset-serial".*"rpq.bitset.sweeps":' "$tmp/e22.out" \
  || { echo "bench-smoke: E22 bitset row carries no packed-kernel counters" >&2; exit 1; }
grep -q '"engine":"bitset-parallel".*"rpq.par_width":2' "$tmp/e22.out" \
  || { echo "bench-smoke: E22 has no width-2 row" >&2; exit 1; }
grep -q '"graph":"hub".*"engine":"bitset-serial"' "$tmp/e22.out" \
  || { echo "bench-smoke: E22 is missing the hub workload" >&2; exit 1; }

# E20 enforces its own fatal checks: warm-cache answers equal cold,
# warm >= 3x faster, planner answers equal left-to-right, planner faster
# on the skewed graph.  Here we additionally pin the row shape.
"$BENCH" E20 --quick > "$tmp/e20.out"

grep -q '"phase":"cache","mode":"warm"' "$tmp/e20.out" \
  || { echo "bench-smoke: E20 emitted no warm-cache row" >&2; exit 1; }
grep -q '"phase":"planner","planner":true.*"est_card":' "$tmp/e20.out" \
  || { echo "bench-smoke: E20 planner row carries no estimate" >&2; exit 1; }

echo "bench-smoke: E17 counters/trace, E22 kernel parity and E20 plan checks OK"
