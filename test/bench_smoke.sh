#!/bin/sh
# Bench smoke: a quick E17 run must pass its internal correctness checks
# (the indexed and parallel engines against the seed baseline), emit
# JSONL rows carrying engine counters, and write a well-formed span
# trace when asked.
set -eu

BENCH="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BENCH" E17 --quick "--trace-json=$tmp/trace.jsonl" > "$tmp/out"

grep -q '"engine":"indexed-serial".*"counters":{"' "$tmp/out" \
  || { echo "bench-smoke: E17 rows carry no counters" >&2; exit 1; }

[ -s "$tmp/trace.jsonl" ] \
  || { echo "bench-smoke: --trace-json produced no spans" >&2; exit 1; }
grep -q '"span":"rpq.eval"' "$tmp/trace.jsonl" \
  || { echo "bench-smoke: trace is missing the rpq.eval span" >&2; exit 1; }
if grep -v '^{"span":".*","domain":[0-9]*,"depth":[0-9]*,"start_s":[0-9.]*,"end_s":[0-9.]*,"dur_ms":[0-9.]*}$' "$tmp/trace.jsonl"; then
  echo "bench-smoke: malformed trace line" >&2
  exit 1
fi

# E22 is fatal on any disagreement between the packed kernel (serial or
# width-2) and the scalar indexed engine, so a zero exit is itself the
# parity gate; additionally pin that the rows carry the packed-kernel
# counters and a genuine width-2 row.
"$BENCH" E22 --quick > "$tmp/e22.out"

grep -q '"engine":"bitset-serial".*"rpq.bitset.sweeps":' "$tmp/e22.out" \
  || { echo "bench-smoke: E22 bitset row carries no packed-kernel counters" >&2; exit 1; }
grep -q '"engine":"bitset-parallel".*"rpq.par_width":2' "$tmp/e22.out" \
  || { echo "bench-smoke: E22 has no width-2 row" >&2; exit 1; }
grep -q '"graph":"hub".*"engine":"bitset-serial"' "$tmp/e22.out" \
  || { echo "bench-smoke: E22 is missing the hub workload" >&2; exit 1; }

# E25 is fatal on answer equality between push, pull, adaptive and the
# scalar engine, on the count-only O(blocks) pin, and on the policy
# gating cases, so a zero exit is itself the gate; additionally pin the
# row shapes and — since E25 shares the kernel with E22 — a fatal
# no-regression gate on the E22 hub row measured above: the packed
# kernel must still beat the scalar engine on the hub workload.
"$BENCH" E25 --quick > "$tmp/e25.out"

grep -q '"phase":"stream","graph":"random_graph".*"mode":"push".*"rpq.bitset.materialized":[1-9]' "$tmp/e25.out" \
  || { echo "bench-smoke: E25 stream row carries no emission counter" >&2; exit 1; }
grep -q '"phase":"stream".*"mode":"adaptive"' "$tmp/e25.out" \
  || { echo "bench-smoke: E25 emitted no adaptive stream row" >&2; exit 1; }
grep -q '"phase":"count_pull".*"mode":"pull".*"rpq.bitset.pull_sweeps":[1-9]' "$tmp/e25.out" \
  || { echo "bench-smoke: E25 pull row did not pull" >&2; exit 1; }
if grep '"phase":"count_pull"' "$tmp/e25.out" | grep -q '"rpq.bitset.materialized"'; then
  echo "bench-smoke: E25 count-only row materialized pairs" >&2; exit 1
fi
grep -q '"phase":"policy".*"reason":"few_units"' "$tmp/e25.out" \
  || { echo "bench-smoke: E25 emitted no few_units policy row" >&2; exit 1; }
grep -q '"phase":"policy".*"reason":"calibrated_serial"' "$tmp/e25.out" \
  || { echo "bench-smoke: E25 emitted no calibrated_serial policy row" >&2; exit 1; }
grep -q '"phase":"persistence","format":"binary"' "$tmp/e25.out" \
  || { echo "bench-smoke: E25 emitted no binary persistence row" >&2; exit 1; }

hub_regressed=$(awk '
  /"graph":"hub"/ && /"engine":"scalar-serial"/ {
    if (match($0, /"elapsed_ms":[0-9.]+/))
      scalar = substr($0, RSTART + 13, RLENGTH - 13)
  }
  /"graph":"hub"/ && /"engine":"bitset-serial"/ {
    if (match($0, /"elapsed_ms":[0-9.]+/))
      bitset = substr($0, RSTART + 13, RLENGTH - 13)
  }
  END {
    if (scalar == "" || bitset == "") { print "missing"; exit }
    if (bitset + 0 < scalar + 0) print "ok"; else print "regressed"
  }' "$tmp/e22.out")
[ "$hub_regressed" = "ok" ] \
  || { echo "bench-smoke: E22 hub row regressed ($hub_regressed): packed kernel no longer beats scalar" >&2; exit 1; }

# E20 enforces its own fatal checks: warm-cache answers equal cold,
# warm >= 3x faster, planner answers equal left-to-right, planner faster
# on the skewed graph.  Here we additionally pin the row shape.
"$BENCH" E20 --quick > "$tmp/e20.out"

grep -q '"phase":"cache","mode":"warm"' "$tmp/e20.out" \
  || { echo "bench-smoke: E20 emitted no warm-cache row" >&2; exit 1; }
grep -q '"phase":"planner","planner":true.*"est_card":' "$tmp/e20.out" \
  || { echo "bench-smoke: E20 planner row carries no estimate" >&2; exit 1; }

# E23 is fatal on any divergence between the incremental-update pipeline
# and the full-reload baseline (answer equality, hit-rate strictly
# above, warm migration, binary round-trip), so a zero exit is itself
# the gate; additionally pin that the incremental row shows retained
# products and a non-zero hit rate while the baseline shows none, and
# that both persistence formats emitted a timing row.
"$BENCH" E23 --quick > "$tmp/e23.out"

grep -q '"mode":"incremental".*"hit_rate":0\.[1-9].*"invalidated_by_label":0' "$tmp/e23.out" \
  || { echo "bench-smoke: E23 incremental row shows no warm hit rate" >&2; exit 1; }
grep -q '"mode":"incremental".*"retained":[1-9]' "$tmp/e23.out" \
  || { echo "bench-smoke: E23 incremental row retained nothing" >&2; exit 1; }
grep -q '"mode":"full_reload".*"hit_rate":0\.000' "$tmp/e23.out" \
  || { echo "bench-smoke: E23 baseline row is not cache-cold" >&2; exit 1; }
grep -q '"phase":"persistence","format":"binary"' "$tmp/e23.out" \
  || { echo "bench-smoke: E23 emitted no binary persistence row" >&2; exit 1; }
grep -q '"phase":"persistence","format":"text"' "$tmp/e23.out" \
  || { echo "bench-smoke: E23 emitted no text persistence row" >&2; exit 1; }

# E24 is fatal on its structural invariants (always fsyncs every
# append, the weaker policies group-commit, recovery replays every
# record and answers queries like the live graph), so a zero exit is
# itself the gate; additionally pin that all three policy rows and the
# recovery rows were emitted.
"$BENCH" E24 --quick > "$tmp/e24.out"

grep -q '"phase":"append","policy":"always".*"fsyncs":[1-9]' "$tmp/e24.out" \
  || { echo "bench-smoke: E24 always row shows no fsyncs" >&2; exit 1; }
grep -q '"phase":"append","policy":"interval:5"' "$tmp/e24.out" \
  || { echo "bench-smoke: E24 emitted no interval policy row" >&2; exit 1; }
grep -q '"phase":"append","policy":"never".*"fsyncs":0' "$tmp/e24.out" \
  || { echo "bench-smoke: E24 never row is not fsync-free" >&2; exit 1; }
grep -q '"phase":"recovery","records":[1-9]' "$tmp/e24.out" \
  || { echo "bench-smoke: E24 emitted no recovery row" >&2; exit 1; }

echo "bench-smoke: E17 counters/trace, E22 kernel parity, E25 push/pull + streaming, E20 plan, E23 update and E24 durability checks OK"
