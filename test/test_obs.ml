(* The telemetry layer itself: counter determinism under sharing, span
   nesting well-formedness, JSONL output shape, and the atomicity
   guarantee that per-domain contributions merge without losing ticks. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- counters -------------------------------------------------------------- *)

let test_counter_determinism () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x.ticks" in
  for _ = 1 to 100 do Metrics.incr c done;
  Metrics.add c 23;
  check_int "100 incrs + add 23" 123 (Metrics.value c);
  (* Get-or-register: the same name resolves to the same counter. *)
  Metrics.incr (Metrics.counter m "x.ticks");
  check_int "same name, same counter" 124 (Metrics.value c);
  check "snapshot sorted by name"
    true
    (let _ = Metrics.counter m "a.first" in
     List.map fst (Metrics.counters m) = [ "a.first"; "x.ticks" ]);
  Metrics.reset m;
  check_int "reset zeroes, handle stays valid" 0 (Metrics.value c);
  Metrics.incr c;
  check_int "post-reset bump" 1 (Metrics.value c)

let test_disabled_sink_is_noop () =
  check "none is disabled" false (Obs.enabled Obs.none);
  (* Bumping a disabled sink must not raise and must record nothing. *)
  Obs.add Obs.none "x" 5;
  Obs.incr Obs.none "x";
  (Obs.counter_fn Obs.none "x") 7;
  check "no counters on none" true (Obs.counters Obs.none = []);
  check "summary empty on none" true (Obs.summary Obs.none = "");
  let r = Obs.span Obs.none "s" (fun () -> 42) in
  check_int "span on none runs the body" 42 r

let test_sink_summary () =
  let m = Metrics.create () in
  let obs = Obs.make ~metrics:m () in
  check "make with metrics is enabled" true (Obs.enabled obs);
  Obs.add obs "b.second" 2;
  Obs.add obs "a.first" 1;
  Alcotest.(check string)
    "summary lines sorted" "a.first 1\nb.second 2\n" (Obs.summary obs)

(* --- spans ----------------------------------------------------------------- *)

let test_span_nesting () =
  let now = ref 0.0 in
  let tr = Trace.create ~clock:(fun () -> now := !now +. 1.0; !now) () in
  Trace.with_span tr "outer" (fun () ->
      Trace.with_span tr "inner_a" (fun () -> ());
      Trace.with_span tr "inner_b" (fun () -> ()));
  let events = Trace.events tr in
  check_int "three spans" 3 (List.length events);
  let find name = List.find (fun e -> e.Trace.name = name) events in
  let outer = find "outer" and a = find "inner_a" and b = find "inner_b" in
  check_int "outer at depth 0" 0 outer.Trace.depth;
  check_int "inner_a at depth 1" 1 a.Trace.depth;
  check_int "inner_b at depth 1" 1 b.Trace.depth;
  (* Well-formed nesting: children are contained in the parent interval,
     and siblings do not overlap. *)
  check "children inside parent" true
    (outer.Trace.t0 <= a.Trace.t0 && a.Trace.t1 <= outer.Trace.t1
    && outer.Trace.t0 <= b.Trace.t0 && b.Trace.t1 <= outer.Trace.t1);
  check "siblings ordered" true (a.Trace.t1 <= b.Trace.t0);
  check "events ordered by start time" true
    (let starts = List.map (fun e -> e.Trace.t0) events in
     starts = List.sort compare starts)

let test_span_exception_safe () =
  let tr = Trace.create () in
  (try Trace.with_span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Trace.events tr with
  | [ e ] ->
      check "span closed despite exception" true (e.Trace.t1 >= e.Trace.t0)
  | evs -> Alcotest.failf "expected one closed span, got %d" (List.length evs)

let test_explicit_exit_closes_nested () =
  let tr = Trace.create () in
  let outer = Trace.enter tr "outer" in
  let _inner = Trace.enter tr "inner" in
  (* Exiting the outer span force-closes the still-open inner one. *)
  Trace.exit tr outer;
  check_int "both spans closed" 2 (List.length (Trace.events tr))

(* --- JSONL shape ----------------------------------------------------------- *)

(* A deliberately tiny JSON object parser: accepts exactly the flat
   {"k":v,...} lines the tracer emits, with string and number values.
   Independent of the emitter, so format regressions can't hide. *)
let parse_json_object line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "%s at %d in %s" msg !pos line) in
  let peek () = if !pos < n then line.[!pos] else fail "eof" in
  let eat c = if peek () = c then incr pos else fail (Printf.sprintf "expected %c" c) in
  let string_lit () =
    eat '"';
    let start = !pos in
    while peek () <> '"' do
      if peek () = '\\' then incr pos;
      incr pos
    done;
    let s = String.sub line start (!pos - start) in
    eat '"';
    s
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match line.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected number";
    float_of_string (String.sub line start (!pos - start))
  in
  let fields = ref [] in
  eat '{';
  let rec field () =
    let k = string_lit () in
    eat ':';
    let v =
      if peek () = '"' then `String (string_lit ()) else `Number (number ())
    in
    fields := (k, v) :: !fields;
    if peek () = ',' then begin eat ','; field () end
  in
  if peek () <> '}' then field ();
  eat '}';
  if !pos <> n then fail "trailing input";
  List.rev !fields

let test_jsonl_parses () =
  let tr = Trace.create () in
  Trace.with_span tr "alpha.beta" (fun () ->
      Trace.with_span tr "gamma" (fun () -> ignore (Sys.opaque_identity 1)));
  let lines = String.split_on_char '\n' (String.trim (Trace.to_jsonl tr)) in
  check_int "one line per span" 2 (List.length lines);
  List.iter
    (fun line ->
      let fields = parse_json_object line in
      let keys = List.map fst fields in
      check "field order fixed" true
        (keys = [ "span"; "domain"; "depth"; "start_s"; "end_s"; "dur_ms" ]);
      match
        (List.assoc "span" fields, List.assoc "start_s" fields,
         List.assoc "end_s" fields, List.assoc "dur_ms" fields)
      with
      | `String name, `Number t0, `Number t1, `Number dur ->
          check "span name non-empty" true (String.length name > 0);
          check "interval well-formed" true (t0 <= t1);
          check "duration consistent (ms vs s)" true
            (Float.abs (dur -. ((t1 -. t0) *. 1e3)) < 0.5)
      | _ -> Alcotest.fail "wrong field types")
    lines

(* --- parallel merge loses no ticks (QCheck) -------------------------------- *)

let prop_parallel_ticks_merge =
  QCheck.Test.make ~count:100
    ~name:"per-domain counter contributions sum exactly"
    (QCheck.make
       ~print:(fun (w, ticks) ->
         Printf.sprintf "width=%d ticks=%s" w
           (String.concat "," (List.map string_of_int ticks)))
       QCheck.Gen.(
         pair (int_range 1 4) (list_size (int_range 1 8) (int_range 0 1_000))))
    (fun (width, ticks) ->
      let pool = Pool.create ~size:width () in
      let m = Metrics.create () in
      let obs = Obs.make ~metrics:m () in
      let per_task = Array.of_list ticks in
      let bump = Obs.counter_fn obs "merge.ticks" in
      Pool.parallel_chunks pool ~n:(Array.length per_task) ~chunk:1
        (fun lo hi ->
          for i = lo to hi - 1 do
            for _ = 1 to per_task.(i) do bump 1 done
          done);
      List.assoc "merge.ticks" (Metrics.counters m)
      = List.fold_left ( + ) 0 ticks)

type span_tree = Node of span_tree list

let prop_trace_depth_well_formed =
  (* Random span trees: emitted depths must match the tree depth, and
     every line of the JSONL output must parse. *)
  QCheck.Test.make ~count:100 ~name:"random span trees are well-formed"
    (QCheck.make
       QCheck.Gen.(
         sized_size (int_range 1 12)
         @@ fix (fun self size ->
                if size <= 1 then return (Node [])
                else
                  map (fun l -> Node l)
                    (list_size (int_range 1 3) (self (size / 3)))))
       ~print:(fun _ -> "span tree"))
    (fun tree ->
      let tr = Trace.create () in
      let rec run depth (Node children) =
        List.iteri
          (fun i sub ->
            Trace.with_span tr (Printf.sprintf "d%d.%d" depth i) (fun () ->
                run (depth + 1) sub))
          children
      in
      run 0 tree;
      let events = Trace.events tr in
      List.for_all
        (fun e ->
          String.length e.Trace.name > 2
          && e.Trace.depth = int_of_string (String.sub e.Trace.name 1 1)
          && e.Trace.t0 <= e.Trace.t1)
        events
      && List.for_all
           (fun line -> parse_json_object line <> [])
           (match String.trim (Trace.to_jsonl tr) with
           | "" -> []
           | s -> String.split_on_char '\n' s))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter determinism" `Quick test_counter_determinism;
          Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_sink_is_noop;
          Alcotest.test_case "summary format" `Quick test_sink_summary;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safe;
          Alcotest.test_case "exit closes nested" `Quick test_explicit_exit_closes_nested;
          Alcotest.test_case "jsonl parses" `Quick test_jsonl_parses;
        ] );
      ( "parallel",
        List.map QCheck_alcotest.to_alcotest
          [ prop_parallel_ticks_merge; prop_trace_depth_well_formed ] );
    ]
