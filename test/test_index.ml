(* The interning + CSR index of Elg, the CSR product construction, and
   the parallel multi-source evaluator: deterministic pins on the bank
   graph of Figure 2, plus differential properties against list-based
   references and the serial engine. *)

let bank = Generators.bank_elg ()
let eid = Elg.edge_id bank
let nid = Elg.node_id bank
let parse = Rpq_parse.parse

(* --- interned labels: ids are assigned in sorted label order ------------ *)

let test_label_interning () =
  Alcotest.(check int) "nb_labels" 4 (Elg.nb_labels bank);
  Alcotest.(check (list string))
    "labels sorted"
    [ "Transfer"; "isBlocked"; "owner"; "type" ]
    (Elg.labels bank);
  List.iteri
    (fun i l ->
      Alcotest.(check string) (Printf.sprintf "label_name %d" i) l
        (Elg.label_name bank i);
      Alcotest.(check (option int)) ("label_id_opt " ^ l) (Some i)
        (Elg.label_id_opt bank l))
    [ "Transfer"; "isBlocked"; "owner"; "type" ];
  Alcotest.(check (option int)) "absent label" None
    (Elg.label_id_opt bank "nope");
  Alcotest.(check int) "t1 is a Transfer" 0 (Elg.edge_label_id bank (eid "t1"));
  Alcotest.(check int) "r9 is an isBlocked" 1 (Elg.edge_label_id bank (eid "r9"))

(* --- CSR spans match the legacy adjacency lists ------------------------- *)

let csr_out g n =
  let lo, hi = Elg.out_span g n in
  List.init (hi - lo) (fun i -> Elg.csr_out_edge g (lo + i))

let test_csr_matches_lists () =
  for n = 0 to Elg.nb_nodes bank - 1 do
    Alcotest.(check (list int))
      (Printf.sprintf "out span of node %d" n)
      (Elg.out_edges bank n) (csr_out bank n);
    Alcotest.(check int)
      (Printf.sprintf "out_degree of node %d" n)
      (List.length (Elg.out_edges bank n))
      (Elg.out_degree bank n);
    let ins = ref [] in
    Elg.iter_in bank n (fun e -> ins := e :: !ins);
    Alcotest.(check (list int))
      (Printf.sprintf "in span of node %d" n)
      (Elg.in_edges bank n) (List.rev !ins)
  done

let test_bank_pins () =
  (* a3's outgoing edges: four transfers, one owner, one isBlocked, one
     type edge. *)
  Alcotest.(check int) "a3 out_degree" 7 (Elg.out_degree bank (nid "a3"));
  Alcotest.(check int) "a2 in_degree" 2 (Elg.in_degree bank (nid "a2"));
  Alcotest.(check (list int))
    "a3 Transfer edges (declaration order)"
    [ eid "t2"; eid "t5"; eid "t6"; eid "t7" ]
    (Elg.out_label_edges bank (nid "a3") ~label:0);
  Alcotest.(check (list int))
    "a3 owner edges" [ eid "r3" ]
    (Elg.out_label_edges bank (nid "a3") ~label:2);
  (* Megan has no outgoing edges at all. *)
  let lo, hi = Elg.out_label_span bank (nid "Megan") ~label:0 in
  Alcotest.(check int) "absent (node, label) span is empty" 0 (hi - lo)

(* The label partition is a permutation of each node's span, grouped by
   ascending label id and in declaration order within a group. *)
let test_label_partition () =
  for n = 0 to Elg.nb_nodes bank - 1 do
    let grouped =
      List.concat_map
        (fun l -> Elg.out_label_edges bank n ~label:l)
        (List.init (Elg.nb_labels bank) Fun.id)
    in
    let expected =
      List.stable_sort
        (fun e1 e2 ->
          compare (Elg.edge_label_id bank e1) (Elg.edge_label_id bank e2))
        (Elg.out_edges bank n)
    in
    Alcotest.(check (list int))
      (Printf.sprintf "label partition of node %d" n)
      expected grouped
  done

(* --- the CSR product pins ------------------------------------------------ *)

let test_product_pins () =
  let nfa = Nfa.of_regex (parse "Transfer*") in
  let product = Product.make bank nfa in
  let s0 =
    match Product.initials_at product (nid "a3") with
    | [ s ] -> s
    | _ -> Alcotest.fail "Transfer* has one initial state"
  in
  let succ node = Product.state product ~node:(nid node) ~q:1 in
  Alcotest.(check (list (pair int int)))
    "product edges of (a3, q0)"
    [
      (eid "t2", succ "a2"); (eid "t5", succ "a2");
      (eid "t6", succ "a4"); (eid "t7", succ "a5");
    ]
    (Product.out product s0);
  (* The CSR accessors expose the same edges as the list view. *)
  let lo, hi = Product.out_span product s0 in
  Alcotest.(check int) "span width = out_degree" (hi - lo)
    (Product.out_degree product s0);
  let via_csr =
    List.init (hi - lo) (fun i ->
        (Product.csr_edge product (lo + i), Product.csr_succ product (lo + i)))
  in
  Alcotest.(check (list (pair int int))) "csr = out" (Product.out product s0)
    via_csr;
  let via_iter = ref [] in
  Product.iter_out product s0 (fun e s -> via_iter := (e, s) :: !via_iter);
  Alcotest.(check (list (pair int int)))
    "iter_out = out" (Product.out product s0) (List.rev !via_iter)

(* --- properties ---------------------------------------------------------- *)

let gen_graph =
  QCheck.Gen.(
    int_range 1 10_000 >|= fun seed ->
    Generators.random_graph ~seed ~nodes:6 ~edges:12 ~labels:[ "a"; "b"; "c" ])

let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 7)
    @@ fix (fun self size ->
           if size <= 1 then
             oneof
               [
                 return Regex.Eps;
                 map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b"; "c" ]);
                 return (Regex.Atom Sym.Any);
               ]
           else
             oneof
               [
                 map2 (fun a b -> Regex.Seq (a, b)) (self (size / 2)) (self (size / 2));
                 map2 (fun a b -> Regex.Alt (a, b)) (self (size / 2)) (self (size / 2));
                 map (fun a -> Regex.Star a) (self (size - 1));
               ]))

let arb_graph_regex =
  QCheck.make
    ~print:(fun (_, r) -> Regex.to_string Sym.to_string r)
    QCheck.Gen.(pair gen_graph gen_regex)

(* The seed's list-based product construction, as an oracle: one
   [Sym.matches] per (edge, transition). *)
let reference_out g (nfa : Sym.t Nfa.t) s =
  let nq = nfa.Nfa.nb_states in
  let v = s / nq and q = s mod nq in
  List.concat_map
    (fun e ->
      let lbl = Elg.label g e in
      List.filter_map
        (fun (sym, q') ->
          if Sym.matches sym lbl then Some (e, (Elg.tgt g e * nq) + q')
          else None)
        nfa.Nfa.delta.(q))
    (Elg.out_edges g v)

let prop_product_matches_reference =
  QCheck.Test.make ~count:200 ~name:"CSR product = list-based reference"
    arb_graph_regex
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let product = Product.make g nfa in
      List.for_all
        (fun s -> Product.out product s = reference_out g nfa s)
        (List.init (Product.nb_states product) Fun.id))

let prop_parallel_equals_serial =
  QCheck.Test.make ~count:60 ~name:"parallel pairs_nfa = serial (widths 1,2,4)"
    arb_graph_regex
    (fun (g, r) ->
      let nfa = Nfa.of_regex r in
      let serial = Rpq_eval.pairs_nfa ~pool:(Pool.create ~size:1 ()) g nfa in
      List.for_all
        (fun size ->
          Rpq_eval.pairs_nfa ~pool:(Pool.create ~size ()) g nfa = serial)
        [ 2; 4 ])

let prop_partial_subset_under_pool =
  QCheck.Test.make ~count:60
    ~name:"governor Partial under >= 2 domains is a subset of Complete"
    (QCheck.make
       ~print:(fun ((_, r), steps) ->
         Printf.sprintf "%s / %d steps" (Regex.to_string Sym.to_string r) steps)
       QCheck.Gen.(pair (pair gen_graph gen_regex) (int_range 1 200)))
    (fun ((g, r), max_steps) ->
      let nfa = Nfa.of_regex r in
      let pool = Pool.create ~size:3 () in
      let complete = Rpq_eval.pairs_nfa ~pool g nfa in
      let gov = Governor.make ~max_steps () in
      match Rpq_eval.pairs_nfa_bounded ~pool gov g nfa with
      | Governor.Complete pairs -> pairs = complete
      | Governor.Partial (pairs, _) ->
          List.for_all (fun p -> List.mem p complete) pairs
      | Governor.Aborted _ -> false)

let prop_check_equals_pairs_membership =
  QCheck.Test.make ~count:100 ~name:"early-exit check = pairs membership"
    arb_graph_regex
    (fun (g, r) ->
      let pairs = Rpq_eval.pairs g r in
      List.for_all
        (fun u ->
          List.for_all
            (fun v -> Rpq_eval.check g r ~src:u ~tgt:v = List.mem (u, v) pairs)
            (List.init (Elg.nb_nodes g) Fun.id))
        (List.init (Elg.nb_nodes g) Fun.id))

(* --- parallel path counting ---------------------------------------------- *)

let test_total_paths () =
  let g = Generators.line 3 "a" in
  let r = parse "a*" in
  (* On the 3-edge line, paths of length <= 3: 4 empty + 3 + 2 + 1. *)
  Alcotest.(check string)
    "total on line(3)" "10"
    (Nat_big.to_string (Rpq_count.total_paths_upto g r ~max_len:3));
  (* The total is the sum of the per-pair counts, and pool width does not
     change it. *)
  let per_pair_sum =
    Elg.fold_nodes
      (fun src acc ->
        Elg.fold_nodes
          (fun tgt acc ->
            Nat_big.add acc (Rpq_count.count_paths_upto g r ~src ~tgt ~max_len:3))
          g acc)
      g Nat_big.zero
  in
  let bank_r = parse "Transfer*" in
  List.iter
    (fun size ->
      Alcotest.(check string)
        (Printf.sprintf "bank total, %d domains" size)
        (Nat_big.to_string
           (Rpq_count.total_paths_upto ~pool:(Pool.create ~size:1 ()) bank
              bank_r ~max_len:6))
        (Nat_big.to_string
           (Rpq_count.total_paths_upto ~pool:(Pool.create ~size ()) bank bank_r
              ~max_len:6)))
    [ 2; 4 ];
  Alcotest.(check string) "total = sum of per-pair counts"
    (Nat_big.to_string per_pair_sum)
    (Nat_big.to_string (Rpq_count.total_paths_upto g r ~max_len:3))

let () =
  Alcotest.run "index"
    [
      ( "elg index",
        [
          Alcotest.test_case "label interning" `Quick test_label_interning;
          Alcotest.test_case "CSR = adjacency lists" `Quick test_csr_matches_lists;
          Alcotest.test_case "bank pins" `Quick test_bank_pins;
          Alcotest.test_case "label partition" `Quick test_label_partition;
        ] );
      ("product", [ Alcotest.test_case "bank pins" `Quick test_product_pins ]);
      ("counting", [ Alcotest.test_case "total_paths_upto" `Quick test_total_paths ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_product_matches_reference;
          QCheck_alcotest.to_alcotest prop_parallel_equals_serial;
          QCheck_alcotest.to_alcotest prop_partial_subset_under_pool;
          QCheck_alcotest.to_alcotest prop_check_equals_pairs_membership;
        ] );
    ]
