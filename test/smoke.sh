#!/bin/sh
# End-to-end CLI smoke test: resource-limit flags and exit codes.
#
# Exit-code contract (see bin/gqd.ml): 0 complete, 1 parse/unknown-node,
# 2 evaluation, 3 I/O, 4 budget exhausted (partial result printed).
set -eu

GQD="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_expect() {
  expected=$1
  shift
  set +e
  "$@" > "$tmp/out" 2> "$tmp/err"
  code=$?
  set -e
  if [ "$code" -ne "$expected" ]; then
    echo "smoke: expected exit $expected, got $code: $*" >&2
    cat "$tmp/err" >&2
    exit 1
  fi
}

"$GQD" demo > "$tmp/bank.graph"

# Unbounded and amply-budgeted runs complete with exit 0.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*'
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-steps 100000 --timeout 10
grep -q 'a1 -> a2' "$tmp/out" || { echo "smoke: missing pair in output" >&2; exit 1; }

# A tiny step budget yields a partial result and exit 4.
run_expect 4 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-steps 5
grep -q 'partial result (budget exhausted: step budget)' "$tmp/err" \
  || { echo "smoke: missing partial-result report" >&2; exit 1; }

# A result cap likewise trips, after printing exactly that many pairs.
run_expect 4 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-results 3
[ "$(wc -l < "$tmp/out")" -eq 3 ] || { echo "smoke: result cap not honoured" >&2; exit 1; }

# An expired deadline trips at the periodic check (every 256 steps), so it
# needs an input with enough work: a 300-edge line graph.
{
  i=0
  while [ "$i" -le 300 ]; do echo "node n$i N"; i=$((i + 1)); done
  i=0
  while [ "$i" -lt 300 ]; do echo "edge e$i n$i a n$((i + 1))"; i=$((i + 1)); done
} > "$tmp/line.graph"
run_expect 4 "$GQD" rpq "$tmp/line.graph" 'a*' --timeout 0
grep -q 'partial result (budget exhausted: deadline)' "$tmp/err" \
  || { echo "smoke: missing deadline report" >&2; exit 1; }

# Parallel evaluation must agree with serial: same pairs, same order,
# regardless of the domain count.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --domains 1
cp "$tmp/out" "$tmp/serial.out"
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --domains 2
cmp -s "$tmp/serial.out" "$tmp/out" \
  || { echo "smoke: --domains 2 output differs from --domains 1" >&2; exit 1; }

# Error paths: bad regex is a parse error (1), bad node name too (1),
# missing file is I/O (3).
run_expect 1 "$GQD" rpq "$tmp/bank.graph" 'Transfer)('
run_expect 1 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --from nosuchnode
run_expect 3 "$GQD" rpq "$tmp/nosuch.graph" 'Transfer*'

echo "smoke: all CLI checks passed"
