#!/bin/sh
# End-to-end CLI smoke test: resource-limit flags and exit codes.
#
# Exit-code contract (see bin/gqd.ml): 0 complete, 1 parse/unknown-node,
# 2 evaluation, 3 I/O, 4 budget exhausted (partial result printed).
set -eu

GQD="$1"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

run_expect() {
  expected=$1
  shift
  set +e
  "$@" > "$tmp/out" 2> "$tmp/err"
  code=$?
  set -e
  if [ "$code" -ne "$expected" ]; then
    echo "smoke: expected exit $expected, got $code: $*" >&2
    cat "$tmp/err" >&2
    exit 1
  fi
}

"$GQD" demo > "$tmp/bank.graph"

# Unbounded and amply-budgeted runs complete with exit 0.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*'
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-steps 100000 --timeout 10
grep -q 'a1 -> a2' "$tmp/out" || { echo "smoke: missing pair in output" >&2; exit 1; }

# A tiny step budget yields a partial result and exit 4; the stderr
# line names the tripped resource and the work done.
run_expect 4 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-steps 5
grep -q 'partial result (budget exhausted: step budget; steps=' "$tmp/err" \
  || { echo "smoke: missing partial-result report" >&2; exit 1; }

# A result cap likewise trips, after printing exactly that many pairs.
run_expect 4 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-results 3
[ "$(wc -l < "$tmp/out")" -eq 3 ] || { echo "smoke: result cap not honoured" >&2; exit 1; }

# An expired deadline trips at the periodic check (every 256 steps), so it
# needs an input with enough work: a 300-edge line graph.
{
  i=0
  while [ "$i" -le 300 ]; do echo "node n$i N"; i=$((i + 1)); done
  i=0
  while [ "$i" -lt 300 ]; do echo "edge e$i n$i a n$((i + 1))"; i=$((i + 1)); done
} > "$tmp/line.graph"
run_expect 4 "$GQD" rpq "$tmp/line.graph" 'a*' --timeout 0
grep -q 'partial result (budget exhausted: deadline; steps=' "$tmp/err" \
  || { echo "smoke: missing deadline report" >&2; exit 1; }

# Parallel evaluation must agree with serial: same pairs, same order,
# regardless of the domain count.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --domains 1
cp "$tmp/out" "$tmp/serial.out"
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --domains 2
cmp -s "$tmp/serial.out" "$tmp/out" \
  || { echo "smoke: --domains 2 output differs from --domains 1" >&2; exit 1; }

# Error paths: bad regex is a parse error (1), bad node name too (1),
# no matching path is an evaluation error (2), missing file is I/O (3).
run_expect 1 "$GQD" rpq "$tmp/bank.graph" 'Transfer)('
run_expect 1 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --from nosuchnode
run_expect 2 "$GQD" shortest "$tmp/bank.graph" 'NoSuchLabel' a1 a3
run_expect 3 "$GQD" rpq "$tmp/nosuch.graph" 'Transfer*'

# Golden-file checks: stdout (and --metrics stderr) must match the
# recorded outputs byte for byte.
golden="$(dirname "$0")/golden"
check_golden() {
  name=$1
  file=$2
  diff -u "$golden/$name" "$file" \
    || { echo "smoke: golden mismatch for $name" >&2; exit 1; }
}

run_expect 0 "$GQD" info "$tmp/bank.graph"
check_golden info.out "$tmp/out"

run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*'
check_golden rpq_pairs.out "$tmp/out"

run_expect 0 "$GQD" shortest "$tmp/bank.graph" 'Transfer*' a1 a3
check_golden shortest.out "$tmp/out"

run_expect 0 "$GQD" query "$tmp/bank.graph" \
  'MATCH (x:Account)-[:Transfer]->(y) RETURN x.owner, y.owner'
check_golden query.out "$tmp/out"

# --metrics: the counter summary is deterministic on a serial run.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*' --metrics --domains 1
check_golden rpq_pairs.out "$tmp/out"
check_golden metrics.err "$tmp/err"

# --trace-json: every line is a JSON object with the span fields.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*' \
  --trace-json "$tmp/trace.jsonl"
[ -s "$tmp/trace.jsonl" ] || { echo "smoke: empty trace file" >&2; exit 1; }
grep -cq '"span":"rpq.eval"' "$tmp/trace.jsonl" \
  || { echo "smoke: missing rpq.eval span" >&2; exit 1; }
if grep -v '^{"span":".*","domain":[0-9]*,"depth":[0-9]*,"start_s":[0-9.]*,"end_s":[0-9.]*,"dur_ms":[0-9.]*}$' "$tmp/trace.jsonl"; then
  echo "smoke: malformed trace line" >&2; exit 1
fi

echo "smoke: all CLI checks passed"
