#!/bin/sh
# End-to-end CLI smoke test: resource-limit flags and exit codes.
#
# Exit-code contract (see bin/gqd.ml): 0 complete, 1 parse/unknown-node,
# 2 evaluation, 3 I/O, 4 budget exhausted (partial result printed).
set -eu

GQD="$1"
tmp=$(mktemp -d)
trap 'kill "${SRV:-}" 2> /dev/null || true; rm -rf "$tmp"' EXIT

run_expect() {
  expected=$1
  shift
  set +e
  "$@" > "$tmp/out" 2> "$tmp/err"
  code=$?
  set -e
  if [ "$code" -ne "$expected" ]; then
    echo "smoke: expected exit $expected, got $code: $*" >&2
    cat "$tmp/err" >&2
    exit 1
  fi
}

"$GQD" demo > "$tmp/bank.graph"

# Unbounded and amply-budgeted runs complete with exit 0.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*'
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-steps 100000 --timeout 10
grep -q 'a1 -> a2' "$tmp/out" || { echo "smoke: missing pair in output" >&2; exit 1; }

# A tiny step budget yields a partial result and exit 4; the stderr
# line names the tripped resource and the work done.
run_expect 4 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-steps 5
grep -q 'partial result (budget exhausted: step budget; steps=' "$tmp/err" \
  || { echo "smoke: missing partial-result report" >&2; exit 1; }

# A result cap likewise trips, after printing exactly that many pairs.
run_expect 4 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --max-results 3
[ "$(wc -l < "$tmp/out")" -eq 3 ] || { echo "smoke: result cap not honoured" >&2; exit 1; }

# An expired deadline trips at the periodic check (every 256 steps), so it
# needs an input with enough work: a 300-edge line graph.
{
  i=0
  while [ "$i" -le 300 ]; do echo "node n$i N"; i=$((i + 1)); done
  i=0
  while [ "$i" -lt 300 ]; do echo "edge e$i n$i a n$((i + 1))"; i=$((i + 1)); done
} > "$tmp/line.graph"
run_expect 4 "$GQD" rpq "$tmp/line.graph" 'a*' --timeout 0
grep -q 'partial result (budget exhausted: deadline; steps=' "$tmp/err" \
  || { echo "smoke: missing deadline report" >&2; exit 1; }

# Parallel evaluation must agree with serial: same pairs, same order,
# regardless of the domain count.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --domains 1
cp "$tmp/out" "$tmp/serial.out"
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --domains 2
cmp -s "$tmp/serial.out" "$tmp/out" \
  || { echo "smoke: --domains 2 output differs from --domains 1" >&2; exit 1; }

# Error paths: bad regex is a parse error (1), bad node name too (1),
# no matching path is an evaluation error (2), missing file is I/O (3).
run_expect 1 "$GQD" rpq "$tmp/bank.graph" 'Transfer)('
run_expect 1 "$GQD" rpq "$tmp/bank.graph" 'Transfer*' --from nosuchnode
run_expect 2 "$GQD" shortest "$tmp/bank.graph" 'NoSuchLabel' a1 a3
run_expect 3 "$GQD" rpq "$tmp/nosuch.graph" 'Transfer*'

# Golden-file checks: stdout (and --metrics stderr) must match the
# recorded outputs byte for byte.
golden="$(dirname "$0")/golden"
check_golden() {
  name=$1
  file=$2
  diff -u "$golden/$name" "$file" \
    || { echo "smoke: golden mismatch for $name" >&2; exit 1; }
}

run_expect 0 "$GQD" info "$tmp/bank.graph"
check_golden info.out "$tmp/out"

run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*'
check_golden rpq_pairs.out "$tmp/out"

run_expect 0 "$GQD" shortest "$tmp/bank.graph" 'Transfer*' a1 a3
check_golden shortest.out "$tmp/out"

run_expect 0 "$GQD" query "$tmp/bank.graph" \
  'MATCH (x:Account)-[:Transfer]->(y) RETURN x.owner, y.owner'
check_golden query.out "$tmp/out"

# --metrics: the counter summary is deterministic on a serial run.  The
# kernel is pinned because the packed and scalar engines count different
# work (span sweeps vs per-source pushes) and `make check-bitset` re-runs
# this suite under both GQ_BITSET settings; each kernel has its own golden.
run_expect 0 env GQ_BITSET=on GQ_PULL_THRESHOLD= "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*' \
  --metrics --domains 1
check_golden rpq_pairs.out "$tmp/out"
check_golden metrics.err "$tmp/err"

run_expect 0 env GQ_BITSET=off GQ_PULL_THRESHOLD= "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*' \
  --metrics --domains 1
check_golden rpq_pairs.out "$tmp/out"
check_golden metrics_scalar.err "$tmp/err"

# --trace-json: every line is a JSON object with the span fields.
run_expect 0 "$GQD" rpq "$tmp/bank.graph" 'Transfer.Transfer*' \
  --trace-json "$tmp/trace.jsonl"
[ -s "$tmp/trace.jsonl" ] || { echo "smoke: empty trace file" >&2; exit 1; }
grep -cq '"span":"rpq.eval"' "$tmp/trace.jsonl" \
  || { echo "smoke: missing rpq.eval span" >&2; exit 1; }
if grep -v '^{"span":".*","domain":[0-9]*,"depth":[0-9]*,"start_s":[0-9.]*,"end_s":[0-9.]*,"dur_ms":[0-9.]*}$' "$tmp/trace.jsonl"; then
  echo "smoke: malformed trace line" >&2; exit 1
fi

# --- gqd --serve: the crash-proof session mode ----------------------------
# Golden transcripts, run from inside $tmp so file paths in replies are
# relative and stable.  Each session pins GQ_FAILPOINTS itself (including
# pinning it empty) so the transcripts hold under `make check-faults`,
# which runs the whole suite with an ambient fault schedule, and pins
# GQ_BITSET=on GQ_PULL_THRESHOLD= because partial payloads and the `stats` kernel field are
# kernel-sensitive and `make check-bitset` re-runs the suite with it off.
GQD_ABS=$(cd "$(dirname "$GQD")" && pwd)/$(basename "$GQD")

printf 'node n1 N\nfrobnicate x y\n' > "$tmp/bad.graph"

# Transcript 1: every second supervised evaluation raises an injected
# transient fault.  The session retries them (the "attempts":2 replies),
# classifies a malformed graph and a missing file without dying, survives
# a budget-exhausting query, keeps answering, and exits 0.
cat > "$tmp/serve_faults.in" <<'EOF'
ping
load bank.graph
rpq Transfer*
set max-steps 5
rpq Transfer*
rpq Transfer)(
load bad.graph
load nosuch.graph
set max-steps none
rpq-from a1 Transfer*
quit
EOF
set +e
(cd "$tmp" && GQ_FAILPOINTS="serve.eval=every:2" GQ_BITSET=on GQ_PULL_THRESHOLD= "$GQD_ABS" --serve \
  < serve_faults.in > serve_faults.out 2> serve_faults.err)
code=$?
set -e
[ "$code" -eq 0 ] || {
  echo "smoke: serve fault session exited $code" >&2
  cat "$tmp/serve_faults.err" >&2
  exit 1
}
check_golden serve_faults.out "$tmp/serve_faults.out"
[ "$(grep -c '"attempts":2' "$tmp/serve_faults.out")" -ge 3 ] \
  || { echo "smoke: expected at least 3 retried (injected) faults" >&2; exit 1; }

# Transcript 2: two consecutive budget exhaustions trip the rpq breaker
# (threshold 2); the third query is served degraded under the small fixed
# budget, and `stats` reports the open breaker.  No failpoints armed.
# The plan layer is pinned on because `stats` embeds the cache counters
# and `make check-plan` re-runs the suite with GQ_PLAN_CACHE=off.
cat > "$tmp/serve_breaker.in" <<'EOF'
load bank.graph
set max-steps 2
rpq Transfer*
rpq Transfer*
rpq Transfer*
stats
quit
EOF
set +e
(cd "$tmp" && GQ_FAILPOINTS= GQ_PLAN=on GQ_PLAN_CACHE=on GQ_BITSET=on GQ_PULL_THRESHOLD= \
  "$GQD_ABS" --serve --breaker-threshold 2 \
  < serve_breaker.in > serve_breaker.out 2> serve_breaker.err)
code=$?
set -e
[ "$code" -eq 0 ] || {
  echo "smoke: serve breaker session exited $code" >&2
  cat "$tmp/serve_breaker.err" >&2
  exit 1
}
check_golden serve_breaker.out "$tmp/serve_breaker.out"

# Transcript 3: the EXPLAIN surface.  The first `plan` is a cold miss,
# the `rpq` warms both the plan and product caches, the second `plan`
# reports hits, the CRPQ `plan` shows the selectivity-ordered atoms, and
# a second `load` bumps the generation: `stats` shows the dropped
# products and the final `plan` sees the product cold again while the
# query-only plan survives.  Plan layer pinned on, as above.
cat > "$tmp/serve_plan.in" <<'EOF'
load bank.graph
plan Transfer.Transfer*
rpq Transfer.Transfer*
plan Transfer.Transfer*
plan x -[Transfer*]-> y, y -[isBlocked]-> z
stats
load bank.graph
stats
plan Transfer.Transfer*
quit
EOF
set +e
(cd "$tmp" && GQ_FAILPOINTS= GQ_PLAN=on GQ_PLAN_CACHE=on GQ_BITSET=on GQ_PULL_THRESHOLD= "$GQD_ABS" --serve \
  < serve_plan.in > serve_plan.out 2> serve_plan.err)
code=$?
set -e
[ "$code" -eq 0 ] || {
  echo "smoke: serve plan session exited $code" >&2
  cat "$tmp/serve_plan.err" >&2
  exit 1
}
check_golden serve_plan.out "$tmp/serve_plan.out"

# --- gqd --listen: the concurrent multi-client server ---------------------
# Transcript 4: admission control over a unix socket.  Everything that
# reaches this transcript is deterministic: sheds are decided by
# counters (connection cap, in-flight quota), not timing, and the
# 200 ms evaluation delay only holds a request in flight long enough
# for the pipelined overflow to arrive behind it.

SOCK="$tmp/gq.sock"
SRV=

wait_sock() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { echo "smoke: server socket never appeared" >&2; exit 1; }
    sleep 0.05
  done
}

: > "$tmp/serve_server.out"

# (a) A zero-capacity server answers the connection itself with a
#     structured shed reply and closes it; draining it exits 0.
GQ_FAILPOINTS= GQ_PLAN=on GQ_PLAN_CACHE=on GQ_BITSET=on GQ_PULL_THRESHOLD= \
  "$GQD_ABS" --listen "unix:$SOCK" --max-clients 0 \
  > /dev/null 2> "$tmp/serve_server.err" &
SRV=$!
wait_sock "$SOCK"
printf 'ping\n' | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" --pipeline \
  >> "$tmp/serve_server.out"
kill -TERM "$SRV"
wait "$SRV" || {
  echo "smoke: --max-clients 0 server exited nonzero" >&2
  cat "$tmp/serve_server.err" >&2
  exit 1
}

# (b) One worker, a one-request in-flight quota, and a 200 ms delay per
#     evaluation: a pipelined burst gets its head admitted and the
#     overflow shed with structured retry hints.  The graph one client
#     loads is the shared snapshot — a second client queries it without
#     loading.  Finally SIGTERM lands while a request is mid-evaluation:
#     graceful drain still delivers that reply, exits 0, and unlinks
#     the socket.
( cd "$tmp" && GQ_FAILPOINTS="serve.eval=delay:200" GQ_PLAN=on GQ_PLAN_CACHE=on GQ_BITSET=on GQ_PULL_THRESHOLD= \
  exec "$GQD_ABS" --listen "unix:$SOCK" --workers 1 --client-inflight 1 \
  > /dev/null 2> "$tmp/serve_server.err" ) &
SRV=$!
wait_sock "$SOCK"
printf 'load bank.graph\nrpq Transfer*\nrpq Transfer*\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" --pipeline \
  >> "$tmp/serve_server.out"
printf 'rpq-from a1 Transfer*\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" \
  >> "$tmp/serve_server.out"
printf 'shortest a1 a3 Transfer*\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" --pipeline \
  >> "$tmp/serve_server.out" &
CLI=$!
sleep 0.1
kill -TERM "$SRV"
wait "$CLI" || { echo "smoke: client lost its in-flight reply" >&2; exit 1; }
wait "$SRV" || {
  echo "smoke: drain exited nonzero" >&2
  cat "$tmp/serve_server.err" >&2
  exit 1
}
[ ! -S "$SOCK" ] || { echo "smoke: drain left the socket behind" >&2; exit 1; }
SRV=
check_golden serve_server.out "$tmp/serve_server.out"

# Transcript 5: request batching.  One worker and a 300 ms evaluation
# delay hold the first client's `load` in flight while both clients'
# identical cached `rpq` requests queue behind it; the worker then pops
# one, steals the other (same plan-cache entry, same budgets) and
# answers both from a single multi-source run.  Each client's transcript
# must be byte-identical to what a solo run would have answered, under
# its own request id, and `stats` afterwards counts both batch members.
( cd "$tmp" && GQ_FAILPOINTS="serve.eval=delay:300" GQ_PLAN=on GQ_PLAN_CACHE=on GQ_BITSET=on GQ_PULL_THRESHOLD= \
  exec "$GQD_ABS" --listen "unix:$SOCK" --workers 1 \
  > /dev/null 2> "$tmp/serve_batch.err" ) &
SRV=$!
wait_sock "$SOCK"
printf 'load bank.graph\nrpq Transfer.Transfer*\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" --pipeline \
  > "$tmp/serve_batch_a.out" &
CLI_A=$!
sleep 0.1
printf 'rpq Transfer.Transfer*\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" --pipeline \
  > "$tmp/serve_batch_b.out" &
CLI_B=$!
wait "$CLI_A" || { echo "smoke: batch leader client failed" >&2; exit 1; }
wait "$CLI_B" || { echo "smoke: batch follower client failed" >&2; exit 1; }
printf 'stats\n' | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" \
  > "$tmp/serve_batch_stats.out"
kill -TERM "$SRV"
wait "$SRV" || {
  echo "smoke: batch server exited nonzero" >&2
  cat "$tmp/serve_batch.err" >&2
  exit 1
}
SRV=
check_golden serve_batch_a.out "$tmp/serve_batch_a.out"
check_golden serve_batch_b.out "$tmp/serve_batch_b.out"
grep -q '"batched":2' "$tmp/serve_batch_stats.out" \
  || { echo "smoke: stats did not report 2 batched requests" >&2
       cat "$tmp/serve_batch_stats.out" >&2; exit 1; }

# --- binary persistence & one-shot deltas ---------------------------------

# Round-trip: save-bin writes a GQB1 snapshot; every graph-reading
# subcommand sniffs the magic and accepts it, with byte-identical output.
run_expect 0 "$GQD" save-bin "$tmp/bank.graph" "$tmp/bank.gqb"
grep -q 'nodes, 10 edges,' "$tmp/out" \
  || { echo "smoke: save-bin summary missing" >&2; exit 1; }
run_expect 0 "$GQD" info "$tmp/bank.gqb"
check_golden info.out "$tmp/out"
run_expect 0 "$GQD" rpq "$tmp/bank.gqb" 'Transfer.Transfer*'
check_golden rpq_pairs.out "$tmp/out"

# Corruption is rejected with the structured parse error (exit 1), never
# a crash: a truncated file fails the length check, a scribbled payload
# fails the checksum.
head -c 40 "$tmp/bank.gqb" > "$tmp/trunc.gqb"
run_expect 1 "$GQD" info "$tmp/trunc.gqb"
grep -q 'error: cannot parse binary graph' "$tmp/err" \
  || { echo "smoke: truncated binary not rejected cleanly" >&2; cat "$tmp/err" >&2; exit 1; }
cp "$tmp/bank.gqb" "$tmp/flip.gqb"
printf 'XXXX' | dd of="$tmp/flip.gqb" bs=1 seek=40 count=4 conv=notrunc 2> /dev/null
run_expect 1 "$GQD" info "$tmp/flip.gqb"
grep -q 'error: cannot parse binary graph' "$tmp/err" \
  || { echo "smoke: corrupted binary not rejected cleanly" >&2; cat "$tmp/err" >&2; exit 1; }

# One-shot deltas: add-edge/del-edge/delta-load apply incrementally and
# report the delta; --out persists, and errors keep the exit-code
# contract (unknown edge name is a parse error).
run_expect 0 "$GQD" add-edge "$tmp/bank.graph" t99 a4 Transfer a1 amount=5 \
  --out "$tmp/bank_upd.graph"
check_golden delta_add.out "$tmp/out"
run_expect 0 "$GQD" del-edge "$tmp/bank_upd.graph" t99
check_golden delta_del.out "$tmp/out"
printf 'add x1 a1 Transfer a3\ndel t1\n' > "$tmp/batch.delta"
run_expect 0 "$GQD" delta-load "$tmp/bank.graph" "$tmp/batch.delta" \
  --out "$tmp/bank_delta.gqb" --binary
run_expect 0 "$GQD" info "$tmp/bank_delta.gqb"
run_expect 1 "$GQD" del-edge "$tmp/bank.graph" nosuch
run_expect 0 "$GQD" delta-load "$tmp/bank.graph" /dev/null # empty batch is a no-op
run_expect 3 "$GQD" delta-load "$tmp/bank.graph" "$tmp/nosuch.delta"

# Transcript 6: snapshot isolation under a live update stream.  Two
# workers; the scalar engine is pinned (GQ_BITSET=off GQ_PULL_THRESHOLD=) and every source
# BFS sleeps 400 ms, so client A's `rpq` holds its epoch-1 snapshot for
# ~2.4 s.  Mid-flight, client B applies add-edge/del-edge (epochs 2 and
# 3) — A's answers must be byte-identical to a pre-delta run, while
# client C, arriving after the writes, sees the updated graph, and
# `stats` reports the final epoch, the delta count, and the label-keyed
# invalidation of the Transfer product that was warm when the first
# write landed.
( cd "$tmp" && GQ_FAILPOINTS="rpq.bfs.step=delay:400" GQ_PLAN=on GQ_PLAN_CACHE=on GQ_BITSET=off GQ_PULL_THRESHOLD= \
  exec "$GQD_ABS" --listen "unix:$SOCK" --workers 2 \
  > /dev/null 2> "$tmp/serve_update.err" ) &
SRV=$!
wait_sock "$SOCK"
printf 'load bank.graph\nrpq Transfer*\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" --pipeline \
  > "$tmp/serve_update_a.out" &
CLI_A=$!
sleep 0.4
printf 'add-edge t11 a4 Transfer a1\ndel-edge t1\nsave-bin snap.gqb\n' \
  | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" \
  > "$tmp/serve_update_b.out"
printf 'rpq Transfer*\n' | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" \
  > "$tmp/serve_update_c.out"
printf 'stats\n' | GQ_FAILPOINTS= "$GQD_ABS" client "unix:$SOCK" \
  > "$tmp/serve_update_stats.out"
wait "$CLI_A" || { echo "smoke: pinned reader lost its reply" >&2; exit 1; }
kill -TERM "$SRV"
wait "$SRV" || {
  echo "smoke: update server exited nonzero" >&2
  cat "$tmp/serve_update.err" >&2
  exit 1
}
SRV=
check_golden serve_update_a.out "$tmp/serve_update_a.out"
check_golden serve_update_b.out "$tmp/serve_update_b.out"
check_golden serve_update_c.out "$tmp/serve_update_c.out"
"$GQD_ABS" info "$tmp/snap.gqb" > "$tmp/snap.info"
grep -q 'edges:  10' "$tmp/snap.info" \
  || { echo "smoke: mid-stream binary snapshot wrong" >&2; cat "$tmp/snap.info" >&2; exit 1; }
grep -q '"epoch":3' "$tmp/serve_update_stats.out" \
  || { echo "smoke: stats missing final epoch" >&2; cat "$tmp/serve_update_stats.out" >&2; exit 1; }
grep -q '"deltas":2' "$tmp/serve_update_stats.out" \
  || { echo "smoke: stats missing delta count" >&2; cat "$tmp/serve_update_stats.out" >&2; exit 1; }
grep -q '"invalidated_by_label":1' "$tmp/serve_update_stats.out" \
  || { echo "smoke: stats missing label invalidation" >&2; cat "$tmp/serve_update_stats.out" >&2; exit 1; }

echo "smoke: all CLI checks passed"
