(* Quickstart: build the paper's bank graph (Figures 2-3), run an RPQ, a
   CRPQ, and a shortest-path query.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The edge-labeled bank graph of Figure 2. *)
  let g = Generators.bank_elg () in
  Printf.printf "Bank graph: %d nodes, %d edges, labels: %s\n\n"
    (Elg.nb_nodes g) (Elg.nb_edges g)
    (String.concat ", " (Elg.labels g));

  (* 2. An RPQ (Example 12): which accounts are connected by transfers? *)
  let r = Rpq_parse.parse "Transfer+" in
  let pairs = Rpq_eval.pairs g r in
  let account n = String.length (Elg.node_name g n) = 2 && (Elg.node_name g n).[0] = 'a' in
  let account_pairs = List.filter (fun (u, v) -> account u && account v) pairs in
  Printf.printf "RPQ Transfer+ connects %d account pairs (all %d, Example 12)\n"
    (List.length account_pairs)
    (6 * 6);

  (* 3. A CRPQ (Example 13): transfer triangles. *)
  let t = Regex.atom (Sym.Lbl "Transfer") in
  let q1 =
    Crpq.make ~head:[ "x1"; "x2"; "x3" ]
      ~atoms:
        [
          { Crpq.re = t; x = Crpq.TVar "x1"; y = Crpq.TVar "x2" };
          { Crpq.re = t; x = Crpq.TVar "x1"; y = Crpq.TVar "x3" };
          { Crpq.re = t; x = Crpq.TVar "x2"; y = Crpq.TVar "x3" };
        ]
  in
  print_endline "\nCRPQ q1 (transfer triangles, Example 13):";
  List.iter
    (fun row ->
      Printf.printf "  (%s)\n"
        (String.concat ", " (List.map (Elg.node_name g) row)))
    (Crpq.eval g q1);

  (* 4. Shortest transfer paths between two accounts. *)
  let src = Elg.node_id g "a3" and tgt = Elg.node_id g "a1" in
  print_endline "\nShortest transfer paths from a3 (Mike) to a1 (Megan):";
  List.iter
    (fun p -> Printf.printf "  %s\n" (Path.to_string g p))
    (Path_modes.shortest g r ~src ~tgt);

  (* 5. The same graph as a property graph (Figure 3), with a data test:
     who received a transfer below 4.5M? *)
  let pg = Generators.bank_pg () in
  let small_incoming =
    Regex.seq Dlrpq.node_any
      (Regex.seq (Dlrpq.edge_lbl "Transfer")
         (Regex.seq
            (Dlrpq.edge_test (Etest.Cmp_const ("amount", Value.Lt, Value.Real 4.5)))
            Dlrpq.node_any))
  in
  (* The property graph has its own (smaller) node set: iterate over it,
     not over the edge-labeled graph above. *)
  let gp = Pg.elg pg in
  print_endline "\nTransfers below 4.5M (dl-RPQ with a data test):";
  List.iter
    (fun src ->
      List.iter
        (fun (p, _) -> Printf.printf "  %s\n" (Path.to_string gp p))
        (Dlrpq.enumerate_from pg small_incoming ~src ~max_len:1 ()))
    (List.init (Elg.nb_nodes gp) Fun.id)
