(* A larger synthetic workload: an influence/social graph, queried with
   the library's whole stack — RPQs, dl-RPQs (temporal propagation),
   l-CRPQs (witness paths), CoreGQL + relational algebra, and PMRs.

   Run with: dune exec examples/social_network.exe *)

let build ~seed ~people =
  let st = Random.State.make [| seed |] in
  let cities = [| "Paris"; "Bayreuth"; "Warsaw"; "Jerusalem"; "Santiago" |] in
  let name i = Printf.sprintf "p%d" i in
  let nodes =
    List.init people (fun i ->
        ( name i,
          "Person",
          [
            ("age", Value.Int (18 + Random.State.int st 50));
            ("city", Value.Text cities.(Random.State.int st (Array.length cities)));
          ] ))
  in
  let edges = ref [] in
  let counter = ref 0 in
  for i = 0 to people - 1 do
    let fanout = 1 + Random.State.int st 3 in
    for _ = 1 to fanout do
      let j = Random.State.int st people in
      if j <> i then begin
        incr counter;
        edges :=
          ( Printf.sprintf "f%d" !counter,
            name i,
            "follows",
            name j,
            [ ("since", Value.Int (2000 + Random.State.int st 25)) ] )
          :: !edges
      end
    done
  done;
  Pg.make ~nodes ~edges:(List.rev !edges)

let () =
  let pg = build ~seed:2025 ~people:60 in
  let g = Pg.elg pg in
  Printf.printf "Social graph: %d people, %d follow edges\n\n" (Elg.nb_nodes g)
    (Elg.nb_edges g);

  (* 1. RPQ: influence reach within three hops. *)
  let reach =
    Rpq_eval.from_source g (Rpq_parse.parse "follows{1,3}") ~src:(Elg.node_id g "p0")
  in
  Printf.printf "p0 influences %d people within 3 hops\n" (List.length reach);

  (* 2. dl-RPQ: temporally consistent influence chains — each hop's
     'since' must be later than the previous one (information can only
     propagate forward in time).  Uses the paper's own surface syntax. *)
  let temporal =
    Dlrpq_parse.parse
      "()[follows^z][x := since](()[follows^z][since > x][x := since])*()"
  in
  let chains =
    List.concat_map
      (fun src -> Dlrpq.enumerate_from pg temporal ~src ~max_len:4 ())
      (List.init (Elg.nb_nodes g) Fun.id)
    |> List.filter (fun (p, _) -> Path.len p >= 3)
  in
  Printf.printf "Temporally consistent chains of length >= 3 anywhere: %d\n"
    (List.length chains);
  (match chains with
  | (p, mu) :: _ ->
      Printf.printf "  e.g. %s with %s\n" (Path.to_string g p) (Lbinding.to_string g mu)
  | [] -> ());

  (* 3. l-CRPQ: shortest witness chains from p0 to p1 (if connected). *)
  let q =
    Lcrpq.make ~head:[ "y"; "z" ]
      ~atoms:
        [
          {
            Lcrpq.mode = Path_modes.Shortest;
            re = Regex.plus (Lrpq.cap "follows" "z");
            x = Lcrpq.TConst "p0";
            y = Lcrpq.TVar "y";
          };
        ]
  in
  let rows = Lcrpq.eval g q in
  Printf.printf "\nShortest follow chains from p0: %d endpoint/witness rows, e.g.\n"
    (List.length rows);
  List.iteri
    (fun i row -> if i < 3 then Printf.printf "  %s\n" (Lcrpq.row_to_string g row))
    rows;

  (* 4. CoreGQL + relational algebra: same-city pairs at distance <= 2. *)
  let pi =
    Coregql.(
      Pconcat
        ( Pnode (Some "x"),
          Pconcat (Prepeat (Pedge None, 1, Some 2), Pnode (Some "y")) ))
  in
  let rel =
    Coregql.output pg pi
      [ Coregql.Ovar "x"; Coregql.Oprop ("x", "city");
        Coregql.Ovar "y"; Coregql.Oprop ("y", "city") ]
  in
  let same_city = Relation.select rel (fun get -> get "x.city" = get "y.city") in
  Printf.printf "\nSame-city pairs within 2 hops: %d (of %d connected pairs)\n"
    (Relation.cardinality same_city) (Relation.cardinality rel);

  (* 5. PMR: all follow-paths p0 -> p1 may be infinite; the PMR is small. *)
  let tgt = Elg.node_id g "p1" in
  let pmr = Pmr.of_rpq g (Rpq_parse.parse "follows+") ~src:(Elg.node_id g "p0") ~tgt in
  Printf.printf "\nPMR of all follow-paths p0 -> p1: %d nodes + %d edges, path set: %s\n"
    pmr.Pmr.nb_nodes
    (Array.length pmr.Pmr.edges)
    (match Pmr.count_paths pmr with
    | `Infinite -> "infinite"
    | `Finite n -> Nat_big.to_string n);

  (* 6. Cardinality estimation vs exact. *)
  let r = Rpq_parse.parse "follows.follows" in
  let est = Rpq_estimate.estimate_pairs g r ~samples:30 ~seed:1 in
  let exact = Rpq_estimate.exact_pairs g r in
  Printf.printf "\n|follows.follows| exact: %d, sampled estimate (30 samples): %.0f\n"
    exact est
