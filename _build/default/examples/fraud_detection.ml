(* Fraud detection on the bank graph: the workloads the paper's running
   example motivates.

   1. Money loops: cycles of transfers returning to an account, skipping
      blocked accounts — infinitely many paths, represented finitely by a
      PMR (Section 6.4).
   2. Structuring: shortest routes that include at least one transfer
      under a reporting threshold (Section 6.3 data filters).
   3. Mule triangles: the CRPQ of Example 13.

   Run with: dune exec examples/fraud_detection.exe *)

let () =
  let pg = Generators.bank_pg () in
  let g = Pg.elg pg in
  let id = Elg.node_id g in

  (* --- 1. Unblocked transfer cycles, as a PMR ---------------------------- *)
  print_endline "== Money loops from Mike's account (a3), avoiding blocked accounts ==";
  (* Restrict to the unblocked subgraph, then take all Transfer+ cycles. *)
  let unblocked =
    List.filter
      (fun n ->
        Pg.node_prop pg n "isBlocked" <> Some (Value.Text "yes"))
      (List.init (Elg.nb_nodes g) Fun.id)
  in
  let sub_nodes = List.map (Elg.node_name g) unblocked in
  let sub_edges =
    List.filter_map
      (fun e ->
        let s = Elg.src g e and t = Elg.tgt g e in
        if List.mem s unblocked && List.mem t unblocked then
          Some (Elg.edge_name g e, Elg.node_name g s, Elg.label g e, Elg.node_name g t)
        else None)
      (List.init (Elg.nb_edges g) Fun.id)
  in
  let g' = Elg.make ~nodes:sub_nodes ~edges:sub_edges in
  let a3 = Elg.node_id g' "a3" in
  let pmr = Pmr.of_rpq g' (Rpq_parse.parse "Transfer+") ~src:a3 ~tgt:a3 in
  Printf.printf "PMR size: %d nodes + %d edges; represented path set: %s\n"
    pmr.Pmr.nb_nodes
    (Array.length pmr.Pmr.edges)
    (match Pmr.count_paths pmr with
    | `Infinite -> "infinite"
    | `Finite n -> Nat_big.to_string n);
  print_endline "Loops of length <= 6:";
  List.iter
    (fun p -> Printf.printf "  %s\n" (Path.to_string g' p))
    (Pmr.spaths_upto g' pmr ~max_len:6);

  (* --- 2. Structuring: a small transfer hidden on a longer route --------- *)
  print_endline "\n== Shortest Mike -> Rebecca route with a transfer under 4.5M ==";
  let transfer = Dlrpq.edge_lbl "Transfer" in
  let hop = Regex.seq Dlrpq.node_any transfer in
  let small_hop =
    Regex.seq (Regex.seq Dlrpq.node_any transfer)
      (Dlrpq.edge_test (Etest.Cmp_const ("amount", Value.Lt, Value.Real 4.5)))
  in
  let q =
    Regex.seq Dlrpq.node_any
      (Regex.seq (Regex.star hop)
         (Regex.seq small_hop (Regex.seq (Regex.star hop) Dlrpq.node_any)))
  in
  (match
     Dlrpq.eval_mode pg q ~mode:Path_modes.Shortest ~max_len:10
       ~src:(id "a3") ~tgt:(id "a5") ()
   with
  | [] -> print_endline "no route"
  | results ->
      List.iter
        (fun (p, _) ->
          Printf.printf "  %s (length %d; direct route has length 1 but all its amounts are large)\n"
            (Path.to_string g p) (Path.len p))
        results);

  (* --- 3. Mule triangles (Example 13) ------------------------------------ *)
  print_endline "\n== Transfer triangles (possible mule rings) ==";
  let t = Regex.atom (Sym.Lbl "Transfer") in
  let q1 =
    Crpq.make ~head:[ "x1"; "x2"; "x3" ]
      ~atoms:
        [
          { Crpq.re = t; x = Crpq.TVar "x1"; y = Crpq.TVar "x2" };
          { Crpq.re = t; x = Crpq.TVar "x1"; y = Crpq.TVar "x3" };
          { Crpq.re = t; x = Crpq.TVar "x2"; y = Crpq.TVar "x3" };
        ]
  in
  let bank = Generators.bank_elg () in
  List.iter
    (fun row ->
      let owners =
        List.map
          (fun n ->
            match Pg.node_prop pg (id (Elg.node_name bank n)) "owner" with
            | Some v -> Value.to_string v
            | None -> "?")
          row
      in
      Printf.printf "  accounts (%s) owned by (%s)\n"
        (String.concat ", " (List.map (Elg.node_name bank) row))
        (String.concat ", " owners))
    (Crpq.eval bank q1)
