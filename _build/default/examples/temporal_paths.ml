(* Temporal paths: "transfers whose dates increase along the path"
   (Examples 3 and 21).

   The point of the example: with dates on *nodes* the query is easy in
   GQL; with dates on *edges* the natural GQL pattern is wrong, while the
   paper's symmetric dl-RPQs express it directly.

   Run with: dune exec examples/temporal_paths.exe *)

let increasing_edges prop =
  (* Example 21: ( ) [_^z][x := p] ( (_) [_^z][p > x][x := p] )* ( ) *)
  Regex.seq Dlrpq.node_any
    (Regex.seq (Dlrpq.edge_any_cap "z")
       (Regex.seq
          (Dlrpq.edge_test (Etest.Assign ("x", prop)))
          (Regex.seq
             (Regex.star
                (Regex.seq Dlrpq.node_any
                   (Regex.seq (Dlrpq.edge_any_cap "z")
                      (Regex.seq
                         (Dlrpq.edge_test (Etest.Cmp_var (prop, Value.Gt, "x")))
                         (Dlrpq.edge_test (Etest.Assign ("x", prop)))))))
             Dlrpq.node_any)))

let () =
  (* The adversarial path of Example 3: edge dates 03-01, 04-01, 01-01,
     02-01 — *not* increasing overall. *)
  let pg = Generators.dated_line [ 20250103; 20250104; 20250101; 20250102 ] in
  let g = Pg.elg pg in

  print_endline "Edge dates along the line: 2025-01-03, 2025-01-04, 2025-01-01, 2025-01-02";

  (* 1. The naive GQL pattern from Example 3 wrongly accepts the path. *)
  let naive =
    Gql_parse.parse "(x) ( ()-[u:a]->()-[v:a]->() WHERE u.date < v.date )* (y)"
  in
  let accepted =
    Gql.matches pg naive ~max_len:4
    |> List.exists (fun (p, _) -> Path.len p = 4)
  in
  Printf.printf
    "\nNaive GQL pattern (two-edge window) accepts the whole path: %b  <- the Example 3 bug\n"
    accepted;

  (* 2. The dl-RPQ of Example 21 gets it right. *)
  let q = increasing_edges "date" in
  print_endline "\ndl-RPQ increasing-edge-date paths (node-to-node), per source:";
  List.iter
    (fun src ->
      List.iter
        (fun (p, mu) ->
          Printf.printf "  %s  with z -> %s\n" (Path.to_string g p)
            (Lbinding.to_string g mu))
        (Dlrpq.enumerate_from pg q ~src ~max_len:4 ()
        |> List.filter (fun (p, _) -> Path.len p >= 2)))
    (List.init (Elg.nb_nodes g) Fun.id);

  (* 3. On the bank graph: increasing transfer chains. *)
  let bank_pg = Generators.bank_pg () in
  let bank = Pg.elg bank_pg in
  print_endline "\nIncreasing-date transfer chains of length >= 3 in the bank graph:";
  List.iter
    (fun src ->
      List.iter
        (fun (p, _) -> Printf.printf "  %s\n" (Path.to_string bank p))
        (Dlrpq.enumerate_from bank_pg (increasing_edges "date") ~src ~max_len:4 ()
        |> List.filter (fun (p, _) -> Path.len p >= 3)))
    (List.init (Elg.nb_nodes bank) Fun.id);

  (* 4. The matched-path-condition workaround (Section 5.2) agrees. *)
  let forall =
    Coregql.(
      Pcond
        ( Pconcat
            ( Pnode (Some "x"),
              Pconcat (Prepeat (Pedge None, 0, None), Pnode (Some "y")) ),
          Cforall
            ( Pconcat (Pedge (Some "u"), Pconcat (Pnode None, Pedge (Some "v"))),
              Ckey ("u", "date", Value.Lt, "v", "date") ) ))
  in
  let whole =
    let objs =
      List.concat
        (List.init 4 (fun i ->
             [ Path.N (Elg.node_id g (Printf.sprintf "v%d" i));
               Path.E (Elg.edge_id g (Printf.sprintf "e%d" i)) ]))
      @ [ Path.N (Elg.node_id g "v4") ]
    in
    Path.of_objs_exn g objs
  in
  Printf.printf
    "\nMatched-path condition (forall two consecutive edges => increasing) on the bad path: %b\n"
    (Coregql_paths.matches_path pg forall whole)
