examples/fraud_detection.ml: Array Crpq Dlrpq Elg Etest Fun Generators List Nat_big Path Path_modes Pg Pmr Printf Regex Rpq_parse String Sym Value
