examples/temporal_paths.mli:
