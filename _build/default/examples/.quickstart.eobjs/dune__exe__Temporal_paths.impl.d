examples/temporal_paths.ml: Coregql Coregql_paths Dlrpq Elg Etest Fun Generators Gql Gql_parse Lbinding List Path Pg Printf Regex Value
