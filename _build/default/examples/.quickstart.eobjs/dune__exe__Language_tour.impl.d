examples/language_tour.ml: Coregql Crpq Cypher Dlrpq Elg Etest Generators Gql Gql_parse Lcrpq List Lrpq Path Path_modes Pg Printf Reduce Regex Relation Rpq_eval Rpq_parse Stdlib String Value
