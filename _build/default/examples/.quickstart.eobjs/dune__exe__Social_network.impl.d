examples/social_network.ml: Array Coregql Dlrpq Dlrpq_parse Elg Fun Lbinding Lcrpq List Lrpq Nat_big Path Path_modes Pg Pmr Printf Random Regex Relation Rpq_estimate Rpq_eval Rpq_parse Value
