examples/quickstart.ml: Crpq Dlrpq Elg Etest Fun Generators List Path Path_modes Pg Printf Regex Rpq_eval Rpq_parse String Sym Value
