examples/quickstart.mli:
