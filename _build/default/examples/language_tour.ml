(* A tour of the language zoo (Figure 1): one task — "accounts reachable
   from Mike's account by 1-2 transfers" — phrased in every formalism the
   library implements, plus each language's distinctive extra.

   Run with: dune exec examples/language_tour.exe *)

let () =
  let pg = Generators.bank_pg () in
  let g = Pg.elg pg in
  let id = Elg.node_id g in
  let name = Elg.node_name g in

  (* --- RPQ (Section 3.1.1) ----------------------------------------------- *)
  let rpq = Rpq_parse.parse "Transfer.Transfer?" in
  Printf.printf "RPQ  Transfer.Transfer?  from a3: %s\n"
    (String.concat ", " (List.map name (Rpq_eval.from_source g rpq ~src:(id "a3"))));

  (* --- CRPQ (3.1.2): also require the target to be unblocked ------------ *)
  let q =
    Crpq.make ~head:[ "y" ]
      ~atoms:
        [
          { Crpq.re = rpq; x = Crpq.TConst "a3"; y = Crpq.TVar "y" };
          { Crpq.re = Rpq_parse.parse "isBlocked"; x = Crpq.TVar "y"; y = Crpq.TConst "no" };
        ]
  in
  let bank = Generators.bank_elg () in
  Printf.printf "CRPQ (and unblocked):           %s\n"
    (String.concat ", "
       (List.map (fun row -> name (List.hd row)) (Crpq.eval bank q)));

  (* --- l-CRPQ (3.1.5): return the shortest witnessing edge lists -------- *)
  let lq =
    Lcrpq.make ~head:[ "y"; "z" ]
      ~atoms:
        [
          {
            Lcrpq.mode = Path_modes.Shortest;
            re = Regex.repeat 1 2 (Lrpq.cap "Transfer" "z");
            x = Lcrpq.TConst "a3";
            y = Lcrpq.TVar "y";
          };
        ]
  in
  print_endline "l-CRPQ shortest witnesses:";
  List.iter
    (fun row -> Printf.printf "  %s\n" (Lcrpq.row_to_string bank row))
    (Lcrpq.eval bank lq);

  (* --- dl-RPQ (3.2.1): amounts along the way must exceed 4M ------------- *)
  let big_hop =
    Regex.seq (Regex.seq Dlrpq.node_any (Dlrpq.edge_lbl "Transfer"))
      (Dlrpq.edge_test (Etest.Cmp_const ("amount", Value.Gt, Value.Real 4.0)))
  in
  let dl = Regex.seq (Regex.repeat 1 2 big_hop) Dlrpq.node_any in
  let dl_results =
    Dlrpq.enumerate_from pg dl ~src:(id "a3") ~max_len:2 ()
    |> List.filter_map (fun (p, _) -> Path.tgt g p)
    |> List.sort_uniq Stdlib.compare
  in
  Printf.printf "dl-RPQ (amounts > 4M):          %s\n"
    (String.concat ", " (List.map name dl_results));

  (* --- CoreGQL (Section 4): pattern + relational algebra ---------------- *)
  let pi =
    Coregql.(
      Pconcat
        ( Pcond (Pnode (Some "x"), Clabel ("Account", "x")),
          Pconcat (Prepeat (Pedge None, 1, Some 2), Pnode (Some "y")) ))
  in
  let rel = Coregql.output pg pi [ Coregql.Ovar "x"; Coregql.Ovar "y"; Coregql.Oprop ("y", "owner") ] in
  let mike_rows =
    Relation.select rel (fun get -> get "x" = Relation.Cnode (id "a3"))
  in
  print_endline "CoreGQL relation (x = a3):";
  print_endline (Relation.to_string g (Relation.project mike_rows [ "y"; "y.owner" ]));

  (* --- GQL-style pattern with a group variable --------------------------- *)
  let gql = Gql_parse.parse "(x:Account)(()-[z:Transfer]->()){1,2}(y:Account)" in
  let gql_results =
    Gql.matches_between pg gql ~max_len:2 ~src:(id "a3") ~tgt:(id "a1")
  in
  print_endline "GQL pattern matches a3 -> a1 (z is a group variable):";
  List.iter
    (fun (p, b) ->
      Printf.printf "  %s  %s\n" (Path.to_string g p) (Gql.binding_to_string g b))
    gql_results;

  (* --- Cypher fragment (Section 5.1) ------------------------------------- *)
  let cypher =
    Cypher.Concat
      ( Cypher.Node (Some "x", None),
        Cypher.Concat (Cypher.Edge_star (Some [ "Transfer" ]), Cypher.Node (Some "y", None)) )
  in
  Printf.printf "Cypher %s from a3 reaches %d nodes\n"
    (Cypher.to_string cypher)
    (List.length
       (List.filter (fun (u, _) -> u = id "a3") (Cypher.eval bank cypher)));

  (* --- reduce (Section 5.2): sum of amounts along each shortest route --- *)
  let sum = Reduce.sum_reducer pg ~prop:"amount" in
  ignore sum;
  let paths = Path_modes.shortest bank (Rpq_parse.parse "Transfer+") ~src:(id "a3") ~tgt:(id "a5") in
  List.iter
    (fun p ->
      let total =
        List.fold_left
          (fun acc e ->
            match Pg.edge_prop pg e "amount" with
            | Some (Value.Real a) -> acc +. a
            | _ -> acc)
          0.0 (Path.edges p)
      in
      Printf.printf "reduce-style aggregate: %s carries %.1fM\n" (Path.to_string g p) total)
    paths
