(* gqd: a small command-line front end for the graph-querying library.

   Graphs are loaded from the textual format of [Graph_io]:
     node <name> [<label>] [key=value ...]
     edge <name> <src> <label> <tgt> [key=value ...]

   Subcommands: info, rpq, shortest, gql, pmr, static, typecheck,
   estimate, demo. *)

open Cmdliner

let load path =
  try Graph_io.parse_file path with
  | Graph_io.Parse_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1
  | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

let node_id_or_die g name =
  match Elg.node_id g name with
  | id -> id
  | exception Not_found ->
      Printf.eprintf "error: unknown node %s\n" name;
      exit 1

let parse_rpq_or_die src =
  match Rpq_parse.parse_opt src with
  | Ok r -> r
  | Error msg ->
      Printf.eprintf "error: cannot parse RPQ %S: %s\n" src msg;
      exit 1

(* --- arguments ---------------------------------------------------------- *)

let graph_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file.")

let regex_pos n =
  Arg.(required & pos n (some string) None & info [] ~docv:"RPQ" ~doc:"Regular path query.")

(* --- info --------------------------------------------------------------- *)

let info_cmd =
  let run path =
    let pg = load path in
    let g = Pg.elg pg in
    Printf.printf "nodes:  %d\nedges:  %d\nlabels: %s\n" (Elg.nb_nodes g)
      (Elg.nb_edges g)
      (String.concat ", " (Elg.labels g))
  in
  Cmd.v (Cmd.info "info" ~doc:"Print graph statistics.")
    Term.(const run $ graph_arg)

(* --- rpq ---------------------------------------------------------------- *)

let rpq_cmd =
  let run path regex from =
    let pg = load path in
    let g = Pg.elg pg in
    let r = parse_rpq_or_die regex in
    match from with
    | Some src_name ->
        let src = node_id_or_die g src_name in
        List.iter
          (fun v -> print_endline (Elg.node_name g v))
          (Rpq_eval.from_source g r ~src)
    | None ->
        List.iter
          (fun (u, v) ->
            Printf.printf "%s -> %s\n" (Elg.node_name g u) (Elg.node_name g v))
          (Rpq_eval.pairs g r)
  in
  let from =
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"NODE"
           ~doc:"Only report nodes reachable from $(docv).")
  in
  Cmd.v
    (Cmd.info "rpq" ~doc:"Evaluate a regular path query (endpoint pairs).")
    Term.(const run $ graph_arg $ regex_pos 1 $ from)

(* --- shortest ------------------------------------------------------------ *)

let shortest_cmd =
  let run path regex src_name tgt_name =
    let pg = load path in
    let g = Pg.elg pg in
    let r = parse_rpq_or_die regex in
    let src = node_id_or_die g src_name and tgt = node_id_or_die g tgt_name in
    match Path_modes.shortest g r ~src ~tgt with
    | [] ->
        print_endline "no matching path";
        exit 2
    | paths -> List.iter (fun p -> print_endline (Path.to_string g p)) paths
  in
  let src = Arg.(required & pos 2 (some string) None & info [] ~docv:"SRC") in
  let tgt = Arg.(required & pos 3 (some string) None & info [] ~docv:"TGT") in
  Cmd.v
    (Cmd.info "shortest" ~doc:"All shortest paths matching an RPQ between two nodes.")
    Term.(const run $ graph_arg $ regex_pos 1 $ src $ tgt)

(* --- gql ----------------------------------------------------------------- *)

let gql_cmd =
  let run path pattern max_len =
    let pg = load path in
    let g = Pg.elg pg in
    match Gql_parse.parse_opt pattern with
    | Error msg ->
        Printf.eprintf "error: cannot parse pattern %S: %s\n" pattern msg;
        exit 1
    | Ok pat ->
        List.iter
          (fun (p, b) ->
            Printf.printf "%s  %s\n" (Path.to_string g p) (Gql.binding_to_string g b))
          (Gql.matches pg pat ~max_len)
  in
  let max_len =
    Arg.(value & opt int 8 & info [ "max-len" ] ~docv:"N"
           ~doc:"Bound on path length (default 8).")
  in
  let pattern =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"PATTERN"
           ~doc:"ASCII-art pattern, e.g. '(x)-[z:a]->(y)'.")
  in
  Cmd.v
    (Cmd.info "gql" ~doc:"Match a GQL-style ASCII-art pattern.")
    Term.(const run $ graph_arg $ pattern $ max_len)

(* --- pmr ----------------------------------------------------------------- *)

let pmr_cmd =
  let run path regex src_name tgt_name max_len =
    let pg = load path in
    let g = Pg.elg pg in
    let r = parse_rpq_or_die regex in
    let src = node_id_or_die g src_name and tgt = node_id_or_die g tgt_name in
    let pmr = Pmr.of_rpq g r ~src ~tgt in
    Printf.printf "PMR: %d nodes, %d edges; paths: %s\n" pmr.Pmr.nb_nodes
      (Array.length pmr.Pmr.edges)
      (match Pmr.count_paths pmr with
      | `Infinite -> "infinite"
      | `Finite n -> Nat_big.to_string n);
    List.iter
      (fun p -> print_endline (Path.to_string g p))
      (Pmr.spaths_upto g pmr ~max_len)
  in
  let src = Arg.(required & pos 2 (some string) None & info [] ~docv:"SRC") in
  let tgt = Arg.(required & pos 3 (some string) None & info [] ~docv:"TGT") in
  let max_len =
    Arg.(value & opt int 6 & info [ "max-len" ] ~docv:"N"
           ~doc:"Enumeration bound for the listed sample (default 6).")
  in
  Cmd.v
    (Cmd.info "pmr" ~doc:"Build the path multiset representation of an RPQ result.")
    Term.(const run $ graph_arg $ regex_pos 1 $ src $ tgt $ max_len)

(* --- query ----------------------------------------------------------------- *)

let query_cmd =
  let run path src max_len =
    let pg = load path in
    let g = Pg.elg pg in
    match Gql_query.parse src with
    | exception Gql_query.Parse_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | q -> (
        match Gql_query.eval ~max_len pg q with
        | rel -> print_endline (Relation.to_string g rel)
        | exception Gql_query.Eval_error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 2)
  in
  let src =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"MATCH ... RETURN ... query.")
  in
  let max_len =
    Arg.(value & opt int 8 & info [ "max-len" ] ~docv:"N"
           ~doc:"Bound on matched path length (default 8).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a MATCH/RETURN query (with aggregation).")
    Term.(const run $ graph_arg $ src $ max_len)

(* --- static -------------------------------------------------------------- *)

let static_cmd =
  let run r1_src r2_src =
    let r1 = parse_rpq_or_die r1_src and r2 = parse_rpq_or_die r2_src in
    let dir a b sa sb =
      match Rpq_static.containment_counterexample a b with
      | None -> Printf.printf "%s  is contained in  %s\n" sa sb
      | Some w ->
          Printf.printf "%s  is NOT contained in  %s  (witness word: %s)\n" sa sb
            (if w = [] then "<empty>" else String.concat "." w)
    in
    dir r1 r2 r1_src r2_src;
    dir r2 r1 r2_src r1_src;
    Printf.printf "disjoint: %b\n" (Rpq_static.disjoint r1 r2)
  in
  let r1 = Arg.(required & pos 0 (some string) None & info [] ~docv:"RPQ1") in
  let r2 = Arg.(required & pos 1 (some string) None & info [] ~docv:"RPQ2") in
  Cmd.v
    (Cmd.info "static" ~doc:"Containment / equivalence / disjointness of two RPQs.")
    Term.(const run $ r1 $ r2)

(* --- typecheck ------------------------------------------------------------ *)

let typecheck_cmd =
  let run pattern =
    match Gql_parse.parse_opt pattern with
    | Error msg ->
        Printf.eprintf "error: cannot parse pattern %S: %s\n" pattern msg;
        exit 1
    | Ok pat -> (
        match Gql_typing.infer pat with
        | Error (Gql_typing.Degree_conflict x) ->
            Printf.printf "ill-typed: variable %s is both an element and a list\n" x;
            exit 2
        | Ok env ->
            if env = [] then print_endline "well-typed (no variables)"
            else
              List.iter
                (fun (x, ty) ->
                  Printf.printf "%s : %s\n" x (Gql_typing.ty_to_string ty))
                env)
  in
  let pattern = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATTERN") in
  Cmd.v
    (Cmd.info "typecheck" ~doc:"Infer GQL variable types (element/list, nullable).")
    Term.(const run $ pattern)

(* --- estimate -------------------------------------------------------------- *)

let estimate_cmd =
  let run path regex samples =
    let pg = load path in
    let g = Pg.elg pg in
    let r = parse_rpq_or_die regex in
    let est = Rpq_estimate.estimate_pairs g r ~samples ~seed:42 in
    Printf.printf "estimated answers: %.0f (from %d samples)\n" est samples
  in
  let samples =
    Arg.(value & opt int 30 & info [ "samples" ] ~docv:"N" ~doc:"Sample count.")
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate |answers| of an RPQ by source sampling.")
    Term.(const run $ graph_arg $ regex_pos 1 $ samples)

(* --- demo ---------------------------------------------------------------- *)

let demo_cmd =
  let run () = print_string (Graph_io.to_string (Generators.bank_pg ())) in
  Cmd.v
    (Cmd.info "demo" ~doc:"Print the paper's bank graph in gqd's file format.")
    Term.(const run $ const ())

let () =
  let doc = "Query graph data: RPQs, path modes, PMRs, GQL-style patterns." in
  let cmd =
    Cmd.group (Cmd.info "gqd" ~version:"1.0.0" ~doc)
      [ info_cmd; rpq_cmd; shortest_cmd; gql_cmd; query_cmd; pmr_cmd; static_cmd; typecheck_cmd; estimate_cmd; demo_cmd ]
  in
  exit (Cmd.eval cmd)
