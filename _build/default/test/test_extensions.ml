(* Extensions beyond the paper's core definitions, each anchored in a
   remark or future-work item: two-way RPQs (Remark 9), static analysis
   (Sec 7.1), SPARQL's non-uniform semantics (Sec 6.1), register automata
   (Sec 6.4), k-shortest paths (Sec 7.1), the dl-RPQ surface syntax, and
   the GQL -> automata compiler (Sec 6.2). *)

let bank = Generators.bank_elg ()
let id name = Elg.node_id bank name

(* --- Two-way RPQs (Remark 9) -------------------------------------------- *)

let test_two_way_basics () =
  (* ^Transfer reaches backwards: a3 -> a1 via t1 reversed. *)
  let r = Two_way.parse "^Transfer" in
  let reach = Two_way.from_source bank r ~src:(id "a3") in
  Alcotest.(check bool) "a1 sends to a3" true (List.mem (id "a1") reach);
  (* owner . ^owner connects accounts with the same owner (here only
     trivially: each owner has one account). *)
  let r2 = Two_way.parse "owner.^owner" in
  Alcotest.(check bool) "a1 ~ a1" true (Two_way.check bank r2 ~src:(id "a1") ~tgt:(id "a1"));
  Alcotest.(check bool) "a1 !~ a2" false (Two_way.check bank r2 ~src:(id "a1") ~tgt:(id "a2"))

let test_two_way_vs_naive () =
  List.iter
    (fun seed ->
      let g = Generators.random_graph ~seed ~nodes:5 ~edges:7 ~labels:[ "a"; "b" ] in
      let r = Two_way.parse "a.^b?|^a.a" in
      let fast = Two_way.pairs g r in
      let slow = Two_way.pairs_naive g r ~max_len:3 in
      List.iter
        (fun pair ->
          Alcotest.(check bool) "naive pair found" true (List.mem pair fast))
        slow)
    [ 1; 2; 3; 4; 5 ]

let test_two_way_strictly_stronger () =
  (* On a directed line, forward-only cannot go back; two-way can. *)
  let g = Generators.line 2 "a" in
  Alcotest.(check bool) "one-way stuck" false
    (Rpq_eval.check g (Rpq_parse.parse "a.a.a") ~src:0 ~tgt:1);
  Alcotest.(check bool) "two-way bounces" true
    (Two_way.check g (Two_way.parse "a.^a.a") ~src:0 ~tgt:1)

(* --- Static analysis (Section 7.1) --------------------------------------- *)

let test_containment () =
  let p = Rpq_parse.parse in
  Alcotest.(check bool) "(ll)* <= l*" true (Rpq_static.contained (p "(l.l)*") (p "l*"));
  Alcotest.(check bool) "l* not<= (ll)*" false (Rpq_static.contained (p "l*") (p "(l.l)*"));
  Alcotest.(check bool) "a <= _" true (Rpq_static.contained (p "a") (p "_"));
  Alcotest.(check bool) "_ not<= a" false (Rpq_static.contained (p "_") (p "a"));
  Alcotest.(check bool) "equivalent nested stars" true
    (Rpq_static.equivalent (p "(((a*)*)*)*") (p "a*"));
  Alcotest.(check bool) "disjoint" true (Rpq_static.disjoint (p "a.a") (p "a.a.a"));
  Alcotest.(check bool) "not disjoint" false (Rpq_static.disjoint (p "a*") (p "a.a"));
  (match Rpq_static.containment_counterexample (p "l*") (p "(l.l)*") with
  | Some w -> Alcotest.(check int) "shortest counterexample has odd length" 1 (List.length w)
  | None -> Alcotest.fail "counterexample expected")

let prop_containment_sound =
  (* If contained, every evaluated pair on random graphs is contained. *)
  let cases = [ ("a", "a|b"); ("a.b", "a.b*"); ("(a.b)*", "(a|b)*"); ("a{2}", "a*") ] in
  QCheck.Test.make ~count:30 ~name:"containment implies answer inclusion"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 50))
    (fun seed ->
      let g = Generators.random_graph ~seed ~nodes:5 ~edges:8 ~labels:[ "a"; "b" ] in
      List.for_all
        (fun (s1, s2) ->
          let r1 = Rpq_parse.parse s1 and r2 = Rpq_parse.parse s2 in
          Rpq_static.contained r1 r2
          &&
          let a1 = Rpq_eval.pairs g r1 and a2 = Rpq_eval.pairs g r2 in
          List.for_all (fun pr -> List.mem pr a2) a1)
        cases)

(* --- SPARQL non-uniform semantics (Section 6.1) -------------------------- *)

let test_sparql_non_uniform () =
  let g = Generators.line 1 "a" in
  let p = Rpq_parse.parse in
  let m r = Nat_big.to_int (Sparql_paths.multiplicity g (p r) ~src:0 ~tgt:1) in
  Alcotest.(check (option int)) "(a|a) has multiplicity 2" (Some 2) (m "a|a");
  (* Wrapping in a star collapses to set semantics: the paper's oddity. *)
  Alcotest.(check (option int)) "(a|a)* has multiplicity 1" (Some 1) (m "(a|a)*");
  Alcotest.(check (option int)) "a.a on length-1 line: 0" (Some 0) (m "a.a")

let test_sparql_star_bounded () =
  (* Unlike the draft semantics (E2's explosion), stars stay at 0/1. *)
  let g = Generators.clique 4 "a" in
  let nested = Regex.Star (Regex.Star (Regex.Atom (Sym.Lbl "a"))) in
  let v = Sparql_paths.multiplicity g nested ~src:0 ~tgt:1 in
  Alcotest.(check (option int)) "nested star still 1" (Some 1) (Nat_big.to_int v);
  (* But concatenations still multiply: (a|a).(a|a) = 4. *)
  let r = Rpq_parse.parse "(a|a).(a|a)" in
  (* Two intermediate nodes (1 and 3) each contribute 2*2 derivations. *)
  Alcotest.(check (option int)) "bag concat multiplies" (Some 8)
    (Nat_big.to_int (Sparql_paths.multiplicity g r ~src:0 ~tgt:2))

(* --- Register automata (Section 6.4) ------------------------------------- *)

let test_register_increasing () =
  let ra = Register.increasing ~label:Sym.Any in
  let pg = Generators.dated_line [ 3; 4; 1; 2 ] in
  let g = Pg.elg pg in
  let v i = Elg.node_id g (Printf.sprintf "v%d" i) in
  (* Node dates: 3 4 1 2 3. *)
  let from0 = Register.eval_from pg ~prop:"date" ra ~src:(v 0) in
  Alcotest.(check bool) "v0 -> v1" true (List.mem (v 1) from0);
  Alcotest.(check bool) "v0 -> v2 blocked" false (List.mem (v 2) from0);
  let from2 = Register.eval_from pg ~prop:"date" ra ~src:(v 2) in
  Alcotest.(check bool) "v2 -> v4" true (List.mem (v 4) from2)

let test_register_agrees_with_dlrpq () =
  (* The register machine and the dl-RPQ node-increasing query agree on
     random dated graphs. *)
  let ra = Register.increasing ~label:Sym.Any in
  let dl =
    (* (_)(x := p) ( [_](_)(p > x)(x := p) )* *)
    Regex.seq
      (Regex.seq Dlrpq.node_any (Dlrpq.node_test (Etest.Assign ("x", "p"))))
      (Regex.star
         (Regex.seq Dlrpq.edge_any
            (Regex.seq Dlrpq.node_any
               (Regex.seq
                  (Dlrpq.node_test (Etest.Cmp_var ("p", Value.Gt, "x")))
                  (Dlrpq.node_test (Etest.Assign ("x", "p")))))))
  in
  List.iter
    (fun seed ->
      let pg =
        Generators.random_pg ~seed ~nodes:5 ~edges:8 ~labels:[ "a" ] ~prop:"p"
          ~max_value:3
      in
      let g = Pg.elg pg in
      for src = 0 to Elg.nb_nodes g - 1 do
        let via_ra = Register.eval_from pg ~prop:"p" ra ~src in
        let via_dl =
          Dlrpq.enumerate_from pg dl ~src ~max_len:4 ()
          |> List.filter_map (fun (p, _) -> Path.tgt g p)
          |> List.sort_uniq Stdlib.compare
        in
        Alcotest.(check (list int))
          (Printf.sprintf "seed %d src %d" seed src)
          via_dl via_ra
      done)
    [ 1; 2; 3 ]

let test_register_validation () =
  Alcotest.(check bool) "bad register rejected" true
    (match
       Register.make ~nb_states:1 ~nb_registers:1 ~initial:0 ~finals:[ 0 ]
         ~transitions:
           [ { Register.source = 0; label = Sym.Any; conds = [ Register.Gt 5 ];
               store = None; target = 0 } ]
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- k shortest paths ----------------------------------------------------- *)

let test_k_shortest () =
  let r = Rpq_parse.parse "Transfer*" in
  let paths =
    Path_modes.k_shortest bank r ~k:4 ~max_len:8 ~src:(id "a3") ~tgt:(id "a4")
  in
  Alcotest.(check int) "four paths" 4 (List.length paths);
  let lengths = List.map Path.len paths in
  Alcotest.(check bool) "nondecreasing lengths" true
    (List.sort compare lengths = lengths);
  Alcotest.(check int) "geodesic first" 1 (List.hd lengths);
  (* k larger than the universe of short paths: returns what exists. *)
  let few =
    Path_modes.k_shortest bank (Rpq_parse.parse "owner") ~k:10 ~max_len:4
      ~src:(id "a1") ~tgt:(id "Megan")
  in
  Alcotest.(check int) "only one owner edge" 1 (List.length few)

(* --- dl-RPQ surface syntax ------------------------------------------------ *)

let test_dlrpq_parse_example21 () =
  (* The paper's own notation, edge version with node-to-node wrapper. *)
  let q =
    Dlrpq_parse.parse
      "()[_^z][x := date](()[_^z][date > x][x := date])*()"
  in
  let pg = Generators.dated_line [ 1; 3; 2 ] in
  let g = Pg.elg pg in
  let results = Dlrpq.enumerate_from pg q ~src:(Elg.node_id g "v0") ~max_len:3 () in
  let seqs =
    List.map (fun (p, _) -> List.map (Elg.edge_name g) (Path.edges p)) results
    |> List.sort_uniq compare
  in
  Alcotest.(check (list (list string))) "e0 and e0e1" [ [ "e0" ]; [ "e0"; "e1" ] ] seqs

let test_dlrpq_parse_forms () =
  let ok src =
    match Dlrpq_parse.parse_opt src with
    | Ok _ -> true
    | Error _ -> false
  in
  List.iter
    (fun src -> Alcotest.(check bool) ("parses " ^ src) true (ok src))
    [
      "(a^z)(x := date)";
      "[Transfer][amount < 4.5]";
      "(owner = 'Mike')";
      "((a)|(b))*";
      "(a){2,3}[b]?";
      "(!{a,b}^w)";
    ];
  List.iter
    (fun src -> Alcotest.(check bool) ("rejects " ^ src) false (ok src))
    [ "("; "(a"; "[a)("; "(a)^"; "(x :=)"; "(a) |" ]

let test_dlrpq_parse_matches_builders () =
  (* The parsed Example 21 node version equals the hand-built one. *)
  let parsed =
    Dlrpq_parse.parse "(a^z)(x := date)([_](a^z)(date > x)(x := date))*"
  in
  let built =
    Regex.seq
      (Regex.seq (Dlrpq.node_cap "a" "z") (Dlrpq.node_test (Etest.Assign ("x", "date"))))
      (Regex.star
         (Regex.seq Dlrpq.edge_any
            (Regex.seq (Dlrpq.node_cap "a" "z")
               (Regex.seq
                  (Dlrpq.node_test (Etest.Cmp_var ("date", Value.Gt, "x")))
                  (Dlrpq.node_test (Etest.Assign ("x", "date")))))))
  in
  (* Sequencing associativity may differ; compare the atom sequences and
     check language-level agreement on a sample graph. *)
  Alcotest.(check (list string)) "same atoms"
    (List.map Dlrpq.atom_to_string (Regex.atoms built))
    (List.map Dlrpq.atom_to_string (Regex.atoms parsed));
  let pg = Generators.dated_line [ 1; 2 ] in
  let g = Pg.elg pg in
  let eval q =
    Dlrpq.enumerate_from pg q ~src:(Elg.node_id g "v0") ~max_len:2 ()
  in
  Alcotest.(check int) "same results on a sample"
    (List.length (eval built)) (List.length (eval parsed))

(* --- GQL -> automata compilation (Section 6.2) ---------------------------- *)

let test_compile_to_rpq () =
  let pat = Gql_parse.parse "(x)(()-[:a]->()){1,}(y)" in
  (match Gql_compile.to_rpq pat with
  | None -> Alcotest.fail "should compile"
  | Some r ->
      Alcotest.(check bool) "language is a+" true
        (Rpq_static.equivalent r (Rpq_parse.parse "a+")));
  (* Labeled nodes and WHERE do not compile to plain RPQs. *)
  Alcotest.(check bool) "labels refuse" true
    (Gql_compile.to_rpq (Gql_parse.parse "(x:Account)-[:a]->(y)") = None);
  Alcotest.(check bool) "where refuses" true
    (Gql_compile.to_rpq (Gql_parse.parse "(x WHERE x.k = 1)") = None)

let test_compile_to_dlrpq_endpoints () =
  (* Compiled evaluation agrees with the GQL engine on endpoints, including
     the per-iteration WHERE of Example 3. *)
  let pat = Gql_parse.parse "(x) ( (u)-[:a]->(v) WHERE u.date < v.date )* (y)" in
  let q =
    match Gql_compile.to_dlrpq pat with
    | Some q -> q
    | None -> Alcotest.fail "should compile"
  in
  List.iter
    (fun seed ->
      let pg =
        Generators.random_pg ~seed ~nodes:5 ~edges:7 ~labels:[ "a" ] ~prop:"date"
          ~max_value:3
      in
      let g = Pg.elg pg in
      let via_gql =
        Gql.matches pg pat ~max_len:4
        |> List.filter_map (fun (p, _) ->
               match (Path.src g p, Path.tgt g p) with
               | Some u, Some v -> Some (u, v)
               | _ -> None)
        |> List.sort_uniq compare
      in
      let via_dl =
        List.concat_map
          (fun src ->
            Dlrpq.enumerate_from pg q ~src ~max_len:4 ()
            |> List.filter_map (fun (p, _) ->
                   match (Path.src g p, Path.tgt g p) with
                   | Some u, Some v -> Some (u, v)
                   | _ -> None))
          (List.init (Elg.nb_nodes g) Fun.id)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "seed %d" seed)
        via_gql via_dl)
    [ 1; 2; 3; 4 ]

let test_compile_refuses_joins () =
  (* Repeated variables are joins: not regular, must refuse. *)
  Alcotest.(check bool) "self-loop join refused" true
    (Gql_compile.to_dlrpq (Gql_parse.parse "(x)-[:a]->(x)") = None);
  Alcotest.(check bool) "repeated edge var refused" true
    (Gql_compile.to_dlrpq (Gql_parse.parse "(x)-[z:a]->()-[z:a]->(y)") = None)

(* --- GQL -> CoreGQL translation (Section 4) ------------------------------- *)

let test_gql_to_coregql () =
  (* Endpoint agreement on acyclic graphs where the engine's bound covers
     every path. *)
  let patterns =
    [
      "(x)-[:a]->(y)";
      "(x)(()-[:a]->()){1,}(y)";
      "(x) ( (u)-[:a]->(v) WHERE u.date < v.date )* (y)";
      "(x:Point)-[:a]->(y)";
      "((x)-[:a]->(y)) | ((x)-[:a]->()-[:a]->(y))";
    ]
  in
  let pg = Generators.dated_line [ 3; 1; 2; 5 ] in
  let g = Pg.elg pg in
  List.iter
    (fun src ->
      let pat = Gql_parse.parse src in
      match Gql_to_coregql.translate pat with
      | None -> Alcotest.fail ("translation failed for " ^ src)
      | Some core ->
          let via_gql =
            Gql.matches pg pat ~max_len:(Elg.nb_edges g)
            |> List.filter_map (fun (p, _) ->
                   match (Path.src g p, Path.tgt g p) with
                   | Some u, Some v -> Some (u, v)
                   | _ -> None)
            |> List.sort_uniq compare
          in
          let via_core =
            Coregql.eval pg core
            |> List.map (fun (u, v, _) -> (u, v))
            |> List.sort_uniq compare
          in
          Alcotest.(check (list (pair int int))) src via_gql via_core)
    patterns

let test_gql_to_coregql_unsupported () =
  let pat =
    Gql.Pwhere
      ( Gql.Pnode { nvar = Some "x"; nlbl = None },
        Gql.Cmp (Gql.Const (Value.Int 1), Value.Eq, Gql.Const (Value.Int 2)) )
  in
  Alcotest.(check bool) "const-const refused" true
    (Gql_to_coregql.translate pat = None)

(* --- Cardinality estimation (Section 7.1) --------------------------------- *)

let test_estimator_exact_when_full () =
  (* Sampling every node once in expectation: with samples >> nodes the
     estimate is close; with a fixed seed we just check calibration. *)
  let g = Generators.random_graph ~seed:11 ~nodes:20 ~edges:60 ~labels:[ "a"; "b" ] in
  let r = Rpq_parse.parse "a.b*" in
  let err = Rpq_estimate.relative_error g r ~samples:200 ~seed:5 in
  Alcotest.(check bool) (Printf.sprintf "relative error %.3f < 0.25" err) true (err < 0.25)

let prop_estimator_unbiasedish =
  QCheck.Test.make ~count:15 ~name:"estimator within 50%% at moderate samples"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 100))
    (fun seed ->
      let g = Generators.random_graph ~seed ~nodes:12 ~edges:30 ~labels:[ "a" ] in
      let r = Rpq_parse.parse "a+" in
      Rpq_estimate.relative_error g r ~samples:100 ~seed:(seed + 1) < 0.5)

(* --- Walk logic (Section 7.1, "A Logic for Graphs") ----------------------- *)

let test_walk_logic_basics () =
  let pg = Generators.dated_line [ 1; 2; 3 ] in
  (* There exist nodes x, y and a path between them visiting a node with
     date 3 (that is v2). *)
  let phi =
    Walk_logic.(
      Exists_node
        ( "x",
          Exists_node
            ( "y",
              Exists_path
                ( "p", "x", "y",
                  Exists_node
                    ( "m",
                      And (On ("m", "p"), Prop ("m", "date", Value.Eq, Value.Int 3)) ) ) ) ))
  in
  Alcotest.(check bool) "path through date=3" true
    (Walk_logic.check pg ~max_len:4 phi);
  let phi_absent =
    Walk_logic.(
      Exists_node
        ( "x",
          Exists_path
            ( "p", "x", "x",
              Exists_node
                ("m", And (On ("m", "p"), Prop ("m", "date", Value.Eq, Value.Int 99))) ) ))
  in
  Alcotest.(check bool) "no node with date 99" false
    (Walk_logic.check pg ~max_len:4 phi_absent)

let test_walk_logic_increasing () =
  (* "There is a path on which the dates of edges increase along the
     path": the paper's running query, written with path quantification
     and the Before position order. *)
  let increasing_path =
    Walk_logic.(
      Exists_node
        ( "x",
          Exists_node
            ( "y",
              And
                ( Not (Eq ("x", "y")),
                  Exists_path
                    ( "p", "x", "y",
                      And
                        ( Exists_edge ("w", On ("w", "p")),
                          forall_edge "e1"
                            (forall_edge "e2"
                               (implies
                                  (And
                                     ( And (On ("e1", "p"), On ("e2", "p")),
                                       Before ("e1", "e2", "p") ))
                                  (Prop2 ("e1", "date", Value.Lt, "e2", "date")))) ) ) ) ) ))
  in
  let good = Generators.dated_line [ 1; 2; 3 ] in
  Alcotest.(check bool) "increasing line satisfies" true
    (Walk_logic.check good ~max_len:3 increasing_path);
  (* A strictly decreasing line still has single-edge paths; demand at
     least two edges by requiring two distinct edges on the path. *)
  let two_increasing =
    Walk_logic.(
      Exists_node
        ( "x",
          Exists_node
            ( "y",
              Exists_path
                ( "p", "x", "y",
                  Exists_edge
                    ( "e1",
                      Exists_edge
                        ( "e2",
                          And
                            ( And (On ("e1", "p"), On ("e2", "p")),
                              And
                                ( Before ("e1", "e2", "p"),
                                  Prop2 ("e1", "date", Value.Lt, "e2", "date") ) ) ) ) ) ) ))
  in
  let bad = Generators.dated_line [ 3; 2; 1 ] in
  Alcotest.(check bool) "decreasing line has no increasing pair" false
    (Walk_logic.check bad ~max_len:3 two_increasing);
  Alcotest.(check bool) "increasing line has one" true
    (Walk_logic.check good ~max_len:3 two_increasing)

let test_walk_logic_errors () =
  Alcotest.(check bool) "unbound variable" true
    (match Walk_logic.check (Generators.dated_line [ 1 ]) ~max_len:2
             Walk_logic.(On ("o", "p")) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "extensions"
    [
      ( "two-way",
        [
          Alcotest.test_case "basics" `Quick test_two_way_basics;
          Alcotest.test_case "vs naive" `Quick test_two_way_vs_naive;
          Alcotest.test_case "strictly stronger" `Quick test_two_way_strictly_stronger;
        ] );
      ( "static analysis",
        [
          Alcotest.test_case "containment" `Quick test_containment;
          QCheck_alcotest.to_alcotest prop_containment_sound;
        ] );
      ( "sparql",
        [
          Alcotest.test_case "non-uniform semantics" `Quick test_sparql_non_uniform;
          Alcotest.test_case "star bounded" `Quick test_sparql_star_bounded;
        ] );
      ( "register automata",
        [
          Alcotest.test_case "increasing" `Quick test_register_increasing;
          Alcotest.test_case "agrees with dl-RPQ" `Quick test_register_agrees_with_dlrpq;
          Alcotest.test_case "validation" `Quick test_register_validation;
        ] );
      ("k-shortest", [ Alcotest.test_case "bank" `Quick test_k_shortest ]);
      ( "dl-rpq syntax",
        [
          Alcotest.test_case "Example 21" `Quick test_dlrpq_parse_example21;
          Alcotest.test_case "forms" `Quick test_dlrpq_parse_forms;
          Alcotest.test_case "matches builders" `Quick test_dlrpq_parse_matches_builders;
        ] );
      ( "gql compiler",
        [
          Alcotest.test_case "to RPQ" `Quick test_compile_to_rpq;
          Alcotest.test_case "endpoint agreement" `Quick test_compile_to_dlrpq_endpoints;
          Alcotest.test_case "refuses joins" `Quick test_compile_refuses_joins;
        ] );
      ( "gql -> coregql",
        [
          Alcotest.test_case "endpoint agreement" `Quick test_gql_to_coregql;
          Alcotest.test_case "unsupported" `Quick test_gql_to_coregql_unsupported;
        ] );
      ( "cardinality estimation",
        [
          Alcotest.test_case "calibration" `Quick test_estimator_exact_when_full;
          QCheck_alcotest.to_alcotest prop_estimator_unbiasedish;
        ] );
      ( "walk logic",
        [
          Alcotest.test_case "basics" `Quick test_walk_logic_basics;
          Alcotest.test_case "increasing via Before" `Quick test_walk_logic_increasing;
          Alcotest.test_case "errors" `Quick test_walk_logic_errors;
        ] );
    ]
