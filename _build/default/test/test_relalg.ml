(* First-normal-form relations and their algebra (Section 4.1.3). *)

open Relation

let bank = Generators.bank_elg ()

let r_ab =
  make ~schema:[ "a"; "b" ]
    ~rows:[ [ Cval (Value.Int 1); Cval (Value.Int 2) ];
            [ Cval (Value.Int 1); Cval (Value.Int 3) ];
            [ Cval (Value.Int 2); Cval (Value.Int 3) ] ]

let r_bc =
  make ~schema:[ "b"; "c" ]
    ~rows:[ [ Cval (Value.Int 2); Cval (Value.Int 9) ];
            [ Cval (Value.Int 3); Cval (Value.Int 8) ] ]

let test_make_dedup () =
  let r =
    make ~schema:[ "x" ]
      ~rows:[ [ Cval (Value.Int 1) ]; [ Cval (Value.Int 1) ] ]
  in
  Alcotest.(check int) "set semantics" 1 (cardinality r)

let test_make_errors () =
  Alcotest.(check bool) "arity" true
    (match make ~schema:[ "x" ] ~rows:[ [] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "dup attr" true
    (match make ~schema:[ "x"; "x" ] ~rows:[] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_select_project () =
  let sel =
    select r_ab (fun get -> get "a" = Cval (Value.Int 1))
  in
  Alcotest.(check int) "selected" 2 (cardinality sel);
  let proj = project r_ab [ "a" ] in
  Alcotest.(check int) "projection dedups" 2 (cardinality proj);
  Alcotest.(check bool) "unknown attr" true
    (match project r_ab [ "zz" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_join () =
  let j = join r_ab r_bc in
  Alcotest.(check (list string)) "schema" [ "a"; "b"; "c" ] (schema j);
  Alcotest.(check int) "three matches" 3 (cardinality j);
  Alcotest.(check bool) "1-2-9 present" true
    (mem j [ Cval (Value.Int 1); Cval (Value.Int 2); Cval (Value.Int 9) ]);
  (* Join with no shared attributes = cartesian product. *)
  let r_d = make ~schema:[ "d" ] ~rows:[ [ Cval (Value.Bool true) ] ] in
  Alcotest.(check int) "product" 3 (cardinality (join r_ab r_d))

let test_union_diff () =
  let r1 = make ~schema:[ "x" ] ~rows:[ [ Cval (Value.Int 1) ]; [ Cval (Value.Int 2) ] ] in
  let r2 = make ~schema:[ "x" ] ~rows:[ [ Cval (Value.Int 2) ]; [ Cval (Value.Int 3) ] ] in
  Alcotest.(check int) "union" 3 (cardinality (union r1 r2));
  Alcotest.(check int) "diff" 1 (cardinality (diff r1 r2));
  Alcotest.(check bool) "schema mismatch" true
    (match union r1 r_ab with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rename () =
  let r = rename r_ab [ ("a", "z") ] in
  Alcotest.(check (list string)) "renamed" [ "z"; "b" ] (schema r);
  Alcotest.(check bool) "clash rejected" true
    (match rename r_ab [ ("a", "b") ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cells_with_elements () =
  let r =
    make ~schema:[ "n"; "e" ]
      ~rows:[ [ Cnode (Elg.node_id bank "a1"); Cedge (Elg.edge_id bank "t1") ] ]
  in
  Alcotest.(check bool) "render" true
    (to_string bank r = "n | e\na1 | t1")

(* Algebraic properties. *)
let gen_rel =
  QCheck.Gen.(
    list_size (int_range 0 8) (pair (int_range 0 3) (int_range 0 3)) >|= fun rows ->
    make ~schema:[ "a"; "b" ]
      ~rows:(List.map (fun (a, b) -> [ Cval (Value.Int a); Cval (Value.Int b) ]) rows))

let arb_rel = QCheck.make gen_rel

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes" (QCheck.pair arb_rel arb_rel)
    (fun (r1, r2) -> equal (union r1 r2) (union r2 r1))

let prop_join_idempotent =
  QCheck.Test.make ~name:"r join r = r" arb_rel (fun r -> equal (join r r) r)

let prop_diff_self_empty =
  QCheck.Test.make ~name:"r - r = empty" arb_rel (fun r ->
      cardinality (diff r r) = 0)

let prop_select_conj =
  QCheck.Test.make ~name:"select distributes over conjunction" arb_rel (fun r ->
      let p1 get = get "a" = Cval (Value.Int 1) in
      let p2 get = get "b" = Cval (Value.Int 2) in
      equal (select r (fun g -> p1 g && p2 g)) (select (select r p1) p2))

let () =
  Alcotest.run "relalg"
    [
      ( "unit",
        [
          Alcotest.test_case "set semantics" `Quick test_make_dedup;
          Alcotest.test_case "errors" `Quick test_make_errors;
          Alcotest.test_case "select/project" `Quick test_select_project;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "union/diff" `Quick test_union_diff;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "element cells" `Quick test_cells_with_elements;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_union_commutes;
            prop_join_idempotent;
            prop_diff_self_empty;
            prop_select_conj;
          ] );
    ]
