(* RPQ evaluation via the product construction, and counting semantics. *)

let bank = Generators.bank_elg ()
let parse = Rpq_parse.parse
let id name = Elg.node_id bank name
let name i = Elg.node_name bank i

let accounts = [ "a1"; "a2"; "a3"; "a4"; "a5"; "a6" ]

let test_example12 () =
  (* Example 12: Transfer* strongly connects all six accounts. *)
  let result = Rpq_eval.pairs bank (parse "Transfer*") in
  List.iter
    (fun u ->
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "(%s,%s) in result" u v)
            true
            (List.mem (id u, id v) result))
        accounts)
    accounts

let test_pairs_vs_naive () =
  let check src =
    let r = parse src in
    (* The naive bound must exceed any minimal witness; 8 covers the bank
       graph's diameter comfortably. *)
    let fast = Rpq_eval.pairs bank r in
    let slow = Rpq_eval.pairs_naive bank r ~max_len:8 in
    (* Naive enumeration is length-bounded, so it underapproximates; every
       naive pair must be found by the product construction, and for
       bounded regexes the two must be equal. *)
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: naive pair (%s,%s) found" src (name u) (name v))
          true
          (List.mem (u, v) fast))
      slow
  in
  List.iter check [ "Transfer"; "Transfer.Transfer"; "owner"; "Transfer*isBlocked" ]

let test_bounded_regex_exact () =
  List.iter
    (fun src ->
      let r = parse src in
      Alcotest.(check bool)
        (src ^ " matches naive exactly")
        true
        (Rpq_eval.pairs bank r = Rpq_eval.pairs_naive bank r ~max_len:8))
    [ "Transfer"; "Transfer.Transfer?"; "Transfer{1,3}"; "owner|isBlocked" ]

let test_from_source () =
  let r = parse "Transfer.Transfer?" in
  (* q2 of Example 13: transfers of length 1-2 from a4 reach a6 (t9) and
     a5, a3 (t9;t10, t9;t8). *)
  let reach = Rpq_eval.from_source bank r ~src:(id "a4") in
  List.iter
    (fun v ->
      Alcotest.(check bool) ("a4 reaches " ^ v) true (List.mem (id v) reach))
    [ "a6"; "a5"; "a3" ];
  Alcotest.(check bool) "not a1" false (List.mem (id "a1") reach)

let test_check_and_witness () =
  let r = parse "Transfer.Transfer" in
  Alcotest.(check bool) "a4->a5 length 2" true
    (Rpq_eval.check bank r ~src:(id "a4") ~tgt:(id "a5"));
  (match Rpq_eval.shortest_witness bank (parse "Transfer*") ~src:(id "a3") ~tgt:(id "a1") with
  | None -> Alcotest.fail "witness expected"
  | Some p ->
      Alcotest.(check int) "shortest a3->a1 has length 2" 2 (Path.len p);
      Alcotest.(check (list string)) "labels" [ "Transfer"; "Transfer" ] (Path.elab bank p));
  Alcotest.(check bool) "no owner path between accounts" true
    (Rpq_eval.shortest_witness bank (parse "owner.owner") ~src:(id "a1") ~tgt:(id "a2") = None)

let test_wildcard_eval () =
  (* _ matches every label: a1 -[t1]-> a3 and a1 -[r1]-> Megan. *)
  let reach = Rpq_eval.from_source bank (parse "_") ~src:(id "a1") in
  Alcotest.(check bool) "via Transfer" true (List.mem (id "a3") reach);
  Alcotest.(check bool) "via owner" true (List.mem (id "Megan") reach);
  let reach' = Rpq_eval.from_source bank (parse "!{Transfer,type}") ~src:(id "a1") in
  Alcotest.(check bool) "negated keeps owner" true (List.mem (id "Megan") reach');
  Alcotest.(check bool) "negated drops Transfer" false (List.mem (id "a3") reach')

(* --- Counting ----------------------------------------------------------- *)

let test_count_paths () =
  (* Diamond chain: 2^n paths from s to t. *)
  let g = Generators.diamonds 5 in
  let count =
    Rpq_count.count_paths_upto g (parse "a*") ~src:(Elg.node_id g "s")
      ~tgt:(Elg.node_id g "t") ~max_len:20
  in
  Alcotest.(check string) "2^5 paths" "32" (Nat_big.to_string count)

let test_count_cycle () =
  (* On a 3-cycle, a* paths v0->v0 of length <= 9: lengths 0,3,6,9. *)
  let g = Generators.cycle 3 "a" in
  let count =
    Rpq_count.count_paths_upto g (parse "a*") ~src:0 ~tgt:0 ~max_len:9
  in
  Alcotest.(check string) "4 cycle paths" "4" (Nat_big.to_string count)

let test_bag_semantics_growth () =
  (* Section 6.1: on a clique, nesting stars explodes the bag count while
     the set answer stays the same.  Compare depth 1 and 2 on K4. *)
  let g = Generators.clique 4 "a" in
  let star d =
    let rec nest k = if k = 0 then Regex.Atom (Sym.Lbl "a") else Regex.Star (nest (k - 1)) in
    nest d
  in
  let c1 = Rpq_count.bag_count g (star 1) ~src:0 ~tgt:1 in
  let c2 = Rpq_count.bag_count g (star 2) ~src:0 ~tgt:1 in
  let c3 = Rpq_count.bag_count g (star 3) ~src:0 ~tgt:1 in
  Alcotest.(check bool) "depth2 > depth1" true (Nat_big.compare c2 c1 > 0);
  Alcotest.(check bool) "depth3 > depth2" true (Nat_big.compare c3 c2 > 0)

let test_bag_count_base () =
  (* A single edge: multiplicity 1 at any star depth <= 1. *)
  let g = Generators.line 1 "a" in
  Alcotest.(check string) "edge count" "1"
    (Nat_big.to_string (Rpq_count.bag_count g (Regex.Atom (Sym.Lbl "a")) ~src:0 ~tgt:1));
  (* a* on a 2-edge line, pair (0,2): one path, one decomposition. *)
  let g2 = Generators.line 2 "a" in
  Alcotest.(check string) "a* on line" "1"
    (Nat_big.to_string
       (Rpq_count.bag_count g2 (Regex.Star (Regex.Atom (Sym.Lbl "a"))) ~src:0 ~tgt:2));
  (* star(star a) on a 2-edge line: the outer star decomposes aa into the
     non-empty blocks a|a or aa; each block's inner star parses uniquely,
     so the total multiplicity is 2. *)
  let c =
    Rpq_count.bag_count g2
      (Regex.Star (Regex.Star (Regex.Atom (Sym.Lbl "a"))))
      ~src:0 ~tgt:2
  in
  Alcotest.(check string) "(a*)* on line has 2 parses" "2" (Nat_big.to_string c)

let test_parallel_edge_count () =
  (* Two parallel a-edges: bag count of a is 2 (one per edge). *)
  let g =
    Elg.make ~nodes:[ "u"; "v" ]
      ~edges:[ ("e1", "u", "a", "v"); ("e2", "u", "a", "v") ]
  in
  Alcotest.(check string) "2 parallel" "2"
    (Nat_big.to_string (Rpq_count.bag_count g (Regex.Atom (Sym.Lbl "a")) ~src:0 ~tgt:1))

(* Property: product evaluation agrees with naive path enumeration on
   random small graphs and simple expressions. *)
let arb_graph_expr =
  let gen =
    QCheck.Gen.(
      pair (int_range 1 30)
        (oneofl [ "a*"; "ab*"; "(ab)*"; "a|b"; "a.b?"; "_*a"; "a{1,2}b" ]))
  in
  QCheck.make ~print:(fun (seed, e) -> Printf.sprintf "seed=%d expr=%s" seed e) gen

let prop_product_vs_naive =
  QCheck.Test.make ~count:60 ~name:"product = naive on bounded search"
    arb_graph_expr (fun (seed, src) ->
      let g = Generators.random_graph ~seed ~nodes:5 ~edges:8 ~labels:[ "a"; "b" ] in
      let r = parse src in
      let fast = Rpq_eval.pairs g r in
      let slow = Rpq_eval.pairs_naive g r ~max_len:6 in
      (* All naive answers are found by the product construction. *)
      List.for_all (fun pair -> List.mem pair fast) slow)

let () =
  Alcotest.run "rpq"
    [
      ( "evaluation",
        [
          Alcotest.test_case "Example 12" `Quick test_example12;
          Alcotest.test_case "product vs naive" `Quick test_pairs_vs_naive;
          Alcotest.test_case "bounded exact" `Quick test_bounded_regex_exact;
          Alcotest.test_case "from_source" `Quick test_from_source;
          Alcotest.test_case "check/witness" `Quick test_check_and_witness;
          Alcotest.test_case "wildcards" `Quick test_wildcard_eval;
        ] );
      ( "counting",
        [
          Alcotest.test_case "diamond 2^n" `Quick test_count_paths;
          Alcotest.test_case "cycle lengths" `Quick test_count_cycle;
          Alcotest.test_case "bag growth (Sec 6.1)" `Quick test_bag_semantics_growth;
          Alcotest.test_case "bag base cases" `Quick test_bag_count_base;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edge_count;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_product_vs_naive ]);
    ]
