(* Glushkov construction, determinization, minimization, equivalence,
   ambiguity: the automata toolbox of Section 6.2. *)

let matches sym lbl = Sym.matches sym lbl
let parse = Rpq_parse.parse

let nfa_accepts r w = Nfa.accepts ~matches (Nfa.of_regex r) w

let test_glushkov_basics () =
  let r = parse "a(b|c)*" in
  let nfa = Nfa.of_regex r in
  Alcotest.(check int) "size = atoms + 1" 4 nfa.Nfa.nb_states;
  Alcotest.(check bool) "accepts a" true (nfa_accepts r [ "a" ]);
  Alcotest.(check bool) "accepts abc" true (nfa_accepts r [ "a"; "b"; "c" ]);
  Alcotest.(check bool) "rejects eps" false (nfa_accepts r []);
  Alcotest.(check bool) "rejects b" false (nfa_accepts r [ "b" ])

let test_trim_empty () =
  (* b-after-a* that can never be reached: a* . b with no b? use empty
     intersection instead: a & b via product. *)
  let na = Nfa.of_regex (parse "a") in
  let nb = Nfa.of_regex (parse "b") in
  let inter = Nfa.product Sym.inter na nb in
  Alcotest.(check bool) "a & b empty" true (Nfa.is_empty inter);
  Alcotest.(check int) "trim of empty" 0 (Nfa.trim inter).Nfa.nb_states

let test_product_intersection () =
  let r1 = parse "(a|b)*" and r2 = parse "a*b" in
  let inter = Nfa.product Sym.inter (Nfa.of_regex r1) (Nfa.of_regex r2) in
  Alcotest.(check bool) "accepts aab" true (Nfa.accepts ~matches inter [ "a"; "a"; "b" ]);
  Alcotest.(check bool) "rejects aba" false (Nfa.accepts ~matches inter [ "a"; "b"; "a" ])

let test_determinize () =
  let r = parse "(a|b)*a.b.b" in
  let dfa = Dfa.of_nfa (Nfa.of_regex r) in
  Alcotest.(check bool) "accepts abb" true (Dfa.accepts dfa [ "a"; "b"; "b" ]);
  Alcotest.(check bool) "accepts aabb" true (Dfa.accepts dfa [ "a"; "a"; "b"; "b" ]);
  Alcotest.(check bool) "rejects ab" false (Dfa.accepts dfa [ "a"; "b" ])

let test_complement () =
  let dfa = Dfa.of_nfa (Nfa.of_regex (parse "a*")) in
  let comp = Dfa.complement dfa in
  Alcotest.(check bool) "a* comp rejects aa" false (Dfa.accepts comp [ "a"; "a" ]);
  Alcotest.(check bool) "a* comp accepts ab" true (Dfa.accepts comp [ "a"; "b" ]);
  Alcotest.(check bool) "comp accepts other labels" true (Dfa.accepts comp [ "zzz" ])

let test_minimize () =
  (* (a|b)(a|b) has a 4-state minimal DFA (with sink): states for 0,1,2
     letters seen plus the dead state. *)
  let dfa = Dfa.of_nfa (Nfa.of_regex (parse "(a|b)(a|b)")) in
  let min = Dfa.minimize dfa in
  Alcotest.(check int) "minimal size" 4 min.Dfa.nb_states;
  Alcotest.(check bool) "same language" true (Dfa.accepts min [ "a"; "b" ]);
  (* Minimization is idempotent. *)
  Alcotest.(check int) "idempotent" min.Dfa.nb_states (Dfa.minimize min).Dfa.nb_states

let test_equiv () =
  let eq a b = Dfa.equiv (Nfa.of_regex (parse a)) (Nfa.of_regex (parse b)) in
  Alcotest.(check bool) "(((a*)*)*)* = a*" true (eq "(((a*)*)*)*" "a*");
  Alcotest.(check bool) "(a.b)* != a(b.a)*b" false (eq "(a.b)*" "a.(b.a)*.b");
  Alcotest.(check bool) "a(b.a)* = (a.b)*a" true (eq "a.(b.a)*" "(a.b)*.a");
  Alcotest.(check bool) "wildcards" true (eq "_" "a|!{a}");
  Alcotest.(check bool) "negset vs label" false (eq "!{a}" "b")

let test_ambiguity () =
  let inter a b = Sym.inter a b <> None in
  let ambiguous src = Nfa.is_ambiguous ~inter (Nfa.of_regex (parse src)) in
  Alcotest.(check bool) "a* unambiguous" false (ambiguous "a*");
  Alcotest.(check bool) "(a|a) ambiguous" true (ambiguous "a|a");
  (* Note: the Glushkov automaton of star(star a) has the same transitions
     as that of star a, so as an automaton it is unambiguous even though
     the expression has many parses: run- and parse-ambiguity differ. *)
  Alcotest.(check bool) "(a*)* Glushkov unambiguous" false (ambiguous "(a*)*");
  Alcotest.(check bool) "a*a* ambiguous" true (ambiguous "a*a*");
  Alcotest.(check bool) "(a.b)* unambiguous" false (ambiguous "(a.b)*");
  Alcotest.(check bool) "wildcard overlap" true (ambiguous "a|_")

let test_to_nfa_roundtrip () =
  let r = parse "(a|b)*a.b.b" in
  let back = Dfa.to_nfa (Dfa.of_nfa (Nfa.of_regex r)) in
  Alcotest.(check bool) "same language" true (Dfa.equiv back (Nfa.of_regex r));
  let inter a b = Sym.inter a b <> None in
  Alcotest.(check bool) "deterministic, hence unambiguous" false
    (Nfa.is_ambiguous ~inter back)

(* Differential property: Glushkov + determinization agree with the
   Brzozowski derivative matcher on random regexes and words. *)
let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 8) @@ fix (fun self size ->
        if size <= 1 then
          oneof
            [
              return Regex.Eps;
              map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b" ]);
              return (Regex.Atom Sym.Any);
              return (Regex.Atom (Sym.Not [ "a" ]));
            ]
        else
          oneof
            [
              map2 (fun r1 r2 -> Regex.Seq (r1, r2)) (self (size / 2)) (self (size / 2));
              map2 (fun r1 r2 -> Regex.Alt (r1, r2)) (self (size / 2)) (self (size / 2));
              map (fun r -> Regex.Star r) (self (size - 1));
            ]))

let gen_word = QCheck.Gen.(list_size (int_range 0 6) (oneofl [ "a"; "b"; "c" ]))

let arb =
  QCheck.make
    ~print:(fun (r, w) -> Regex.to_string Sym.to_string r ^ " / " ^ String.concat "" w)
    QCheck.Gen.(pair gen_regex gen_word)

let prop_nfa_matches_derivatives =
  QCheck.Test.make ~count:500 ~name:"Glushkov NFA = derivative matcher" arb
    (fun (r, w) ->
      Nfa.accepts ~matches (Nfa.of_regex r) w = Regex.matches_word ~matches r w)

let prop_dfa_matches_nfa =
  QCheck.Test.make ~count:500 ~name:"DFA = NFA" arb (fun (r, w) ->
      let nfa = Nfa.of_regex r in
      Dfa.accepts (Dfa.of_nfa ~extra_labels:[ "a"; "b"; "c" ] nfa) w
      = Nfa.accepts ~matches nfa w)

let prop_minimize_preserves =
  QCheck.Test.make ~count:500 ~name:"minimize preserves language" arb
    (fun (r, w) ->
      let dfa = Dfa.of_nfa ~extra_labels:[ "a"; "b"; "c" ] (Nfa.of_regex r) in
      Dfa.accepts dfa w = Dfa.accepts (Dfa.minimize dfa) w)

let prop_complement_flips =
  QCheck.Test.make ~count:500 ~name:"complement flips membership" arb
    (fun (r, w) ->
      let dfa = Dfa.of_nfa ~extra_labels:[ "a"; "b"; "c" ] (Nfa.of_regex r) in
      Dfa.accepts dfa w <> Dfa.accepts (Dfa.complement dfa) w)

let prop_equiv_reflexive =
  QCheck.Test.make ~count:200 ~name:"equiv is reflexive"
    (QCheck.make gen_regex) (fun r ->
      Dfa.equiv (Nfa.of_regex r) (Nfa.of_regex r))

let () =
  Alcotest.run "automata"
    [
      ( "unit",
        [
          Alcotest.test_case "glushkov" `Quick test_glushkov_basics;
          Alcotest.test_case "trim/empty" `Quick test_trim_empty;
          Alcotest.test_case "product" `Quick test_product_intersection;
          Alcotest.test_case "determinize" `Quick test_determinize;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "minimize" `Quick test_minimize;
          Alcotest.test_case "equivalence" `Quick test_equiv;
          Alcotest.test_case "ambiguity" `Quick test_ambiguity;
          Alcotest.test_case "dfa->nfa" `Quick test_to_nfa_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_nfa_matches_derivatives;
            prop_dfa_matches_nfa;
            prop_minimize_preserves;
            prop_complement_flips;
            prop_equiv_reflexive;
          ] );
    ]
