(* Regex AST, parser, and derivative-matcher tests. *)

let matches sym lbl = Sym.matches sym lbl

let accepts r w = Regex.matches_word ~matches r w

let parse = Rpq_parse.parse

let test_parse_basics () =
  let check name src words nonwords =
    let r = parse src in
    List.iter
      (fun w ->
        Alcotest.(check bool) (name ^ " accepts " ^ String.concat "." w) true (accepts r w))
      words;
    List.iter
      (fun w ->
        Alcotest.(check bool) (name ^ " rejects " ^ String.concat "." w) false (accepts r w))
      nonwords
  in
  check "a*" "a*" [ []; [ "a" ]; [ "a"; "a" ] ] [ [ "b" ] ];
  check "(ll)*" "(l l)*" [ []; [ "l"; "l" ] ] [ [ "l" ]; [ "l"; "l"; "l" ] ];
  check "alt" "a|b" [ [ "a" ]; [ "b" ] ] [ []; [ "a"; "b" ] ];
  check "plus" "a+" [ [ "a" ]; [ "a"; "a" ] ] [ [] ];
  check "opt" "a.b?" [ [ "a" ]; [ "a"; "b" ] ] [ [ "b" ] ];
  check "repeat" "a{2}" [ [ "a"; "a" ] ] [ [ "a" ]; [ "a"; "a"; "a" ] ];
  check "repeat range" "a{1,2}" [ [ "a" ]; [ "a"; "a" ] ] [ []; [ "a"; "a"; "a" ] ];
  check "eps" "()" [ [] ] [ [ "a" ] ];
  check "wildcard" "_" [ [ "a" ]; [ "zzz" ] ] [ [] ];
  check "negset" "!{a,b}" [ [ "c" ] ] [ [ "a" ]; [ "b" ] ];
  check "paper q2 regex" "Transfer . Transfer?"
    [ [ "Transfer" ]; [ "Transfer"; "Transfer" ] ]
    [ []; [ "Transfer"; "Transfer"; "Transfer" ] ]

let test_parse_errors () =
  List.iter
    (fun src ->
      Alcotest.(check bool) ("rejects " ^ src) true
        (match Rpq_parse.parse_opt src with Error _ -> true | Ok _ -> false))
    [ "("; ")"; "a|"; "*"; "a{"; "a{2"; "!{}"; "a)" ]

let test_smart_constructors () =
  Alcotest.(check bool) "seq unit" true (Regex.seq Regex.eps (Regex.atom 1) = Regex.atom 1);
  Alcotest.(check bool) "star collapse" true
    (Regex.star (Regex.star (Regex.atom 1)) = Regex.star (Regex.atom 1));
  Alcotest.(check bool) "star eps" true (Regex.star Regex.eps = Regex.eps);
  (* The raw constructors preserve redundancy (needed for Section 6.1). *)
  let nested = Regex.Star (Regex.Star (Regex.Atom 1)) in
  Alcotest.(check int) "raw nested star size" 3 (Regex.size nested)

let test_atoms_order () =
  let r = parse "a(b|c)d*" in
  Alcotest.(check (list string))
    "left to right"
    [ "a"; "b"; "c"; "d" ]
    (List.map Sym.to_string (Regex.atoms r))

let test_enumerate () =
  let r = parse "a(b|c)" in
  Alcotest.(check (list (list string)))
    "words" [ [ "a"; "b" ]; [ "a"; "c" ] ]
    (Regex.enumerate ~alphabet:[ "a"; "b"; "c" ] ~matches ~max_len:3 r)

let test_sym () =
  Alcotest.(check bool) "inter lbl/any" true (Sym.inter (Sym.Lbl "a") Sym.Any = Some (Sym.Lbl "a"));
  Alcotest.(check bool) "inter disjoint" true (Sym.inter (Sym.Lbl "a") (Sym.Lbl "b") = None);
  Alcotest.(check bool) "inter not" true
    (Sym.inter (Sym.Lbl "a") (Sym.Not [ "a" ]) = None);
  Alcotest.(check bool) "inter nots" true
    (Sym.inter (Sym.Not [ "a" ]) (Sym.Not [ "b" ]) = Some (Sym.Not [ "a"; "b" ]))

(* Random regexes over {a,b} for differential testing. *)
let gen_regex =
  QCheck.Gen.(
    sized_size (int_range 1 8) @@ fix (fun self size ->
        if size <= 1 then
          oneof [ return Regex.Eps; map (fun l -> Regex.Atom (Sym.Lbl l)) (oneofl [ "a"; "b" ]) ]
        else
          oneof
            [
              map2 (fun r1 r2 -> Regex.Seq (r1, r2)) (self (size / 2)) (self (size / 2));
              map2 (fun r1 r2 -> Regex.Alt (r1, r2)) (self (size / 2)) (self (size / 2));
              map (fun r -> Regex.Star r) (self (size - 1));
            ]))

let gen_word = QCheck.Gen.(list_size (int_range 0 6) (oneofl [ "a"; "b" ]))

let arb_regex_word =
  QCheck.make
    ~print:(fun (r, w) ->
      Regex.to_string Sym.to_string r ^ " / " ^ String.concat "" w)
    QCheck.Gen.(pair gen_regex gen_word)

let prop_nullable_matches_empty =
  QCheck.Test.make ~name:"nullable r = accepts r []"
    (QCheck.make gen_regex) (fun r -> Regex.nullable r = accepts r [])

let prop_star_unfolds =
  QCheck.Test.make ~name:"L(r*) contains [] and L(r)·L(r*) samples"
    arb_regex_word (fun (r, w) ->
      let star = Regex.Star r in
      accepts star []
      && if accepts r w then accepts star (w @ w) else true)

let () =
  Alcotest.run "regex"
    [
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parse_basics;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ast",
        [
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "atom order" `Quick test_atoms_order;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
          Alcotest.test_case "symbols" `Quick test_sym;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_nullable_matches_empty; prop_star_unfolds ] );
    ]
