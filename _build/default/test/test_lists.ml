(* List processing with reduce (Section 5.2): expressiveness gains and
   their dangers. *)

let test_reduce_base_cases () =
  let pg = Generators.subset_sum [ 3; 5 ] in
  let g = Pg.elg pg in
  let r = Reduce.sum_reducer pg ~prop:"k" in
  Alcotest.(check bool) "empty" true (Reduce.reduce r [] = Value.Int 0);
  let take0 = Path.E (Elg.edge_id g "take0") in
  Alcotest.(check bool) "singleton" true (Reduce.reduce r [ take0 ] = Value.Int 3);
  let take1 = Path.E (Elg.edge_id g "take1") in
  Alcotest.(check bool) "combine" true
    (Reduce.reduce r [ take0; take1 ] = Value.Int 8)

let test_increasing_reducer () =
  let pg = Generators.dated_line [ 1; 3; 7 ] in
  let g = Pg.elg pg in
  let edges = List.init 3 (fun i -> Path.E (Elg.edge_id g (Printf.sprintf "e%d" i))) in
  let r = Reduce.increasing_reducer pg ~prop:"date" in
  Alcotest.(check bool) "increasing folds to head" true
    (Reduce.reduce r edges = Value.Int 1);
  let pg2 = Generators.dated_line [ 3; 1; 7 ] in
  let g2 = Pg.elg pg2 in
  let edges2 = List.init 3 (fun i -> Path.E (Elg.edge_id g2 (Printf.sprintf "e%d" i))) in
  let r2 = Reduce.increasing_reducer pg2 ~prop:"date" in
  Alcotest.(check bool) "non-increasing folds to -1" true
    (Reduce.reduce r2 edges2 = Value.Int (-1))

let test_trails_between () =
  let pg = Generators.subset_sum [ 1; 2 ] in
  (* 2 parallel choices per position: 4 trails end to end. *)
  Alcotest.(check int) "four trails" 4
    (List.length (Reduce.trails_between pg ~src:0 ~tgt:2))

let test_subset_sum_positive () =
  let items = [ 3; 5; 7; 11 ] in
  let pg = Generators.subset_sum items in
  List.iter
    (fun target ->
      let via_reduce = Reduce.subset_sum_via_reduce pg ~target <> None in
      let via_dp = Reduce.subset_sum_dp items ~target in
      Alcotest.(check bool) (Printf.sprintf "target %d agrees" target) via_dp via_reduce)
    [ 0; 3; 8; 15; 26; 4; 6; 13; 100 ]

let test_subset_sum_witness () =
  let pg = Generators.subset_sum [ 3; 5; 7 ] in
  match Reduce.subset_sum_via_reduce pg ~target:10 with
  | None -> Alcotest.fail "10 = 3 + 7 should be found"
  | Some p ->
      let g = Pg.elg pg in
      let sum =
        List.fold_left
          (fun acc e ->
            match Pg.edge_prop pg e "k" with
            | Some (Value.Int n) -> acc + n
            | _ -> acc)
          0 (Path.edges p)
      in
      ignore g;
      Alcotest.(check int) "witness sums to target" 10 sum

let test_order_of_shortest_and_filter () =
  (* The paper's ordering ambiguity: a single node with a self-loop of
     k=1; condition "sum of k = 3". *)
  let pg =
    Pg.make
      ~nodes:[ ("u", "V", []) ]
      ~edges:[ ("e", "u", "a", "u", [ ("k", Value.Int 1) ]) ]
  in
  (* Candidate paths u->u of lengths 0..5 (walks, not trails). *)
  let g = Pg.elg pg in
  let e = Elg.edge_id g "e" in
  let walk k =
    let rec objs i = if i = k then [ Path.N 0 ] else Path.N 0 :: Path.E e :: objs (i + 1) in
    Path.of_objs_exn g (objs 0)
  in
  let candidates = List.init 6 walk in
  let r = Reduce.sum_reducer pg ~prop:"k" in
  let pred v = v = Value.Int 3 in
  (* Condition after shortest: the shortest path (length 0) fails the
     condition: empty result. *)
  Alcotest.(check int) "shortest-then-filter empty" 0
    (List.length (Reduce.shortest_then_filter pg candidates r ~pred));
  (* Shortest after condition: the length-3 walk survives. *)
  (match Reduce.filter_then_shortest pg candidates r ~pred with
  | [ p ] -> Alcotest.(check int) "length 3 solution" 3 (Path.len p)
  | other -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length other)))

let test_increasing_via_reduce_matches_dlrpq () =
  (* The reduce-based increasing-edges query returns the same trails as
     the dl-RPQ formulation. *)
  let pg = Generators.dated_line [ 1; 3; 2; 4 ] in
  let g = Pg.elg pg in
  let r = Reduce.increasing_reducer pg ~prop:"date" in
  let pred v = match v with Value.Int n -> n >= 0 | _ -> false in
  let via_reduce =
    List.concat_map
      (fun src ->
        List.concat_map
          (fun tgt ->
            Reduce.filter_paths pg (Reduce.trails_between pg ~src ~tgt) r ~pred
            |> List.filter (fun p -> Path.len p >= 1))
          (List.init (Elg.nb_nodes g) Fun.id))
      (List.init (Elg.nb_nodes g) Fun.id)
    |> List.sort_uniq Path.compare
  in
  let dl =
    Regex.seq Dlrpq.node_any
      (Regex.seq (Dlrpq.edge_any_cap "z")
         (Regex.seq
            (Dlrpq.edge_test (Etest.Assign ("x", "date")))
            (Regex.seq
               (Regex.star
                  (Regex.seq Dlrpq.node_any
                     (Regex.seq (Dlrpq.edge_any_cap "z")
                        (Regex.seq
                           (Dlrpq.edge_test (Etest.Cmp_var ("date", Value.Gt, "x")))
                           (Dlrpq.edge_test (Etest.Assign ("x", "date")))))))
               Dlrpq.node_any)))
  in
  let via_dl =
    List.concat_map
      (fun src -> Dlrpq.enumerate_from pg dl ~src ~max_len:(Elg.nb_edges g) ())
      (List.init (Elg.nb_nodes g) Fun.id)
    |> List.map fst
    |> List.filter Path.is_trail
    |> List.sort_uniq Path.compare
  in
  let key p = List.map (Elg.edge_name g) (Path.edges p) in
  Alcotest.(check (list (list string)))
    "reduce = dl-RPQ"
    (List.sort_uniq Stdlib.compare (List.map key via_dl))
    (List.sort_uniq Stdlib.compare (List.map key via_reduce))

(* Property: subset-sum via reduce agrees with DP on random instances. *)
let prop_subset_sum =
  let gen =
    QCheck.Gen.(
      pair (list_size (int_range 1 6) (int_range 0 9)) (int_range 0 25))
  in
  QCheck.Test.make ~count:60 ~name:"reduce subset-sum = DP"
    (QCheck.make
       ~print:(fun (items, t) ->
         Printf.sprintf "items=[%s] target=%d"
           (String.concat ";" (List.map string_of_int items))
           t)
       gen)
    (fun (items, target) ->
      let pg = Generators.subset_sum items in
      Reduce.subset_sum_dp items ~target
      = (Reduce.subset_sum_via_reduce pg ~target <> None))

let () =
  Alcotest.run "lists"
    [
      ( "reduce",
        [
          Alcotest.test_case "base cases" `Quick test_reduce_base_cases;
          Alcotest.test_case "increasing reducer" `Quick test_increasing_reducer;
          Alcotest.test_case "trails" `Quick test_trails_between;
        ] );
      ( "subset-sum",
        [
          Alcotest.test_case "agrees with DP" `Quick test_subset_sum_positive;
          Alcotest.test_case "witness" `Quick test_subset_sum_witness;
        ] );
      ( "dangers",
        [
          Alcotest.test_case "shortest/filter order" `Quick test_order_of_shortest_and_filter;
          Alcotest.test_case "increasing via reduce" `Quick test_increasing_via_reduce_matches_dlrpq;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_subset_sum ]);
    ]
