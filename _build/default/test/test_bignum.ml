(* Unit and property tests for the vendored bignum substrate. *)

let nat = Alcotest.testable Nat_big.pp Nat_big.equal

let test_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (Nat_big.to_int (Nat_big.of_int n)))
    [ 0; 1; 7; 999_999_999; 1_000_000_000; 123_456_789_012_345 ]

let test_to_string () =
  Alcotest.(check string) "zero" "0" (Nat_big.to_string Nat_big.zero);
  Alcotest.(check string)
    "large" "123456789012345678901234567890"
    (Nat_big.to_string (Nat_big.of_string "123456789012345678901234567890"));
  Alcotest.(check string)
    "limb boundary" "1000000000"
    (Nat_big.to_string (Nat_big.of_int 1_000_000_000))

let test_pow () =
  Alcotest.check nat "2^10" (Nat_big.of_int 1024) (Nat_big.pow Nat_big.two 10);
  Alcotest.check nat "10^30"
    (Nat_big.of_string ("1" ^ String.make 30 '0'))
    (Nat_big.pow (Nat_big.of_int 10) 30);
  Alcotest.(check int)
    "digits of 2^300" 91
    (Nat_big.decimal_digits (Nat_big.pow Nat_big.two 300))

let test_sub () =
  Alcotest.check nat "a - b"
    (Nat_big.of_string "999999999999999999")
    (Nat_big.sub
       (Nat_big.of_string "1000000000000000000")
       Nat_big.one);
  Alcotest.check_raises "negative result" (Invalid_argument "Nat_big.sub: would be negative")
    (fun () -> ignore (Nat_big.sub Nat_big.one Nat_big.two))

let test_scientific () =
  Alcotest.(check string)
    "1e30 sci" "1.00e30"
    (Nat_big.to_scientific (Nat_big.pow (Nat_big.of_int 10) 30));
  Alcotest.(check string) "small stays exact" "123" (Nat_big.to_scientific (Nat_big.of_int 123))

(* Properties against OCaml ints on a safe range. *)
let gen_small = QCheck.Gen.int_range 0 1_000_000

let prop_add_matches_int =
  QCheck.Test.make ~name:"add agrees with int"
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) ->
      Nat_big.to_int (Nat_big.add (Nat_big.of_int a) (Nat_big.of_int b))
      = Some (a + b))

let prop_mul_matches_int =
  QCheck.Test.make ~name:"mul agrees with int"
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) ->
      Nat_big.to_int (Nat_big.mul (Nat_big.of_int a) (Nat_big.of_int b))
      = Some (a * b))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string . to_string = id"
    QCheck.(make gen_small)
    (fun a ->
      Nat_big.equal (Nat_big.of_int a)
        (Nat_big.of_string (Nat_big.to_string (Nat_big.of_int a))))

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare agrees with int compare"
    QCheck.(pair (make gen_small) (make gen_small))
    (fun (a, b) ->
      Stdlib.compare a b = Nat_big.compare (Nat_big.of_int a) (Nat_big.of_int b))

let prop_mul_distributes =
  QCheck.Test.make ~name:"a*(b+c) = a*b + a*c"
    QCheck.(triple (make gen_small) (make gen_small) (make gen_small))
    (fun (a, b, c) ->
      let a = Nat_big.of_int a and b = Nat_big.of_int b and c = Nat_big.of_int c in
      Nat_big.equal
        (Nat_big.mul a (Nat_big.add b c))
        (Nat_big.add (Nat_big.mul a b) (Nat_big.mul a c)))

let () =
  Alcotest.run "bignum"
    [
      ( "unit",
        [
          Alcotest.test_case "of_int/to_int" `Quick test_of_to_int;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "scientific" `Quick test_scientific;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_add_matches_int;
            prop_mul_matches_int;
            prop_string_roundtrip;
            prop_compare_total_order;
            prop_mul_distributes;
          ] );
    ]
