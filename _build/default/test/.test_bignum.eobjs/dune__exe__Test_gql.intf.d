test/test_gql.mli:
