test/test_bignum.ml: Alcotest List Nat_big Printf QCheck QCheck_alcotest Stdlib String
