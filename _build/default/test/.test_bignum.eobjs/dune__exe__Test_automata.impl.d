test/test_automata.ml: Alcotest Dfa List Nfa QCheck QCheck_alcotest Regex Rpq_parse String Sym
