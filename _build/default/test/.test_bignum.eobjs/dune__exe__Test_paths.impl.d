test/test_paths.ml: Alcotest Elg Generators List Nat_big Path Path_modes Printf QCheck QCheck_alcotest Regex Rpq_parse Seq Stdlib Sym
