test/test_relalg.ml: Alcotest Elg Generators List QCheck QCheck_alcotest Relation Value
