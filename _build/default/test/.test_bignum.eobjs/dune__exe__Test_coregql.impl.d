test/test_coregql.ml: Alcotest Coregql Coregql_paths Coregql_query Dlrpq Elg Etest Fun Generators List Path Pg Printf Regex Relation Stdlib Value
