test/test_regex.ml: Alcotest List QCheck QCheck_alcotest Regex Rpq_parse String Sym
