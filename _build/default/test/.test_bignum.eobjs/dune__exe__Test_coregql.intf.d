test/test_coregql.mli:
