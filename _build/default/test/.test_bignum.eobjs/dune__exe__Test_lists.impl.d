test/test_lists.ml: Alcotest Dlrpq Elg Etest Fun Generators List Path Pg Printf QCheck QCheck_alcotest Reduce Regex Stdlib String Value
