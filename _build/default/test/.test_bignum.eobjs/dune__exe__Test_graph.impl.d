test/test_graph.ml: Alcotest Elg Generators Graph_io List Path Pg QCheck QCheck_alcotest Random String Value
