test/test_rpq.ml: Alcotest Elg Generators List Nat_big Path Printf QCheck QCheck_alcotest Regex Rpq_count Rpq_eval Rpq_parse Sym
