test/test_cypher.ml: Alcotest Cypher Dfa Elg Generators List Nfa QCheck QCheck_alcotest Regex Rpq_parse Sym
