test/test_pmr.ml: Alcotest Elg Fun Generators List Nat_big Path Path_modes Pmr Printf QCheck QCheck_alcotest Rpq_parse
