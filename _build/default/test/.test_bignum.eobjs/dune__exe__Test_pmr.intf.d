test/test_pmr.mli:
