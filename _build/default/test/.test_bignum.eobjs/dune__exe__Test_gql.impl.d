test/test_gql.ml: Alcotest Elg Generators Gql Gql_parse Gql_query List Path Pg Printf Relation Stdlib String Value
